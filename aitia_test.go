package aitia

import (
	"strings"
	"testing"
)

func TestScenariosListing(t *testing.T) {
	list := Scenarios()
	if len(list) < 28 {
		t.Fatalf("corpus = %d scenarios", len(list))
	}
	groups := map[string]int{}
	for _, s := range list {
		groups[s.Group]++
		if s.Name == "" || s.Title == "" {
			t.Errorf("incomplete entry: %+v", s)
		}
	}
	if groups["cve"] != 10 || groups["syzkaller"] != 12 {
		t.Errorf("groups = %v, want 10 CVEs and 12 syzkaller bugs", groups)
	}
}

func TestDiagnoseScenario(t *testing.T) {
	res, err := DiagnoseScenario("cve-2017-15649", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != "kernel BUG (BUG_ON)" {
		t.Errorf("failure = %q", res.Failure)
	}
	want := "(A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → kernel BUG (BUG_ON)"
	if res.Chain != want {
		t.Errorf("chain = %q", res.Chain)
	}
	if len(res.ChainRaces) != 4 {
		t.Errorf("chain races = %d", len(res.ChainRaces))
	}
	var phantoms int
	for _, r := range res.ChainRaces {
		if r.Phantom {
			phantoms++
		}
		if r.Variable == "" || r.FirstThread == "" {
			t.Errorf("incomplete race: %+v", r)
		}
	}
	if phantoms != 1 {
		t.Errorf("phantoms = %d, want 1 (B17 => A12)", phantoms)
	}
	if len(res.Benign) == 0 {
		t.Error("the planted benign stats race is missing")
	}
	if !strings.Contains(res.Report, "Causality chain") {
		t.Error("report not rendered")
	}
	if res.Interleavings != 2 || res.LIFSSchedules == 0 || res.AnalysisSchedules == 0 {
		t.Errorf("stats: %d interleavings, %d LIFS, %d CA",
			res.Interleavings, res.LIFSSchedules, res.AnalysisSchedules)
	}
}

func TestDiagnoseUnknownScenario(t *testing.T) {
	if _, err := DiagnoseScenario("nope", Options{}); err == nil {
		t.Error("unknown scenario should fail")
	}
}

func TestCompileAndDiagnose(t *testing.T) {
	src := `
global flag = 0
ptr    p -> obj
global obj = 1

thread A fa
thread B fb

func fa
@A1 store [flag], 1
@A2 load r1, [p]
@A3 load r2, [r1]
    ret
end

func fb
@B1 load r1, [flag]
    beq r1, 0, out
@B2 store [p], 0
out:
    ret
end
`
	prog, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Source(), "store [flag], 1") {
		t.Error("Source() does not round-trip")
	}
	res, err := Diagnose(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failure != "NULL pointer dereference" {
		t.Errorf("failure = %q", res.Failure)
	}
	if res.Chain != "A1 => B1 → B2 => A2 → NULL pointer dereference" {
		t.Errorf("chain = %q", res.Chain)
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile("func f\nbroken\nend"); err == nil {
		t.Error("bad source should fail")
	}
}

func TestFuzzAndDiagnose(t *testing.T) {
	sc := Scenarios()
	_ = sc
	srcRes, err := DiagnoseScenario("fig1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(`
global ptr_valid = 0
ptr    ptr -> obj
global obj = 42

thread A thread_a
thread B thread_b

func thread_a
@A1 store [ptr_valid], 1
@A2 load r1, [ptr]
@A2d load r2, [r1]
    ret
end

func thread_b
@B1 load r1, [ptr_valid]
    beq r1, 0, out
@B2 store [ptr], 0
out:
    ret
end
`)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := FuzzAndDiagnose(prog, 7, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Runs <= 0 || fres.CrashReport == "" || fres.Trace == "" {
		t.Errorf("incomplete finding: %+v", fres)
	}
	if fres.Diagnosis.Chain != srcRes.Chain {
		t.Errorf("pipeline chain = %q, direct chain = %q", fres.Diagnosis.Chain, srcRes.Chain)
	}
}

// TestReportRoundTrip: render a scenario's failure as a crash report,
// then diagnose from the report text alone — the chain must match the
// direct trace-driven diagnosis, with no resolution gaps.
func TestReportRoundTrip(t *testing.T) {
	direct, err := DiagnoseScenario("fig1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	text, err := ScenarioReport("fig1", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "BUG:") {
		t.Fatalf("report missing title:\n%s", text)
	}
	prog, err := ScenarioProgram("fig1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := DiagnoseReport(prog, text, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Chain != direct.Chain {
		t.Errorf("report chain = %q, direct chain = %q", res.Chain, direct.Chain)
	}
	if len(res.ReportPartial) != 0 {
		t.Errorf("full synthesized report resolved with gaps: %v", res.ReportPartial)
	}

	// A title-only report is under-specified: diagnosis still lands on
	// the same chain (via the wider search) but the gaps are surfaced.
	title := strings.SplitN(text, "\n", 2)[0]
	partial, err := DiagnoseReport(prog, title+"\n", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(partial.ReportPartial) == 0 {
		t.Error("title-only report reported no resolution gaps")
	}
	if partial.Chain != direct.Chain {
		t.Errorf("title-only chain = %q, want %q", partial.Chain, direct.Chain)
	}
}

func TestFailureKindFilter(t *testing.T) {
	// Constraining to the wrong kind must fail to reproduce.
	_, err := DiagnoseScenario("fig1", Options{FailureKind: "KASAN: use-after-free"})
	if err == nil {
		t.Error("wrong failure kind should not reproduce")
	}
}

// Package aitia is the public API of the AITIA reproduction: automated
// root-cause diagnosis of kernel concurrency failures, after "Diagnosing
// Kernel Concurrency Failures with AITIA" (EuroSys 2023).
//
// The library diagnoses concurrency failures of kernel programs written
// in a small instruction-level IR (see Compile for the textual form, or
// the built-in scenario corpus reproducing the paper's 22 real-world
// bugs). Diagnosis runs in two stages:
//
//  1. Least Interleaving First Search (LIFS) reproduces the failure as a
//     totally ordered failure-causing instruction sequence, exploring
//     interleavings of conflicting instructions from the smallest number
//     of preemptions upward, with DPOR-style pruning.
//
//  2. Causality Analysis flips the order of each data race in the
//     sequence — one at a time, everything else fixed — and re-executes:
//     races whose flip prevents the failure form the root cause; their
//     flip runs reveal which other races they steer (race-steered control
//     flows). The result is a causality chain, e.g.
//
//     (A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → kernel BUG (BUG_ON)
//
// Quick start:
//
//	res, err := aitia.DiagnoseScenario("cve-2017-15649", aitia.Options{})
//	if err != nil { ... }
//	fmt.Println(res.Chain)
package aitia

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"aitia/internal/core"
	"aitia/internal/durable"
	"aitia/internal/faultinject"
	"aitia/internal/fuzz"
	"aitia/internal/history"
	"aitia/internal/ingest"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/manager"
	"aitia/internal/obs"
	"aitia/internal/prior"
	"aitia/internal/report"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// Options configure a diagnosis.
type Options struct {
	// Workers is the number of parallel reproducer/diagnoser instances
	// (the paper's VM fleet; default GOMAXPROCS).
	Workers int
	// LIFSWorkers parallelizes the LIFS search itself across that many
	// goroutines, each driving its own kernel VM with copy-on-write
	// snapshots. Zero or one searches serially; parallel and serial
	// searches return the same reproduction.
	LIFSWorkers int
	// MaxInterleavings bounds LIFS's iterative deepening (default 3).
	MaxInterleavings int
	// StepBudget is the per-run watchdog limit.
	StepBudget int
	// LeakCheck enables the end-of-run memory-leak oracle.
	LeakCheck bool
	// FailureKind restricts reproduction to a failure kind from the crash
	// report (empty = any).
	FailureKind string
	// FailureLabel restricts reproduction to a failing instruction label.
	FailureLabel string
	// Tracer collects execution spans of the whole pipeline (LIFS phases
	// and search units, causality flip tests, worker-pool dispatch); see
	// internal/obs. Export the collected events with obs.WriteChrome for
	// chrome://tracing / Perfetto. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// FaultRate arms deterministic fault injection across the pipeline
	// (snapshot-restore errors, schedule-enforcement stalls, worker-VM
	// deaths) with this per-decision probability; 0 disables injection
	// entirely at zero cost. FaultSeed makes the injected faults
	// reproducible: the same (seed, rate) yields the same faults — and
	// the same diagnosis — regardless of Workers. Intended for chaos
	// testing the diagnoser itself; see internal/faultinject.
	FaultRate float64
	FaultSeed int64
	// Retry bounds the re-execution of faulted operations (per-attempt
	// timeout, bounded exponential backoff); zero-value knobs mean
	// faultinject.DefaultRetry.
	Retry faultinject.RetryPolicy
	// CheckpointDir, when set, arms durable crash recovery: the LIFS
	// search checkpoints its frontier there (at every deepening-phase
	// boundary, keyed by the program's content hash), the analysis
	// checkpoints every settled flip verdict, and a re-run after a crash
	// resumes from the latest valid snapshots, producing the same
	// diagnosis as an uninterrupted run with strictly fewer schedules.
	// Empty disables checkpointing at zero cost.
	CheckpointDir string
	// CheckpointEvery additionally checkpoints serial LIFS searches
	// mid-phase after this many schedules. Zero checkpoints at phase
	// boundaries only. Ignored without CheckpointDir.
	CheckpointEvery int
	// PriorDir, when set, arms the learned flip prior: settled flip
	// verdicts are aggregated into per-race-pair statistics (keyed by a
	// stable cross-program signature, persisted in this directory) and
	// every diagnosis ranks its flip tests by the learned root-cause
	// probability, skipping the flips the prior has proven benign. The
	// causality chain is byte-identical to fixed-order analysis —
	// ranking changes the work, never the answer. An absent or corrupt
	// prior degrades to fixed order. Empty disables the prior at zero
	// cost.
	PriorDir string
}

// priorStore opens and warm-loads the options' flip prior, or returns
// nils when the prior is off. The returned checkpoint store is where a
// completed diagnosis persists what it learned (savePrior).
func priorStore(opts Options) (*prior.Store, *durable.CheckpointStore, error) {
	if opts.PriorDir == "" {
		return nil, nil, nil
	}
	store, err := durable.OpenCheckpointStore(opts.PriorDir, false)
	if err != nil {
		return nil, nil, err
	}
	pst, _ := prior.LoadFrom(store, prior.Config{})
	return pst, store, nil
}

// savePrior persists what a completed diagnosis taught the prior.
func savePrior(pst *prior.Store, store *durable.CheckpointStore) {
	if pst == nil || store == nil {
		return
	}
	_ = pst.SaveTo(store)
}

// checkpointConfig opens the options' checkpoint store, or returns nil
// when checkpointing is off.
func checkpointConfig(opts Options) (*core.CheckpointConfig, error) {
	if opts.CheckpointDir == "" {
		return nil, nil
	}
	store, err := durable.OpenCheckpointStore(opts.CheckpointDir, false)
	if err != nil {
		return nil, err
	}
	return &core.CheckpointConfig{Store: store, Every: opts.CheckpointEvery}, nil
}

// faultPlan builds the options' fault plan, or nil when injection is off.
func faultPlan(opts Options) *faultinject.Plan {
	if opts.FaultRate <= 0 {
		return nil
	}
	return faultinject.NewPlan(opts.FaultSeed, opts.FaultRate)
}

// Program is a compiled kernel program.
type Program struct {
	prog *kir.Program
}

// Compile assembles a program from kasm source text. See package
// internal/kasm for the format.
func Compile(src string) (*Program, error) {
	p, err := kasm.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Program{prog: p}, nil
}

// Source disassembles the program back to kasm text.
func (p *Program) Source() string { return kasm.Disassemble(p.prog) }

// Race describes one data race of a diagnosis in paper notation. The
// type is JSON-serializable (it appears in ResultSummary).
type Race struct {
	// First and Second are the racing instructions ("A6", "B12" or
	// "fn+idx"), in the failure-causing order First => Second.
	First  string `json:"first"`
	Second string `json:"second"`
	// Threads executing the two accesses.
	FirstThread  string `json:"first_thread"`
	SecondThread string `json:"second_thread"`
	// Variable is the raced variable (global symbol or object address).
	Variable string `json:"variable"`
	// Phantom marks races whose Second access never executed in the
	// failing run (the failure truncated its thread first).
	Phantom bool `json:"phantom,omitempty"`
	// Ambiguous marks surrounding races that could not be tested in
	// isolation (§3.4).
	Ambiguous bool `json:"ambiguous,omitempty"`
	// Sig is the stable cross-program pair signature the learned flip
	// prior keys this race by (see internal/prior.Signature).
	Sig string `json:"sig,omitempty"`
	// Prior marks a benign verdict settled by the learned prior without
	// executing a flip test.
	Prior bool `json:"prior,omitempty"`
}

// PhaseStat summarizes one iterative-deepening phase of the LIFS search.
type PhaseStat struct {
	Budget    int           `json:"budget"`
	Schedules int           `json:"schedules"`
	Elapsed   time.Duration `json:"elapsed"`
}

// Result is a completed diagnosis.
type Result struct {
	// Scenario is the scenario name, when diagnosed from the corpus.
	Scenario string
	// Failure is the crash symptom ("kernel BUG (BUG_ON)", ...).
	Failure string
	// FailSequence is the failure-causing instruction sequence (labelled
	// instructions only).
	FailSequence string
	// Chain is the formatted causality chain.
	Chain string
	// ChainRaces are the chain's races in chain order.
	ChainRaces []Race
	// Benign are the races excluded from the chain by Causality Analysis.
	Benign []Race
	// Unknown are races whose flip tests could not complete (injected
	// faults or timeouts exhausted the retry budget); they are excluded
	// from the chain and the diagnosis is marked Partial.
	Unknown []Race
	// Partial marks a degraded diagnosis: the chain is built only from
	// the races that could be tested. PartialReason is machine-readable,
	// e.g. "flip_retries_exhausted=2".
	Partial       bool
	PartialReason string
	// Statistics, matching the paper's Tables 2-3 columns.
	LIFSSchedules     int
	Interleavings     int
	AnalysisSchedules int
	TestSetSize       int
	MemAccesses       int
	// LIFSPruned counts search branches skipped as equivalent states;
	// SnapshotBytes is the copy-on-write checkpointing cost of the search.
	LIFSPruned    int
	SnapshotBytes uint64
	// Incremental-replay prefix cache, summed over the search and the
	// analysis: ExecutedInstrs is the total instruction work (replays
	// included), ReplayedInstrs the share spent re-executing known
	// prefixes, SavedInstrs the prefix work skipped by restoring pinned
	// snapshots, PrefixHits the runs started from a pin, and PinnedBytes
	// the peak bytes pinned by live prefix snapshots.
	ExecutedInstrs uint64
	ReplayedInstrs uint64
	SavedInstrs    uint64
	PrefixHits     int
	PinnedBytes    uint64
	// Learned flip ordering (Options.PriorDir): flip tests executed,
	// flip tests settled benign by the prior without a run, and tested
	// races whose signature had prior observations.
	FlipsExecuted int
	FlipsSkipped  int
	PriorHits     int
	// Phases reports per-phase schedule counts and wall-clock times of the
	// iterative deepening.
	Phases []PhaseStat
	// SlicesTried counts reproducer launches until the failure reproduced
	// (1 when diagnosing a program's declared threads directly).
	SlicesTried int
	// ReproduceTime and DiagnoseTime are the stage wall-clock times.
	ReproduceTime time.Duration
	DiagnoseTime  time.Duration
	// Spans aggregates the tracer's spans per (category, name): span
	// counts and total durations of each pipeline stage. Empty unless
	// Options.Tracer was set.
	Spans []obs.SpanStat
	// ReportPartial lists the machine-readable degradation reasons when
	// the diagnosis was driven by a crash report that did not fully
	// resolve against the program (see DiagnoseReport): unknown symbols,
	// missing stacks, ambiguous sites. Empty for fully resolved reports
	// and for trace-driven diagnoses.
	ReportPartial []string
	// Resumed reports that a pipeline stage continued from a durable
	// checkpoint instead of starting over; CheckpointAge is the age of
	// the search checkpoint it resumed from (zero for a resumed analysis
	// only). Always false without Options.CheckpointDir.
	Resumed       bool
	CheckpointAge time.Duration
	// Report is the full human-readable diagnosis report.
	Report string
}

// ScenarioInfo describes one corpus entry.
type ScenarioInfo struct {
	Name       string // registry key, e.g. "cve-2017-15649"
	Title      string // paper identifier
	Group      string // "cve", "syzkaller" or "figure"
	Subsystem  string
	BugType    string
	MultiVar   bool
	LooselyCor bool
	Notes      string
}

// Scenarios lists the built-in corpus (the paper's 22 real-world bugs
// plus its figure examples).
func Scenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, s := range scenarios.All() {
		out = append(out, ScenarioInfo{
			Name:       s.Name,
			Title:      s.Title,
			Group:      string(s.Group),
			Subsystem:  s.Subsystem,
			BugType:    s.BugType,
			MultiVar:   s.MultiVariable,
			LooselyCor: s.LooselyCorrelated,
			Notes:      s.Notes,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// DiagnoseScenario diagnoses a corpus scenario by name.
func DiagnoseScenario(name string, opts Options) (*Result, error) {
	sc, ok := scenarios.ByName(name)
	if !ok {
		return nil, fmt.Errorf("aitia: unknown scenario %q (see Scenarios())", name)
	}
	prog, err := sc.Program()
	if err != nil {
		return nil, err
	}
	if opts.FailureKind == "" {
		opts.FailureKind = sc.WantKind.String()
	}
	if opts.FailureLabel == "" {
		opts.FailureLabel = sc.WantLabel
	}
	opts.LeakCheck = opts.LeakCheck || sc.NeedsLeakCheck()
	res, err := diagnose(prog, opts)
	if err != nil {
		return nil, fmt.Errorf("aitia: scenario %s: %w", name, err)
	}
	res.Scenario = name
	return res, nil
}

// Diagnose diagnoses a compiled program's declared threads.
func Diagnose(p *Program, opts Options) (*Result, error) {
	return diagnose(p.prog, opts)
}

// ScenarioProgram compiles a corpus scenario's program, for callers that
// pair a scenario with external input (e.g. a crash report for
// DiagnoseReport).
func ScenarioProgram(name string) (*Program, error) {
	sc, ok := scenarios.ByName(name)
	if !ok {
		return nil, fmt.Errorf("aitia: unknown scenario %q (see Scenarios())", name)
	}
	prog, err := sc.Program()
	if err != nil {
		return nil, err
	}
	return &Program{prog: prog}, nil
}

// DiagnoseReport diagnoses a failure from a KCSAN/KASAN-style textual
// crash report alone — no execution trace. The report's title yields the
// failure kind and site, its data-race section the suspect instruction
// pair; each plausible resolution runs as a guided LIFS search seeded
// with the suspects, with an unguided fallback for degraded or
// mis-resolved reports (see internal/ingest and manager.DiagnoseReport).
// Result.ReportPartial lists whatever the report left unresolved.
func DiagnoseReport(p *Program, reportText string, opts Options) (*Result, error) {
	rpt, err := ingest.Parse(reportText)
	if err != nil {
		return nil, err
	}
	plan := faultPlan(opts)
	ck, err := checkpointConfig(opts)
	if err != nil {
		return nil, err
	}
	lifs := lifsOptions(p.prog, opts, plan)
	lifs.Tracer = nil // per-candidate child tracers; the manager adopts the winner's
	pst, pstore, err := priorStore(opts)
	if err != nil {
		return nil, err
	}
	mgr, err := manager.New(p.prog, manager.Options{
		Workers:     opts.Workers,
		LIFSWorkers: opts.LIFSWorkers,
		LIFS:        lifs,
		Analysis: core.AnalysisOptions{
			StepBudget: opts.StepBudget,
			LeakCheck:  opts.LeakCheck,
		},
		Tracer:     opts.Tracer,
		Fault:      plan,
		Retry:      opts.Retry,
		Checkpoint: ck,
		Prior:      pst,
	})
	if err != nil {
		return nil, err
	}
	mres, err := mgr.DiagnoseReport(context.Background(), rpt)
	if err != nil {
		return nil, err
	}
	savePrior(pst, pstore)
	res := FromManagerResult(p.prog, mres)
	attachSpans(res, opts.Tracer)
	return res, nil
}

// ScenarioReport reproduces a corpus scenario's failure and renders it
// as a KCSAN-style crash report: the sanitizer title plus one access
// block per side of the race nearest the failure. The output feeds back
// into DiagnoseReport, which is how the scenario corpus doubles as a
// report-driven workload.
func ScenarioReport(name string, opts Options) (string, error) {
	sc, ok := scenarios.ByName(name)
	if !ok {
		return "", fmt.Errorf("aitia: unknown scenario %q (see Scenarios())", name)
	}
	prog, err := sc.Program()
	if err != nil {
		return "", err
	}
	m, err := kvm.New(prog)
	if err != nil {
		return "", err
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		MaxInterleavings: opts.MaxInterleavings,
		StepBudget:       opts.StepBudget,
		WantKind:         sc.WantKind,
		WantInstr:        sc.WantInstr(),
		LeakCheck:        opts.LeakCheck || sc.NeedsLeakCheck(),
		Workers:          opts.LIFSWorkers,
	})
	if err != nil {
		return "", err
	}
	return ingest.Synthesize(prog, rep.Run, rep.Races)
}

// FuzzResult reports a fuzzing campaign that found a failure.
type FuzzResult struct {
	// CrashReport is the rendered crash report.
	CrashReport string
	// Trace is the ftrace-style execution history.
	Trace string
	// Runs is the number of random schedules executed.
	Runs int
	// Diagnosis is the subsequent AITIA diagnosis of the finding.
	Diagnosis *Result
}

// FuzzAndDiagnose runs the full pipeline of the paper's §5.2 evaluation:
// a Syzkaller-style random-schedule fuzzing campaign until a failure is
// found, followed by history modeling, slicing, LIFS and Causality
// Analysis on the finding. seed makes the campaign reproducible; maxRuns
// bounds it (0 = default).
func FuzzAndDiagnose(p *Program, seed int64, maxRuns int, opts Options) (*FuzzResult, error) {
	fz, err := fuzz.New(p.prog, fuzz.Options{
		Seed:       seed,
		MaxRuns:    maxRuns,
		StepBudget: opts.StepBudget,
		LeakCheck:  opts.LeakCheck,
	})
	if err != nil {
		return nil, err
	}
	finding, err := fz.Campaign()
	if err != nil {
		return nil, err
	}
	if finding == nil {
		return nil, fmt.Errorf("aitia: fuzzing found no failure")
	}

	plan := faultPlan(opts)
	ck, err := checkpointConfig(opts)
	if err != nil {
		return nil, err
	}
	lifs := lifsOptions(p.prog, opts, plan)
	lifs.Tracer = nil // per-slice child tracers; the manager adopts the winner's
	pst, pstore, err := priorStore(opts)
	if err != nil {
		return nil, err
	}
	mgr, err := manager.New(p.prog, manager.Options{
		Workers:    opts.Workers,
		LIFS:       lifs,
		Tracer:     opts.Tracer,
		Fault:      plan,
		Retry:      opts.Retry,
		Checkpoint: ck,
		Prior:      pst,
	})
	if err != nil {
		return nil, err
	}
	mres, err := mgr.DiagnoseTrace(context.Background(), finding.Trace)
	if err != nil {
		return nil, err
	}
	savePrior(pst, pstore)
	res := FromManagerResult(p.prog, mres)
	attachSpans(res, opts.Tracer)
	return &FuzzResult{
		CrashReport: finding.Report,
		Trace:       finding.Trace.Format(),
		Runs:        finding.Runs,
		Diagnosis:   res,
	}, nil
}

// lifsOptions translates the public options. plan is the shared fault
// plan of the whole diagnosis (nil when injection is off); it is passed
// in rather than rebuilt so LIFS and Causality Analysis draw from the
// same deterministic fault stream.
func lifsOptions(prog *kir.Program, opts Options, plan *faultinject.Plan) core.LIFSOptions {
	lo := core.LIFSOptions{
		MaxInterleavings: opts.MaxInterleavings,
		StepBudget:       opts.StepBudget,
		LeakCheck:        opts.LeakCheck,
		WantInstr:        kir.NoInstr,
		Workers:          opts.LIFSWorkers,
		Tracer:           opts.Tracer,
		Fault:            plan,
		Retry:            opts.Retry,
	}
	if opts.FailureKind != "" {
		if k, ok := sanitizer.KindByName(opts.FailureKind); ok {
			lo.WantKind = k
		}
	}
	if opts.FailureLabel != "" {
		if in, ok := prog.ByLabel(opts.FailureLabel); ok {
			lo.WantInstr = in.ID
		}
	}
	return lo
}

// diagnose runs the pipeline on a program's declared threads.
func diagnose(prog *kir.Program, opts Options) (*Result, error) {
	m, err := kvm.New(prog)
	if err != nil {
		return nil, err
	}
	plan := faultPlan(opts)
	ck, err := checkpointConfig(opts)
	if err != nil {
		return nil, err
	}
	lifs := lifsOptions(prog, opts, plan)
	lifs.Checkpoint = ck
	pst, pstore, err := priorStore(opts)
	if err != nil {
		return nil, err
	}
	rep, err := core.Reproduce(m, lifs)
	if err != nil {
		return nil, err
	}
	aopts := core.AnalysisOptions{
		StepBudget: opts.StepBudget,
		LeakCheck:  opts.LeakCheck,
		Workers:    opts.Workers,
		Tracer:     opts.Tracer,
		Fault:      plan,
		Retry:      opts.Retry,
		Checkpoint: ck,
	}
	if pst != nil {
		aopts.Ranker = pst
	}
	d, err := core.Analyze(m, rep, aopts)
	if err != nil {
		return nil, err
	}
	if pst != nil {
		pst.ObserveDiagnosis(prog, d)
		savePrior(pst, pstore)
	}
	res := buildResult(prog, rep, d)
	attachSpans(res, opts.Tracer)
	return res, nil
}

// attachSpans folds the tracer's per-stage aggregates into the result.
func attachSpans(res *Result, tr *obs.Tracer) {
	if tr.Enabled() {
		res.Spans = obs.Summarize(tr.Events())
	}
}

// FromInternal converts internal pipeline results (a reproduction and its
// diagnosis) into the public Result shape. It exists for tools in this
// module that drive the internal packages directly, such as cmd/aitia's
// finding-file mode.
func FromInternal(prog *kir.Program, rep *core.Reproduction, d *core.Diagnosis) *Result {
	return buildResult(prog, rep, d)
}

// FromManagerResult converts a completed manager pipeline result into the
// public Result shape, carrying over the pipeline's slice count and stage
// timings. It exists for tools in this module (cmd/aitia's finding mode,
// the diagnosis service) that drive internal/manager directly.
func FromManagerResult(prog *kir.Program, mres *manager.Result) *Result {
	res := buildResult(prog, mres.Reproduction, mres.Diagnosis)
	res.SlicesTried = mres.SlicesTried
	res.ReproduceTime = mres.ReproduceTime
	res.DiagnoseTime = mres.DiagnoseTime
	if mres.Resolution != nil {
		for _, reason := range mres.Resolution.Partial {
			res.ReportPartial = append(res.ReportPartial, string(reason))
		}
	}
	return res
}

// maxU64 returns the larger of two unsigned counters (PinnedBytes is a
// high-water mark, not additive across stages).
func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// buildResult converts internal results to the public shape.
func buildResult(prog *kir.Program, rep *core.Reproduction, d *core.Diagnosis) *Result {
	m, _ := kvm.New(prog) // for symbolizing addresses
	variable := func(addr uint64) string {
		if m != nil {
			if sym, off, ok := m.Space().SymbolAt(addr); ok {
				if off != 0 {
					return fmt.Sprintf("%s+%d", sym, off)
				}
				return sym
			}
		}
		return fmt.Sprintf("%#x", addr)
	}
	var sb strings.Builder
	report.WriteDiagnosis(&sb, prog, rep, d)

	res := &Result{
		Failure:           d.Failure.Kind.String(),
		FailSequence:      rep.Run.FormatSeq(prog, false),
		Chain:             d.Chain.Format(prog),
		LIFSSchedules:     rep.Stats.Schedules,
		Interleavings:     rep.Stats.Interleavings,
		LIFSPruned:        rep.Stats.Pruned,
		SnapshotBytes:     rep.Stats.SnapshotBytes,
		AnalysisSchedules: d.Stats.Schedules,
		TestSetSize:       d.Stats.TestSet,
		MemAccesses:       d.Stats.MemAccesses,
		FlipsExecuted:     d.Stats.FlipsExecuted,
		FlipsSkipped:      d.Stats.FlipsSkipped,
		PriorHits:         d.Stats.PriorHits,
		SlicesTried:       1,
		ExecutedInstrs:    rep.Stats.ExecutedInstrs + d.Stats.ExecutedInstrs,
		ReplayedInstrs:    rep.Stats.ReplayedInstrs + d.Stats.ReplayedInstrs,
		SavedInstrs:       rep.Stats.SavedInstrs + d.Stats.SavedInstrs,
		PrefixHits:        rep.Stats.PrefixHits + d.Stats.PrefixHits,
		PinnedBytes:       maxU64(rep.Stats.PinnedBytes, d.Stats.PinnedBytes),
		ReproduceTime:     rep.Stats.Elapsed,
		DiagnoseTime:      d.Stats.Elapsed,
		Resumed:           rep.Stats.Resumed || d.Stats.Resumed,
		CheckpointAge:     rep.Stats.CheckpointAge,
		Report:            sb.String(),
	}
	for _, p := range rep.Stats.Phases {
		res.Phases = append(res.Phases, PhaseStat{Budget: p.Budget, Schedules: p.Schedules, Elapsed: p.Elapsed})
	}
	ambiguous := make(map[string]bool)
	for _, r := range d.Ambiguous {
		ambiguous[r.Format(prog)] = true
	}
	// The races carry the prior's pair signature, and verdicts settled
	// by the prior (benign or chain members) are marked — a store
	// rebuilt from summaries (see service recovery) must not feed them
	// back to itself.
	priorSkipped := make(map[sched.RaceKey]bool)
	for _, tr := range d.Tested {
		if tr.PriorSkipped {
			priorSkipped[tr.Race.Key()] = true
		}
	}
	for _, r := range d.Chain.Races() {
		res.ChainRaces = append(res.ChainRaces, Race{
			First:        prog.InstrName(r.First.Instr),
			Second:       prog.InstrName(r.Second.Instr),
			FirstThread:  r.First.Thread,
			SecondThread: r.Second.Thread,
			Variable:     variable(r.Addr),
			Phantom:      r.Phantom,
			Ambiguous:    ambiguous[r.Format(prog)],
			Sig:          prior.Signature(prog, r),
			Prior:        priorSkipped[r.Key()],
		})
	}
	for _, r := range d.Benign {
		res.Benign = append(res.Benign, Race{
			First:        prog.InstrName(r.First.Instr),
			Second:       prog.InstrName(r.Second.Instr),
			FirstThread:  r.First.Thread,
			SecondThread: r.Second.Thread,
			Variable:     variable(r.Addr),
			Phantom:      r.Phantom,
			Sig:          prior.Signature(prog, r),
			Prior:        priorSkipped[r.Key()],
		})
	}
	for _, r := range d.Unknown {
		res.Unknown = append(res.Unknown, Race{
			First:        prog.InstrName(r.First.Instr),
			Second:       prog.InstrName(r.Second.Instr),
			FirstThread:  r.First.Thread,
			SecondThread: r.Second.Thread,
			Variable:     variable(r.Addr),
			Phantom:      r.Phantom,
			Sig:          prior.Signature(prog, r),
		})
	}
	res.Partial = d.Partial
	res.PartialReason = d.PartialReason
	return res
}

// FuzzTrace exposes the trace/slicing pipeline for a compiled program:
// it fuzzes until a failure, then returns the modelled slices — useful
// for inspecting what the reproducers would be given.
func FuzzTrace(p *Program, seed int64, maxRuns int) (traceText string, slices []string, err error) {
	fz, err := fuzz.New(p.prog, fuzz.Options{Seed: seed, MaxRuns: maxRuns})
	if err != nil {
		return "", nil, err
	}
	finding, err := fz.Campaign()
	if err != nil {
		return "", nil, err
	}
	if finding == nil {
		return "", nil, fmt.Errorf("aitia: fuzzing found no failure")
	}
	for _, sl := range history.Model(finding.Trace) {
		slices = append(slices, sl.String())
	}
	return finding.Trace.Format(), slices, nil
}

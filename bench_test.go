// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5). Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the real pipeline on the scenario corpus and
// reports the paper's metrics (schedules, interleavings, chain races) via
// b.ReportMetric, so the "shape" columns of Tables 2-3 appear directly in
// the benchmark output.
package aitia_test

import (
	"fmt"
	"testing"

	"aitia"
	"aitia/internal/baselines/coopbl"
	"aitia/internal/baselines/kairux"
	"aitia/internal/baselines/muvi"
	"aitia/internal/core"
	"aitia/internal/eval"
	"aitia/internal/fuzz"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// benchScenario runs the full diagnosis pipeline on one scenario.
func benchScenario(b *testing.B, sc *scenarios.Scenario) {
	b.Helper()
	prog := sc.MustProgram()
	var lifsScheds, caScheds, inter, chain float64
	for i := 0; i < b.N; i++ {
		m, err := kvm.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.Reproduce(m, core.LIFSOptions{
			WantKind:  sc.WantKind,
			WantInstr: sc.WantInstr(),
			LeakCheck: sc.NeedsLeakCheck(),
		})
		if err != nil {
			b.Fatal(err)
		}
		d, err := core.Analyze(m, rep, core.AnalysisOptions{LeakCheck: sc.NeedsLeakCheck()})
		if err != nil {
			b.Fatal(err)
		}
		lifsScheds = float64(rep.Stats.Schedules)
		caScheds = float64(d.Stats.Schedules)
		inter = float64(rep.Stats.Interleavings)
		chain = float64(d.Chain.Len())
	}
	b.ReportMetric(lifsScheds, "LIFS-scheds")
	b.ReportMetric(caScheds, "CA-scheds")
	b.ReportMetric(inter, "interleavings")
	b.ReportMetric(chain, "chain-races")
}

// BenchmarkTable2CVEs regenerates Table 2: one sub-benchmark per CVE,
// reporting LIFS/CA schedule counts and the interleaving count.
func BenchmarkTable2CVEs(b *testing.B) {
	for _, sc := range scenarios.Table2() {
		b.Run(sc.Title, func(b *testing.B) { benchScenario(b, sc) })
	}
}

// BenchmarkTable3Syzkaller regenerates Table 3: one sub-benchmark per
// Syzkaller bug, reporting the same metrics plus the chain size.
func BenchmarkTable3Syzkaller(b *testing.B) {
	for _, sc := range scenarios.Table3() {
		b.Run(sc.Name, func(b *testing.B) { benchScenario(b, sc) })
	}
}

// BenchmarkTable1Baselines regenerates the Table 1 requirements matrix:
// the three reimplemented prior approaches run against the full Syzkaller
// corpus and their completeness is measured.
func BenchmarkTable1Baselines(b *testing.B) {
	var coopComplete, muviReaches, kairComplete float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunBaselines(scenarios.GroupSyzkaller, 1)
		if err != nil {
			b.Fatal(err)
		}
		coopComplete, muviReaches, kairComplete = 0, 0, 0
		for _, r := range rows {
			if r.CoopBLComplete {
				coopComplete++
			}
			if r.MUVIReaches {
				muviReaches++
			}
			if r.KairuxComplete {
				kairComplete++
			}
		}
	}
	b.ReportMetric(coopComplete, "coopbl-complete")
	b.ReportMetric(muviReaches, "muvi-reaches")
	b.ReportMetric(kairComplete, "kairux-complete")
}

// BenchmarkConciseness regenerates the §5.2 conciseness statistics over
// the Syzkaller corpus: accesses vs. races vs. chain races.
func BenchmarkConciseness(b *testing.B) {
	var c eval.Conciseness
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunGroup(scenarios.GroupSyzkaller)
		if err != nil {
			b.Fatal(err)
		}
		c = eval.Concise(rows)
	}
	b.ReportMetric(c.AvgMemAccesses, "avg-accesses")
	b.ReportMetric(c.AvgRaces, "avg-races")
	b.ReportMetric(c.AvgChainRaces, "avg-chain-races")
}

// BenchmarkFigure1Quickstart regenerates Figure 1's diagnosis through the
// public API.
func BenchmarkFigure1Quickstart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := aitia.DiagnoseScenario("fig1", aitia.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Chain == "" {
			b.Fatal("empty chain")
		}
	}
}

// BenchmarkFigure4Patterns regenerates the three complex concurrency
// patterns of Figure 4 (kworker, RCU chain, three objects).
func BenchmarkFigure4Patterns(b *testing.B) {
	for _, name := range []string{"fig4a", "fig4b", "fig4c"} {
		sc, _ := scenarios.ByName(name)
		b.Run(name, func(b *testing.B) { benchScenario(b, sc) })
	}
}

// BenchmarkFigure5LIFS regenerates the Figure 5 search tree: the LIFS
// exploration with leaf recording, reporting the leaf and pruning counts.
func BenchmarkFigure5LIFS(b *testing.B) {
	var leaves, pruned float64
	for i := 0; i < b.N; i++ {
		ls, rep, err := eval.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		leaves = float64(len(ls))
		pruned = float64(rep.Stats.Pruned)
	}
	b.ReportMetric(leaves, "search-leaves")
	b.ReportMetric(pruned, "pruned")
}

// BenchmarkFigure6CausalitySteps regenerates the Figure 6 walkthrough:
// Causality Analysis on CVE-2017-15649, reporting the test-set size
// (the four races of the paper plus the planted benign one).
func BenchmarkFigure6CausalitySteps(b *testing.B) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var testSet float64
	for i := 0; i < b.N; i++ {
		d, err := core.Analyze(m, rep, core.AnalysisOptions{})
		if err != nil {
			b.Fatal(err)
		}
		testSet = float64(d.Stats.TestSet)
	}
	b.ReportMetric(testSet, "test-set")
}

// BenchmarkFigure7Ambiguity regenerates the §3.4 nested-race ambiguity
// case.
func BenchmarkFigure7Ambiguity(b *testing.B) {
	sc, _ := scenarios.ByName("fig7")
	benchScenario(b, sc)
}

// BenchmarkFigure9Irqfd regenerates the Figure 9 case study, including the
// Kairux comparison of §5.3.
func BenchmarkFigure9Irqfd(b *testing.B) {
	sc, _ := scenarios.ByName("syz04-kvm-irqfd")
	prog := sc.MustProgram()
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	runs, err := fz.CollectRuns(200)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m, err := kvm.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Analyze(m, rep, core.AnalysisOptions{}); err != nil {
			b.Fatal(err)
		}
		if _, err := kairux.Analyze(rep.Run, runs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the four design-choice ablations of DESIGN.md
// (pruning, least-interleaving-first, phantom races, critical-section
// units).
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.RunAblations()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("ablations = %d", len(rows))
		}
	}
}

// BenchmarkReproductionComparison measures LIFS vs random scheduling on
// the hardest bug (#8 CAN, the only 2-interleaving reproduction in the
// corpus), reporting both schedule counts.
func BenchmarkReproductionComparison(b *testing.B) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	prog := sc.MustProgram()
	var lifsN, randN float64
	for i := 0; i < b.N; i++ {
		m, err := kvm.New(prog)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind})
		if err != nil {
			b.Fatal(err)
		}
		lifsN = float64(rep.Stats.Schedules)
		fz, err := fuzz.New(prog, fuzz.Options{Seed: int64(i + 1), WantKind: sc.WantKind, MaxRuns: 100000})
		if err != nil {
			b.Fatal(err)
		}
		finding, err := fz.Campaign()
		if err != nil || finding == nil {
			b.Fatalf("random campaign: %v, %v", finding, err)
		}
		randN = float64(finding.Runs)
	}
	b.ReportMetric(lifsN, "LIFS-scheds")
	b.ReportMetric(randN, "random-runs")
}

// BenchmarkLIFSScaling measures how the search grows with the number of
// benign races surrounding one real bug — the situation the paper's
// conciseness argument targets (§2.3: benign races inflate the space a
// diagnosis has to consider). Each extra shared statistics counter adds a
// conflicting instruction pair to every thread.
func BenchmarkLIFSScaling(b *testing.B) {
	build := func(counters int) *kir.Program {
		kb := kir.NewBuilder()
		kb.Var("ptr_valid", 0)
		kb.VarAddrOf("ptr", "obj")
		kb.Global("obj", 1, 42)
		for i := 0; i < counters; i++ {
			kb.Var(fmt.Sprintf("stat%d", i), 1)
		}
		a := kb.Func("fa")
		for i := 0; i < counters; i++ {
			a.RefGet(kir.R9, kir.G(fmt.Sprintf("stat%d", i)))
		}
		a.Store(kir.G("ptr_valid"), kir.Imm(1)).L("A1")
		a.Load(kir.R1, kir.G("ptr")).L("A2")
		a.Load(kir.R2, kir.Ind(kir.R1, 0))
		a.Ret()
		fb := kb.Func("fb")
		for i := 0; i < counters; i++ {
			fb.RefGet(kir.R9, kir.G(fmt.Sprintf("stat%d", i)))
		}
		fb.Load(kir.R1, kir.G("ptr_valid")).L("B1")
		fb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		fb.Store(kir.G("ptr"), kir.Imm(0)).L("B2")
		fb.At("out").Ret()
		kb.Thread("A", "fa")
		kb.Thread("B", "fb")
		prog, err := kb.Build()
		if err != nil {
			b.Fatal(err)
		}
		return prog
	}
	for _, counters := range []int{0, 2, 4, 8} {
		prog := build(counters)
		b.Run(fmt.Sprintf("benign-races=%d", counters), func(b *testing.B) {
			var scheds float64
			for i := 0; i < b.N; i++ {
				m, err := kvm.New(prog)
				if err != nil {
					b.Fatal(err)
				}
				rep, err := core.Reproduce(m, core.LIFSOptions{
					WantKind: sanitizer.KindNullDeref,
				})
				if err != nil {
					b.Fatal(err)
				}
				scheds = float64(rep.Stats.Schedules)
			}
			b.ReportMetric(scheds, "LIFS-scheds")
		})
	}
}

// BenchmarkLIFSParallel measures the sharded search (LIFSOptions.Workers)
// against the serial one: on a permutation-heavy synthetic stress scenario
// whose top-level branches carry equal subtree mass, and on the hardest
// corpus reproduction (#8 CAN, the only 2-interleaving bug). Parallel and
// serial searches return identical reproductions (core's
// TestParallelReproduceMatchesSerial proves it); this benchmark isolates
// the wall-clock effect of the sharding. Speedup requires spare CPUs — on
// a single-core runner the workers serialize and the numbers bound the
// sharding overhead instead.
func BenchmarkLIFSParallel(b *testing.B) {
	stress, err := eval.ParallelStressProgram(7, 40)
	if err != nil {
		b.Fatal(err)
	}
	syz, _ := scenarios.ByName("syz08-j1939-refcount")
	cases := []struct {
		name string
		prog *kir.Program
		opts core.LIFSOptions
	}{
		{"stress", stress, core.LIFSOptions{WantKind: sanitizer.KindNullDeref, MaxSchedules: 1 << 30}},
		{"syz08-j1939-refcount", syz.MustProgram(), core.LIFSOptions{WantKind: syz.WantKind, WantInstr: syz.WantInstr()}},
	}
	for _, c := range cases {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				var scheds, bytes float64
				for i := 0; i < b.N; i++ {
					m, err := kvm.New(c.prog)
					if err != nil {
						b.Fatal(err)
					}
					opts := c.opts
					opts.Workers = workers
					rep, err := core.Reproduce(m, opts)
					if err != nil {
						b.Fatal(err)
					}
					scheds = float64(rep.Stats.Schedules)
					bytes = float64(rep.Stats.SnapshotBytes)
				}
				b.ReportMetric(scheds, "schedules")
				b.ReportMetric(bytes, "snap-bytes")
			})
		}
	}
}

// BenchmarkSnapshotCoWVsDeep compares the copy-on-write Snapshot/Restore
// pair against the retained deep-copy baseline under the searcher's usage
// pattern: checkpoint, execute a burst of steps, revert. The deep variant
// copies the whole state every cycle, so its cost scales with total state
// width; the CoW variant journals only what the burst touches. The two
// sub-cases span that axis: a small corpus scenario (where the deep copy
// is cheap and the two are comparable) and a kernel-scale wide state with
// 4096 globals (where CoW wins by the width ratio).
func BenchmarkSnapshotCoWVsDeep(b *testing.B) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	wide, err := eval.WideStateProgram(4096)
	if err != nil {
		b.Fatal(err)
	}
	const burst = 32
	step := func(m *kvm.Machine) {
		for s := 0; s < burst; s++ {
			if m.Failure() != nil {
				return
			}
			run := m.Runnable()
			if len(run) == 0 {
				return
			}
			if _, err := m.Step(run[0]); err != nil {
				b.Fatal(err)
			}
		}
	}
	for _, c := range []struct {
		name string
		prog *kir.Program
	}{
		{"syz08-j1939-refcount", sc.MustProgram()},
		{"wide-4096", wide},
	} {
		b.Run(c.name+"/cow", func(b *testing.B) {
			m, err := kvm.New(c.prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := m.Snapshot()
				step(m)
				m.Restore(snap)
			}
		})
		b.Run(c.name+"/deep", func(b *testing.B) {
			m, err := kvm.New(c.prog)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				snap := m.DeepSnapshot()
				step(m)
				m.RestoreDeep(snap)
			}
		})
	}
}

// --- substrate micro-benchmarks (the simulator itself) ---

// BenchmarkMachineStep measures raw instruction throughput of the kernel
// VM.
func BenchmarkMachineStep(b *testing.B) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	init := m.Snapshot()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		if m.Failure() != nil || m.AllDone() {
			b.StopTimer()
			m.Restore(init)
			b.StartTimer()
		}
		run := m.Runnable()
		if len(run) == 0 {
			b.StopTimer()
			m.Restore(init)
			b.StartTimer()
			continue
		}
		if _, err := m.Step(run[0]); err != nil {
			b.Fatal(err)
		}
		steps++
	}
	_ = steps
}

// BenchmarkSnapshotRestore measures the VM-revert cost that dominates
// LIFS's depth-first search.
func BenchmarkSnapshotRestore(b *testing.B) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	m, err := kvm.New(sc.MustProgram())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap := m.Snapshot()
		m.Restore(snap)
	}
}

// BenchmarkEnforcedRun measures one schedule enforcement (the unit of
// both LIFS and Causality Analysis).
func BenchmarkEnforcedRun(b *testing.B) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		b.Fatal(err)
	}
	init := m.Snapshot()
	enf := sched.NewEnforcer(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Restore(init)
		if _, err := enf.Run(sched.Serial("setsockopt", "bind"), sched.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRaceExtraction measures test-set construction from a failing
// run.
func BenchmarkRaceExtraction(b *testing.B) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	m, err := kvm.New(sc.MustProgram())
	if err != nil {
		b.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if races := sched.ExtractRaces(rep.Run); len(races) == 0 {
			b.Fatal("no races")
		}
	}
}

// BenchmarkFuzzerRun measures the bug finder's per-run cost.
func BenchmarkFuzzerRun(b *testing.B) {
	sc, _ := scenarios.ByName("fig5")
	fz, err := fuzz.New(sc.MustProgram(), fuzz.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fz.CollectRuns(1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMUVIMining measures correlation mining over a 400-run corpus.
func BenchmarkMUVIMining(b *testing.B) {
	sc, _ := scenarios.ByName("syz03-l2tp-uaf")
	corpusProg, err := sc.CorpusProgram()
	if err != nil {
		b.Fatal(err)
	}
	fz, err := fuzz.New(corpusProg, fuzz.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	runs, err := fz.CollectRuns(eval.CorpusRuns)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		muvi.Mine(runs, muvi.Options{})
	}
}

// BenchmarkCoopBLRanking measures pattern extraction and ranking over a
// 400-run corpus.
func BenchmarkCoopBLRanking(b *testing.B) {
	sc, _ := scenarios.ByName("syz05-rxrpc-local")
	fz, err := fuzz.New(sc.MustProgram(), fuzz.Options{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	runs, err := fz.CollectRuns(eval.CorpusRuns)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := coopbl.Analyze(runs); err != nil {
			b.Fatal(err)
		}
	}
}

package kir

import "fmt"

// Op identifies an IR operation.
type Op uint8

// The complete instruction set. See the package documentation for the role
// of each group.
const (
	// OpNop does nothing. It still has a static identity and can carry a
	// label, which makes it useful as an observable program point.
	OpNop Op = iota

	// Data movement and arithmetic (registers and immediates only; these
	// never touch shared memory).
	OpMov // Dst <- A
	OpAdd // Dst <- Dst + A
	OpSub // Dst <- Dst - A
	OpAnd // Dst <- Dst & A
	OpOr  // Dst <- Dst | A
	OpXor // Dst <- Dst ^ A

	// Shared-memory accesses.
	OpLoad  // Dst <- mem[addr(A)]
	OpStore // mem[addr(A)] <- value(B)

	// Control flow. Branches compare value(A) with value(B) and jump to
	// Target on success.
	OpBeq // branch if A == B
	OpBne // branch if A != B
	OpBlt // branch if A < B (signed)
	OpBge // branch if A >= B (signed)
	OpJmp // unconditional branch to Target

	OpCall // call function Target (shared register file, like a kernel stack)
	OpRet  // return from current function; returning from the entry ends the thread

	// Synchronization. The lock identity is the address of operand A.
	OpLock   // acquire; blocks while another thread holds it
	OpUnlock // release

	// Heap management (KASAN-style checking lives in package mem).
	OpAlloc // Dst <- address of a new object of Size words
	OpFree  // free the object whose base address is value(A)

	// Assertion: fail the kernel with a BUG if value(A) != 0.
	OpBugOn

	// Linked-list intrinsics. The list identity is the address of operand
	// A; each intrinsic performs exactly one shared-memory access to that
	// address (adds and deletes are writes, membership tests are reads).
	OpListAdd // add value(B) to list at addr(A)
	OpListDel // delete value(B) from list at addr(A); no-op if absent
	OpListHas // Dst <- 1 if value(B) is in list at addr(A), else 0

	// Atomic reference counting: a single read-modify-write access.
	OpRefGet // mem[addr(A)] += 1; Dst <- new value
	OpRefPut // mem[addr(A)] -= 1; Dst <- new value

	// Asynchronous kernel threads. Both spawn a new thread running
	// function Target with register r0 set to value(A) (pass Imm(0) when
	// no argument is needed). OpQueueWork models queue_work() creating a
	// kworker; OpCallRCU models call_rcu() registering a softirq callback.
	OpQueueWork
	OpCallRCU

	// OpYield models cond_resched(): an explicit scheduling point with no
	// memory effect.
	OpYield

	// OpExit ends the thread immediately.
	OpExit

	opCount // sentinel; keep last
)

// opInfo describes static properties of an opcode.
type opInfo struct {
	name     string
	memRead  bool // performs a shared-memory read
	memWrite bool // performs a shared-memory write
	branch   bool // uses Target as a branch label
	call     bool // uses Target as a function name
}

var opTable = [opCount]opInfo{
	OpNop:       {name: "nop"},
	OpMov:       {name: "mov"},
	OpAdd:       {name: "add"},
	OpSub:       {name: "sub"},
	OpAnd:       {name: "and"},
	OpOr:        {name: "or"},
	OpXor:       {name: "xor"},
	OpLoad:      {name: "load", memRead: true},
	OpStore:     {name: "store", memWrite: true},
	OpBeq:       {name: "beq", branch: true},
	OpBne:       {name: "bne", branch: true},
	OpBlt:       {name: "blt", branch: true},
	OpBge:       {name: "bge", branch: true},
	OpJmp:       {name: "jmp", branch: true},
	OpCall:      {name: "call", call: true},
	OpRet:       {name: "ret"},
	OpLock:      {name: "lock"},
	OpUnlock:    {name: "unlock"},
	OpAlloc:     {name: "alloc"},
	OpFree:      {name: "free", memWrite: true},
	OpBugOn:     {name: "bug_on"},
	OpListAdd:   {name: "list_add", memWrite: true},
	OpListDel:   {name: "list_del", memWrite: true},
	OpListHas:   {name: "list_has", memRead: true},
	OpRefGet:    {name: "ref_get", memRead: true, memWrite: true},
	OpRefPut:    {name: "ref_put", memRead: true, memWrite: true},
	OpQueueWork: {name: "queue_work", call: true},
	OpCallRCU:   {name: "call_rcu", call: true},
	OpYield:     {name: "yield"},
	OpExit:      {name: "exit"},
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount && opTable[o].name != "" }

// AccessesMemory reports whether the opcode performs a shared-memory access
// that participates in data-race detection. OpAlloc initializes fresh,
// thread-private memory and is excluded; OpFree is a write (it conflicts
// with every access to the object, which is how use-after-free races are
// detected).
func (o Op) AccessesMemory() bool {
	return o.Valid() && (opTable[o].memRead || opTable[o].memWrite)
}

// WritesMemory reports whether the opcode's shared-memory access is a store
// (or read-modify-write).
func (o Op) WritesMemory() bool { return o.Valid() && opTable[o].memWrite }

// ReadsMemory reports whether the opcode's shared-memory access includes a
// read.
func (o Op) ReadsMemory() bool { return o.Valid() && opTable[o].memRead }

// IsBranch reports whether the opcode uses Target as a branch label.
func (o Op) IsBranch() bool { return o.Valid() && opTable[o].branch }

// UsesFunc reports whether the opcode uses Target as a function name.
func (o Op) UsesFunc() bool { return o.Valid() && opTable[o].call }

// opByName maps assembler mnemonics back to opcodes (used by kasm).
var opByName = func() map[string]Op {
	m := make(map[string]Op, opCount)
	for op := Op(0); op < opCount; op++ {
		if opTable[op].name != "" {
			m[opTable[op].name] = op
		}
	}
	return m
}()

// OpByName returns the opcode for an assembler mnemonic.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

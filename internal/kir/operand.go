package kir

import "fmt"

// Reg names a general-purpose register. Every thread has NumRegs registers;
// a thread's functions share the register file (registers model the values
// a kernel execution context carries across calls).
type Reg uint8

// NumRegs is the size of each thread's register file.
const NumRegs = 16

// Convenient register names for builders and tests.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
)

// String returns the assembler name of the register.
func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// OperandKind discriminates Operand variants.
type OperandKind uint8

const (
	// KindNone marks an unused operand slot.
	KindNone OperandKind = iota
	// KindImm is an immediate signed 64-bit value.
	KindImm
	// KindReg is a register value.
	KindReg
	// KindGlobal is the address of a global symbol plus a constant word
	// offset (for struct fields of globals).
	KindGlobal
	// KindInd is a register-indirect address: the base address held in a
	// register plus a constant word offset (for heap-object fields).
	KindInd
)

// Operand is an instruction operand. Value operands are immediates or
// registers; address operands are globals or register-indirect references.
type Operand struct {
	Kind OperandKind
	Imm  int64  // immediate value (KindImm)
	Reg  Reg    // register (KindReg, KindInd base)
	Sym  string // global symbol (KindGlobal)
	Off  int64  // word offset (KindGlobal, KindInd)
}

// Imm returns an immediate operand.
func Imm(v int64) Operand { return Operand{Kind: KindImm, Imm: v} }

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// G returns the address of global symbol sym.
func G(sym string) Operand { return Operand{Kind: KindGlobal, Sym: sym} }

// GOff returns the address of global symbol sym plus a word offset.
func GOff(sym string, off int64) Operand {
	return Operand{Kind: KindGlobal, Sym: sym, Off: off}
}

// Ind returns a register-indirect address: [base+off].
func Ind(base Reg, off int64) Operand {
	return Operand{Kind: KindInd, Reg: base, Off: off}
}

// IsValue reports whether the operand can be evaluated to a plain value
// (immediate or register).
func (o Operand) IsValue() bool { return o.Kind == KindImm || o.Kind == KindReg }

// IsAddr reports whether the operand denotes a memory address.
func (o Operand) IsAddr() bool { return o.Kind == KindGlobal || o.Kind == KindInd }

// IsNone reports whether the operand slot is unused.
func (o Operand) IsNone() bool { return o.Kind == KindNone }

// String renders the operand in assembler syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindNone:
		return "_"
	case KindImm:
		return fmt.Sprintf("%d", o.Imm)
	case KindReg:
		return o.Reg.String()
	case KindGlobal:
		if o.Off != 0 {
			return fmt.Sprintf("[%s+%d]", o.Sym, o.Off)
		}
		return fmt.Sprintf("[%s]", o.Sym)
	case KindInd:
		if o.Off != 0 {
			return fmt.Sprintf("[%s+%d]", o.Reg, o.Off)
		}
		return fmt.Sprintf("[%s]", o.Reg)
	default:
		return fmt.Sprintf("operand(%d)", uint8(o.Kind))
	}
}

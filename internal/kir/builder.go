package kir

import "fmt"

// Builder constructs Programs fluently. The builder records errors instead
// of returning them at every step; Build reports the first one.
//
//	b := kir.NewBuilder()
//	b.Global("po_running", 1, 1)
//	f := b.Func("fanout_add")
//	f.Load(kir.R1, kir.G("po_running")).L("A2")
//	f.Beq(kir.R(kir.R1), kir.Imm(0), "out")
//	...
//	prog, err := b.Build()
type Builder struct {
	prog *Program
	err  error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{prog: &Program{Funcs: make(map[string]*Func)}}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Global declares a global variable of the given size with initial values.
func (b *Builder) Global(name string, size int64, init ...int64) *Builder {
	b.prog.Globals = append(b.prog.Globals, GlobalDef{Name: name, Size: size, Init: init})
	return b
}

// Var declares a single-word global with an initial value — the common case
// for the paper's examples (po->running, po->fanout, ...).
func (b *Builder) Var(name string, init int64) *Builder {
	return b.Global(name, 1, init)
}

// HeapObj declares a single-word global holding a pointer to a
// pre-allocated heap object of size words, initialized with init values.
// The object gets full KASAN tracking (redzones, free state) but is exempt
// from leak checking.
func (b *Builder) HeapObj(name string, size int64, init ...int64) *Builder {
	b.prog.Globals = append(b.prog.Globals, GlobalDef{
		Name: name, Size: 1, HeapSize: size, Init: init,
	})
	return b
}

// VarAddrOf declares a single-word global initialized with the address of
// another global ("ptr initially points at obj").
func (b *Builder) VarAddrOf(name, sym string) *Builder {
	b.prog.Globals = append(b.prog.Globals, GlobalDef{
		Name: name, Size: 1, AddrOf: map[int64]string{0: sym},
	})
	return b
}

// Thread declares a syscall thread with the given name and entry function.
func (b *Builder) Thread(name, entry string) *Builder {
	b.prog.Threads = append(b.prog.Threads, ThreadDef{Name: name, Entry: entry, Kind: KindSyscall})
	return b
}

// ThreadArg declares a syscall thread whose register r0 starts at arg.
func (b *Builder) ThreadArg(name, entry string, arg int64) *Builder {
	b.prog.Threads = append(b.prog.Threads, ThreadDef{Name: name, Entry: entry, Kind: KindSyscall, Arg: arg})
	return b
}

// ThreadIRQ declares a hardware-interrupt handler context (the §4.6
// extension): the handler can be injected by the scheduler at any
// conflicting instruction, modelling an interrupt firing at an arbitrary
// point of the racing system call.
func (b *Builder) ThreadIRQ(name, entry string) *Builder {
	b.prog.Threads = append(b.prog.Threads, ThreadDef{Name: name, Entry: entry, Kind: KindHardIRQ})
	return b
}

// Func starts (or continues) a function body.
func (b *Builder) Func(name string) *FuncBuilder {
	f, ok := b.prog.Funcs[name]
	if !ok {
		f = &Func{Name: name, labels: make(map[string]int)}
		b.prog.Funcs[name] = f
	}
	return &FuncBuilder{b: b, f: f}
}

// Build finalizes and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	if err := b.prog.Finalize(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build for statically known-good programs (the scenario
// corpus); it panics on error.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder appends instructions to one function.
type FuncBuilder struct {
	b *Builder
	f *Func
}

// InstrRef allows labelling the most recently emitted instruction.
type InstrRef struct{ in *Instr }

// L attaches a paper-style label (e.g. "A6") to the instruction.
func (r InstrRef) L(label string) InstrRef {
	if r.in != nil {
		r.in.Label = label
	}
	return r
}

func (fb *FuncBuilder) emit(in Instr) InstrRef {
	fb.f.Instrs = append(fb.f.Instrs, in)
	return InstrRef{in: &fb.f.Instrs[len(fb.f.Instrs)-1]}
}

// At defines a local branch-target label at the position of the next
// emitted instruction.
func (fb *FuncBuilder) At(label string) *FuncBuilder {
	if _, dup := fb.f.labels[label]; dup {
		fb.b.fail("kir: duplicate branch label %q in %s", label, fb.f.Name)
		return fb
	}
	fb.f.labels[label] = len(fb.f.Instrs)
	return fb
}

// Nop emits an observable no-op.
func (fb *FuncBuilder) Nop() InstrRef { return fb.emit(Instr{Op: OpNop}) }

// Mov emits dst <- a.
func (fb *FuncBuilder) Mov(dst Reg, a Operand) InstrRef {
	return fb.emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// Add emits dst <- dst + a.
func (fb *FuncBuilder) Add(dst Reg, a Operand) InstrRef {
	return fb.emit(Instr{Op: OpAdd, Dst: dst, A: a})
}

// Sub emits dst <- dst - a.
func (fb *FuncBuilder) Sub(dst Reg, a Operand) InstrRef {
	return fb.emit(Instr{Op: OpSub, Dst: dst, A: a})
}

// And emits dst <- dst & a.
func (fb *FuncBuilder) And(dst Reg, a Operand) InstrRef {
	return fb.emit(Instr{Op: OpAnd, Dst: dst, A: a})
}

// Or emits dst <- dst | a.
func (fb *FuncBuilder) Or(dst Reg, a Operand) InstrRef {
	return fb.emit(Instr{Op: OpOr, Dst: dst, A: a})
}

// Xor emits dst <- dst ^ a.
func (fb *FuncBuilder) Xor(dst Reg, a Operand) InstrRef {
	return fb.emit(Instr{Op: OpXor, Dst: dst, A: a})
}

// Load emits dst <- mem[addr].
func (fb *FuncBuilder) Load(dst Reg, addr Operand) InstrRef {
	return fb.emit(Instr{Op: OpLoad, Dst: dst, A: addr})
}

// Store emits mem[addr] <- v.
func (fb *FuncBuilder) Store(addr, v Operand) InstrRef {
	return fb.emit(Instr{Op: OpStore, A: addr, B: v})
}

// Beq emits a branch to label when a == b.
func (fb *FuncBuilder) Beq(a, b Operand, label string) InstrRef {
	return fb.emit(Instr{Op: OpBeq, A: a, B: b, Target: label})
}

// Bne emits a branch to label when a != b.
func (fb *FuncBuilder) Bne(a, b Operand, label string) InstrRef {
	return fb.emit(Instr{Op: OpBne, A: a, B: b, Target: label})
}

// Blt emits a branch to label when a < b.
func (fb *FuncBuilder) Blt(a, b Operand, label string) InstrRef {
	return fb.emit(Instr{Op: OpBlt, A: a, B: b, Target: label})
}

// Bge emits a branch to label when a >= b.
func (fb *FuncBuilder) Bge(a, b Operand, label string) InstrRef {
	return fb.emit(Instr{Op: OpBge, A: a, B: b, Target: label})
}

// Jmp emits an unconditional branch to label.
func (fb *FuncBuilder) Jmp(label string) InstrRef {
	return fb.emit(Instr{Op: OpJmp, Target: label})
}

// Call emits a call of fn (shared register file).
func (fb *FuncBuilder) Call(fn string) InstrRef {
	return fb.emit(Instr{Op: OpCall, Target: fn})
}

// Ret emits a return.
func (fb *FuncBuilder) Ret() InstrRef { return fb.emit(Instr{Op: OpRet}) }

// Lock emits acquisition of the mutex at addr.
func (fb *FuncBuilder) Lock(addr Operand) InstrRef {
	return fb.emit(Instr{Op: OpLock, A: addr})
}

// Unlock emits release of the mutex at addr.
func (fb *FuncBuilder) Unlock(addr Operand) InstrRef {
	return fb.emit(Instr{Op: OpUnlock, A: addr})
}

// Alloc emits dst <- alloc(size).
func (fb *FuncBuilder) Alloc(dst Reg, size int64) InstrRef {
	return fb.emit(Instr{Op: OpAlloc, Dst: dst, Size: size})
}

// Free emits free(v).
func (fb *FuncBuilder) Free(v Operand) InstrRef {
	return fb.emit(Instr{Op: OpFree, A: v})
}

// BugOn emits BUG_ON(v != 0).
func (fb *FuncBuilder) BugOn(v Operand) InstrRef {
	return fb.emit(Instr{Op: OpBugOn, A: v})
}

// ListAdd emits insertion of v into the list at addr.
func (fb *FuncBuilder) ListAdd(addr, v Operand) InstrRef {
	return fb.emit(Instr{Op: OpListAdd, A: addr, B: v})
}

// ListDel emits removal of v from the list at addr.
func (fb *FuncBuilder) ListDel(addr, v Operand) InstrRef {
	return fb.emit(Instr{Op: OpListDel, A: addr, B: v})
}

// ListHas emits dst <- (v in list at addr).
func (fb *FuncBuilder) ListHas(dst Reg, addr, v Operand) InstrRef {
	return fb.emit(Instr{Op: OpListHas, Dst: dst, A: addr, B: v})
}

// RefGet emits an atomic increment of the refcount at addr; dst receives
// the new value.
func (fb *FuncBuilder) RefGet(dst Reg, addr Operand) InstrRef {
	return fb.emit(Instr{Op: OpRefGet, Dst: dst, A: addr})
}

// RefPut emits an atomic decrement of the refcount at addr; dst receives
// the new value.
func (fb *FuncBuilder) RefPut(dst Reg, addr Operand) InstrRef {
	return fb.emit(Instr{Op: OpRefPut, Dst: dst, A: addr})
}

// QueueWork emits queue_work(fn, arg): spawn a kworker thread running fn
// with r0 = arg.
func (fb *FuncBuilder) QueueWork(fn string, arg Operand) InstrRef {
	return fb.emit(Instr{Op: OpQueueWork, Target: fn, A: arg})
}

// CallRCU emits call_rcu(fn, arg): register an RCU callback running fn in
// softirq context with r0 = arg.
func (fb *FuncBuilder) CallRCU(fn string, arg Operand) InstrRef {
	return fb.emit(Instr{Op: OpCallRCU, Target: fn, A: arg})
}

// Yield emits a cond_resched() scheduling point.
func (fb *FuncBuilder) Yield() InstrRef { return fb.emit(Instr{Op: OpYield}) }

// Exit emits immediate thread termination.
func (fb *FuncBuilder) Exit() InstrRef { return fb.emit(Instr{Op: OpExit}) }

package kir

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Hash returns a stable content hash of the program: a hex-encoded
// SHA-256 over a canonical serialization of its globals, threads,
// functions, instructions and labels. Two programs that assemble to the
// same instructions hash identically — in particular the hash is
// invariant under a disassemble/re-parse round trip — while any change
// to an opcode, operand, label, global layout or thread set changes it.
//
// The hash is the cache key for diagnosis results: a crash report
// resubmitted as the same program (even re-serialized) maps to the same
// key, so a service can answer it without re-running LIFS. It also keys
// durable checkpoints and journal records, where it is recomputed on
// every job transition — so the digest of a finalized (hence immutable)
// program is computed once and cached.
func (p *Program) Hash() string {
	if !p.finalized || p.hashCache == nil {
		return p.computeHash()
	}
	p.hashCache.once.Do(func() { p.hashCache.val = p.computeHash() })
	return p.hashCache.val
}

func (p *Program) computeHash() string {
	h := sha256.New()

	// Globals in declared order: the order determines the address layout,
	// which races and chains refer to.
	writeInt(h, len(p.Globals))
	for _, g := range p.Globals {
		writeString(h, g.Name)
		writeInt64(h, g.Size)
		writeInt64(h, g.HeapSize)
		writeInt(h, len(g.Init))
		for _, v := range g.Init {
			writeInt64(h, v)
		}
		offs := make([]int64, 0, len(g.AddrOf))
		for off := range g.AddrOf {
			offs = append(offs, off)
		}
		sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
		writeInt(h, len(offs))
		for _, off := range offs {
			writeInt64(h, off)
			writeString(h, g.AddrOf[off])
		}
	}

	// Threads in declared order (the order is the fallback scheduling
	// order and part of the program's identity).
	writeInt(h, len(p.Threads))
	for _, t := range p.Threads {
		writeString(h, t.Name)
		writeString(h, t.Entry)
		writeInt(h, int(t.Kind))
		writeInt64(h, t.Arg)
	}

	// Functions in name order (the order Finalize assigns identities in).
	names := make([]string, 0, len(p.Funcs))
	for name := range p.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)
	writeInt(h, len(names))
	for _, name := range names {
		f := p.Funcs[name]
		writeString(h, name)
		// Branch-target labels, sorted by name, with their positions.
		labels := f.Labels()
		lnames := make([]string, 0, len(labels))
		for l := range labels {
			lnames = append(lnames, l)
		}
		sort.Strings(lnames)
		writeInt(h, len(lnames))
		for _, l := range lnames {
			writeString(h, l)
			writeInt(h, labels[l])
		}
		writeInt(h, len(f.Instrs))
		for _, in := range f.Instrs {
			writeInt(h, int(in.Op))
			writeInt(h, int(in.Dst))
			writeOperand(h, in.A)
			writeOperand(h, in.B)
			writeInt64(h, in.Size)
			writeString(h, in.Target)
			writeString(h, in.Label)
		}
	}

	return fmt.Sprintf("%x", h.Sum(nil))
}

func writeOperand(w io.Writer, o Operand) {
	writeInt(w, int(o.Kind))
	writeInt64(w, o.Imm)
	writeInt(w, int(o.Reg))
	writeString(w, o.Sym)
	writeInt64(w, o.Off)
}

func writeInt(w io.Writer, v int) { writeInt64(w, int64(v)) }

func writeInt64(w io.Writer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.Write(buf[:])
}

// writeString is length-prefixed so adjacent fields cannot alias.
func writeString(w io.Writer, s string) {
	writeInt(w, len(s))
	io.WriteString(w, s)
}

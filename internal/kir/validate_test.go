package kir

import (
	"strings"
	"testing"
)

// TestInstrValidationMatrix exercises the operand-shape rules of every
// opcode: each malformed instruction must be rejected at Finalize with a
// message naming the problem.
func TestInstrValidationMatrix(t *testing.T) {
	cases := []struct {
		name string
		in   Instr
		want string // "" means valid
	}{
		{"nop ok", Instr{Op: OpNop}, ""},
		{"yield ok", Instr{Op: OpYield}, ""},
		{"ret ok", Instr{Op: OpRet}, ""},
		{"exit ok", Instr{Op: OpExit}, ""},

		{"mov ok", Instr{Op: OpMov, Dst: R1, A: Imm(5)}, ""},
		{"mov addr operand", Instr{Op: OpMov, Dst: R1, A: G("g")}, "must be a value"},
		{"add reg ok", Instr{Op: OpAdd, Dst: R1, A: R(R2)}, ""},
		{"xor no operand", Instr{Op: OpXor, Dst: R1}, "must be a value"},

		{"load ok", Instr{Op: OpLoad, Dst: R1, A: G("g")}, ""},
		{"load imm", Instr{Op: OpLoad, Dst: R1, A: Imm(1)}, "must be an address"},
		{"store ok", Instr{Op: OpStore, A: Ind(R1, 2), B: Imm(1)}, ""},
		{"store no value", Instr{Op: OpStore, A: G("g")}, "must be a value"},
		{"store addr value", Instr{Op: OpStore, A: G("g"), B: G("g")}, "must be a value"},

		{"beq ok", Instr{Op: OpBeq, A: R(R1), B: Imm(0), Target: "l"}, ""},
		{"beq no target", Instr{Op: OpBeq, A: R(R1), B: Imm(0)}, "needs a target"},
		{"bne addr operand", Instr{Op: OpBne, A: G("g"), B: Imm(0), Target: "l"}, "must be values"},
		{"jmp ok", Instr{Op: OpJmp, Target: "l"}, ""},
		{"jmp no target", Instr{Op: OpJmp}, "needs a target"},

		{"call ok", Instr{Op: OpCall, Target: "f"}, ""},
		{"call no target", Instr{Op: OpCall}, "needs a function"},
		{"queue_work ok", Instr{Op: OpQueueWork, Target: "f", A: Imm(0)}, ""},
		{"queue_work addr arg", Instr{Op: OpQueueWork, Target: "f", A: G("g")}, "must be a value"},
		{"call_rcu ok no arg", Instr{Op: OpCallRCU, Target: "f"}, ""},

		{"lock ok", Instr{Op: OpLock, A: G("g")}, ""},
		{"lock value", Instr{Op: OpLock, A: Imm(1)}, "must be an address"},
		{"unlock ok", Instr{Op: OpUnlock, A: G("g")}, ""},
		{"ref_get imm", Instr{Op: OpRefGet, Dst: R1, A: Imm(7)}, "must be an address"},
		{"ref_put ok", Instr{Op: OpRefPut, Dst: R1, A: GOff("g", 0)}, ""},

		{"alloc ok", Instr{Op: OpAlloc, Dst: R1, Size: 2}, ""},
		{"alloc zero", Instr{Op: OpAlloc, Dst: R1}, "must be positive"},
		{"alloc negative", Instr{Op: OpAlloc, Dst: R1, Size: -1}, "must be positive"},
		{"free ok", Instr{Op: OpFree, A: R(R1)}, ""},
		{"free addr", Instr{Op: OpFree, A: G("g")}, "must be a value"},
		{"bug_on ok", Instr{Op: OpBugOn, A: Imm(0)}, ""},
		{"bug_on addr", Instr{Op: OpBugOn, A: G("g")}, "must be a value"},

		{"list_add ok", Instr{Op: OpListAdd, A: G("g"), B: Imm(1)}, ""},
		{"list_add value addr", Instr{Op: OpListAdd, A: Imm(0), B: Imm(1)}, "must be the list address"},
		{"list_del no value", Instr{Op: OpListDel, A: G("g")}, "must be a value"},
		{"list_has ok", Instr{Op: OpListHas, Dst: R1, A: G("g"), B: R(R2)}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			b.Var("g", 0)
			f := b.Func("f")
			f.At("l")
			fn := b.prog.Funcs["f"]
			fn.Instrs = append(fn.Instrs, tc.in)
			f.Ret()
			b.Thread("t", "f")
			_, err := b.Build()
			if tc.want == "" {
				if err != nil {
					t.Errorf("valid instruction rejected: %v", err)
				}
			} else if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestInstrStringCoversEveryOpcode: every opcode renders something
// assembler-shaped (and thereby keeps the disassembler total).
func TestInstrStringCoversEveryOpcode(t *testing.T) {
	samples := []Instr{
		{Op: OpNop}, {Op: OpYield}, {Op: OpRet}, {Op: OpExit},
		{Op: OpMov, Dst: R1, A: Imm(5)},
		{Op: OpAdd, Dst: R1, A: R(R2)},
		{Op: OpSub, Dst: R1, A: Imm(1)},
		{Op: OpAnd, Dst: R1, A: Imm(1)},
		{Op: OpOr, Dst: R1, A: Imm(1)},
		{Op: OpXor, Dst: R1, A: Imm(1)},
		{Op: OpLoad, Dst: R1, A: G("g")},
		{Op: OpStore, A: GOff("g", 1), B: Imm(2)},
		{Op: OpBeq, A: R(R1), B: Imm(0), Target: "l"},
		{Op: OpBne, A: R(R1), B: Imm(0), Target: "l"},
		{Op: OpBlt, A: R(R1), B: Imm(0), Target: "l"},
		{Op: OpBge, A: R(R1), B: Imm(0), Target: "l"},
		{Op: OpJmp, Target: "l"},
		{Op: OpCall, Target: "f"},
		{Op: OpLock, A: G("g")},
		{Op: OpUnlock, A: G("g")},
		{Op: OpAlloc, Dst: R1, Size: 4},
		{Op: OpFree, A: R(R1)},
		{Op: OpBugOn, A: R(R1)},
		{Op: OpListAdd, A: G("g"), B: Imm(1)},
		{Op: OpListDel, A: G("g"), B: Imm(1)},
		{Op: OpListHas, Dst: R1, A: G("g"), B: Imm(1)},
		{Op: OpRefGet, Dst: R1, A: G("g")},
		{Op: OpRefPut, Dst: R1, A: G("g")},
		{Op: OpQueueWork, Target: "f", A: Imm(0)},
		{Op: OpCallRCU, Target: "f", A: R(R1)},
	}
	seen := map[Op]bool{}
	for _, in := range samples {
		s := in.String()
		if !strings.HasPrefix(s, in.Op.String()) {
			t.Errorf("String(%v) = %q does not start with the mnemonic", in.Op, s)
		}
		seen[in.Op] = true
	}
	for op := Op(0); op < opCount; op++ {
		if !seen[op] {
			t.Errorf("opcode %v missing from the String sample set", op)
		}
	}
}

package kir

import (
	"fmt"
	"strings"
)

// InstrID is the stable static identity of an instruction within a
// finalized Program: a dense index over all instructions of all functions.
// It plays the role of a kernel instruction address — breakpoints,
// watchpoint attribution, data races, schedules and causality chains all
// refer to instructions by InstrID.
type InstrID int32

// NoInstr is the zero-value "no instruction" sentinel.
const NoInstr InstrID = -1

// Instr is a single IR instruction.
type Instr struct {
	Op     Op
	Dst    Reg     // destination register (OpMov/arith/OpLoad/OpAlloc/OpListHas/OpRefGet/OpRefPut)
	A      Operand // first operand; address operand for memory ops
	B      Operand // second operand; value operand for OpStore/list ops/branches
	Size   int64   // allocation size in words (OpAlloc)
	Target string  // branch label (branches) or function name (OpCall/OpQueueWork/OpCallRCU)
	Label  string  // optional paper-style label, e.g. "A6"

	// Filled in by Program.Finalize:
	ID   InstrID // global static identity
	Fn   string  // enclosing function name
	Idx  int     // index within the enclosing function
	tpos int32   // resolved branch target index within Fn (branches only)
}

// String renders the instruction in assembler syntax, without its label.
func (in Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.String())
	switch {
	case in.Op == OpAlloc:
		fmt.Fprintf(&b, " %s, %d", in.Dst, in.Size)
	case in.Op.IsBranch() && in.Op != OpJmp:
		fmt.Fprintf(&b, " %s, %s, %s", in.A, in.B, in.Target)
	case in.Op == OpJmp:
		fmt.Fprintf(&b, " %s", in.Target)
	case in.Op.UsesFunc():
		fmt.Fprintf(&b, " %s", in.Target)
		if !in.A.IsNone() {
			fmt.Fprintf(&b, ", %s", in.A)
		}
	default:
		hasDst := hasDstReg(in.Op)
		parts := make([]string, 0, 3)
		if hasDst {
			parts = append(parts, in.Dst.String())
		}
		if !in.A.IsNone() {
			parts = append(parts, in.A.String())
		}
		if !in.B.IsNone() {
			parts = append(parts, in.B.String())
		}
		if len(parts) > 0 {
			b.WriteString(" " + strings.Join(parts, ", "))
		}
	}
	return b.String()
}

// Name returns the best human-readable identity of the instruction: its
// paper label if set, otherwise "fn+idx".
func (in Instr) Name() string {
	if in.Label != "" {
		return in.Label
	}
	return fmt.Sprintf("%s+%d", in.Fn, in.Idx)
}

// hasDstReg reports whether the opcode writes a destination register.
func hasDstReg(op Op) bool {
	switch op {
	case OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor, OpLoad, OpAlloc,
		OpListHas, OpRefGet, OpRefPut:
		return true
	}
	return false
}

// validate checks the instruction's operand shapes. It is called by
// Program.Finalize for every instruction.
func (in Instr) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%s %s: "+format, append([]any{in.Op, in.String()}, args...)...)
	}
	switch in.Op {
	case OpNop, OpRet, OpYield, OpExit:
		// no operands
	case OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor:
		if !in.A.IsValue() {
			return bad("operand A must be a value")
		}
	case OpLoad:
		if !in.A.IsAddr() {
			return bad("operand A must be an address")
		}
	case OpStore:
		if !in.A.IsAddr() {
			return bad("operand A must be an address")
		}
		if !in.B.IsValue() {
			return bad("operand B must be a value")
		}
	case OpBeq, OpBne, OpBlt, OpBge:
		if !in.A.IsValue() || !in.B.IsValue() {
			return bad("branch operands must be values")
		}
		if in.Target == "" {
			return bad("branch needs a target label")
		}
	case OpJmp:
		if in.Target == "" {
			return bad("jmp needs a target label")
		}
	case OpCall, OpQueueWork, OpCallRCU:
		if in.Target == "" {
			return bad("needs a function name")
		}
		if in.Op != OpCall && !in.A.IsNone() && !in.A.IsValue() {
			return bad("spawn argument must be a value")
		}
	case OpLock, OpUnlock, OpRefGet, OpRefPut:
		if !in.A.IsAddr() {
			return bad("operand A must be an address")
		}
	case OpAlloc:
		if in.Size <= 0 {
			return bad("allocation size must be positive")
		}
	case OpFree:
		if !in.A.IsValue() {
			return bad("operand A must be a value (object base address)")
		}
	case OpBugOn:
		if !in.A.IsValue() {
			return bad("operand A must be a value")
		}
	case OpListAdd, OpListDel, OpListHas:
		if !in.A.IsAddr() {
			return bad("operand A must be the list address")
		}
		if !in.B.IsValue() {
			return bad("operand B must be a value")
		}
	default:
		return bad("unknown opcode")
	}
	return nil
}

package kir

import (
	"fmt"
	"sort"
	"sync"
)

// GlobalDef declares a global variable: a named region of Size words with
// optional initial values (missing words are zero). Globals model the
// shared kernel objects (struct fields, lists, locks, refcounts) that
// racing threads communicate through.
type GlobalDef struct {
	Name string
	Size int64
	Init []int64
	// AddrOf initializes words with the *address* of another global:
	// word offset -> symbol. It overrides Init at those offsets and lets
	// scenarios start with valid pointers (e.g. "ptr initially points at
	// obj"), which a later racing store may null out or redirect.
	AddrOf map[int64]string
	// HeapSize, when positive, makes this a one-word global holding a
	// pointer to a pre-allocated heap object of HeapSize words (with
	// redzones and full KASAN tracking), initialized from Init. Scenarios
	// use it for objects that must fault precisely on out-of-bounds or
	// freed access. Pre-allocated objects are exempt from leak checking.
	HeapSize int64
}

// ThreadKind classifies execution contexts, mirroring the contexts AITIA
// controls: system calls, kernel background threads (kworkerd) and softirq
// contexts (RCU callbacks).
type ThreadKind uint8

const (
	// KindSyscall is a user-initiated system-call thread.
	KindSyscall ThreadKind = iota
	// KindKWorker is a kernel background worker (queue_work target).
	KindKWorker
	// KindSoftirq is a software-interrupt context (call_rcu target).
	KindSoftirq
	// KindHardIRQ is a hardware-interrupt handler. The paper's §4.6
	// leaves IRQ contexts as future work ("AITIA is able to diagnose
	// such bugs if the hypervisor injects an IRQ through the VT-x
	// mechanism"); this reproduction implements that extension — the
	// scheduler injects the handler at conflicting instructions exactly
	// as the paper proposes injecting IRQs at breakpoints.
	KindHardIRQ
)

// String returns a short name for the thread kind.
func (k ThreadKind) String() string {
	switch k {
	case KindSyscall:
		return "syscall"
	case KindKWorker:
		return "kworker"
	case KindSoftirq:
		return "softirq"
	case KindHardIRQ:
		return "hardirq"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ThreadDef declares a statically known thread: a named entry point that
// the scenario starts concurrently (a system call in the paper's examples).
// Dynamically spawned threads (queue_work, call_rcu) do not need a
// ThreadDef.
type ThreadDef struct {
	Name  string // e.g. "setsockopt", "bind"
	Entry string // entry function
	Kind  ThreadKind
	Arg   int64 // initial value of r0
}

// Func is a named sequence of instructions with local branch labels.
type Func struct {
	Name   string
	Instrs []Instr
	labels map[string]int // branch label -> instruction index
	base   InstrID        // global id of Instrs[0]
}

// Label resolves a local branch label to an instruction index.
func (f *Func) labelIndex(name string) (int, bool) {
	i, ok := f.labels[name]
	return i, ok
}

// Labels returns a copy of the function's local branch-target labels
// (label name -> instruction index). Used by the disassembler.
func (f *Func) Labels() map[string]int {
	out := make(map[string]int, len(f.labels))
	for k, v := range f.labels {
		out[k] = v
	}
	return out
}

// Program is a finalized set of functions, globals and thread definitions.
type Program struct {
	Funcs   map[string]*Func
	Globals []GlobalDef
	Threads []ThreadDef

	byID      []instrRef // InstrID -> location
	finalized bool

	// hashCache caches the content digest of a finalized program (see
	// Hash); finalized programs are immutable, so one computation serves
	// every journal record and checkpoint key derived from the program.
	// It lives behind a pointer so Restrict's shallow copy can hand the
	// derived program a fresh cache (its thread set — and hash — differ)
	// without copying a sync.Once.
	hashCache *programHash
}

// programHash is the lazily computed content digest of one program.
type programHash struct {
	once sync.Once
	val  string
}

type instrRef struct {
	fn  *Func
	idx int
}

// NumInstrs returns the total number of static instructions.
func (p *Program) NumInstrs() int { return len(p.byID) }

// Finalized reports whether Finalize has completed successfully.
func (p *Program) Finalized() bool { return p.finalized }

// Instr returns the instruction with the given static identity.
func (p *Program) Instr(id InstrID) (Instr, bool) {
	if id < 0 || int(id) >= len(p.byID) {
		return Instr{}, false
	}
	ref := p.byID[id]
	return ref.fn.Instrs[ref.idx], true
}

// MustInstr is Instr for identities known to be valid; it panics otherwise.
func (p *Program) MustInstr(id InstrID) Instr {
	in, ok := p.Instr(id)
	if !ok {
		panic(fmt.Sprintf("kir: no instruction with id %d", id))
	}
	return in
}

// InstrName returns the display name (paper label or fn+idx) of an
// instruction identity, or "?" for invalid identities.
func (p *Program) InstrName(id InstrID) string {
	in, ok := p.Instr(id)
	if !ok {
		return "?"
	}
	return in.Name()
}

// FuncOf returns the function containing the instruction.
func (p *Program) FuncOf(id InstrID) (*Func, bool) {
	if id < 0 || int(id) >= len(p.byID) {
		return nil, false
	}
	return p.byID[id].fn, true
}

// Global returns the definition of a named global, if declared.
func (p *Program) Global(name string) (GlobalDef, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g, true
		}
	}
	return GlobalDef{}, false
}

// ByLabel returns the instruction carrying the given paper-style label.
// Labels are unique per program (enforced by Finalize).
func (p *Program) ByLabel(label string) (Instr, bool) {
	for _, ref := range p.byID {
		in := ref.fn.Instrs[ref.idx]
		if in.Label == label {
			return in, true
		}
	}
	return Instr{}, false
}

// MustByLabel is ByLabel for labels known to exist; it panics otherwise.
func (p *Program) MustByLabel(label string) Instr {
	in, ok := p.ByLabel(label)
	if !ok {
		panic(fmt.Sprintf("kir: no instruction labelled %q", label))
	}
	return in
}

// Finalize validates the program, assigns static instruction identities,
// resolves branch labels, and checks cross-references (branch targets,
// called functions, global symbols, thread entries). It must be called
// exactly once before the program is executed.
func (p *Program) Finalize() error {
	if p.finalized {
		return fmt.Errorf("kir: program already finalized")
	}
	if len(p.Funcs) == 0 {
		return fmt.Errorf("kir: program has no functions")
	}
	if len(p.Threads) == 0 {
		return fmt.Errorf("kir: program declares no threads")
	}

	globals := make(map[string]bool, len(p.Globals))
	for _, g := range p.Globals {
		if g.Name == "" {
			return fmt.Errorf("kir: global with empty name")
		}
		if g.Size <= 0 {
			return fmt.Errorf("kir: global %q has non-positive size", g.Name)
		}
		limit := g.Size
		if g.HeapSize > 0 {
			if g.Size != 1 {
				return fmt.Errorf("kir: heap global %q must have size 1 (the pointer word)", g.Name)
			}
			limit = g.HeapSize
		}
		if int64(len(g.Init)) > limit {
			return fmt.Errorf("kir: global %q has %d initializers for %d words", g.Name, len(g.Init), limit)
		}
		if globals[g.Name] {
			return fmt.Errorf("kir: duplicate global %q", g.Name)
		}
		globals[g.Name] = true
	}
	for _, g := range p.Globals {
		for off, sym := range g.AddrOf {
			if off < 0 || off >= g.Size {
				return fmt.Errorf("kir: global %q: AddrOf offset %d out of range", g.Name, off)
			}
			if !globals[sym] {
				return fmt.Errorf("kir: global %q: AddrOf references undeclared global %q", g.Name, sym)
			}
		}
	}

	// Deterministic id assignment: functions in name order.
	names := make([]string, 0, len(p.Funcs))
	for name, f := range p.Funcs {
		if name == "" || f == nil {
			return fmt.Errorf("kir: function with empty name or nil body")
		}
		if f.Name != name {
			return fmt.Errorf("kir: function map key %q does not match name %q", name, f.Name)
		}
		names = append(names, name)
	}
	sort.Strings(names)

	p.byID = p.byID[:0]
	labels := make(map[string]InstrID)
	var next InstrID
	for _, name := range names {
		f := p.Funcs[name]
		if len(f.Instrs) == 0 {
			return fmt.Errorf("kir: function %q is empty", name)
		}
		f.base = next
		for i := range f.Instrs {
			in := &f.Instrs[i]
			if err := in.validate(); err != nil {
				return fmt.Errorf("kir: %s[%d]: %w", name, i, err)
			}
			in.ID = next
			in.Fn = name
			in.Idx = i
			if in.Label != "" {
				if prev, dup := labels[in.Label]; dup {
					return fmt.Errorf("kir: label %q used by instructions %d and %d", in.Label, prev, next)
				}
				labels[in.Label] = next
			}
			p.byID = append(p.byID, instrRef{fn: f, idx: i})
			next++
		}
	}

	// Resolve references now that everything has an identity.
	for _, name := range names {
		f := p.Funcs[name]
		for i := range f.Instrs {
			in := &f.Instrs[i]
			switch {
			case in.Op.IsBranch():
				t, ok := f.labelIndex(in.Target)
				if !ok {
					return fmt.Errorf("kir: %s[%d]: undefined branch target %q", name, i, in.Target)
				}
				in.tpos = int32(t)
			case in.Op.UsesFunc():
				if _, ok := p.Funcs[in.Target]; !ok {
					return fmt.Errorf("kir: %s[%d]: call of undefined function %q", name, i, in.Target)
				}
			}
			for _, opnd := range []Operand{in.A, in.B} {
				if opnd.Kind == KindGlobal && !globals[opnd.Sym] {
					return fmt.Errorf("kir: %s[%d]: undeclared global %q", name, i, opnd.Sym)
				}
			}
		}
	}

	threadNames := make(map[string]bool, len(p.Threads))
	for _, t := range p.Threads {
		if t.Name == "" {
			return fmt.Errorf("kir: thread with empty name")
		}
		if threadNames[t.Name] {
			return fmt.Errorf("kir: duplicate thread %q", t.Name)
		}
		threadNames[t.Name] = true
		if _, ok := p.Funcs[t.Entry]; !ok {
			return fmt.Errorf("kir: thread %q has undefined entry %q", t.Name, t.Entry)
		}
	}

	p.finalized = true
	p.hashCache = &programHash{}
	return nil
}

// ExtendReaders returns a copy of the program with extra read-mostly
// "noise" threads appended — background workload modelling how the rest
// of the kernel accesses the scenario's objects, which the statistical
// baselines (MUVI's access-correlation mining in particular) learn from.
//
// Each reader spec is a list of accesses its thread performs, one of:
//
//	"sym"    load the global sym
//	"!heap"  allocate, touch and free a private scratch object
//
// Noise functions are named "zz_noise_*" so that they sort after every
// existing function and the original instructions keep their static
// identities — patterns mined on the extended program remain comparable
// with diagnoses of the original.
func (p *Program) ExtendReaders(readers map[string][]string) (*Program, error) {
	if !p.finalized {
		return nil, fmt.Errorf("kir: ExtendReaders on non-finalized program")
	}
	if len(readers) == 0 {
		return p, nil
	}
	np := &Program{
		Funcs:   make(map[string]*Func, len(p.Funcs)+len(readers)),
		Globals: p.Globals,
		Threads: append([]ThreadDef(nil), p.Threads...),
	}
	for name, f := range p.Funcs {
		nf := &Func{Name: name, Instrs: append([]Instr(nil), f.Instrs...), labels: f.Labels()}
		np.Funcs[name] = nf
	}
	names := make([]string, 0, len(readers))
	for n := range readers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, tname := range names {
		fname := "zz_noise_" + tname
		if _, dup := np.Funcs[fname]; dup {
			return nil, fmt.Errorf("kir: duplicate noise thread %q", tname)
		}
		f := &Func{Name: fname, labels: map[string]int{}}
		for _, spec := range readers[tname] {
			switch {
			case spec == "!heap":
				f.Instrs = append(f.Instrs,
					Instr{Op: OpAlloc, Dst: R1, Size: 1},
					Instr{Op: OpStore, A: Ind(R1, 0), B: Imm(1)},
					Instr{Op: OpFree, A: R(R1)},
				)
			default:
				f.Instrs = append(f.Instrs, Instr{Op: OpLoad, Dst: R2, A: G(spec)})
			}
		}
		f.Instrs = append(f.Instrs, Instr{Op: OpRet})
		np.Funcs[fname] = f
		np.Threads = append(np.Threads, ThreadDef{Name: tname, Entry: fname})
	}
	if err := np.Finalize(); err != nil {
		return nil, err
	}
	return np, nil
}

// WithPrologues returns a copy of the program in which every declared
// thread first executes perThread non-racing memory accesses on a
// thread-private scratch area before entering its real body. This models
// the long non-racy kernel path a system call traverses before reaching
// the racy region (the paper's failed executions average thousands of
// memory-accessing instructions, almost all of which touch non-shared
// state): the accesses inflate the execution volume realistically without
// adding conflicting instructions, so search behaviour is unchanged while
// the conciseness contrast (accesses ≫ races ≫ chain) becomes visible.
func (p *Program) WithPrologues(perThread int) (*Program, error) {
	if !p.finalized {
		return nil, fmt.Errorf("kir: WithPrologues on non-finalized program")
	}
	if perThread <= 0 {
		return p, nil
	}
	np := &Program{
		Funcs:   make(map[string]*Func, len(p.Funcs)+len(p.Threads)),
		Globals: append([]GlobalDef(nil), p.Globals...),
		Threads: append([]ThreadDef(nil), p.Threads...),
	}
	for name, f := range p.Funcs {
		np.Funcs[name] = &Func{Name: name, Instrs: append([]Instr(nil), f.Instrs...), labels: f.Labels()}
	}
	for i := range np.Threads {
		scratch := fmt.Sprintf("zz_scratch_%d", i)
		np.Globals = append(np.Globals, GlobalDef{Name: scratch, Size: 4})
		wname := fmt.Sprintf("zz_pad_%d_%s", i, np.Threads[i].Entry)
		w := &Func{Name: wname, labels: map[string]int{}}
		for j := 0; j < perThread; j++ {
			if j%2 == 0 {
				w.Instrs = append(w.Instrs, Instr{Op: OpStore, A: GOff(scratch, int64(j%4)), B: Imm(int64(j))})
			} else {
				w.Instrs = append(w.Instrs, Instr{Op: OpLoad, Dst: R15, A: GOff(scratch, int64(j%4))})
			}
		}
		w.Instrs = append(w.Instrs, Instr{Op: OpCall, Target: np.Threads[i].Entry}, Instr{Op: OpRet})
		np.Funcs[wname] = w
		np.Threads[i].Entry = wname
	}
	if err := np.Finalize(); err != nil {
		return nil, err
	}
	return np, nil
}

// FixSerialize returns a copy of the program in which the given entry
// functions execute under one shared fix mutex — the canonical shape of a
// concurrency-bug patch: the racing regions become mutually exclusive, so
// the causality chain's interleaving orders can no longer occur. Thread
// entries and queue_work/call_rcu targets naming a serialized function are
// redirected to a wrapper that takes the lock around the call; early
// returns inside the function return into the wrapper, so the lock is
// always released.
//
// Scenario fixes use this to model developer patches and let the
// evaluation verify the paper's criterion: "if a fix does not allow one
// of the interleaving orders in the chain, it does not incur a failure".
func (p *Program) FixSerialize(entries ...string) (*Program, error) {
	if !p.finalized {
		return nil, fmt.Errorf("kir: FixSerialize on non-finalized program")
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("kir: FixSerialize needs at least one entry")
	}
	const mu = "zz_fix_mu"
	if _, exists := p.Global(mu); exists {
		return nil, fmt.Errorf("kir: program already declares %q", mu)
	}
	want := make(map[string]bool, len(entries))
	for _, e := range entries {
		if _, ok := p.Funcs[e]; !ok {
			return nil, fmt.Errorf("kir: FixSerialize: no function %q", e)
		}
		want[e] = true
	}

	np := &Program{
		Funcs:   make(map[string]*Func, len(p.Funcs)+len(entries)),
		Globals: append(append([]GlobalDef(nil), p.Globals...), GlobalDef{Name: mu, Size: 1}),
		Threads: append([]ThreadDef(nil), p.Threads...),
	}
	wrapper := func(entry string) string { return "zz_fixed_" + entry }
	for name, f := range p.Funcs {
		nf := &Func{Name: name, Instrs: append([]Instr(nil), f.Instrs...), labels: f.Labels()}
		// Redirect asynchronous invocations of serialized functions to
		// their wrappers (plain calls are left alone: the caller already
		// holds the lock when it is itself serialized).
		for i := range nf.Instrs {
			in := &nf.Instrs[i]
			if (in.Op == OpQueueWork || in.Op == OpCallRCU) && want[in.Target] {
				in.Target = wrapper(in.Target)
			}
		}
		np.Funcs[name] = nf
	}
	for _, e := range entries {
		np.Funcs[wrapper(e)] = &Func{
			Name: wrapper(e),
			Instrs: []Instr{
				{Op: OpLock, A: G(mu)},
				{Op: OpCall, Target: e},
				{Op: OpUnlock, A: G(mu)},
				{Op: OpRet},
			},
			labels: map[string]int{},
		}
	}
	for i := range np.Threads {
		if want[np.Threads[i].Entry] {
			np.Threads[i].Entry = wrapper(np.Threads[i].Entry)
		}
	}
	if err := np.Finalize(); err != nil {
		return nil, err
	}
	return np, nil
}

// Restrict returns a view of the program with only the named declared
// threads (a slice, §4.2). Functions, globals and instruction identities
// are shared with the original, so races and schedules remain comparable
// across views. The original program must be finalized.
func (p *Program) Restrict(names []string) (*Program, error) {
	if !p.finalized {
		return nil, fmt.Errorf("kir: Restrict on non-finalized program")
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	cp := *p
	cp.hashCache = &programHash{} // different thread set, different hash
	cp.Threads = nil
	for _, t := range p.Threads {
		if want[t.Name] {
			cp.Threads = append(cp.Threads, t)
			delete(want, t.Name)
		}
	}
	if len(want) > 0 {
		for n := range want {
			return nil, fmt.Errorf("kir: Restrict: no declared thread %q", n)
		}
	}
	if len(cp.Threads) == 0 {
		return nil, fmt.Errorf("kir: Restrict would leave no threads")
	}
	return &cp, nil
}

// BranchTarget returns the resolved in-function index of a branch
// instruction's target. It panics if the instruction is not a branch.
func (p *Program) BranchTarget(in Instr) int {
	if !in.Op.IsBranch() {
		panic(fmt.Sprintf("kir: BranchTarget on non-branch %s", in.Op))
	}
	return int(in.tpos)
}

package kir

import "testing"

// buildHashProg assembles a small two-thread program; imm parameterizes
// one immediate so tests can produce near-identical variants.
func buildHashProg(t *testing.T, imm int64, label string) *Program {
	t.Helper()
	b := NewBuilder()
	b.Var("ptr_valid", 0)
	b.VarAddrOf("ptr", "obj")
	b.Global("obj", 2, 7)
	fa := b.Func("fa")
	fa.Store(G("ptr_valid"), Imm(imm)).L("A1")
	fa.Load(R1, G("ptr")).L("A2")
	fa.Ret()
	fb := b.Func("fb")
	fb.Load(R1, G("ptr_valid")).L("B1")
	fb.Beq(R(R1), Imm(0), "out")
	fb.Store(G("ptr"), Imm(0)).L(label)
	fb.At("out").Ret()
	b.Thread("A", "fa")
	b.Thread("B", "fb")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestHashDeterministic(t *testing.T) {
	p1 := buildHashProg(t, 1, "B2")
	p2 := buildHashProg(t, 1, "B2")
	h1, h2 := p1.Hash(), p2.Hash()
	if h1 != h2 {
		t.Errorf("identical programs hash differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Errorf("hash length = %d, want 64 hex chars", len(h1))
	}
	if h1 != p1.Hash() {
		t.Error("hash not stable across calls")
	}
}

func TestHashSensitivity(t *testing.T) {
	base := buildHashProg(t, 1, "B2").Hash()
	if got := buildHashProg(t, 2, "B2").Hash(); got == base {
		t.Error("changing an immediate did not change the hash")
	}
	if got := buildHashProg(t, 1, "B9").Hash(); got == base {
		t.Error("changing an instruction label did not change the hash")
	}
}

func TestHashRestrictedViewDiffers(t *testing.T) {
	p := buildHashProg(t, 1, "B2")
	r, err := p.Restrict([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Hash() == p.Hash() {
		t.Error("a slice view (fewer threads) must hash differently")
	}
}

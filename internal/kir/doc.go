// Package kir defines the kernel intermediate representation (IR) used by
// the AITIA reproduction as a stand-in for kernel machine code.
//
// The IR is a small, word-addressed, register-based instruction set that is
// just expressive enough to model the shared-memory behaviour of kernel
// concurrency bugs: plain loads and stores to global and heap memory,
// race-steerable control flow (branches on loaded values), function calls,
// mutex-protected critical sections, heap allocation and freeing (for
// use-after-free and out-of-bounds failures), linked-list intrinsics,
// reference-count operations, BUG_ON assertions, and asynchronous kernel
// thread invocation (queue_work and call_rcu).
//
// A Program is a set of functions plus global variable definitions and
// thread definitions (system calls and kernel background threads). Every
// instruction has a stable static identity (InstrID) assigned when the
// program is finalized; schedules, data races and causality chains are all
// expressed over static instruction identities, mirroring how the real
// AITIA uses kernel instruction addresses for breakpoints and watchpoints.
//
// Programs are constructed either with the fluent Builder in this package
// or assembled from text with package kasm.
package kir

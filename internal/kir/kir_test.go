package kir

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder()
	b.Var("flag", 1)
	b.Global("buf", 4, 1, 2)
	b.VarAddrOf("ptr", "buf")
	b.HeapObj("obj", 2, 7)

	f := b.Func("main_a")
	f.Load(R1, G("flag")).L("A1")
	f.Beq(R(R1), Imm(0), "out")
	f.Store(GOff("buf", 1), Imm(5)).L("A2")
	f.Call("helper")
	f.At("out").Ret()

	h := b.Func("helper")
	h.ListAdd(G("buf"), Imm(9)).L("H1")
	h.Ret()

	b.Thread("A", "main_a")
	b.ThreadArg("B", "helper", 3)
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return prog
}

func TestFinalizeAssignsStableIDs(t *testing.T) {
	prog := buildSample(t)
	if prog.NumInstrs() != 7 {
		t.Fatalf("NumInstrs = %d, want 7", prog.NumInstrs())
	}
	seen := make(map[InstrID]bool)
	for id := InstrID(0); int(id) < prog.NumInstrs(); id++ {
		in, ok := prog.Instr(id)
		if !ok {
			t.Fatalf("Instr(%d) missing", id)
		}
		if in.ID != id {
			t.Errorf("Instr(%d).ID = %d", id, in.ID)
		}
		if seen[in.ID] {
			t.Errorf("duplicate id %d", in.ID)
		}
		seen[in.ID] = true
	}
	// Functions are numbered in name order: helper before main_a.
	h, _ := prog.ByLabel("H1")
	a1, _ := prog.ByLabel("A1")
	if h.ID >= a1.ID {
		t.Errorf("helper ids should precede main_a ids (got H1=%d, A1=%d)", h.ID, a1.ID)
	}
}

func TestByLabelAndInstrName(t *testing.T) {
	prog := buildSample(t)
	in, ok := prog.ByLabel("A2")
	if !ok {
		t.Fatal("label A2 not found")
	}
	if in.Op != OpStore || in.Name() != "A2" {
		t.Errorf("A2 = %v (%s)", in.Op, in.Name())
	}
	if _, ok := prog.ByLabel("nope"); ok {
		t.Error("ByLabel(nope) should fail")
	}
	unlabeled := prog.MustInstr(in.ID + 1) // the call
	if !strings.Contains(unlabeled.Name(), "main_a+") {
		t.Errorf("unlabeled name = %q", unlabeled.Name())
	}
}

func TestBranchTargetResolution(t *testing.T) {
	prog := buildSample(t)
	f := prog.Funcs["main_a"]
	for _, in := range f.Instrs {
		if in.Op == OpBeq {
			idx := prog.BranchTarget(in)
			if f.Instrs[idx].Op != OpRet {
				t.Errorf("branch target = %v, want ret", f.Instrs[idx].Op)
			}
		}
	}
}

func TestFinalizeErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(*Builder)
		want  string
	}{
		{"undefined branch", func(b *Builder) {
			b.Func("f").Jmp("missing")
			b.Thread("t", "f")
		}, "undefined branch target"},
		{"undefined call", func(b *Builder) {
			b.Func("f").Call("missing")
			b.Thread("t", "f")
		}, "undefined function"},
		{"undeclared global", func(b *Builder) {
			b.Func("f").Load(R1, G("missing"))
			b.Thread("t", "f")
		}, "undeclared global"},
		{"duplicate label", func(b *Builder) {
			f := b.Func("f")
			f.Nop().L("X")
			f.Nop().L("X")
			b.Thread("t", "f")
		}, "label \"X\""},
		{"no threads", func(b *Builder) {
			b.Func("f").Ret()
		}, "no threads"},
		{"bad thread entry", func(b *Builder) {
			b.Func("f").Ret()
			b.Thread("t", "missing")
		}, "undefined entry"},
		{"duplicate global", func(b *Builder) {
			b.Var("x", 0).Var("x", 1)
			b.Func("f").Ret()
			b.Thread("t", "f")
		}, "duplicate global"},
		{"bad addrof", func(b *Builder) {
			b.VarAddrOf("p", "missing")
			b.Func("f").Ret()
			b.Thread("t", "f")
		}, "AddrOf references undeclared"},
		{"duplicate thread", func(b *Builder) {
			b.Func("f").Ret()
			b.Thread("t", "f").Thread("t", "f")
		}, "duplicate thread"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder()
			tc.build(b)
			_, err := b.Build()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestOperandValidation(t *testing.T) {
	b := NewBuilder()
	b.Var("g", 0)
	f := b.Func("f")
	f.Load(R1, Imm(5)) // load needs an address
	b.Thread("t", "f")
	if _, err := b.Build(); err == nil {
		t.Error("load from immediate should fail validation")
	}
}

func TestRestrict(t *testing.T) {
	prog := buildSample(t)
	r, err := prog.Restrict([]string{"B"})
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if len(r.Threads) != 1 || r.Threads[0].Name != "B" {
		t.Errorf("Threads = %v", r.Threads)
	}
	// Instruction identities are shared.
	if r.NumInstrs() != prog.NumInstrs() {
		t.Errorf("NumInstrs changed: %d vs %d", r.NumInstrs(), prog.NumInstrs())
	}
	if _, err := prog.Restrict([]string{"missing"}); err == nil {
		t.Error("Restrict(missing) should fail")
	}
	if _, err := prog.Restrict(nil); err == nil {
		t.Error("Restrict(none) should fail")
	}
}

func TestExtendReadersPreservesIDs(t *testing.T) {
	prog := buildSample(t)
	a2, _ := prog.ByLabel("A2")
	ext, err := prog.ExtendReaders(map[string][]string{
		"noise1": {"flag", "!heap"},
		"noise2": {"buf"},
	})
	if err != nil {
		t.Fatalf("ExtendReaders: %v", err)
	}
	if len(ext.Threads) != len(prog.Threads)+2 {
		t.Errorf("threads = %d", len(ext.Threads))
	}
	ea2, ok := ext.ByLabel("A2")
	if !ok || ea2.ID != a2.ID {
		t.Errorf("A2 id changed: %d vs %d", ea2.ID, a2.ID)
	}
	// Original program untouched.
	if len(prog.Funcs) != 2 {
		t.Errorf("original program gained functions: %d", len(prog.Funcs))
	}
	// Extending with no readers returns the same program.
	same, err := prog.ExtendReaders(nil)
	if err != nil || same != prog {
		t.Errorf("ExtendReaders(nil) = %p, %v; want original", same, err)
	}
}

func TestOpMetadata(t *testing.T) {
	if !OpStore.WritesMemory() || !OpStore.AccessesMemory() {
		t.Error("store must be a memory write")
	}
	if !OpLoad.ReadsMemory() || OpLoad.WritesMemory() {
		t.Error("load must be a pure read")
	}
	if !OpRefGet.WritesMemory() || !OpRefGet.ReadsMemory() {
		t.Error("ref_get must be a read-modify-write")
	}
	if OpAlloc.AccessesMemory() {
		t.Error("alloc must not participate in race detection")
	}
	if !OpBeq.IsBranch() || OpBeq.UsesFunc() {
		t.Error("beq is a branch, not a call")
	}
	if !OpQueueWork.UsesFunc() {
		t.Error("queue_work uses a function target")
	}
	for op := Op(0); op < opCount; op++ {
		if got, ok := OpByName(op.String()); !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
}

func TestOperandString(t *testing.T) {
	cases := map[string]Operand{
		"5":      Imm(5),
		"r3":     R(R3),
		"[g]":    G("g"),
		"[g+2]":  GOff("g", 2),
		"[r1]":   Ind(R1, 0),
		"[r1+1]": Ind(R1, 1),
		"_":      {},
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

package factory

import (
	"context"
	"fmt"
	"math/rand"

	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/ingest"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/manager"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// Options configure a factory run.
type Options struct {
	// Seed drives everything: recipe parameters, campaign seeds, strategy
	// cycling. The same seed yields a byte-identical corpus.
	Seed int64
	// TargetCount is the number of scenarios to emit (default 75).
	TargetCount int
	// MinPerClass is the minimum number of combined-corpus (hand-built +
	// emitted) representatives required per failure class before the run
	// may stop (default 3, the -check-matrix gate's bar; negative
	// disables the floor for small test runs).
	MinPerClass int
	// CampaignRuns bounds each fuzz campaign (default 3000).
	CampaignRuns int
	// MaxAttempts bounds total campaigns before the run fails (default
	// 40 × TargetCount).
	MaxAttempts int
	// Log, when non-nil, receives one line per emission/rejection.
	Log func(format string, args ...any)
	// Stats, when non-nil, accumulates live progress counters.
	Stats *Stats
}

// Emitted is one accepted scenario: canonical program source plus its
// ground-truth manifest.
type Emitted struct {
	Manifest scenarios.GenManifest
	Source   string

	progHash string // dedupe key of the minimized program
}

// Summary is the outcome of a factory run.
type Summary struct {
	Emitted  []Emitted
	Matrix   *Matrix // combined corpus: hand-built + emitted
	Attempts int
}

// Run executes fuzz campaigns over the recipe pool until TargetCount
// scenarios are emitted and every failure class has MinPerClass combined
// representatives. Each finding is minimized, diagnosed for ground
// truth, validated (serial-clean, fix-effective, hash-unique, report
// round-trip) and converted to an Emitted. The run is a deterministic
// function of Options.Seed; it does not touch the filesystem — pass the
// result to WriteCorpus.
func Run(ctx context.Context, opts Options) (*Summary, error) {
	if opts.TargetCount <= 0 {
		opts.TargetCount = 75
	}
	if opts.MinPerClass == 0 {
		opts.MinPerClass = 3
	} else if opts.MinPerClass < 0 {
		opts.MinPerClass = 0
	}
	if opts.CampaignRuns <= 0 {
		opts.CampaignRuns = 3000
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 40 * opts.TargetCount
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	stats := opts.Stats
	if stats == nil {
		stats = &Stats{}
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	recipes := append(Recipes(), CorpusRecipes()...)
	strategies := fuzz.Strategies()

	// Seed the matrix and the dedupe set from the hand-built corpus only:
	// previously committed generated scenarios must not influence a
	// regeneration, or the same seed would stop emitting the same files.
	matrix := NewMatrix()
	known := make(map[string]bool)
	for _, sc := range scenarios.HandBuilt() {
		matrix.AddScenario(sc)
		if p, err := sc.RawProgram(); err == nil {
			known[p.Hash()] = true
		}
	}

	sum := &Summary{Matrix: matrix}
	for len(sum.Emitted) < opts.TargetCount || len(matrix.MissingFailure(opts.MinPerClass)) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if sum.Attempts >= opts.MaxAttempts {
			return nil, fmt.Errorf("factory: %d campaigns did not reach %d scenarios (missing classes: %v)",
				sum.Attempts, opts.TargetCount, matrix.MissingFailure(opts.MinPerClass))
		}
		attempt := sum.Attempts
		sum.Attempts++
		recipe := pickRecipe(recipes, matrix, opts.MinPerClass, attempt)
		strategy := strategies[attempt%len(strategies)]
		// Two fixed draws per attempt keep the master stream aligned no
		// matter what each recipe or campaign consumes.
		buildSeed, campaignSeed := rng.Int63(), rng.Int63()

		em, verdict, err := runAttempt(ctx, recipe, strategy, buildSeed, campaignSeed, opts, stats, known)
		if err != nil {
			return nil, err
		}
		if em == nil {
			if verdict != "" {
				logf("    %-22s %-9s %s", recipe.Name, strategy, verdict)
			}
			continue
		}
		em.Manifest.Name = fmt.Sprintf("gen-%03d-%s", len(sum.Emitted)+1, recipe.Name)
		em.Manifest.Title = fmt.Sprintf("Generated %s (%s under %s scheduling)",
			em.Manifest.FailureClass, recipe.Name, strategy)
		known[em.progHash] = true
		matrix.Add(em.Manifest.FailureClass, em.Manifest.StructureClass)
		sum.Emitted = append(sum.Emitted, *em)
		stats.Emitted.Add(1)
		logf("ok  %-26s %-9s chain=%q interleavings=%d", em.Manifest.Name, strategy,
			em.Manifest.Chain, em.Manifest.WantInterleavings)
	}
	return sum, nil
}

// pickRecipe prefers recipes whose failure class is under-represented in
// the combined matrix, cycling deterministically within the candidate
// pool; with no deficit it round-robins the full pool.
func pickRecipe(recipes []Recipe, matrix *Matrix, minPerClass, attempt int) Recipe {
	missing := matrix.MissingFailure(minPerClass)
	if len(missing) > 0 {
		want := make(map[string]bool, len(missing))
		for _, fc := range missing {
			want[fc] = true
		}
		var cands []Recipe
		for _, r := range recipes {
			if want[scenarios.FailureClassOf(r.Kind)] {
				cands = append(cands, r)
			}
		}
		if len(cands) > 0 {
			return cands[attempt%len(cands)]
		}
	}
	return recipes[attempt%len(recipes)]
}

// runAttempt executes one campaign end to end: build, fuzz, minimize,
// validate. A nil Emitted with a verdict string is a (normal) rejection;
// an error aborts the whole run.
func runAttempt(ctx context.Context, recipe Recipe, strategy fuzz.Strategy,
	buildSeed, campaignSeed int64, opts Options, stats *Stats, known map[string]bool) (*Emitted, string, error) {

	prog, entries, err := recipe.Build(rand.New(rand.NewSource(buildSeed)))
	if err != nil {
		return nil, "", fmt.Errorf("factory: recipe %s: %w", recipe.Name, err)
	}
	fz, err := fuzz.New(prog, fuzz.Options{
		Seed:      campaignSeed,
		MaxRuns:   opts.CampaignRuns,
		Strategy:  strategy,
		LeakCheck: recipe.LeakCheck,
		WantKind:  recipe.Kind,
	})
	if err != nil {
		return nil, "", fmt.Errorf("factory: recipe %s: %w", recipe.Name, err)
	}
	stats.Campaigns.Add(1)
	finding, err := fz.Campaign()
	if err != nil {
		return nil, "", err
	}
	if finding == nil {
		return nil, "campaign exhausted", nil
	}
	stats.Findings.Add(1)

	label := ""
	if in, ok := prog.Instr(finding.Failure.Instr); ok {
		label = in.Label
	}
	min, err := Minimize(prog, finding.Run, MinimizeOptions{
		Kind: recipe.Kind, Label: label, LeakCheck: recipe.LeakCheck, Stats: stats,
	})
	if err != nil {
		stats.Rejected.Add(1)
		return nil, fmt.Sprintf("minimize: %v", err), nil
	}
	if known[min.Prog.Hash()] {
		stats.Duplicates.Add(1)
		return nil, "duplicate of known program", nil
	}
	em, verdict, err := validate(ctx, recipe, min, entries)
	if err != nil {
		return nil, "", err
	}
	if em == nil {
		stats.Rejected.Add(1)
		return nil, verdict, nil
	}
	em.Manifest.Recipe = recipe.Name
	em.Manifest.Strategy = strategy.String()
	em.Manifest.Seed = campaignSeed
	em.Manifest.CampaignRuns = finding.Runs
	em.Manifest.Minimize = min.Stats
	return em, "", nil
}

// validate establishes the scenario's ground truth and applies every
// invariant the committed corpus gates will later re-check: the failure
// needs at least one interleaving, the serializing fix both keeps the
// program working and stops reproduction, and (when possible) the
// synthesized crash report round-trips through report-driven diagnosis
// with fewer schedules than blind search. A verdict string (and nil
// Emitted) rejects the finding.
func validate(ctx context.Context, recipe Recipe, min *MinResult, entries []string) (*Emitted, string, error) {
	prog := min.Prog
	wantLabel := ""
	wantInstr := kir.NoInstr
	if min.Repro.Run.Failure != nil && min.Repro.Run.Failure.Instr != kir.NoInstr {
		if in, ok := prog.Instr(min.Repro.Run.Failure.Instr); ok && in.Label != "" {
			wantLabel, wantInstr = in.Label, in.ID
		}
	}

	// Ground truth: the exact pipeline the golden gate runs
	// (manager.Diagnose ≡ LIFS over the full declared set + Causality
	// Analysis).
	mgr, err := manager.New(prog, manager.Options{
		Workers: 1,
		LIFS:    core.LIFSOptions{WantKind: recipe.Kind, WantInstr: wantInstr, LeakCheck: recipe.LeakCheck},
		Analysis: core.AnalysisOptions{
			LeakCheck: recipe.LeakCheck,
		},
	})
	if err != nil {
		return nil, "", err
	}
	res, err := mgr.Diagnose(ctx)
	if err != nil {
		return nil, fmt.Sprintf("diagnose: %v", err), nil
	}
	rep, d := res.Reproduction, res.Diagnosis
	if rep.Stats.Interleavings == 0 {
		return nil, "fails under a serial order", nil
	}

	// The modelled fix must keep the program working and kill the bug —
	// exactly what TestFixesPreventEveryFailure asserts on every
	// committed scenario.
	var kept []string
	for _, e := range entries {
		if _, ok := prog.Funcs[e]; ok {
			kept = append(kept, e)
		}
	}
	if len(kept) == 0 {
		return nil, "minimization removed every fix entry", nil
	}
	if verdict := checkFix(prog, kept, recipe.Kind, wantLabel, recipe.LeakCheck); verdict != "" {
		return nil, verdict, nil
	}

	chain := d.Chain.Format(prog)
	em := &Emitted{
		Source: min.Source,
		Manifest: scenarios.GenManifest{
			Kind:              recipe.Kind.String(),
			FailureClass:      scenarios.FailureClassOf(recipe.Kind),
			StructureClass:    StructureOf(recipe.Kind, d.Chain),
			WantLabel:         wantLabel,
			WantChainLen:      d.Chain.Len(),
			Chain:             chain,
			WantInterleavings: rep.Stats.Interleavings,
			WantAmbiguous:     d.Chain.HasAmbiguity(),
			BenignRaces:       len(d.Benign),
			Threads:           len(prog.Threads),
			FixEntries:        kept,
		},
	}
	em.progHash = prog.Hash()

	// Report round-trip, mirroring the -check-reports gate; failure here
	// is recorded (the gate skips ReportOK=false scenarios), not fatal.
	if text, err := ingest.Synthesize(prog, rep.Run, rep.Races); err == nil {
		em.Manifest.Report = text
		em.Manifest.ReportOK = reportRoundTrips(ctx, prog, text, chain, rep.Stats.Schedules)
	}
	return em, "", nil
}

// checkFix serializes the entries and verifies the patched program still
// completes serially and no longer reproduces the failure. Empty verdict
// means the fix works.
func checkFix(prog *kir.Program, entries []string, kind sanitizer.Kind, wantLabel string, leak bool) string {
	fixed, err := prog.FixSerialize(entries...)
	if err != nil {
		return fmt.Sprintf("fix serialize: %v", err)
	}
	m, err := kvm.New(fixed)
	if err != nil {
		return fmt.Sprintf("fixed program: %v", err)
	}
	var order []string
	for _, td := range fixed.Threads {
		order = append(order, td.Name)
	}
	res, err := sched.NewEnforcer(m).Run(sched.Serial(order...), sched.Options{})
	if err != nil || res.Failure != nil {
		return fmt.Sprintf("fixed program fails serially: %v %v", err, res.Failure)
	}
	if err := m.Reset(); err != nil {
		return fmt.Sprintf("fixed program reset: %v", err)
	}
	wantInstr := kir.NoInstr
	if wantLabel != "" {
		if in, ok := fixed.ByLabel(wantLabel); ok {
			wantInstr = in.ID
		}
	}
	_, err = core.Reproduce(m, core.LIFSOptions{WantKind: kind, WantInstr: wantInstr, LeakCheck: leak})
	if !core.IsNotReproduced(err) {
		return fmt.Sprintf("fix does not prevent the failure (%v)", err)
	}
	return ""
}

// reportRoundTrips mirrors aitia-bench -check-reports: parse the
// synthesized report, diagnose from it alone, and demand a non-degraded
// resolution, the golden chain, and strictly fewer schedules than the
// blind baseline.
func reportRoundTrips(ctx context.Context, prog *kir.Program, text, wantChain string, blindSchedules int) bool {
	rpt, err := ingest.Parse(text)
	if err != nil {
		return false
	}
	mgr, err := manager.New(prog, manager.Options{})
	if err != nil {
		return false
	}
	res, err := mgr.DiagnoseReport(ctx, rpt)
	if err != nil || res.Resolution.Degraded() {
		return false
	}
	return res.Diagnosis.Chain.Format(prog) == wantChain &&
		res.Reproduction.Stats.Schedules < blindSchedules
}

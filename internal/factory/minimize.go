package factory

import (
	"errors"
	"fmt"
	"strings"

	"aitia/internal/core"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// MinimizeOptions configure the delta-debugging of one fuzz finding.
type MinimizeOptions struct {
	// Kind is the failure the oracle must preserve.
	Kind sanitizer.Kind
	// Label pins the failing instruction across program rewrites: when
	// non-empty, candidates must keep an instruction with this label and
	// fail there. Empty tracks the failure kind only (deadlocks carry no
	// failing instruction).
	Label string
	// LeakCheck arms the end-of-run leak oracle during replays.
	LeakCheck bool
	// StepBudget bounds each replay (0 = sched.DefaultStepBudget).
	StepBudget int
	// MaxSchedules bounds the LIFS searches the program-minimization
	// oracle runs (0 = a small default; the full DefaultMaxSchedules
	// would make line removal quadratic in search cost).
	MaxSchedules int
	// Stats, when non-nil, accumulates replay and removal counters.
	Stats *Stats
}

const defaultMinimizeSchedules = 4000

// ErrOracle is wrapped by Minimize when the bounded reproduction oracle
// cannot re-establish the failure on the (otherwise untouched) program —
// a legitimate rejection of hard-to-search findings, as opposed to an
// internal inconsistency like a derived schedule that fails to replay.
var ErrOracle = errors.New("factory: bounded oracle could not re-establish the failure")

// MinResult is a minimized finding: the smallest program and schedule the
// delta-debugger reached with the failure oracle intact.
type MinResult struct {
	// Prog is the minimized program, reparsed from Source.
	Prog *kir.Program
	// Source is the canonical kasm text of Prog.
	Source string
	// Schedule replays the failure on Prog deterministically.
	Schedule sched.Schedule
	// Repro is the LIFS reproduction of the failure on Prog (fresh
	// machine, bounded search) — the ground truth emission validates
	// against.
	Repro *core.Reproduction
	// Stats records the work: points/instructions/threads before and
	// after, and oracle replays spent.
	Stats scenarios.GenMinStats
}

// Minimize delta-debugs a fuzz finding. Phase A minimizes the schedule:
// the fuzzed run is converted to preemption points and ddmin-bisected
// down to the points the failure actually needs, each candidate replayed
// through the enforcement engine. Phase B minimizes the program: greedy
// thread removal, then greedy instruction-line removal over the
// disassembled source, each candidate re-checked to parse, stay clean in
// the serial order, and still reproduce the failure under a bounded LIFS
// search. Phase C re-derives and re-minimizes the schedule against the
// minimized program, so MinResult.Schedule replays MinResult.Prog.
//
// Every step is deterministic; minimizing an already-minimal finding is a
// fixed point.
func Minimize(prog *kir.Program, run *sched.RunResult, opts MinimizeOptions) (*MinResult, error) {
	if opts.StepBudget <= 0 {
		opts.StepBudget = sched.DefaultStepBudget
	}
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = defaultMinimizeSchedules
	}
	mz := &minimizer{opts: opts}
	if run == nil || len(run.Seq) == 0 {
		return nil, fmt.Errorf("factory: finding has no executed sequence")
	}

	// Phase A: schedule minimization on the original program.
	sch := DeriveSchedule(run, prog)
	mz.stats.PointsBefore = len(sch.Points)
	mz.stats.InstrsBefore = prog.NumInstrs()
	mz.stats.ThreadsBefore = len(prog.Threads)
	instr := kir.NoInstr
	if run.Failure != nil {
		instr = run.Failure.Instr
	}
	if !mz.replayOK(prog, sch, instr) {
		return nil, fmt.Errorf("factory: derived schedule does not replay the failure (%v)", run.Failure)
	}
	sch = mz.ddminPoints(prog, sch, instr)

	// Phase B: program minimization.
	cur, rep, err := mz.minimizeThreads(prog)
	if err != nil {
		return nil, err
	}
	cur, rep, err = mz.minimizeLines(cur, rep)
	if err != nil {
		return nil, err
	}
	if rep == nil {
		// The original program never went through the reproduce oracle
		// (nothing was removable); establish the ground truth now.
		rep, err = mz.reproduce(cur)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrOracle, err)
		}
	}

	// Phase C: the phase-A schedule indexes the original program's
	// instruction IDs; re-derive from the reproduction run on the
	// minimized program and bisect again.
	final := DeriveSchedule(rep.Run, cur)
	finstr := kir.NoInstr
	if rep.Run.Failure != nil {
		finstr = rep.Run.Failure.Instr
	}
	if !mz.replayOK(cur, final, finstr) {
		return nil, fmt.Errorf("factory: reproduction schedule does not replay on minimized program")
	}
	final = mz.ddminPoints(cur, final, finstr)

	src := kasm.Disassemble(cur)
	reparsed, err := kasm.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("factory: minimized program does not round-trip: %w", err)
	}
	mz.stats.PointsAfter = len(final.Points)
	mz.stats.InstrsAfter = reparsed.NumInstrs()
	mz.stats.ThreadsAfter = len(reparsed.Threads)
	if s := opts.Stats; s != nil {
		s.MinReplays.Add(int64(mz.stats.Replays))
		s.PointsRemoved.Add(int64(mz.stats.PointsBefore - mz.stats.PointsAfter))
		s.InstrsRemoved.Add(int64(mz.stats.InstrsBefore - mz.stats.InstrsAfter))
		s.ThreadsRemoved.Add(int64(mz.stats.ThreadsBefore - mz.stats.ThreadsAfter))
	}
	return &MinResult{Prog: reparsed, Source: src, Schedule: final, Repro: rep, Stats: mz.stats}, nil
}

type minimizer struct {
	opts  MinimizeOptions
	stats scenarios.GenMinStats
}

// DeriveSchedule converts an executed run into an enforceable schedule:
// one after-point per thread switch, with Skip counting how often the
// (thread, instruction) pair repeats between consecutive switches, and a
// fallback listing threads in first-appearance order (then any declared
// threads that never ran).
func DeriveSchedule(run *sched.RunResult, prog *kir.Program) sched.Schedule {
	sch := sched.Schedule{Initial: run.Seq[0].Name}
	lastFire := -1
	for i := 0; i+1 < len(run.Seq); i++ {
		if run.Seq[i].Name == run.Seq[i+1].Name {
			continue
		}
		skip := 0
		for j := lastFire + 1; j < i; j++ {
			if run.Seq[j].Name == run.Seq[i].Name && run.Seq[j].Instr.ID == run.Seq[i].Instr.ID {
				skip++
			}
		}
		sch.Points = append(sch.Points, sched.Point{
			Run: run.Seq[i].Name, At: run.Seq[i].Instr.ID, After: true,
			To: run.Seq[i+1].Name, Skip: skip,
		})
		lastFire = i
	}
	seen := make(map[string]bool)
	for _, e := range run.Seq {
		if !seen[e.Name] {
			seen[e.Name] = true
			sch.Fallback = append(sch.Fallback, e.Name)
		}
	}
	for _, td := range prog.Threads {
		if !seen[td.Name] {
			seen[td.Name] = true
			sch.Fallback = append(sch.Fallback, td.Name)
		}
	}
	return sch
}

// matches is the failure oracle: right kind, and (when pinned) the right
// instruction.
func (mz *minimizer) matches(f *sanitizer.Failure, instr kir.InstrID) bool {
	if f == nil || f.Kind != mz.opts.Kind {
		return false
	}
	return instr == kir.NoInstr || f.Instr == instr
}

// replayOK enforces the schedule on a fresh machine and checks the
// failure oracle.
func (mz *minimizer) replayOK(prog *kir.Program, sch sched.Schedule, instr kir.InstrID) bool {
	mz.stats.Replays++
	m, err := kvm.New(prog)
	if err != nil {
		return false
	}
	res, err := sched.NewEnforcer(m).Run(sch, sched.Options{
		StepBudget: mz.opts.StepBudget, LeakCheck: mz.opts.LeakCheck,
	})
	if err != nil {
		return false
	}
	return mz.matches(res.Failure, instr)
}

// ddminPoints bisects the schedule's preemption points down to a
// 1-minimal subset that still replays the failure.
func (mz *minimizer) ddminPoints(prog *kir.Program, sch sched.Schedule, instr kir.InstrID) sched.Schedule {
	try := func(pts []sched.Point) bool {
		cand := sch
		cand.Points = pts
		return mz.replayOK(prog, cand, instr)
	}
	pts := sch.Points
	if len(pts) > 0 && try(nil) {
		sch.Points = nil
		return sch
	}
	n := 2
	for len(pts) >= 2 {
		chunk := (len(pts) + n - 1) / n
		reduced := false
		for start := 0; start < len(pts); start += chunk {
			end := start + chunk
			if end > len(pts) {
				end = len(pts)
			}
			cand := make([]sched.Point, 0, len(pts)-(end-start))
			cand = append(cand, pts[:start]...)
			cand = append(cand, pts[end:]...)
			if try(cand) {
				pts = cand
				n = max(n-1, 2)
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(pts) {
				break
			}
			n = min(len(pts), 2*n)
		}
	}
	if len(pts) == 1 && try(nil) {
		pts = nil
	}
	sch.Points = pts
	return sch
}

// progOK is the program-minimization oracle: the candidate must keep the
// pinned label, stay failure-free when run serially in declared thread
// order, and still reproduce the failure — at one interleaving or more —
// under a bounded LIFS search. Returns the reproduction as ground truth.
func (mz *minimizer) progOK(prog *kir.Program) (*core.Reproduction, bool) {
	if len(prog.Threads) < 2 {
		return nil, false
	}
	instr := kir.NoInstr
	if mz.opts.Label != "" {
		in, ok := prog.ByLabel(mz.opts.Label)
		if !ok {
			return nil, false
		}
		instr = in.ID
	}
	// Serial run in declared order must complete cleanly: the bug must
	// need concurrency.
	mz.stats.Replays++
	m, err := kvm.New(prog)
	if err != nil {
		return nil, false
	}
	var order []string
	for _, td := range prog.Threads {
		order = append(order, td.Name)
	}
	res, err := sched.NewEnforcer(m).Run(sched.Serial(order...), sched.Options{
		StepBudget: mz.opts.StepBudget, LeakCheck: mz.opts.LeakCheck,
	})
	if err != nil || res.Failure != nil {
		return nil, false
	}
	rep, err := mz.reproduceAt(prog, instr)
	if err != nil {
		return nil, false
	}
	return rep, true
}

func (mz *minimizer) reproduce(prog *kir.Program) (*core.Reproduction, error) {
	instr := kir.NoInstr
	if mz.opts.Label != "" {
		in, ok := prog.ByLabel(mz.opts.Label)
		if !ok {
			return nil, fmt.Errorf("factory: label %q not in program", mz.opts.Label)
		}
		instr = in.ID
	}
	return mz.reproduceAt(prog, instr)
}

func (mz *minimizer) reproduceAt(prog *kir.Program, instr kir.InstrID) (*core.Reproduction, error) {
	mz.stats.Replays++
	m, err := kvm.New(prog)
	if err != nil {
		return nil, err
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind: mz.opts.Kind, WantInstr: instr,
		LeakCheck:    mz.opts.LeakCheck,
		StepBudget:   mz.opts.StepBudget,
		MaxSchedules: mz.opts.MaxSchedules,
	})
	if err != nil {
		return nil, err
	}
	if rep.Stats.Interleavings == 0 {
		return nil, fmt.Errorf("factory: failure reproduces serially")
	}
	return rep, nil
}

// minimizeThreads greedily drops declared threads (keeping at least two)
// while the oracle holds.
func (mz *minimizer) minimizeThreads(prog *kir.Program) (*kir.Program, *core.Reproduction, error) {
	var rep *core.Reproduction
	for changed := true; changed; {
		changed = false
		for i := range prog.Threads {
			if len(prog.Threads) <= 2 {
				break
			}
			var keep []string
			for j, td := range prog.Threads {
				if j != i {
					keep = append(keep, td.Name)
				}
			}
			cand, err := prog.Restrict(keep)
			if err != nil {
				continue
			}
			if r, ok := mz.progOK(cand); ok {
				prog, rep, changed = cand, r, true
				break
			}
		}
	}
	return prog, rep, nil
}

// minimizeLines greedily removes single source lines of the disassembled
// program until a fixpoint: a removal survives only if the line-less
// source still parses and the program oracle holds. Accepted candidates
// are canonicalized through a disassemble→parse round first — removing a
// trailing `ret` leaves a dangling end-label whose reparse synthesizes a
// `nop`, so the raw candidate's instruction IDs would disagree with the
// emitted canonical source. A seen-hash set rejects candidates that
// merely re-encode an already-visited program (the synthesized nop makes
// such no-op removals possible), which also guarantees termination.
func (mz *minimizer) minimizeLines(prog *kir.Program, rep *core.Reproduction) (*kir.Program, *core.Reproduction, error) {
	canon, err := canonicalize(prog)
	if err != nil || canon.Hash() != prog.Hash() {
		// A built program whose disassembly does not round-trip cleanly:
		// leave it as is rather than minimize against shifting IDs.
		return prog, rep, nil
	}
	prog = canon
	lines := strings.Split(kasm.Disassemble(prog), "\n")
	seen := map[string]bool{prog.Hash(): true}
	for changed := true; changed; {
		changed = false
		for i := 0; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "" {
				continue
			}
			cand := make([]string, 0, len(lines)-1)
			cand = append(cand, lines[:i]...)
			cand = append(cand, lines[i+1:]...)
			cp, err := kasm.Parse(strings.Join(cand, "\n"))
			if err != nil {
				continue
			}
			cp, err = canonicalize(cp)
			if err != nil || seen[cp.Hash()] {
				continue
			}
			seen[cp.Hash()] = true
			if cp.NumInstrs() >= prog.NumInstrs() {
				// Canonicalization re-synthesized what the removal took out
				// (ret → nop churn): not a reduction.
				continue
			}
			if r, ok := mz.progOK(cp); ok {
				lines = strings.Split(kasm.Disassemble(cp), "\n")
				prog, rep, changed = cp, r, true
				break
			}
		}
	}
	return prog, rep, nil
}

// canonicalize reparses the program's disassembly so the returned
// program, its source text, and its instruction IDs agree. One round
// suffices: parse∘disassemble is a fixed point from the second
// application on.
func canonicalize(p *kir.Program) (*kir.Program, error) {
	cp, err := kasm.Parse(kasm.Disassemble(p))
	if err != nil {
		return nil, err
	}
	if cp.Hash() != p.Hash() {
		// The first parse resolved a dangling label without materializing
		// an instruction; the reparse did. Run once more to stabilize.
		cp2, err := kasm.Parse(kasm.Disassemble(cp))
		if err != nil {
			return nil, err
		}
		if cp2.Hash() != cp.Hash() {
			return nil, fmt.Errorf("factory: disassembly does not stabilize")
		}
		return cp2, nil
	}
	return cp, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package factory

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Stats are the factory's progress counters. All fields are atomics so a
// metrics listener can read them while a campaign runs.
type Stats struct {
	// Campaigns counts fuzz campaigns started; Findings those that
	// surfaced a failure of the recipe's kind.
	Campaigns atomic.Int64
	Findings  atomic.Int64
	// Emitted counts scenarios written out; Duplicates findings whose
	// minimized program collapsed onto an already-known hash; Rejected
	// findings that failed emission validation (fix ineffective,
	// serial-order failure, chain instability).
	Emitted    atomic.Int64
	Duplicates atomic.Int64
	Rejected   atomic.Int64
	// Minimization work: oracle replays spent, and schedule points,
	// instructions and threads removed (the "steps saved" of each
	// scenario, summed).
	MinReplays     atomic.Int64
	PointsRemoved  atomic.Int64
	InstrsRemoved  atomic.Int64
	ThreadsRemoved atomic.Int64
}

// WriteMetrics renders the counters in Prometheus text format, matching
// the aitia_* metric family of the service.
func (s *Stats) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("aitia_factory_campaigns_total", "Fuzz campaigns started by the scenario factory.", s.Campaigns.Load())
	counter("aitia_factory_findings_total", "Campaigns that surfaced a matching failure.", s.Findings.Load())
	counter("aitia_factory_emitted_total", "Scenarios emitted.", s.Emitted.Load())
	counter("aitia_factory_duplicates_total", "Findings deduplicated by program hash.", s.Duplicates.Load())
	counter("aitia_factory_rejected_total", "Findings rejected by emission validation.", s.Rejected.Load())
	counter("aitia_factory_minimize_replays_total", "Oracle replays spent minimizing.", s.MinReplays.Load())
	counter("aitia_factory_points_removed_total", "Schedule points removed by minimization.", s.PointsRemoved.Load())
	counter("aitia_factory_instrs_removed_total", "Instructions removed by minimization.", s.InstrsRemoved.Load())
	counter("aitia_factory_threads_removed_total", "Threads removed by minimization.", s.ThreadsRemoved.Load())
}

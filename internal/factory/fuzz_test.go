package factory

import (
	"errors"
	"math/rand"
	"testing"

	"aitia/internal/fuzz"
)

// FuzzMinimize drives the delta-debugger with arbitrary seeds: any
// campaign finding it is handed must minimize without ever losing the
// failure (Minimize verifies its own oracle and errors otherwise), must
// terminate, and must be a fixed point — minimizing the minimized
// finding changes nothing.
func FuzzMinimize(f *testing.F) {
	f.Add(int64(1), uint8(0))
	f.Add(int64(21), uint8(3))
	f.Add(int64(99), uint8(6))
	recipes := Recipes()
	f.Fuzz(func(t *testing.T, seed int64, pick uint8) {
		r := recipes[int(pick)%len(recipes)]
		prog, _, err := r.Build(rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatalf("recipe %s: %v", r.Name, err)
		}
		fz, err := fuzz.New(prog, fuzz.Options{
			Seed: seed, MaxRuns: 400, WantKind: r.Kind, LeakCheck: r.LeakCheck,
			Strategy: fuzz.Strategies()[int(pick/4)%4],
		})
		if err != nil {
			t.Fatal(err)
		}
		finding, err := fz.Campaign()
		if err != nil {
			t.Fatal(err)
		}
		if finding == nil {
			t.Skip("campaign exhausted without a finding")
		}
		label := ""
		if in, ok := prog.Instr(finding.Failure.Instr); ok {
			label = in.Label
		}
		opts := MinimizeOptions{Kind: r.Kind, Label: label, LeakCheck: r.LeakCheck, MaxSchedules: 2000}
		min1, err := Minimize(prog, finding.Run, opts)
		if errors.Is(err, ErrOracle) {
			// A finding the bounded search cannot re-establish is a valid
			// rejection, not a crash.
			t.Skipf("minimize rejected the finding: %v", err)
		}
		if err != nil {
			t.Fatal(err)
		}
		if min1.Repro.Run.Failure == nil || min1.Repro.Run.Failure.Kind != r.Kind {
			t.Fatalf("minimization lost the failure: %v", min1.Repro.Run.Failure)
		}
		if min1.Stats.InstrsAfter > min1.Stats.InstrsBefore ||
			min1.Stats.ThreadsAfter > min1.Stats.ThreadsBefore ||
			min1.Stats.PointsAfter > min1.Stats.PointsBefore {
			t.Fatalf("minimization grew the finding: %+v", min1.Stats)
		}
		min2, err := Minimize(min1.Prog, min1.Repro.Run, opts)
		if err != nil {
			t.Fatalf("re-minimizing the minimized finding failed: %v", err)
		}
		if min2.Source != min1.Source {
			t.Fatalf("minimization is not a fixed point:\n%s\n--\n%s", min1.Source, min2.Source)
		}
	})
}

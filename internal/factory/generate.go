// Package factory closes the fuzz-to-corpus loop (ROADMAP item 3): seeded
// program generators and corpus-derived mutators feed internal/fuzz
// campaigns under the §2 scheduling strategies; each finding is
// delta-debugged down to a minimal schedule and program, diagnosed through
// manager.Diagnose, classified into the bug-class matrix (Tables 2–3
// failure classes × §3 interleaving structures) and emitted as a
// self-contained generated scenario that internal/scenarios registers at
// init. The whole pipeline is a deterministic function of the factory
// seed: the same seed emits byte-identical scenario files.
package factory

import (
	"fmt"
	"math/rand"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// Recipe is one seeded program source: a generator template for a
// taxonomy bug class, or a corpus-derived mutator. Build draws every
// parameter (names, sizes, offsets, structure variants) from the rng, so
// repeated builds of one recipe yield distinct programs.
type Recipe struct {
	// Name tags emitted scenarios (e.g. "toctou-null").
	Name string
	// Kind is the failure class the recipe plants; campaigns only accept
	// findings of this kind.
	Kind sanitizer.Kind
	// LeakCheck arms the end-of-run leak oracle (memory-leak recipes).
	LeakCheck bool
	// Build generates a program variant and the entry functions a
	// serializing fix must make mutually exclusive.
	Build func(rng *rand.Rand) (*kir.Program, []string, error)
}

// Name pools for generated kernel objects. Drawing names (plus a numeric
// tag) is what keeps repeated emissions of one recipe hash-distinct after
// minimization strips the removable structure.
var objPool = []string{"sock", "vdev", "inode", "conn", "pipe", "sess", "vq", "tty", "mdev", "nbd"}

type names struct {
	obj string // base object name, e.g. "sock3"
}

func pickNames(rng *rand.Rand) names {
	return names{obj: fmt.Sprintf("%s%d", objPool[rng.Intn(len(objPool))], rng.Intn(100))}
}

// Recipes returns the generator templates covering the Tables 2–3 failure
// taxonomy and the §3 structure taxonomy. Order is significant: the
// factory cycles deterministically and prefers recipes whose failure
// class is under-represented.
func Recipes() []Recipe {
	return []Recipe{
		{Name: "toctou-null", Kind: sanitizer.KindNullDeref, Build: buildTOCTOUNull},
		{Name: "toctou-uaf", Kind: sanitizer.KindUseAfterFree, Build: buildTOCTOUUAF},
		{Name: "section-bugon", Kind: sanitizer.KindBugOn, Build: buildSectionBugOn},
		{Name: "pair-bugon", Kind: sanitizer.KindBugOn, Build: buildPairBugOn},
		{Name: "publish-gpf", Kind: sanitizer.KindGPF, Build: buildPublishGPF},
		{Name: "retract-null", Kind: sanitizer.KindNullDeref, Build: buildRetractNull},
		{Name: "abba-deadlock", Kind: sanitizer.KindDeadlock, Build: buildABBADeadlock},
		{Name: "race-doublefree", Kind: sanitizer.KindDoubleFree, Build: buildRaceDoubleFree},
		{Name: "install-leak", Kind: sanitizer.KindMemoryLeak, LeakCheck: true, Build: buildInstallLeak},
		{Name: "resize-oob", Kind: sanitizer.KindOutOfBounds, Build: buildResizeOOB},
		{Name: "rcu-uaf", Kind: sanitizer.KindUseAfterFree, Build: buildRCUUAF},
	}
}

// buildTOCTOUNull: check-then-act on a (valid-flag, pointer) pair — the
// Figure 1 shape. The nuller retracts the pointer between the user's
// validity check and dereference.
func buildTOCTOUNull(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	flag, ptr, obj := n.obj+"_ready", n.obj+"_ptr", n.obj+"_obj"
	use, drop := n.obj+"_ioctl", n.obj+"_detach"
	size := int64(1 + rng.Intn(3))
	off := rng.Int63n(size)

	b := kir.NewBuilder()
	b.Var(flag, 0)
	b.VarAddrOf(ptr, obj)
	b.Global(obj, size, 40+rng.Int63n(60))

	a := b.Func(use)
	a.Store(kir.G(flag), kir.Imm(1)).L("A1")
	a.Load(kir.R1, kir.G(ptr)).L("A2")
	a.Load(kir.R2, kir.Ind(kir.R1, off)).L("A3")
	a.Ret()

	d := b.Func(drop)
	d.Load(kir.R1, kir.G(flag)).L("B1")
	d.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	d.Store(kir.G(ptr), kir.Imm(0)).L("B2")
	d.At("out").Ret()

	b.Thread("ioctl$"+n.obj, use)
	b.Thread("detach$"+n.obj, drop)
	prog, err := b.Build()
	return prog, []string{use, drop}, err
}

// buildTOCTOUUAF: both threads guard on the published pointer, but the
// freer frees the object between the user's check and use.
func buildTOCTOUUAF(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	slot := n.obj + "_slot"
	use, rel := n.obj+"_read", n.obj+"_release"
	size := int64(1 + rng.Intn(3))
	off := rng.Int63n(size)

	b := kir.NewBuilder()
	b.HeapObj(slot, size, 7+rng.Int63n(90))

	a := b.Func(use)
	a.Load(kir.R1, kir.G(slot)).L("A1")
	a.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	a.Load(kir.R2, kir.Ind(kir.R1, off)).L("A2")
	a.At("out").Ret()

	f := b.Func(rel)
	f.Load(kir.R1, kir.G(slot)).L("B1")
	f.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	f.Store(kir.G(slot), kir.Imm(0)).L("B2")
	f.Free(kir.R(kir.R1)).L("B3")
	f.At("out").Ret()

	b.Thread("read$"+n.obj, use)
	b.Thread("close$"+n.obj, rel)
	prog, err := b.Build()
	return prog, []string{use, rel}, err
}

// buildSectionBugOn: a worker marks a critical section open/closed in a
// state word; a checker asserts it never observes the section open —
// true in every serial order, violated when the checker lands inside.
func buildSectionBugOn(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	state, scratch := n.obj+"_busy", n.obj+"_stat"
	wk, ck := n.obj+"_update", n.obj+"_assert"

	b := kir.NewBuilder()
	b.Var(state, 0)
	b.Var(scratch, 0)

	w := b.Func(wk)
	w.Store(kir.G(state), kir.Imm(1)).L("A1")
	w.Store(kir.G(scratch), kir.Imm(rng.Int63n(100))).L("A2")
	w.Store(kir.G(state), kir.Imm(0)).L("A3")
	w.Ret()

	c := b.Func(ck)
	c.Load(kir.R1, kir.G(state)).L("B1")
	c.BugOn(kir.R(kir.R1)).L("B2")
	c.Ret()

	b.Thread("worker$"+n.obj, wk)
	b.Thread("check$"+n.obj, ck)
	prog, err := b.Build()
	return prog, []string{wk, ck}, err
}

// buildPairBugOn: two correlated variables updated non-atomically; the
// checker asserts their invariant (a == b) — the Figure 7 shape.
func buildPairBugOn(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	va, vb := n.obj+"_head", n.obj+"_tail"
	up, ck := n.obj+"_advance", n.obj+"_verify"
	v := 1 + rng.Int63n(9)

	b := kir.NewBuilder()
	b.Var(va, 0)
	b.Var(vb, 0)

	u := b.Func(up)
	u.Store(kir.G(va), kir.Imm(v)).L("A1")
	u.Store(kir.G(vb), kir.Imm(v)).L("A2")
	u.Store(kir.G(va), kir.Imm(0)).L("A3")
	u.Store(kir.G(vb), kir.Imm(0)).L("A4")
	u.Ret()

	c := b.Func(ck)
	c.Load(kir.R1, kir.G(va)).L("B1")
	c.Load(kir.R2, kir.G(vb)).L("B2")
	c.Mov(kir.R3, kir.R(kir.R1))
	c.Sub(kir.R3, kir.R(kir.R2))
	c.BugOn(kir.R(kir.R3)).L("B3")
	c.Ret()

	b.Thread("advance$"+n.obj, up)
	b.Thread("verify$"+n.obj, ck)
	prog, err := b.Build()
	return prog, []string{up, ck}, err
}

// buildPublishGPF: the publisher parks a stale token in the slot before
// swapping in the real allocation; a consumer that loads the token and
// dereferences it takes a wild access (general protection fault).
func buildPublishGPF(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	slot := n.obj + "_slot"
	pub, use := n.obj+"_bind", n.obj+"_poll"
	token := int64(0x50 + rng.Intn(0xa0)) // above NullTop, below GlobalBase: wild

	b := kir.NewBuilder()
	b.Var(slot, 0)

	p := b.Func(pub)
	p.Store(kir.G(slot), kir.Imm(token)).L("A1")
	p.Alloc(kir.R1, 1)
	p.Store(kir.Ind(kir.R1, 0), kir.Imm(rng.Int63n(100)))
	p.Store(kir.G(slot), kir.R(kir.R1)).L("A2")
	p.Ret()

	u := b.Func(use)
	u.Load(kir.R1, kir.G(slot)).L("B1")
	u.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	u.Load(kir.R2, kir.Ind(kir.R1, 0)).L("B2")
	u.At("out").Ret()

	b.Thread("bind$"+n.obj, pub)
	b.Thread("poll$"+n.obj, use)
	prog, err := b.Build()
	return prog, []string{pub, use}, err
}

// buildRetractNull: publish, then a queued worker retracts the slot; the
// consumer's re-read between check and dereference picks up the NULL —
// the Figure 4(a) shape with a background thread.
func buildRetractNull(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	slot := n.obj + "_slot"
	pub, use, wk := n.obj+"_open", n.obj+"_ioctl", n.obj+"_teardown"

	b := kir.NewBuilder()
	b.Var(slot, 0)

	p := b.Func(pub)
	p.Alloc(kir.R1, 1)
	p.Store(kir.Ind(kir.R1, 0), kir.Imm(3+rng.Int63n(60)))
	p.Store(kir.G(slot), kir.R(kir.R1)).L("A1")
	p.QueueWork(wk, kir.Imm(0)).L("A2")
	p.Ret()

	u := b.Func(use)
	u.Load(kir.R1, kir.G(slot)).L("B1")
	u.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	u.Load(kir.R2, kir.G(slot)).L("B2")
	u.Load(kir.R3, kir.Ind(kir.R2, 0)).L("B3")
	u.At("out").Ret()

	w := b.Func(wk)
	w.Store(kir.G(slot), kir.Imm(0)).L("K1")
	w.Ret()

	b.Thread("open$"+n.obj, pub)
	b.Thread("ioctl$"+n.obj, use)
	prog, err := b.Build()
	return prog, []string{pub, use, wk}, err
}

// buildABBADeadlock: the classic lock-order inversion, as a 2-cycle or a
// 3-thread ring depending on the draw.
func buildABBADeadlock(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	ring := 2 + rng.Intn(2) // 2 or 3 threads in the cycle
	locks := make([]string, ring)
	for i := range locks {
		locks[i] = fmt.Sprintf("%s_mu%d", n.obj, i)
	}
	shared := n.obj + "_count"

	b := kir.NewBuilder()
	for _, l := range locks {
		b.Var(l, 0)
	}
	b.Var(shared, 0)

	var entries []string
	for i := 0; i < ring; i++ {
		fn := fmt.Sprintf("%s_path%d", n.obj, i)
		entries = append(entries, fn)
		first, second := locks[i], locks[(i+1)%ring]
		f := b.Func(fn)
		f.Lock(kir.G(first)).L(fmt.Sprintf("L%da", i))
		f.Store(kir.G(shared), kir.Imm(int64(i+1)))
		f.Lock(kir.G(second)).L(fmt.Sprintf("L%db", i))
		f.Unlock(kir.G(second))
		f.Unlock(kir.G(first))
		f.Ret()
		b.Thread(fmt.Sprintf("path%d$%s", i, n.obj), fn)
	}
	prog, err := b.Build()
	return prog, entries, err
}

// buildRaceDoubleFree: two release paths race on the same published
// object; both pass the non-NULL check before either clears the slot.
func buildRaceDoubleFree(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	slot := n.obj + "_slot"
	rel := n.obj + "_release"

	b := kir.NewBuilder()
	b.HeapObj(slot, 1, 5+rng.Int63n(90))

	f := b.Func(rel)
	f.Load(kir.R1, kir.G(slot)).L("C1")
	f.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	f.Free(kir.R(kir.R1)).L("C2")
	f.Store(kir.G(slot), kir.Imm(0)).L("C3")
	f.At("out").Ret()

	b.Thread("close$"+n.obj+"$1", rel)
	b.Thread("close$"+n.obj+"$2", rel)
	prog, err := b.Build()
	return prog, []string{rel}, err
}

// buildInstallLeak: two installers race the check-then-install; the
// loser's allocation becomes unreachable — kmemleak fires at run end.
// Serially the loser's check fails before it allocates, so nothing leaks.
func buildInstallLeak(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	slot := n.obj + "_filter"
	ins := n.obj + "_install"

	b := kir.NewBuilder()
	b.Var(slot, 0)

	f := b.Func(ins)
	f.Load(kir.R1, kir.G(slot)).L("C1")
	f.Bne(kir.R(kir.R1), kir.Imm(0), "out")
	f.Alloc(kir.R2, 1).L("C2")
	f.Store(kir.Ind(kir.R2, 0), kir.Imm(rng.Int63n(100)))
	f.Store(kir.G(slot), kir.R(kir.R2)).L("C3")
	f.At("out").Ret()

	b.Thread("install$"+n.obj+"$1", ins)
	b.Thread("install$"+n.obj+"$2", ins)
	prog, err := b.Build()
	return prog, []string{ins}, err
}

// buildResizeOOB: the reader indexes a fixed-size buffer through a shared
// index variable; the resizer bumps the index past the buffer and
// restores it — in-bounds in every serial order, a redzone hit when the
// reader's indexed access lands inside the window.
func buildResizeOOB(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	buf, idx := n.obj+"_buf", n.obj+"_len"
	rd, rs := n.obj+"_copy", n.obj+"_resize"
	size := int64(2 + rng.Intn(2))

	b := kir.NewBuilder()
	b.HeapObj(buf, size, 0)
	b.Var(idx, size-1)

	r := b.Func(rd)
	r.Load(kir.R1, kir.G(buf)).L("A1")
	r.Load(kir.R2, kir.G(idx)).L("A2")
	r.Mov(kir.R3, kir.R(kir.R1))
	r.Add(kir.R3, kir.R(kir.R2))
	r.Load(kir.R4, kir.Ind(kir.R3, 0)).L("A3")
	r.Ret()

	z := b.Func(rs)
	z.Store(kir.G(idx), kir.Imm(size)).L("B1") // one past the end
	z.Store(kir.G(idx), kir.Imm(size-1)).L("B2")
	z.Ret()

	b.Thread("copy$"+n.obj, rd)
	b.Thread("resize$"+n.obj, rs)
	prog, err := b.Build()
	return prog, []string{rd, rs}, err
}

// buildRCUUAF: the closer retracts the slot and hands the object to an
// RCU callback that frees it; a user that loaded the pointer before the
// retraction dereferences the freed object — the Figure 4(b) shape.
func buildRCUUAF(rng *rand.Rand) (*kir.Program, []string, error) {
	n := pickNames(rng)
	slot := n.obj + "_slot"
	cl, use, reap := n.obj+"_unhash", n.obj+"_send", n.obj+"_reap"
	size := int64(1 + rng.Intn(2))
	off := rng.Int63n(size)

	b := kir.NewBuilder()
	b.HeapObj(slot, size, 11+rng.Int63n(80))

	c := b.Func(cl)
	c.Load(kir.R1, kir.G(slot)).L("A1")
	c.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	c.Store(kir.G(slot), kir.Imm(0)).L("A2")
	c.CallRCU(reap, kir.R(kir.R1)).L("A3")
	c.At("out").Ret()

	u := b.Func(use)
	u.Load(kir.R1, kir.G(slot)).L("B1")
	u.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	u.Load(kir.R2, kir.Ind(kir.R1, off)).L("B2")
	u.At("out").Ret()

	w := b.Func(reap)
	w.Free(kir.R(kir.R0)).L("K1")
	w.Ret()

	b.Thread("unhash$"+n.obj, cl)
	b.Thread("send$"+n.obj, use)
	prog, err := b.Build()
	return prog, []string{cl, use, reap}, err
}

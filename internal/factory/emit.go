package factory

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// WriteCorpus materializes a factory run into dir: one <name>.kasm
// program and one <name>.json manifest per emitted scenario. Stale
// gen-*.{kasm,json} files from a previous run are removed first, other
// files (README.md) are left alone. Output is byte-deterministic: struct
// field order fixes the JSON layout and the sources are canonical
// disassembly.
func WriteCorpus(dir string, emitted []Emitted) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "gen-*"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if strings.HasSuffix(f, ".kasm") || strings.HasSuffix(f, ".json") {
			if err := os.Remove(f); err != nil {
				return err
			}
		}
	}
	for _, em := range emitted {
		src := em.Source
		if !strings.HasSuffix(src, "\n") {
			src += "\n"
		}
		if err := os.WriteFile(filepath.Join(dir, em.Manifest.Name+".kasm"), []byte(src), 0o644); err != nil {
			return err
		}
		raw, err := json.MarshalIndent(em.Manifest, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(filepath.Join(dir, em.Manifest.Name+".json"), raw, 0o644); err != nil {
			return err
		}
	}
	if len(emitted) > 0 {
		return nil
	}
	return fmt.Errorf("factory: nothing to write")
}

package factory

import (
	"math/rand"

	"aitia/internal/kir"
	"aitia/internal/scenarios"
)

// CorpusRecipes derives one recipe per hand-built scenario whose fix is a
// plain serialization (custom-patch scenarios carry no entry list to seed
// a fix from). Each recipe replays the scenario's unpadded program
// through a fresh campaign; the minimizer then strips whatever the
// original includes beyond the failure core. Findings whose minimized
// program collapses onto the hand-built hash are deduplicated upstream,
// so only genuinely divergent variants are emitted.
func CorpusRecipes() []Recipe {
	var out []Recipe
	for _, sc := range scenarios.HandBuilt() {
		entries := sc.FixEntries()
		if len(entries) == 0 {
			continue
		}
		sc := sc
		out = append(out, Recipe{
			Name:      "corpus-" + sc.Name,
			Kind:      sc.WantKind,
			LeakCheck: sc.NeedsLeakCheck(),
			Build: func(*rand.Rand) (*kir.Program, []string, error) {
				prog, err := sc.RawProgram()
				return prog, entries, err
			},
		})
	}
	return out
}

package factory

import (
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/manager"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

// smallRun executes a tiny factory run (no class floor) and caches
// nothing: determinism is part of what the tests assert.
func smallRun(t *testing.T, seed int64, count int) *Summary {
	t.Helper()
	sum, err := Run(context.Background(), Options{
		Seed: seed, TargetCount: count, MinPerClass: -1, CampaignRuns: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Emitted) != count {
		t.Fatalf("emitted %d, want %d", len(sum.Emitted), count)
	}
	return sum
}

func TestFactoryRunEmitsValidScenarios(t *testing.T) {
	sum := smallRun(t, 5, 3)
	for _, em := range sum.Emitted {
		gm := em.Manifest
		if gm.Name == "" || gm.Recipe == "" || gm.Strategy == "" {
			t.Errorf("incomplete manifest: %+v", gm)
		}
		if gm.FailureClass == "" || gm.StructureClass == "" {
			t.Errorf("%s: unclassified", gm.Name)
		}
		if gm.WantInterleavings < 1 {
			t.Errorf("%s: reproduces serially (interleavings=%d)", gm.Name, gm.WantInterleavings)
		}
		if gm.Chain == "" {
			t.Errorf("%s: empty chain", gm.Name)
		}
		if len(gm.FixEntries) == 0 {
			t.Errorf("%s: no fix entries", gm.Name)
		}
		if em.Source == "" {
			t.Errorf("%s: empty program", gm.Name)
		}
		if gm.Minimize.InstrsAfter > gm.Minimize.InstrsBefore ||
			gm.Minimize.PointsAfter > gm.Minimize.PointsBefore {
			t.Errorf("%s: minimization grew the finding: %+v", gm.Name, gm.Minimize)
		}
	}
}

func TestFactoryRunIsDeterministic(t *testing.T) {
	a := smallRun(t, 9, 2)
	b := smallRun(t, 9, 2)
	ja, _ := json.Marshal(a.Emitted)
	jb, _ := json.Marshal(b.Emitted)
	if string(ja) != string(jb) {
		t.Fatalf("same seed, different corpus:\n%s\n--\n%s", ja, jb)
	}
}

func TestMinimizePreservesFailureKindAndIsIdempotent(t *testing.T) {
	for _, r := range Recipes() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(21))
			prog, _, err := r.Build(rng)
			if err != nil {
				t.Fatal(err)
			}
			fz, err := fuzz.New(prog, fuzz.Options{
				Seed: 21, MaxRuns: 8000, WantKind: r.Kind, LeakCheck: r.LeakCheck,
			})
			if err != nil {
				t.Fatal(err)
			}
			finding, err := fz.Campaign()
			if err != nil {
				t.Fatal(err)
			}
			if finding == nil {
				t.Skipf("recipe %s: campaign found nothing under this seed", r.Name)
			}
			label := ""
			if in, ok := prog.Instr(finding.Failure.Instr); ok {
				label = in.Label
			}
			mopts := MinimizeOptions{Kind: r.Kind, Label: label, LeakCheck: r.LeakCheck}
			min1, err := Minimize(prog, finding.Run, mopts)
			if err != nil {
				t.Fatal(err)
			}
			// Kind preserved: the minimized reproduction fails the same way.
			if min1.Repro.Run.Failure == nil || min1.Repro.Run.Failure.Kind != r.Kind {
				t.Fatalf("minimized failure = %v, want kind %v", min1.Repro.Run.Failure, r.Kind)
			}
			if min1.Stats.InstrsAfter > min1.Stats.InstrsBefore {
				t.Fatalf("minimization grew the program: %+v", min1.Stats)
			}
			// Idempotent: minimizing the minimized finding changes nothing.
			min2, err := Minimize(min1.Prog, min1.Repro.Run, mopts)
			if err != nil {
				t.Fatal(err)
			}
			if min2.Source != min1.Source {
				t.Errorf("not a fixed point:\n%s\n--\n%s", min1.Source, min2.Source)
			}
			if len(min2.Schedule.Points) != len(min1.Schedule.Points) {
				t.Errorf("schedule not a fixed point: %d -> %d points",
					len(min1.Schedule.Points), len(min2.Schedule.Points))
			}
			// Deterministic: same inputs, same result.
			min3, err := Minimize(prog, finding.Run, mopts)
			if err != nil {
				t.Fatal(err)
			}
			if min3.Source != min1.Source || min3.Stats != min1.Stats {
				t.Errorf("minimization not deterministic")
			}
		})
	}
}

// TestGeneratedSampleDiagnosisWorkerIdentity: the ground truth pinned in
// an emitted manifest is worker-count independent — a serial manager and
// an 8-worker manager produce the identical chain on a generated sample.
func TestGeneratedSampleDiagnosisWorkerIdentity(t *testing.T) {
	sum := smallRun(t, 13, 1)
	em := sum.Emitted[0]
	prog, err := kasm.Parse(em.Source)
	if err != nil {
		t.Fatal(err)
	}
	kind, ok := sanitizer.KindByName(em.Manifest.Kind)
	if !ok {
		t.Fatalf("unknown kind %q", em.Manifest.Kind)
	}
	wantInstr := kir.NoInstr
	if em.Manifest.WantLabel != "" {
		wantInstr = prog.MustByLabel(em.Manifest.WantLabel).ID
	}
	leak := kind == sanitizer.KindMemoryLeak
	diagnose := func(workers int) (string, int) {
		mgr, err := manager.New(prog, manager.Options{
			Workers:  workers,
			LIFS:     core.LIFSOptions{WantKind: kind, WantInstr: wantInstr, LeakCheck: leak},
			Analysis: core.AnalysisOptions{LeakCheck: leak},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := mgr.Diagnose(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res.Diagnosis.Chain.Format(prog), res.Reproduction.Stats.Interleavings
	}
	chain1, il1 := diagnose(1)
	chain8, il8 := diagnose(8)
	if chain1 != chain8 || il1 != il8 {
		t.Fatalf("worker-dependent diagnosis: serial %q/%d vs 8-worker %q/%d", chain1, il1, chain8, il8)
	}
	if chain1 != em.Manifest.Chain {
		t.Fatalf("chain %q does not match manifest %q", chain1, em.Manifest.Chain)
	}
}

func TestMatrixAccountsHandBuiltCorpus(t *testing.T) {
	m := NewMatrix()
	for _, sc := range scenarios.HandBuilt() {
		m.AddScenario(sc)
	}
	if m.Total() != len(scenarios.HandBuilt()) {
		t.Fatalf("total = %d, want %d", m.Total(), len(scenarios.HandBuilt()))
	}
	if got := m.MissingFailure(1); len(got) == 0 {
		t.Fatal("hand-built corpus alone should miss at least the deadlock class")
	}
	out := m.String()
	for _, fc := range scenarios.FailureClasses() {
		if !strings.Contains(out, fc) {
			t.Errorf("matrix table lacks row %q", fc)
		}
	}
}

package factory

import (
	"fmt"
	"strings"

	"aitia/internal/core"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

// StructureOf classifies a diagnosed chain into the interleaving-structure
// taxonomy (SNIPPETS §3). Deadlocks carry their own kind and an empty
// chain. A single-race chain is a plain data race. A multi-race chain
// where some thread appears on the early side of one race and the late
// side of another had a region of that thread cut open by the other
// thread — the check-then-act shape of an atomicity violation. Chains
// whose races all push the victim the same way are order violations
// (publish-before-init and friends).
func StructureOf(kind sanitizer.Kind, chain *core.Chain) string {
	if kind == sanitizer.KindDeadlock {
		return scenarios.StructDeadlock
	}
	races := chain.Races()
	if len(races) <= 1 {
		return scenarios.StructDataRace
	}
	for i, a := range races {
		for j, b := range races {
			if i != j && a.First.Thread == b.Second.Thread {
				return scenarios.StructAtomicity
			}
		}
	}
	return scenarios.StructOrder
}

// Matrix is the bug-class coverage matrix: failure class (Tables 2–3 bug
// type) × interleaving structure (§3 taxonomy), with per-cell counts.
type Matrix struct {
	cells map[cellKey]int
}

type cellKey struct{ failure, structure string }

// NewMatrix returns an empty matrix.
func NewMatrix() *Matrix { return &Matrix{cells: make(map[cellKey]int)} }

// Add records one scenario in the given cell.
func (m *Matrix) Add(failure, structure string) {
	m.cells[cellKey{failure, structure}]++
}

// AddScenario records a scenario under its derived classes.
func (m *Matrix) AddScenario(sc *scenarios.Scenario) {
	m.Add(sc.FailureClass(), sc.StructureClass())
}

// FailureCount returns the row total for one failure class.
func (m *Matrix) FailureCount(failure string) int {
	n := 0
	for k, c := range m.cells {
		if k.failure == failure {
			n += c
		}
	}
	return n
}

// StructureCount returns the column total for one structure class.
func (m *Matrix) StructureCount(structure string) int {
	n := 0
	for k, c := range m.cells {
		if k.structure == structure {
			n += c
		}
	}
	return n
}

// Total returns the number of recorded scenarios.
func (m *Matrix) Total() int {
	n := 0
	for _, c := range m.cells {
		n += c
	}
	return n
}

// MissingFailure lists the taxonomy failure classes with fewer than min
// representatives, in taxonomy order.
func (m *Matrix) MissingFailure(min int) []string {
	var out []string
	for _, fc := range scenarios.FailureClasses() {
		if m.FailureCount(fc) < min {
			out = append(out, fc)
		}
	}
	return out
}

// MissingStructure lists the structure classes with fewer than min
// representatives, in taxonomy order.
func (m *Matrix) MissingStructure(min int) []string {
	var out []string
	for _, sc := range scenarios.StructureClasses() {
		if m.StructureCount(sc) < min {
			out = append(out, sc)
		}
	}
	return out
}

// String renders the full class × count matrix, empty cells included, so
// a failing -check-matrix gate shows exactly which cells need filling.
func (m *Matrix) String() string {
	structs := scenarios.StructureClasses()
	var b strings.Builder
	fmt.Fprintf(&b, "%-26s", "failure \\ structure")
	for _, sc := range structs {
		fmt.Fprintf(&b, " %19s", sc)
	}
	fmt.Fprintf(&b, " %6s\n", "total")
	for _, fc := range scenarios.FailureClasses() {
		fmt.Fprintf(&b, "%-26s", fc)
		for _, sc := range structs {
			n := m.cells[cellKey{fc, sc}]
			cell := "."
			if n > 0 {
				cell = fmt.Sprintf("%d", n)
			}
			fmt.Fprintf(&b, " %19s", cell)
		}
		fmt.Fprintf(&b, " %6d\n", m.FailureCount(fc))
	}
	fmt.Fprintf(&b, "%-26s", "total")
	for _, sc := range structs {
		fmt.Fprintf(&b, " %19d", m.StructureCount(sc))
	}
	fmt.Fprintf(&b, " %6d\n", m.Total())
	return b.String()
}

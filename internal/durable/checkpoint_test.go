package durable

import (
	"bytes"
	"errors"
	"os"
	"testing"
)

func openStore(t *testing.T) *CheckpointStore {
	t.Helper()
	s, err := OpenCheckpointStore(t.TempDir(), false)
	if err != nil {
		t.Fatalf("OpenCheckpointStore: %v", err)
	}
	return s
}

func TestCheckpointRoundTrip(t *testing.T) {
	s := openStore(t)
	payload := []byte(`{"round":1,"phase":3}`)
	if err := s.Save("abc123.lifs", 2, payload); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := s.Load("abc123.lifs", 2)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Load = %q, want %q", got, payload)
	}
	if st := s.Stats(); st.Saves != 1 || st.Loads != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCheckpointMissing(t *testing.T) {
	s := openStore(t)
	if _, err := s.Load("nope", 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	s := openStore(t)
	if err := s.Save("k", 1, []byte("v1 payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("k", 2); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("version mismatch must be ErrCheckpointInvalid, got %v", err)
	}
	if st := s.Stats(); st.Invalid != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCheckpointKeyMismatch(t *testing.T) {
	s := openStore(t)
	if err := s.Save("prog-A.lifs", 1, []byte("state for A")); err != nil {
		t.Fatal(err)
	}
	// Copy A's file over B's slot: the embedded key must catch it.
	data, err := os.ReadFile(s.path("prog-A.lifs"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("prog-B.lifs"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("prog-B.lifs", 1); !errors.Is(err, ErrCheckpointInvalid) {
		t.Fatalf("key mismatch must be ErrCheckpointInvalid, got %v", err)
	}
}

func TestCheckpointCorruption(t *testing.T) {
	s := openStore(t)
	payload := []byte("some serialized search frontier")
	if err := s.Save("k", 1, payload); err != nil {
		t.Fatal(err)
	}
	path := s.path("k")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Every single-byte flip anywhere in the file must be rejected.
	for off := range pristine {
		mutated := append([]byte(nil), pristine...)
		mutated[off] ^= 0x5A
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load("k", 1); !errors.Is(err, ErrCheckpointInvalid) {
			t.Fatalf("byte flip at %d accepted (err=%v)", off, err)
		}
	}
	// Every truncation must be rejected too.
	for cut := 0; cut < len(pristine); cut++ {
		if err := os.WriteFile(path, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load("k", 1); !errors.Is(err, ErrCheckpointInvalid) {
			t.Fatalf("truncation at %d accepted (err=%v)", cut, err)
		}
	}
}

func TestCheckpointOverwriteAndDelete(t *testing.T) {
	s := openStore(t)
	if err := s.Save("k", 1, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("k", 1, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("k", 1)
	if err != nil || string(got) != "new" {
		t.Fatalf("Load = %q, %v", got, err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("k", 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("after Delete want ErrNoCheckpoint, got %v", err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatalf("Delete of missing key must be nil, got %v", err)
	}
}

func TestCheckpointKeySanitization(t *testing.T) {
	s := openStore(t)
	key := "hash/with:odd*chars?.lifs"
	if err := s.Save(key, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(key, 1)
	if err != nil || string(got) != "x" {
		t.Fatalf("Load = %q, %v", got, err)
	}
}

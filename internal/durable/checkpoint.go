package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// Checkpoint files carry an envelope:
//
//	magic   [8]byte  "AITIACKP"
//	version uint32 LE (format version of the payload, supplied by caller)
//	keyLen  uint32 LE
//	key     [keyLen]byte (e.g. "<program-hash>.lifs")
//	payLen  uint32 LE
//	crc32   uint32 LE (IEEE, of payload)
//	payload [payLen]byte
//
// Save is atomic (tmp + rename); Load validates every field and returns
// ErrCheckpointInvalid on any mismatch so callers fall back to a fresh
// search instead of trusting a stale or foreign snapshot.

var checkpointMagic = [8]byte{'A', 'I', 'T', 'I', 'A', 'C', 'K', 'P'}

// ErrCheckpointInvalid marks a checkpoint that exists but cannot be
// trusted: bad magic, version mismatch, key mismatch, bad checksum, or
// truncation. Callers must treat it exactly like "no checkpoint".
var ErrCheckpointInvalid = errors.New("durable: checkpoint invalid")

// ErrNoCheckpoint is returned by Load when no checkpoint exists for the
// key.
var ErrNoCheckpoint = errors.New("durable: no checkpoint")

// CheckpointStats counts store activity.
type CheckpointStats struct {
	Saves   uint64
	Loads   uint64 // successful loads
	Invalid uint64 // loads rejected as invalid
	Misses  uint64 // loads with no file present
	Deletes uint64
}

// CheckpointStore persists named, versioned snapshots in a directory.
// Keys are sanitized into file names; each key holds at most one
// checkpoint (Save overwrites atomically).
type CheckpointStore struct {
	dir  string
	sync bool

	saves   atomic.Uint64
	loads   atomic.Uint64
	invalid atomic.Uint64
	misses  atomic.Uint64
	deletes atomic.Uint64
}

// OpenCheckpointStore opens (creating if necessary) a store rooted at
// dir. With sync set, saves fsync before rename.
func OpenCheckpointStore(dir string, sync bool) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create checkpoint dir: %w", err)
	}
	return &CheckpointStore{dir: dir, sync: sync}, nil
}

func (s *CheckpointStore) path(key string) string {
	clean := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, key)
	return filepath.Join(s.dir, clean+".ckpt")
}

// Save atomically writes payload under key with the given format
// version, replacing any prior checkpoint for the key.
func (s *CheckpointStore) Save(key string, version uint32, payload []byte) error {
	buf := make([]byte, 0, 8+4+4+len(key)+4+4+len(payload))
	buf = append(buf, checkpointMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = append(buf, key...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(s.dir, "ckpt-*")
	if err != nil {
		return fmt.Errorf("durable: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: checkpoint write: %w", err)
	}
	if s.sync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return fmt.Errorf("durable: checkpoint sync: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpName, s.path(key)); err != nil {
		return fmt.Errorf("durable: checkpoint rename: %w", err)
	}
	s.saves.Add(1)
	return nil
}

// Load reads and validates the checkpoint for key at the expected
// format version. Any validation failure returns an error wrapping
// ErrCheckpointInvalid; a missing file returns ErrNoCheckpoint.
func (s *CheckpointStore) Load(key string, version uint32) ([]byte, error) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, ErrNoCheckpoint
		}
		return nil, fmt.Errorf("durable: checkpoint read: %w", err)
	}
	payload, err := decodeCheckpoint(data, key, version)
	if err != nil {
		s.invalid.Add(1)
		return nil, err
	}
	s.loads.Add(1)
	return payload, nil
}

func decodeCheckpoint(data []byte, key string, version uint32) ([]byte, error) {
	if len(data) < 8+4+4 {
		return nil, fmt.Errorf("%w: truncated header", ErrCheckpointInvalid)
	}
	if [8]byte(data[:8]) != checkpointMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointInvalid)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCheckpointInvalid, v, version)
	}
	keyLen := binary.LittleEndian.Uint32(data[12:16])
	rest := data[16:]
	if uint64(keyLen) > uint64(len(rest)) {
		return nil, fmt.Errorf("%w: truncated key", ErrCheckpointInvalid)
	}
	if string(rest[:keyLen]) != key {
		return nil, fmt.Errorf("%w: key %q, want %q", ErrCheckpointInvalid, rest[:keyLen], key)
	}
	rest = rest[keyLen:]
	if len(rest) < 8 {
		return nil, fmt.Errorf("%w: truncated length", ErrCheckpointInvalid)
	}
	payLen := binary.LittleEndian.Uint32(rest[0:4])
	wantCRC := binary.LittleEndian.Uint32(rest[4:8])
	payload := rest[8:]
	if uint64(payLen) != uint64(len(payload)) {
		return nil, fmt.Errorf("%w: payload length %d, have %d bytes", ErrCheckpointInvalid, payLen, len(payload))
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCheckpointInvalid)
	}
	return payload, nil
}

// Delete removes the checkpoint for key, if present.
func (s *CheckpointStore) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("durable: checkpoint delete: %w", err)
	}
	if err == nil {
		s.deletes.Add(1)
	}
	return nil
}

// Stats returns a snapshot of the store counters.
func (s *CheckpointStore) Stats() CheckpointStats {
	return CheckpointStats{
		Saves:   s.saves.Load(),
		Loads:   s.loads.Load(),
		Invalid: s.invalid.Load(),
		Misses:  s.misses.Load(),
		Deletes: s.deletes.Load(),
	}
}

// Dir returns the store's root directory.
func (s *CheckpointStore) Dir() string { return s.dir }

package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func appendAll(t *testing.T, dir string, recs [][]byte, opts JournalOptions) *Journal {
	t.Helper()
	j, err := OpenJournal(dir, opts)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	return j
}

func replayAll(t *testing.T, dir string) ([][]byte, JournalStats, error) {
	t.Helper()
	var got [][]byte
	stats, err := ReplayDir(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	return got, stats, err
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	recs := [][]byte{[]byte("alpha"), []byte(""), []byte("a longer record with some bytes"), {0, 1, 2, 255}}
	j := appendAll(t, dir, recs, JournalOptions{})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, stats, err := replayAll(t, dir)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], recs[i])
		}
	}
	if stats.TornTails != 0 || stats.CorruptRecords != 0 {
		t.Fatalf("unexpected damage stats: %+v", stats)
	}
}

func TestJournalRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation on nearly every append.
	j := appendAll(t, dir, [][]byte{
		[]byte("one"), []byte("two"), []byte("three"), []byte("four"),
	}, JournalOptions{MaxSegmentBytes: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation to create several segments, got %d", len(segs))
	}
	// Reopen and append more; replay must see everything in order.
	j2 := appendAll(t, dir, [][]byte{[]byte("five")}, JournalOptions{MaxSegmentBytes: 16})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := replayAll(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"one", "two", "three", "four", "five"}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
}

// lastSegment returns the path of the highest-index segment.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	return segs[len(segs)-1].path
}

// TestJournalTornTailMatrix truncates the journal at every byte offset
// of the final record and asserts recovery silently drops just that
// record.
func TestJournalTornTailMatrix(t *testing.T) {
	recs := [][]byte{[]byte("keep-0"), []byte("keep-1"), []byte("the final record that gets torn")}
	// Build a pristine copy once to learn the full segment size.
	proto := t.TempDir()
	j := appendAll(t, proto, recs, JournalOptions{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, proto)
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	finalFrame := headerSize + len(recs[2])
	start := len(full) - finalFrame // offset where the final record's frame begins
	// cut == start would be a clean journal (the final record simply
	// absent), so the torn matrix starts one byte into the frame.
	for cut := start + 1; cut < len(full); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut-start), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			got, stats, err := replayAll(t, dir)
			if err != nil {
				t.Fatalf("torn tail at offset %d must recover, got %v", cut, err)
			}
			if len(got) != 2 {
				t.Fatalf("salvaged %d records, want 2", len(got))
			}
			if string(got[0]) != "keep-0" || string(got[1]) != "keep-1" {
				t.Fatalf("salvaged wrong records: %q", got)
			}
			if stats.TornTails != 1 {
				t.Fatalf("TornTails = %d, want 1", stats.TornTails)
			}
			if stats.CorruptRecords != 0 {
				t.Fatalf("CorruptRecords = %d, want 0", stats.CorruptRecords)
			}
		})
	}
	// Sanity: cutting exactly at the frame boundary is a clean journal.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, filepath.Base(seg)), full[:start], 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := replayAll(t, dir)
	if err != nil || len(got) != 2 || stats.TornTails != 0 {
		t.Fatalf("clean prefix: got %d recs, stats %+v, err %v", len(got), stats, err)
	}
}

// TestJournalMidSegmentCorruption flips a byte inside a non-final
// record and asserts replay keeps the salvaged prefix but reports
// ErrCorrupt.
func TestJournalMidSegmentCorruption(t *testing.T) {
	recs := [][]byte{[]byte("good-0"), []byte("middle record"), []byte("good-2")}
	dir := t.TempDir()
	j := appendAll(t, dir, recs, JournalOptions{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle record.
	off := headerSize + len(recs[0]) + headerSize + 3
	data[off] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, stats, err := replayAll(t, dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
	if len(got) != 1 || string(got[0]) != "good-0" {
		t.Fatalf("salvaged prefix = %q, want just good-0", got)
	}
	if stats.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", stats.CorruptRecords)
	}
	if stats.TornTails != 0 {
		t.Fatalf("TornTails = %d, want 0", stats.TornTails)
	}
}

// TestJournalTruncatedNonFinalSegment: a torn record is only tolerated
// in the final segment; the same truncation mid-journal is corruption.
func TestJournalTruncatedNonFinalSegment(t *testing.T) {
	dir := t.TempDir()
	j := appendAll(t, dir, [][]byte{[]byte("first-segment-record")}, JournalOptions{MaxSegmentBytes: 1})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Second open creates a fresh higher segment with another record.
	j2 := appendAll(t, dir, [][]byte{[]byte("second-segment-record")}, JournalOptions{MaxSegmentBytes: 1})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need at least 2 segments, got %d", len(segs))
	}
	// Truncate the FIRST segment mid-record.
	first := segs[0].path
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	_, stats, err := replayAll(t, dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation in a non-final segment must be ErrCorrupt, got %v", err)
	}
	if stats.CorruptRecords != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", stats.CorruptRecords)
	}
}

// TestJournalAppendsAfterTornTailGoToFreshSegment: reopening a journal
// whose tail is torn must not splice new records after the torn bytes.
func TestJournalAppendsAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	j := appendAll(t, dir, [][]byte{[]byte("before-crash")}, JournalOptions{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append: half a record at the tail.
	torn := append(append([]byte{}, data...), 0x09, 0x00, 0x00, 0x00, 0xAA)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := appendAll(t, dir, [][]byte{[]byte("after-crash")}, JournalOptions{})
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	if s := j2.Stats(); s.TornTails != 1 {
		t.Fatalf("reopen must repair exactly one torn tail, stats %+v", s)
	}
	got, stats, err := replayAll(t, dir)
	if err != nil {
		t.Fatalf("Replay after torn-tail reopen: %v", err)
	}
	if len(got) != 2 || string(got[0]) != "before-crash" || string(got[1]) != "after-crash" {
		t.Fatalf("got %q", got)
	}
	if stats.CorruptRecords != 0 || stats.TornTails != 0 {
		t.Fatalf("repaired journal must replay clean, stats %+v", stats)
	}
}

func TestJournalCompact(t *testing.T) {
	dir := t.TempDir()
	j := appendAll(t, dir, [][]byte{
		[]byte("old-1"), []byte("old-2"), []byte("old-3"),
	}, JournalOptions{MaxSegmentBytes: 8})
	if err := j.Compact(func(emit func([]byte) error) error {
		return emit([]byte("compacted-state"))
	}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := replayAll(t, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"compacted-state", "post-compact"}
	if len(got) != len(want) {
		t.Fatalf("replayed %q, want %q", got, want)
	}
	for i, w := range want {
		if string(got[i]) != w {
			t.Fatalf("record %d = %q, want %q", i, got[i], w)
		}
	}
	if s := j.Stats(); s.Compactions != 1 {
		t.Fatalf("Compactions = %d, want 1", s.Compactions)
	}
}

func TestJournalSyncAndStats(t *testing.T) {
	dir := t.TempDir()
	j := appendAll(t, dir, [][]byte{[]byte("x")}, JournalOptions{Sync: true})
	defer j.Close()
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	s := j.Stats()
	if s.Appends != 1 || s.AppendedBytes != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.Syncs < 2 {
		t.Fatalf("Syncs = %d, want >= 2", s.Syncs)
	}
}

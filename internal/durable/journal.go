// Package durable provides the crash-safety primitives under AITIA's
// diagnosis pipeline: an append-only, checksummed write-ahead journal
// (used by internal/service to make the job queue and result cache
// survive a process kill) and a versioned checkpoint store (used by
// internal/core to resume a LIFS search or causality analysis from the
// last phase boundary instead of restarting it).
//
// Both are plain-file formats with no external dependencies, designed
// so that the only two failure modes a crash can produce are (a) a
// torn tail — the final record of the final segment is incomplete and
// is silently dropped on replay — and (b) a detectably corrupt record
// in the middle of a segment, which is reported as ErrCorrupt so the
// caller can decide how much of the salvaged prefix to trust.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// Journal framing: every record is
//
//	[len uint32 LE][crc32(IEEE) of payload uint32 LE][payload]
//
// appended to the newest segment file `wal-%08d.log`. A record is valid
// only if the full frame is present and the CRC matches. An incomplete
// frame at the end of the *final* segment is a torn tail (the crash
// interrupted the append) and is dropped; anything else — a CRC
// mismatch, an absurd length, or an incomplete frame followed by more
// segments — is corruption.

const (
	headerSize = 8
	// maxRecordLen bounds a single record. Journal payloads are small
	// JSON job transitions; anything above this is a garbage length
	// field read from a corrupt frame, not a real record.
	maxRecordLen = 64 << 20

	segmentPrefix = "wal-"
	segmentSuffix = ".log"
)

// ErrCorrupt is returned (wrapped) by Replay when a segment contains a
// record that is structurally complete but fails validation, or an
// incomplete record that cannot be a torn tail. The salvaged prefix has
// already been delivered to the callback by the time it is returned.
var ErrCorrupt = errors.New("durable: journal corrupt")

// JournalStats counts journal activity. All fields are cumulative for
// the lifetime of the Journal value.
type JournalStats struct {
	Appends        uint64 // records appended
	AppendedBytes  uint64 // payload bytes appended (excluding framing)
	Segments       uint64 // segments created (including the initial one)
	Compactions    uint64 // successful Compact calls
	Replayed       uint64 // records delivered by Replay
	TornTails      uint64 // torn tails dropped by Replay
	CorruptRecords uint64 // mid-segment corrupt records seen by Replay
	Syncs          uint64 // fsyncs issued
}

// Journal is an append-only, segmented write-ahead log. It is safe for
// concurrent use by multiple goroutines.
type Journal struct {
	mu      sync.Mutex
	dir     string
	sync    bool
	maxSeg  int64 // rotate when the active segment exceeds this many bytes
	seg     *os.File
	segIdx  uint64
	segSize int64
	closed  bool

	appends        atomic.Uint64
	appendedBytes  atomic.Uint64
	segments       atomic.Uint64
	compactions    atomic.Uint64
	replayed       atomic.Uint64
	tornTails      atomic.Uint64
	corruptRecords atomic.Uint64
	syncs          atomic.Uint64
}

// JournalOptions configure OpenJournal.
type JournalOptions struct {
	// Sync fsyncs the segment after every append. Durability of the
	// last few records against power loss costs roughly one disk flush
	// per job transition; without it a kill loses at most the records
	// the OS had not yet written back, never the journal's integrity.
	Sync bool
	// MaxSegmentBytes rotates to a new segment once the active one
	// exceeds this size. Zero means the default (4 MiB).
	MaxSegmentBytes int64
}

// OpenJournal opens (creating if necessary) the journal in dir. The
// existing segments are left untouched for Replay; appends always go to
// a brand-new segment so that a torn tail in an old segment can never
// be spliced mid-stream with fresh records.
func OpenJournal(dir string, opts JournalOptions) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: create journal dir: %w", err)
	}
	j := &Journal{dir: dir, sync: opts.Sync, maxSeg: opts.MaxSegmentBytes}
	if j.maxSeg <= 0 {
		j.maxSeg = 4 << 20
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(0)
	if n := len(segs); n > 0 {
		next = segs[n-1].idx + 1
		// Repair a torn tail left by a crash mid-append: once we rotate
		// to a fresh segment the old one is no longer "final", so a
		// half-written frame there would read as corruption on replay.
		torn, err := repairTail(segs[n-1].path)
		if err != nil {
			return nil, err
		}
		if torn {
			j.tornTails.Add(1)
		}
	}
	if err := j.openSegment(next); err != nil {
		return nil, err
	}
	return j, nil
}

// repairTail truncates path after its last complete frame if the file
// ends with an incomplete one (a torn append). Complete frames with bad
// checksums are NOT removed — they are mid-segment corruption that
// Replay must surface, not silently discard.
func repairTail(path string) (bool, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return false, fmt.Errorf("durable: open segment for repair: %w", err)
	}
	defer f.Close()
	var valid int64
	var hdr [headerSize]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return false, nil // clean end
			}
			if err == io.ErrUnexpectedEOF {
				break // torn header
			}
			return false, fmt.Errorf("durable: repair read: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		if uint64(n) > maxRecordLen {
			return false, nil // corrupt length: leave for Replay to flag
		}
		if _, err := io.CopyN(io.Discard, f, int64(n)); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn payload
			}
			return false, fmt.Errorf("durable: repair read: %w", err)
		}
		valid += headerSize + int64(n)
	}
	if err := f.Truncate(valid); err != nil {
		return false, fmt.Errorf("durable: repair truncate: %w", err)
	}
	if err := f.Sync(); err != nil {
		return false, fmt.Errorf("durable: repair sync: %w", err)
	}
	return true, nil
}

type segment struct {
	idx  uint64
	path string
}

func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: list journal dir: %w", err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		var idx uint64
		if _, err := fmt.Sscanf(name, segmentPrefix+"%08d"+segmentSuffix, &idx); err != nil {
			continue
		}
		if fmt.Sprintf(segmentPrefix+"%08d"+segmentSuffix, idx) != name {
			continue
		}
		segs = append(segs, segment{idx: idx, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].idx < segs[k].idx })
	return segs, nil
}

func (j *Journal) openSegment(idx uint64) error {
	path := filepath.Join(j.dir, fmt.Sprintf(segmentPrefix+"%08d"+segmentSuffix, idx))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("durable: open segment: %w", err)
	}
	if j.seg != nil {
		j.seg.Close()
	}
	j.seg = f
	j.segIdx = idx
	j.segSize = 0
	j.segments.Add(1)
	return nil
}

// Append writes one record. The payload is framed, written, and (with
// Sync) flushed before Append returns; once Append returns nil the
// record will survive a process kill.
func (j *Journal) Append(payload []byte) error {
	if uint64(len(payload)) > maxRecordLen {
		return fmt.Errorf("durable: record of %d bytes exceeds limit", len(payload))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("durable: journal closed")
	}
	if j.segSize >= j.maxSeg {
		if err := j.openSegment(j.segIdx + 1); err != nil {
			return err
		}
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	// A single Write call keeps the frame contiguous; O_APPEND makes
	// the offset atomic even if another handle had the file open.
	buf := make([]byte, 0, headerSize+len(payload))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	if _, err := j.seg.Write(buf); err != nil {
		return fmt.Errorf("durable: append: %w", err)
	}
	j.segSize += int64(len(buf))
	if j.sync {
		if err := j.seg.Sync(); err != nil {
			return fmt.Errorf("durable: sync: %w", err)
		}
		j.syncs.Add(1)
	}
	j.appends.Add(1)
	j.appendedBytes.Add(uint64(len(payload)))
	return nil
}

// Sync flushes the active segment to stable storage regardless of the
// per-append Sync option. Used at drain time for a final sync.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.seg == nil {
		return nil
	}
	if err := j.seg.Sync(); err != nil {
		return fmt.Errorf("durable: sync: %w", err)
	}
	j.syncs.Add(1)
	return nil
}

// Close syncs and closes the active segment. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.seg == nil {
		return nil
	}
	syncErr := j.seg.Sync()
	closeErr := j.seg.Close()
	j.seg = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Replay streams every valid record in segment order to fn. A torn tail
// — an incomplete final frame in the final segment — is dropped and
// counted, and Replay returns nil. A corrupt record anywhere else stops
// the replay of that segment and returns an error wrapping ErrCorrupt;
// records already delivered (the salvaged prefix) are kept by the
// caller. fn returning an error aborts the replay with that error.
func (j *Journal) Replay(fn func(payload []byte) error) error {
	segs, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	// Skip the segment we are currently appending to only if it is
	// beyond all pre-existing data; in practice Replay is called right
	// after OpenJournal, when the active segment is empty, so replaying
	// it too is harmless (zero records).
	for i, s := range segs {
		last := i == len(segs)-1
		if err := replaySegment(s.path, last, fn, j); err != nil {
			return err
		}
	}
	return nil
}

// ReplayDir replays a journal directory without opening it for appends.
func ReplayDir(dir string, fn func(payload []byte) error) (JournalStats, error) {
	j := &Journal{dir: dir}
	err := j.Replay(fn)
	return j.Stats(), err
}

func replaySegment(path string, lastSegment bool, fn func(payload []byte) error, j *Journal) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("durable: open segment for replay: %w", err)
	}
	defer f.Close()
	var hdr [headerSize]byte
	for {
		_, err := io.ReadFull(f, hdr[:])
		if err == io.EOF {
			return nil // clean end of segment
		}
		if err == io.ErrUnexpectedEOF {
			// Partial header: torn tail if this is the last segment.
			if lastSegment {
				j.tornTails.Add(1)
				return nil
			}
			j.corruptRecords.Add(1)
			return fmt.Errorf("%w: truncated header in %s", ErrCorrupt, filepath.Base(path))
		}
		if err != nil {
			return fmt.Errorf("durable: read segment: %w", err)
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		want := binary.LittleEndian.Uint32(hdr[4:8])
		if uint64(n) > maxRecordLen {
			j.corruptRecords.Add(1)
			return fmt.Errorf("%w: implausible record length %d in %s", ErrCorrupt, n, filepath.Base(path))
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				if lastSegment {
					j.tornTails.Add(1)
					return nil
				}
				j.corruptRecords.Add(1)
				return fmt.Errorf("%w: truncated record in %s", ErrCorrupt, filepath.Base(path))
			}
			return fmt.Errorf("durable: read segment: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != want {
			// A complete frame with a bad checksum is corruption even
			// at the tail: a torn append can only shorten the file,
			// never scramble bytes that were fully written.
			j.corruptRecords.Add(1)
			return fmt.Errorf("%w: checksum mismatch in %s", ErrCorrupt, filepath.Base(path))
		}
		j.replayed.Add(1)
		if err := fn(payload); err != nil {
			return err
		}
	}
}

// Compact rewrites the journal to the records produced by snapshot,
// which is called once and must return the payloads representing the
// current logical state (e.g. one terminal record per retained job).
// The snapshot is written to a temporary file, fsynced, renamed to a
// segment index *above* every existing segment, and only then are the
// older segments deleted. A crash at any point leaves a replayable
// journal: before the rename the old segments are intact; after it the
// compacted segment replays last, so replay semantics where later
// records win make the duplicate prefix harmless.
func (j *Journal) Compact(snapshot func(emit func(payload []byte) error) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("durable: journal closed")
	}
	segs, err := listSegments(j.dir)
	if err != nil {
		return err
	}
	newIdx := j.segIdx + 1
	if n := len(segs); n > 0 && segs[n-1].idx >= newIdx {
		newIdx = segs[n-1].idx + 1
	}
	tmp, err := os.CreateTemp(j.dir, "compact-*")
	if err != nil {
		return fmt.Errorf("durable: compact temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	written := 0
	emit := func(payload []byte) error {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			return err
		}
		written += headerSize + len(payload)
		return nil
	}
	if err := snapshot(emit); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: compact snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("durable: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("durable: compact close: %w", err)
	}
	final := filepath.Join(j.dir, fmt.Sprintf(segmentPrefix+"%08d"+segmentSuffix, newIdx))
	if err := os.Rename(tmpName, final); err != nil {
		return fmt.Errorf("durable: compact rename: %w", err)
	}
	// The compacted segment is now durable and replays after everything
	// it summarizes; dropping the older segments (including our own
	// active one) is safe even if interrupted halfway.
	for _, s := range segs {
		os.Remove(s.path)
	}
	if j.seg != nil {
		j.seg.Close()
		j.seg = nil
	}
	if err := j.openSegment(newIdx + 1); err != nil {
		return err
	}
	j.compactions.Add(1)
	return nil
}

// Stats returns a snapshot of the journal counters.
func (j *Journal) Stats() JournalStats {
	return JournalStats{
		Appends:        j.appends.Load(),
		AppendedBytes:  j.appendedBytes.Load(),
		Segments:       j.segments.Load(),
		Compactions:    j.compactions.Load(),
		Replayed:       j.replayed.Load(),
		TornTails:      j.tornTails.Load(),
		CorruptRecords: j.corruptRecords.Load(),
		Syncs:          j.syncs.Load(),
	}
}

package durable

import (
	"encoding/json"
	"sync"
	"time"
)

// Lease ops journaled by the table. Fold order is append order, so the
// latest record per key wins.
const (
	leaseOpGrant   = "grant"
	leaseOpRenew   = "renew"
	leaseOpRelease = "release"
	leaseOpExpire  = "expire"
)

// leaseOp marks a journal payload as a lease record. The record
// deliberately has no "id" field: the service's job-journal fold skips
// records without one, so lease records and job records share a WAL
// without either replayer tripping over the other's entries.
const leaseOp = "lease"

// LeaseRecord is the journaled form of one lease transition. Epoch is
// the fleet epoch the lease belongs to; recovery discards records from
// prior epochs (a restarted fleet must not honor a dead incarnation's
// leases, whose holders are gone).
type LeaseRecord struct {
	Op     string `json:"op"` // always "lease"
	Action string `json:"action"`
	Key    string `json:"lease_key"`
	Node   string `json:"node"`
	Epoch  uint64 `json:"fleet_epoch"`
	Fence  uint64 `json:"fence"`
	// TTLMillis is the grant/renew duration; expiry is re-derived from
	// the recovering process's clock, never persisted as an absolute
	// time (nodes do not share one).
	TTLMillis int64 `json:"ttl_ms,omitempty"`
}

// Lease is one live lease: the right of Node to execute the work unit
// named by Key until Expires, provable by Fence. Fencing tokens are
// per-key monotone: every grant after an expiry carries a larger token,
// so a result produced under a stale lease is detectable (and rejected)
// even if its holder was merely slow, not dead.
type Lease struct {
	Key     string
	Node    string
	Epoch   uint64
	Fence   uint64
	Expires time.Time
}

// LeaseStats counts table activity.
type LeaseStats struct {
	Grants     uint64
	Renews     uint64
	Releases   uint64
	Expiries   uint64
	StaleFence uint64 // renew/release/validate attempts with an outdated token
	StaleEpoch uint64 // journal records discarded as prior-epoch on recovery
}

// LeaseTable tracks branch-execution leases with fencing tokens,
// journaling every transition so a restarted coordinator knows which
// work was out on lease when it died. A nil journal keeps the table
// in-memory (the in-process fleet used by tests and the bench gate).
type LeaseTable struct {
	mu     sync.Mutex
	j      *Journal
	epoch  uint64
	fences map[string]uint64 // per-key high-water fencing token
	active map[string]Lease  // currently held leases by key
	stats  LeaseStats
}

// NewLeaseTable creates a lease table for the given fleet epoch,
// journaling transitions to j (nil for in-memory operation).
func NewLeaseTable(j *Journal, epoch uint64) *LeaseTable {
	return &LeaseTable{
		j:      j,
		epoch:  epoch,
		fences: make(map[string]uint64),
		active: make(map[string]Lease),
	}
}

// Epoch returns the fleet epoch the table stamps on its leases.
func (t *LeaseTable) Epoch() uint64 { return t.epoch }

// SetJournal attaches (or replaces) the table's journal. The fleet node
// is assembled before the service opens its WAL, so the service wires
// the journal in here during Open, before any lease activity.
func (t *LeaseTable) SetJournal(j *Journal) {
	t.mu.Lock()
	t.j = j
	t.mu.Unlock()
}

// Restore folds one journal payload into the table, returning true when
// it was a lease record (so a mixed-WAL replayer can route records).
// Records from a prior fleet epoch advance the key's fencing high-water
// mark but grant nothing: their holders died with the old incarnation,
// and the bumped fence guarantees any of their late results are fenced
// off. Called before the table goes live, single-threaded.
func (t *LeaseTable) Restore(payload []byte) bool {
	var rec LeaseRecord
	if err := json.Unmarshal(payload, &rec); err != nil || rec.Op != leaseOp || rec.Key == "" {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rec.Fence > t.fences[rec.Key] {
		t.fences[rec.Key] = rec.Fence
	}
	if rec.Epoch != t.epoch {
		t.stats.StaleEpoch++
		return true
	}
	switch rec.Action {
	case leaseOpGrant, leaseOpRenew:
		t.active[rec.Key] = Lease{
			Key: rec.Key, Node: rec.Node, Epoch: rec.Epoch, Fence: rec.Fence,
			Expires: time.Now().Add(time.Duration(rec.TTLMillis) * time.Millisecond),
		}
	case leaseOpRelease, leaseOpExpire:
		if cur, ok := t.active[rec.Key]; ok && cur.Fence <= rec.Fence {
			delete(t.active, rec.Key)
		}
	}
	return true
}

// Acquire grants a lease on key to node for ttl, or fails when a live
// lease (unexpired, this epoch) is already out. The granted fence is
// strictly larger than every fence ever issued for the key.
func (t *LeaseTable) Acquire(key, node string, ttl time.Duration, now time.Time) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if cur, ok := t.active[key]; ok {
		if now.Before(cur.Expires) {
			return Lease{}, false
		}
		// Expired in place: reclaim as part of the new grant.
		delete(t.active, key)
		t.stats.Expiries++
		t.append(LeaseRecord{Action: leaseOpExpire, Key: key, Node: cur.Node, Epoch: cur.Epoch, Fence: cur.Fence})
	}
	fence := t.fences[key] + 1
	t.fences[key] = fence
	l := Lease{Key: key, Node: node, Epoch: t.epoch, Fence: fence, Expires: now.Add(ttl)}
	t.active[key] = l
	t.stats.Grants++
	t.append(LeaseRecord{Action: leaseOpGrant, Key: key, Node: node, Epoch: t.epoch, Fence: fence, TTLMillis: ttl.Milliseconds()})
	return l, true
}

// Renew extends a held lease (the heartbeat path). It fails — and the
// holder must abandon its work — when the lease was expired or re-granted
// under a larger fence in the meantime.
func (t *LeaseTable) Renew(l Lease, ttl time.Duration, now time.Time) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.active[l.Key]
	if !ok || cur.Fence != l.Fence || cur.Epoch != t.epoch {
		t.stats.StaleFence++
		return Lease{}, false
	}
	cur.Expires = now.Add(ttl)
	t.active[l.Key] = cur
	t.stats.Renews++
	t.append(LeaseRecord{Action: leaseOpRenew, Key: l.Key, Node: l.Node, Epoch: l.Epoch, Fence: l.Fence, TTLMillis: ttl.Milliseconds()})
	return cur, true
}

// Release ends a lease after its work completed. A stale fence is
// counted and ignored: the lease was already reclaimed and re-granted,
// and the releasing holder's result must be (and is) fenced off by
// Valid.
func (t *LeaseTable) Release(l Lease) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.active[l.Key]
	if !ok || cur.Fence != l.Fence {
		t.stats.StaleFence++
		return
	}
	delete(t.active, l.Key)
	t.stats.Releases++
	t.append(LeaseRecord{Action: leaseOpRelease, Key: l.Key, Node: l.Node, Epoch: l.Epoch, Fence: l.Fence})
}

// Expire force-expires the lease currently held on key (TTL ran out, or
// the holder is known dead). It is a no-op when the key is free or the
// fence moved on. Returns true when a lease was actually reclaimed.
func (t *LeaseTable) Expire(key string, fence uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.active[key]
	if !ok || cur.Fence != fence {
		return false
	}
	delete(t.active, key)
	t.stats.Expiries++
	t.append(LeaseRecord{Action: leaseOpExpire, Key: key, Node: cur.Node, Epoch: cur.Epoch, Fence: cur.Fence})
	return true
}

// Valid reports whether l is still the key's live lease — the fencing
// check a coordinator runs before accepting a result produced under l.
func (t *LeaseTable) Valid(l Lease) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur, ok := t.active[l.Key]
	if ok && cur.Fence == l.Fence && cur.Epoch == t.epoch {
		return true
	}
	t.stats.StaleFence++
	return false
}

// Holder returns the live lease on key, if any.
func (t *LeaseTable) Holder(key string) (Lease, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.active[key]
	return l, ok
}

// Active returns the number of live leases.
func (t *LeaseTable) Active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Stats snapshots the table's counters.
func (t *LeaseTable) Stats() LeaseStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// append journals one transition. Callers hold t.mu, so journal order
// equals transition order; append errors are swallowed like the service
// job journal's — durability is best-effort and must never wedge a live
// lease operation.
func (t *LeaseTable) append(rec LeaseRecord) {
	if t.j == nil {
		return
	}
	rec.Op = leaseOp
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_ = t.j.Append(payload)
}

package durable

import (
	"encoding/json"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// TestLeaseAcquireReleaseCycle: the basic state machine — a key can be
// leased, not double-leased while live, and re-leased after release
// with a strictly larger fence.
func TestLeaseAcquireReleaseCycle(t *testing.T) {
	lt := NewLeaseTable(nil, 1)
	l1, ok := lt.Acquire("b1", "n1", time.Second, t0)
	if !ok {
		t.Fatal("first Acquire failed")
	}
	if l1.Fence != 1 || l1.Node != "n1" || l1.Epoch != 1 {
		t.Fatalf("lease = %+v, want fence 1 node n1 epoch 1", l1)
	}
	if _, ok := lt.Acquire("b1", "n2", time.Second, t0); ok {
		t.Fatal("double Acquire on a live lease succeeded")
	}
	if !lt.Valid(l1) {
		t.Fatal("live lease reported invalid")
	}
	lt.Release(l1)
	if lt.Valid(l1) {
		t.Fatal("released lease still valid")
	}
	l2, ok := lt.Acquire("b1", "n2", time.Second, t0)
	if !ok {
		t.Fatal("re-Acquire after release failed")
	}
	if l2.Fence <= l1.Fence {
		t.Fatalf("fence did not advance: %d then %d", l1.Fence, l2.Fence)
	}
}

// TestLeaseExpiryFencesSlowHolder: a lease that times out is reclaimed
// by the next Acquire; the original holder's renews, releases and
// validity checks are all fenced off, so its late result is rejectable.
func TestLeaseExpiryFencesSlowHolder(t *testing.T) {
	lt := NewLeaseTable(nil, 1)
	ttl := time.Second
	l1, _ := lt.Acquire("b1", "slow", ttl, t0)
	// TTL elapses; a new holder claims the branch.
	l2, ok := lt.Acquire("b1", "fast", ttl, t0.Add(2*ttl))
	if !ok {
		t.Fatal("Acquire after expiry failed")
	}
	if l2.Fence <= l1.Fence {
		t.Fatalf("reclaim did not bump the fence: %d then %d", l1.Fence, l2.Fence)
	}
	if lt.Valid(l1) {
		t.Fatal("expired lease still valid — the slow holder's result would be accepted")
	}
	if _, ok := lt.Renew(l1, ttl, t0.Add(2*ttl)); ok {
		t.Fatal("stale holder renewed a reclaimed lease")
	}
	lt.Release(l1) // must be ignored, not release l2
	if !lt.Valid(l2) {
		t.Fatal("stale release revoked the live holder's lease")
	}
	st := lt.Stats()
	if st.Expiries != 1 || st.StaleFence == 0 {
		t.Errorf("stats = %+v, want 1 expiry and stale-fence rejections", st)
	}
}

// TestLeaseRenewExtends: the heartbeat path pushes Expires forward so a
// long-running holder survives many TTLs.
func TestLeaseRenewExtends(t *testing.T) {
	lt := NewLeaseTable(nil, 1)
	ttl := time.Second
	l, _ := lt.Acquire("b1", "n1", ttl, t0)
	for i := 1; i <= 5; i++ {
		var ok bool
		l, ok = lt.Renew(l, ttl, t0.Add(time.Duration(i)*ttl/2))
		if !ok {
			t.Fatalf("renew %d failed", i)
		}
	}
	// Well past the original TTL but within the renewed one.
	if _, ok := lt.Acquire("b1", "thief", ttl, t0.Add(3*ttl)); ok {
		t.Fatal("heartbeated lease was stolen")
	}
}

// TestLeaseExpireForce: Expire reclaims exactly the fence it names — a
// stale force-expire (fence moved on) is a no-op.
func TestLeaseExpireForce(t *testing.T) {
	lt := NewLeaseTable(nil, 1)
	l1, _ := lt.Acquire("b1", "n1", time.Second, t0)
	if !lt.Expire("b1", l1.Fence) {
		t.Fatal("Expire of a held lease failed")
	}
	l2, _ := lt.Acquire("b1", "n2", time.Second, t0)
	if lt.Expire("b1", l1.Fence) {
		t.Fatal("Expire with a stale fence reclaimed the new lease")
	}
	if !lt.Valid(l2) {
		t.Fatal("live lease lost to a stale expire")
	}
}

// TestLeaseJournalRoundTrip: every transition is journaled; a fresh
// table restored from the journal reproduces the live leases and the
// per-key fence high-water marks.
func TestLeaseJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lt := NewLeaseTable(j, 3)
	la, _ := lt.Acquire("a", "n1", time.Minute, time.Now())
	lb, _ := lt.Acquire("b", "n2", time.Minute, time.Now())
	lt.Release(lb)
	lt.Expire("a", la.Fence)
	lc, _ := lt.Acquire("a", "n2", time.Minute, time.Now())
	_ = lc
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	lt2 := NewLeaseTable(j2, 3)
	n := 0
	err = j2.Replay(func(payload []byte) error {
		if lt2.Restore(payload) {
			n++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no lease records replayed")
	}
	if lt2.Active() != 1 {
		t.Fatalf("restored table has %d active leases, want 1 (key a)", lt2.Active())
	}
	h, ok := lt2.Holder("a")
	if !ok || h.Node != "n2" || h.Fence != lc.Fence {
		t.Fatalf("restored holder = %+v/%v, want n2 with fence %d", h, ok, lc.Fence)
	}
	// The fence high-water survived: a new grant on "b" must exceed the
	// released lease's fence, not restart from 1.
	nb, ok := lt2.Acquire("b", "n3", time.Minute, time.Now())
	if !ok || nb.Fence <= lb.Fence {
		t.Fatalf("post-restore fence on b = %d/%v, want > %d", nb.Fence, ok, lb.Fence)
	}
}

// TestLeaseRestorePriorEpoch: records journaled by a previous fleet
// incarnation grant nothing on replay (their holders are gone) but
// still advance the fencing high-water mark, so even a zombie from the
// old incarnation is fenced off.
func TestLeaseRestorePriorEpoch(t *testing.T) {
	old := NewLeaseTable(nil, 1)
	rec, _ := json.Marshal(LeaseRecord{Op: "lease", Action: "grant", Key: "b1", Node: "dead", Epoch: 1, Fence: 7, TTLMillis: 60000})
	_ = old

	lt := NewLeaseTable(nil, 2)
	if !lt.Restore(rec) {
		t.Fatal("lease record not recognized")
	}
	if lt.Active() != 0 {
		t.Fatal("prior-epoch record granted a live lease")
	}
	if st := lt.Stats(); st.StaleEpoch != 1 {
		t.Errorf("stale_epoch = %d, want 1", st.StaleEpoch)
	}
	l, ok := lt.Acquire("b1", "n1", time.Minute, time.Now())
	if !ok || l.Fence <= 7 {
		t.Fatalf("fence = %d/%v, want > 7 (prior-epoch high-water honored)", l.Fence, ok)
	}
}

// TestLeaseRestoreIgnoresAlienRecords: job records (and garbage) in the
// shared WAL are not lease records.
func TestLeaseRestoreIgnoresAlienRecords(t *testing.T) {
	lt := NewLeaseTable(nil, 1)
	for _, payload := range []string{
		`{"op":"submit","id":"job-1"}`,
		`{"op":"lease"}`, // no key
		`not json`,
	} {
		if lt.Restore([]byte(payload)) {
			t.Errorf("Restore(%q) claimed a lease record", payload)
		}
	}
}

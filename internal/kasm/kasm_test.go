package kasm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"aitia/internal/core"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

const sample = `
; a small racy program
global flag = 1
global buf[4] = 1, 2
ptr    p -> buf
heap   obj[2] = 7

thread A main_a
thread B helper arg=3

func main_a
@A1     load r1, [flag]
        beq r1, 0, out
@A2     store [buf+1], 5
        call helper
        lock [flag]
        unlock [flag]
        ref_get r2, [flag]
        ref_put r2, [flag]
        alloc r3, 2
        store [r3+1], 9
        free r3
        queue_work helper, r3
        call_rcu helper
        yield
        nop
out:
        ret
end

func helper
@H1     list_add [buf], 9
        list_has r4, [buf], 9
        bug_on 0
        list_del [buf], 9
        mov r5, -2
        add r5, 1
        sub r5, r5
        and r5, 0xf
        or r5, 2
        xor r5, 1
        bge r5, 100, done
        blt r5, -100, done
        jmp done
done:
        exit
end
`

func TestParseSample(t *testing.T) {
	prog, err := kasm.Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Funcs) != 2 || len(prog.Threads) != 2 {
		t.Fatalf("funcs=%d threads=%d", len(prog.Funcs), len(prog.Threads))
	}
	if prog.Threads[1].Arg != 3 {
		t.Errorf("thread B arg = %d", prog.Threads[1].Arg)
	}
	a1, ok := prog.ByLabel("A1")
	if !ok || a1.Op != kir.OpLoad {
		t.Errorf("A1 = %v, %v", a1.Op, ok)
	}
	g, ok := prog.Global("buf")
	if !ok || g.Size != 4 || len(g.Init) != 2 {
		t.Errorf("buf = %+v", g)
	}
	h, _ := prog.Global("obj")
	if h.HeapSize != 2 {
		t.Errorf("obj heap size = %d", h.HeapSize)
	}
	p, _ := prog.Global("p")
	if p.AddrOf[0] != "buf" {
		t.Errorf("p addrof = %v", p.AddrOf)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"bogus", `unexpected "bogus"`},
		{"func f\nwat r1\nend", "unknown mnemonic"},
		{"func f\nload r1\nend", "wants 2 operand"},
		{"func f\nload 5, [g]\nend", "want register"},
		{"func f\nload r1, [g\nend", "malformed address"},
		{"func f\nret", "unterminated func"},
		{"thread a", "thread wants"},
		{"ptr a b", "ptr wants"},
		{"global = 3", "missing variable name"},
		{"func f\n@X\nend", "no instruction"},
		{"global x[z]", "bad size"},
	}
	for _, tc := range cases {
		if _, err := kasm.Parse(tc.src); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("kasm.Parse(%q) err = %v, want %q", tc.src, err, tc.want)
		}
	}
	// Errors carry line numbers.
	_, err := kasm.Parse("global g = 1\n\nfunc f\nbroken here\nend")
	pe, ok := err.(*kasm.ParseError)
	if !ok || pe.Line != 4 {
		t.Errorf("err = %v, want ParseError at line 4", err)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	prog, err := kasm.Parse("; leading comment\nglobal g = 1 ; trailing\n\nfunc f\n  ret ; done\nend\nthread T f\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(prog.Funcs["f"].Instrs) != 1 {
		t.Errorf("instrs = %d", len(prog.Funcs["f"].Instrs))
	}
}

// TestRoundTrip: kasm.Disassemble(kasm.Parse(src)) parses back into a program with
// identical instruction streams, globals and threads.
func TestRoundTrip(t *testing.T) {
	prog, err := kasm.Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	src2 := kasm.Disassemble(prog)
	prog2, err := kasm.Parse(src2)
	if err != nil {
		t.Fatalf("reparse failed: %v\nsource:\n%s", err, src2)
	}
	assertSameProgram(t, prog, prog2)
}

// TestScenarioRoundTrip: every corpus scenario survives a
// disassemble/parse round trip — a strong property over real content.
func TestScenarioRoundTrip(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			prog := sc.MustProgram()
			src := kasm.Disassemble(prog)
			prog2, err := kasm.Parse(src)
			if err != nil {
				t.Fatalf("reparse: %v\nsource:\n%s", err, src)
			}
			assertSameProgram(t, prog, prog2)
		})
	}
}

// TestRoundTripDiagnosis: a disassembled-and-reparsed scenario diagnoses
// to the identical causality chain (regression test for the exported
// corpus workflow).
func TestRoundTripDiagnosis(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	prog2, err := kasm.Parse(kasm.Disassemble(prog))
	if err != nil {
		t.Fatal(err)
	}
	diagnose := func(p *kir.Program) string {
		m, err := kvm.New(p)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
		if err != nil {
			t.Fatal(err)
		}
		d, err := core.Analyze(m, rep, core.AnalysisOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return d.Chain.Format(p)
	}
	if c1, c2 := diagnose(prog), diagnose(prog2); c1 != c2 {
		t.Errorf("chains differ after round trip:\n%q\n%q", c1, c2)
	}
}

func assertSameProgram(t *testing.T, a, b *kir.Program) {
	t.Helper()
	if a.NumInstrs() != b.NumInstrs() {
		t.Fatalf("instr count %d vs %d", a.NumInstrs(), b.NumInstrs())
	}
	for id := kir.InstrID(0); int(id) < a.NumInstrs(); id++ {
		ia := a.MustInstr(id)
		ib := b.MustInstr(id)
		if ia.String() != ib.String() || ia.Label != ib.Label || ia.Fn != ib.Fn {
			t.Fatalf("instr %d: %q(%s) vs %q(%s)", id, ia.String(), ia.Label, ib.String(), ib.Label)
		}
	}
	if len(a.Globals) != len(b.Globals) {
		t.Fatalf("globals %d vs %d", len(a.Globals), len(b.Globals))
	}
	for i := range a.Globals {
		ga, gb := a.Globals[i], b.Globals[i]
		if ga.Name != gb.Name || ga.Size != gb.Size || ga.HeapSize != gb.HeapSize {
			t.Fatalf("global %d: %+v vs %+v", i, ga, gb)
		}
	}
	if len(a.Threads) != len(b.Threads) {
		t.Fatalf("threads %d vs %d", len(a.Threads), len(b.Threads))
	}
	for i := range a.Threads {
		if a.Threads[i] != b.Threads[i] {
			t.Fatalf("thread %d: %+v vs %+v", i, a.Threads[i], b.Threads[i])
		}
	}
}

// TestRoundTripBehaviour: the reparsed program behaves identically — same
// state signature after the same schedule (property over random operand
// values).
func TestRoundTripBehaviour(t *testing.T) {
	f := func(x, y int8) bool {
		src := "global g = " + itoa(int64(x)) + "\nthread T f\nfunc f\nload r1, [g]\nadd r1, " +
			itoa(int64(y)) + "\nstore [g], r1\nret\nend\n"
		p1, err := kasm.Parse(src)
		if err != nil {
			return false
		}
		p2, err := kasm.Parse(kasm.Disassemble(p1))
		if err != nil {
			return false
		}
		m1, err := kvm.New(p1)
		if err != nil {
			return false
		}
		m2, err := kvm.New(p2)
		if err != nil {
			return false
		}
		for m1.Failure() == nil && !m1.AllDone() {
			if _, err := m1.Step(0); err != nil {
				return false
			}
			if _, err := m2.Step(0); err != nil {
				return false
			}
		}
		return m1.StateSignature() == m2.StateSignature()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

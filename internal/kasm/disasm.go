package kasm

import (
	"fmt"
	"sort"
	"strings"

	"aitia/internal/kir"
)

// Disassemble renders a finalized program back to kasm source text. The
// output round-trips through Parse into an equivalent program (same
// instructions, globals, threads and labels).
func Disassemble(prog *kir.Program) string {
	var b strings.Builder

	for _, g := range prog.Globals {
		switch {
		case g.HeapSize > 0:
			fmt.Fprintf(&b, "heap %s[%d]%s\n", g.Name, g.HeapSize, initList(g.Init))
		case len(g.AddrOf) == 1 && g.Size == 1:
			fmt.Fprintf(&b, "ptr %s -> %s\n", g.Name, g.AddrOf[0])
		case g.Size == 1 && len(g.Init) <= 1:
			fmt.Fprintf(&b, "global %s%s\n", g.Name, initList(g.Init))
		default:
			fmt.Fprintf(&b, "global %s[%d]%s\n", g.Name, g.Size, initList(g.Init))
		}
	}
	b.WriteString("\n")

	for _, t := range prog.Threads {
		switch {
		case t.Kind == kir.KindHardIRQ:
			fmt.Fprintf(&b, "thread %s %s irq\n", t.Name, t.Entry)
		case t.Arg != 0:
			fmt.Fprintf(&b, "thread %s %s arg=%d\n", t.Name, t.Entry, t.Arg)
		default:
			fmt.Fprintf(&b, "thread %s %s\n", t.Name, t.Entry)
		}
	}

	names := make([]string, 0, len(prog.Funcs))
	for name := range prog.Funcs {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := prog.Funcs[name]
		fmt.Fprintf(&b, "\nfunc %s\n", name)
		targets := make(map[int][]string)
		for lbl, idx := range f.Labels() {
			targets[idx] = append(targets[idx], lbl)
		}
		for idx, in := range f.Instrs {
			for _, lbl := range sortStrings(targets[idx]) {
				fmt.Fprintf(&b, "%s:\n", lbl)
			}
			if in.Label != "" {
				fmt.Fprintf(&b, "@%-7s %s\n", in.Label, in.String())
			} else {
				fmt.Fprintf(&b, "        %s\n", in.String())
			}
		}
		// Branch targets pointing one past the last instruction.
		for _, lbl := range sortStrings(targets[len(f.Instrs)]) {
			fmt.Fprintf(&b, "%s:\n", lbl)
			b.WriteString("        nop\n")
		}
		b.WriteString("end\n")
	}
	return b.String()
}

func initList(init []int64) string {
	if len(init) == 0 {
		return ""
	}
	parts := make([]string, len(init))
	for i, v := range init {
		parts[i] = fmt.Sprint(v)
	}
	return " = " + strings.Join(parts, ", ")
}

func sortStrings(s []string) []string {
	sort.Strings(s)
	return s
}

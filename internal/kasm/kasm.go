// Package kasm implements a textual assembly format for kir programs, so
// that bug scenarios can be written, stored and diffed as plain text, plus
// the matching disassembler used in reports.
//
// Format by example:
//
//	; CVE-2017-15649, simplified
//	global po_running = 1          ; one word, initialized
//	global ring[4] = 1, 2          ; four words, partial init
//	heap   first_buf[2] = 42       ; pointer word -> pre-allocated object
//	ptr    ptr_var -> obj          ; pointer word -> address of global obj
//
//	thread setsockopt fanout_add   ; name, entry function
//	thread sender     send_frame arg=2
//
//	func fanout_add
//	@A2     load r1, [po_running]  ; @label attaches a paper-style label
//	        bne r1, 0, run         ; branch to local target
//	        ret
//	run:                           ; local branch target
//	@A5     alloc r2, 1
//	        store [po_fanout], r2
//	        queue_work worker, r2
//	end
//
// Comments run from ';' to end of line. Operands are registers (r0..r15),
// immediates (decimal or 0x hex, possibly negative), global addresses
// ([sym] or [sym+2]) and register-indirect addresses ([r1] or [r1+1]).
package kasm

import (
	"fmt"
	"strconv"
	"strings"

	"aitia/internal/kir"
)

// ParseError describes a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *ParseError) Error() string { return fmt.Sprintf("kasm: line %d: %s", e.Line, e.Msg) }

// Parse assembles source text into a finalized program.
func Parse(src string) (*kir.Program, error) {
	p := &parser{b: kir.NewBuilder()}
	for i, raw := range strings.Split(src, "\n") {
		p.line = i + 1
		if err := p.parseLine(raw); err != nil {
			return nil, err
		}
	}
	if p.fb != nil {
		return nil, &ParseError{Line: p.line, Msg: "unterminated func (missing 'end')"}
	}
	return p.b.Build()
}

// MustParse is Parse for statically known-good sources; it panics on error.
func MustParse(src string) *kir.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	b    *kir.Builder
	fb   *kir.FuncBuilder
	line int
}

func (p *parser) errf(format string, args ...any) error {
	return &ParseError{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) parseLine(raw string) error {
	if i := strings.IndexByte(raw, ';'); i >= 0 {
		raw = raw[:i]
	}
	line := strings.TrimSpace(raw)
	if line == "" {
		return nil
	}

	// Paper-style label prefix: "@A2 <instr>".
	label := ""
	if strings.HasPrefix(line, "@") {
		parts := strings.SplitN(line, " ", 2)
		if len(parts) != 2 {
			return p.errf("label %q with no instruction", parts[0])
		}
		label = parts[0][1:]
		line = strings.TrimSpace(parts[1])
	}

	fields := strings.Fields(line)
	head := fields[0]

	if p.fb == nil {
		switch head {
		case "global":
			return p.parseGlobal(line)
		case "heap":
			return p.parseHeap(line)
		case "ptr":
			return p.parsePtr(fields)
		case "thread":
			return p.parseThread(fields)
		case "func":
			if len(fields) != 2 {
				return p.errf("func wants exactly one name")
			}
			p.fb = p.b.Func(fields[1])
			return nil
		default:
			return p.errf("unexpected %q outside a func", head)
		}
	}

	if head == "end" {
		p.fb = nil
		if label != "" {
			return p.errf("label on 'end'")
		}
		return nil
	}
	// Local branch target: "name:" alone on a line.
	if strings.HasSuffix(head, ":") && len(fields) == 1 {
		p.fb.At(strings.TrimSuffix(head, ":"))
		if label != "" {
			return p.errf("paper label on a branch target")
		}
		return nil
	}
	ref, err := p.parseInstr(head, strings.TrimSpace(strings.TrimPrefix(line, head)))
	if err != nil {
		return err
	}
	if label != "" {
		ref.L(label)
	}
	return nil
}

// parseGlobal handles "global name = v" and "global name[size] = v1, v2".
func (p *parser) parseGlobal(line string) error {
	name, size, init, err := p.parseVarDecl(strings.TrimPrefix(line, "global"))
	if err != nil {
		return err
	}
	p.b.Global(name, size, init...)
	return nil
}

// parseHeap handles "heap name[size] = v1, v2".
func (p *parser) parseHeap(line string) error {
	name, size, init, err := p.parseVarDecl(strings.TrimPrefix(line, "heap"))
	if err != nil {
		return err
	}
	p.b.HeapObj(name, size, init...)
	return nil
}

func (p *parser) parseVarDecl(s string) (name string, size int64, init []int64, err error) {
	s = strings.TrimSpace(s)
	decl, vals, hasInit := strings.Cut(s, "=")
	decl = strings.TrimSpace(decl)
	size = 1
	if i := strings.IndexByte(decl, '['); i >= 0 {
		if !strings.HasSuffix(decl, "]") {
			return "", 0, nil, p.errf("malformed size in %q", decl)
		}
		size, err = strconv.ParseInt(decl[i+1:len(decl)-1], 0, 64)
		if err != nil {
			return "", 0, nil, p.errf("bad size in %q", decl)
		}
		decl = decl[:i]
	}
	if decl == "" {
		return "", 0, nil, p.errf("missing variable name")
	}
	if hasInit {
		for _, f := range strings.Split(vals, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(f), 0, 64)
			if err != nil {
				return "", 0, nil, p.errf("bad initializer %q", strings.TrimSpace(f))
			}
			init = append(init, v)
		}
	}
	return decl, size, init, nil
}

// parsePtr handles "ptr name -> sym".
func (p *parser) parsePtr(fields []string) error {
	if len(fields) != 4 || fields[2] != "->" {
		return p.errf("ptr wants: ptr <name> -> <global>")
	}
	p.b.VarAddrOf(fields[1], fields[3])
	return nil
}

// parseThread handles "thread name entry [arg=N | irq]".
func (p *parser) parseThread(fields []string) error {
	if len(fields) < 3 || len(fields) > 4 {
		return p.errf("thread wants: thread <name> <entry> [arg=N | irq]")
	}
	if len(fields) == 4 {
		if fields[3] == "irq" {
			p.b.ThreadIRQ(fields[1], fields[2])
			return nil
		}
		val, ok := strings.CutPrefix(fields[3], "arg=")
		if !ok {
			return p.errf("bad thread option %q", fields[3])
		}
		arg, err := strconv.ParseInt(val, 0, 64)
		if err != nil {
			return p.errf("bad thread arg %q", val)
		}
		p.b.ThreadArg(fields[1], fields[2], arg)
		return nil
	}
	p.b.Thread(fields[1], fields[2])
	return nil
}

// splitOperands splits "r1, [po+2], 5" into trimmed operand tokens.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

// parseReg parses "r4".
func parseReg(tok string) (kir.Reg, bool) {
	if len(tok) < 2 || tok[0] != 'r' {
		return 0, false
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil || n < 0 || n >= kir.NumRegs {
		return 0, false
	}
	return kir.Reg(n), true
}

// parseOperand parses any operand form.
func (p *parser) parseOperand(tok string) (kir.Operand, error) {
	if tok == "" {
		return kir.Operand{}, p.errf("empty operand")
	}
	if r, ok := parseReg(tok); ok {
		return kir.R(r), nil
	}
	if strings.HasPrefix(tok, "[") {
		if !strings.HasSuffix(tok, "]") {
			return kir.Operand{}, p.errf("malformed address %q", tok)
		}
		inner := tok[1 : len(tok)-1]
		base, offStr, hasOff := strings.Cut(inner, "+")
		var off int64
		if hasOff {
			var err error
			off, err = strconv.ParseInt(strings.TrimSpace(offStr), 0, 64)
			if err != nil {
				return kir.Operand{}, p.errf("bad offset in %q", tok)
			}
		}
		base = strings.TrimSpace(base)
		if r, ok := parseReg(base); ok {
			return kir.Ind(r, off), nil
		}
		return kir.GOff(base, off), nil
	}
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return kir.Operand{}, p.errf("bad operand %q", tok)
	}
	return kir.Imm(v), nil
}

// wantReg parses an operand that must be a register.
func (p *parser) wantReg(tok string) (kir.Reg, error) {
	r, ok := parseReg(tok)
	if !ok {
		return 0, p.errf("want register, got %q", tok)
	}
	return r, nil
}

// parseInstr assembles one instruction line.
func (p *parser) parseInstr(mnem, rest string) (kir.InstrRef, error) {
	var zero kir.InstrRef
	op, ok := kir.OpByName(mnem)
	if !ok {
		return zero, p.errf("unknown mnemonic %q", mnem)
	}
	args := splitOperands(rest)
	argc := func(n int) error {
		if len(args) != n {
			return p.errf("%s wants %d operand(s), got %d", mnem, n, len(args))
		}
		return nil
	}

	switch op {
	case kir.OpNop:
		return p.fb.Nop(), argc(0)
	case kir.OpYield:
		return p.fb.Yield(), argc(0)
	case kir.OpRet:
		return p.fb.Ret(), argc(0)
	case kir.OpExit:
		return p.fb.Exit(), argc(0)

	case kir.OpMov, kir.OpAdd, kir.OpSub, kir.OpAnd, kir.OpOr, kir.OpXor:
		if err := argc(2); err != nil {
			return zero, err
		}
		dst, err := p.wantReg(args[0])
		if err != nil {
			return zero, err
		}
		a, err := p.parseOperand(args[1])
		if err != nil {
			return zero, err
		}
		switch op {
		case kir.OpMov:
			return p.fb.Mov(dst, a), nil
		case kir.OpAdd:
			return p.fb.Add(dst, a), nil
		case kir.OpSub:
			return p.fb.Sub(dst, a), nil
		case kir.OpAnd:
			return p.fb.And(dst, a), nil
		case kir.OpOr:
			return p.fb.Or(dst, a), nil
		default:
			return p.fb.Xor(dst, a), nil
		}

	case kir.OpLoad, kir.OpListHas, kir.OpRefGet, kir.OpRefPut:
		want := 2
		if op == kir.OpListHas {
			want = 3
		}
		if err := argc(want); err != nil {
			return zero, err
		}
		dst, err := p.wantReg(args[0])
		if err != nil {
			return zero, err
		}
		addr, err := p.parseOperand(args[1])
		if err != nil {
			return zero, err
		}
		switch op {
		case kir.OpLoad:
			return p.fb.Load(dst, addr), nil
		case kir.OpRefGet:
			return p.fb.RefGet(dst, addr), nil
		case kir.OpRefPut:
			return p.fb.RefPut(dst, addr), nil
		default:
			v, err := p.parseOperand(args[2])
			if err != nil {
				return zero, err
			}
			return p.fb.ListHas(dst, addr, v), nil
		}

	case kir.OpStore, kir.OpListAdd, kir.OpListDel:
		if err := argc(2); err != nil {
			return zero, err
		}
		addr, err := p.parseOperand(args[0])
		if err != nil {
			return zero, err
		}
		v, err := p.parseOperand(args[1])
		if err != nil {
			return zero, err
		}
		switch op {
		case kir.OpStore:
			return p.fb.Store(addr, v), nil
		case kir.OpListAdd:
			return p.fb.ListAdd(addr, v), nil
		default:
			return p.fb.ListDel(addr, v), nil
		}

	case kir.OpBeq, kir.OpBne, kir.OpBlt, kir.OpBge:
		if err := argc(3); err != nil {
			return zero, err
		}
		a, err := p.parseOperand(args[0])
		if err != nil {
			return zero, err
		}
		bv, err := p.parseOperand(args[1])
		if err != nil {
			return zero, err
		}
		switch op {
		case kir.OpBeq:
			return p.fb.Beq(a, bv, args[2]), nil
		case kir.OpBne:
			return p.fb.Bne(a, bv, args[2]), nil
		case kir.OpBlt:
			return p.fb.Blt(a, bv, args[2]), nil
		default:
			return p.fb.Bge(a, bv, args[2]), nil
		}

	case kir.OpJmp:
		if err := argc(1); err != nil {
			return zero, err
		}
		return p.fb.Jmp(args[0]), nil

	case kir.OpCall:
		if err := argc(1); err != nil {
			return zero, err
		}
		return p.fb.Call(args[0]), nil

	case kir.OpQueueWork, kir.OpCallRCU:
		if len(args) != 1 && len(args) != 2 {
			return zero, p.errf("%s wants 1 or 2 operands", mnem)
		}
		arg := kir.Imm(0)
		if len(args) == 2 {
			var err error
			arg, err = p.parseOperand(args[1])
			if err != nil {
				return zero, err
			}
		}
		if op == kir.OpQueueWork {
			return p.fb.QueueWork(args[0], arg), nil
		}
		return p.fb.CallRCU(args[0], arg), nil

	case kir.OpLock, kir.OpUnlock:
		if err := argc(1); err != nil {
			return zero, err
		}
		addr, err := p.parseOperand(args[0])
		if err != nil {
			return zero, err
		}
		if op == kir.OpLock {
			return p.fb.Lock(addr), nil
		}
		return p.fb.Unlock(addr), nil

	case kir.OpAlloc:
		if err := argc(2); err != nil {
			return zero, err
		}
		dst, err := p.wantReg(args[0])
		if err != nil {
			return zero, err
		}
		size, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return zero, p.errf("bad alloc size %q", args[1])
		}
		return p.fb.Alloc(dst, size), nil

	case kir.OpFree, kir.OpBugOn:
		if err := argc(1); err != nil {
			return zero, err
		}
		v, err := p.parseOperand(args[0])
		if err != nil {
			return zero, err
		}
		if op == kir.OpFree {
			return p.fb.Free(v), nil
		}
		return p.fb.BugOn(v), nil

	default:
		return zero, p.errf("mnemonic %q not assemblable", mnem)
	}
}

package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"aitia/internal/kvm"
	"aitia/internal/obs"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// Verdict is the outcome of testing one data race's causality to the
// failure.
type Verdict uint8

const (
	// VerdictBenign: the failure still manifests with the race flipped —
	// the race does not contribute (a benign race).
	VerdictBenign Verdict = iota
	// VerdictRootCause: flipping the race prevents the failure.
	VerdictRootCause
	// VerdictAmbiguous: the race surrounds a nested root-cause race, so
	// its own flip could not be tested in isolation (§3.4).
	VerdictAmbiguous
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictRootCause:
		return "root-cause"
	case VerdictAmbiguous:
		return "ambiguous"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// TestedRace records the causality test of one race from the test set.
type TestedRace struct {
	Race    sched.Race
	Verdict Verdict
	// FlipRealized reports whether the flipped interleaving order was
	// actually observed in the test run (control flow can make a flip
	// unrealizable; the verdict is still decided by the failure outcome,
	// per the paper).
	FlipRealized bool
	// FlipRun is the run with this race flipped.
	FlipRun *sched.RunResult
}

// AnalysisStats summarize one Causality Analysis.
type AnalysisStats struct {
	Schedules   int // runs executed (one per tested race)
	TestSet     int // races tested
	MemAccesses int // memory-accessing instruction executions in the failing run
	Elapsed     time.Duration
}

// AnalysisOptions configure Causality Analysis.
type AnalysisOptions struct {
	StepBudget int
	LeakCheck  bool
	// Workers parallelizes the flip tests across that many independent
	// machines (the paper's fleet of diagnoser VMs, §4.5). Zero or one
	// means serial.
	Workers int
	// NoCriticalSections is an ablation switch: disable the §3.4 rule of
	// flipping whole critical sections as units.
	NoCriticalSections bool
	// Tracer collects execution spans (the analysis and each flip test).
	// Nil disables tracing at zero cost; see internal/obs.
	Tracer *obs.Tracer
}

// Diagnosis is the final output: the causality chain plus the full
// evidence (every tested race with its verdict and test run).
type Diagnosis struct {
	Failure   *sanitizer.Failure
	Tested    []TestedRace
	RootCause []sched.Race
	Benign    []sched.Race
	Ambiguous []sched.Race
	Chain     *Chain
	Stats     AnalysisStats
}

// Analyze runs Causality Analysis on a reproduction: it flips each data
// race of the failure-causing sequence one at a time (backward, nested
// races before their surrounding races), re-executes, and classifies races
// by whether the failure still manifests. From the root-cause set and the
// flip runs it builds the causality chain.
//
// The machine must execute the same program that produced rep; Analyze
// resets it before the first test run.
func Analyze(m *kvm.Machine, rep *Reproduction, opts AnalysisOptions) (*Diagnosis, error) {
	return AnalyzeContext(context.Background(), m, rep, opts)
}

// AnalyzeContext is Analyze under a context: cancellation is checked
// between flip tests (each test is one bounded schedule enforcement), so
// a canceled context stops the analysis promptly with ctx.Err().
func AnalyzeContext(ctx context.Context, m *kvm.Machine, rep *Reproduction, opts AnalysisOptions) (*Diagnosis, error) {
	if rep == nil || rep.Run == nil || !rep.Run.Failed() {
		return nil, fmt.Errorf("core: Analyze needs a failing reproduction")
	}
	if err := m.Reset(); err != nil {
		return nil, err
	}
	init := m.Snapshot()
	enf := sched.NewEnforcer(m)
	runOpts := sched.Options{StepBudget: opts.StepBudget, LeakCheck: opts.LeakCheck}

	var fallback []string
	for _, td := range m.Prog().Threads {
		fallback = append(fallback, td.Name)
	}

	failSeq := rep.Run.Seq
	original := rep.Run.Failure
	start := time.Now()

	d := &Diagnosis{Failure: original}
	d.Stats.TestSet = len(rep.Races)
	az := opts.Tracer.Begin("ca", "analyze", 0)
	defer func() {
		az.Arg("test_set", int64(d.Stats.TestSet))
		az.Info("schedules", int64(d.Stats.Schedules))
		az.End()
	}()
	for _, e := range failSeq {
		if len(e.Accesses) > 0 {
			d.Stats.MemAccesses++
		}
	}

	// Test order: backward from the failure point; a nested race is
	// tested before any race surrounding it (§3.4).
	order := testOrder(rep.Races)

	fo := sched.FlipOptions{NoCriticalSections: opts.NoCriticalSections}
	testRace := func(enf *sched.Enforcer, init *kvm.Snapshot, r sched.Race) (TestedRace, error) {
		plan := sched.PlanFlipOpt(failSeq, r, fallback, fo)
		enf.Machine().Restore(init)
		res, err := enf.Run(plan, runOpts)
		if err != nil {
			return TestedRace{}, fmt.Errorf("core: flip run for %s: %w", r.FormatLong(m.Prog()), err)
		}
		tr := TestedRace{
			Race:         r,
			FlipRealized: flipRealized(res, r),
			FlipRun:      res,
		}
		if res.Failed() && res.Failure.SameSymptom(original) {
			tr.Verdict = VerdictBenign
		} else {
			tr.Verdict = VerdictRootCause
		}
		return tr, nil
	}

	// Stats.Schedules counts runs actually executed: a canceled or failed
	// analysis reports only the flip tests that ran, not the test-set size.
	var executed atomic.Int64
	d.Tested = make([]TestedRace, len(order))
	// Flip spans are measured where the test ran and committed in test
	// order below, after the verdicts (including the ambiguity pass) are
	// final — never in completion order.
	type flipSpan struct {
		start, dur time.Duration
		worker     int
	}
	var flipSpans []flipSpan
	if opts.Tracer.Enabled() {
		flipSpans = make([]flipSpan, len(order))
	}
	timeFlip := func(worker, idx int, run func() error) error {
		if flipSpans == nil {
			return run()
		}
		t0 := opts.Tracer.Now()
		err := run()
		flipSpans[idx] = flipSpan{start: t0, dur: opts.Tracer.Now() - t0, worker: worker}
		return err
	}
	if opts.Workers > 1 {
		// One independent machine per diagnoser, as in the paper's VM
		// fleet; flip tests are mutually independent. The shared pool
		// (runWorkers) stops feeding on the first error or cancellation.
		type flipVM struct {
			enf  *sched.Enforcer
			init *kvm.Snapshot
		}
		err := runWorkers(ctx, opts.Tracer, "ca-flip", opts.Workers, len(order),
			func(int) (*flipVM, error) {
				wm, err := kvm.New(m.Prog())
				if err != nil {
					return nil, err
				}
				return &flipVM{enf: sched.NewEnforcer(wm), init: wm.Snapshot()}, nil
			},
			func(ctx context.Context, vm *flipVM, worker, idx int) error {
				return timeFlip(worker, idx, func() error {
					tr, err := testRace(vm.enf, vm.init, order[idx])
					if err != nil {
						return err
					}
					executed.Add(1)
					d.Tested[idx] = tr
					return nil
				})
			})
		if err != nil {
			return nil, err
		}
	} else {
		for i, r := range order {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			err := timeFlip(-1, i, func() error {
				tr, err := testRace(enf, init, r)
				if err != nil {
					return err
				}
				executed.Add(1)
				d.Tested[i] = tr
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
	}
	d.Stats.Schedules += int(executed.Load())

	// Ambiguity: a surrounding race whose flip avoids the failure cannot
	// be attributed when its nested race is itself a root cause — flipping
	// the surrounding race necessarily flipped the nested one too.
	for i := range d.Tested {
		p := &d.Tested[i]
		if p.Verdict != VerdictRootCause {
			continue
		}
		for j := range d.Tested {
			q := &d.Tested[j]
			if i == j || q.Verdict != VerdictRootCause {
				continue
			}
			if surrounds(p.Race, q.Race) {
				p.Verdict = VerdictAmbiguous
			}
		}
	}

	// Commit flip spans now that the verdicts (including the ambiguity
	// pass) are final; test order and verdicts are deterministic, so the
	// canonical flip sequence is too.
	for i := range d.Tested {
		if flipSpans == nil {
			break
		}
		tr := &d.Tested[i]
		opts.Tracer.Emit(obs.Event{
			Cat: "ca", Name: "flip", Track: int64(i) + 1,
			Start: flipSpans[i].start, Dur: flipSpans[i].dur,
			Args: []obs.Arg{
				{Key: "idx", Val: int64(i)},
				{Key: "verdict", Val: int64(tr.Verdict)},
				{Key: "realized", Val: b2i(tr.FlipRealized)},
			},
			Info: []obs.Arg{{Key: "worker", Val: int64(flipSpans[i].worker)}},
		})
	}

	for _, tr := range d.Tested {
		switch tr.Verdict {
		case VerdictRootCause:
			d.RootCause = append(d.RootCause, tr.Race)
		case VerdictBenign:
			d.Benign = append(d.Benign, tr.Race)
		case VerdictAmbiguous:
			d.Ambiguous = append(d.Ambiguous, tr.Race)
		}
	}

	d.Chain = buildChain(d, original)
	d.Stats.Elapsed = time.Since(start)
	return d, nil
}

// testOrder sorts the test set backward from the failure point and hoists
// nested races in front of the races that surround them.
func testOrder(races []sched.Race) []sched.Race {
	order := append([]sched.Race(nil), races...)
	sort.Slice(order, func(i, j int) bool { return order[i].LastStep() > order[j].LastStep() })
	// Bubble nested races ahead of their surrounders (the relation is
	// acyclic: surround intervals strictly contain nested intervals).
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(order); i++ {
			if surrounds(order[i], order[i+1]) {
				order[i], order[i+1] = order[i+1], order[i]
				changed = true
			}
		}
	}
	return order
}

// surrounds reports whether race p surrounds race q: flipping p (delaying
// p.First's thread past p.Second) necessarily also flips q, because q's
// First access belongs to the delayed thread inside the displaced span and
// q's Second access lies inside the kept span.
func surrounds(p, q sched.Race) bool {
	if p.Phantom || q.Phantom {
		return false
	}
	return q.First.Thread == p.First.Thread &&
		q.Second.Thread != p.First.Thread &&
		p.FirstStep < q.FirstStep && q.FirstStep < p.SecondStep &&
		p.FirstStep < q.SecondStep && q.SecondStep < p.SecondStep
}

// flipRealized reports whether the intended reversed order was observed.
func flipRealized(res *sched.RunResult, r sched.Race) bool {
	if r.Phantom {
		// The phantom's Second access had never executed; realization
		// means it ran at all before First (or First vanished entirely).
		switch sched.RaceOrder(res, r) {
		case -1:
			return true
		}
		return res.Executed(r.Second) && !res.Executed(r.First)
	}
	switch sched.RaceOrder(res, r) {
	case -1:
		return true
	case 0:
		// The pair vanished: the flip steered control flow away from the
		// racing accesses altogether, which also counts as "the original
		// order did not happen".
		return !res.Executed(r.First) || !res.Executed(r.Second)
	}
	return false
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/obs"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// Verdict is the outcome of testing one data race's causality to the
// failure.
type Verdict uint8

const (
	// VerdictBenign: the failure still manifests with the race flipped —
	// the race does not contribute (a benign race).
	VerdictBenign Verdict = iota
	// VerdictRootCause: flipping the race prevents the failure.
	VerdictRootCause
	// VerdictAmbiguous: the race surrounds a nested root-cause race, so
	// its own flip could not be tested in isolation (§3.4).
	VerdictAmbiguous
	// VerdictUnknown: the flip test could not be completed — every retry
	// of its schedule enforcement was lost to (injected) infrastructure
	// faults. The race is excluded from the chain and the diagnosis is
	// returned as Partial instead of failing outright.
	VerdictUnknown
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictRootCause:
		return "root-cause"
	case VerdictAmbiguous:
		return "ambiguous"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("verdict(%d)", uint8(v))
	}
}

// TestedRace records the causality test of one race from the test set.
type TestedRace struct {
	Race    sched.Race
	Verdict Verdict
	// FlipRealized reports whether the flipped interleaving order was
	// actually observed in the test run (control flow can make a flip
	// unrealizable; the verdict is still decided by the failure outcome,
	// per the paper).
	FlipRealized bool
	// FlipRun is the run with this race flipped.
	FlipRun *sched.RunResult
	// PriorSkipped marks a verdict settled by the learned flip prior
	// (AnalysisOptions.Ranker) without executing a flip test; FlipRun is
	// nil for such races.
	PriorSkipped bool
	// PriorKills is the prior's kill row for a skipped chain member
	// (PriorSkipped with a non-benign verdict): the test-order indices
	// of the races this flip is predicted to make disappear. It stands
	// in for the missing FlipRun when the chain is built.
	PriorKills []int
}

// FlipPrior is one race's learned prior, aligned by index with the
// candidate slice given to RankFlips.
type FlipPrior struct {
	// Score is the expected root-cause probability; higher scores are
	// flip-tested first. Equal scores preserve the backward test order.
	Score float64
	// Hit reports that the ranker had prior observations for this race's
	// signature (counted in AnalysisStats.PriorHits).
	Hit bool
	// SettledBenign asserts the race is benign with enough support that
	// its flip test can be skipped: the analysis settles it as
	// VerdictBenign without a run. Sound because flip tests are mutually
	// independent and benign races never shape the chain, so the
	// diagnosis is byte-identical to one that executed the flip —
	// provided the assertion is correct.
	SettledBenign bool
	// SettledRootCause asserts the race is a chain member with enough
	// support to settle as VerdictRootCause without a run (the ambiguity
	// pass still demotes surrounding races as usual). Kills is its
	// predicted kill row, aligned with the candidate slice: Kills[j]
	// reports that this flip makes candidate j's pair disappear. The
	// chain builder consumes the row in place of the missing flip run,
	// so a ranker must only set SettledRootCause with a complete row.
	SettledRootCause bool
	Kills            []bool
}

// FlipRanker orders the flip tests of a causality analysis by expected
// root-cause probability (see AnalysisOptions.Ranker).
type FlipRanker interface {
	// RankFlips returns one FlipPrior per race, aligned by index. A
	// result of any other length is ignored (fixed-order analysis).
	RankFlips(prog *kir.Program, races []sched.Race) []FlipPrior
}

// AnalysisStats summarize one Causality Analysis.
type AnalysisStats struct {
	Schedules   int // runs executed by THIS process (checkpointed flips not re-counted)
	TestSet     int // races tested
	MemAccesses int // memory-accessing instruction executions in the failing run
	Elapsed     time.Duration
	// Resumed reports that settled flip verdicts were restored from a
	// durable checkpoint instead of re-executed.
	Resumed bool
	// Incremental-replay prefix cache (AnalysisOptions.Prefix):
	ExecutedInstrs uint64 // instructions executed across all machines, replays included
	ReplayedInstrs uint64 // instructions spent re-executing failing-run prefixes
	SavedInstrs    uint64 // prefix instructions skipped by restoring pinned snapshots
	PrefixHits     int    // flip runs started from a pinned prefix snapshot
	PinnedBytes    uint64 // peak bytes pinned by live prefix snapshots
	// Learned flip ordering (AnalysisOptions.Ranker); both count THIS
	// process — checkpoint-restored flips land in neither.
	FlipsExecuted int // flip tests actually run
	FlipsSkipped  int // flip tests settled benign by the prior without a run
	PriorHits     int // tested races whose signature had prior observations
}

// AnalysisOptions configure Causality Analysis.
type AnalysisOptions struct {
	StepBudget int
	LeakCheck  bool
	// Workers parallelizes the flip tests across that many independent
	// machines (the paper's fleet of diagnoser VMs, §4.5). Zero or one
	// means serial.
	Workers int
	// NoCriticalSections is an ablation switch: disable the §3.4 rule of
	// flipping whole critical sections as units.
	NoCriticalSections bool
	// Tracer collects execution spans (the analysis and each flip test).
	// Nil disables tracing at zero cost; see internal/obs.
	Tracer *obs.Tracer
	// Fault arms deterministic fault injection on the analysis
	// infrastructure (flip-test restores and enforcements, diagnoser-VM
	// launches). Nil disables it at zero cost; see internal/faultinject.
	Fault *faultinject.Plan
	// Retry bounds the re-execution of faulted flip tests; zero-value
	// knobs mean faultinject.DefaultRetry.
	Retry faultinject.RetryPolicy
	// Checkpoint arms durable analysis checkpoints: every settled flip
	// verdict is persisted (with the causal footprint of its test run),
	// and a restarted analysis re-executes only the flips the crash
	// lost. Nil disables checkpointing at zero cost.
	Checkpoint *CheckpointConfig
	// Prefix configures the incremental-replay prefix cache: every flip
	// schedule replays the failing run verbatim up to its race, so the
	// analysis pins snapshots along the failing sequence and starts each
	// flip from the deepest pinned ancestor of its cut, enforcing only
	// the suffix. The zero value enables the cache with default knobs;
	// verdicts and the diagnosis are identical with the cache on or off.
	// See PrefixConfig.
	Prefix PrefixConfig
	// Ranker, when set, reorders the flip tests by learned expected
	// root-cause probability (the fixed backward order breaks ties) and
	// skips the flips the prior has settled: unanimously benign races
	// settle as VerdictBenign without a run, and unanimous chain members
	// with a fully known kill row settle as VerdictRootCause (the kill
	// row replaces the flip run in chain construction). Reordering and
	// skipping never change the verdicts of executed flips (each flip
	// test is independent), so with correct priors the diagnosis is
	// byte-identical to fixed-order analysis. Nil preserves the exact
	// fixed backward order.
	Ranker FlipRanker
}

// Diagnosis is the final output: the causality chain plus the full
// evidence (every tested race with its verdict and test run).
type Diagnosis struct {
	Failure   *sanitizer.Failure
	Tested    []TestedRace
	RootCause []sched.Race
	Benign    []sched.Race
	Ambiguous []sched.Race
	// Unknown holds races whose flip tests exhausted their retry budget
	// (VerdictUnknown). They are excluded from the chain; when any exist
	// the diagnosis is Partial rather than failed.
	Unknown []sched.Race
	Chain   *Chain
	// Partial reports that the chain was built from an incomplete test
	// set; PartialReason is the machine-readable cause (e.g.
	// "flip_retries_exhausted=2").
	Partial       bool
	PartialReason string
	Stats         AnalysisStats
}

// Analyze runs Causality Analysis on a reproduction: it flips each data
// race of the failure-causing sequence one at a time (backward, nested
// races before their surrounding races), re-executes, and classifies races
// by whether the failure still manifests. From the root-cause set and the
// flip runs it builds the causality chain.
//
// The machine must execute the same program that produced rep; Analyze
// resets it before the first test run.
func Analyze(m *kvm.Machine, rep *Reproduction, opts AnalysisOptions) (*Diagnosis, error) {
	return AnalyzeContext(context.Background(), m, rep, opts)
}

// AnalyzeContext is Analyze under a context: cancellation is checked
// between flip tests (each test is one bounded schedule enforcement), so
// a canceled context stops the analysis promptly with ctx.Err().
func AnalyzeContext(ctx context.Context, m *kvm.Machine, rep *Reproduction, opts AnalysisOptions) (*Diagnosis, error) {
	if rep == nil || rep.Run == nil || !rep.Run.Failed() {
		return nil, fmt.Errorf("core: Analyze needs a failing reproduction")
	}
	// Warm handoff: when the reproduction carries live prefix pins for
	// this very machine (it just replayed the failing run), adopt them
	// instead of resetting — the flip cache starts with the whole failing
	// sequence cached. execBase discounts the search's instructions from
	// this analysis's ExecutedInstrs. Any mismatch (different machine,
	// reset in between, cache off) falls back to the cold path, which is
	// byte-identical to the pre-cache pipeline.
	var init *kvm.Snapshot
	var warmPins []flipPin
	var execBase uint64
	if pins, ok := rep.seed.adopt(m); ok && opts.Prefix.enabled() {
		warmPins = pins
		init = rep.seed.init
		execBase = m.Executed()
		m.SetFaultPlan(opts.Fault)
	} else {
		if err := m.Reset(); err != nil {
			return nil, err
		}
		m.SetFaultPlan(opts.Fault)
		init = m.Snapshot()
	}
	enf := sched.NewEnforcer(m)
	runOpts := sched.Options{StepBudget: opts.StepBudget, LeakCheck: opts.LeakCheck}

	var fallback []string
	for _, td := range m.Prog().Threads {
		fallback = append(fallback, td.Name)
	}

	failSeq := rep.Run.Seq
	original := rep.Run.Failure
	start := time.Now()

	// Prefix cache: one flipCache per machine (snapshots are per-machine),
	// all feeding the same counters. ps is tracked even with the cache
	// off, so cache-on/off benchmark runs report comparable replay work.
	var ps prefixStats
	var fcMain *flipCache
	if opts.Prefix.enabled() {
		fcMain = newFlipCache(m, init, failSeq, opts.Prefix, opts.Fault, &ps)
		fcMain.pins = warmPins
	}

	d := &Diagnosis{Failure: original}
	d.Stats.TestSet = len(rep.Races)
	az := opts.Tracer.Begin("ca", "analyze", 0)
	defer func() {
		az.Arg("test_set", int64(d.Stats.TestSet))
		// The unknown count is a deterministic function of the fault
		// seed, so it rides in Args and the obs validation enforces its
		// equality across worker counts.
		az.Arg("unknown", int64(len(d.Unknown)))
		// Skip and hit counts are pure functions of the prior snapshot
		// and the test set, so they too must match across worker counts.
		az.Arg("flips_skipped", int64(d.Stats.FlipsSkipped))
		az.Arg("prior_hits", int64(d.Stats.PriorHits))
		az.Info("schedules", int64(d.Stats.Schedules))
		az.Info("flips_executed", int64(d.Stats.FlipsExecuted))
		az.Info("prefix_hits", int64(d.Stats.PrefixHits))
		az.Info("replayed_instrs", int64(d.Stats.ReplayedInstrs))
		az.Info("saved_instrs", int64(d.Stats.SavedInstrs))
		az.Info("pinned_bytes", int64(d.Stats.PinnedBytes))
		if opts.Fault.Enabled() {
			st := opts.Fault.Stats()
			var fired uint64
			for _, n := range st.Fired {
				fired += n
			}
			az.Info("fault_fired", int64(fired))
			az.Info("fault_retries", int64(st.Retries))
			az.Info("fault_exhausted", int64(st.Exhausted))
		}
		az.End()
	}()
	for _, e := range failSeq {
		if len(e.Accesses) > 0 {
			d.Stats.MemAccesses++
		}
	}

	// Test order: backward from the failure point; a nested race is
	// tested before any race surrounding it (§3.4).
	order := testOrder(rep.Races)

	// Learned prior (opts.Ranker): score each flip, mark the ones the
	// prior settles as benign, and build the execution order — score
	// descending, the canonical backward-order index as the deterministic
	// tie-break. The skip set and order are fixed up front from the prior
	// snapshot alone, never from this run's outcomes, so serial and
	// parallel analyses settle identical verdicts regardless of worker
	// completion order.
	var priors []FlipPrior
	if opts.Ranker != nil {
		if p := opts.Ranker.RankFlips(m.Prog(), order); len(p) == len(order) {
			priors = p
		}
	}
	skip := make([]bool, len(order))
	execOrder := make([]int, 0, len(order))
	for i := range order {
		if priors != nil {
			if priors[i].Hit {
				d.Stats.PriorHits++
			}
			if priors[i].SettledBenign {
				skip[i] = true
				continue
			}
			if priors[i].SettledRootCause && len(priors[i].Kills) == len(order) {
				skip[i] = true
				continue
			}
		}
		execOrder = append(execOrder, i)
	}
	if priors != nil {
		sort.SliceStable(execOrder, func(a, b int) bool {
			ia, ib := execOrder[a], execOrder[b]
			if priors[ia].Score != priors[ib].Score {
				return priors[ia].Score > priors[ib].Score
			}
			return ia < ib
		})
	}

	fo := sched.FlipOptions{NoCriticalSections: opts.NoCriticalSections}
	// One flip test, retried under the fault plan. The operation identity
	// is the flip's index in the deterministic test order, so for a fixed
	// fault seed the same flips fault, retry and (rarely) exhaust no
	// matter how the tests are spread over workers.
	testRace := func(ctx context.Context, enf *sched.Enforcer, init *kvm.Snapshot, fc *flipCache, idx int, r sched.Race) (TestedRace, error) {
		// The flip schedule replays failSeq verbatim up to its cut; with
		// the cache on, Seek brings the machine there (from the deepest
		// pinned ancestor) and only the suffix plan is enforced, numbered
		// from BaseSteps so the merged run is byte-identical to a full
		// enforcement.
		cut := sched.FlipCut(failSeq, r, fo)
		var plan sched.Schedule
		if fc != nil {
			plan = sched.PlanFlipFrom(failSeq, r, fallback, fo, cut)
		} else {
			plan = sched.PlanFlipOpt(failSeq, r, fallback, fo)
		}
		var tr TestedRace
		err := faultinject.Do(ctx, opts.Fault, opts.Retry, func(ctx context.Context, attempt int) error {
			ro := runOpts
			ro.Fault = opts.Fault
			ro.FaultOp = "ca.flip"
			ro.FaultKey = uint64(idx)
			ro.FaultAttempt = attempt
			ro.Ctx = ctx
			if fc != nil {
				if err := fc.Seek(cut, "ca.flip", uint64(idx), attempt); err != nil {
					return err
				}
				ro.BaseSteps = cut
			} else if err := enf.Machine().TryRestore(init, "ca.flip", uint64(idx), attempt); err != nil {
				return err
			}
			res, err := enf.Run(plan, ro)
			if err != nil {
				return err
			}
			if fc != nil {
				res = mergeFlipRun(failSeq[:cut], res)
			} else {
				// Cache off: the full plan re-enforced the known prefix.
				ps.replayed.Add(uint64(cut))
			}
			tr = TestedRace{
				Race:         r,
				FlipRealized: flipRealized(res, r),
				FlipRun:      res,
			}
			if res.Failed() && res.Failure.SameSymptom(original) {
				tr.Verdict = VerdictBenign
			} else {
				tr.Verdict = VerdictRootCause
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, faultinject.ErrExhausted) {
				// Graceful degradation: give up on this flip, keep the
				// analysis. The race's causality stays undecided.
				return TestedRace{Race: r, Verdict: VerdictUnknown}, nil
			}
			if faultinject.Is(err) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				return TestedRace{}, err
			}
			return TestedRace{}, fmt.Errorf("core: flip run for %s: %w", r.FormatLong(m.Prog()), err)
		}
		return tr, nil
	}

	// Stats.Schedules counts runs actually executed: a canceled or failed
	// analysis reports only the flip tests that ran, not the test-set size.
	var executed atomic.Int64
	// workerMachines collects the diagnoser VMs so ExecutedInstrs can sum
	// their work alongside the main machine's.
	var workerMachines []*kvm.Machine
	d.Tested = make([]TestedRace, len(order))
	// Flip spans are measured where the test ran and committed in test
	// order below, after the verdicts (including the ambiguity pass) are
	// final — never in completion order.
	type flipSpan struct {
		start, dur time.Duration
		worker     int
	}
	var flipSpans []flipSpan
	if opts.Tracer.Enabled() {
		flipSpans = make([]flipSpan, len(order))
	}
	timeFlip := func(worker, idx int, run func() error) error {
		if flipSpans == nil {
			return run()
		}
		t0 := opts.Tracer.Now()
		err := run()
		flipSpans[idx] = flipSpan{start: t0, dur: opts.Tracer.Now() - t0, worker: worker}
		return err
	}
	// serialFlips runs the given flips on the analysis machine; it is both
	// the Workers<=1 path and the degradation path when the diagnoser
	// fleet is lost to injected worker deaths.
	done := make([]bool, len(order))

	// Durable resume: settled verdicts from a prior process are restored
	// (their test runs reconstructed from the checkpointed causal
	// footprint) and only the remaining flips execute. Every newly
	// settled flip is persisted immediately — the checkpoint is a pure
	// function of the settled set, so saves commute and the ckMu only
	// serializes the file writes of parallel workers.
	checkpointing := opts.Checkpoint.enabled()
	var (
		ckKey, ckFP string
		ckMu        sync.Mutex
		ckSnaps     []flipSnap
	)
	if checkpointing {
		ckFP = caFingerprint(m.Prog().Hash(), rep, order, opts, skip, priors)
		ckKey = caCheckpointKey(m.Prog().Hash(), ckFP)
		if ck := loadCACheckpoint(opts.Checkpoint, ckKey, ckFP, len(order)); ck != nil {
			for _, fs := range ck.Flips {
				if done[fs.Idx] {
					continue
				}
				done[fs.Idx] = true
				d.Tested[fs.Idx] = restoreFlip(order[fs.Idx], fs)
				ckSnaps = append(ckSnaps, fs)
			}
			d.Stats.Resumed = len(ckSnaps) > 0
		}
	}
	settle := func(idx int, tr TestedRace) {
		d.Tested[idx] = tr
		done[idx] = true
		if !checkpointing {
			return
		}
		ckMu.Lock()
		defer ckMu.Unlock()
		ckSnaps = append(ckSnaps, snapFlip(idx, tr))
		saveCACheckpoint(opts.Checkpoint, ckKey, &caCheckpoint{Fingerprint: ckFP, Flips: ckSnaps})
	}

	// Settle the prior-skipped flips immediately (unless a restored
	// checkpoint already settled them): benign by the prior's assertion,
	// or a root-cause member carrying its predicted kill row in place of
	// a run — either way nil FlipRun, exactly what a skip restores to.
	for i := range order {
		if skip[i] && !done[i] {
			tr := TestedRace{Race: order[i], Verdict: VerdictBenign, PriorSkipped: true}
			if priors[i].SettledRootCause {
				tr.Verdict = VerdictRootCause
				for j, killed := range priors[i].Kills {
					if killed && j != i {
						tr.PriorKills = append(tr.PriorKills, j)
					}
				}
			}
			settle(i, tr)
			d.Stats.FlipsSkipped++
		}
	}

	serialFlips := func() error {
		for _, i := range execOrder {
			r := order[i]
			if done[i] {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			err := timeFlip(-1, i, func() error {
				tr, err := testRace(ctx, enf, init, fcMain, i, r)
				if err != nil {
					return err
				}
				executed.Add(1)
				settle(i, tr)
				return nil
			})
			if err != nil {
				return err
			}
		}
		return nil
	}
	if opts.Workers > 1 {
		// One independent machine per diagnoser, as in the paper's VM
		// fleet; flip tests are mutually independent. The shared pool
		// (runWorkers) stops feeding on the first error or cancellation.
		// VM launches are themselves an injection point (worker death),
		// retried under the plan; a fleet that cannot be built at all
		// degrades to the serial path below — which machine runs a flip
		// never changes its verdict.
		type flipVM struct {
			enf  *sched.Enforcer
			init *kvm.Snapshot
			fc   *flipCache // this diagnoser's private prefix cache
		}
		var wmMu sync.Mutex
		err := runWorkers(ctx, opts.Tracer, "ca-flip", opts.Workers, len(execOrder),
			func(int) (*flipVM, error) {
				var vm *flipVM
				err := faultinject.Do(ctx, opts.Fault, opts.Retry, func(context.Context, int) error {
					if err := opts.Fault.Check(faultinject.KindWorkerDeath, "ca.worker-vm", opts.Fault.Seq(), 0); err != nil {
						return err
					}
					wm, err := kvm.New(m.Prog())
					if err != nil {
						return err
					}
					wm.SetFaultPlan(opts.Fault)
					vm = &flipVM{enf: sched.NewEnforcer(wm), init: wm.Snapshot()}
					if opts.Prefix.enabled() {
						vm.fc = newFlipCache(wm, vm.init, failSeq, opts.Prefix, opts.Fault, &ps)
					}
					wmMu.Lock()
					workerMachines = append(workerMachines, wm)
					wmMu.Unlock()
					return nil
				})
				return vm, err
			},
			func(ctx context.Context, vm *flipVM, worker, pos int) error {
				idx := execOrder[pos]
				if done[idx] {
					// Settled by the restored checkpoint before the
					// pool started.
					return nil
				}
				return timeFlip(worker, idx, func() error {
					tr, err := testRace(ctx, vm.enf, vm.init, vm.fc, idx, order[idx])
					if err != nil {
						return err
					}
					executed.Add(1)
					settle(idx, tr)
					return nil
				})
			})
		if err != nil {
			if !faultinject.Is(err) || ctx.Err() != nil {
				return nil, err
			}
			// The fleet died; the pool has joined, so done[] is settled.
			if err := serialFlips(); err != nil {
				return nil, err
			}
		}
	} else if err := serialFlips(); err != nil {
		return nil, err
	}
	d.Stats.Schedules += int(executed.Load())
	d.Stats.FlipsExecuted = int(executed.Load())

	// Ambiguity: a surrounding race whose flip avoids the failure cannot
	// be attributed when its nested race is itself a root cause — flipping
	// the surrounding race necessarily flipped the nested one too.
	for i := range d.Tested {
		p := &d.Tested[i]
		if p.Verdict != VerdictRootCause {
			continue
		}
		for j := range d.Tested {
			q := &d.Tested[j]
			if i == j || q.Verdict != VerdictRootCause {
				continue
			}
			if surrounds(p.Race, q.Race) {
				p.Verdict = VerdictAmbiguous
			}
		}
	}

	// Commit flip spans now that the verdicts (including the ambiguity
	// pass) are final; test order and verdicts are deterministic, so the
	// canonical flip sequence is too.
	for i := range d.Tested {
		if flipSpans == nil {
			break
		}
		tr := &d.Tested[i]
		opts.Tracer.Emit(obs.Event{
			Cat: "ca", Name: "flip", Track: int64(i) + 1,
			Start: flipSpans[i].start, Dur: flipSpans[i].dur,
			Args: []obs.Arg{
				{Key: "idx", Val: int64(i)},
				{Key: "verdict", Val: int64(tr.Verdict)},
				{Key: "realized", Val: b2i(tr.FlipRealized)},
			},
			Info: []obs.Arg{{Key: "worker", Val: int64(flipSpans[i].worker)}},
		})
	}

	for _, tr := range d.Tested {
		switch tr.Verdict {
		case VerdictRootCause:
			d.RootCause = append(d.RootCause, tr.Race)
		case VerdictBenign:
			d.Benign = append(d.Benign, tr.Race)
		case VerdictAmbiguous:
			d.Ambiguous = append(d.Ambiguous, tr.Race)
		case VerdictUnknown:
			d.Unknown = append(d.Unknown, tr.Race)
		}
	}
	if n := len(d.Unknown); n > 0 {
		d.Partial = true
		d.PartialReason = fmt.Sprintf("flip_retries_exhausted=%d", n)
	}

	d.Chain = buildChain(d, original)
	d.Stats.ReplayedInstrs = ps.replayed.Load()
	d.Stats.SavedInstrs = ps.saved.Load()
	d.Stats.PrefixHits = int(ps.hits.Load())
	d.Stats.PinnedBytes = ps.pinned.Load()
	d.Stats.ExecutedInstrs = m.Executed() - execBase
	for _, wm := range workerMachines {
		d.Stats.ExecutedInstrs += wm.Executed()
	}
	d.Stats.Elapsed = time.Since(start)
	return d, nil
}

// testOrder sorts the test set backward from the failure point and hoists
// nested races in front of the races that surround them.
func testOrder(races []sched.Race) []sched.Race {
	order := append([]sched.Race(nil), races...)
	sort.Slice(order, func(i, j int) bool { return order[i].LastStep() > order[j].LastStep() })
	// Bubble nested races ahead of their surrounders (the relation is
	// acyclic: surround intervals strictly contain nested intervals).
	for changed := true; changed; {
		changed = false
		for i := 0; i+1 < len(order); i++ {
			if surrounds(order[i], order[i+1]) {
				order[i], order[i+1] = order[i+1], order[i]
				changed = true
			}
		}
	}
	return order
}

// surrounds reports whether race p surrounds race q: flipping p (delaying
// p.First's thread past p.Second) necessarily also flips q, because q's
// First access belongs to the delayed thread inside the displaced span and
// q's Second access lies inside the kept span.
func surrounds(p, q sched.Race) bool {
	if p.Phantom || q.Phantom {
		return false
	}
	return q.First.Thread == p.First.Thread &&
		q.Second.Thread != p.First.Thread &&
		p.FirstStep < q.FirstStep && q.FirstStep < p.SecondStep &&
		p.FirstStep < q.SecondStep && q.SecondStep < p.SecondStep
}

// flipRealized reports whether the intended reversed order was observed.
func flipRealized(res *sched.RunResult, r sched.Race) bool {
	if r.Phantom {
		// The phantom's Second access had never executed; realization
		// means it ran at all before First (or First vanished entirely).
		switch sched.RaceOrder(res, r) {
		case -1:
			return true
		}
		return res.Executed(r.Second) && !res.Executed(r.First)
	}
	switch sched.RaceOrder(res, r) {
	case -1:
		return true
	case 0:
		// The pair vanished: the flip steered control flow away from the
		// racing accesses altogether, which also counts as "the original
		// order did not happen".
		return !res.Executed(r.First) || !res.Executed(r.Second)
	}
	return false
}

package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

// TestParallelReproduceMatchesSerial: the parallel search must return the
// exact same reproduction as the serial one — schedule, race set and
// interleaving count — across the whole scenario corpus, and an 8-worker
// analysis of the parallel reproduction must yield a byte-identical
// diagnosis, with the prefix cache on. (Stats.Schedules and Stats.Pruned
// may legitimately differ: parallel units cannot see their in-flight
// siblings' visited states; see TestParallelScheduleCountBound.)
// Scoped to the hand-built subset so factory growth does not swell the
// sweep; the factory itself asserts worker identity on its emissions.
func TestParallelReproduceMatchesSerial(t *testing.T) {
	for _, sc := range scenarios.HandBuilt() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			prog := sc.MustProgram()
			opts := LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: sc.WantInstr(),
				LeakCheck: sc.NeedsLeakCheck(),
			}

			mS := mustMachine(t, prog)
			serial, err := Reproduce(mS, opts)
			if err != nil {
				if IsNotReproduced(err) {
					t.Skipf("scenario does not reproduce serially: %v", err)
				}
				t.Fatalf("serial Reproduce: %v", err)
			}
			serialD, err := Analyze(mS, serial, AnalysisOptions{})
			if err != nil {
				t.Fatalf("serial Analyze: %v", err)
			}

			for _, workers := range []int{2, 8} {
				popts := opts
				popts.Workers = workers
				mP := mustMachine(t, prog)
				par, err := Reproduce(mP, popts)
				if err != nil {
					t.Fatalf("workers=%d Reproduce: %v", workers, err)
				}
				if !reflect.DeepEqual(par.Schedule, serial.Schedule) {
					t.Errorf("workers=%d schedule = %v\nwant      %v", workers, par.Schedule, serial.Schedule)
				}
				if !reflect.DeepEqual(par.Races, serial.Races) {
					t.Errorf("workers=%d races = %v, want %v", workers, par.Races, serial.Races)
				}
				if par.Stats.Interleavings != serial.Stats.Interleavings {
					t.Errorf("workers=%d interleavings = %d, want %d",
						workers, par.Stats.Interleavings, serial.Stats.Interleavings)
				}
				parD, err := Analyze(mP, par, AnalysisOptions{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d Analyze: %v", workers, err)
				}
				if cs, cp := serialD.Chain.Format(prog), parD.Chain.Format(prog); cs != cp {
					t.Errorf("workers=%d chain = %q, want %q", workers, cp, cs)
				}
				if len(parD.Tested) != len(serialD.Tested) {
					t.Fatalf("workers=%d test-set size = %d, want %d", workers, len(parD.Tested), len(serialD.Tested))
				}
				for i := range serialD.Tested {
					if serialD.Tested[i].Verdict != parD.Tested[i].Verdict {
						t.Errorf("workers=%d verdict %d = %v, want %v",
							workers, i, parD.Tested[i].Verdict, serialD.Tested[i].Verdict)
					}
				}
			}
		})
	}
}

// TestParallelScheduleCountBound documents and pins the schedule-count
// drift between serial and parallel searches on syz08-j1939-refcount
// (the corpus's widest search). The counts differ by design: a serial
// search prunes on every earlier unit's visited-state claims, while a
// parallel task may prune only on claims that deterministically exist at
// its point of the serial visit order — probe claims of its own group or
// lower. Sibling tasks' claims land in timing-dependent order and must
// be ignored, so the parallel search re-executes the few schedules a
// serial search would have pruned against an earlier task. Both counts
// are deterministic: the serial count is fixed, the parallel count is
// the same value >= it for every worker count, and the prefix cache
// changes neither (it skips replay work, not schedules).
func TestParallelScheduleCountBound(t *testing.T) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	prog := sc.MustProgram()
	const serialWant, parallelWant = 21, 23
	for _, disable := range []bool{false, true} {
		opts := LIFSOptions{
			WantKind:  sc.WantKind,
			WantInstr: sc.WantInstr(),
			LeakCheck: sc.NeedsLeakCheck(),
			Prefix:    PrefixConfig{Disable: disable},
		}
		serial, err := Reproduce(mustMachine(t, prog), opts)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Stats.Schedules != serialWant {
			t.Errorf("cache-disable=%v serial schedules = %d, want %d", disable, serial.Stats.Schedules, serialWant)
		}
		for _, workers := range []int{2, 4, 8} {
			popts := opts
			popts.Workers = workers
			par, err := Reproduce(mustMachine(t, prog), popts)
			if err != nil {
				t.Fatal(err)
			}
			if par.Stats.Schedules != parallelWant {
				t.Errorf("cache-disable=%v workers=%d schedules = %d, want %d",
					disable, workers, par.Stats.Schedules, parallelWant)
			}
			if par.Stats.Schedules < serial.Stats.Schedules {
				t.Errorf("workers=%d executed fewer schedules (%d) than serial (%d); the bound is serial <= parallel",
					workers, par.Stats.Schedules, serial.Stats.Schedules)
			}
		}
	}
}

// TestParallelReproduceCancel: canceling the context aborts a parallel
// search promptly with ctx.Err(), with every worker VM wound down.
func TestParallelReproduceCancel(t *testing.T) {
	m, err := kvm.New(slowSearchProg(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = ReproduceContext(ctx, m, LIFSOptions{
		WantKind:     sanitizer.KindNullDeref, // never happens: search runs until stopped
		MaxSchedules: 1 << 30,
		StepBudget:   1 << 20,
		Workers:      8,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestParallelReproduceRepeatable: repeated parallel runs are themselves
// deterministic (the winner rule is timing-independent).
func TestParallelReproduceRepeatable(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	opts := LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		Workers:   4,
	}
	first, err := Reproduce(mustMachine(t, prog), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Reproduce(mustMachine(t, prog), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Schedule, first.Schedule) {
			t.Fatalf("run %d schedule = %v, want %v", i, again.Schedule, first.Schedule)
		}
		if !reflect.DeepEqual(again.Races, first.Races) {
			t.Fatalf("run %d races differ", i)
		}
	}
}

package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

// TestParallelReproduceMatchesSerial: the parallel search must return the
// exact same reproduction as the serial one — schedule, race set and
// interleaving count — across the whole scenario corpus. (Stats.Schedules
// and Stats.Pruned may legitimately differ: parallel units cannot see
// their in-flight siblings' visited states.)
func TestParallelReproduceMatchesSerial(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			prog := sc.MustProgram()
			opts := LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: sc.WantInstr(),
				LeakCheck: sc.NeedsLeakCheck(),
			}

			serial, err := Reproduce(mustMachine(t, prog), opts)
			if err != nil {
				if IsNotReproduced(err) {
					t.Skipf("scenario does not reproduce serially: %v", err)
				}
				t.Fatalf("serial Reproduce: %v", err)
			}

			for _, workers := range []int{2, 8} {
				popts := opts
				popts.Workers = workers
				par, err := Reproduce(mustMachine(t, prog), popts)
				if err != nil {
					t.Fatalf("workers=%d Reproduce: %v", workers, err)
				}
				if !reflect.DeepEqual(par.Schedule, serial.Schedule) {
					t.Errorf("workers=%d schedule = %v\nwant      %v", workers, par.Schedule, serial.Schedule)
				}
				if !reflect.DeepEqual(par.Races, serial.Races) {
					t.Errorf("workers=%d races = %v, want %v", workers, par.Races, serial.Races)
				}
				if par.Stats.Interleavings != serial.Stats.Interleavings {
					t.Errorf("workers=%d interleavings = %d, want %d",
						workers, par.Stats.Interleavings, serial.Stats.Interleavings)
				}
			}
		})
	}
}

// TestParallelReproduceCancel: canceling the context aborts a parallel
// search promptly with ctx.Err(), with every worker VM wound down.
func TestParallelReproduceCancel(t *testing.T) {
	m, err := kvm.New(slowSearchProg(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = ReproduceContext(ctx, m, LIFSOptions{
		WantKind:     sanitizer.KindNullDeref, // never happens: search runs until stopped
		MaxSchedules: 1 << 30,
		StepBudget:   1 << 20,
		Workers:      8,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestParallelReproduceRepeatable: repeated parallel runs are themselves
// deterministic (the winner rule is timing-independent).
func TestParallelReproduceRepeatable(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	opts := LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		Workers:   4,
	}
	first, err := Reproduce(mustMachine(t, prog), opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := Reproduce(mustMachine(t, prog), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again.Schedule, first.Schedule) {
			t.Fatalf("run %d schedule = %v, want %v", i, again.Schedule, first.Schedule)
		}
		if !reflect.DeepEqual(again.Races, first.Races) {
			t.Fatalf("run %d races differ", i)
		}
	}
}

package core

import (
	"testing"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// diagnose runs the full LIFS + Causality Analysis pipeline on a scenario.
func diagnose(t *testing.T, name string, lifs LIFSOptions) *Diagnosis {
	t.Helper()
	sc, ok := scenarios.ByName(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	prog := sc.MustProgram()
	m := mustMachine(t, prog)
	lifs.WantKind = sc.WantKind
	lifs.WantInstr = sc.WantInstr()
	rep, err := Reproduce(m, lifs)
	if err != nil {
		t.Fatalf("Reproduce(%s): %v", name, err)
	}
	d, err := Analyze(m, rep, AnalysisOptions{})
	if err != nil {
		t.Fatalf("Analyze(%s): %v", name, err)
	}
	return d
}

// TestFigure1Chain checks the causality chain of the abstract Figure 1
// example: A1 => B1 → B2 => A2 → NULL deref.
func TestFigure1Chain(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	d := diagnose(t, "fig1", LIFSOptions{})
	got := d.Chain.Format(sc.MustProgram())
	if got != sc.WantChain {
		t.Errorf("chain = %q, want %q", got, sc.WantChain)
	}
	if d.Chain.Len() != sc.WantChainLen {
		t.Errorf("chain length = %d, want %d", d.Chain.Len(), sc.WantChainLen)
	}
}

// TestCVE201715649Chain reproduces the paper's Figures 2/3/6: the
// four-race test set, the conjunction of the two multi-variable orders,
// the race-steered edge to B17 => A12 (whose second access never executed
// in the failing run), and the exclusion of the planted benign race.
func TestCVE201715649Chain(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	d := diagnose(t, "cve-2017-15649", LIFSOptions{})

	if d.Failure == nil || d.Failure.Kind != sanitizer.KindBugOn {
		t.Fatalf("failure = %v, want BUG_ON", d.Failure)
	}
	got := d.Chain.Format(prog)
	if got != sc.WantChain {
		t.Errorf("chain = %q\nwant    %q", got, sc.WantChain)
	}
	if d.Chain.Len() != 4 {
		t.Errorf("chain has %d races, want 4", d.Chain.Len())
	}

	// The planted stats race (SA/SB) must be classified benign and must
	// not appear in the chain.
	foundBenignStats := false
	for _, r := range d.Benign {
		n1, n2 := prog.InstrName(r.First.Instr), prog.InstrName(r.Second.Instr)
		if (n1 == "SA" && n2 == "SB") || (n1 == "SB" && n2 == "SA") {
			foundBenignStats = true
		}
	}
	if !foundBenignStats {
		t.Errorf("stats counter race not classified benign; benign set: %v", formatRaces(prog, d.Benign))
	}
	for _, r := range d.Chain.Races() {
		n1, n2 := prog.InstrName(r.First.Instr), prog.InstrName(r.Second.Instr)
		if n1 == "SA" || n1 == "SB" || n2 == "SA" || n2 == "SB" {
			t.Errorf("benign stats race %s => %s leaked into the chain", n1, n2)
		}
	}
	if len(d.Ambiguous) != 0 {
		t.Errorf("unexpected ambiguous races: %v", formatRaces(prog, d.Ambiguous))
	}
}

func formatRaces(prog *kir.Program, races []sched.Race) []string {
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = r.Format(prog)
	}
	return out
}

package core

import (
	"strings"
	"testing"

	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// TestFigure5SearchOrder reproduces the LIFS search-tree behaviour of the
// paper's Figure 5 on the fig5 scenario:
//   - interleaving count 0 explores the serial orders first, and the
//     B-first order does not contain K1 (the race-steered control flow
//     A1 => B1 never happens, so queue_work never runs);
//   - the failure reproduces at interleaving count 1, with the final leaf
//     showing K1 => A3.
func TestFigure5SearchOrder(t *testing.T) {
	sc, _ := scenarios.ByName("fig5")
	prog := sc.MustProgram()
	m := mustMachine(t, prog)
	rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, RecordLeaves: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Leaves) < 3 {
		t.Fatalf("too few leaves: %d", len(rep.Leaves))
	}
	// Leaf 1: A first, serial — includes K1 after B's part.
	l0 := strings.Join(rep.Leaves[0].Labels, " ")
	if !strings.HasPrefix(l0, "A1 A2 A3") {
		t.Errorf("first serial leaf = %q", l0)
	}
	// Some serial leaf starting with B must NOT contain K1 (order 2 in
	// the paper: "does not include K1 due to the race-steered control
	// flow").
	foundBFirstNoK := false
	for _, l := range rep.Leaves {
		s := strings.Join(l.Labels, " ")
		if strings.HasPrefix(s, "B1") && !strings.Contains(s, "K1") {
			foundBFirstNoK = true
		}
	}
	if !foundBFirstNoK {
		t.Error("no B-first leaf without K1 (race-steered control flow not observed)")
	}
	// The failing leaf ends the search, contains K1 before A3.
	last := rep.Leaves[len(rep.Leaves)-1]
	if !last.Failed {
		t.Error("last leaf should be the failure")
	}
	s := strings.Join(last.Labels, " ")
	if !strings.Contains(s, "K1") || strings.Index(s, "K1") > strings.Index(s, "A3") {
		t.Errorf("failing leaf = %q, want K1 before A3", s)
	}
	if rep.Stats.Interleavings != 1 {
		t.Errorf("interleavings = %d, want 1", rep.Stats.Interleavings)
	}
}

// TestFigure7Ambiguity reproduces §3.4's ambiguity case: A1 => B2
// surrounds A2 => B1, both flips avoid the failure, and the nested race
// is a root cause — so the surrounding race must be reported ambiguous.
func TestFigure7Ambiguity(t *testing.T) {
	d := diagnose(t, "fig7", LIFSOptions{})
	prog, _ := scenarios.ByName("fig7")
	p := prog.MustProgram()

	if len(d.Ambiguous) != 1 {
		t.Fatalf("ambiguous = %v", formatRaces(p, d.Ambiguous))
	}
	amb := d.Ambiguous[0]
	if p.InstrName(amb.First.Instr) != "A1" || p.InstrName(amb.Second.Instr) != "B2" {
		t.Errorf("ambiguous race = %s, want A1 => B2", amb.Format(p))
	}
	foundNested := false
	for _, r := range d.RootCause {
		if p.InstrName(r.First.Instr) == "A2" && p.InstrName(r.Second.Instr) == "B1" {
			foundNested = true
		}
	}
	if !foundNested {
		t.Errorf("nested race A2 => B1 not in root cause: %v", formatRaces(p, d.RootCause))
	}
	if !d.Chain.HasAmbiguity() {
		t.Error("chain should carry the ambiguity flag")
	}
	if !strings.Contains(d.Chain.Format(p), "(ambiguous)") {
		t.Errorf("chain rendering misses the flag: %s", d.Chain.Format(p))
	}
}

// TestFigure4Patterns checks that the three complex patterns of Figure 4
// all reproduce and diagnose: (a) two syscalls + kworker, (b) a single
// syscall racing with its own deferred work chain (kworker -> RCU),
// (c) two syscalls over three objects with chained race-steered flows.
func TestFigure4Patterns(t *testing.T) {
	for _, name := range []string{"fig4a", "fig4b", "fig4c"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, _ := scenarios.ByName(name)
			d := diagnose(t, name, LIFSOptions{})
			if d.Failure.Kind != sc.WantKind {
				t.Errorf("failure = %v, want %v", d.Failure.Kind, sc.WantKind)
			}
			if d.Chain.Len() != sc.WantChainLen {
				t.Errorf("chain len = %d, want %d", d.Chain.Len(), sc.WantChainLen)
			}
		})
	}
	// fig4b specifically: the chain's race crosses from the RCU callback
	// (softirq context) back into the originating syscall.
	sc, _ := scenarios.ByName("fig4b")
	prog := sc.MustProgram()
	d := diagnose(t, "fig4b", LIFSOptions{})
	r := d.Chain.Races()[0]
	if !strings.HasPrefix(r.First.Thread, "rcu:") {
		t.Errorf("fig4b chain race First thread = %q, want an RCU context", r.First.Thread)
	}
	_ = prog
}

// TestPhantomRaceDiagnosis: the CVE-2017-15649 test set must contain the
// phantom race B17 => A12 (A12 never executed in the failing run) and it
// must be diagnosed root-cause, exactly like the paper's Figure 6 step 1.
func TestPhantomRaceDiagnosis(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	d := diagnose(t, "cve-2017-15649", LIFSOptions{})
	found := false
	for _, tr := range d.Tested {
		if tr.Race.Phantom {
			found = true
			if prog.InstrName(tr.Race.First.Instr) != "B17" || prog.InstrName(tr.Race.Second.Instr) != "A12" {
				t.Errorf("phantom = %s", tr.Race.Format(prog))
			}
			if tr.Verdict != VerdictRootCause {
				t.Errorf("phantom verdict = %v", tr.Verdict)
			}
			if !tr.FlipRealized {
				t.Error("phantom flip not realized: A12 should have executed before B17")
			}
		}
	}
	if !found {
		t.Fatal("no phantom race in the test set")
	}
}

// TestCriticalSectionFlip: on syz10 (md_ioctl), the mutex-protected check
// races with the unlocked update; flipping it must move the whole
// critical section (§3.4's liveness rule) and classify it root-cause.
func TestCriticalSectionFlip(t *testing.T) {
	sc, _ := scenarios.ByName("syz10-md-ioctl")
	prog := sc.MustProgram()
	d := diagnose(t, "syz10-md-ioctl", LIFSOptions{})
	csTested := false
	for _, tr := range d.Tested {
		// The race whose First access ran under the reconfig mutex.
		if tr.Race.CSLock == 0 && prog.InstrName(tr.Race.First.Instr) != "C1" {
			continue
		}
		if prog.InstrName(tr.Race.First.Instr) == "C1" {
			csTested = true
			if tr.FlipRun.Failed() && tr.FlipRun.Failure.Kind == sanitizer.KindDeadlock {
				t.Error("critical-section flip deadlocked: the §3.4 rule was not applied")
			}
		}
	}
	if !csTested {
		t.Error("no critical-section race was tested")
	}
	if d.Chain.Len() != sc.WantChainLen {
		t.Errorf("chain = %s", d.Chain.Format(prog))
	}
}

// TestLIFSPruningReducesSchedules: the DPOR-style state pruning must
// fire on a program with independent (commuting) accesses.
func TestLIFSPruningReducesSchedules(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	m := mustMachine(t, sc.MustProgram())
	rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Pruned == 0 {
		t.Error("no states pruned on a 2-interleaving search")
	}
}

// TestDiagnosisDeterminism: two full pipeline runs produce identical
// chains and statistics — everything is deterministic by construction.
func TestDiagnosisDeterminism(t *testing.T) {
	for _, name := range []string{"cve-2017-15649", "syz08-j1939-refcount", "fig5"} {
		sc, _ := scenarios.ByName(name)
		prog := sc.MustProgram()
		run := func() (string, int, int) {
			m := mustMachine(t, prog)
			rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
			if err != nil {
				t.Fatal(err)
			}
			d, err := Analyze(m, rep, AnalysisOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return d.Chain.Format(prog), rep.Stats.Schedules, d.Stats.Schedules
		}
		c1, l1, a1 := run()
		c2, l2, a2 := run()
		if c1 != c2 || l1 != l2 || a1 != a2 {
			t.Errorf("%s not deterministic: (%q,%d,%d) vs (%q,%d,%d)", name, c1, l1, a1, c2, l2, a2)
		}
	}
}

// TestParallelAnalysisMatchesSerial: Workers > 1 must produce the same
// verdicts and chain as the serial analysis.
func TestParallelAnalysisMatchesSerial(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()

	m1 := mustMachine(t, prog)
	rep1, err := Reproduce(m1, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Analyze(m1, rep1, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}

	m2 := mustMachine(t, prog)
	rep2, err := Reproduce(m2, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Analyze(m2, rep2, AnalysisOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}

	if serial.Chain.Format(prog) != parallel.Chain.Format(prog) {
		t.Errorf("chains differ: %q vs %q", serial.Chain.Format(prog), parallel.Chain.Format(prog))
	}
	if len(serial.Tested) != len(parallel.Tested) {
		t.Fatalf("test set sizes differ")
	}
	for i := range serial.Tested {
		if serial.Tested[i].Verdict != parallel.Tested[i].Verdict {
			t.Errorf("verdict %d differs: %v vs %v", i, serial.Tested[i].Verdict, parallel.Tested[i].Verdict)
		}
	}
}

// TestReproduceRespectsWantInstr: on the CVE-2017-15649 program, which
// harbours two distinct BUG_ON failures (the fanout_unlink assertion and
// the global_list double insertion), LIFS must reproduce the one named in
// the crash report.
func TestReproduceRespectsWantInstr(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()

	// Unconstrained: the list-corruption failure is cheaper (1
	// interleaving) and is found first.
	m := mustMachine(t, prog)
	rep, err := Reproduce(m, LIFSOptions{WantKind: sanitizer.KindBugOn})
	if err != nil {
		t.Fatal(err)
	}
	a12, _ := prog.ByLabel("A12")
	b17bug, _ := prog.ByLabel("B17bug")
	if rep.Run.Failure.Instr != a12.ID {
		t.Errorf("unconstrained failure at %s, want the double-insertion at A12",
			prog.InstrName(rep.Run.Failure.Instr))
	}

	// Constrained to the crash report's location: the fanout_unlink BUG.
	m2 := mustMachine(t, prog)
	rep2, err := Reproduce(m2, LIFSOptions{WantKind: sanitizer.KindBugOn, WantInstr: b17bug.ID})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Run.Failure.Instr != b17bug.ID {
		t.Errorf("constrained failure at %s", prog.InstrName(rep2.Run.Failure.Instr))
	}
}

// TestMemoryLeakDiagnosis: the seccomp leak only manifests through the
// end-of-run leak oracle; the chain still excludes the benign races.
func TestMemoryLeakDiagnosis(t *testing.T) {
	sc, _ := scenarios.ByName("syz09-seccomp-leak")
	prog := sc.MustProgram()
	m := mustMachine(t, prog)
	rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, LeakCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Run.Failure.Kind != sanitizer.KindMemoryLeak {
		t.Fatalf("failure = %v", rep.Run.Failure)
	}
	d, err := Analyze(m, rep, AnalysisOptions{LeakCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Chain.Len() != sc.WantChainLen {
		t.Errorf("chain = %s", d.Chain.Format(prog))
	}
}

// TestNotReproduced: a race-free program exhausts the search.
func TestNotReproduced(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	single, err := prog.Restrict([]string{"A"})
	if err != nil {
		t.Fatal(err)
	}
	m, err := kvm.New(single)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Reproduce(m, LIFSOptions{})
	if !IsNotReproduced(err) {
		t.Errorf("err = %v, want ErrNotReproduced", err)
	}
}

// TestRacesSortedBackward: the test set comes back ordered by position in
// the failing run, so Causality Analysis can pop from the back.
func TestRacesSortedBackward(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	m := mustMachine(t, sc.MustProgram())
	rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rep.Races); i++ {
		if rep.Races[i].LastStep() < rep.Races[i-1].LastStep() {
			t.Errorf("races out of order at %d", i)
		}
	}
	_ = sched.Race{}
}

package core

import (
	"testing"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

// guideFor derives the report guide a crash report would yield for a
// blind reproduction: the last race before the failure as the suspect
// pair, with the write flags taken from the recorded accesses.
func guideFor(rep *Reproduction) *Guide {
	if len(rep.Races) == 0 {
		return &Guide{}
	}
	r := rep.Races[len(rep.Races)-1]
	return &Guide{Suspects: []SuspectAccess{
		{Instr: r.First.Instr, Thread: r.First.Thread, Addr: r.Addr,
			Write: rep.Accesses.Writes(r.First, r.Addr)},
		{Instr: r.Second.Instr, Thread: r.Second.Thread, Addr: r.Addr,
			Write: rep.Accesses.Writes(r.Second, r.Addr)},
	}}
}

func TestGuidedReproduceFigure1(t *testing.T) {
	prog := figure1(t)
	a2d, _ := prog.ByLabel("A2d")
	blindOpts := LIFSOptions{WantKind: sanitizer.KindNullDeref, WantInstr: a2d.ID}

	blind, err := Reproduce(mustMachine(t, prog), blindOpts)
	if err != nil {
		t.Fatalf("blind Reproduce: %v", err)
	}

	guided := blindOpts
	guided.Guide = guideFor(blind)
	rep, err := Reproduce(mustMachine(t, prog), guided)
	if err != nil {
		t.Fatalf("guided Reproduce: %v", err)
	}

	if got, want := rep.Run.FormatSeq(prog, false), blind.Run.FormatSeq(prog, false); got != want {
		t.Errorf("guided sequence = %q, want the blind winner %q", got, want)
	}
	if rep.Stats.Interleavings != blind.Stats.Interleavings {
		t.Errorf("guided interleavings = %d, blind = %d", rep.Stats.Interleavings, blind.Stats.Interleavings)
	}
	if rep.Stats.Schedules >= blind.Stats.Schedules {
		t.Errorf("guided schedules = %d, want strictly fewer than blind %d",
			rep.Stats.Schedules, blind.Stats.Schedules)
	}
	if rep.Stats.GuidePruned == 0 {
		t.Error("guided search pruned nothing")
	}
}

// TestGuidedMatchesBlindOnScenarios checks the winner-preservation and
// strict-schedule-reduction properties on representative corpus scenarios
// of different failure kinds (site failure, BUG_ON, completion-time leak,
// background-thread UAF). The full corpus is gated by aitia-bench
// -check-reports.
func TestGuidedMatchesBlindOnScenarios(t *testing.T) {
	for _, name := range []string{"fig1", "fig5", "syz09-seccomp-leak", "cve-2019-6974"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := scenarios.ByName(name)
			if !ok {
				t.Fatalf("scenario %s missing", name)
			}
			prog := sc.MustProgram()
			blindOpts := LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: sc.WantInstr(),
				LeakCheck: sc.NeedsLeakCheck(),
			}
			blind, err := Reproduce(mustMachine(t, prog), blindOpts)
			if err != nil {
				t.Fatalf("blind Reproduce: %v", err)
			}

			guided := blindOpts
			if guided.WantInstr == kir.NoInstr {
				// A real report always pins the failing location.
				guided.WantInstr = blind.Run.Failure.Instr
			}
			guided.Guide = guideFor(blind)
			rep, err := Reproduce(mustMachine(t, prog), guided)
			if err != nil {
				t.Fatalf("guided Reproduce: %v", err)
			}
			if got, want := rep.Run.FormatSeq(prog, false), blind.Run.FormatSeq(prog, false); got != want {
				t.Errorf("guided sequence = %q, want %q", got, want)
			}
			if rep.Stats.Schedules >= blind.Stats.Schedules {
				t.Errorf("guided schedules = %d, want strictly fewer than blind %d",
					rep.Stats.Schedules, blind.Stats.Schedules)
			}
		})
	}
}

// TestGuidedParallelMatchesSerial: the guide's prune is a pure function
// of machine state, so the parallel guided search returns the serial
// reproduction.
func TestGuidedParallelMatchesSerial(t *testing.T) {
	prog := figure1(t)
	a2d, _ := prog.ByLabel("A2d")
	opts := LIFSOptions{WantKind: sanitizer.KindNullDeref, WantInstr: a2d.ID}
	blind, err := Reproduce(mustMachine(t, prog), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Guide = guideFor(blind)

	serial, err := Reproduce(mustMachine(t, prog), opts)
	if err != nil {
		t.Fatalf("serial guided: %v", err)
	}
	opts.Workers = 4
	par, err := Reproduce(mustMachine(t, prog), opts)
	if err != nil {
		t.Fatalf("parallel guided: %v", err)
	}
	if got, want := par.Run.FormatSeq(prog, false), serial.Run.FormatSeq(prog, false); got != want {
		t.Errorf("parallel guided sequence = %q, serial = %q", got, want)
	}
	if par.Stats.Interleavings != serial.Stats.Interleavings {
		t.Errorf("parallel interleavings = %d, serial = %d", par.Stats.Interleavings, serial.Stats.Interleavings)
	}
}

// TestGuideDegenerate: guides with unresolvable suspects or no usable
// content must not panic or change the result — the search degrades to
// blind.
func TestGuideDegenerate(t *testing.T) {
	prog := figure1(t)
	blind, err := Reproduce(mustMachine(t, prog), LIFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []*Guide{
		{},
		{Suspects: []SuspectAccess{{Instr: kir.InstrID(99999), Thread: "A", Addr: 8, Write: true}}},
		{Suspects: []SuspectAccess{{Instr: kir.NoInstr}}},
	} {
		rep, err := Reproduce(mustMachine(t, prog), LIFSOptions{Guide: g})
		if err != nil {
			t.Fatalf("degenerate guide %+v: %v", g, err)
		}
		if got, want := rep.Run.FormatSeq(prog, false), blind.Run.FormatSeq(prog, false); got != want {
			t.Errorf("degenerate guide %+v sequence = %q, want %q", g, got, want)
		}
	}
}

// TestReachOracle exercises the static reachability oracle directly:
// calls descend, branches fork, ret/fall-off pop the frame, exit kills
// the thread, and spawn sites count as calls.
func TestReachOracle(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("x", 0)
	b.Var("y", 0)

	mn := b.Func("main")
	mn.Call("helper").L("M0")
	mn.Store(kir.G("x"), kir.Imm(1)).L("M1")
	mn.Ret()

	h := b.Func("helper")
	h.Load(kir.R1, kir.G("x")).L("H0")
	h.Beq(kir.R(kir.R1), kir.Imm(0), "skip")
	h.Store(kir.G("y"), kir.Imm(1)).L("HY")
	h.At("skip").Ret()

	d := b.Func("dead_end")
	d.Exit().L("D0")

	w := b.Func("spawner")
	w.QueueWork("helper", kir.Imm(0)).L("W0")
	w.Ret()

	b.Thread("T", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	id := func(label string) kir.InstrID {
		in, ok := prog.ByLabel(label)
		if !ok {
			t.Fatalf("label %s missing", label)
		}
		return in.ID
	}

	r := newReach(prog, id("HY"))
	cases := []struct {
		fn   string
		pc   int
		want bool
	}{
		{"helper", 0, true},  // H0 flows to HY
		{"helper", 2, true},  // at HY itself
		{"helper", 3, false}, // past it (skip: ret)
		{"main", 0, true},    // via the call
		{"main", 1, false},   // call already returned
		{"dead_end", 0, false},
		{"spawner", 0, true}, // spawn site counts as a call
	}
	for _, c := range cases {
		if got := r.pos[c.fn][c.pc]; got != c.want {
			t.Errorf("pos[%s][%d] = %v, want %v", c.fn, c.pc, got, c.want)
		}
	}
	if r.exit["dead_end"][0] {
		t.Error("exit[dead_end][0] = true, but OpExit never pops the frame")
	}
	if !r.exit["helper"][0] {
		t.Error("exit[helper][0] = false, want true (ret reachable)")
	}

	// Stack walks: the inner frame decides unless it can pop.
	if !r.thread([]kvm.Pos{{Fn: "main", PC: 1}, {Fn: "helper", PC: 0}}) {
		t.Error("inner helper@0 should be reachable")
	}
	if r.thread([]kvm.Pos{{Fn: "main", PC: 1}, {Fn: "helper", PC: 3}}) {
		t.Error("helper@3 pops into main@1 which cannot reach HY")
	}
	if !r.thread([]kvm.Pos{{Fn: "main", PC: 0}}) {
		t.Error("main@0 reaches HY via the call")
	}
	if r.thread([]kvm.Pos{{Fn: "main", PC: 1}, {Fn: "dead_end", PC: 0}}) {
		t.Error("dead_end never pops; outer frame must not be consulted")
	}
}

package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"time"

	"aitia/internal/durable"
	"aitia/internal/kir"
	"aitia/internal/sched"
)

// CheckpointConfig arms durable checkpointing of a diagnosis. With it
// set, the LIFS search persists its frontier at every deepening-phase
// boundary (and, serially, every Every schedules within a phase), the
// causality analysis persists every settled flip verdict, and both
// resume from the latest valid snapshot instead of starting over. A
// resumed run is deterministic: it produces the same reproduction,
// verdicts and causality chain as an uninterrupted one, having executed
// only the schedules the crash lost.
type CheckpointConfig struct {
	// Store holds the snapshots. Nil disables checkpointing entirely.
	Store *durable.CheckpointStore
	// Every additionally checkpoints mid-phase after this many schedules
	// (serial searches only — a parallel phase is in flight on many
	// machines at once and only its boundary is a consistent cut).
	// Zero checkpoints at phase boundaries only.
	Every int
	// OnSave, when set, runs after each durable save with the snapshot
	// key. It is a test seam: kill-and-recover tests use it to cut the
	// process at exact checkpoint cadence points.
	OnSave func(key string)
}

func (c *CheckpointConfig) enabled() bool { return c != nil && c.Store != nil }

func (c *CheckpointConfig) saved(key string) {
	if c.OnSave != nil {
		c.OnSave(key)
	}
}

// Checkpoint format versions. Bump when the payload layout changes;
// loads reject other versions and the search falls back to fresh.
const (
	lifsCheckpointVersion = 1
	caCheckpointVersion   = 1
)

// lifsCheckpoint is the serialized frontier of a LIFS search: enough to
// re-enter the deepening loop at (Round, NextPhase) with the access
// knowledge, per-phase stats and (optionally) the partially explored
// phase restored. A Done checkpoint is terminal: the search succeeded
// and the found schedule replays the failure in one run.
type lifsCheckpoint struct {
	InitSig uint64 `json:"init_sig"` // machine state signature at search start
	SavedAt int64  `json:"saved_at"` // unix nanoseconds

	Round             int                  `json:"round"`
	NextPhase         int                  `json:"next_phase"`
	SitesAtRoundStart int                  `json:"sites_at_round_start"`
	Phases            []PhaseStat          `json:"phases,omitempty"`
	Accesses          []sched.AccessExport `json:"accesses,omitempty"`
	Leaves            []LeafTrace          `json:"leaves,omitempty"`
	Partial           *partialPhase        `json:"partial,omitempty"`

	Done          bool            `json:"done,omitempty"`
	Schedule      *sched.Schedule `json:"schedule,omitempty"`
	Interleavings int             `json:"interleavings,omitempty"`
}

// partialPhase captures a serial phase cut at a group boundary: the
// units explored so far (all complete, none accepted — an accepted
// candidate ends the phase), and the visited-state claims they made.
// Restoring both reproduces the exact pruning decisions, so the resumed
// remainder of the phase explores the same tree as the lost run.
type partialPhase struct {
	Budget     int        `json:"budget"`
	GroupsDone int        `json:"groups_done"`
	Units      []unitSnap `json:"units,omitempty"`
	Visited    []visEntry `json:"visited,omitempty"`
}

// unitSnap is the serializable outcome of one completed search unit.
type unitSnap struct {
	Group         int                  `json:"group"`
	Probe         bool                 `json:"probe,omitempty"`
	Choice        int                  `json:"choice"`
	Initial       int                  `json:"initial"`
	Ran           bool                 `json:"ran,omitempty"`
	BranchNatural bool                 `json:"branch_natural,omitempty"`
	BranchChoices int                  `json:"branch_choices,omitempty"`
	Accesses      []sched.AccessExport `json:"accesses,omitempty"`
	Leaves        []LeafTrace          `json:"leaves,omitempty"`
}

// visEntry is one visited-state claim.
type visEntry struct {
	Sig     uint64 `json:"sig"`
	Cur     int    `json:"cur"`
	Budget  int    `json:"budget"`
	Ordinal int    `json:"ordinal"`
}

// lifsCheckpointKey derives the snapshot key for a search: the program
// hash plus a digest of every option that shapes the explored tree.
// MaxSchedules and Workers are deliberately excluded — the former only
// bounds how far a process gets before aborting (the exact situation a
// resume continues from), and serial/parallel searches of the same tree
// return the same reproduction.
func lifsCheckpointKey(prog *kir.Program, opts LIFSOptions) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "mi=%d|sb=%d|leak=%t|kind=%d|instr=%d|leaves=%t|np=%t|nlf=%t|nph=%t",
		opts.MaxInterleavings, opts.StepBudget, opts.LeakCheck,
		opts.WantKind, opts.WantInstr, opts.RecordLeaves,
		opts.NoPruning, opts.NoLeastFirst, opts.NoPhantom)
	if opts.Guide != nil {
		// A guided search explores (seeds and prunes) a different tree:
		// its frontier must never resume a blind search or a search
		// guided by different suspects.
		for _, sa := range opts.Guide.Suspects {
			fmt.Fprintf(h, "|g=%d:%s:%x:%t", sa.Instr, sa.Thread, sa.Addr, sa.Write)
		}
	}
	return fmt.Sprintf("%s.lifs.%016x", prog.Hash(), h.Sum64())
}

// loadLIFSCheckpoint returns the stored frontier for the key, or nil
// when none exists, the snapshot is invalid (wrong version, key, or
// checksum), or it was taken from a different initial machine state.
// Invalid snapshots are indistinguishable from absent ones by design:
// the search falls back to fresh.
func loadLIFSCheckpoint(cfg *CheckpointConfig, key string, initSig uint64) *lifsCheckpoint {
	payload, err := cfg.Store.Load(key, lifsCheckpointVersion)
	if err != nil {
		return nil
	}
	var ck lifsCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil
	}
	if ck.InitSig != initSig {
		return nil
	}
	if ck.Done && ck.Schedule == nil {
		return nil
	}
	return &ck
}

func saveLIFSCheckpoint(cfg *CheckpointConfig, key string, ck *lifsCheckpoint) {
	ck.SavedAt = time.Now().UnixNano()
	payload, err := json.Marshal(ck)
	if err != nil {
		return
	}
	if err := cfg.Store.Save(key, lifsCheckpointVersion, payload); err != nil {
		return
	}
	cfg.saved(key)
}

// exportVisited dumps the visited set's claims deterministically enough
// for a resume (replaying claims is order-independent: each key holds
// its first claimant, and a serial phase never double-claims).
func exportVisited(v *visitedSet) []visEntry {
	var out []visEntry
	for i := range v.shards {
		sh := &v.shards[i]
		sh.mu.RLock()
		for k, ord := range sh.m {
			out = append(out, visEntry{Sig: k.sig, Cur: int(k.cur), Budget: k.budget, Ordinal: ord})
		}
		sh.mu.RUnlock()
	}
	return out
}

// caCheckpoint is the serialized progress of a causality analysis: the
// settled flip verdicts in deterministic test order. Fingerprint guards
// against resuming over a different test set (e.g. a reproduction that
// found a different run).
type caCheckpoint struct {
	Fingerprint string     `json:"fingerprint"`
	SavedAt     int64      `json:"saved_at"`
	Flips       []flipSnap `json:"flips,omitempty"`
}

// flipSnap is one settled flip test: its index in the deterministic
// test order, the pre-ambiguity verdict, and a compressed form of the
// flip run — just the executed (site, accesses) sequence, which is all
// the chain construction (sched.RaceOccurred/RaceOrder, Executed)
// consumes from it.
type flipSnap struct {
	Idx      int        `json:"idx"`
	Verdict  uint8      `json:"verdict"`
	Realized bool       `json:"realized,omitempty"`
	Failed   bool       `json:"failed,omitempty"`
	Skipped  bool       `json:"skipped,omitempty"`
	Kills    []int      `json:"kills,omitempty"`
	Seq      []flipExec `json:"seq,omitempty"`
}

// flipExec is one executed step of a flip run, reduced to its causal
// footprint.
type flipExec struct {
	Thread   string            `json:"t"`
	Instr    kir.InstrID       `json:"i"`
	Accesses []sched.AccessRec `json:"a,omitempty"`
}

// snapFlip compresses a settled flip test for the checkpoint.
func snapFlip(idx int, tr TestedRace) flipSnap {
	fs := flipSnap{
		Idx:      idx,
		Verdict:  uint8(tr.Verdict),
		Realized: tr.FlipRealized,
		Skipped:  tr.PriorSkipped,
		Kills:    tr.PriorKills,
	}
	if tr.FlipRun != nil {
		fs.Failed = tr.FlipRun.Failed()
		for _, e := range tr.FlipRun.Seq {
			fs.Seq = append(fs.Seq, flipExec{
				Thread:   e.Name,
				Instr:    e.Instr.ID,
				Accesses: e.Accesses,
			})
		}
	}
	return fs
}

// restoreFlip rebuilds a TestedRace from its snapshot. The synthetic
// run result carries exactly the fields chain construction reads: the
// ordered executed sites and their accesses. (Enforcement metadata and
// full instruction bodies are not reconstructed; reports rendered from
// a resumed diagnosis fall back to site identities.)
func restoreFlip(r sched.Race, fs flipSnap) TestedRace {
	tr := TestedRace{
		Race:         r,
		Verdict:      Verdict(fs.Verdict),
		FlipRealized: fs.Realized,
	}
	if fs.Skipped {
		// Settled by the learned prior without a run; restores to the
		// same shape a fresh skip settles to (nil FlipRun, and for a
		// skipped chain member, the prior's kill row).
		tr.PriorSkipped = true
		tr.PriorKills = fs.Kills
		return tr
	}
	if Verdict(fs.Verdict) == VerdictUnknown {
		return tr
	}
	run := &sched.RunResult{}
	for step, fe := range fs.Seq {
		run.Seq = append(run.Seq, sched.Exec{
			Step:     step,
			Name:     fe.Thread,
			Instr:    kir.Instr{ID: fe.Instr},
			Accesses: fe.Accesses,
		})
	}
	tr.FlipRun = run
	return tr
}

// caFingerprint identifies one analysis problem: the program, the full
// test set (order and identity of every race), the failing sequence
// length, the options that decide verdicts, and — under a ranker — the
// prior's skip set and the kill rows of skipped chain members. A
// checkpoint whose fingerprint mismatches is ignored; in particular,
// resuming under a prior snapshot that skips a different set of flips
// (or predicts different kill rows) restarts fresh rather than mixing
// the two.
func caFingerprint(progHash string, rep *Reproduction, order []sched.Race, opts AnalysisOptions, skip []bool, priors []FlipPrior) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|seq=%d|sb=%d|leak=%t|ncs=%t|ranked=%t|races=%d",
		progHash, len(rep.Run.Seq), opts.StepBudget, opts.LeakCheck, opts.NoCriticalSections, opts.Ranker != nil, len(order))
	for i, s := range skip {
		if !s {
			continue
		}
		fmt.Fprintf(h, "|sk%d", i)
		if priors != nil && priors[i].SettledRootCause {
			fmt.Fprintf(h, "rc")
			for j, killed := range priors[i].Kills {
				if killed {
					fmt.Fprintf(h, ",%d", j)
				}
			}
		}
	}
	for _, r := range order {
		fmt.Fprintf(h, "|%s/%d=>%s/%d@%x:%d,%d,%t,%x",
			r.First.Thread, r.First.Instr, r.Second.Thread, r.Second.Instr,
			r.Addr, r.FirstStep, r.SecondStep, r.Phantom, r.CSLock)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func caCheckpointKey(progHash, fingerprint string) string {
	return fmt.Sprintf("%s.ca.%s", progHash, fingerprint)
}

// loadCACheckpoint returns the settled flips for the key, or nil when
// absent, invalid, or fingerprinted for a different test set.
func loadCACheckpoint(cfg *CheckpointConfig, key, fingerprint string, testSet int) *caCheckpoint {
	payload, err := cfg.Store.Load(key, caCheckpointVersion)
	if err != nil {
		return nil
	}
	var ck caCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		return nil
	}
	if ck.Fingerprint != fingerprint {
		return nil
	}
	for _, fs := range ck.Flips {
		if fs.Idx < 0 || fs.Idx >= testSet {
			return nil
		}
	}
	return &ck
}

func saveCACheckpoint(cfg *CheckpointConfig, key string, ck *caCheckpoint) {
	ck.SavedAt = time.Now().UnixNano()
	payload, err := json.Marshal(ck)
	if err != nil {
		return
	}
	if err := cfg.Store.Save(key, caCheckpointVersion, payload); err != nil {
		return
	}
	cfg.saved(key)
}

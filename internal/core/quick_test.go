package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sched"
)

// genProgram builds a random racy kernel program: 2-3 threads performing
// loads, stores, guarded dereferences, list operations, frees of a shared
// heap object, and occasional queue_work spawns — the op mix that the
// scenario corpus uses, with random structure.
func genProgram(seed int64) *kir.Program {
	rng := rand.New(rand.NewSource(seed))
	b := kir.NewBuilder()
	globals := []string{"g0", "g1", "g2"}
	for _, g := range globals {
		b.Var(g, int64(rng.Intn(2)))
	}
	b.HeapObj("shared_obj", 2, 1)
	b.Var("alist", 0)

	nThreads := 2 + rng.Intn(2)
	hasWorker := rng.Intn(2) == 0
	if hasWorker {
		w := b.Func("bg_work")
		w.Load(kir.R1, kir.G("shared_obj"))
		if rng.Intn(2) == 0 {
			w.Beq(kir.R(kir.R1), kir.Imm(0), "out")
			w.Store(kir.Ind(kir.R1, 1), kir.Imm(9))
			w.At("out").Ret()
		} else {
			w.Free(kir.R(kir.R1))
			w.Store(kir.G("shared_obj"), kir.Imm(0))
			w.Ret()
		}
	}

	b.Var("mu", 0)
	for t := 0; t < nThreads; t++ {
		f := b.Func(fmt.Sprintf("fn%d", t))
		n := 3 + rng.Intn(6)
		hasOut := false
		for i := 0; i < n; i++ {
			g := globals[rng.Intn(len(globals))]
			if rng.Intn(6) == 0 {
				// A small critical section: exercises lock blocking,
				// diversion, and the §3.4 critical-section flip rule.
				f.Lock(kir.G("mu"))
				f.Load(kir.R4, kir.G(g))
				f.Add(kir.R4, kir.Imm(1))
				f.Store(kir.G(g), kir.R(kir.R4))
				f.Unlock(kir.G("mu"))
				continue
			}
			switch rng.Intn(8) {
			case 0:
				f.Store(kir.G(g), kir.Imm(int64(rng.Intn(3))))
			case 1:
				f.Load(kir.R1, kir.G(g))
			case 2:
				f.Load(kir.R1, kir.G(g))
				f.Beq(kir.R(kir.R1), kir.Imm(0), "out")
				hasOut = true
			case 3:
				f.Load(kir.R2, kir.G("shared_obj"))
				f.Beq(kir.R(kir.R2), kir.Imm(0), "out")
				f.Store(kir.Ind(kir.R2, 1), kir.Imm(int64(i)))
				hasOut = true
			case 4:
				f.Load(kir.R2, kir.G("shared_obj"))
				f.Beq(kir.R(kir.R2), kir.Imm(0), "out")
				f.Store(kir.G("shared_obj"), kir.Imm(0))
				f.Free(kir.R(kir.R2))
				hasOut = true
			case 5:
				f.ListAdd(kir.G("alist"), kir.Imm(int64(rng.Intn(2))))
			case 6:
				f.ListDel(kir.G("alist"), kir.Imm(int64(rng.Intn(2))))
			case 7:
				if hasWorker {
					f.QueueWork("bg_work", kir.Imm(0))
				} else {
					f.Load(kir.R3, kir.G(g))
				}
			}
		}
		f.Ret()
		if hasOut {
			f.At("out").Ret()
		}
		b.Thread(fmt.Sprintf("T%d", t), fmt.Sprintf("fn%d", t))
	}
	prog, err := b.Build()
	if err != nil {
		panic(err) // generator bug, not a property failure
	}
	return prog
}

// TestPipelineInvariantsOnRandomPrograms runs the full pipeline on random
// racy programs and checks the structural invariants of the diagnosis:
//
//   - Reproduce either reports ErrNotReproduced or returns a failing run
//     whose schedule replays deterministically (validated internally).
//   - Every chain race is a tested race with a root-cause or ambiguous
//     verdict; no benign race appears in the chain.
//   - Chain size never exceeds the test-set size.
//   - The whole diagnosis is deterministic: a second run produces the
//     same chain.
func TestPipelineInvariantsOnRandomPrograms(t *testing.T) {
	reproduced, searched := 0, 0
	f := func(seed int64) bool {
		prog := genProgram(seed)
		run := func() (string, bool) {
			m, err := kvm.New(prog)
			if err != nil {
				t.Logf("seed %d: machine: %v", seed, err)
				return "", false
			}
			rep, err := Reproduce(m, LIFSOptions{MaxSchedules: 30000})
			if IsNotReproduced(err) {
				return "", true
			}
			if err != nil {
				t.Logf("seed %d: reproduce: %v", seed, err)
				return "", false
			}
			d, err := Analyze(m, rep, AnalysisOptions{})
			if err != nil {
				t.Logf("seed %d: analyze: %v", seed, err)
				return "", false
			}
			// Invariants.
			verdictOf := make(map[sched.RaceKey]Verdict, len(d.Tested))
			for _, tr := range d.Tested {
				verdictOf[tr.Race.Key()] = tr.Verdict
			}
			for _, r := range d.Chain.Races() {
				v, ok := verdictOf[r.Key()]
				if !ok || v == VerdictBenign {
					t.Logf("seed %d: chain race %s has verdict %v", seed, r.Format(prog), v)
					return "", false
				}
			}
			if d.Chain.Len() > d.Stats.TestSet {
				t.Logf("seed %d: chain %d > test set %d", seed, d.Chain.Len(), d.Stats.TestSet)
				return "", false
			}
			if len(d.RootCause)+len(d.Benign)+len(d.Ambiguous) != len(d.Tested) {
				t.Logf("seed %d: verdict partition broken", seed)
				return "", false
			}
			return d.Chain.Format(prog), true
		}
		searched++
		c1, ok1 := run()
		if !ok1 {
			return false
		}
		c2, ok2 := run()
		if !ok2 || c1 != c2 {
			t.Logf("seed %d: nondeterministic chains %q vs %q", seed, c1, c2)
			return false
		}
		if c1 != "" {
			reproduced++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
	t.Logf("random programs: %d searched, %d produced a diagnosable failure", searched, reproduced)
	if reproduced == 0 {
		t.Error("generator produced no failing programs; property vacuous")
	}
}

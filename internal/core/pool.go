package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// runWorkers fans jobs 0..n-1 out to a pool of up to workers goroutines.
// Each worker builds its own state once via newState (both callers use
// this for the worker's private kernel VM) and then processes jobs with
// run. It is the one pool shared by the parallel flip tests of Causality
// Analysis and the parallel LIFS search.
//
// Cancellation and errors stop the pool promptly: the feeder re-checks the
// pool context before handing out each job, so a canceled context or a
// failing worker cuts the run short instead of draining the whole job
// list. runWorkers returns the first newState/run error; if cancellation
// alone cut the run short it returns ctx.Err(). nil means every job ran.
func runWorkers[S any](ctx context.Context, workers, n int, newState func() (S, error), run func(ctx context.Context, st S, job int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		firstErr error
		done     atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := newState()
			if err != nil {
				fail(err)
				for range jobs { // keep draining so the feeder never blocks
				}
				return
			}
			for job := range jobs {
				if cctx.Err() != nil {
					continue // unwinding: drop the remaining jobs
				}
				if err := run(cctx, st, job); err != nil {
					fail(err)
					continue
				}
				done.Add(1)
			}
		}()
	}

feed:
	for job := 0; job < n; job++ {
		if cctx.Err() != nil {
			break
		}
		select {
		case jobs <- job:
		case <-cctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if int(done.Load()) < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: worker pool completed %d of %d jobs", done.Load(), n)
	}
	return nil
}

package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aitia/internal/obs"
)

// runWorkers fans jobs 0..n-1 out to a pool of up to workers goroutines.
// Each worker builds its own state once via newState (both callers use
// this for the worker's private kernel VM) and then processes jobs with
// run. It is the one pool shared by the parallel flip tests of Causality
// Analysis and the parallel LIFS search.
//
// Dispatch is traced when tr is enabled: every executed job becomes one
// span in the "pool" category named name, on the worker slot's track, so
// the trace renders a per-worker timeline of the fleet. Which jobs a
// slot executes (and whether a superseded job executes at all) depends
// on runtime scheduling, so pool spans are Volatile — they carry timing
// and placement, and are excluded from the canonical event sequence.
// Spans are committed in job order after the pool drains, never in
// completion order.
//
// Cancellation and errors stop the pool promptly: the feeder re-checks the
// pool context before handing out each job, so a canceled context or a
// failing worker cuts the run short instead of draining the whole job
// list. runWorkers returns the first newState/run error; if cancellation
// alone cut the run short it returns ctx.Err(). nil means every job ran.
func runWorkers[S any](ctx context.Context, tr *obs.Tracer, name string, workers, n int, newState func(worker int) (S, error), run func(ctx context.Context, st S, worker, job int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type jobSpan struct {
		start, dur time.Duration
		worker     int
		ran        bool
	}
	var spans []jobSpan
	if tr.Enabled() {
		spans = make([]jobSpan, n)
	}

	var (
		mu       sync.Mutex
		firstErr error
		done     atomic.Int64
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		cancel()
	}

	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, err := newState(w)
			if err != nil {
				fail(err)
				for range jobs { // keep draining so the feeder never blocks
				}
				return
			}
			for job := range jobs {
				if cctx.Err() != nil {
					continue // unwinding: drop the remaining jobs
				}
				var start time.Duration
				if spans != nil {
					start = tr.Now()
				}
				err := run(cctx, st, w, job)
				if spans != nil {
					spans[job] = jobSpan{start: start, dur: tr.Now() - start, worker: w, ran: true}
				}
				if err != nil {
					fail(err)
					continue
				}
				done.Add(1)
			}
		}()
	}

feed:
	for job := 0; job < n; job++ {
		if cctx.Err() != nil {
			break
		}
		select {
		case jobs <- job:
		case <-cctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	for job, sp := range spans {
		if !sp.ran {
			continue
		}
		tr.Emit(obs.Event{
			Cat: "pool", Name: name, Track: int64(sp.worker),
			Start: sp.start, Dur: sp.dur,
			Info:     []obs.Arg{{Key: "job", Val: int64(job)}, {Key: "worker", Val: int64(sp.worker)}},
			Volatile: true,
		})
	}

	mu.Lock()
	defer mu.Unlock()
	if firstErr != nil {
		return firstErr
	}
	if int(done.Load()) < n {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fmt.Errorf("core: worker pool completed %d of %d jobs", done.Load(), n)
	}
	return nil
}

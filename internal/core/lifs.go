package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/obs"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// LIFSOptions configure a reproduction search.
type LIFSOptions struct {
	// MaxInterleavings bounds the iterative deepening on preemption count.
	// Zero means DefaultMaxInterleavings. The paper observes that one or
	// two interleavings reproduce almost every real failure.
	MaxInterleavings int
	// StepBudget is the per-run watchdog limit (sched.Options.StepBudget).
	StepBudget int
	// MaxSchedules aborts the search after this many executed schedules
	// (zero = DefaultMaxSchedules).
	MaxSchedules int
	// WantKind restricts acceptance to failures of this kind, taken from
	// the crash report. KindNone accepts any failure except watchdogs.
	WantKind sanitizer.Kind
	// WantInstr further restricts acceptance to failures at this
	// instruction (the crash report's failing location). NoInstr matches
	// any location.
	WantInstr kir.InstrID
	// LeakCheck enables the memory-leak oracle at run completion (needed
	// to reproduce leak failures, which manifest only at the end).
	LeakCheck bool
	// RecordLeaves retains a per-leaf search trace (used to regenerate the
	// paper's Figure 5 search tree).
	RecordLeaves bool
	// Workers shards each iterative-deepening phase's top-level branches
	// (initial-thread choice × first preemption or natural-switch decision)
	// across this many goroutines, each driving its own kvm.Machine. Zero
	// or one searches serially. Parallel and serial searches return the
	// same reproduction (schedule, races and interleaving count); only
	// Stats.Schedules/Pruned may differ, because parallel units cannot
	// share visited states with in-flight siblings. Requires the machine
	// to be in its initial state.
	Workers int
	// Tracer collects execution spans (per deepening phase, per search
	// unit, per pool dispatch). Nil disables tracing at zero cost. The
	// canonical event sequence is deterministic across worker counts;
	// see internal/obs.
	Tracer *obs.Tracer
	// Fault arms deterministic fault injection on the search
	// infrastructure (the final replay's restore and enforcement, and
	// worker-VM launches). Nil disables it at zero cost. Injection never
	// happens inside the exploration hot path — restore order there
	// differs across worker counts, and the plan must fire identically
	// for serial and parallel searches.
	Fault *faultinject.Plan
	// Retry bounds the re-execution of faulted operations; zero-value
	// knobs mean faultinject.DefaultRetry.
	Retry faultinject.RetryPolicy
	// Guide switches the search into constrained, report-driven mode:
	// the crash report's suspect accesses are seeded as conflict points
	// and branches that can no longer reproduce the reported failure are
	// pruned. Nil searches blind. See Guide.
	Guide *Guide
	// Dispatch routes a phase's parallel branch units to a fleet of
	// remote executors instead of the local worker pool. Branch
	// exploration is a pure function of the dispatched batch, so a
	// fleet-executed phase merges byte-identical results; branches the
	// dispatcher does not return (lost node, expired lease, partition)
	// are swept up serially on the main machine. Nil keeps the search
	// local. Ignored under Guide (guided pruning state does not travel).
	Dispatch BranchDispatcher
	// Checkpoint arms durable search checkpoints: the frontier is saved
	// at every deepening-phase boundary (and, serially, every
	// CheckpointConfig.Every schedules), and the search resumes from the
	// latest valid snapshot, producing the same reproduction as an
	// uninterrupted run. Nil disables checkpointing at zero cost.
	// Ignored under NoLeastFirst (the ablation has no phase structure
	// worth cutting at).
	Checkpoint *CheckpointConfig
	// Prefix configures the incremental-replay prefix cache: each
	// group's branch state is pinned as a copy-on-write snapshot so
	// task units resume from it instead of replaying the group prefix
	// from instruction 0. The zero value enables the cache with default
	// knobs; the explored tree, the reproduction and Stats.Schedules
	// are identical with the cache on or off. See PrefixConfig.
	Prefix PrefixConfig

	// Ablation switches (all default off, i.e. the paper's design):

	// NoPruning disables the DPOR-style equivalent-state pruning.
	NoPruning bool
	// NoLeastFirst disables the least-interleaving-first iterative
	// deepening and searches directly at MaxInterleavings.
	NoLeastFirst bool
	// NoPhantom drops races whose second access never executed in the
	// failing run from the test set (e.g. the paper's B17 => A12).
	NoPhantom bool
}

// Default search limits.
const (
	DefaultMaxInterleavings = 3
	DefaultMaxSchedules     = 200000
)

// PhaseStat summarizes one iterative-deepening phase of the search.
type PhaseStat struct {
	Budget    int           // preemption budget of the phase
	Schedules int           // complete runs executed during it
	Elapsed   time.Duration // wall-clock phase time
}

// SearchStats summarize a LIFS search.
type SearchStats struct {
	// Schedules counts the complete runs executed by THIS process
	// (checkpoint-resumed work is not re-counted). The count is
	// deterministic for a given worker count but bounded, not equal,
	// across worker counts: a serial search prunes on every earlier
	// unit's visited-state claims, while a parallel task may consult
	// only claims that deterministically exist at its point of the
	// serial visit order (probe claims of its group or lower) — sibling
	// tasks' claims land in timing-dependent order and are ignored. A
	// parallel search therefore executes the same value >= the serial
	// count at every worker count; the prefix cache changes neither
	// (it skips replay work, never schedules). Pinned by
	// TestParallelScheduleCountBound.
	Schedules     int
	Interleavings int           // preemption count at which the failure reproduced
	Pruned        int           // branches pruned as equivalent states
	GuidePruned   int           // branches pruned by report-guided reachability (LIFSOptions.Guide)
	SnapshotBytes uint64        // bytes copied by copy-on-write checkpointing
	Elapsed       time.Duration // wall-clock search time
	Phases        []PhaseStat   // per-phase schedule throughput (includes checkpointed phases)
	// Incremental-replay prefix cache (LIFSOptions.Prefix):
	ExecutedInstrs uint64 // instructions executed across all machines, replays included
	ReplayedInstrs uint64 // instructions spent re-executing already-known prefixes
	SavedInstrs    uint64 // prefix instructions skipped by restoring pinned snapshots
	PrefixHits     int    // runs started from a pinned prefix snapshot
	PinnedBytes    uint64 // peak bytes pinned by live prefix snapshots
	// Resumed reports that the search continued from a durable
	// checkpoint; CheckpointAge is how old that snapshot was.
	Resumed       bool
	CheckpointAge time.Duration
}

// LeafTrace records one complete run of the search for introspection.
type LeafTrace struct {
	Labels      []string // labelled instructions in execution order
	Preemptions int      // budget consumed on this path
	Failed      bool
}

// Reproduction is the output of LIFS: the failure-causing instruction
// sequence (as a run result), a schedule that deterministically replays
// it, all data races found in it, and the accumulated access knowledge.
type Reproduction struct {
	Run      *sched.RunResult
	Schedule sched.Schedule
	Races    []sched.Race
	Accesses *sched.AccessMap
	Stats    SearchStats
	Leaves   []LeafTrace // only when LIFSOptions.RecordLeaves

	// seed holds the prefix-cache pins taken along the final replay, so
	// an Analyze on the same machine starts with the failing sequence
	// already cached. Nil when the cache is disabled; see prefixSeed.
	seed *prefixSeed
}

// ErrNotReproduced is returned (wrapped) when the search space is
// exhausted without reproducing an accepted failure.
var ErrNotReproduced = fmt.Errorf("core: failure not reproduced")

// IsNotReproduced reports whether err means the search space was
// exhausted without reproducing the failure (the caller should try the
// next slice, §4.2).
func IsNotReproduced(err error) bool { return errors.Is(err, ErrNotReproduced) }

// Reproduce runs LIFS on the machine's declared threads. The machine is
// left in the failing state of the reproduced run.
func Reproduce(m *kvm.Machine, opts LIFSOptions) (*Reproduction, error) {
	return ReproduceContext(context.Background(), m, opts)
}

// ReproduceContext is Reproduce under a context: cancellation and
// deadlines are checked at search-iteration boundaries, so a canceled
// context aborts the search promptly and the error is ctx.Err().
func ReproduceContext(ctx context.Context, m *kvm.Machine, opts LIFSOptions) (*Reproduction, error) {
	return reproduceContext(ctx, m, opts, true)
}

// reproduceContext carries the allowResume switch: a terminal
// checkpoint whose replay no longer reproduces is deleted and the
// search retried once with resumption disabled.
func reproduceContext(ctx context.Context, m *kvm.Machine, opts LIFSOptions, allowResume bool) (*Reproduction, error) {
	if opts.MaxInterleavings <= 0 {
		opts.MaxInterleavings = DefaultMaxInterleavings
	}
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = DefaultMaxSchedules
	}

	s := &searcher{
		m:    m,
		am:   sched.NewAccessMap(),
		opts: opts,
		ctx:  ctx,
	}
	for _, td := range m.Prog().Threads {
		s.fallback = append(s.fallback, td.Name)
	}
	s.initSig = m.StateSignature()
	s.init = m.Snapshot()

	// Report-guided mode: compile the reachability oracles and seed the
	// suspect accesses into the access knowledge, so the suspect pair is
	// a conflict point — explored in both orders — from the very first
	// phase. Seeding precedes any checkpoint restore; a restored map was
	// exported by a search with the same guide (the checkpoint key covers
	// it) and already contains the seeds.
	if opts.Guide != nil {
		s.guide = newGuideState(m.Prog(), opts)
		for _, sa := range opts.Guide.Suspects {
			if sa.Thread == "" || sa.Addr == 0 {
				continue
			}
			if _, ok := m.Prog().Instr(sa.Instr); !ok {
				continue
			}
			s.am.Record(sched.Site{Thread: sa.Thread, Instr: sa.Instr}, sa.Addr, sa.Write)
		}
	}

	// Checkpointing: derive the key and load the latest valid frontier.
	// An invalid, version-skewed or foreign-state snapshot loads as nil
	// — exactly like no snapshot — and the search runs fresh.
	checkpointing := opts.Checkpoint.enabled() && !opts.NoLeastFirst
	var resume, terminal *lifsCheckpoint
	if checkpointing {
		s.ckKey = lifsCheckpointKey(m.Prog(), opts)
		if allowResume {
			if ck := loadLIFSCheckpoint(opts.Checkpoint, s.ckKey, s.initSig); ck != nil {
				s.stats.Resumed = true
				s.stats.CheckpointAge = time.Since(time.Unix(0, ck.SavedAt))
				if ck.Done {
					terminal = ck
				} else {
					resume = ck
					s.am = sched.ImportAccessMap(ck.Accesses)
					s.leaves = append([]LeafTrace(nil), ck.Leaves...)
					s.stats.Phases = append([]PhaseStat(nil), ck.Phases...)
					if opts.Workers > 1 {
						// A partial phase is a serial cut; a parallel
						// search resumes at the phase boundary and
						// re-runs the phase whole.
						ck.Partial = nil
					}
					s.resume = ck
				}
			}
		}
	}
	start := time.Now()

	// The search root span closes last (after the per-phase, per-unit and
	// replay spans), carrying the deterministic outcome in Args and the
	// worker-count-dependent statistics in Info.
	search := opts.Tracer.Begin("lifs", "search", 0)
	defer func() {
		search.Arg("found", b2i(s.found))
		search.Arg("interleavings", int64(s.stats.Interleavings))
		search.Info("workers", int64(opts.Workers))
		search.Info("schedules", int64(s.stats.Schedules))
		search.Info("pruned", int64(s.stats.Pruned))
		search.Info("snapshot_bytes", int64(s.stats.SnapshotBytes))
		search.Info("prefix_hits", s.prefix.hits.Load())
		search.Info("replayed_instrs", int64(s.prefix.replayed.Load()))
		search.Info("saved_instrs", int64(s.prefix.saved.Load()))
		search.Info("pinned_bytes", int64(s.prefix.pinned.Load()))
		if opts.Fault.Enabled() {
			st := opts.Fault.Stats()
			var fired uint64
			for _, n := range st.Fired {
				fired += n
			}
			search.Info("fault_fired", int64(fired))
			search.Info("fault_retries", int64(st.Retries))
		}
		search.End()
	}()

	// Iterative deepening: interleaving count 0, 1, 2, ... The paper runs
	// the search twice when new conflicting instructions were discovered
	// late (race-steered control flows can hide conflicts from shallow
	// phases); a second round with a warm AccessMap covers them.
	//
	// With a frontier checkpoint the loop re-enters at (Round,
	// NextPhase): completed phases left their merged accesses in the
	// restored map and are never re-executed. After each completed phase
	// (and only then — an exhausted or canceled phase is not a
	// consistent cut) the new frontier is saved.
	var searchErr error
	startRound := 0
	if resume != nil {
		startRound = resume.Round
	}
	if terminal != nil {
		// The search already succeeded in a previous process; skip it
		// and reconstruct the reproduction from one replay below.
		s.found = true
		s.am = sched.ImportAccessMap(terminal.Accesses)
		s.stats.Phases = append([]PhaseStat(nil), terminal.Phases...)
		s.stats.Interleavings = terminal.Interleavings
		s.leaves = append([]LeafTrace(nil), terminal.Leaves...)
	}
rounds:
	for round := startRound; round < 2 && !s.found; round++ {
		sitesBefore := len(s.am.Sites())
		startK := 0
		if resume != nil && round == resume.Round {
			sitesBefore = resume.SitesAtRoundStart
			startK = resume.NextPhase
		}
		s.ckRound, s.ckSites = round, sitesBefore
		if opts.NoLeastFirst {
			// Ablation: a warm-up pass at count 0 discovers the initial
			// conflict set (the search cannot branch without it), then
			// the full-depth search runs directly.
			if searchErr = s.phase(0); searchErr != nil {
				break rounds
			}
			if !s.found {
				if searchErr = s.phase(opts.MaxInterleavings); searchErr != nil {
					break rounds
				}
			}
		} else {
			for k := startK; k <= opts.MaxInterleavings && !s.found; k++ {
				if searchErr = s.phase(k); searchErr != nil {
					break rounds
				}
				if checkpointing && !s.found && !s.exhausted.Load() && s.ctxErr == nil {
					saveLIFSCheckpoint(opts.Checkpoint, s.ckKey, &lifsCheckpoint{
						InitSig:           s.initSig,
						Round:             round,
						NextPhase:         k + 1,
						SitesAtRoundStart: sitesBefore,
						Phases:            s.stats.Phases,
						Accesses:          s.am.Export(),
						Leaves:            s.leaves,
					})
				}
			}
		}
		if s.found || len(s.am.Sites()) == sitesBefore {
			break
		}
	}
	s.stats.Elapsed = time.Since(start)
	s.stats.Schedules = int(s.schedules.Load())
	s.stats.Pruned = int(s.pruned.Load())
	s.stats.GuidePruned = int(s.guidePruned.Load())
	s.stats.SnapshotBytes = m.SnapshotBytes() + s.workerBytes()

	if searchErr != nil {
		m.Restore(s.init)
		return nil, searchErr
	}
	if s.ctxErr != nil {
		m.Restore(s.init)
		return nil, s.ctxErr
	}
	if !s.found {
		m.Restore(s.init)
		return nil, fmt.Errorf("%w after %d schedules (max %d interleavings)",
			ErrNotReproduced, s.stats.Schedules, opts.MaxInterleavings)
	}

	// Replay the found trace through the enforcement engine to obtain the
	// canonical failure-causing run (and to validate that the schedule
	// reconstruction is deterministic). The replay's restore and
	// enforcement are injection points, retried under the plan; the key
	// is fixed (one replay per search), so the fault fate is the same for
	// serial and parallel searches.
	//
	// A terminal checkpoint short-circuits the whole search to this one
	// replay: the stored schedule deterministically recreates the
	// failing run, and races/accesses fall out of it as in a cold run.
	var schedule sched.Schedule
	if terminal != nil {
		schedule = *terminal.Schedule
	} else {
		schedule = sched.FromSeq(s.foundTrace, s.fallback)
	}
	m.SetFaultPlan(opts.Fault)
	enf := sched.NewEnforcer(m)
	rp := opts.Tracer.Begin("lifs", "replay", 0)
	var res *sched.RunResult
	var attempts int
	// The replay is the one execution of the failing sequence the pipeline
	// cannot skip; pin snapshots along it so a subsequent Analyze on this
	// machine seeks its flip cuts without re-executing the prefix.
	var seedFC *flipCache
	if opts.Prefix.enabled() {
		seedFC = newFlipCache(m, s.init, nil, opts.Prefix, opts.Fault, &s.prefix)
	}
	err := faultinject.Do(ctx, opts.Fault, opts.Retry, func(ctx context.Context, attempt int) error {
		attempts = attempt + 1
		if seedFC != nil {
			seedFC.drop(0) // a retry restores init, staling earlier pins
		}
		if err := m.TryRestore(s.init, "lifs.replay", 0, attempt); err != nil {
			return err
		}
		ro := s.runOpts()
		ro.Fault = opts.Fault
		ro.FaultOp = "lifs.replay"
		ro.FaultAttempt = attempt
		ro.Ctx = ctx
		if seedFC != nil {
			ro.OnStep = func(pos int) {
				if pos%seedFC.stride == 0 {
					seedFC.pin(pos)
				}
			}
		}
		r, err := enf.Run(schedule, ro)
		if err != nil {
			return err
		}
		res = r
		return nil
	})
	if err != nil {
		rp.End()
		return nil, err
	}
	rp.Arg("steps", int64(len(res.Seq)))
	rp.Info("attempts", int64(attempts))
	rp.End()
	if !res.Failed() || !s.accept(res.Failure) {
		if terminal != nil {
			// The terminal checkpoint is stale (e.g. saved by a replay
			// whose fault fate differed): never trust it again — delete
			// and search fresh, exactly once.
			_ = opts.Checkpoint.Store.Delete(s.ckKey)
			m.Restore(s.init)
			return reproduceContext(ctx, m, opts, false)
		}
		return nil, fmt.Errorf("core: replay of the found schedule did not reproduce the failure (got %v)", res.Failure)
	}
	s.am.RecordRun(res)

	// Prefix-cache and work counters, including the final replay's
	// instructions (the replay itself is validation, not prefix replay,
	// so it counts toward ExecutedInstrs only).
	s.stats.ReplayedInstrs = s.prefix.replayed.Load()
	s.stats.SavedInstrs = s.prefix.saved.Load()
	s.stats.PrefixHits = int(s.prefix.hits.Load())
	s.stats.PinnedBytes = s.prefix.pinned.Load()
	s.stats.ExecutedInstrs = m.Executed() + s.workerExecuted()

	races := sched.ExtractRaces(res)
	if !opts.NoPhantom {
		races = append(races, sched.PhantomRaces(res, s.am)...)
	}

	if checkpointing && terminal == nil {
		// Terminal checkpoint: the found schedule (small — initial
		// thread plus switch points) and the final access knowledge. A
		// restart after this point reconstructs the reproduction with a
		// single replay instead of a search. Never cleared on success:
		// a later Analyze interruption restarts the whole diagnosis,
		// and this is what makes its Reproduce leg O(1).
		saveLIFSCheckpoint(opts.Checkpoint, s.ckKey, &lifsCheckpoint{
			InitSig:       s.initSig,
			Done:          true,
			Schedule:      &schedule,
			Interleavings: s.stats.Interleavings,
			Phases:        s.stats.Phases,
			Accesses:      s.am.Export(),
			Leaves:        s.leaves,
		})
	}

	rep := &Reproduction{
		Run:      res,
		Schedule: schedule,
		Races:    races,
		Accesses: s.am,
		Stats:    s.stats,
		Leaves:   s.leaves,
	}
	if seedFC != nil {
		rep.seed = &prefixSeed{m: m, init: s.init, pins: seedFC.pins}
	}
	return rep, nil
}

// searcher carries the state of one LIFS search.
type searcher struct {
	m        *kvm.Machine
	am       *sched.AccessMap // authoritative access knowledge, merged between phases
	opts     LIFSOptions
	guide    *guideState // compiled report guide; nil in blind mode
	fallback []string
	init     *kvm.Snapshot
	initSig  uint64 // state signature of the initial state (worker validation)
	stats    SearchStats
	ctx      context.Context

	errMu  sync.Mutex
	ctxErr error // set when ctx canceled the search

	schedules   atomic.Int64 // complete runs executed
	pruned      atomic.Int64
	guidePruned atomic.Int64
	exhausted   atomic.Bool  // MaxSchedules hit
	best        atomic.Int64 // lowest unit ordinal with an accepted leaf this phase
	prefix      prefixStats  // prefix-cache work counters (always tracked)

	spareMu sync.Mutex
	spare   []*workerVM // worker machines reused across phases

	found      bool
	foundTrace []sched.Exec
	leaves     []LeafTrace

	// Checkpointing state. resume is consumed by the first phase call;
	// ckRound/ckSites mirror the round loop so mid-phase saves can
	// write a complete frontier; lastSave tracks the schedule counter
	// at the last durable save for the Every cadence.
	ckKey    string
	resume   *lifsCheckpoint
	ckRound  int
	ckSites  int
	lastSave int64
}

// workerVM is one parallel worker's private kernel VM. Snapshots are
// per-machine, so each worker pins its own copy of a group's branch
// state (pin); the machine-independent script is shared from the probe.
// A pin is valid only for tasks of the same phase and group — anything
// else restores init, which truncates the journal under the pin.
type workerVM struct {
	m    *kvm.Machine
	init *kvm.Snapshot

	pin      *kvm.Snapshot // pinned branch state, nil when cold
	pinPhase *phaseRun
	pinGroup int
}

// acquireVM pops a spare worker machine or builds a fresh one. A fresh
// machine must match the searched machine's initial state — the parallel
// search replays prefixes from scratch on each worker. Launches are an
// injection point (worker death), retried under the plan; the key is a
// plan-global sequence, which is safe because which VM runs a unit never
// changes the unit's result.
func (s *searcher) acquireVM() (*workerVM, error) {
	s.spareMu.Lock()
	if n := len(s.spare); n > 0 {
		vm := s.spare[n-1]
		s.spare = s.spare[:n-1]
		s.spareMu.Unlock()
		return vm, nil
	}
	s.spareMu.Unlock()
	var vm *workerVM
	err := faultinject.Do(s.ctx, s.opts.Fault, s.opts.Retry, func(context.Context, int) error {
		if err := s.opts.Fault.Check(faultinject.KindWorkerDeath, "lifs.worker-vm", s.opts.Fault.Seq(), 0); err != nil {
			return err
		}
		wm, err := kvm.New(s.m.Prog())
		if err != nil {
			return err
		}
		if wm.StateSignature() != s.initSig {
			return errors.New("core: parallel search requires the machine in its initial state")
		}
		wm.SetFaultPlan(s.opts.Fault)
		vm = &workerVM{m: wm, init: wm.Snapshot()}
		return nil
	})
	return vm, err
}

// releaseVMs returns worker machines to the spare pool after a phase.
func (s *searcher) releaseVMs(vms []*workerVM) {
	s.spareMu.Lock()
	s.spare = append(s.spare, vms...)
	s.spareMu.Unlock()
}

// workerBytes sums the copy-on-write cost over the worker machines.
func (s *searcher) workerBytes() uint64 {
	s.spareMu.Lock()
	defer s.spareMu.Unlock()
	var n uint64
	for _, vm := range s.spare {
		n += vm.m.SnapshotBytes()
	}
	return n
}

// workerExecuted sums the executed-instruction counters over the worker
// machines (all workers sit in the spare pool between phases and at
// search end).
func (s *searcher) workerExecuted() uint64 {
	s.spareMu.Lock()
	defer s.spareMu.Unlock()
	var n uint64
	for _, vm := range s.spare {
		n += vm.m.Executed()
	}
	return n
}

// pinBranch pins the machine's current (branch) state for the prefix
// cache, unless the cache is disabled or the pinned-bytes budget is
// exhausted.
func (s *searcher) pinBranch(m *kvm.Machine) *kvm.Snapshot {
	if !s.opts.Prefix.enabled() {
		return nil
	}
	lb := m.LiveBytes()
	if lb > s.opts.Prefix.budget() {
		return nil
	}
	s.prefix.notePinned(lb)
	return m.Snapshot()
}

// restorePin restores a pinned branch snapshot and credits the skipped
// prefix. It reports false when the prefix-restore fault fires — a
// corrupt pin — in which case the machine is untouched and the caller
// degrades to a from-scratch replay. The fault is keyed by a plan-global
// sequence, like worker death: which runs hit a pin differs across
// worker counts, but a degraded restore only changes work, never the
// explored tree.
func (s *searcher) restorePin(m *kvm.Machine, pin *kvm.Snapshot, saved int) bool {
	if err := s.opts.Fault.Check(faultinject.KindPrefixRestore, "lifs.pin", s.opts.Fault.Seq(), 0); err != nil {
		return false
	}
	m.Restore(pin)
	s.prefix.hits.Add(1)
	s.prefix.saved.Add(uint64(saved))
	return true
}

func (s *searcher) setCtxErr(err error) {
	s.errMu.Lock()
	if s.ctxErr == nil {
		s.ctxErr = err
	}
	s.errMu.Unlock()
	s.exhausted.Store(true)
}

func (s *searcher) runOpts() sched.Options {
	return sched.Options{StepBudget: s.opts.StepBudget, LeakCheck: s.opts.LeakCheck}
}

func (s *searcher) stepBudget() int {
	if s.opts.StepBudget > 0 {
		return s.opts.StepBudget
	}
	return sched.DefaultStepBudget
}

// accept decides whether a failure is the one we are reproducing: the
// kind and failing instruction must match the crash report when they are
// constrained. (WantInstr zero is treated as unconstrained alongside
// NoInstr so the zero-value options accept any location.)
func (s *searcher) accept(f *sanitizer.Failure) bool {
	if f == nil {
		return false
	}
	if s.opts.WantInstr != kir.NoInstr && s.opts.WantInstr != 0 && f.Instr != s.opts.WantInstr {
		return false
	}
	if s.opts.WantKind == sanitizer.KindNone {
		return f.Kind != sanitizer.KindWatchdog
	}
	return f.Kind == s.opts.WantKind
}

type visKey struct {
	sig    uint64
	cur    kvm.ThreadID
	budget int
}

// visitedSet is the phase's sharded concurrent visited-state set. Each
// entry records the ordinal of the unit that first claimed the state.
// Writers are the sequential parts of the phase (probing, and every unit
// in serial mode); during parallel task execution it is read-only and the
// per-shard locks only guard against the race detector's view of the
// probe-phase writes.
type visitedSet struct {
	shards [visShards]visShard
}

type visShard struct {
	mu sync.RWMutex
	m  map[visKey]int
}

const visShards = 64

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[visKey]int)
	}
	return v
}

func (v *visitedSet) shard(k visKey) *visShard {
	return &v.shards[k.sig%visShards]
}

// get returns the claimant of k, if any.
func (v *visitedSet) get(k visKey) (int, bool) {
	sh := v.shard(k)
	sh.mu.RLock()
	c, ok := sh.m[k]
	sh.mu.RUnlock()
	return c, ok
}

// insert claims k for ordinal unless already claimed; it returns the
// existing claimant when not inserted.
func (v *visitedSet) insert(k visKey, ordinal int) (claimant int, inserted bool) {
	sh := v.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if c, ok := sh.m[k]; ok {
		return c, false
	}
	sh.m[k] = ordinal
	return ordinal, true
}

// branchInfo describes the branch event a probe discovered: the first
// point of its group's prefix where the search forks.
type branchInfo struct {
	natural bool // a natural switch with ≥2 viable threads; else a conflict preemption
	choices int  // number of task units to create (0: the prefix ended at a leaf or was pruned)
}

// candidate is a unit's first accepted leaf.
type candidate struct {
	trace      []sched.Exec
	budgetLeft int
}

// unit is one independently explorable slice of a phase: a group's probe
// (the deterministic prefix up to the branch event) or one branch choice
// at that event. Units are totally ordered by ordinal — probe of group 0,
// its tasks in canonical choice order, probe of group 1, ... — which is
// exactly the order the serial search visits them; the winner rule picks
// the candidate with the lowest ordinal, making parallel and serial
// searches return the same reproduction.
type unit struct {
	ordinal int
	group   int // initial-thread index in the fallback order
	probe   bool
	choice  int // task: index into the branch event's canonical choices
	initial kvm.ThreadID

	rec    *sched.AccessMap // accesses recorded by this unit
	leaves []LeafTrace
	cand   *candidate
	branch branchInfo    // probe only
	script *branchScript // probe only: resume state for pinned tasks

	// Span timing (obs): the wall window where the unit ran and the
	// worker slot that ran it (-1 for the main machine). Spans are
	// committed by the phase merge step in ordinal order, never here.
	ran          bool
	tStart, tDur time.Duration
	tWorker      int
}

// phaseRun is the shared state of one iterative-deepening phase.
type phaseRun struct {
	s     *searcher
	k     int
	base  *sched.AccessMap // frozen decision map: conflict points for the whole phase
	vis   *visitedSet
	units []*unit
	// scripts maps group index to the probe's branch script. Written
	// serially during the group loop (probes always run on the main
	// machine, before any parallel dispatch), read-only afterwards.
	scripts map[int]*branchScript
}

func (p *phaseRun) addUnit(group int, probe bool, choice int, initial kvm.ThreadID) *unit {
	u := &unit{
		ordinal: len(p.units),
		group:   group,
		probe:   probe,
		choice:  choice,
		initial: initial,
		rec:     sched.NewAccessMap(),
	}
	p.units = append(p.units, u)
	return u
}

// phase explores all schedules with at most k preemptions. Conflict-point
// decisions consult the AccessMap frozen at phase entry, so exploration
// from a machine state is a pure function of (state, thread, budget) — the
// property that makes cross-unit pruning sound and the parallel search
// deterministic. Accesses recorded during the phase are merged back into
// the searcher's map afterwards (and feed the next phase/round).
func (s *searcher) phase(k int) error {
	if err := s.ctx.Err(); err != nil {
		s.setCtxErr(err)
		return nil
	}
	if s.exhausted.Load() {
		return nil
	}
	start := time.Now()
	schedBefore := s.schedules.Load()
	prunedBefore := s.pruned.Load()
	ph := s.opts.Tracer.Begin("lifs", "phase", 0)
	ph.Arg("budget", int64(k))
	defer func() {
		ph.Info("schedules", s.schedules.Load()-schedBefore)
		ph.Info("pruned", s.pruned.Load()-prunedBefore)
		ph.End()
	}()
	p := &phaseRun{s: s, k: k, base: s.am, vis: newVisitedSet(), scripts: make(map[int]*branchScript)}
	s.best.Store(math.MaxInt64)
	parallel := s.opts.Workers > 1

	// A mid-phase checkpoint re-enters here: the completed units are
	// restored (with their access records, leaves and branch shapes)
	// and their visited-state claims replayed, so the remaining groups
	// explore — and prune — exactly as the lost run would have.
	startGroup := 0
	if rp := s.takeResumePartial(k); rp != nil {
		startGroup = rp.GroupsDone
		for _, us := range rp.Units {
			u := p.addUnit(us.Group, us.Probe, us.Choice, kvm.ThreadID(us.Initial))
			u.ran = us.Ran
			u.rec = sched.ImportAccessMap(us.Accesses)
			u.leaves = us.Leaves
			u.branch = branchInfo{natural: us.BranchNatural, choices: us.BranchChoices}
		}
		for _, ve := range rp.Visited {
			p.vis.insert(visKey{sig: ve.Sig, cur: kvm.ThreadID(ve.Cur), budget: ve.Budget}, ve.Ordinal)
		}
	}

	// The initial thread choice is itself a decision: branch over every
	// declared thread (spawned threads cannot exist yet). Each group's
	// probe runs the deterministic prefix on the main machine and claims
	// its states; in serial mode the group's tasks run immediately after
	// it, in parallel mode all tasks are dispatched to the pool below.
	var tasks []*unit
	for gi := startGroup; gi < len(s.fallback); gi++ {
		if s.exhausted.Load() || s.ctxErr != nil {
			break
		}
		// Everything not yet probed has a higher ordinal than an accepted
		// candidate: it cannot win.
		if s.best.Load() < int64(len(p.units)) {
			break
		}
		t := s.m.ThreadByName(s.fallback[gi])
		if t == nil {
			continue
		}
		pu := p.addUnit(gi, true, -1, t.ID)
		s.m.Restore(s.init)
		s.runUnit(p, pu, s.m, true, -1, k)
		// The probe left the machine at the group's branch state: pin it
		// so the group's tasks resume from there instead of replaying the
		// prefix. (Parallel workers pin their own machines lazily; the
		// main machine is only used for probes there.)
		var pin *kvm.Snapshot
		if pu.script != nil {
			p.scripts[gi] = pu.script
			if !parallel {
				pin = s.pinBranch(s.m)
			}
		}
		var groupTasks []*unit
		for c := 0; c < pu.branch.choices; c++ {
			groupTasks = append(groupTasks, p.addUnit(gi, false, c, t.ID))
		}
		if parallel {
			tasks = append(tasks, groupTasks...)
			continue
		}
		for _, tu := range groupTasks {
			if s.exhausted.Load() || s.ctxErr != nil {
				break
			}
			if s.best.Load() < int64(tu.ordinal) {
				break
			}
			if pin != nil {
				if s.restorePin(s.m, pin, len(pu.script.trace)) {
					s.runUnitPinned(p, tu, s.m, -1, k, pu.script)
					continue
				}
				pin = nil // corrupt pin: the rest of the group replays from scratch
			}
			s.m.Restore(s.init)
			s.runUnit(p, tu, s.m, false, -1, k)
		}
		// Serial group boundary: a consistent cut — every unit so far
		// ran to completion and (if we get here without a candidate)
		// none accepted. Checkpoint on the Every cadence.
		s.maybeSavePartial(p, k, gi+1)
	}

	if parallel && len(tasks) > 0 && s.ctxErr == nil && s.opts.Dispatch != nil && s.guide == nil {
		// Fleet mode: lease the tasks out through the dispatcher; any
		// branch the fleet did not execute is swept serially below.
		s.dispatchTasks(p, k, tasks, s.opts.Dispatch)
	} else if parallel && len(tasks) > 0 && s.ctxErr == nil {
		var vmMu sync.Mutex
		var vms []*workerVM
		err := runWorkers(s.ctx, s.opts.Tracer, "lifs-task", s.opts.Workers, len(tasks),
			func(int) (*workerVM, error) {
				vm, err := s.acquireVM()
				if err != nil {
					return nil, err
				}
				vmMu.Lock()
				vms = append(vms, vm)
				vmMu.Unlock()
				return vm, nil
			},
			func(ctx context.Context, vm *workerVM, worker, i int) error {
				tu := tasks[i]
				if s.exhausted.Load() || s.best.Load() < int64(tu.ordinal) {
					return nil
				}
				// Resume from this worker's pin when it holds the right
				// group's branch state; otherwise replay the prefix once
				// and pin it at the branch for the group's later tasks.
				sc := p.scripts[tu.group]
				if sc != nil && vm.pin != nil && vm.pinPhase == p && vm.pinGroup == tu.group {
					if s.restorePin(vm.m, vm.pin, len(sc.trace)) {
						s.runUnitPinned(p, tu, vm.m, worker, k, sc)
						return nil
					}
				}
				vm.pin, vm.pinPhase = nil, nil // init restore invalidates any pin
				vm.m.Restore(vm.init)
				s.runUnitPinning(p, tu, vm, worker, k)
				return nil
			})
		s.releaseVMs(vms)
		if err != nil {
			switch {
			case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
				s.setCtxErr(err)
			case faultinject.Is(err):
				// The worker fleet could not be (re)built: degrade to the
				// main machine for the units the pool never ran. The pool
				// has joined, so every unit's ran flag is settled, and the
				// serial sweep preserves the ordinal winner rule.
				for _, tu := range tasks {
					if tu.ran || s.exhausted.Load() || s.ctxErr != nil {
						continue
					}
					if s.best.Load() < int64(tu.ordinal) {
						continue
					}
					s.m.Restore(s.init)
					s.runUnit(p, tu, s.m, false, -1, k)
				}
			default:
				return err
			}
		}
	}

	// Deterministic winner rule: the lowest phase wins by construction of
	// iterative deepening; within the phase, the candidate with the lowest
	// unit ordinal — the first accept of the serial visit order. Merge the
	// access records and leaves of every unit up to the winner (later
	// units may have been cut short and must not leak into the result).
	winner := -1
	for _, u := range p.units {
		if u.cand != nil {
			winner = u.ordinal
			break
		}
	}
	for _, u := range p.units {
		if winner >= 0 && u.ordinal > winner {
			break
		}
		s.am.Merge(u.rec)
		s.leaves = append(s.leaves, u.leaves...)
		s.emitUnit(p, u)
	}
	if winner >= 0 {
		w := p.units[winner]
		s.found = true
		s.foundTrace = w.cand.trace
		s.stats.Interleavings = k - w.cand.budgetLeft
	}
	s.stats.Phases = append(s.stats.Phases, PhaseStat{
		Budget:    k,
		Schedules: int(s.schedules.Load() - schedBefore),
		Elapsed:   time.Since(start),
	})
	return nil
}

// takeResumePartial consumes the searcher's pending resume state and
// returns its mid-phase cut when it belongs to phase k. It fires at
// most once: the first phase a resumed search enters is by construction
// the checkpoint's NextPhase.
func (s *searcher) takeResumePartial(k int) *partialPhase {
	ck := s.resume
	if ck == nil {
		return nil
	}
	s.resume = nil
	if ck.Partial == nil || ck.Partial.Budget != k {
		return nil
	}
	return ck.Partial
}

// maybeSavePartial checkpoints a serial phase at a group boundary once
// CheckpointConfig.Every schedules have run since the last save. It
// only fires on consistent cuts: no accepted candidate (which would end
// the phase), no exhaustion, no cancellation.
func (s *searcher) maybeSavePartial(p *phaseRun, k, groupsDone int) {
	cfg := s.opts.Checkpoint
	if !cfg.enabled() || s.opts.NoLeastFirst || cfg.Every <= 0 {
		return
	}
	if s.best.Load() != math.MaxInt64 || s.exhausted.Load() || s.ctxErr != nil {
		return
	}
	n := s.schedules.Load()
	if n-s.lastSave < int64(cfg.Every) {
		return
	}
	s.lastSave = n
	pp := &partialPhase{Budget: k, GroupsDone: groupsDone, Visited: exportVisited(p.vis)}
	for _, u := range p.units {
		pp.Units = append(pp.Units, unitSnap{
			Group:         u.group,
			Probe:         u.probe,
			Choice:        u.choice,
			Initial:       int(u.initial),
			Ran:           u.ran,
			BranchNatural: u.branch.natural,
			BranchChoices: u.branch.choices,
			Accesses:      u.rec.Export(),
			Leaves:        u.leaves,
		})
	}
	// Accesses is the phase-entry map (the phase merges unit records
	// only at its end, so s.am is still the frozen base here); the
	// in-phase records ride inside Units and are re-merged on resume.
	saveLIFSCheckpoint(cfg, s.ckKey, &lifsCheckpoint{
		InitSig:           s.initSig,
		Round:             s.ckRound,
		NextPhase:         k,
		SitesAtRoundStart: s.ckSites,
		Phases:            s.stats.Phases,
		Accesses:          s.am.Export(),
		Leaves:            s.leaves,
		Partial:           pp,
	})
}

// runUnit drives one unit's exploration on m from the initial state.
func (s *searcher) runUnit(p *phaseRun, u *unit, m *kvm.Machine, probe bool, worker, k int) {
	s.timeUnit(u, worker, func() {
		newExplorer(p, u, m, probe).run(k)
	})
}

// runUnitPinned drives a task unit from its group's restored branch
// state: the machine already sits at the branch, and the script supplies
// the exploration state the prefix replay would have rebuilt.
func (s *searcher) runUnitPinned(p *phaseRun, u *unit, m *kvm.Machine, worker, k int, sc *branchScript) {
	s.timeUnit(u, worker, func() {
		newExplorer(p, u, m, false).resumeFromPin(sc, k)
	})
}

// runUnitPinning drives a task unit from the initial state on a worker
// VM, pinning the machine at the group's branch event so the worker's
// later tasks of the same group can resume from it.
func (s *searcher) runUnitPinning(p *phaseRun, u *unit, vm *workerVM, worker, k int) {
	s.timeUnit(u, worker, func() {
		e := newExplorer(p, u, vm.m, false)
		if s.opts.Prefix.enabled() {
			e.onBranch = func() {
				if pin := s.pinBranch(vm.m); pin != nil {
					vm.pin, vm.pinPhase, vm.pinGroup = pin, p, u.group
				}
			}
		}
		e.run(k)
	})
}

// timeUnit records the unit's wall window and worker slot for the tracer
// when enabled. The span itself is committed later, by the phase merge
// step, in ordinal order.
func (s *searcher) timeUnit(u *unit, worker int, f func()) {
	u.ran = true
	u.tWorker = worker
	tr := s.opts.Tracer
	if tr == nil {
		f()
		return
	}
	u.tStart = tr.Now()
	f()
	u.tDur = tr.Now() - u.tStart
}

// emitUnit commits one merged unit's span. It runs in the phase merge
// step — single-threaded, in unit ordinal order, and only for units up
// to the winner — which is what makes the canonical event sequence
// identical across worker counts: exactly those units ran to completion
// in the serial search too, and their Args (ordinal, group, choice,
// branch shape, acceptance) are pure functions of the searched state.
func (s *searcher) emitUnit(p *phaseRun, u *unit) {
	tr := s.opts.Tracer
	if tr == nil || !u.ran {
		return
	}
	name := "task"
	if u.probe {
		name = "probe"
	}
	ev := obs.Event{
		Cat: "lifs", Name: name, Track: int64(u.ordinal) + 1,
		Start: u.tStart, Dur: u.tDur,
		Args: []obs.Arg{
			{Key: "budget", Val: int64(p.k)},
			{Key: "ordinal", Val: int64(u.ordinal)},
			{Key: "group", Val: int64(u.group)},
		},
		Info: []obs.Arg{{Key: "worker", Val: int64(u.tWorker)}},
	}
	if u.probe {
		ev.Args = append(ev.Args,
			obs.Arg{Key: "choices", Val: int64(u.branch.choices)},
			obs.Arg{Key: "natural", Val: b2i(u.branch.natural)})
	} else {
		ev.Args = append(ev.Args, obs.Arg{Key: "choice", Val: int64(u.choice)})
	}
	ev.Args = append(ev.Args, obs.Arg{Key: "accepted", Val: b2i(u.cand != nil)})
	tr.Emit(ev)
}

// explorer drives one unit's exploration on one machine.
type explorer struct {
	s *searcher
	p *phaseRun
	u *unit
	m *kvm.Machine

	probe bool
	// splitPending is true until the unit passes its group's branch event:
	// the probe stops there, a task takes its assigned choice there.
	splitPending bool
	// onBranch, when set, fires once at the task's branch event, with the
	// machine at the branch state and before the choice is taken — the
	// parallel workers' pin point.
	onBranch func()
	// skipBranch makes the first loop iteration of a pin-resumed
	// fall-through task skip the return-stack check and the conflict
	// block: an uncached fall-through proceeds straight from the branch
	// event to the Step without re-entering the loop top, so a resumed
	// one must not re-run the checks that sit above it.
	skipBranch bool
	// serialOrder is true when units run strictly in ordinal order and
	// insert into the shared visited set (probing, and serial mode); false
	// for parallel tasks, whose own revisits go to the local map instead.
	serialOrder bool
	local       map[visKey]struct{}

	trace   []sched.Exec
	ctxTick int
	aborted bool
	// suspectSeen marks the guide suspects executed on the current path
	// (bit i = guideState.suspects[i]); saved and restored alongside the
	// trace at backtrack points.
	suspectSeen uint32
	// offReport flags that the report guide proved the reported failure
	// impossible below the current path: the run completes straight-line
	// (for access discovery) without branching and its leaf is discarded.
	// Reset alongside suspectSeen at backtrack points.
	offReport bool
}

func newExplorer(p *phaseRun, u *unit, m *kvm.Machine, probe bool) *explorer {
	e := &explorer{
		s:            p.s,
		p:            p,
		u:            u,
		m:            m,
		probe:        probe,
		splitPending: true,
		serialOrder:  probe || p.s.opts.Workers <= 1,
	}
	if !e.serialOrder {
		e.local = make(map[visKey]struct{})
	}
	return e
}

// run explores the unit from the machine's initial state.
func (e *explorer) run(budget int) {
	e.explore(e.u.initial, budget, nil)
}

// resumeFromPin continues a task from its group's restored branch state,
// reproducing exactly what the uncached task would do after replaying
// the prefix and flipping splitPending: take the assigned choice. The
// shared script trace is adopted with its capacity clamped so appends
// copy instead of clobbering sibling tasks.
func (e *explorer) resumeFromPin(sc *branchScript, budget int) {
	e.splitPending = false
	e.trace = sc.trace[:len(sc.trace):len(sc.trace)]
	e.suspectSeen = sc.seen
	if sc.natural {
		e.explore(sc.choices[e.u.choice], budget, cloneStack(sc.stack))
		return
	}
	if c := e.u.choice; c < len(sc.choices) {
		// Preemption: switch to the target, spending one budget unit —
		// the uncached task recurses into explore the same way.
		e.explore(sc.choices[c], budget-1, cloneStack(sc.stack))
		return
	}
	// Fall-through: continue the conflict-point thread. The uncached
	// task proceeds straight to the Step; skipBranch suppresses the
	// loop-top checks it would not have re-run.
	e.skipBranch = true
	e.explore(sc.cur, budget, cloneStack(sc.stack))
}

// captureScript saves the machine-independent half of the branch state
// (probe only), so pinned tasks can resume without replaying the prefix.
func (e *explorer) captureScript(natural bool, choices []kvm.ThreadID, cur kvm.ThreadID, stack []kvm.ThreadID) {
	if !e.s.opts.Prefix.enabled() {
		return
	}
	e.u.script = &branchScript{
		trace:   append([]sched.Exec(nil), e.trace...),
		seen:    e.suspectSeen,
		stack:   cloneStack(stack),
		natural: natural,
		choices: append([]kvm.ThreadID(nil), choices...),
		cur:     cur,
	}
}

// canceled polls the context (every 64 calls — it sits on the per-step
// hot path) and checks whether a lower-ordinal candidate supersedes this
// unit, flipping the unit into unwinding mode.
func (e *explorer) canceled() bool {
	if e.aborted {
		return true
	}
	e.ctxTick++
	if e.ctxTick&63 != 0 {
		return false
	}
	if err := e.s.ctx.Err(); err != nil {
		e.s.setCtxErr(err)
		e.aborted = true
		return true
	}
	if e.s.best.Load() < int64(e.u.ordinal) {
		e.aborted = true
		return true
	}
	return false
}

// explore runs the machine from its current state with the given current
// thread and preemption budget, branching at decision points. It returns
// true when the target failure was found on this unit.
func (e *explorer) explore(cur kvm.ThreadID, budget int, returnStack []kvm.ThreadID) bool {
	for {
		if e.aborted || e.s.exhausted.Load() || e.canceled() {
			return false
		}
		if e.m.Failure() != nil {
			return e.leaf(budget)
		}
		// Report-guided mode: when reachability says the reported failure
		// has become impossible below this state — the accept site is
		// unreachable (with no live allocation from it when leaks are in
		// play), or a not-yet-executed suspect is unreachable — the path
		// flips to off-report mode. Off-report exploration stops BRANCHING
		// (the whole subtree fan-out is the saved work) but still runs one
		// straight-line completion, because the accesses it records feed
		// conflict-point discovery and race identification: truncating the
		// run here would starve later phases and the analysis stage of the
		// access knowledge a blind search gathers from the same runs. The
		// decision is a pure function of machine state and executed-suspect
		// history, so serial and parallel searches agree. Off-report leaves
		// (and on-report leaves the accept filter rejects) are discarded in
		// leaf() rather than counted — a blind search must execute and
		// count these same runs, which is what makes guided
		// Stats.Schedules strictly smaller whenever any run ends benignly.
		if !e.offReport && e.guidePruned() {
			e.offReport = true
		}
		if e.m.AllDone() {
			if e.s.opts.LeakCheck {
				e.m.CheckLeaks()
			}
			return e.leaf(budget)
		}
		if e.m.Deadlocked() {
			e.injectDeadlock()
			return e.leaf(budget)
		}

		// Return from a lock diversion as soon as the diverted-from thread
		// can run again (mirrors the enforcement engine). A pin-resumed
		// fall-through skips the first check: its uncached twin stepped
		// straight from the branch event without re-entering the loop top.
		if n := len(returnStack); n > 0 && !e.skipBranch {
			t := e.m.Thread(returnStack[n-1])
			if e.viable(t) {
				cur = t.ID
				returnStack = returnStack[:n-1]
			} else if t == nil || t.State == kvm.Done || t.State == kvm.Crashed {
				returnStack = returnStack[:n-1]
				continue
			}
		}

		curT := e.m.Thread(cur)
		if !e.viable(curT) {
			if curT != nil && curT.State == kvm.Blocked {
				if owner, held := e.m.LockOwner(curT.WaitLock); held {
					returnStack = append(returnStack, cur)
					cur = owner
					continue
				}
			}
			// Natural switch: branch over every viable thread (free — the
			// paper's interleaving count only counts preemptions of a
			// running thread). No visited-state check here: the chosen
			// child would immediately re-encounter the same machine state
			// at its first conflict point, and the check there performs
			// the deduplication.
			choices := e.m.Runnable()
			if e.offReport && len(choices) > 0 {
				// Straight-line completion: no branching off-report.
				cur = choices[0]
				continue
			}
			if len(choices) == 0 {
				e.injectDeadlock()
				return e.leaf(budget)
			}
			if len(choices) == 1 {
				cur = choices[0]
				continue
			}
			if e.splitPending {
				// The group's branch event. The probe stops here and the
				// choices become task units; a task takes its one choice.
				if e.probe {
					e.u.branch = branchInfo{natural: true, choices: len(choices)}
					e.captureScript(true, choices, cur, returnStack)
					return false
				}
				e.splitPending = false
				// The trace so far re-executed the probe's known prefix.
				e.s.prefix.replayed.Add(uint64(len(e.trace)))
				if e.onBranch != nil {
					e.onBranch()
				}
				cur = choices[e.u.choice]
				continue
			}
			snap := e.m.Snapshot()
			tlen := len(e.trace)
			seen := e.suspectSeen
			for _, choice := range choices {
				if e.explore(choice, budget, cloneStack(returnStack)) {
					return true
				}
				if e.aborted || e.s.exhausted.Load() {
					return false
				}
				e.m.Restore(snap)
				e.trace = e.trace[:tlen]
				e.suspectSeen = seen
				e.offReport = false
			}
			return false
		}

		// Conflicting instructions are the scheduling decision points:
		// equivalent machine states are pruned here (the DPOR-style skip —
		// a path reaching a state another path already explored with the
		// same remaining budget produces only equivalent sequences), and
		// remaining preemption budget branches to every other viable
		// thread. Off-report paths skip this entirely: they neither branch
		// nor claim visited states (their subtree fate differs from a
		// normal path's, so a claim here would dedup-prune live work).
		if e.skipBranch {
			// Pin-resumed fall-through: the branch event (prune check
			// included) already ran in the probe; proceed to the Step.
			e.skipBranch = false
		} else if !e.offReport && e.isConflictPoint(cur) {
			branched := false
			if e.splitPending && budget > 0 {
				if others := e.othersViable(cur); len(others) > 0 {
					// The group's branch event: one task per preemption
					// target plus the fall-through (canonically last).
					if e.pruneCheck(cur, budget) {
						return false
					}
					if e.probe {
						e.u.branch = branchInfo{choices: len(others) + 1}
						e.captureScript(false, others, cur, returnStack)
						return false
					}
					e.splitPending = false
					// The trace so far re-executed the probe's known prefix.
					e.s.prefix.replayed.Add(uint64(len(e.trace)))
					if e.onBranch != nil {
						e.onBranch()
					}
					if c := e.u.choice; c < len(others) {
						return e.explore(others[c], budget-1, cloneStack(returnStack))
					}
					// Fall-through task: continue the current thread with
					// the budget unchanged.
					branched = true
				}
			}
			if !branched {
				if e.pruneCheck(cur, budget) {
					return false
				}
				if !e.splitPending && budget > 0 {
					others := e.othersViable(cur)
					snap := e.m.Snapshot()
					tlen := len(e.trace)
					seen := e.suspectSeen
					for _, u := range others {
						if e.explore(u, budget-1, cloneStack(returnStack)) {
							return true
						}
						if e.aborted || e.s.exhausted.Load() {
							return false
						}
						e.m.Restore(snap)
						e.trace = e.trace[:tlen]
						e.suspectSeen = seen
						e.offReport = false
					}
					// Fall through: continue the current thread without
					// preempting (budget unchanged).
				}
			}
		}

		ev, err := e.m.Step(cur)
		if err != nil {
			// Driving bug; surface as exhaustion rather than panic.
			e.s.exhausted.Store(true)
			return false
		}
		if !ev.Executed {
			owner, held := e.m.LockOwner(curT.WaitLock)
			if !held {
				continue
			}
			returnStack = append(returnStack, cur)
			cur = owner
			continue
		}
		e.record(cur, curT, ev)
		if len(e.trace) > e.s.stepBudget() {
			e.m.InjectFailure(&sanitizer.Failure{
				Kind:   sanitizer.KindWatchdog,
				Thread: curT.Name,
				Instr:  ev.Instr.ID,
				Msg:    "step budget exceeded during search",
			})
			return e.leaf(budget)
		}
	}
}

// record appends an executed step to the trace and the unit's access map.
func (e *explorer) record(cur kvm.ThreadID, curT *kvm.Thread, ev kvm.StepEvent) {
	exec := sched.Exec{
		Step:   len(e.trace),
		Thread: cur,
		Name:   curT.Name,
		Instr:  ev.Instr,
	}
	if g := e.s.guide; g != nil {
		if bits, ok := g.byInstr[ev.Instr.ID]; ok {
			e.suspectSeen |= bits
		}
	}
	site := sched.Site{Thread: curT.Name, Instr: ev.Instr.ID}
	for _, a := range ev.Accesses {
		exec.Accesses = append(exec.Accesses, sched.AccessRec{Addr: a.Addr, Write: a.Write})
		e.u.rec.Record(site, a.Addr, a.Write)
	}
	if len(curT.Locks) > 0 {
		exec.Lockset = append([]uint64(nil), curT.Locks...)
	}
	if ev.Spawned != kvm.NoThread {
		exec.Spawned = e.m.Thread(ev.Spawned).Name
	}
	e.trace = append(e.trace, exec)
}

// leaf finishes one complete run.
func (e *explorer) leaf(budgetLeft int) bool {
	f := e.m.Failure()
	// Report-guided discard: a run that ended off-report, or with a
	// failure the accept filter rejects (including none at all), is per
	// the report's testimony not the reported failure. Its accesses were
	// already recorded for discovery; the run itself is not credited as a
	// schedule. Winner-preserving — the reproduction must be accepted, and
	// the winner's own path never goes off-report (every suspect executes
	// on it and the accept site stays reachable until the failure).
	if e.s.guide != nil && (e.offReport || !e.s.accept(f)) {
		e.s.guidePruned.Add(1)
		return false
	}
	n := e.s.schedules.Add(1)
	if int(n) >= e.s.opts.MaxSchedules {
		e.s.exhausted.Store(true)
	}
	if e.s.opts.RecordLeaves {
		lt := LeafTrace{Failed: f != nil, Preemptions: e.p.k - budgetLeft}
		for _, x := range e.trace {
			if x.Instr.Label != "" {
				lt.Labels = append(lt.Labels, x.Instr.Label)
			}
		}
		e.u.leaves = append(e.u.leaves, lt)
	}
	if e.s.accept(f) {
		// The interleaving count is the preemption budget the search
		// actually consumed on this path — exactly the paper's notion
		// (natural switches at thread completion and involuntary lock
		// diversions are free).
		e.u.cand = &candidate{
			trace:      append([]sched.Exec(nil), e.trace...),
			budgetLeft: budgetLeft,
		}
		// CAS-min so lower ordinals always win; units above the best
		// candidate cancel themselves at their next poll.
		for {
			b := e.s.best.Load()
			if int64(e.u.ordinal) >= b || e.s.best.CompareAndSwap(b, int64(e.u.ordinal)) {
				break
			}
		}
		return true
	}
	return false
}

func (e *explorer) viable(t *kvm.Thread) bool {
	if t == nil {
		return false
	}
	switch t.State {
	case kvm.Runnable:
		return true
	case kvm.Blocked:
		_, held := e.m.LockOwner(t.WaitLock)
		return !held
	default:
		return false
	}
}

func (e *explorer) othersViable(cur kvm.ThreadID) []kvm.ThreadID {
	var out []kvm.ThreadID
	for _, tid := range e.m.Runnable() {
		if tid != cur {
			out = append(out, tid)
		}
	}
	return out
}

// isConflictPoint reports whether the thread's next instruction performs an
// access known to conflict with an access of a different thread — the
// scheduling decision points of LIFS. It consults the phase-frozen map,
// never the in-flight records, so every unit sees the same decisions.
func (e *explorer) isConflictPoint(cur kvm.ThreadID) bool {
	accs := e.m.PeekAccesses(cur)
	if len(accs) == 0 {
		return false
	}
	name := e.m.Thread(cur).Name
	for _, a := range accs {
		if e.p.base.ConflictsAt(name, a.Addr, a.Write) {
			return true
		}
	}
	return false
}

// pruneCheck consults and updates the visited-state set. The rules keep
// the winner and the merged AccessMap identical across worker counts:
//
//   - A unit always prunes on its own earlier claims (a state loop).
//   - Replaying the prefix (splitPending) over the own group's probe
//     claims is exempt — that is the task reaching its branch event.
//   - In serial order every existing claim belongs to an earlier unit
//     that ran to completion, exactly the classic single-map semantics.
//   - Parallel tasks prune only on lower-group probe claims: those are
//     the claims that provably exist at this point in the serial visit
//     order too. Sibling tasks' claims are ignored (their completion
//     order is nondeterministic), so each unit's exploration — and hence
//     the winner's trace and the merged map — never depends on timing.
func (e *explorer) pruneCheck(cur kvm.ThreadID, budget int) bool {
	if e.s.opts.NoPruning {
		return false
	}
	key := visKey{sig: e.m.StateSignature(), cur: cur, budget: budget}
	if e.serialOrder {
		c, inserted := e.p.vis.insert(key, e.u.ordinal)
		if inserted || e.exempt(c) {
			return false
		}
		e.s.pruned.Add(1)
		return true
	}
	if c, ok := e.p.vis.get(key); ok {
		if e.exempt(c) {
			return false
		}
		e.s.pruned.Add(1)
		return true
	}
	if _, ok := e.local[key]; ok {
		e.s.pruned.Add(1)
		return true
	}
	e.local[key] = struct{}{}
	return false
}

// exempt reports whether a visited-set hit on claimant c does not prune e.
func (e *explorer) exempt(c int) bool {
	if c == e.u.ordinal {
		return false // own revisit always prunes
	}
	cu := e.p.units[c]
	replay := cu.probe && cu.group == e.u.group && e.splitPending
	if e.serialOrder {
		return replay
	}
	if replay {
		return true
	}
	// Parallel task: prune only on probe claims of this group or lower —
	// the claims that provably exist at this point of the serial visit
	// order (every probe up to and including the own group ran to
	// completion before any of the group's tasks were dispatched). An
	// own-group probe claim hit after the branch event is a loop back
	// into the prefix, which the serial search prunes too.
	return !(cu.probe && cu.group <= e.u.group)
}

// guidePruned applies the report guide's reachability test to the
// machine's current state: true flips the path into off-report mode
// (straight-line completion, leaf discarded). The counter tallies these
// entries plus every discarded leaf.
func (e *explorer) guidePruned() bool {
	g := e.s.guide
	if g == nil {
		return false
	}
	if g.pruned(e.m, e.suspectSeen) {
		e.s.guidePruned.Add(1)
		return true
	}
	return false
}

// injectDeadlock mirrors the enforcement engine's deadlock failure.
func (e *explorer) injectDeadlock() {
	for i := 0; i < e.m.NumThreads(); i++ {
		t := e.m.Thread(kvm.ThreadID(i))
		if t.State == kvm.Blocked {
			in, _ := e.m.NextInstr(t.ID)
			e.m.InjectFailure(&sanitizer.Failure{
				Kind:   sanitizer.KindDeadlock,
				Thread: t.Name,
				Instr:  in.ID,
				Addr:   t.WaitLock,
				Msg:    "all unfinished threads are blocked",
			})
			return
		}
	}
	e.m.InjectFailure(&sanitizer.Failure{Kind: sanitizer.KindDeadlock, Instr: kir.NoInstr, Msg: "no runnable thread"})
}

func cloneStack(st []kvm.ThreadID) []kvm.ThreadID {
	if len(st) == 0 {
		return nil
	}
	return append([]kvm.ThreadID(nil), st...)
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// LIFSOptions configure a reproduction search.
type LIFSOptions struct {
	// MaxInterleavings bounds the iterative deepening on preemption count.
	// Zero means DefaultMaxInterleavings. The paper observes that one or
	// two interleavings reproduce almost every real failure.
	MaxInterleavings int
	// StepBudget is the per-run watchdog limit (sched.Options.StepBudget).
	StepBudget int
	// MaxSchedules aborts the search after this many executed schedules
	// (zero = DefaultMaxSchedules).
	MaxSchedules int
	// WantKind restricts acceptance to failures of this kind, taken from
	// the crash report. KindNone accepts any failure except watchdogs.
	WantKind sanitizer.Kind
	// WantInstr further restricts acceptance to failures at this
	// instruction (the crash report's failing location). NoInstr matches
	// any location.
	WantInstr kir.InstrID
	// LeakCheck enables the memory-leak oracle at run completion (needed
	// to reproduce leak failures, which manifest only at the end).
	LeakCheck bool
	// RecordLeaves retains a per-leaf search trace (used to regenerate the
	// paper's Figure 5 search tree).
	RecordLeaves bool

	// Ablation switches (all default off, i.e. the paper's design):

	// NoPruning disables the DPOR-style equivalent-state pruning.
	NoPruning bool
	// NoLeastFirst disables the least-interleaving-first iterative
	// deepening and searches directly at MaxInterleavings.
	NoLeastFirst bool
	// NoPhantom drops races whose second access never executed in the
	// failing run from the test set (e.g. the paper's B17 => A12).
	NoPhantom bool
}

// Default search limits.
const (
	DefaultMaxInterleavings = 3
	DefaultMaxSchedules     = 200000
)

// SearchStats summarize a LIFS search.
type SearchStats struct {
	Schedules     int           // complete runs executed
	Interleavings int           // preemption count at which the failure reproduced
	Pruned        int           // branches pruned as equivalent states
	Elapsed       time.Duration // wall-clock search time
}

// LeafTrace records one complete run of the search for introspection.
type LeafTrace struct {
	Labels      []string // labelled instructions in execution order
	Preemptions int      // budget consumed on this path
	Failed      bool
}

// Reproduction is the output of LIFS: the failure-causing instruction
// sequence (as a run result), a schedule that deterministically replays
// it, all data races found in it, and the accumulated access knowledge.
type Reproduction struct {
	Run      *sched.RunResult
	Schedule sched.Schedule
	Races    []sched.Race
	Accesses *sched.AccessMap
	Stats    SearchStats
	Leaves   []LeafTrace // only when LIFSOptions.RecordLeaves
}

// ErrNotReproduced is returned (wrapped) when the search space is
// exhausted without reproducing an accepted failure.
var ErrNotReproduced = fmt.Errorf("core: failure not reproduced")

// IsNotReproduced reports whether err means the search space was
// exhausted without reproducing the failure (the caller should try the
// next slice, §4.2).
func IsNotReproduced(err error) bool { return errors.Is(err, ErrNotReproduced) }

// Reproduce runs LIFS on the machine's declared threads. The machine is
// left in the failing state of the reproduced run.
func Reproduce(m *kvm.Machine, opts LIFSOptions) (*Reproduction, error) {
	return ReproduceContext(context.Background(), m, opts)
}

// ReproduceContext is Reproduce under a context: cancellation and
// deadlines are checked at search-iteration boundaries, so a canceled
// context aborts the search promptly and the error is ctx.Err().
func ReproduceContext(ctx context.Context, m *kvm.Machine, opts LIFSOptions) (*Reproduction, error) {
	if opts.MaxInterleavings <= 0 {
		opts.MaxInterleavings = DefaultMaxInterleavings
	}
	if opts.MaxSchedules <= 0 {
		opts.MaxSchedules = DefaultMaxSchedules
	}

	s := &searcher{
		m:    m,
		am:   sched.NewAccessMap(),
		opts: opts,
		ctx:  ctx,
	}
	for _, td := range m.Prog().Threads {
		s.fallback = append(s.fallback, td.Name)
	}
	s.init = m.Snapshot()
	start := time.Now()

	// Iterative deepening: interleaving count 0, 1, 2, ... The paper runs
	// the search twice when new conflicting instructions were discovered
	// late (race-steered control flows can hide conflicts from shallow
	// phases); a second round with a warm AccessMap covers them.
	for round := 0; round < 2 && !s.found; round++ {
		sitesBefore := len(s.am.Sites())
		if opts.NoLeastFirst {
			// Ablation: a warm-up pass at count 0 discovers the initial
			// conflict set (the search cannot branch without it), then
			// the full-depth search runs directly.
			s.phase(0)
			if !s.found {
				s.phase(opts.MaxInterleavings)
			}
		} else {
			for k := 0; k <= opts.MaxInterleavings && !s.found; k++ {
				s.phase(k)
			}
		}
		if s.found || len(s.am.Sites()) == sitesBefore {
			break
		}
	}
	s.stats.Elapsed = time.Since(start)

	if s.ctxErr != nil {
		m.Restore(s.init)
		return nil, s.ctxErr
	}
	if !s.found {
		m.Restore(s.init)
		return nil, fmt.Errorf("%w after %d schedules (max %d interleavings)",
			ErrNotReproduced, s.stats.Schedules, opts.MaxInterleavings)
	}

	// Replay the found trace through the enforcement engine to obtain the
	// canonical failure-causing run (and to validate that the schedule
	// reconstruction is deterministic).
	schedule := sched.FromSeq(s.foundTrace, s.fallback)
	m.Restore(s.init)
	enf := sched.NewEnforcer(m)
	res, err := enf.Run(schedule, s.runOpts())
	if err != nil {
		return nil, err
	}
	if !res.Failed() || !s.accept(res.Failure) {
		return nil, fmt.Errorf("core: replay of the found schedule did not reproduce the failure (got %v)", res.Failure)
	}
	s.am.RecordRun(res)

	races := sched.ExtractRaces(res)
	if !opts.NoPhantom {
		races = append(races, sched.PhantomRaces(res, s.am)...)
	}

	return &Reproduction{
		Run:      res,
		Schedule: schedule,
		Races:    races,
		Accesses: s.am,
		Stats:    s.stats,
		Leaves:   s.leaves,
	}, nil
}

// searcher carries the state of one LIFS search.
type searcher struct {
	m        *kvm.Machine
	am       *sched.AccessMap
	opts     LIFSOptions
	fallback []string
	init     *kvm.Snapshot
	stats    SearchStats
	ctx      context.Context
	ctxErr   error // set when ctx canceled the search
	ctxTick  int   // steps since the last ctx check

	visited     map[visKey]bool
	trace       []sched.Exec
	phaseBudget int

	found      bool
	foundTrace []sched.Exec
	leaves     []LeafTrace
	exhausted  bool // MaxSchedules hit
}

type visKey struct {
	sig    uint64
	cur    kvm.ThreadID
	budget int
}

func (s *searcher) runOpts() sched.Options {
	return sched.Options{StepBudget: s.opts.StepBudget, LeakCheck: s.opts.LeakCheck}
}

func (s *searcher) stepBudget() int {
	if s.opts.StepBudget > 0 {
		return s.opts.StepBudget
	}
	return sched.DefaultStepBudget
}

// accept decides whether a failure is the one we are reproducing: the
// kind and failing instruction must match the crash report when they are
// constrained. (WantInstr zero is treated as unconstrained alongside
// NoInstr so the zero-value options accept any location.)
func (s *searcher) accept(f *sanitizer.Failure) bool {
	if f == nil {
		return false
	}
	if s.opts.WantInstr != kir.NoInstr && s.opts.WantInstr != 0 && f.Instr != s.opts.WantInstr {
		return false
	}
	if s.opts.WantKind == sanitizer.KindNone {
		return f.Kind != sanitizer.KindWatchdog
	}
	return f.Kind == s.opts.WantKind
}

// canceled reports whether the surrounding context has been canceled,
// latching ctx.Err() and flipping the search into unwinding mode. The
// actual ctx poll runs every 64 calls: the check sits on the per-step
// hot path and ctx.Err takes a lock.
func (s *searcher) canceled() bool {
	if s.ctxErr != nil {
		return true
	}
	s.ctxTick++
	if s.ctxTick&63 != 0 {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.ctxErr = err
		s.exhausted = true
		return true
	}
	return false
}

// phase explores all schedules with at most k preemptions.
func (s *searcher) phase(k int) {
	if s.ctx.Err() != nil {
		s.ctxErr = s.ctx.Err()
		s.exhausted = true
		return
	}
	s.phaseBudget = k
	s.visited = make(map[visKey]bool)
	// The initial thread choice is itself a decision: branch over every
	// declared thread (spawned threads cannot exist yet).
	for i := range s.fallback {
		if s.found || s.exhausted {
			return
		}
		s.m.Restore(s.init)
		s.trace = s.trace[:0]
		t := s.m.ThreadByName(s.fallback[i])
		if t == nil {
			continue
		}
		s.explore(t.ID, k, nil)
	}
}

// viableThreads lists threads that can progress, in deterministic order.
func (s *searcher) viableThreads() []kvm.ThreadID {
	return s.m.Runnable()
}

// explore runs the machine from its current state with the given current
// thread and preemption budget, branching at decision points. It returns
// true when the target failure was found (the machine and trace are left
// at the failing leaf).
func (s *searcher) explore(cur kvm.ThreadID, budget int, returnStack []kvm.ThreadID) bool {
	for {
		if s.found || s.exhausted || s.canceled() {
			return s.found
		}
		if s.m.Failure() != nil {
			return s.leaf(budget)
		}
		if s.m.AllDone() {
			if s.opts.LeakCheck {
				s.m.CheckLeaks()
			}
			return s.leaf(budget)
		}
		if s.m.Deadlocked() {
			s.injectDeadlock()
			return s.leaf(budget)
		}

		// Return from a lock diversion as soon as the diverted-from thread
		// can run again (mirrors the enforcement engine).
		if n := len(returnStack); n > 0 {
			t := s.m.Thread(returnStack[n-1])
			if s.viable(t) {
				cur = t.ID
				returnStack = returnStack[:n-1]
			} else if t == nil || t.State == kvm.Done || t.State == kvm.Crashed {
				returnStack = returnStack[:n-1]
				continue
			}
		}

		curT := s.m.Thread(cur)
		if !s.viable(curT) {
			if curT != nil && curT.State == kvm.Blocked {
				if owner, held := s.m.LockOwner(curT.WaitLock); held {
					returnStack = append(returnStack, cur)
					cur = owner
					continue
				}
			}
			// Natural switch: branch over every viable thread (free — the
			// paper's interleaving count only counts preemptions of a
			// running thread). No visited-state check here: the chosen
			// child would immediately re-encounter the same machine state
			// at its first conflict point, and the check there performs
			// the deduplication.
			choices := s.viableThreads()
			if len(choices) == 0 {
				s.injectDeadlock()
				return s.leaf(budget)
			}
			if len(choices) == 1 {
				cur = choices[0]
				continue
			}
			snap := s.m.Snapshot()
			tlen := len(s.trace)
			for _, choice := range choices {
				if s.explore(choice, budget, cloneStack(returnStack)) {
					return true
				}
				if s.exhausted {
					return false
				}
				s.m.Restore(snap)
				s.trace = s.trace[:tlen]
			}
			return false
		}

		// Conflicting instructions are the scheduling decision points:
		// equivalent machine states are pruned here (the DPOR-style skip —
		// a path reaching a state another path already explored with the
		// same remaining budget produces only equivalent sequences), and
		// remaining preemption budget branches to every other viable
		// thread.
		if s.isConflictPoint(cur) {
			if s.pruned(cur, budget) {
				return false
			}
			if budget > 0 {
				others := s.othersViable(cur)
				snap := s.m.Snapshot()
				tlen := len(s.trace)
				for _, u := range others {
					if s.explore(u, budget-1, cloneStack(returnStack)) {
						return true
					}
					if s.exhausted {
						return false
					}
					s.m.Restore(snap)
					s.trace = s.trace[:tlen]
				}
				// Fall through: continue the current thread without
				// preempting (budget unchanged).
			}
		}

		ev, err := s.m.Step(cur)
		if err != nil {
			// Driving bug; surface as exhaustion rather than panic.
			s.exhausted = true
			return false
		}
		if !ev.Executed {
			owner, held := s.m.LockOwner(curT.WaitLock)
			if !held {
				continue
			}
			returnStack = append(returnStack, cur)
			cur = owner
			continue
		}
		s.record(cur, curT, ev)
		if len(s.trace) > s.stepBudget() {
			s.m.InjectFailure(&sanitizer.Failure{
				Kind:   sanitizer.KindWatchdog,
				Thread: curT.Name,
				Instr:  ev.Instr.ID,
				Msg:    "step budget exceeded during search",
			})
			return s.leaf(budget)
		}
	}
}

// record appends an executed step to the trace and the access map.
func (s *searcher) record(cur kvm.ThreadID, curT *kvm.Thread, ev kvm.StepEvent) {
	exec := sched.Exec{
		Step:   len(s.trace),
		Thread: cur,
		Name:   curT.Name,
		Instr:  ev.Instr,
	}
	site := sched.Site{Thread: curT.Name, Instr: ev.Instr.ID}
	for _, a := range ev.Accesses {
		exec.Accesses = append(exec.Accesses, sched.AccessRec{Addr: a.Addr, Write: a.Write})
		s.am.Record(site, a.Addr, a.Write)
	}
	if len(curT.Locks) > 0 {
		exec.Lockset = append([]uint64(nil), curT.Locks...)
	}
	if ev.Spawned != kvm.NoThread {
		exec.Spawned = s.m.Thread(ev.Spawned).Name
	}
	s.trace = append(s.trace, exec)
}

// leaf finishes one complete run.
func (s *searcher) leaf(budgetLeft int) bool {
	s.stats.Schedules++
	if s.stats.Schedules >= s.opts.MaxSchedules {
		s.exhausted = true
	}
	f := s.m.Failure()
	if s.opts.RecordLeaves {
		lt := LeafTrace{Failed: f != nil}
		for _, e := range s.trace {
			if e.Instr.Label != "" {
				lt.Labels = append(lt.Labels, e.Instr.Label)
			}
		}
		s.leaves = append(s.leaves, lt)
	}
	if s.accept(f) {
		s.found = true
		s.foundTrace = append([]sched.Exec(nil), s.trace...)
		// The interleaving count is the preemption budget the search
		// actually consumed on this path — exactly the paper's notion
		// (natural switches at thread completion and involuntary lock
		// diversions are free).
		s.stats.Interleavings = s.phaseBudget - budgetLeft
		return true
	}
	return false
}

func (s *searcher) viable(t *kvm.Thread) bool {
	if t == nil {
		return false
	}
	switch t.State {
	case kvm.Runnable:
		return true
	case kvm.Blocked:
		_, held := s.m.LockOwner(t.WaitLock)
		return !held
	default:
		return false
	}
}

func (s *searcher) othersViable(cur kvm.ThreadID) []kvm.ThreadID {
	var out []kvm.ThreadID
	for _, tid := range s.viableThreads() {
		if tid != cur {
			out = append(out, tid)
		}
	}
	return out
}

// isConflictPoint reports whether the thread's next instruction performs an
// access known (from any previous run) to conflict with an access of a
// different thread — the scheduling decision points of LIFS.
func (s *searcher) isConflictPoint(cur kvm.ThreadID) bool {
	accs := s.m.PeekAccesses(cur)
	if len(accs) == 0 {
		return false
	}
	name := s.m.Thread(cur).Name
	for _, a := range accs {
		if s.am.ConflictsAt(name, a.Addr, a.Write) {
			return true
		}
	}
	return false
}

// pruned consults and updates the visited-state set.
func (s *searcher) pruned(cur kvm.ThreadID, budget int) bool {
	if s.opts.NoPruning {
		return false
	}
	key := visKey{sig: s.m.StateSignature(), cur: cur, budget: budget}
	if s.visited[key] {
		s.stats.Pruned++
		return true
	}
	s.visited[key] = true
	return false
}

// injectDeadlock mirrors the enforcement engine's deadlock failure.
func (s *searcher) injectDeadlock() {
	for i := 0; i < s.m.NumThreads(); i++ {
		t := s.m.Thread(kvm.ThreadID(i))
		if t.State == kvm.Blocked {
			in, _ := s.m.NextInstr(t.ID)
			s.m.InjectFailure(&sanitizer.Failure{
				Kind:   sanitizer.KindDeadlock,
				Thread: t.Name,
				Instr:  in.ID,
				Addr:   t.WaitLock,
				Msg:    "all unfinished threads are blocked",
			})
			return
		}
	}
	s.m.InjectFailure(&sanitizer.Failure{Kind: sanitizer.KindDeadlock, Instr: kir.NoInstr, Msg: "no runnable thread"})
}

func cloneStack(st []kvm.ThreadID) []kvm.ThreadID {
	if len(st) == 0 {
		return nil
	}
	return append([]kvm.ThreadID(nil), st...)
}

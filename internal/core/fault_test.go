package core

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"aitia/internal/faultinject"
	"aitia/internal/scenarios"
)

// quickRetry keeps fault-test backoffs negligible.
var quickRetry = faultinject.RetryPolicy{
	MaxAttempts: 5,
	BaseBackoff: time.Microsecond,
	MaxBackoff:  10 * time.Microsecond,
}

// faultedPipeline runs Reproduce + Analyze under a fresh plan with the
// given seed/rate at the given worker count.
func faultedPipeline(t *testing.T, sc *scenarios.Scenario, seed int64, rate float64, workers int) (*Reproduction, *Diagnosis, error) {
	t.Helper()
	plan := faultinject.NewPlan(seed, rate)
	m := mustMachine(t, sc.MustProgram())
	rep, err := Reproduce(m, LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
		Workers:   workers,
		Fault:     plan,
		Retry:     quickRetry,
	})
	if err != nil {
		return nil, nil, err
	}
	d, err := Analyze(m, rep, AnalysisOptions{
		Workers: workers,
		Fault:   plan,
		Retry:   quickRetry,
	})
	return rep, d, err
}

// TestFaultedReproduceDeterministic is the tentpole invariant: for any
// fixed fault seed, a serial and an 8-worker run of the full pipeline
// inject the same faults and produce identical reproductions, verdicts
// and chains (including identical Partial degradation) across the
// scenario corpus. Like the chaos CI gate, it runs the hand-built
// subset: factory growth must not swell this already-heavy test, and
// the generated scenarios exercise the same mechanisms.
func TestFaultedReproduceDeterministic(t *testing.T) {
	for _, sc := range scenarios.HandBuilt() {
		sc := sc
		for _, seed := range []int64{3, 11} {
			seed := seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.Name, seed), func(t *testing.T) {
				t.Parallel()
				prog := sc.MustProgram()
				repS, dS, err := faultedPipeline(t, sc, seed, 0.2, 1)
				if err != nil {
					if IsNotReproduced(err) {
						t.Skipf("scenario does not reproduce: %v", err)
					}
					if errors.Is(err, faultinject.ErrExhausted) {
						// The replay exhausted its budget under this seed;
						// the parallel run must fail identically.
						_, _, perr := faultedPipeline(t, sc, seed, 0.2, 8)
						if !errors.Is(perr, faultinject.ErrExhausted) {
							t.Fatalf("serial exhausted but workers=8 got %v", perr)
						}
						return
					}
					t.Fatalf("serial faulted pipeline: %v", err)
				}
				repP, dP, err := faultedPipeline(t, sc, seed, 0.2, 8)
				if err != nil {
					t.Fatalf("workers=8 faulted pipeline: %v", err)
				}

				if !reflect.DeepEqual(repP.Schedule, repS.Schedule) {
					t.Errorf("schedules differ:\n  workers=8 %v\n  serial    %v", repP.Schedule, repS.Schedule)
				}
				if !reflect.DeepEqual(repP.Races, repS.Races) {
					t.Errorf("race sets differ")
				}
				if len(dS.Tested) != len(dP.Tested) {
					t.Fatalf("test-set sizes differ: %d vs %d", len(dS.Tested), len(dP.Tested))
				}
				for i := range dS.Tested {
					if dS.Tested[i].Verdict != dP.Tested[i].Verdict {
						t.Errorf("verdict %d differs: %v vs %v", i, dS.Tested[i].Verdict, dP.Tested[i].Verdict)
					}
				}
				if cs, cp := dS.Chain.Format(prog), dP.Chain.Format(prog); cs != cp {
					t.Errorf("chains differ: %q vs %q", cs, cp)
				}
				if dS.Partial != dP.Partial || dS.PartialReason != dP.PartialReason {
					t.Errorf("degradation differs: (%v,%q) vs (%v,%q)",
						dS.Partial, dS.PartialReason, dP.Partial, dP.PartialReason)
				}
			})
		}
	}
}

// TestFlipExhaustionDegradesToPartial: when every flip-test restore is
// lost (rate-1 snapshot-restore faults), the analysis must not fail — it
// returns every race as VerdictUnknown and the diagnosis as Partial with
// a machine-readable reason, with an empty chain.
func TestFlipExhaustionDegradesToPartial(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	m := mustMachine(t, sc.MustProgram())
	rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(1, 0).SetRate(faultinject.KindSnapshotRestore, 1)
	for _, workers := range []int{1, 4} {
		d, err := Analyze(m, rep, AnalysisOptions{Workers: workers, Fault: plan, Retry: quickRetry})
		if err != nil {
			t.Fatalf("workers=%d: analysis must degrade, not fail: %v", workers, err)
		}
		if !d.Partial {
			t.Fatalf("workers=%d: diagnosis not Partial", workers)
		}
		if want := fmt.Sprintf("flip_retries_exhausted=%d", len(d.Tested)); d.PartialReason != want {
			t.Errorf("workers=%d: reason = %q, want %q", workers, d.PartialReason, want)
		}
		if len(d.Unknown) != len(d.Tested) || len(d.RootCause) != 0 {
			t.Errorf("workers=%d: unknown=%d rootcause=%d of %d tested",
				workers, len(d.Unknown), len(d.RootCause), len(d.Tested))
		}
		for _, tr := range d.Tested {
			if tr.Verdict != VerdictUnknown {
				t.Fatalf("workers=%d: verdict %v, want unknown", workers, tr.Verdict)
			}
		}
		if d.Chain == nil || d.Chain.Len() != 0 {
			t.Errorf("workers=%d: chain should be empty, got %v", workers, d.Chain)
		}
	}
	if st := plan.Stats(); st.Exhausted == 0 {
		t.Error("exhaustion not counted on the plan")
	}
}

// TestWorkerDeathDegradesToSerial: with every worker-VM launch dying
// (rate-1 worker-death, all retries included), the parallel pipeline
// falls back to the main machine and still produces the exact chain of
// an unfaulted serial run — losing the fleet costs throughput, never
// correctness.
func TestWorkerDeathDegradesToSerial(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()

	m1 := mustMachine(t, prog)
	rep1, err := Reproduce(m1, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := Analyze(m1, rep1, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(5, 0).SetRate(faultinject.KindWorkerDeath, 1)
	m2 := mustMachine(t, prog)
	rep2, err := Reproduce(m2, LIFSOptions{
		WantKind: sc.WantKind, WantInstr: sc.WantInstr(),
		Workers: 4, Fault: plan, Retry: quickRetry,
	})
	if err != nil {
		t.Fatalf("parallel search must degrade to serial, not fail: %v", err)
	}
	if !reflect.DeepEqual(rep2.Schedule, rep1.Schedule) {
		t.Errorf("degraded schedule differs")
	}
	d2, err := Analyze(m2, rep2, AnalysisOptions{Workers: 4, Fault: plan, Retry: quickRetry})
	if err != nil {
		t.Fatalf("parallel analysis must degrade to serial, not fail: %v", err)
	}
	if d2.Partial {
		t.Error("worker death must not make the diagnosis Partial")
	}
	if got, want := d2.Chain.Format(prog), quiet.Chain.Format(prog); got != want {
		t.Errorf("degraded chain = %q, want %q", got, want)
	}
	if st := plan.Stats(); st.Fired[faultinject.KindWorkerDeath] == 0 {
		t.Error("worker-death faults did not fire")
	}
}

// TestReplayExhaustionFailsWithExhausted: the LIFS replay is load-bearing
// (no reproduction without it), so exhausting its retries is a real
// error — and a classified one, so the service can requeue the job.
func TestReplayExhaustionFailsWithExhausted(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	plan := faultinject.NewPlan(2, 0).SetRate(faultinject.KindSnapshotRestore, 1)
	m := mustMachine(t, sc.MustProgram())
	_, err := Reproduce(m, LIFSOptions{
		WantKind: sc.WantKind, WantInstr: sc.WantInstr(),
		Fault: plan, Retry: quickRetry,
	})
	if !errors.Is(err, faultinject.ErrExhausted) || !faultinject.Is(err) {
		t.Fatalf("err = %v, want retry exhaustion carrying the fault", err)
	}
	if !strings.Contains(err.Error(), "lifs.replay") {
		t.Errorf("error %q does not name the injection point", err)
	}
}

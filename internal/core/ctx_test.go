package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
)

// slowSearchProg builds a program whose LIFS search space is enormous
// (two threads hammering one shared word in long loops) and which never
// produces the wanted failure kind — so the search only ends by budget
// exhaustion or cancellation.
func slowSearchProg(t *testing.T) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	b.Var("x", 0)
	for _, fn := range []string{"fa", "fb"} {
		f := b.Func(fn)
		f.Mov(kir.R3, kir.Imm(400))
		f.At("loop").Load(kir.R1, kir.G("x"))
		f.Add(kir.R1, kir.Imm(1))
		f.Store(kir.G("x"), kir.R(kir.R1))
		f.Sub(kir.R3, kir.Imm(1))
		f.Bne(kir.R(kir.R3), kir.Imm(0), "loop")
		f.Ret()
	}
	b.Thread("A", "fa")
	b.Thread("B", "fb")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// TestReproduceContextCancelMidSearch: canceling the context while LIFS
// is exploring aborts the search promptly with ctx.Err().
func TestReproduceContextCancelMidSearch(t *testing.T) {
	m, err := kvm.New(slowSearchProg(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = ReproduceContext(ctx, m, LIFSOptions{
		WantKind:     sanitizer.KindNullDeref, // never happens: search runs until stopped
		MaxSchedules: 1 << 30,
		StepBudget:   1 << 20,
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt abort", elapsed)
	}
}

// TestAnalyzeContextCanceled: a pre-canceled context stops Causality
// Analysis before any flip test and surfaces ctx.Err() in both the
// serial and the parallel (diagnoser-fleet) paths.
func TestAnalyzeContextCanceled(t *testing.T) {
	prog := figure1(t)
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Reproduce(m, LIFSOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		if err := m.Reset(); err != nil {
			t.Fatal(err)
		}
		_, err = AnalyzeContext(ctx, m, rep, AnalysisOptions{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

package core

import (
	"testing"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// figure1 builds the paper's Figure 1 example:
//
//	Thread A: A1: ptr_valid = 1;           A2: local = *ptr
//	Thread B: B1: if (ptr_valid == 0) ret; B2: ptr = NULL
//
// with ptr initially pointing at a valid object and ptr_valid = 0. The
// NULL dereference needs A1 => B1 (so B2 executes) and B2 => A2.
func figure1(t testing.TB) *kir.Program {
	b := kir.NewBuilder()
	b.Var("ptr_valid", 0)
	b.VarAddrOf("ptr", "obj")
	b.Global("obj", 1, 42)

	a := b.Func("thread_a")
	a.Store(kir.G("ptr_valid"), kir.Imm(1)).L("A1")
	a.Load(kir.R1, kir.G("ptr")).L("A2")
	a.Load(kir.R2, kir.Ind(kir.R1, 0)).L("A2d")
	a.Ret()

	fb := b.Func("thread_b")
	fb.Load(kir.R1, kir.G("ptr_valid")).L("B1")
	fb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	fb.Store(kir.G("ptr"), kir.Imm(0)).L("B2")
	fb.At("out").Ret()

	b.Thread("A", "thread_a")
	b.Thread("B", "thread_b")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build figure1: %v", err)
	}
	return prog
}

func mustMachine(t testing.TB, prog *kir.Program) *kvm.Machine {
	t.Helper()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatalf("new machine: %v", err)
	}
	return m
}

func TestReproduceFigure1(t *testing.T) {
	prog := figure1(t)
	m := mustMachine(t, prog)

	rep, err := Reproduce(m, LIFSOptions{})
	if err != nil {
		t.Fatalf("Reproduce: %v", err)
	}
	if rep.Run.Failure == nil || rep.Run.Failure.Kind != sanitizer.KindNullDeref {
		t.Fatalf("want NULL deref, got %v", rep.Run.Failure)
	}
	if rep.Stats.Interleavings != 1 {
		t.Errorf("want 1 interleaving, got %d", rep.Stats.Interleavings)
	}
	seq := rep.Run.FormatSeq(prog, false)
	want := "A1 => B1 => B2 => A2 => A2d"
	if seq != want {
		t.Errorf("failure-causing sequence = %q, want %q", seq, want)
	}

	// Both data races must be in the extracted set, in observed order.
	var sawValid, sawPtr bool
	for _, r := range rep.Races {
		switch {
		case prog.InstrName(r.First.Instr) == "A1" && prog.InstrName(r.Second.Instr) == "B1":
			sawValid = true
		case prog.InstrName(r.First.Instr) == "B2" && prog.InstrName(r.Second.Instr) == "A2":
			sawPtr = true
		}
	}
	if !sawValid || !sawPtr {
		var got []string
		for _, r := range rep.Races {
			got = append(got, r.Format(prog))
		}
		t.Errorf("races missing: sawValid=%v sawPtr=%v; got %v", sawValid, sawPtr, got)
	}
}

// TestReplayDeterminism re-runs the reproduced schedule and checks that the
// same sequence and failure come back — the property Causality Analysis
// relies on when perturbing single races.
func TestReplayDeterminism(t *testing.T) {
	prog := figure1(t)
	m := mustMachine(t, prog)
	rep, err := Reproduce(m, LIFSOptions{})
	if err != nil {
		t.Fatalf("Reproduce: %v", err)
	}
	first := rep.Run.FormatSeq(prog, true)

	m2 := mustMachine(t, prog)
	res, err := sched.NewEnforcer(m2).Run(rep.Schedule, sched.Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if got := res.FormatSeq(prog, true); got != first {
		t.Errorf("replay diverged:\n got %q\nwant %q", got, first)
	}
	if !res.Failed() || !res.Failure.SameSymptom(rep.Run.Failure) {
		t.Errorf("replay failure = %v, want %v", res.Failure, rep.Run.Failure)
	}
}

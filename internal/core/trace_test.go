package core

import (
	"bytes"
	"testing"

	"aitia/internal/obs"
	"aitia/internal/scenarios"
)

// traceDiagnose runs the full pipeline on a scenario with tracing and the
// given worker count and returns the collected events plus the results.
func traceDiagnose(t testing.TB, name string, workers int) ([]obs.Event, *Reproduction, *Diagnosis) {
	t.Helper()
	sc, ok := scenarios.ByName(name)
	if !ok {
		t.Fatalf("unknown scenario %q", name)
	}
	m := mustMachine(t, sc.MustProgram())
	tr := obs.New()
	rep, err := Reproduce(m, LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
		Workers:   workers,
		Tracer:    tr,
	})
	if err != nil {
		t.Fatalf("Reproduce(%s, workers=%d): %v", name, workers, err)
	}
	d, err := Analyze(m, rep, AnalysisOptions{Workers: workers, Tracer: tr})
	if err != nil {
		t.Fatalf("Analyze(%s, workers=%d): %v", name, workers, err)
	}
	return tr.Events(), rep, d
}

// TestTraceDeterministicAcrossWorkers pins the tracer's ordering contract:
// the canonical event sequence (category, name, track and Args of every
// non-volatile span, in commit order) of a traced diagnosis is identical
// for Workers:1 and Workers:8. Timing, worker placement and schedule
// counts legitimately differ — they live in Info or in Volatile events,
// which the canonical projection drops.
func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	for _, name := range []string{"cve-2017-15649", "fig1"} {
		t.Run(name, func(t *testing.T) {
			serial, _, _ := traceDiagnose(t, name, 1)
			parallel, _, _ := traceDiagnose(t, name, 8)
			got := obs.Canonical(parallel)
			want := obs.Canonical(serial)
			if len(got) != len(want) {
				t.Fatalf("workers=8 canonical trace has %d events, workers=1 has %d\nserial:\n%s\nparallel:\n%s",
					len(got), len(want), join(want), join(got))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("canonical[%d]:\n  workers=8: %s\n  workers=1: %s", i, got[i], want[i])
				}
			}
		})
	}
}

func join(lines []string) string {
	var buf bytes.Buffer
	for _, l := range lines {
		buf.WriteString("  ")
		buf.WriteString(l)
		buf.WriteByte('\n')
	}
	return buf.String()
}

// TestTraceChromeValid exports a real diagnosis trace to Chrome trace-event
// JSON, validates it, and checks the span population against the pipeline's
// own stats: one phase span per deepening phase, one flip span per tested
// race, plus the search/replay/analyze roots and the search units.
func TestTraceChromeValid(t *testing.T) {
	events, rep, d := traceDiagnose(t, "cve-2017-15649", 8)

	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, events); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if err := obs.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v", err)
	}

	count := map[string]int{}
	for _, ev := range events {
		count[ev.Cat+"/"+ev.Name]++
	}
	if got, want := count["lifs/phase"], len(rep.Stats.Phases); got != want {
		t.Errorf("lifs/phase spans = %d, want %d (one per deepening phase)", got, want)
	}
	if got, want := count["ca/flip"], len(d.Tested); got != want {
		t.Errorf("ca/flip spans = %d, want %d (one per tested race)", got, want)
	}
	for _, must := range []string{"lifs/search", "lifs/replay", "ca/analyze"} {
		if count[must] != 1 {
			t.Errorf("%s spans = %d, want exactly 1", must, count[must])
		}
	}
	for _, some := range []string{"lifs/probe", "lifs/task", "pool/lifs-task", "pool/ca-flip"} {
		if count[some] == 0 {
			t.Errorf("no %s spans in an 8-worker diagnosis trace", some)
		}
	}
}

// BenchmarkReproduceTracingDisabled against BenchmarkReproduceTracingEnabled
// measures the cost the tracer adds to an untraced search — the nil-tracer
// fast path should make the disabled case indistinguishable from the
// pre-tracer searcher.
func BenchmarkReproduceTracingDisabled(b *testing.B) {
	benchmarkReproduce(b, false)
}

func BenchmarkReproduceTracingEnabled(b *testing.B) {
	benchmarkReproduce(b, true)
}

func benchmarkReproduce(b *testing.B, traced bool) {
	sc, ok := scenarios.ByName("fig1")
	if !ok {
		b.Fatal("unknown scenario fig1")
	}
	prog := sc.MustProgram()
	opts := LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if traced {
			opts.Tracer = obs.New()
		}
		if _, err := Reproduce(mustMachine(b, prog), opts); err != nil {
			b.Fatal(err)
		}
	}
}

// Package core implements the paper's primary contribution: Least
// Interleaving First Search (LIFS, §3.3) for reproducing a kernel
// concurrency failure as a totally ordered failure-causing instruction
// sequence, and Causality Analysis (§3.4) for distilling that sequence
// into a causality chain — the root cause.
//
// # LIFS
//
// LIFS explores interleavings of conflicting instructions in
// least-interleaving-first order: iterative deepening on the number of
// preemptions, where a preemption suspends the running thread immediately
// before a conflicting memory access and resumes another thread.
// Conflicting instructions are discovered dynamically from the accesses
// observed in earlier runs (including instructions that only execute under
// race-steered control flows), and equivalent machine states are pruned
// DPOR-style via state signatures.
//
// # Causality Analysis
//
// Causality Analysis takes the failure-causing sequence and its data races
// (the test set), then flips each race's interleaving order one at a time
// — keeping every other order fixed — and re-executes. A race whose flip
// prevents the failure joins the root cause set; a race whose flip still
// fails is benign and is excluded. Flipping a root-cause race and
// observing which later root-cause races stop occurring yields the
// causality edges (race-steered control flow); races that surround a
// nested root-cause race are reported as ambiguous (§3.4).
package core

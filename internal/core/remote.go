package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// This file is the fleet seam of LIFS: a deepening phase's parallel
// branch units — the same units the local worker pool shards — exported
// as a self-contained, serializable batch that any process holding the
// same program can execute. Branch exploration is a pure function of
// (initial machine state, phase budget, frozen base AccessMap, probe
// visited claims, unit identity, search options): everything in that
// tuple rides in the batch, so a remote execution returns byte-identical
// access records, leaves and candidate traces to a local one — which is
// what lets a fleet-wide diagnosis reproduce the serial diagnosis
// exactly, whichever node ran which branch, however many times a lost
// lease forced a branch to be re-executed.

// BranchUnitMeta is the pruning-relevant identity of one phase unit.
// Remote pruneCheck/exempt decisions consult the claimant unit's group
// and probe flag, so the whole ordinal-indexed unit table travels.
type BranchUnitMeta struct {
	Group int  `json:"g"`
	Probe bool `json:"p,omitempty"`
}

// BranchVisited is one probe visited-state claim (serializable twin of
// the internal visited-set entry).
type BranchVisited struct {
	Sig     uint64 `json:"sig"`
	Cur     int    `json:"cur"`
	Budget  int    `json:"budget"`
	Ordinal int    `json:"ordinal"`
}

// BranchOpts is the subset of LIFSOptions a branch execution depends on.
type BranchOpts struct {
	StepBudget   int            `json:"step_budget,omitempty"`
	MaxSchedules int            `json:"max_schedules,omitempty"`
	LeakCheck    bool           `json:"leak_check,omitempty"`
	RecordLeaves bool           `json:"record_leaves,omitempty"`
	NoPruning    bool           `json:"no_pruning,omitempty"`
	WantKind     sanitizer.Kind `json:"want_kind,omitempty"`
	WantInstr    kir.InstrID    `json:"want_instr,omitempty"`
}

// BranchWork names one branch unit to execute: a task unit's ordinal
// and branch choice within the batch's unit table.
type BranchWork struct {
	Ordinal int `json:"ordinal"`
	Group   int `json:"group"`
	Choice  int `json:"choice"`
	Initial int `json:"initial"`
}

// BranchBatch is one deepening phase's dispatchable branch work: the
// shared execution context (frozen base map, probe claims, unit table,
// options) plus the task units to run. The batch is pure data — JSON
// for a wire transport, shared by reference in process.
type BranchBatch struct {
	// ProgHash identifies (and, over a wire transport, validates) the
	// program; InitSig pins the machine's initial state signature.
	ProgHash string          `json:"prog_hash"`
	InitSig  uint64          `json:"init_sig"`
	Budget   int             `json:"budget"` // the phase's preemption budget k
	Units    []BranchUnitMeta `json:"units"`
	Visited  []BranchVisited  `json:"visited,omitempty"`
	Base     []sched.AccessExport `json:"base,omitempty"`
	Opts     BranchOpts           `json:"opts"`
	Work     []BranchWork         `json:"work"`
}

// BranchResult is one executed branch unit's complete outcome — exactly
// the state a local run leaves on its unit.
type BranchResult struct {
	Ordinal    int                  `json:"ordinal"`
	Accesses   []sched.AccessExport `json:"accesses,omitempty"`
	Leaves     []LeafTrace          `json:"leaves,omitempty"`
	Accepted   bool                 `json:"accepted,omitempty"`
	Trace      []sched.Exec         `json:"trace,omitempty"`
	BudgetLeft int                  `json:"budget_left,omitempty"`
	Schedules  int64                `json:"schedules,omitempty"`
	Pruned     int64                `json:"pruned,omitempty"`
	Replayed   uint64               `json:"replayed,omitempty"`
	Exhausted  bool                 `json:"exhausted,omitempty"`
}

// BranchDispatcher executes a phase's branch batch somewhere else — the
// fleet seam of LIFSOptions.Dispatch. RunBranches returns one result
// slot per batch.Work entry; a nil slot means that branch was not
// executed (node lost, lease fenced off, fleet partitioned) and the
// caller re-runs it locally, so a dispatcher degrades by returning less,
// never by blocking. Degraded reports the machine-readable reason when
// the dispatcher has fallen back to local-only execution ("" while
// healthy); diagnoses surface it as a PartialReason.
type BranchDispatcher interface {
	RunBranches(ctx context.Context, prog *kir.Program, batch *BranchBatch) ([]*BranchResult, error)
	Degraded() string
}

// ErrBranchTask rejects a malformed or mismatched branch execution
// request (wrong program, foreign initial state, ordinal out of range).
var ErrBranchTask = errors.New("core: invalid branch task")

// ExecuteBranch runs one unit of a branch batch on a fresh VM of prog
// and returns its complete outcome. It is the remote side of the fleet
// seam; determinism holds because everything exploration consults is in
// the batch and the fresh machine's initial state is signature-checked
// against the coordinator's.
func ExecuteBranch(ctx context.Context, prog *kir.Program, batch *BranchBatch, i int) (*BranchResult, error) {
	if i < 0 || i >= len(batch.Work) {
		return nil, fmt.Errorf("%w: work index %d of %d", ErrBranchTask, i, len(batch.Work))
	}
	w := batch.Work[i]
	if w.Ordinal < 0 || w.Ordinal >= len(batch.Units) {
		return nil, fmt.Errorf("%w: ordinal %d outside unit table of %d", ErrBranchTask, w.Ordinal, len(batch.Units))
	}
	if h := prog.Hash(); batch.ProgHash != "" && batch.ProgHash != h {
		return nil, fmt.Errorf("%w: program hash %s, batch wants %s", ErrBranchTask, h, batch.ProgHash)
	}
	m, err := kvm.New(prog)
	if err != nil {
		return nil, err
	}
	if batch.InitSig != 0 && m.StateSignature() != batch.InitSig {
		return nil, fmt.Errorf("%w: initial state signature mismatch", ErrBranchTask)
	}
	maxSched := batch.Opts.MaxSchedules
	if maxSched <= 0 {
		maxSched = DefaultMaxSchedules
	}
	s := &searcher{
		m:  m,
		am: sched.ImportAccessMap(batch.Base),
		opts: LIFSOptions{
			StepBudget:   batch.Opts.StepBudget,
			MaxSchedules: maxSched,
			LeakCheck:    batch.Opts.LeakCheck,
			RecordLeaves: batch.Opts.RecordLeaves,
			NoPruning:    batch.Opts.NoPruning,
			WantKind:     batch.Opts.WantKind,
			WantInstr:    batch.Opts.WantInstr,
			// Workers > 1 selects the parallel-task explorer semantics
			// (read-only shared claims, own revisits in a local map) —
			// the semantics the batch's visited snapshot was built for.
			Workers: 2,
		},
		ctx: ctx,
	}
	s.initSig = m.StateSignature()
	s.init = m.Snapshot()
	s.best.Store(math.MaxInt64)
	p := &phaseRun{s: s, k: batch.Budget, base: s.am, vis: newVisitedSet()}
	for _, um := range batch.Units {
		p.addUnit(um.Group, um.Probe, 0, 0)
	}
	for _, ve := range batch.Visited {
		p.vis.insert(visKey{sig: ve.Sig, cur: kvm.ThreadID(ve.Cur), budget: ve.Budget}, ve.Ordinal)
	}
	u := p.units[w.Ordinal]
	u.group, u.probe, u.choice, u.initial = w.Group, false, w.Choice, kvm.ThreadID(w.Initial)
	s.runUnit(p, u, m, false, -1, batch.Budget)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &BranchResult{
		Ordinal:   w.Ordinal,
		Accesses:  u.rec.Export(),
		Leaves:    u.leaves,
		Schedules: s.schedules.Load(),
		Pruned:    s.pruned.Load(),
		Replayed:  s.prefix.replayed.Load(),
		Exhausted: s.exhausted.Load(),
	}
	if u.cand != nil {
		res.Accepted = true
		res.Trace = u.cand.trace
		res.BudgetLeft = u.cand.budgetLeft
	}
	return res, nil
}

// exportBatch builds the phase's dispatchable batch from the live
// search state. Probes have all completed by dispatch time, so the
// visited set is exactly the probe claims a remote explorer must see.
func (s *searcher) exportBatch(p *phaseRun, k int, tasks []*unit) *BranchBatch {
	b := &BranchBatch{
		ProgHash: s.m.Prog().Hash(),
		InitSig:  s.initSig,
		Budget:   k,
		Base:     p.base.Export(),
		Opts: BranchOpts{
			StepBudget:   s.opts.StepBudget,
			MaxSchedules: s.opts.MaxSchedules,
			LeakCheck:    s.opts.LeakCheck,
			RecordLeaves: s.opts.RecordLeaves,
			NoPruning:    s.opts.NoPruning,
			WantKind:     s.opts.WantKind,
			WantInstr:    s.opts.WantInstr,
		},
	}
	for _, u := range p.units {
		b.Units = append(b.Units, BranchUnitMeta{Group: u.group, Probe: u.probe})
	}
	for _, ve := range exportVisited(p.vis) {
		b.Visited = append(b.Visited, BranchVisited{Sig: ve.Sig, Cur: ve.Cur, Budget: ve.Budget, Ordinal: ve.Ordinal})
	}
	for _, tu := range tasks {
		b.Work = append(b.Work, BranchWork{Ordinal: tu.ordinal, Group: tu.group, Choice: tu.choice, Initial: int(tu.initial)})
	}
	return b
}

// dispatchTasks runs the phase's parallel tasks through the fleet
// dispatcher, importing whatever the fleet executed and sweeping up the
// rest on the main machine — serially, in ordinal order, exactly the
// degradation path a failed local worker fleet takes. The ordinal
// winner rule survives every outcome: remote results are imported in
// ordinal order, units beyond an accepted candidate are skipped (as the
// serial search skips them), and unexecuted units run locally.
func (s *searcher) dispatchTasks(p *phaseRun, k int, tasks []*unit, d BranchDispatcher) {
	batch := s.exportBatch(p, k, tasks)
	results, err := d.RunBranches(s.ctx, s.m.Prog(), batch)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		s.setCtxErr(err)
		return
	}
	byOrdinal := make(map[int]*BranchResult, len(results))
	if err == nil {
		for _, res := range results {
			if res != nil {
				byOrdinal[res.Ordinal] = res
			}
		}
	}
	for _, tu := range tasks {
		if tu.ran || s.exhausted.Load() || s.ctxErr != nil {
			continue
		}
		if s.best.Load() < int64(tu.ordinal) {
			continue
		}
		if res, ok := byOrdinal[tu.ordinal]; ok {
			s.importBranchResult(tu, res)
			continue
		}
		s.m.Restore(s.init)
		s.runUnit(p, tu, s.m, false, -1, k)
	}
}

// importBranchResult installs a remotely executed unit's outcome as if
// the unit had run on a local worker.
func (s *searcher) importBranchResult(u *unit, res *BranchResult) {
	u.ran = true
	u.tWorker = -2 // remote execution marker (obs Info arg only)
	u.rec = sched.ImportAccessMap(res.Accesses)
	u.leaves = res.Leaves
	s.pruned.Add(res.Pruned)
	s.prefix.replayed.Add(res.Replayed)
	if n := s.schedules.Add(res.Schedules); int(n) >= s.opts.MaxSchedules || res.Exhausted {
		s.exhausted.Store(true)
	}
	if res.Accepted {
		u.cand = &candidate{trace: res.Trace, budgetLeft: res.BudgetLeft}
		for {
			b := s.best.Load()
			if int64(u.ordinal) >= b || s.best.CompareAndSwap(b, int64(u.ordinal)) {
				break
			}
		}
	}
}

package core

import (
	"context"
	"reflect"
	"sync/atomic"
	"testing"

	"aitia/internal/kir"
	"aitia/internal/scenarios"
)

// loopbackDispatcher is the minimal BranchDispatcher: every branch is
// executed in-process via ExecuteBranch from the serialized batch, the
// exact round-trip a remote fleet worker performs. skip drops every
// n-th branch (slot left nil) to exercise the local catch-up sweep;
// skip 0 executes everything.
type loopbackDispatcher struct {
	skip     int
	executed atomic.Int64
	dropped  atomic.Int64
	degraded string
}

func (d *loopbackDispatcher) Degraded() string { return d.degraded }

func (d *loopbackDispatcher) RunBranches(ctx context.Context, prog *kir.Program, batch *BranchBatch) ([]*BranchResult, error) {
	results := make([]*BranchResult, len(batch.Work))
	for i := range batch.Work {
		if d.skip > 0 && (int(d.executed.Load()+d.dropped.Load()))%d.skip == d.skip-1 {
			d.dropped.Add(1)
			continue
		}
		res, err := ExecuteBranch(ctx, prog, batch, i)
		if err != nil {
			return nil, err
		}
		results[i] = res
		d.executed.Add(1)
	}
	return results, nil
}

// deadDispatcher executes nothing — the fully partitioned fleet. Every
// branch must be swept up by the local serial fallback.
type deadDispatcher struct{}

func (deadDispatcher) Degraded() string { return "fleet_partitioned" }
func (deadDispatcher) RunBranches(ctx context.Context, prog *kir.Program, batch *BranchBatch) ([]*BranchResult, error) {
	return make([]*BranchResult, len(batch.Work)), nil
}

// TestDispatchedReproduceMatchesParallel: a search whose task units run
// through the dispatch path — serialized to a BranchBatch, re-executed
// on a fresh VM by ExecuteBranch, re-imported — must reproduce exactly
// what the in-process parallel search finds, across the hand-built
// corpus. This is the determinism contract fleet execution rests on.
func TestDispatchedReproduceMatchesParallel(t *testing.T) {
	for _, sc := range scenarios.HandBuilt() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			prog := sc.MustProgram()
			opts := LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: sc.WantInstr(),
				LeakCheck: sc.NeedsLeakCheck(),
				Workers:   4,
			}
			base, err := Reproduce(mustMachine(t, prog), opts)
			if err != nil {
				if IsNotReproduced(err) {
					t.Skipf("scenario does not reproduce: %v", err)
				}
				t.Fatalf("baseline Reproduce: %v", err)
			}

			for _, tc := range []struct {
				name string
				d    BranchDispatcher
			}{
				{"all-remote", &loopbackDispatcher{}},
				{"every-3rd-dropped", &loopbackDispatcher{skip: 3}},
				{"all-dropped", deadDispatcher{}},
			} {
				dopts := opts
				dopts.Dispatch = tc.d
				got, err := Reproduce(mustMachine(t, prog), dopts)
				if err != nil {
					t.Fatalf("%s Reproduce: %v", tc.name, err)
				}
				if !reflect.DeepEqual(got.Schedule, base.Schedule) {
					t.Errorf("%s schedule = %v\nwant      %v", tc.name, got.Schedule, base.Schedule)
				}
				if !reflect.DeepEqual(got.Races, base.Races) {
					t.Errorf("%s races = %v, want %v", tc.name, got.Races, base.Races)
				}
				if got.Stats.Interleavings != base.Stats.Interleavings {
					t.Errorf("%s interleavings = %d, want %d", tc.name, got.Stats.Interleavings, base.Stats.Interleavings)
				}
			}
		})
	}
}

// TestExecuteBranchValidation: a batch shipped to the wrong program (or
// indexed out of range) is rejected, not silently mis-executed.
func TestExecuteBranchValidation(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	d := &captureDispatcher{}
	opts := LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		Workers:   4,
		Dispatch:  d,
	}
	if _, err := Reproduce(mustMachine(t, prog), opts); err != nil {
		t.Fatal(err)
	}
	if d.batch == nil {
		t.Skip("search dispatched no task units for this scenario")
	}
	if _, err := ExecuteBranch(context.Background(), prog, d.batch, len(d.batch.Work)); err == nil {
		t.Error("out-of-range index accepted")
	}
	other, _ := scenarios.ByName("fig1")
	if _, err := ExecuteBranch(context.Background(), other.MustProgram(), d.batch, 0); err == nil {
		t.Error("batch executed against the wrong program")
	}
}

// captureDispatcher records the first non-empty batch while executing
// everything, so validation tests get a real batch to corrupt.
type captureDispatcher struct {
	inner loopbackDispatcher
	batch *BranchBatch
}

func (d *captureDispatcher) Degraded() string { return "" }
func (d *captureDispatcher) RunBranches(ctx context.Context, prog *kir.Program, batch *BranchBatch) ([]*BranchResult, error) {
	if d.batch == nil && len(batch.Work) > 0 {
		d.batch = batch
	}
	return d.inner.RunBranches(ctx, prog, batch)
}

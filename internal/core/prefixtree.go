package core

import (
	"fmt"
	"sync/atomic"

	"aitia/internal/faultinject"
	"aitia/internal/kvm"
	"aitia/internal/sched"
)

// This file implements the incremental-replay prefix cache: the search
// and the causality analysis both execute large families of schedules
// that share long prefixes (every task unit of a LIFS group replays the
// group's prefix; every flip test replays the failing run up to its
// race). Instead of re-enforcing each schedule from instruction 0, the
// pipeline pins copy-on-write snapshots (kvm.Machine.Snapshot, O(1)) at
// interior states of that shared prefix tree and starts each run from
// the deepest pinned ancestor, replaying only the suffix.
//
// The cache is purely a work optimization: the explored tree, the
// reproduction, every flip verdict and the diagnosis are identical with
// the cache on or off. Pins live only in memory — a checkpoint-resumed
// search starts cold — and journal-based snapshots force LIFO restores,
// so eviction is structural: seeking below a pin drops everything
// deeper (the deepest pins go first), and creation stops once the
// pinned bytes exceed the budget.

// Default prefix-cache knobs.
const (
	// DefaultPinStride is the schedule-position stride at which the flip
	// replay cache pins snapshots along the canonical failing sequence.
	// Snapshots are O(1) copy-on-write journal marks, so a dense stride
	// costs almost nothing and keeps the per-flip replay gap at most
	// stride-1 steps.
	DefaultPinStride = 2
	// DefaultPinBudget bounds the bytes pinned by live prefix snapshots
	// (64 MiB; scenario-sized kernels pin a few KiB per run).
	DefaultPinBudget = 64 << 20
)

// PrefixConfig configures the incremental-replay prefix cache. The zero
// value enables the cache with the default stride and byte budget.
type PrefixConfig struct {
	// Disable turns the cache off: every run replays its schedule from
	// instruction 0, as the pipeline did before the cache existed.
	// Results are identical either way — only the work differs — so
	// Disable exists for benchmarking and defense in depth.
	Disable bool
	// Stride pins a snapshot every Stride schedule positions along a
	// cached flip prefix; zero means DefaultPinStride. Smaller strides
	// shrink the replayed gap per flip at the cost of more pins.
	Stride int
	// BudgetBytes bounds the bytes pinned by live prefix snapshots
	// (measured with kvm.Machine.LiveBytes). Zero means
	// DefaultPinBudget. When the budget is exhausted no further pins
	// are created — deeper states replay from the deepest affordable
	// ancestor — so the budget caps memory without affecting results.
	BudgetBytes uint64
}

func (c PrefixConfig) enabled() bool { return !c.Disable }

func (c PrefixConfig) stride() int {
	if c.Stride > 0 {
		return c.Stride
	}
	return DefaultPinStride
}

func (c PrefixConfig) budget() uint64 {
	if c.BudgetBytes > 0 {
		return c.BudgetBytes
	}
	return DefaultPinBudget
}

// prefixStats aggregates the cache's work counters across a search or
// analysis (shared by every worker machine).
type prefixStats struct {
	replayed atomic.Uint64 // instructions spent re-executing known prefixes
	saved    atomic.Uint64 // prefix instructions skipped via pin restores
	hits     atomic.Int64  // runs started from a pinned snapshot
	pinned   atomic.Uint64 // peak LiveBytes at any pin creation
}

// notePinned records the pinned-bytes high-water mark (CAS-max).
func (ps *prefixStats) notePinned(b uint64) {
	for {
		cur := ps.pinned.Load()
		if b <= cur || ps.pinned.CompareAndSwap(cur, b) {
			return
		}
	}
}

// branchScript is the machine-independent half of a LIFS branch pin: the
// exploration state a task unit needs to resume from its group's branch
// event without replaying the prefix. The probe captures it at the
// branch; the machine-specific half (the snapshot) is pinned separately
// per machine, so parallel workers share one script but own their pins.
type branchScript struct {
	trace   []sched.Exec   // executed prefix (shared read-only; resume clamps cap)
	seen    uint32         // guide suspects executed on the prefix
	stack   []kvm.ThreadID // lock-diversion return stack at the branch
	natural bool           // natural switch (else conflict preemption)
	choices []kvm.ThreadID // natural: viable threads; conflict: preemption targets
	cur     kvm.ThreadID   // conflict: the thread at the conflict point
}

// flipCache incrementally replays prefixes of the canonical failing
// sequence for the analysis's flip tests. A flip at cut n shares
// seq[:n] with the failing run verbatim; the cache pins snapshots every
// stride positions along the sequence and serves each Seek from the
// deepest pinned ancestor, replaying only the gap. One cache per
// machine: serial analysis has one, each parallel flip worker its own.
type flipCache struct {
	m      *kvm.Machine
	init   *kvm.Snapshot
	seq    []sched.Exec // canonical failing sequence (position-stamped)
	stride int
	budget uint64
	fault  *faultinject.Plan
	stats  *prefixStats
	pins   []flipPin // ascending pos; restores are LIFO by construction
}

type flipPin struct {
	pos  int
	snap *kvm.Snapshot
}

func newFlipCache(m *kvm.Machine, init *kvm.Snapshot, seq []sched.Exec, cfg PrefixConfig, fault *faultinject.Plan, stats *prefixStats) *flipCache {
	return &flipCache{
		m: m, init: init, seq: seq,
		stride: cfg.stride(), budget: cfg.budget(),
		fault: fault, stats: stats,
	}
}

// Seek brings the machine to schedule position n of the failing
// sequence, after which the caller enforces the flip suffix with
// sched.Options.BaseSteps = n. It preserves the cache-off fault
// identity: the legacy snapshot-restore check is drawn first with the
// same (op, key, attempt), so chaos fates match a cache-off run. A
// fired prefix-restore fault (a corrupt pin) degrades to a from-scratch
// replay and never surfaces as an error — degradation costs work, not
// correctness.
func (c *flipCache) Seek(n int, op string, key uint64, attempt int) error {
	if err := c.fault.Check(faultinject.KindSnapshotRestore, op, key, attempt); err != nil {
		return err
	}
	i := len(c.pins) - 1
	for i >= 0 && c.pins[i].pos > n {
		i--
	}
	from := 0
	if i >= 0 {
		if err := c.fault.Check(faultinject.KindPrefixRestore, op, key, attempt); err != nil {
			// Corrupt pin: any cached node may share the corruption, so
			// drop the whole cache and replay from the initial state.
			c.drop(0)
			c.m.Restore(c.init)
		} else {
			from = c.pins[i].pos
			c.drop(i + 1) // the restore truncates the journal above the pin
			c.m.Restore(c.pins[i].snap)
			c.stats.hits.Add(1)
			c.stats.saved.Add(uint64(from))
		}
	} else {
		c.drop(0)
		c.m.Restore(c.init)
	}
	return c.replay(from, n, false)
}

// replay re-executes seq[from:n] step by step, re-pinning stride
// positions on the way. A divergence from a pinned state degrades to
// one from-scratch replay; diverging from the initial state is a real
// bug and fails loudly.
func (c *flipCache) replay(from, n int, retried bool) error {
	for j := from; j < n; j++ {
		ev, err := c.m.Step(c.seq[j].Thread)
		if err != nil || !ev.Executed {
			if retried {
				return fmt.Errorf("core: prefix replay diverged from the recorded sequence at step %d of %d", j, n)
			}
			c.drop(0)
			c.m.Restore(c.init)
			return c.replay(0, n, true)
		}
		c.stats.replayed.Add(1)
		if pos := j + 1; pos%c.stride == 0 {
			c.pin(pos)
		}
	}
	// Pin the sought position itself: flip retries and sibling flips of
	// the same race seek the same cut, and a pin exactly there makes the
	// repeat gap zero.
	if n > from && n%c.stride != 0 {
		c.pin(n)
	}
	return nil
}

// pin snapshots the machine's current position unless the pinned-bytes
// budget is exhausted.
func (c *flipCache) pin(pos int) {
	lb := c.m.LiveBytes()
	if lb > c.budget {
		return
	}
	c.pins = append(c.pins, flipPin{pos: pos, snap: c.m.Snapshot()})
	c.stats.notePinned(lb)
}

// drop evicts pins[i:], clearing references so snapshots can be
// collected.
func (c *flipCache) drop(i int) {
	for j := i; j < len(c.pins); j++ {
		c.pins[j] = flipPin{}
	}
	c.pins = c.pins[:i]
}

// prefixSeed carries warm pins from a reproduction's final replay into
// the analysis. Reproduce already executes the winning schedule once (to
// validate it and leave the machine in the failing state); pinning along
// that replay means the analysis's flip cache starts with the whole
// failing sequence cached instead of rebuilding it from instruction 0.
// The seed is memory-only and machine-bound: Analyze adopts it only when
// handed the same machine with the pins still live (SnapshotLive), and
// falls back to a cold cache otherwise.
type prefixSeed struct {
	m    *kvm.Machine
	init *kvm.Snapshot
	pins []flipPin
}

// adopt validates the seed against the machine and returns the still-live
// pins. Pins die from the deepest position down (journal truncation), so
// filtering preserves the ascending LIFO order the cache requires.
func (sd *prefixSeed) adopt(m *kvm.Machine) ([]flipPin, bool) {
	if sd == nil || sd.m != m || !m.SnapshotLive(sd.init) {
		return nil, false
	}
	var live []flipPin
	for _, p := range sd.pins {
		if m.SnapshotLive(p.snap) {
			live = append(live, p)
		}
	}
	return live, true
}

// mergeFlipRun reassembles the full flip run from the replayed prefix
// and the enforced suffix. The suffix was numbered from BaseSteps =
// len(prefix), so Seq, Failure, Missed and Threads — everything verdicts
// and race extraction consume — are byte-identical to a cache-off
// full-schedule enforcement. Switches (unconsumed for flips) adds the
// prefix's thread boundaries plus the seam as an approximation of the
// decisions the skipped enforcement would have counted.
func mergeFlipRun(prefix []sched.Exec, suffix *sched.RunResult) *sched.RunResult {
	if len(prefix) == 0 {
		return suffix
	}
	out := &sched.RunResult{
		Seq:      append(prefix[:len(prefix):len(prefix)], suffix.Seq...),
		Failure:  suffix.Failure,
		Switches: suffix.Switches,
		Missed:   suffix.Missed,
		Threads:  suffix.Threads,
	}
	for i := 1; i < len(prefix); i++ {
		if prefix[i].Name != prefix[i-1].Name {
			out.Switches++
		}
	}
	if len(suffix.Seq) > 0 && suffix.Seq[0].Name != prefix[len(prefix)-1].Name {
		out.Switches++
	}
	return out
}

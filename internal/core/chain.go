package core

import (
	"fmt"
	"sort"
	"strings"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// ChainNode is one step of a causality chain: a conjunction of one or more
// root-cause races whose interleaving orders jointly enable the next step
// (the paper's "(A2 => B11) ∧ (B2 => A6)" group). Races end up in the same
// node when they mutually depend on each other: flipping either makes the
// other disappear, so neither can be said to cause the other — they are
// the two halves of one multi-variable atomicity violation.
type ChainNode struct {
	Races     []sched.Race
	Ambiguous []bool // parallel to Races
}

// Format renders the node in paper notation.
func (n ChainNode) Format(prog *kir.Program) string {
	parts := make([]string, len(n.Races))
	for i, r := range n.Races {
		parts[i] = r.Format(prog)
		if n.Ambiguous[i] {
			parts[i] += " (ambiguous)"
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, " ∧ ") + ")"
}

// Chain is a causality chain: the root cause of a concurrency failure as a
// chained sequence of data races (conjunction nodes), ending at the
// failure. Nodes[i] has causality to Nodes[i+1]; the last node directly
// causes the failure.
type Chain struct {
	Nodes   []ChainNode
	Failure *sanitizer.Failure

	// Edges exposes the reduced causality DAG over Nodes: Edges[i] lists
	// the node indexes Nodes[i] has causality to. For every bug in the
	// paper's study the DAG is a simple path, but the general structure is
	// kept for completeness.
	Edges [][]int
}

// Len returns the number of races in the chain.
func (c *Chain) Len() int {
	n := 0
	for _, node := range c.Nodes {
		n += len(node.Races)
	}
	return n
}

// Races returns all chain races in node order.
func (c *Chain) Races() []sched.Race {
	var out []sched.Race
	for _, node := range c.Nodes {
		out = append(out, node.Races...)
	}
	return out
}

// HasAmbiguity reports whether any chain race is flagged ambiguous.
func (c *Chain) HasAmbiguity() bool {
	for _, node := range c.Nodes {
		for _, a := range node.Ambiguous {
			if a {
				return true
			}
		}
	}
	return false
}

// Format renders the chain like the paper's Figure 3:
//
//	(A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → kernel BUG (BUG_ON)
func (c *Chain) Format(prog *kir.Program) string {
	var parts []string
	for _, n := range c.Nodes {
		parts = append(parts, n.Format(prog))
	}
	parts = append(parts, c.Failure.Kind.String())
	return strings.Join(parts, " → ")
}

// buildChain constructs the causality chain from the diagnosis evidence.
//
// For chain members R1, R2 (root-cause or ambiguous races), let
// kills(R1, R2) mean "R2 does not occur in the run where R1 is flipped"
// (a race-steered control flow made R2's accesses unreachable). Then:
//
//   - kills(R1, R2) && kills(R2, R1): the races are mutually dependent —
//     one conjunction node (the multi-variable pattern of Figure 3).
//   - kills(R1, R2) only, with R2 later in the failing sequence:
//     a causality edge R1 → R2.
//
// The edge DAG is transitively reduced and nodes are ordered by their
// position in the failing sequence; the final node causes the failure.
func buildChain(d *Diagnosis, failure *sanitizer.Failure) *Chain {
	type member struct {
		race      sched.Race
		ambiguous bool
		flipRun   *sched.RunResult
		// tested/priorKills identify a member settled by the learned
		// prior without a run: its test-order index and predicted kill
		// row (test-order indices), consumed in place of flipRun.
		tested     int
		priorKills []int
	}
	var members []member
	for ti, tr := range d.Tested {
		switch tr.Verdict {
		case VerdictRootCause:
			members = append(members, member{race: tr.Race, flipRun: tr.FlipRun, tested: ti, priorKills: tr.PriorKills})
		case VerdictAmbiguous:
			members = append(members, member{race: tr.Race, ambiguous: true, flipRun: tr.FlipRun, tested: ti, priorKills: tr.PriorKills})
		}
	}
	sort.Slice(members, func(i, j int) bool {
		return members[i].race.LastStep() < members[j].race.LastStep()
	})
	n := len(members)
	c := &Chain{Failure: failure}
	if n == 0 {
		return c
	}

	kills := make([][]bool, n)
	for i := range kills {
		kills[i] = make([]bool, n)
		for j := range kills[i] {
			if i == j {
				continue
			}
			if members[i].flipRun != nil {
				kills[i][j] = !sched.RaceOccurred(members[i].flipRun, members[j].race)
				continue
			}
			// Member settled by the learned prior: its predicted kill
			// row stands in for the missing flip run.
			for _, k := range members[i].priorKills {
				if k == members[j].tested {
					kills[i][j] = true
					break
				}
			}
		}
	}

	// Union mutually dependent races into conjunction groups.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if kills[i][j] && kills[j][i] {
				union(i, j)
			}
		}
	}

	type group struct {
		idxs []int
		last int
	}
	var (
		groups []group
		adj    [][]bool
	)
	// Build the group DAG; then merge groups with identical successor
	// sets (their interleaving orders are jointly required to enable the
	// same next step — a conjunction) and rebuild, until stable.
	for {
		groupOf := make(map[int][]int) // root -> member indexes
		for i := 0; i < n; i++ {
			r := find(i)
			groupOf[r] = append(groupOf[r], i)
		}
		groups = groups[:0]
		for _, idxs := range groupOf {
			sort.Ints(idxs)
			last := 0
			for _, i := range idxs {
				if ls := members[i].race.LastStep(); ls > last {
					last = ls
				}
			}
			groups = append(groups, group{idxs: idxs, last: last})
		}
		sort.Slice(groups, func(a, b int) bool {
			if groups[a].last != groups[b].last {
				return groups[a].last < groups[b].last
			}
			return groups[a].idxs[0] < groups[b].idxs[0]
		})
		gIndex := make([]int, n) // member -> group position
		for gi, g := range groups {
			for _, i := range g.idxs {
				gIndex[i] = gi
			}
		}

		// Directional edges: some member of the earlier group kills some
		// member of the later group.
		ng := len(groups)
		adj = make([][]bool, ng)
		for i := range adj {
			adj[i] = make([]bool, ng)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				gi, gj := gIndex[i], gIndex[j]
				if gi != gj && groups[gi].last < groups[gj].last && kills[i][j] {
					adj[gi][gj] = true
				}
			}
		}

		// Transitive reduction.
		reach := make([][]bool, ng)
		for i := range reach {
			reach[i] = make([]bool, ng)
			copy(reach[i], adj[i])
		}
		for k := ng - 1; k >= 0; k-- {
			for i := 0; i < ng; i++ {
				if reach[i][k] {
					for j := 0; j < ng; j++ {
						if reach[k][j] {
							reach[i][j] = true
						}
					}
				}
			}
		}
		for i := 0; i < ng; i++ {
			for j := 0; j < ng; j++ {
				if !adj[i][j] {
					continue
				}
				for k := 0; k < ng; k++ {
					if k != i && k != j && adj[i][k] && reach[k][j] {
						adj[i][j] = false
						break
					}
				}
			}
		}

		// Merge groups whose (reduced) successor sets are identical and
		// non-independent of the chain (including the final groups, whose
		// empty successor set means "directly causes the failure").
		sig := func(gi int) string {
			var ss []int
			for gj := 0; gj < ng; gj++ {
				if adj[gi][gj] {
					ss = append(ss, gj)
				}
			}
			return fmt.Sprint(ss)
		}
		merged := false
		seen := make(map[string]int)
		for gi := 0; gi < ng; gi++ {
			s := sig(gi)
			if prev, ok := seen[s]; ok {
				union(groups[prev].idxs[0], groups[gi].idxs[0])
				merged = true
			} else {
				seen[s] = gi
			}
		}
		if !merged {
			break
		}
	}

	for gi, g := range groups {
		node := ChainNode{}
		// Conjunction members render in instruction order of their First
		// access (the paper lists "(A2 => B11) ∧ (B2 => A6)").
		idxs := append([]int(nil), g.idxs...)
		sort.Slice(idxs, func(a, b int) bool {
			ra, rb := members[idxs[a]].race, members[idxs[b]].race
			if ra.First.Instr != rb.First.Instr {
				return ra.First.Instr < rb.First.Instr
			}
			return ra.Second.Instr < rb.Second.Instr
		})
		for _, i := range idxs {
			node.Races = append(node.Races, members[i].race)
			node.Ambiguous = append(node.Ambiguous, members[i].ambiguous)
		}
		c.Nodes = append(c.Nodes, node)
		var succ []int
		for gj := range groups {
			if adj[gi][gj] {
				succ = append(succ, gj)
			}
		}
		c.Edges = append(c.Edges, succ)
	}
	return c
}

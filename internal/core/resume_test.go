package core

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"aitia/internal/durable"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// pipelineOut is everything a resumed diagnosis must reproduce
// byte-for-byte against an uninterrupted golden run.
type pipelineOut struct {
	Schedule      sched.Schedule
	Races         []sched.Race
	Interleavings int
	Chain         string
	Verdicts      []Verdict
	Realized      []bool
	RootCause     []sched.Race
	Benign        []sched.Race
	Ambiguous     []sched.Race
	// Schedules is the total complete runs this process executed across
	// both pipeline legs — the work a resume is supposed to skip.
	Schedules  int
	RepResumed bool
	CAResumed  bool
}

func testCheckpointStore(t *testing.T) *durable.CheckpointStore {
	t.Helper()
	st, err := durable.OpenCheckpointStore(t.TempDir(), false)
	if err != nil {
		t.Fatalf("open checkpoint store: %v", err)
	}
	return st
}

// runPipeline runs Reproduce+Analyze for the scenario. When killAfter > 0
// the context is canceled right after the killAfter-th durable save —
// the closest in-process approximation of a SIGKILL at a checkpoint
// cadence point. It returns (nil, true) when the kill fired and aborted
// the run, (out, false) when the run outlived the kill point.
func runPipeline(t *testing.T, sc *scenarios.Scenario, cfg *CheckpointConfig, workers, killAfter int) (*pipelineOut, bool) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if cfg != nil && killAfter > 0 {
		saves := 0
		cfg.OnSave = func(string) {
			saves++
			if saves == killAfter {
				cancel()
			}
		}
	} else if cfg != nil {
		cfg.OnSave = nil
	}

	prog := sc.MustProgram()
	m := mustMachine(t, prog)
	lifs := LIFSOptions{
		WantKind:   sc.WantKind,
		WantInstr:  sc.WantInstr(),
		LeakCheck:  sc.NeedsLeakCheck(),
		Workers:    workers,
		Checkpoint: cfg,
	}
	rep, err := ReproduceContext(ctx, m, lifs)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return nil, true
		}
		t.Fatalf("Reproduce(%s): %v", sc.Name, err)
	}
	d, err := AnalyzeContext(ctx, m, rep, AnalysisOptions{
		LeakCheck:  sc.NeedsLeakCheck(),
		Workers:    workers,
		Checkpoint: cfg,
	})
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return nil, true
		}
		t.Fatalf("Analyze(%s): %v", sc.Name, err)
	}
	out := &pipelineOut{
		Schedule:      rep.Schedule,
		Races:         rep.Races,
		Interleavings: rep.Stats.Interleavings,
		Chain:         d.Chain.Format(prog),
		RootCause:     d.RootCause,
		Benign:        d.Benign,
		Ambiguous:     d.Ambiguous,
		Schedules:     rep.Stats.Schedules + d.Stats.Schedules,
		RepResumed:    rep.Stats.Resumed,
		CAResumed:     d.Stats.Resumed,
	}
	for _, tr := range d.Tested {
		out.Verdicts = append(out.Verdicts, tr.Verdict)
		out.Realized = append(out.Realized, tr.FlipRealized)
	}
	return out, false
}

// assertSameDiagnosis fails unless got matches the golden run on every
// externally observable dimension of the diagnosis.
func assertSameDiagnosis(t *testing.T, label string, got, golden *pipelineOut) {
	t.Helper()
	if !reflect.DeepEqual(got.Schedule, golden.Schedule) {
		t.Errorf("%s: schedule = %+v, want %+v", label, got.Schedule, golden.Schedule)
	}
	if !reflect.DeepEqual(got.Races, golden.Races) {
		t.Errorf("%s: races = %+v, want %+v", label, got.Races, golden.Races)
	}
	if got.Interleavings != golden.Interleavings {
		t.Errorf("%s: interleavings = %d, want %d", label, got.Interleavings, golden.Interleavings)
	}
	if got.Chain != golden.Chain {
		t.Errorf("%s: chain = %q, want %q", label, got.Chain, golden.Chain)
	}
	if !reflect.DeepEqual(got.Verdicts, golden.Verdicts) {
		t.Errorf("%s: verdicts = %v, want %v", label, got.Verdicts, golden.Verdicts)
	}
	if !reflect.DeepEqual(got.Realized, golden.Realized) {
		t.Errorf("%s: flip realization = %v, want %v", label, got.Realized, golden.Realized)
	}
	if !reflect.DeepEqual(got.RootCause, golden.RootCause) {
		t.Errorf("%s: root causes = %+v, want %+v", label, got.RootCause, golden.RootCause)
	}
	if !reflect.DeepEqual(got.Benign, golden.Benign) {
		t.Errorf("%s: benign = %+v, want %+v", label, got.Benign, golden.Benign)
	}
	if !reflect.DeepEqual(got.Ambiguous, golden.Ambiguous) {
		t.Errorf("%s: ambiguous = %+v, want %+v", label, got.Ambiguous, golden.Ambiguous)
	}
}

// TestResumeAfterEveryCheckpoint is the crash-determinism matrix: kill
// the diagnosis right after every durable save point in turn (phase
// boundaries, intra-phase cuts, the terminal snapshot, each settled
// flip), resume from the on-disk state, and require the causality chain
// and verdicts byte-identical to the uninterrupted golden run — with
// strictly fewer schedules executed by the resumed process. Run serial
// (with intra-phase cadence saves armed) and with an 8-worker fleet.
func TestResumeAfterEveryCheckpoint(t *testing.T) {
	sc, ok := scenarios.ByName("cve-2017-15649")
	if !ok {
		t.Fatal("scenario cve-2017-15649 missing")
	}
	for _, tc := range []struct {
		name    string
		workers int
		every   int
	}{
		{"serial", 1, 2},
		{"parallel8", 8, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			golden, killed := runPipeline(t, sc, nil, tc.workers, 0)
			if killed {
				t.Fatal("golden run reported a kill with no checkpointing armed")
			}

			resumes := 0
			for killAfter := 1; ; killAfter++ {
				store := testCheckpointStore(t)
				cfg := &CheckpointConfig{Store: store, Every: tc.every}
				if _, wasKilled := runPipeline(t, sc, cfg, tc.workers, killAfter); !wasKilled {
					// The run outlived the last save point: the kill
					// matrix is exhausted.
					if killAfter == 1 {
						t.Fatal("no checkpoint was ever saved")
					}
					break
				}
				resumed, wasKilled := runPipeline(t, sc, cfg, tc.workers, 0)
				if wasKilled {
					t.Fatalf("kill %d: resumed run aborted", killAfter)
				}
				if !resumed.RepResumed && !resumed.CAResumed {
					t.Errorf("kill %d: resume did not use the checkpoint", killAfter)
				}
				if resumed.Schedules >= golden.Schedules {
					t.Errorf("kill %d: resumed run executed %d schedules, want strictly fewer than cold %d",
						killAfter, resumed.Schedules, golden.Schedules)
				}
				assertSameDiagnosis(t, tc.name, resumed, golden)
				resumes++
			}
			if resumes < 3 {
				t.Errorf("kill matrix covered only %d save points, expected at least 3", resumes)
			}
			t.Logf("%s: %d kill points resumed identically (golden %d schedules)", tc.name, resumes, golden.Schedules)
		})
	}
}

// TestResumeAfterExhaustedBudget is the -crash-resume contract: a search
// truncated by a small MaxSchedules leaves checkpoints behind, and a
// rerun with the full budget resumes from them instead of starting over
// — same reproduction, strictly fewer schedules than a cold full-budget
// run. MaxSchedules is deliberately excluded from the checkpoint key to
// make exactly this legal.
func TestResumeAfterExhaustedBudget(t *testing.T) {
	sc, ok := scenarios.ByName("cve-2017-15649")
	if !ok {
		t.Fatal("scenario cve-2017-15649 missing")
	}
	prog := sc.MustProgram()
	base := LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
	}

	cold, err := Reproduce(mustMachine(t, prog), base)
	if err != nil {
		t.Fatalf("cold Reproduce: %v", err)
	}
	if cold.Stats.Schedules < 8 {
		t.Skipf("scenario reproduces in only %d schedules; truncation has nothing to cut", cold.Stats.Schedules)
	}

	store := testCheckpointStore(t)
	truncated := base
	truncated.Checkpoint = &CheckpointConfig{Store: store, Every: 2}
	truncated.MaxSchedules = cold.Stats.Schedules / 2
	if _, err := Reproduce(mustMachine(t, prog), truncated); !IsNotReproduced(err) {
		t.Fatalf("truncated Reproduce: err = %v, want ErrNotReproduced", err)
	}

	full := base
	full.Checkpoint = &CheckpointConfig{Store: store, Every: 2}
	resumed, err := Reproduce(mustMachine(t, prog), full)
	if err != nil {
		t.Fatalf("resumed Reproduce: %v", err)
	}
	if !resumed.Stats.Resumed {
		t.Error("resumed run did not pick up the truncated run's checkpoint")
	}
	if resumed.Stats.CheckpointAge < 0 {
		t.Errorf("checkpoint age = %v, want >= 0", resumed.Stats.CheckpointAge)
	}
	if resumed.Stats.Schedules >= cold.Stats.Schedules {
		t.Errorf("resumed run executed %d schedules, want strictly fewer than cold %d",
			resumed.Stats.Schedules, cold.Stats.Schedules)
	}
	if !reflect.DeepEqual(resumed.Schedule, cold.Schedule) {
		t.Errorf("resumed schedule = %+v, want %+v", resumed.Schedule, cold.Schedule)
	}
	if !reflect.DeepEqual(resumed.Races, cold.Races) {
		t.Errorf("resumed races = %+v, want %+v", resumed.Races, cold.Races)
	}
	if resumed.Stats.Interleavings != cold.Stats.Interleavings {
		t.Errorf("resumed interleavings = %d, want %d", resumed.Stats.Interleavings, cold.Stats.Interleavings)
	}
}

// TestResumeIgnoresForeignCheckpoints covers the fall-back-fresh
// contract: a checkpoint written under the wrong version, for a
// different program, or plain corrupted on disk must be treated exactly
// like an absent one.
func TestResumeIgnoresForeignCheckpoints(t *testing.T) {
	sc, ok := scenarios.ByName("fig1")
	if !ok {
		t.Fatal("scenario fig1 missing")
	}
	prog := sc.MustProgram()
	opts := LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()}
	// The search normalizes defaulted limits before deriving the key.
	keyOpts := opts
	keyOpts.MaxInterleavings = DefaultMaxInterleavings
	key := lifsCheckpointKey(prog, keyOpts)

	golden, err := Reproduce(mustMachine(t, prog), opts)
	if err != nil {
		t.Fatalf("golden Reproduce: %v", err)
	}

	poison := map[string]func(t *testing.T, store *durable.CheckpointStore){
		"wrong version": func(t *testing.T, store *durable.CheckpointStore) {
			if err := store.Save(key, lifsCheckpointVersion+7, []byte(`{"round":9}`)); err != nil {
				t.Fatalf("save: %v", err)
			}
		},
		"garbage payload": func(t *testing.T, store *durable.CheckpointStore) {
			if err := store.Save(key, lifsCheckpointVersion, []byte("not json")); err != nil {
				t.Fatalf("save: %v", err)
			}
		},
		"foreign initial state": func(t *testing.T, store *durable.CheckpointStore) {
			payload, err := json.Marshal(&lifsCheckpoint{InitSig: 0xdeadbeef, Round: 1, NextPhase: 2})
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if err := store.Save(key, lifsCheckpointVersion, payload); err != nil {
				t.Fatalf("save: %v", err)
			}
		},
	}
	for name, plant := range poison {
		t.Run(name, func(t *testing.T) {
			store := testCheckpointStore(t)
			plant(t, store)
			rep, err := Reproduce(mustMachine(t, prog), LIFSOptions{
				WantKind:   sc.WantKind,
				WantInstr:  sc.WantInstr(),
				Checkpoint: &CheckpointConfig{Store: store},
			})
			if err != nil {
				t.Fatalf("Reproduce with poisoned checkpoint: %v", err)
			}
			if rep.Stats.Resumed {
				t.Error("search claims to have resumed from an invalid checkpoint")
			}
			if !reflect.DeepEqual(rep.Schedule, golden.Schedule) {
				t.Errorf("schedule = %+v, want %+v", rep.Schedule, golden.Schedule)
			}
			if rep.Stats.Schedules != golden.Stats.Schedules {
				t.Errorf("schedules = %d, want the cold run's %d", rep.Stats.Schedules, golden.Stats.Schedules)
			}
		})
	}
}

// TestStaleTerminalCheckpointFallsBack plants a terminal checkpoint
// whose schedule no longer reproduces the failure (valid envelope,
// matching initial state — the replay itself must catch it). The search
// must delete it and fall back to a fresh search, once.
func TestStaleTerminalCheckpointFallsBack(t *testing.T) {
	sc, ok := scenarios.ByName("fig1")
	if !ok {
		t.Fatal("scenario fig1 missing")
	}
	prog := sc.MustProgram()
	opts := LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()}

	store := testCheckpointStore(t)
	ckOpts := opts
	ckOpts.Checkpoint = &CheckpointConfig{Store: store}
	golden, err := Reproduce(mustMachine(t, prog), ckOpts)
	if err != nil {
		t.Fatalf("golden Reproduce: %v", err)
	}

	// Rewrite the terminal checkpoint's schedule to the natural serial
	// run, which does not fail. Everything else (version, key, InitSig)
	// stays valid, so only the acceptance check can reject it.
	keyOpts := opts
	keyOpts.MaxInterleavings = DefaultMaxInterleavings
	key := lifsCheckpointKey(prog, keyOpts)
	payload, err := store.Load(key, lifsCheckpointVersion)
	if err != nil {
		t.Fatalf("load terminal checkpoint: %v", err)
	}
	var ck lifsCheckpoint
	if err := json.Unmarshal(payload, &ck); err != nil {
		t.Fatalf("unmarshal terminal checkpoint: %v", err)
	}
	if !ck.Done {
		t.Fatalf("expected a terminal checkpoint at %s", key)
	}
	ck.Schedule = &sched.Schedule{Initial: ck.Schedule.Initial, Fallback: ck.Schedule.Fallback}
	payload, err = json.Marshal(&ck)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := store.Save(key, lifsCheckpointVersion, payload); err != nil {
		t.Fatalf("save: %v", err)
	}

	rep, err := Reproduce(mustMachine(t, prog), ckOpts)
	if err != nil {
		t.Fatalf("Reproduce with stale terminal checkpoint: %v", err)
	}
	if rep.Stats.Resumed {
		t.Error("fallback search still reports Resumed")
	}
	if !reflect.DeepEqual(rep.Schedule, golden.Schedule) {
		t.Errorf("schedule = %+v, want %+v", rep.Schedule, golden.Schedule)
	}
	// The fallback rewrote a fresh terminal checkpoint; a third run must
	// replay it in O(1).
	third, err := Reproduce(mustMachine(t, prog), ckOpts)
	if err != nil {
		t.Fatalf("third Reproduce: %v", err)
	}
	if !third.Stats.Resumed || third.Stats.Schedules != 0 {
		t.Errorf("third run: resumed=%t schedules=%d, want a pure terminal replay", third.Stats.Resumed, third.Stats.Schedules)
	}
	if !reflect.DeepEqual(third.Schedule, golden.Schedule) {
		t.Errorf("third schedule = %+v, want %+v", third.Schedule, golden.Schedule)
	}
}

// TestTerminalReplayAcrossScenarios runs every reproducible scenario
// twice against one store and requires the second run to be a zero-
// search terminal replay with identical races and schedule. Scoped to
// the hand-built subset so factory growth does not swell the sweep.
func TestTerminalReplayAcrossScenarios(t *testing.T) {
	for _, sc := range scenarios.HandBuilt() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			prog := sc.MustProgram()
			store := testCheckpointStore(t)
			opts := LIFSOptions{
				WantKind:   sc.WantKind,
				WantInstr:  sc.WantInstr(),
				LeakCheck:  sc.NeedsLeakCheck(),
				Checkpoint: &CheckpointConfig{Store: store},
			}
			cold, err := Reproduce(mustMachine(t, prog), opts)
			if IsNotReproduced(err) {
				t.Skipf("scenario does not reproduce: %v", err)
			}
			if err != nil {
				t.Fatalf("cold Reproduce: %v", err)
			}
			warm, err := Reproduce(mustMachine(t, prog), opts)
			if err != nil {
				t.Fatalf("warm Reproduce: %v", err)
			}
			if !warm.Stats.Resumed || warm.Stats.Schedules != 0 {
				t.Errorf("warm run: resumed=%t schedules=%d, want terminal replay", warm.Stats.Resumed, warm.Stats.Schedules)
			}
			if !reflect.DeepEqual(warm.Schedule, cold.Schedule) {
				t.Errorf("warm schedule = %+v, want %+v", warm.Schedule, cold.Schedule)
			}
			if !reflect.DeepEqual(warm.Races, cold.Races) {
				t.Errorf("warm races = %+v, want %+v", warm.Races, cold.Races)
			}
		})
	}
}

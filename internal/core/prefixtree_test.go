package core

import (
	"reflect"
	"testing"

	"aitia/internal/faultinject"
	"aitia/internal/scenarios"
)

// prefixPipeline runs the serial Reproduce+Analyze pipeline on a fresh
// machine under the given prefix config and fault plan.
func prefixPipeline(t *testing.T, sc *scenarios.Scenario, cfg PrefixConfig, plan *faultinject.Plan) (*Reproduction, *Diagnosis) {
	t.Helper()
	m := mustMachine(t, sc.MustProgram())
	rep, err := Reproduce(m, LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
		Prefix:    cfg,
		Fault:     plan,
		Retry:     quickRetry,
	})
	if err != nil {
		if IsNotReproduced(err) {
			t.Skipf("scenario does not reproduce: %v", err)
		}
		t.Fatalf("Reproduce: %v", err)
	}
	d, err := Analyze(m, rep, AnalysisOptions{Prefix: cfg, Fault: plan, Retry: quickRetry})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return rep, d
}

// comparePipelines asserts that two pipeline runs explored the same tree
// and reached the same diagnosis — the cache-on/off, budget and fault
// variants must differ only in work, never in results.
func comparePipelines(t *testing.T, sc *scenarios.Scenario, repA, repB *Reproduction, dA, dB *Diagnosis) {
	t.Helper()
	prog := sc.MustProgram()
	if !reflect.DeepEqual(repA.Schedule, repB.Schedule) {
		t.Errorf("schedules differ:\n  a: %v\n  b: %v", repA.Schedule, repB.Schedule)
	}
	if !reflect.DeepEqual(repA.Races, repB.Races) {
		t.Errorf("race sets differ")
	}
	if repA.Stats.Schedules != repB.Stats.Schedules {
		t.Errorf("search schedules differ: %d vs %d", repA.Stats.Schedules, repB.Stats.Schedules)
	}
	if repA.Stats.Interleavings != repB.Stats.Interleavings {
		t.Errorf("interleavings differ: %d vs %d", repA.Stats.Interleavings, repB.Stats.Interleavings)
	}
	if dA.Stats.Schedules != dB.Stats.Schedules {
		t.Errorf("analysis schedules differ: %d vs %d", dA.Stats.Schedules, dB.Stats.Schedules)
	}
	if len(dA.Tested) != len(dB.Tested) {
		t.Fatalf("test-set sizes differ: %d vs %d", len(dA.Tested), len(dB.Tested))
	}
	for i := range dA.Tested {
		if dA.Tested[i].Verdict != dB.Tested[i].Verdict {
			t.Errorf("verdict %d differs: %v vs %v", i, dA.Tested[i].Verdict, dB.Tested[i].Verdict)
		}
		ra, rb := dA.Tested[i].FlipRun, dB.Tested[i].FlipRun
		if (ra == nil) != (rb == nil) {
			t.Errorf("flip run %d present in one pipeline only", i)
		} else if ra != nil && !reflect.DeepEqual(ra.Seq, rb.Seq) {
			t.Errorf("flip run %d differs step for step", i)
		}
	}
	if ca, cb := dA.Chain.Format(prog), dB.Chain.Format(prog); ca != cb {
		t.Errorf("chains differ:\n  a: %q\n  b: %q", ca, cb)
	}
}

// TestPrefixCacheOnOffIdentical: across the corpus, the prefix cache is a
// pure work optimization — the explored tree, the schedule counts, every
// flip run and the chain are byte-identical with the cache on or off.
// Scoped to the hand-built subset so factory growth does not swell the
// sweep.
func TestPrefixCacheOnOffIdentical(t *testing.T) {
	for _, sc := range scenarios.HandBuilt() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			repOn, dOn := prefixPipeline(t, sc, PrefixConfig{}, nil)
			repOff, dOff := prefixPipeline(t, sc, PrefixConfig{Disable: true}, nil)
			comparePipelines(t, sc, repOn, repOff, dOn, dOff)

			// Cache off, nothing may be pinned or restored from pins.
			for name, st := range map[string][3]uint64{
				"search":   {repOff.Stats.SavedInstrs, uint64(repOff.Stats.PrefixHits), repOff.Stats.PinnedBytes},
				"analysis": {dOff.Stats.SavedInstrs, uint64(dOff.Stats.PrefixHits), dOff.Stats.PinnedBytes},
			} {
				if st[0] != 0 || st[1] != 0 || st[2] != 0 {
					t.Errorf("%s cache-off stats nonzero: saved=%d hits=%d pinned=%d", name, st[0], st[1], st[2])
				}
			}
			if repOn.Stats.PinnedBytes > DefaultPinBudget || dOn.Stats.PinnedBytes > DefaultPinBudget {
				t.Errorf("pinned bytes exceed the default budget: %d / %d",
					repOn.Stats.PinnedBytes, dOn.Stats.PinnedBytes)
			}
		})
	}
}

// TestPrefixBudgetExhaustionKeepsResults: a 1-byte budget refuses every
// pin, so the pipeline degrades to from-scratch replays — zero pins, zero
// hits, zero saved work — with the exact default-config diagnosis.
func TestPrefixBudgetExhaustionKeepsResults(t *testing.T) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	repDef, dDef := prefixPipeline(t, sc, PrefixConfig{}, nil)
	repTiny, dTiny := prefixPipeline(t, sc, PrefixConfig{BudgetBytes: 1}, nil)
	comparePipelines(t, sc, repDef, repTiny, dDef, dTiny)

	for name, st := range map[string][3]uint64{
		"search":   {repTiny.Stats.SavedInstrs, uint64(repTiny.Stats.PrefixHits), repTiny.Stats.PinnedBytes},
		"analysis": {dTiny.Stats.SavedInstrs, uint64(dTiny.Stats.PrefixHits), dTiny.Stats.PinnedBytes},
	} {
		if st[0] != 0 || st[1] != 0 || st[2] != 0 {
			t.Errorf("%s pinned past an exhausted budget: saved=%d hits=%d pinned=%d", name, st[0], st[1], st[2])
		}
	}
	// Sanity: the default config does exercise the cache on this scenario.
	if repDef.Stats.PrefixHits == 0 || dDef.Stats.PrefixHits == 0 {
		t.Errorf("default config never hit the cache (search=%d analysis=%d hits)",
			repDef.Stats.PrefixHits, dDef.Stats.PrefixHits)
	}
	if dDef.Stats.SavedInstrs == 0 {
		t.Error("default config saved no replay work")
	}
}

// TestPrefixRestoreFaultDegradesToFullReplay: rate-1 prefix-restore
// faults corrupt every pinned node at restore time; the pipeline must
// degrade to from-scratch replays (zero cache hits) and still produce the
// exact fault-free diagnosis — degradation costs work, never correctness.
func TestPrefixRestoreFaultDegradesToFullReplay(t *testing.T) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	repClean, dClean := prefixPipeline(t, sc, PrefixConfig{}, nil)
	plan := faultinject.NewPlan(5, 0).SetRate(faultinject.KindPrefixRestore, 1)
	repFaulted, dFaulted := prefixPipeline(t, sc, PrefixConfig{}, plan)
	comparePipelines(t, sc, repClean, repFaulted, dClean, dFaulted)

	if repFaulted.Stats.PrefixHits != 0 || dFaulted.Stats.PrefixHits != 0 {
		t.Errorf("corrupt pins were still restored: search=%d analysis=%d hits",
			repFaulted.Stats.PrefixHits, dFaulted.Stats.PrefixHits)
	}
	if repFaulted.Stats.SavedInstrs != 0 || dFaulted.Stats.SavedInstrs != 0 {
		t.Errorf("corrupt pins still credited saved work: search=%d analysis=%d",
			repFaulted.Stats.SavedInstrs, dFaulted.Stats.SavedInstrs)
	}
	if st := plan.Stats(); st.Fired[faultinject.KindPrefixRestore] == 0 {
		t.Error("the prefix-restore fault never fired; the degradation path went untested")
	}
}

// TestAnalyzeWarmHandoff: an Analyze handed the machine Reproduce just
// left in the failing state adopts the final replay's pins, so the whole
// failing sequence is cached before the first flip — the analysis replays
// (almost) nothing. A Reset between the stages stales the seed and falls
// back to the cold path with the same diagnosis.
func TestAnalyzeWarmHandoff(t *testing.T) {
	sc, _ := scenarios.ByName("syz08-j1939-refcount")
	prog := sc.MustProgram()
	opts := LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr(), LeakCheck: sc.NeedsLeakCheck()}

	m := mustMachine(t, prog)
	rep, err := Reproduce(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Analyze(m, rep, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}

	m2 := mustMachine(t, prog)
	rep2, err := Reproduce(m2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Reset(); err != nil { // stales the seed pins (generation bump)
		t.Fatal(err)
	}
	cold, err := Analyze(m2, rep2, AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}

	if cw, cc := warm.Chain.Format(prog), cold.Chain.Format(prog); cw != cc {
		t.Fatalf("warm and cold chains differ:\n  warm: %q\n  cold: %q", cw, cc)
	}
	if len(warm.Tested) == 0 {
		t.Fatal("expected a non-empty test set")
	}
	if warm.Stats.PrefixHits == 0 {
		t.Error("warm analysis never hit a pinned snapshot")
	}
	if warm.Stats.ReplayedInstrs >= cold.Stats.ReplayedInstrs {
		t.Errorf("warm replay %d >= cold replay %d: the handoff saved nothing",
			warm.Stats.ReplayedInstrs, cold.Stats.ReplayedInstrs)
	}
	// The whole point: with the failing sequence pre-cached, analysis-side
	// replay is far below even one pass over the sequence.
	if seq := uint64(len(rep.Run.Seq)); warm.Stats.ReplayedInstrs >= seq {
		t.Errorf("warm replay %d >= failing-sequence length %d", warm.Stats.ReplayedInstrs, seq)
	}
}

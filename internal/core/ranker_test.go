package core

import (
	"testing"

	"aitia/internal/kir"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// rankerScenarios is a cross-section of the corpus: the simple two-race
// figure, the paper's four-race conjunction bug, and a scenario with a
// planted benign race.
var rankerScenarios = []string{"fig1", "cve-2017-15649", "fig4a", "syz08-j1939-refcount"}

// oracles builds a prior slice that settles every final benign verdict
// as SettledBenign and every final root-cause verdict as
// SettledRootCause with the kill row taken from the executed flip run —
// i.e. a perfectly warm prior. Ambiguous and unknown races are left to
// execute.
func oracles(d *Diagnosis) []FlipPrior {
	priors := make([]FlipPrior, len(d.Tested))
	for i, tr := range d.Tested {
		switch tr.Verdict {
		case VerdictBenign:
			priors[i] = FlipPrior{Score: 0.1, Hit: true, SettledBenign: true}
		case VerdictRootCause:
			kills := make([]bool, len(d.Tested))
			for j, other := range d.Tested {
				if j != i {
					kills[j] = !sched.RaceOccurred(tr.FlipRun, other.Race)
				}
			}
			priors[i] = FlipPrior{Score: 0.9, Hit: true, SettledRootCause: true, Kills: kills}
		default:
			priors[i] = FlipPrior{Score: 0.5}
		}
	}
	return priors
}

// TestRankerSettledChainIdentical: an analysis whose ranker settles
// every settleable flip must produce a byte-identical chain and verdict
// sequence to fixed-order analysis, serial and parallel, with the stats
// accounting for every race exactly once.
func TestRankerSettledChainIdentical(t *testing.T) {
	for _, name := range rankerScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, ok := scenarios.ByName(name)
			if !ok {
				t.Fatalf("unknown scenario %q", name)
			}
			prog := sc.MustProgram()
			opts := LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr(), LeakCheck: sc.NeedsLeakCheck()}

			m := mustMachine(t, prog)
			rep, err := Reproduce(m, opts)
			if err != nil {
				t.Fatalf("Reproduce: %v", err)
			}
			fixed, err := Analyze(m, rep, AnalysisOptions{LeakCheck: sc.NeedsLeakCheck()})
			if err != nil {
				t.Fatalf("fixed-order Analyze: %v", err)
			}
			priors := oracles(fixed)
			wantSkips := 0
			for _, p := range priors {
				if p.SettledBenign || p.SettledRootCause {
					wantSkips++
				}
			}

			for _, workers := range []int{0, 8} {
				m2 := mustMachine(t, prog)
				ranked, err := Analyze(m2, rep, AnalysisOptions{
					LeakCheck: sc.NeedsLeakCheck(),
					Workers:   workers,
					Ranker:    alignedRanker{priors: priors},
				})
				if err != nil {
					t.Fatalf("workers=%d ranked Analyze: %v", workers, err)
				}
				if got, want := ranked.Chain.Format(prog), fixed.Chain.Format(prog); got != want {
					t.Errorf("workers=%d chain = %q, want %q", workers, got, want)
				}
				if len(ranked.Tested) != len(fixed.Tested) {
					t.Fatalf("workers=%d test set = %d races, want %d", workers, len(ranked.Tested), len(fixed.Tested))
				}
				for i := range fixed.Tested {
					if ranked.Tested[i].Verdict != fixed.Tested[i].Verdict {
						t.Errorf("workers=%d race %d verdict = %v, want %v",
							workers, i, ranked.Tested[i].Verdict, fixed.Tested[i].Verdict)
					}
				}
				st := ranked.Stats
				if st.FlipsExecuted+st.FlipsSkipped != st.TestSet {
					t.Errorf("workers=%d executed %d + skipped %d != test set %d",
						workers, st.FlipsExecuted, st.FlipsSkipped, st.TestSet)
				}
				if st.FlipsSkipped != wantSkips {
					t.Errorf("workers=%d skipped %d flips, want %d", workers, st.FlipsSkipped, wantSkips)
				}
				if st.PriorHits != wantSkips {
					t.Errorf("workers=%d prior hits = %d, want %d", workers, st.PriorHits, wantSkips)
				}
			}
		})
	}
}

// alignedRanker returns its fixed slice only when the length matches the
// candidate count (the FlipRanker contract); otherwise fixed order.
type alignedRanker struct{ priors []FlipPrior }

func (r alignedRanker) RankFlips(_ *kir.Program, races []sched.Race) []FlipPrior {
	if len(races) != len(r.priors) {
		return nil
	}
	return r.priors
}

// TestRankerScoreOnlyChainIdentical: reordering alone (adversarially
// reversed priority, nothing settled) must not change any verdict or the
// chain — ranking changes the work, never the answer.
func TestRankerScoreOnlyChainIdentical(t *testing.T) {
	for _, name := range rankerScenarios {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc, _ := scenarios.ByName(name)
			prog := sc.MustProgram()
			opts := LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr(), LeakCheck: sc.NeedsLeakCheck()}

			m := mustMachine(t, prog)
			rep, err := Reproduce(m, opts)
			if err != nil {
				t.Fatalf("Reproduce: %v", err)
			}
			fixed, err := Analyze(m, rep, AnalysisOptions{LeakCheck: sc.NeedsLeakCheck()})
			if err != nil {
				t.Fatalf("fixed-order Analyze: %v", err)
			}
			// Reverse the fixed test order: the race tested last gets the
			// highest score.
			priors := make([]FlipPrior, len(fixed.Tested))
			for i := range priors {
				priors[i] = FlipPrior{Score: float64(i) / float64(len(priors)+1)}
			}
			m2 := mustMachine(t, prog)
			ranked, err := Analyze(m2, rep, AnalysisOptions{
				LeakCheck: sc.NeedsLeakCheck(),
				Ranker:    alignedRanker{priors: priors},
			})
			if err != nil {
				t.Fatalf("ranked Analyze: %v", err)
			}
			if got, want := ranked.Chain.Format(prog), fixed.Chain.Format(prog); got != want {
				t.Errorf("chain = %q, want %q", got, want)
			}
			if ranked.Stats.FlipsExecuted != ranked.Stats.TestSet || ranked.Stats.FlipsSkipped != 0 {
				t.Errorf("executed %d / skipped %d, want %d / 0",
					ranked.Stats.FlipsExecuted, ranked.Stats.FlipsSkipped, ranked.Stats.TestSet)
			}
		})
	}
}

// TestRankerWrongLengthIgnored: a ranker returning a slice of the wrong
// length is ignored entirely — exact fixed-order analysis, no skips, no
// prior hits.
func TestRankerWrongLengthIgnored(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	m := mustMachine(t, prog)
	rep, err := Reproduce(m, LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatalf("Reproduce: %v", err)
	}
	fixed, err := Analyze(m, rep, AnalysisOptions{})
	if err != nil {
		t.Fatalf("fixed-order Analyze: %v", err)
	}
	m2 := mustMachine(t, prog)
	d, err := Analyze(m2, rep, AnalysisOptions{
		Ranker: alignedRanker{priors: make([]FlipPrior, 1000)},
	})
	if err != nil {
		t.Fatalf("ranked Analyze: %v", err)
	}
	if got, want := d.Chain.Format(prog), fixed.Chain.Format(prog); got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if d.Stats.FlipsSkipped != 0 || d.Stats.PriorHits != 0 {
		t.Errorf("skipped %d, prior hits %d, want 0/0", d.Stats.FlipsSkipped, d.Stats.PriorHits)
	}
	if d.Stats.FlipsExecuted != d.Stats.TestSet {
		t.Errorf("executed %d flips, want the full test set %d", d.Stats.FlipsExecuted, d.Stats.TestSet)
	}
}

package core

import (
	"strings"
	"testing"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
	"aitia/internal/sched"
)

// synthetic builds a Diagnosis whose flip runs are crafted so that
// kills(i, j) matches the given matrix, letting buildChain be tested in
// isolation. Race i occupies steps (2i, 2i+1) and uses address 100+i;
// a flip run "kills" race j by simply not containing j's accesses.
func synthetic(t *testing.T, n int, kills [][]bool, ambiguous map[int]bool) (*Diagnosis, []sched.Race) {
	t.Helper()
	races := make([]sched.Race, n)
	for i := 0; i < n; i++ {
		races[i] = sched.Race{
			First:      sched.Site{Thread: "A", Instr: kir.InstrID(10 + i)},
			Second:     sched.Site{Thread: "B", Instr: kir.InstrID(100 + i)},
			Addr:       uint64(1000 + i),
			FirstStep:  2 * i,
			SecondStep: 2*i + 1,
		}
	}
	mkRun := func(i int) *sched.RunResult {
		res := &sched.RunResult{}
		for j := 0; j < n; j++ {
			if i == j || kills[i][j] {
				continue // the flipped race's victim does not occur
			}
			res.Seq = append(res.Seq,
				sched.Exec{Step: len(res.Seq), Name: "A", Instr: kir.Instr{ID: races[j].First.Instr},
					Accesses: []sched.AccessRec{{Addr: races[j].Addr, Write: true}}},
				sched.Exec{Step: len(res.Seq) + 1, Name: "B", Instr: kir.Instr{ID: races[j].Second.Instr},
					Accesses: []sched.AccessRec{{Addr: races[j].Addr}}},
			)
		}
		return res
	}
	d := &Diagnosis{Failure: &sanitizer.Failure{Kind: sanitizer.KindBugOn}}
	for i := 0; i < n; i++ {
		v := VerdictRootCause
		if ambiguous[i] {
			v = VerdictAmbiguous
		}
		d.Tested = append(d.Tested, TestedRace{Race: races[i], Verdict: v, FlipRun: mkRun(i)})
	}
	return d, races
}

func TestBuildChainLinear(t *testing.T) {
	// 0 kills 1, 1 kills 2: a linear chain with the transitive edge 0->2
	// reduced away.
	kills := [][]bool{
		{false, true, true}, // 0 kills 1 and (transitively) 2
		{false, false, true},
		{false, false, false},
	}
	d, _ := synthetic(t, 3, kills, nil)
	c := buildChain(d, d.Failure)
	if len(c.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, node := range c.Nodes {
		if len(node.Races) != 1 {
			t.Errorf("node %d has %d races", i, len(node.Races))
		}
	}
	// Each node points only at its successor.
	if len(c.Edges[0]) != 1 || c.Edges[0][0] != 1 {
		t.Errorf("edges[0] = %v (transitive edge not reduced)", c.Edges[0])
	}
	if len(c.Edges[1]) != 1 || c.Edges[1][0] != 2 {
		t.Errorf("edges[1] = %v", c.Edges[1])
	}
	if len(c.Edges[2]) != 0 {
		t.Errorf("edges[2] = %v", c.Edges[2])
	}
}

func TestBuildChainMutualKillConjunction(t *testing.T) {
	// 0 and 1 kill each other (a multi-variable pair); both kill 2.
	kills := [][]bool{
		{false, true, true},
		{true, false, true},
		{false, false, false},
	}
	d, _ := synthetic(t, 3, kills, nil)
	c := buildChain(d, d.Failure)
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d, want conjunction + sink", len(c.Nodes))
	}
	if len(c.Nodes[0].Races) != 2 {
		t.Errorf("first node = %d races, want the conjunction pair", len(c.Nodes[0].Races))
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestBuildChainSuccessorMerge(t *testing.T) {
	// 0 and 1 are independent (no mutual kill) but both kill only 2:
	// identical successor sets merge them into one conjunction node.
	kills := [][]bool{
		{false, false, true},
		{false, false, true},
		{false, false, false},
	}
	d, _ := synthetic(t, 3, kills, nil)
	c := buildChain(d, d.Failure)
	if len(c.Nodes) != 2 || len(c.Nodes[0].Races) != 2 {
		t.Fatalf("nodes = %d (first has %d races)", len(c.Nodes), len(c.Nodes[0].Races))
	}
}

func TestBuildChainAmbiguityFlag(t *testing.T) {
	kills := [][]bool{{false, false}, {false, false}}
	d, _ := synthetic(t, 2, kills, map[int]bool{1: true})
	c := buildChain(d, d.Failure)
	if !c.HasAmbiguity() {
		t.Error("ambiguity flag lost")
	}
	// Rendering marks the ambiguous member.
	found := false
	for _, node := range c.Nodes {
		if strings.Contains(node.Format(progForNames(t)), "(ambiguous)") {
			found = true
		}
	}
	if !found {
		t.Error("rendering misses the (ambiguous) marker")
	}
}

func TestBuildChainEmpty(t *testing.T) {
	d := &Diagnosis{Failure: &sanitizer.Failure{Kind: sanitizer.KindBugOn}}
	c := buildChain(d, d.Failure)
	if c.Len() != 0 || len(c.Nodes) != 0 {
		t.Errorf("empty chain = %+v", c)
	}
	if got := c.Format(progForNames(t)); !strings.Contains(got, "BUG") {
		t.Errorf("empty chain format = %q", got)
	}
}

// progForNames provides a program whose InstrName works for arbitrary ids
// (names fall back to "?", which is fine for these tests).
func progForNames(t *testing.T) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("f")
	f.Ret()
	b.Thread("T", "f")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

package core

import (
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
)

// SuspectAccess is one racing access extracted from a crash report and
// resolved against the program: the instruction suspected to participate
// in the root-cause race, the thread the report attributes it to (when a
// stack could be resolved) and the raced address (when the report carried
// one).
type SuspectAccess struct {
	// Instr is the suspect instruction. Required.
	Instr kir.InstrID
	// Thread is the resolved thread name; empty when unknown.
	Thread string
	// Addr is the raced address from the report; zero when unknown.
	Addr uint64
	// Write marks the access a store (from the report's "write to ...").
	Write bool
}

// Guide switches a LIFS search into constrained, report-driven mode: the
// search is seeded from the crash report's suspect access pair instead of
// starting blind.
//
// Three mechanisms apply, all deterministic functions of the path (so
// serial and parallel searches stay equivalent) and all winner-preserving
// (they never cut a subtree that could contain an accepted leaf, so the
// reproduction equals the unguided one):
//
//   - Suspect seeding: suspects with a known thread and address are
//     pre-recorded into the access knowledge, making the suspect pair a
//     conflict point — and hence a preemption candidate ordering the pair
//     both ways — from the very first phase, before any discovery run.
//
//   - Off-report flip: a path goes off-report as soon as no live thread
//     can reach the accepted failing instruction anymore (nothing below
//     can produce the reported failure), or as soon as a suspect
//     instruction that has not executed on the current path has become
//     unreachable (the reported race can no longer occur below). An
//     off-report path stops branching — the subtree fan-out is the saved
//     work — but still runs one straight-line completion, because the
//     accesses it records feed conflict-point discovery and race
//     identification exactly as a blind search's benign runs do.
//
//   - Leaf discard: a run that ends off-report, or with a failure the
//     accept filter rejects (including none at all), is not credited as a
//     schedule. A blind search must execute and count those same runs,
//     which is what makes guided Stats.Schedules strictly smaller
//     whenever any run ends benignly.
type Guide struct {
	// Suspects are the report's racing accesses, typically two. At most
	// maxSuspects are honored; extras are ignored.
	Suspects []SuspectAccess
}

// maxSuspects bounds the per-path suspect bookkeeping (a bitmask).
const maxSuspects = 16

// guideState is the compiled form of a Guide for one search: static
// reachability oracles for the accept site and each suspect.
type guideState struct {
	suspects []SuspectAccess
	susReach []*reach
	byInstr  map[kir.InstrID]uint32 // suspect instr -> bitmask bits

	// accept is the reachability oracle of the accepted failing
	// instruction (LIFSOptions.WantInstr); nil when the report did not
	// pin one. acceptLeakSafe is true when pruning on accept-site
	// unreachability must additionally prove no live object allocated at
	// the site remains (leak failures manifest at run completion, long
	// after the allocation site was passed).
	accept         *reach
	acceptInstr    kir.InstrID
	acceptLeakSafe bool
}

// newGuideState compiles the options' guide against the program.
func newGuideState(prog *kir.Program, opts LIFSOptions) *guideState {
	g := &guideState{byInstr: make(map[kir.InstrID]uint32)}
	for _, sa := range opts.Guide.Suspects {
		if len(g.suspects) >= maxSuspects {
			break
		}
		if _, ok := prog.Instr(sa.Instr); !ok {
			continue
		}
		bit := uint32(1) << uint(len(g.suspects))
		g.suspects = append(g.suspects, sa)
		g.susReach = append(g.susReach, newReach(prog, sa.Instr))
		g.byInstr[sa.Instr] |= bit
	}
	if opts.WantInstr != kir.NoInstr && opts.WantInstr != 0 {
		if _, ok := prog.Instr(opts.WantInstr); ok {
			g.acceptInstr = opts.WantInstr
			g.accept = newReach(prog, opts.WantInstr)
			// Leak failures (and unconstrained kinds, which admit them)
			// manifest at completion: the site prune must also prove no
			// live allocation from the site remains.
			g.acceptLeakSafe = opts.WantKind == sanitizer.KindMemoryLeak ||
				opts.WantKind == sanitizer.KindNone
		}
	}
	if len(g.suspects) == 0 && g.accept == nil {
		return nil
	}
	return g
}

// pruned decides whether exploration below the machine's current state is
// dead under the guide. seen is the path's executed-suspect bitmask.
func (g *guideState) pruned(m *kvm.Machine, seen uint32) bool {
	if g.accept != nil && !g.accept.anyThread(m) {
		// No live thread can execute the reported failing instruction
		// anymore: failures of every site-bound kind are impossible below.
		// Completion-time leak failures remain possible while an object
		// allocated at the site lives; rule those out too when needed.
		if !g.acceptLeakSafe || !m.Space().LiveAllocSite(g.acceptInstr) {
			return true
		}
	}
	for i, r := range g.susReach {
		if seen&(uint32(1)<<uint(i)) != 0 {
			continue
		}
		if !r.anyThread(m) {
			// A reported racing access can no longer execute on this
			// path: per the report's testimony the failure needs it, so
			// everything below is off-target.
			return true
		}
	}
	return false
}

// reach is a static reachability oracle for one target instruction:
// whether execution continuing from a given call-stack position can still
// execute the target. It over-approximates (both branch directions are
// taken, calls may return), which is the safe direction — a position the
// oracle calls reachable is never pruned.
type reach struct {
	// pos[fn][i]: executing from instruction i of fn — including its
	// callees and anything they spawn — can reach the target without
	// returning from fn.
	pos map[string][]bool
	// exit[fn][i]: from instruction i the frame can pop (ret or falling
	// off the end), making the caller's continuation live. OpExit ends
	// the whole thread and does not count.
	exit map[string][]bool
}

// newReach builds the oracle with an interprocedural fixed point: a
// function's entry reachability feeds its call sites, spawn sites count
// as calls (the spawned thread runs later), and loops converge because
// the bit only ever flips one way.
func newReach(p *kir.Program, target kir.InstrID) *reach {
	r := &reach{
		pos:  make(map[string][]bool, len(p.Funcs)),
		exit: make(map[string][]bool, len(p.Funcs)),
	}
	for name, f := range p.Funcs {
		r.pos[name] = make([]bool, len(f.Instrs))
		r.exit[name] = computeExit(p, f)
	}
	for changed := true; changed; {
		changed = false
		for name, f := range p.Funcs {
			if r.flowFunc(p, f, r.pos[name], target) {
				changed = true
			}
		}
	}
	return r
}

// computeExit runs the intra-function "can this frame pop" backward pass.
func computeExit(p *kir.Program, f *kir.Func) []bool {
	ex := make([]bool, len(f.Instrs))
	for changed := true; changed; {
		changed = false
		for i := len(f.Instrs) - 1; i >= 0; i-- {
			if ex[i] {
				continue
			}
			in := f.Instrs[i]
			var v bool
			switch {
			case in.Op == kir.OpRet:
				v = true
			case in.Op == kir.OpExit:
				v = false
			case in.Op == kir.OpJmp:
				v = ex[p.BranchTarget(in)]
			case in.Op.IsBranch():
				v = ex[p.BranchTarget(in)] || next(ex, i)
			default:
				// Calls may return (over-approximation), falling off the
				// end pops the frame.
				v = next(ex, i)
			}
			if v {
				ex[i] = true
				changed = true
			}
		}
	}
	return ex
}

// flowFunc runs one backward pass of the target-reachability flow over a
// function, reading entry reachability of callees from the shared state.
// It reports whether any bit flipped.
func (r *reach) flowFunc(p *kir.Program, f *kir.Func, pos []bool, target kir.InstrID) bool {
	changed := false
	for pass := true; pass; {
		pass = false
		for i := len(f.Instrs) - 1; i >= 0; i-- {
			if pos[i] {
				continue
			}
			in := f.Instrs[i]
			v := in.ID == target
			if !v {
				switch {
				case in.Op == kir.OpJmp:
					v = pos[p.BranchTarget(in)]
				case in.Op.IsBranch():
					v = pos[p.BranchTarget(in)] || next(pos, i)
				case in.Op == kir.OpRet || in.Op == kir.OpExit:
					v = false
				case in.Op.UsesFunc():
					// The callee (or spawned thread) may reach the
					// target; otherwise execution continues after the
					// call site.
					v = r.entry(in.Target) || next(pos, i)
				default:
					v = next(pos, i)
				}
			}
			if v {
				pos[i] = true
				pass, changed = true, true
			}
		}
	}
	return changed
}

// entry returns the reachability of a function's first instruction.
func (r *reach) entry(fn string) bool {
	pp := r.pos[fn]
	return len(pp) > 0 && pp[0]
}

func next(bits []bool, i int) bool {
	return i+1 < len(bits) && bits[i+1]
}

// thread reports whether the call stack can still execute the target:
// some frame's continuation reaches it, walking outward only while inner
// frames can pop.
func (r *reach) thread(frames []kvm.Pos) bool {
	for i := len(frames) - 1; i >= 0; i-- {
		f := frames[i]
		pp := r.pos[f.Fn]
		if f.PC >= len(pp) {
			// Exhausted frame: it pops on normalize; the next outer
			// continuation decides.
			continue
		}
		if pp[f.PC] {
			return true
		}
		if ee := r.exit[f.Fn]; !ee[f.PC] {
			return false
		}
	}
	return false
}

// anyThread reports whether any live thread of the machine can still
// execute the target.
func (r *reach) anyThread(m *kvm.Machine) bool {
	for i := 0; i < m.NumThreads(); i++ {
		if fr := m.Frames(kvm.ThreadID(i)); len(fr) > 0 && r.thread(fr) {
			return true
		}
	}
	return false
}

package eval

import (
	"fmt"

	"aitia/internal/core"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// AblationRow measures one design choice of the paper by running the
// pipeline with the mechanism on and off.
type AblationRow struct {
	// Mechanism names the design choice (DESIGN.md §5).
	Mechanism string
	// Scenario is the bug the ablation runs on.
	Scenario string
	// With/Without summarize the measured effect.
	With    string
	Without string
	// Verdict states what the ablation demonstrates.
	Verdict string
}

// RunAblations measures the four design choices called out in DESIGN.md:
// DPOR-style pruning, least-interleaving-first ordering, phantom races,
// and critical-section flip units.
func RunAblations() ([]AblationRow, error) {
	var rows []AblationRow

	// 1. Equivalent-state pruning: schedule count on the hardest CVE.
	{
		sc, _ := scenarios.ByName("cve-2017-15649")
		on, err := reproduceWith(sc, core.LIFSOptions{})
		if err != nil {
			return nil, err
		}
		off, err := reproduceWith(sc, core.LIFSOptions{NoPruning: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Mechanism: "DPOR-style equivalent-state pruning",
			Scenario:  sc.Name,
			With:      fmt.Sprintf("%d schedules (%d pruned)", on.Stats.Schedules, on.Stats.Pruned),
			Without:   fmt.Sprintf("%d schedules", off.Stats.Schedules),
			Verdict:   verdictLess(on.Stats.Schedules, off.Stats.Schedules, "pruning reduces the search"),
		})
	}

	// 2. Least-interleaving-first: iterative deepening vs. direct search
	// at the maximum interleaving bound. The mechanism's value is the
	// *minimality* of the reproduction (paper §3.3: most failures need
	// few interleavings): a deep-first search finds *a* failing sequence
	// quickly but with unnecessary preemptions and a larger test set,
	// which every subsequent flip test pays for.
	{
		sc, _ := scenarios.ByName("syz02-packet-frame")
		on, err := reproduceWith(sc, core.LIFSOptions{})
		if err != nil {
			return nil, err
		}
		off, err := reproduceWith(sc, core.LIFSOptions{NoLeastFirst: true})
		if err != nil {
			return nil, err
		}
		verdict := "least-first yields the minimal failing interleaving"
		if off.Stats.Interleavings <= on.Stats.Interleavings && len(off.Races) <= len(on.Races) {
			verdict = "no observable difference on this scenario"
		}
		rows = append(rows, AblationRow{
			Mechanism: "least-interleaving-first ordering",
			Scenario:  sc.Name,
			With:      fmt.Sprintf("reproduced at %d interleavings, %d-race test set", on.Stats.Interleavings, len(on.Races)),
			Without:   fmt.Sprintf("reproduced at %d interleavings, %d-race test set", off.Stats.Interleavings, len(off.Races)),
			Verdict:   verdict,
		})
	}

	// 3. Phantom races: the chain of CVE-2017-15649 loses B17 => A12.
	{
		sc, _ := scenarios.ByName("cve-2017-15649")
		prog := sc.MustProgram()
		with, err := diagnoseWith(sc, core.LIFSOptions{}, core.AnalysisOptions{})
		if err != nil {
			return nil, err
		}
		without, err := diagnoseWith(sc, core.LIFSOptions{NoPhantom: true}, core.AnalysisOptions{})
		if err != nil {
			return nil, err
		}
		verdict := "phantom races are required for the full chain"
		if with.Chain.Len() <= without.Chain.Len() {
			verdict = "UNEXPECTED: phantom races did not extend the chain"
		}
		rows = append(rows, AblationRow{
			Mechanism: "phantom races (unexecuted second access)",
			Scenario:  sc.Name,
			With:      fmt.Sprintf("%d-race chain: %s", with.Chain.Len(), with.Chain.Format(prog)),
			Without:   fmt.Sprintf("%d-race chain: %s", without.Chain.Len(), without.Chain.Format(prog)),
			Verdict:   verdict,
		})
	}

	// 4. Critical-section flip units (§3.4 liveness): without the rule,
	// the mutex-protected check race of syz10 cannot be flipped as
	// intended.
	{
		sc, _ := scenarios.ByName("syz10-md-ioctl")
		with, err := diagnoseWith(sc, core.LIFSOptions{}, core.AnalysisOptions{})
		if err != nil {
			return nil, err
		}
		without, err := diagnoseWith(sc, core.LIFSOptions{}, core.AnalysisOptions{NoCriticalSections: true})
		if err != nil {
			return nil, err
		}
		realized := func(d *core.Diagnosis) (n int) {
			for _, tr := range d.Tested {
				if tr.FlipRealized {
					n++
				}
			}
			return
		}
		verdict := "critical-section units keep flips realizable"
		if realized(with) <= realized(without) && with.Chain.Len() == without.Chain.Len() {
			verdict = "no observable difference on this scenario"
		}
		rows = append(rows, AblationRow{
			Mechanism: "critical-section flip units (§3.4)",
			Scenario:  sc.Name,
			With:      fmt.Sprintf("%d/%d flips realized, chain %d", realized(with), len(with.Tested), with.Chain.Len()),
			Without:   fmt.Sprintf("%d/%d flips realized, chain %d", realized(without), len(without.Tested), without.Chain.Len()),
			Verdict:   verdict,
		})
	}

	return rows, nil
}

func verdictLess(with, without int, msg string) string {
	if with < without {
		return fmt.Sprintf("%s (%.1fx fewer schedules)", msg, float64(without)/float64(with))
	}
	return "UNEXPECTED: no reduction on this scenario"
}

func reproduceWith(sc *scenarios.Scenario, lifs core.LIFSOptions) (*core.Reproduction, error) {
	prog, err := sc.Program()
	if err != nil {
		return nil, err
	}
	m, err := kvm.New(prog)
	if err != nil {
		return nil, err
	}
	lifs.WantKind = sc.WantKind
	lifs.WantInstr = sc.WantInstr()
	lifs.LeakCheck = sc.NeedsLeakCheck()
	return core.Reproduce(m, lifs)
}

func diagnoseWith(sc *scenarios.Scenario, lifs core.LIFSOptions, an core.AnalysisOptions) (*core.Diagnosis, error) {
	prog, err := sc.Program()
	if err != nil {
		return nil, err
	}
	m, err := kvm.New(prog)
	if err != nil {
		return nil, err
	}
	lifs.WantKind = sc.WantKind
	lifs.WantInstr = sc.WantInstr()
	lifs.LeakCheck = sc.NeedsLeakCheck()
	rep, err := core.Reproduce(m, lifs)
	if err != nil {
		return nil, err
	}
	an.LeakCheck = sc.NeedsLeakCheck()
	return core.Analyze(m, rep, an)
}

// Package eval regenerates the paper's evaluation artifacts (§5): Table 1
// (requirements matrix vs. prior approaches), Table 2 (CVE diagnoses),
// Table 3 (Syzkaller-bug diagnoses), the §5.2 conciseness statistics, the
// §5.2/§5.3 baseline-coverage comparison, and the Figure 5 search-tree
// trace. Each Run* function executes the real pipeline on the scenario
// corpus and returns structured rows; the cmd/aitia-bench tool and the
// repository benchmarks render them.
package eval

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"aitia/internal/baselines/coopbl"
	"aitia/internal/baselines/kairux"
	"aitia/internal/baselines/muvi"
	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// Diagnose runs the full pipeline (LIFS + Causality Analysis) on one
// scenario and returns both stages' outputs.
func Diagnose(sc *scenarios.Scenario) (*core.Reproduction, *core.Diagnosis, error) {
	prog, err := sc.Program()
	if err != nil {
		return nil, nil, err
	}
	m, err := kvm.New(prog)
	if err != nil {
		return nil, nil, err
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: LIFS: %w", sc.Name, err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{LeakCheck: sc.NeedsLeakCheck()})
	if err != nil {
		return nil, nil, fmt.Errorf("%s: causality analysis: %w", sc.Name, err)
	}
	return rep, d, nil
}

// Row is one diagnosed scenario with the statistics the paper reports.
type Row struct {
	Scenario *scenarios.Scenario

	LIFSTime      time.Duration
	LIFSScheds    int
	Interleavings int
	Pruned        int

	CATime   time.Duration
	CAScheds int

	TestSetRaces int // data races in the failing execution's test set
	MemAccesses  int // memory-accessing instruction executions
	ChainRaces   int // races in the causality chain
	BenignRaces  int // races excluded as benign
	Ambiguous    bool
	Chain        string
}

// RunGroup diagnoses every scenario of a corpus group, in parallel, and
// returns rows in corpus order.
func RunGroup(g scenarios.Group) ([]Row, error) {
	return runAll(scenarios.ByGroup(g))
}

// RunAll diagnoses the entire corpus.
func RunAll() ([]Row, error) { return runAll(scenarios.All()) }

// Run diagnoses a caller-selected scenario list (e.g. a -corpus subset),
// in parallel, returning rows in list order.
func Run(list []*scenarios.Scenario) ([]Row, error) { return runAll(list) }

func runAll(list []*scenarios.Scenario) ([]Row, error) {
	rows := make([]Row, len(list))
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sc := range list {
		wg.Add(1)
		go func(i int, sc *scenarios.Scenario) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = runOne(sc)
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func runOne(sc *scenarios.Scenario) (Row, error) {
	prog, err := sc.Program()
	if err != nil {
		return Row{}, err
	}
	rep, d, err := Diagnose(sc)
	if err != nil {
		return Row{}, err
	}
	return Row{
		Scenario:      sc,
		LIFSTime:      rep.Stats.Elapsed,
		LIFSScheds:    rep.Stats.Schedules,
		Interleavings: rep.Stats.Interleavings,
		Pruned:        rep.Stats.Pruned,
		CATime:        d.Stats.Elapsed,
		CAScheds:      d.Stats.Schedules,
		TestSetRaces:  d.Stats.TestSet,
		MemAccesses:   d.Stats.MemAccesses,
		ChainRaces:    d.Chain.Len(),
		BenignRaces:   len(d.Benign),
		Ambiguous:     d.Chain.HasAmbiguity(),
		Chain:         d.Chain.Format(prog),
	}, nil
}

// Conciseness aggregates the §5.2 statistics over a set of rows.
type Conciseness struct {
	AvgMemAccesses float64
	MinMemAccesses int
	MaxMemAccesses int
	AvgRaces       float64
	MinRaces       int
	MaxRaces       int
	AvgChainRaces  float64
}

// Concise computes the conciseness aggregate.
func Concise(rows []Row) Conciseness {
	if len(rows) == 0 {
		return Conciseness{}
	}
	c := Conciseness{MinMemAccesses: rows[0].MemAccesses, MinRaces: rows[0].TestSetRaces}
	for _, r := range rows {
		c.AvgMemAccesses += float64(r.MemAccesses)
		c.AvgRaces += float64(r.TestSetRaces)
		c.AvgChainRaces += float64(r.ChainRaces)
		if r.MemAccesses < c.MinMemAccesses {
			c.MinMemAccesses = r.MemAccesses
		}
		if r.MemAccesses > c.MaxMemAccesses {
			c.MaxMemAccesses = r.MemAccesses
		}
		if r.TestSetRaces < c.MinRaces {
			c.MinRaces = r.TestSetRaces
		}
		if r.TestSetRaces > c.MaxRaces {
			c.MaxRaces = r.TestSetRaces
		}
	}
	n := float64(len(rows))
	c.AvgMemAccesses /= n
	c.AvgRaces /= n
	c.AvgChainRaces /= n
	return c
}

// BaselineRow compares AITIA with the reimplemented prior approaches on
// one bug (§5.2 pattern-agnostic, §5.3).
type BaselineRow struct {
	Scenario *scenarios.Scenario

	// AITIA always diagnoses (chain built, verified by the corpus tests).
	AITIAChain int // races in the chain

	// Kairux: the inflection point, and whether that single instruction
	// covers the whole root cause (it can only when the chain has one
	// race involving it).
	KairuxPoint    string
	KairuxComplete bool

	// CoopBL: the top-ranked predefined pattern, how many chain races it
	// covers, and whether it explains the bug completely.
	CoopBLTop      string
	CoopBLCovered  int
	CoopBLComplete bool

	// MUVI: whether access-correlation mining reaches the bug.
	MUVIReaches bool
	MUVIWhy     string
}

// CorpusRuns is the size of the random-execution corpus the statistical
// baselines learn from.
const CorpusRuns = 400

// RunBaselines compares the baselines on every scenario of a group.
func RunBaselines(g scenarios.Group, seed int64) ([]BaselineRow, error) {
	list := scenarios.ByGroup(g)
	rows := make([]BaselineRow, len(list))
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sc := range list {
		wg.Add(1)
		go func(i int, sc *scenarios.Scenario) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = runBaseline(sc, seed)
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func runBaseline(sc *scenarios.Scenario, seed int64) (BaselineRow, error) {
	prog, err := sc.Program()
	if err != nil {
		return BaselineRow{}, err
	}
	rep, d, err := Diagnose(sc)
	if err != nil {
		return BaselineRow{}, err
	}
	chain := d.Chain.Races()
	row := BaselineRow{Scenario: sc, AITIAChain: len(chain)}

	// Two corpora: the statistical baselines mine the noise-extended
	// program (the access population around the bug); Kairux compares the
	// failing run against passing runs of the *same* program it failed in.
	fz, err := fuzz.New(prog, fuzz.Options{Seed: seed, LeakCheck: sc.NeedsLeakCheck()})
	if err != nil {
		return row, err
	}
	baseRuns, err := fz.CollectRuns(CorpusRuns)
	if err != nil {
		return row, err
	}
	runs := baseRuns
	if len(sc.Noise) > 0 {
		corpusProg, err := sc.CorpusProgram()
		if err != nil {
			return row, err
		}
		nfz, err := fuzz.New(corpusProg, fuzz.Options{Seed: seed + 1, LeakCheck: sc.NeedsLeakCheck()})
		if err != nil {
			return row, err
		}
		runs, err = nfz.CollectRuns(CorpusRuns)
		if err != nil {
			return row, err
		}
	}

	// Kairux: inflection point of our failing run vs. the corpus's
	// passing runs (Analyze skips the failing ones).
	kres, kerr := kairux.Analyze(rep.Run, baseRuns)
	if kerr == nil {
		row.KairuxPoint = kres.Format(prog)
		// The single instruction "completes" the diagnosis only if the
		// chain is a single race whose either side is that instruction.
		if len(chain) == 1 {
			r := chain[0]
			row.KairuxComplete = kres.Site == r.First || kres.Site == r.Second
		}
	} else {
		row.KairuxPoint = kerr.Error()
	}

	// Cooperative bug localization: top correlated pattern.
	ranked, cerr := coopbl.Analyze(runs)
	if cerr == nil && len(ranked) > 0 {
		row.CoopBLTop = ranked[0].Pattern.Format(prog)
		row.CoopBLCovered = coopbl.Covers(ranked[0], chain)
		row.CoopBLComplete = row.CoopBLCovered == len(chain) && len(chain) > 0
	} else if cerr != nil {
		row.CoopBLTop = cerr.Error()
	}

	// MUVI: access-correlation mining.
	cors := muvi.Mine(runs, muvi.Options{})
	row.MUVIReaches, row.MUVIWhy = muvi.CanExplain(cors, chain)
	return row, nil
}

// Table1Row is a requirements-matrix entry (paper Table 1): whether a
// system satisfies each requirement. Values: "yes", "no", "partial".
type Table1Row struct {
	System          string
	Comprehensive   string
	PatternAgnostic string
	Concise         string
	Evidence        string
}

// Table1 derives the requirements matrix from the measured baseline rows:
// AITIA and the three reimplemented systems are judged empirically on
// this corpus; the remaining systems of the paper's Table 1 (CCI, REPT,
// RR) are included with the paper's published classification for
// completeness.
func Table1(rows []BaselineRow) []Table1Row {
	multiBugs, coopOK, muviOK, kairuxOK := 0, 0, 0, 0
	for _, r := range rows {
		if r.Scenario.MultiVariable {
			multiBugs++
		}
		if r.CoopBLComplete {
			coopOK++
		}
		if r.MUVIReaches {
			muviOK++
		}
		if r.KairuxComplete {
			kairuxOK++
		}
	}
	n := len(rows)
	out := []Table1Row{
		{
			System: "AITIA", Comprehensive: "yes", PatternAgnostic: "yes", Concise: "yes",
			Evidence: fmt.Sprintf("diagnosed %d/%d bugs; chains contain no benign race", n, n),
		},
		{
			System: "Kairux", Comprehensive: "no", PatternAgnostic: "yes", Concise: "yes",
			Evidence: fmt.Sprintf("single inflection point completes only %d/%d diagnoses", kairuxOK, n),
		},
		{
			System: "MUVI", Comprehensive: "partial", PatternAgnostic: "no", Concise: "yes",
			Evidence: fmt.Sprintf("correlation mining reaches %d/%d bugs (%d multi-variable in corpus)", muviOK, n, multiBugs),
		},
		{
			System: "CoopBL (Snorlax/Gist)", Comprehensive: "partial", PatternAgnostic: "no", Concise: "yes",
			Evidence: fmt.Sprintf("top single-variable pattern completes %d/%d diagnoses", coopOK, n),
		},
		{
			System: "CCI", Comprehensive: "partial", PatternAgnostic: "no", Concise: "yes",
			Evidence: "paper classification (interleaving predicates)",
		},
		{
			System: "REPT", Comprehensive: "yes", PatternAgnostic: "yes", Concise: "no",
			Evidence: "paper classification (failure reproduction only)",
		},
		{
			System: "RR", Comprehensive: "yes", PatternAgnostic: "yes", Concise: "no",
			Evidence: "paper classification (record & replay only)",
		},
	}
	return out
}

// Figure5 runs LIFS on the fig5 scenario with leaf recording and returns
// the search-tree leaves (the paper's Figure 5 search orders).
func Figure5() ([]core.LeafTrace, *core.Reproduction, error) {
	sc, _ := scenarios.ByName("fig5")
	prog, err := sc.Program()
	if err != nil {
		return nil, nil, err
	}
	m, err := kvm.New(prog)
	if err != nil {
		return nil, nil, err
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:     sc.WantKind,
		RecordLeaves: true,
	})
	if err != nil {
		return nil, nil, err
	}
	return rep.Leaves, rep, nil
}

package eval

import (
	"strings"
	"testing"
)

// TestAblations asserts that every design-choice ablation demonstrates
// its intended effect on the chosen scenario: pruning shrinks the search,
// least-interleaving-first minimizes the reproduction, phantom races
// extend the chain, and critical-section units keep flips realizable.
func TestAblations(t *testing.T) {
	rows, err := RunAblations()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("ablations = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if strings.Contains(r.Verdict, "UNEXPECTED") || strings.Contains(r.Verdict, "no observable difference") {
			t.Errorf("%s on %s: %s (with: %s, without: %s)",
				r.Mechanism, r.Scenario, r.Verdict, r.With, r.Without)
		}
	}
}

package eval

import (
	"fmt"
	"runtime"
	"sync"

	"aitia/internal/core"
	"aitia/internal/fuzz"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// ReproRow compares LIFS against random scheduling for reproducing one
// specific failure (the crash report's kind and location): how many
// executed schedules each needs. The paper motivates LIFS with the
// observation that most concurrency failures need only a small number of
// interleavings (§3.3); the systematic shallow-first search converts that
// into a small, *deterministic* schedule count, where random scheduling
// pays a seed-dependent expected count.
type ReproRow struct {
	Scenario *scenarios.Scenario
	// LIFSScheds is LIFS's deterministic schedule count.
	LIFSScheds int
	// RandomRuns is the mean number of random-schedule runs until the
	// same failure manifests, over Trials seeds; RandomMax the worst seed.
	RandomRuns float64
	RandomMax  int
	// Trials is the number of random campaigns averaged.
	Trials int
}

// ReproTrials is the number of random campaigns per scenario.
const ReproTrials = 20

// RunReproductionComparison measures LIFS vs. random scheduling on a
// corpus group.
func RunReproductionComparison(g scenarios.Group, seed int64) ([]ReproRow, error) {
	list := scenarios.ByGroup(g)
	rows := make([]ReproRow, len(list))
	errs := make([]error, len(list))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, sc := range list {
		wg.Add(1)
		go func(i int, sc *scenarios.Scenario) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = reproCompare(sc, seed)
		}(i, sc)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

func reproCompare(sc *scenarios.Scenario, seed int64) (ReproRow, error) {
	prog, err := sc.Program()
	if err != nil {
		return ReproRow{}, err
	}
	m, err := kvm.New(prog)
	if err != nil {
		return ReproRow{}, err
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
	})
	if err != nil {
		return ReproRow{}, err
	}
	row := ReproRow{Scenario: sc, LIFSScheds: rep.Stats.Schedules, Trials: ReproTrials}

	total, maxRuns := 0, 0
	for trial := 0; trial < ReproTrials; trial++ {
		fz, err := fuzz.New(prog, fuzz.Options{
			Seed:      seed + int64(trial),
			WantKind:  sc.WantKind,
			WantInstr: sc.WantInstr(),
			LeakCheck: sc.NeedsLeakCheck(),
			MaxRuns:   100000,
		})
		if err != nil {
			return row, err
		}
		finding, err := fz.Campaign()
		if err != nil {
			return row, err
		}
		if finding == nil {
			return row, fmt.Errorf("%s: random scheduling never reproduced (seed %d)", sc.Name, seed+int64(trial))
		}
		total += finding.Runs
		if finding.Runs > maxRuns {
			maxRuns = finding.Runs
		}
	}
	row.RandomRuns = float64(total) / float64(ReproTrials)
	row.RandomMax = maxRuns
	return row, nil
}

package eval

import (
	"fmt"

	"aitia/internal/kir"
)

// ParallelStressProgram builds a synthetic scenario whose LIFS search
// space is large, evenly branched, and resolved only by the very last
// schedule in canonical search order — the shape that measures parallel
// search throughput rather than lucky early exits.
//
// The program declares `threads` worker threads that each run `pad`
// thread-local instructions and then advance a shared sequence counter,
// but only when the counter shows every higher-numbered thread has
// already finished: thread i advances seq from threads-1-i. Thread 0,
// the last link, dereferences a null pointer once the whole descending
// order (w<threads-1>, ..., w1, w0) has been observed. No other schedule
// fails, so the search must enumerate the full permutation tree of
// thread completion orders — threads! schedules — and accepts exactly
// the final leaf. The threads share no conflicting accesses until the
// counter handoff, so the tree branches only at natural switches and
// every top-level branch carries the same subtree mass, the best case
// for sharding and the fairest for comparing worker counts.
// WideStateProgram builds a single-thread program with `globals` global
// words and a tight loop that keeps touching just two of them. It models
// the snapshot workload of a real kernel state: total state is wide, but
// any burst of execution dirties only a handful of locations. A deep-copy
// snapshot pays for every global on each checkpoint/restore cycle; the
// journal-based one pays only for the words the burst wrote, so the gap
// between the two grows linearly with `globals`.
func WideStateProgram(globals int) (*kir.Program, error) {
	if globals < 2 {
		return nil, fmt.Errorf("eval: wide-state program needs at least 2 globals, got %d", globals)
	}
	b := kir.NewBuilder()
	for i := 0; i < globals; i++ {
		b.Var(fmt.Sprintf("g%d", i), int64(i))
	}
	f := b.Func("spin")
	f.At("top").Load(kir.R1, kir.G("g0"))
	f.Store(kir.G("g1"), kir.R(kir.R1))
	f.Bne(kir.R(kir.R1), kir.Imm(-1), "top") // g0 is never -1: loop forever
	f.Ret()
	b.Thread("spin", "spin")
	return b.Build()
}

func ParallelStressProgram(threads, pad int) (*kir.Program, error) {
	if threads < 2 {
		return nil, fmt.Errorf("eval: stress program needs at least 2 threads, got %d", threads)
	}
	b := kir.NewBuilder()
	b.Var("seq", 0)
	b.Var("nullp", 0)
	for i := 0; i < threads; i++ {
		f := b.Func(fmt.Sprintf("w%d", i))
		for j := 0; j < pad; j++ {
			f.Mov(kir.R4, kir.Imm(int64(j)))
		}
		f.Load(kir.R1, kir.G("seq"))
		f.Bne(kir.R(kir.R1), kir.Imm(int64(threads-1-i)), "out")
		f.Store(kir.G("seq"), kir.Imm(int64(threads-i)))
		if i == 0 {
			// Whole descending order observed: the planted failure.
			f.Load(kir.R2, kir.G("nullp"))
			f.Load(kir.R3, kir.Ind(kir.R2, 0)).L("CRASH")
		}
		f.At("out").Ret()
	}
	for i := 0; i < threads; i++ {
		b.Thread(fmt.Sprintf("w%d", i), fmt.Sprintf("w%d", i))
	}
	return b.Build()
}

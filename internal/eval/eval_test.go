package eval

import (
	"testing"

	"aitia/internal/scenarios"
)

// TestTable2Shape verifies the reproduced Table 2 against the paper's
// claims: all 10 CVEs diagnose; every failure reproduces within one or
// two interleavings (CVE-2016-10200's fully sequential ambiguity case
// reproduces at zero); exactly one CVE hits the §3.4 ambiguity.
func TestTable2Shape(t *testing.T) {
	rows, err := RunGroup(scenarios.GroupCVE)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("CVEs = %d, want 10", len(rows))
	}
	ambiguous := 0
	for _, r := range rows {
		if r.Interleavings > 2 {
			t.Errorf("%s needed %d interleavings", r.Scenario.Name, r.Interleavings)
		}
		if r.ChainRaces == 0 {
			t.Errorf("%s produced an empty chain", r.Scenario.Name)
		}
		if r.Ambiguous {
			ambiguous++
			if r.Scenario.Name != "cve-2016-10200" {
				t.Errorf("unexpected ambiguity in %s", r.Scenario.Name)
			}
		}
		if r.CAScheds == 0 || r.LIFSScheds == 0 {
			t.Errorf("%s missing schedule counts", r.Scenario.Name)
		}
	}
	if ambiguous != 1 {
		t.Errorf("ambiguous CVEs = %d, want exactly 1 (CVE-2016-10200, §5.1)", ambiguous)
	}
}

// TestTable3Shape verifies the reproduced Table 3: all 12 bugs diagnose;
// chain sizes stay in the paper's 1..5 range with an average near 3.0;
// multi-variable and loosely-correlated counts match the paper (6 and 3).
func TestTable3Shape(t *testing.T) {
	rows, err := RunGroup(scenarios.GroupSyzkaller)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("bugs = %d, want 12", len(rows))
	}
	multi, loose := 0, 0
	for _, r := range rows {
		if r.Scenario.MultiVariable {
			multi++
		}
		if r.Scenario.LooselyCorrelated {
			loose++
		}
		if r.ChainRaces < 1 || r.ChainRaces > 5 {
			t.Errorf("%s chain = %d, outside the paper's 1..5", r.Scenario.Name, r.ChainRaces)
		}
		if r.Interleavings > 2 {
			t.Errorf("%s interleavings = %d", r.Scenario.Name, r.Interleavings)
		}
	}
	if multi != 6 {
		t.Errorf("multi-variable bugs = %d, want 6 (paper §5.2)", multi)
	}
	if loose != 3 {
		t.Errorf("loosely-correlated bugs = %d, want 3 (paper §5.2)", loose)
	}
	c := Concise(rows)
	if c.AvgChainRaces < 2.0 || c.AvgChainRaces > 4.0 {
		t.Errorf("avg chain = %.1f, want near the paper's 3.0", c.AvgChainRaces)
	}
	if c.AvgRaces <= c.AvgChainRaces {
		t.Errorf("conciseness inverted: %.1f races vs %.1f chain", c.AvgRaces, c.AvgChainRaces)
	}
	if c.AvgMemAccesses <= c.AvgRaces {
		t.Errorf("accesses (%.1f) should exceed races (%.1f)", c.AvgMemAccesses, c.AvgRaces)
	}
}

// TestBaselineCoverage verifies the §5.2/§5.3 comparison: AITIA diagnoses
// all 12; MUVI reaches exactly the three tightly-correlated multi-variable
// bugs; cooperative bug localization completes only single-race chains;
// Kairux completes only when the chain is a single race touching the
// inflection point.
func TestBaselineCoverage(t *testing.T) {
	rows, err := RunBaselines(scenarios.GroupSyzkaller, 1)
	if err != nil {
		t.Fatal(err)
	}
	var muviNames []string
	coop, kair := 0, 0
	for _, r := range rows {
		if r.AITIAChain == 0 {
			t.Errorf("AITIA failed on %s", r.Scenario.Name)
		}
		if r.MUVIReaches {
			muviNames = append(muviNames, r.Scenario.Name)
			if !r.Scenario.MultiVariable || r.Scenario.LooselyCorrelated {
				t.Errorf("MUVI reached %s, which is not a tight multi-variable bug", r.Scenario.Name)
			}
		}
		if r.CoopBLComplete {
			coop++
			if r.AITIAChain > 1 {
				t.Errorf("CoopBL 'completed' the %d-race chain of %s", r.AITIAChain, r.Scenario.Name)
			}
		}
		if r.KairuxComplete {
			kair++
		}
	}
	if len(muviNames) != 3 {
		t.Errorf("MUVI reaches %v, want exactly 3 (paper: 3/12)", muviNames)
	}
	if coop > len(rows)/2 {
		t.Errorf("CoopBL completes %d, paper says at most half", coop)
	}
	if kair > 2 {
		t.Errorf("Kairux completes %d single-instruction diagnoses", kair)
	}
	// Table 1 derivation runs on the measured rows.
	t1 := Table1(rows)
	if len(t1) != 7 || t1[0].System != "AITIA" {
		t.Errorf("Table1 = %v", t1)
	}
}

// TestReproductionComparison: LIFS reproduces every bug with a
// deterministic schedule count that beats random scheduling's mean,
// and the gap is largest on the hardest bug (#8, the only 2-interleaving
// reproduction).
func TestReproductionComparison(t *testing.T) {
	rows, err := RunReproductionComparison(scenarios.GroupSyzkaller, 1)
	if err != nil {
		t.Fatal(err)
	}
	worseCount := 0
	for _, r := range rows {
		if float64(r.LIFSScheds) > r.RandomRuns {
			worseCount++
			t.Logf("%s: LIFS %d vs random %.1f", r.Scenario.Name, r.LIFSScheds, r.RandomRuns)
		}
	}
	if worseCount > 2 {
		t.Errorf("LIFS beaten by random scheduling on %d/%d bugs", worseCount, len(rows))
	}
}

func TestFigure5Artifact(t *testing.T) {
	leaves, rep, err := Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) == 0 || !leaves[len(leaves)-1].Failed {
		t.Errorf("leaves = %d, last failed = %v", len(leaves), len(leaves) > 0 && leaves[len(leaves)-1].Failed)
	}
	if rep.Stats.Interleavings != 1 {
		t.Errorf("interleavings = %d", rep.Stats.Interleavings)
	}
}

package prior

import (
	"encoding/json"
	"errors"
	"fmt"

	"aitia/internal/durable"
)

// CheckpointKey is the key the prior persists under in a durable
// checkpoint store (one prior per store).
const CheckpointKey = "prior.flips"

// checkpointVersion is the durable envelope version; formatVersion is
// the payload layout version. Bump the latter when snapshot fields
// change incompatibly — loads of other versions degrade to fresh.
const (
	checkpointVersion = 1
	formatVersion     = 1
	formatMagic       = "aitia-prior"
)

// Machine-readable load outcomes (Store.LoadReason): why an analysis
// runs with a warm prior, or degrades to a fresh empty one — and
// therefore to exact fixed-order analysis.
const (
	ReasonLoaded  = "prior_loaded"
	ReasonAbsent  = "prior_absent"
	ReasonInvalid = "prior_invalid"
)

// snapshot is the serialized store.
type snapshot struct {
	Magic        string                `json:"magic"`
	Version      int                   `json:"version"`
	Observations uint64                `json:"observations"`
	Pairs        map[string]*PairStats `json:"pairs"`
	Kills        map[string]*KillStats `json:"kills,omitempty"`
}

// Encode serializes the store. The encoding is deterministic: the same
// statistics produce the same bytes regardless of observation order
// (JSON object keys are sorted).
func (s *Store) Encode() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, err := json.Marshal(snapshot{
		Magic:        formatMagic,
		Version:      formatVersion,
		Observations: s.observations,
		Pairs:        s.pairs,
		Kills:        s.kills,
	})
	if err != nil {
		// A map[string]*PairStats cannot fail to marshal.
		panic(err)
	}
	return data
}

// Decode parses an encoded prior into a fresh store under cfg. Any
// malformed input — bad JSON, wrong magic or version, inconsistent
// counts — returns an error; callers degrade to an empty store.
func Decode(data []byte, cfg Config) (*Store, error) {
	var sn snapshot
	if err := json.Unmarshal(data, &sn); err != nil {
		return nil, fmt.Errorf("prior: decode: %w", err)
	}
	if sn.Magic != formatMagic {
		return nil, fmt.Errorf("prior: decode: bad magic %q", sn.Magic)
	}
	if sn.Version != formatVersion {
		return nil, fmt.Errorf("prior: decode: version %d, want %d", sn.Version, formatVersion)
	}
	st := NewStore(cfg)
	var total uint64
	for sig, ps := range sn.Pairs {
		if sig == "" || ps == nil {
			return nil, errors.New("prior: decode: empty signature or stats")
		}
		cp := *ps
		st.pairs[sig] = &cp
		total += cp.total()
	}
	if total != sn.Observations {
		return nil, fmt.Errorf("prior: decode: %d observations recorded, %d counted", sn.Observations, total)
	}
	for key, ks := range sn.Kills {
		if key == "" || ks == nil {
			return nil, errors.New("prior: decode: empty kill key or stats")
		}
		if ks.total() == 0 {
			return nil, fmt.Errorf("prior: decode: kill pair %q with no observations", key)
		}
		cp := *ks
		st.kills[key] = &cp
	}
	st.observations = total
	return st, nil
}

// LoadFrom loads the persisted prior from the durable store under cfg.
// An absent or corrupt snapshot degrades to a fresh empty store — which
// ranks everything equally and skips nothing, i.e. exact fixed-order
// analysis — with the machine-readable reason returned and recorded on
// the store (Store.LoadReason).
func LoadFrom(store *durable.CheckpointStore, cfg Config) (*Store, string) {
	fresh := func(reason string) (*Store, string) {
		st := NewStore(cfg)
		st.loadReason = reason
		return st, reason
	}
	payload, err := store.Load(CheckpointKey, checkpointVersion)
	switch {
	case errors.Is(err, durable.ErrNoCheckpoint):
		return fresh(ReasonAbsent)
	case err != nil:
		return fresh(fmt.Sprintf("%s: %v", ReasonInvalid, err))
	}
	st, err := Decode(payload, cfg)
	if err != nil {
		return fresh(fmt.Sprintf("%s: %v", ReasonInvalid, err))
	}
	st.loadReason = ReasonLoaded
	return st, ReasonLoaded
}

// SaveTo persists the store into the durable layer (atomic write; see
// durable.CheckpointStore).
func (s *Store) SaveTo(store *durable.CheckpointStore) error {
	return store.Save(CheckpointKey, checkpointVersion, s.Encode())
}

package prior

import (
	"bytes"
	"testing"

	"aitia/internal/core"
)

// FuzzDecode hammers the persisted-prior parser: arbitrary input must
// either decode into a store that re-encodes to an accepted snapshot, or
// fail cleanly — never panic, and never produce a store whose statistics
// disagree with its own encoding (the invariant the durable layer relies
// on after a crash).
func FuzzDecode(f *testing.F) {
	st := NewStore(Config{})
	st.Observe("load@fn[g]:r=>store@fn[g]:w", core.VerdictRootCause)
	st.Observe("load@fn[g]:r=>store@fn[g]:w", core.VerdictBenign)
	st.Observe("load@fn2[heap+1]:r=>free@fn3[heap+0]:rw|cs", core.VerdictAmbiguous)
	st.mu.Lock()
	st.kills["a->b"] = &KillStats{Killed: 3}
	st.kills["b->a"] = &KillStats{Killed: 1, Survived: 2}
	st.mu.Unlock()
	f.Add(st.Encode())
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"magic":"aitia-prior","version":1,"observations":0,"pairs":{}}`))
	f.Add([]byte(`{"magic":"aitia-prior","version":1,"observations":2,"pairs":{"x":{"benign":1},"y":{"root_cause":1}}}`))
	f.Add([]byte("garbage"))
	f.Add([]byte(`{"magic":"aitia-prior","version":1,"observations":1,"pairs":{"":{"benign":1}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Decode(data, Config{})
		if err != nil {
			return
		}
		enc := st.Encode()
		st2, err := Decode(enc, Config{})
		if err != nil {
			t.Fatalf("re-decode of accepted snapshot failed: %v\nsnapshot: %s", err, enc)
		}
		if !bytes.Equal(st2.Encode(), enc) {
			t.Fatalf("encode not a fixed point:\n first %s\nsecond %s", enc, st2.Encode())
		}
		if st2.Observations() != st.Observations() || st2.Pairs() != st.Pairs() || st2.KillPairs() != st.KillPairs() {
			t.Fatalf("round trip changed statistics")
		}
	})
}

// Package prior learns race priors from settled causality analyses and
// feeds them back as a flip-test ordering: per-race-pair verdict
// statistics, keyed by a stable cross-program pair signature, rank the
// flips of the next diagnosis by expected root-cause probability and
// settle the flips the corpus has unanimously proven benign without
// executing them. Ranking changes the work, never the answer — the
// causality chain of a ranked analysis is byte-identical to fixed-order
// analysis (see core.AnalysisOptions.Ranker for the invariant).
package prior

import (
	"fmt"
	"sync"

	"aitia/internal/core"
	"aitia/internal/kir"
	"aitia/internal/sched"
)

// Signature returns the stable pair signature of a race: per side the
// opcode, the enclosing function symbol and the static access shape
// (r/w/rw), plus the pair-level relations the flip rule depends on
// (phantom pair, shared critical section). Raw instruction IDs, step
// numbers, thread names and addresses are deliberately excluded, so
// priors learned on one program transfer to any program with the same
// code structure.
func Signature(prog *kir.Program, r sched.Race) string {
	sig := side(prog, r.First) + "=>" + side(prog, r.Second)
	if r.Phantom {
		sig += "|ph"
	}
	if r.CSLock != 0 {
		sig += "|cs"
	}
	return sig
}

func side(prog *kir.Program, s sched.Site) string {
	in, ok := prog.Instr(s.Instr)
	if !ok {
		return "?"
	}
	return in.Op.String() + "@" + in.Fn + symbol(in.A) + ":" + shape(in.Op)
}

// symbol names the accessed datum of a memory op's address operand: the
// global symbol (with its word offset), or the word offset into a heap
// object for register-indirect accesses — the structural "field", with
// the codegen-dependent base register left out. Two races on different
// variables inside one function must not share statistics.
func symbol(o kir.Operand) string {
	switch o.Kind {
	case kir.KindGlobal:
		if o.Off != 0 {
			return fmt.Sprintf("[%s+%d]", o.Sym, o.Off)
		}
		return "[" + o.Sym + "]"
	case kir.KindInd:
		return fmt.Sprintf("[heap+%d]", o.Off)
	}
	return ""
}

func shape(op kir.Op) string {
	switch {
	case op.ReadsMemory() && op.WritesMemory():
		return "rw"
	case op.WritesMemory():
		return "w"
	case op.ReadsMemory():
		return "r"
	}
	return "-"
}

// Config tunes the prior.
type Config struct {
	// MinSupport is how many settled benign verdicts a signature needs —
	// with zero root-cause or ambiguous verdicts ever recorded — before
	// the prior settles its flips without executing them. Zero means the
	// default (1: one full corpus pass warms the prior). Raise it to
	// demand more evidence before skipping.
	MinSupport int
}

func (c Config) minSupport() uint64 {
	if c.MinSupport <= 0 {
		return 1
	}
	return uint64(c.MinSupport)
}

// PairStats are one signature's settled verdict counts. Unknown verdicts
// are never recorded: an exhausted flip test says nothing about the race.
type PairStats struct {
	Benign    uint64 `json:"benign,omitempty"`
	RootCause uint64 `json:"root_cause,omitempty"`
	Ambiguous uint64 `json:"ambiguous,omitempty"`
}

func (p PairStats) total() uint64 { return p.Benign + p.RootCause + p.Ambiguous }

// KillStats count, for an ordered signature pair "A->B", whether flipping
// a race with signature A made a race with signature B disappear from the
// flip run — the chain builder's kill relation, aggregated like verdicts.
// Unanimous kill rows are what let the prior settle a chain member
// without executing its flip: the row stands in for the flip run.
type KillStats struct {
	Killed   uint64 `json:"killed,omitempty"`
	Survived uint64 `json:"survived,omitempty"`
}

func (k KillStats) total() uint64 { return k.Killed + k.Survived }

func killKey(sigA, sigB string) string { return sigA + "->" + sigB }

// score is the expected root-cause probability under a Laplace-smoothed
// Bernoulli model; an unseen signature scores 0.5 (no information).
func (p PairStats) score() float64 {
	return (float64(p.RootCause+p.Ambiguous) + 1) / (float64(p.total()) + 2)
}

// Store aggregates settled flip verdicts into per-signature statistics
// and ranks candidate flips from them. It is safe for concurrent use,
// and aggregation is order-independent: any interleaving of the same
// observations yields the same statistics (counts commute), so
// concurrent jobs feeding one store stay deterministic.
type Store struct {
	cfg Config

	mu           sync.RWMutex
	pairs        map[string]*PairStats
	kills        map[string]*KillStats
	observations uint64
	loadReason   string
}

// NewStore returns an empty store. Empty is the degraded mode: RankFlips
// scores every race equally and skips nothing, which reproduces exact
// fixed-order analysis.
func NewStore(cfg Config) *Store {
	return &Store{
		cfg:   cfg,
		pairs: make(map[string]*PairStats),
		kills: make(map[string]*KillStats),
	}
}

// Observe records one settled flip verdict for a signature. Unknown
// verdicts are ignored.
func (s *Store) Observe(sig string, v core.Verdict) {
	if sig == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observe(sig, v)
}

func (s *Store) observe(sig string, v core.Verdict) {
	st := s.pairs[sig]
	if st == nil {
		st = &PairStats{}
		s.pairs[sig] = st
	}
	switch v {
	case core.VerdictBenign:
		st.Benign++
	case core.VerdictRootCause:
		st.RootCause++
	case core.VerdictAmbiguous:
		st.Ambiguous++
	default:
		return
	}
	s.observations++
}

// ObserveDiagnosis folds a completed analysis into the store: every
// executed flip's final (post-ambiguity) verdict, and for every executed
// chain member, its kill relation against each other tested race (did
// the flip make that pair disappear?). Prior-skipped races are excluded
// — their verdict came from this store, and feeding it back would let
// the prior reinforce itself without evidence.
func (s *Store) ObserveDiagnosis(prog *kir.Program, d *core.Diagnosis) {
	if d == nil {
		return
	}
	sigs := make([]string, len(d.Tested))
	for i, tr := range d.Tested {
		sigs[i] = Signature(prog, tr.Race)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, tr := range d.Tested {
		if tr.PriorSkipped || tr.Verdict == core.VerdictUnknown {
			continue
		}
		s.observe(sigs[i], tr.Verdict)
		if tr.FlipRun == nil || (tr.Verdict != core.VerdictRootCause && tr.Verdict != core.VerdictAmbiguous) {
			continue
		}
		for j, other := range d.Tested {
			if j == i {
				continue
			}
			key := killKey(sigs[i], sigs[j])
			ks := s.kills[key]
			if ks == nil {
				ks = &KillStats{}
				s.kills[key] = ks
			}
			if sched.RaceOccurred(tr.FlipRun, other.Race) {
				ks.Survived++
			} else {
				ks.Killed++
			}
		}
	}
}

// ObserveVerdict records a verdict by its wire name ("benign",
// "root-cause", "ambiguous") — the feed used when rebuilding the store
// from journaled result summaries. Other names are ignored.
func (s *Store) ObserveVerdict(sig, verdict string) {
	switch verdict {
	case "benign":
		s.Observe(sig, core.VerdictBenign)
	case "root-cause":
		s.Observe(sig, core.VerdictRootCause)
	case "ambiguous":
		s.Observe(sig, core.VerdictAmbiguous)
	}
}

// RankFlips implements core.FlipRanker: one prior per candidate race.
// Settling is unanimous-evidence only. A race settles benign with at
// least MinSupport benign verdicts and not a single root-cause or
// ambiguous one ever recorded for its signature; it settles root-cause
// with the dual condition (no benign verdict ever) AND a complete,
// unanimous kill row against every other candidate that might enter the
// chain — the row stands in for the flip run when the chain is built,
// so a single disagreeing observation disables the skip.
func (s *Store) RankFlips(prog *kir.Program, races []sched.Race) []core.FlipPrior {
	out := make([]core.FlipPrior, len(races))
	sigs := make([]string, len(races))
	s.mu.RLock()
	defer s.mu.RUnlock()
	min := s.cfg.minSupport()
	for i, r := range races {
		sigs[i] = Signature(prog, r)
		st := s.pairs[sigs[i]]
		if st == nil {
			out[i].Score = 0.5
			continue
		}
		out[i] = core.FlipPrior{
			Score:         st.score(),
			Hit:           true,
			SettledBenign: st.RootCause == 0 && st.Ambiguous == 0 && st.Benign >= min,
		}
	}
	for i := range races {
		st := s.pairs[sigs[i]]
		if st == nil || out[i].SettledBenign {
			continue
		}
		if st.Benign != 0 || st.RootCause+st.Ambiguous < min {
			continue
		}
		kills := make([]bool, len(races))
		complete := true
		for j := range races {
			if j == i || out[j].SettledBenign {
				// A settled-benign candidate never becomes a chain
				// member, so its kill relation is never consulted.
				continue
			}
			ks := s.kills[killKey(sigs[i], sigs[j])]
			if ks == nil || ks.total() < min || (ks.Killed != 0 && ks.Survived != 0) {
				complete = false
				break
			}
			kills[j] = ks.Killed > 0
		}
		if complete {
			out[i].SettledRootCause = true
			out[i].Kills = kills
		}
	}
	return out
}

// Pairs returns the number of distinct signatures with statistics.
func (s *Store) Pairs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pairs)
}

// KillPairs returns the number of ordered signature pairs with kill
// statistics. Zero after a journal rebuild: result summaries carry
// verdicts but not flip-run footprints, so only benign skips are
// available until fresh diagnoses repopulate the kill relations.
func (s *Store) KillPairs() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.kills)
}

// Observations returns the number of verdicts folded into the store.
func (s *Store) Observations() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.observations
}

// LoadReason reports how this store came to be, machine-readably:
// ReasonLoaded, ReasonAbsent, or ReasonInvalid-prefixed detail (see
// LoadFrom). Empty for stores never loaded from a durable layer.
func (s *Store) LoadReason() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.loadReason
}

package prior

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"aitia/internal/core"
	"aitia/internal/durable"
	"aitia/internal/kir"
	"aitia/internal/sched"
)

// buildProg builds a two-thread program racing on the globals "flag" and
// "other", with pad extra single-instruction functions emitted FIRST so
// that every instruction ID shifts between otherwise-identical programs
// — the cross-program transfer case the signature must survive.
func buildProg(t *testing.T, pad int) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	b.Var("flag", 0)
	b.Var("other", 0)
	for i := 0; i < pad; i++ {
		f := b.Func("pad" + string(rune('a'+i)))
		f.Store(kir.G("other"), kir.Imm(7))
		f.Ret()
	}
	w := b.Func("writer")
	w.Store(kir.G("flag"), kir.Imm(1)).L("W")
	w.Store(kir.G("other"), kir.Imm(1)).L("W2")
	w.Ret()
	r := b.Func("reader")
	r.Load(kir.R1, kir.G("flag")).L("R")
	r.Load(kir.R2, kir.G("other")).L("R2")
	r.Ret()
	b.Thread("A", "writer")
	b.Thread("B", "reader")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func raceOf(t *testing.T, prog *kir.Program, first, second string) sched.Race {
	t.Helper()
	f, ok := prog.ByLabel(first)
	if !ok {
		t.Fatalf("no instruction labeled %q", first)
	}
	s, ok := prog.ByLabel(second)
	if !ok {
		t.Fatalf("no instruction labeled %q", second)
	}
	return sched.Race{
		First:  sched.Site{Thread: "A", Instr: f.ID},
		Second: sched.Site{Thread: "B", Instr: s.ID},
	}
}

// TestSignatureCrossProgramStability: the signature must be identical
// across programs with the same code structure but different instruction
// IDs, thread schedules and padding — and must differ between races on
// different variables in the same functions.
func TestSignatureCrossProgramStability(t *testing.T) {
	p1 := buildProg(t, 0)
	p2 := buildProg(t, 3)

	s1 := Signature(p1, raceOf(t, p1, "W", "R"))
	s2 := Signature(p2, raceOf(t, p2, "W", "R"))
	if s1 != s2 {
		t.Errorf("signature not stable across programs:\n  p1: %s\n  p2: %s", s1, s2)
	}
	if o := Signature(p1, raceOf(t, p1, "W2", "R2")); o == s1 {
		t.Errorf("races on different variables share signature %s", s1)
	}

	// Pair-level relations must be part of the identity.
	r := raceOf(t, p1, "W", "R")
	r.Phantom = true
	if ph := Signature(p1, r); ph == s1 || !strings.HasSuffix(ph, "|ph") {
		t.Errorf("phantom marker missing: %s", ph)
	}
	r.Phantom = false
	r.CSLock = 42
	if cs := Signature(p1, r); cs == s1 || !strings.HasSuffix(cs, "|cs") {
		t.Errorf("critical-section marker missing: %s", cs)
	}

	// Dynamic identity must NOT leak into the signature: same static
	// pair at different steps, addresses, or thread IDs is one signature.
	r2 := raceOf(t, p1, "W", "R")
	r2.FirstStep, r2.SecondStep, r2.Addr = 17, 23, 0xdead
	if Signature(p1, r2) != s1 {
		t.Errorf("dynamic fields leaked into the signature: %s != %s", Signature(p1, r2), s1)
	}
}

// TestAggregationDeterminism: any interleaving of the same observations
// — shuffled serial orders and a concurrent feed — must produce
// byte-identical encodings.
func TestAggregationDeterminism(t *testing.T) {
	prog := buildProg(t, 0)
	type obs struct {
		sig string
		v   core.Verdict
	}
	var feed []obs
	sigWR := Signature(prog, raceOf(t, prog, "W", "R"))
	sigW2 := Signature(prog, raceOf(t, prog, "W2", "R2"))
	for i := 0; i < 50; i++ {
		feed = append(feed, obs{sigWR, core.VerdictRootCause})
		feed = append(feed, obs{sigW2, core.VerdictBenign})
		if i%5 == 0 {
			feed = append(feed, obs{sigWR, core.VerdictAmbiguous})
		}
	}

	reference := NewStore(Config{})
	for _, o := range feed {
		reference.Observe(o.sig, o.v)
	}
	want := reference.Encode()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		shuffled := append([]obs(nil), feed...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		st := NewStore(Config{})
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(shuffled); i += 4 {
					st.Observe(shuffled[i].sig, shuffled[i].v)
				}
			}(w)
		}
		wg.Wait()
		if got := st.Encode(); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: concurrent shuffled feed diverged:\n got %s\nwant %s", trial, got, want)
		}
	}
}

// TestEncodeDecodeRoundTrip: a store with verdict and kill statistics
// survives Encode/Decode bit-exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	prog := buildProg(t, 0)
	st := NewStore(Config{MinSupport: 2})
	st.Observe(Signature(prog, raceOf(t, prog, "W", "R")), core.VerdictRootCause)
	st.Observe(Signature(prog, raceOf(t, prog, "W2", "R2")), core.VerdictBenign)

	// A diagnosis whose executed chain member has an empty flip run:
	// every other pair disappears, populating the kill relation.
	d := &core.Diagnosis{Tested: []core.TestedRace{
		{Race: raceOf(t, prog, "W", "R"), Verdict: core.VerdictRootCause, FlipRun: &sched.RunResult{}},
		{Race: raceOf(t, prog, "W2", "R2"), Verdict: core.VerdictBenign, FlipRun: &sched.RunResult{}},
	}}
	st.ObserveDiagnosis(prog, d)
	if st.KillPairs() == 0 {
		t.Fatal("ObserveDiagnosis recorded no kill relations")
	}

	enc := st.Encode()
	st2, err := Decode(enc, Config{MinSupport: 2})
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !bytes.Equal(st2.Encode(), enc) {
		t.Errorf("round trip diverged:\n got %s\nwant %s", st2.Encode(), enc)
	}
	if st2.Observations() != st.Observations() || st2.Pairs() != st.Pairs() || st2.KillPairs() != st.KillPairs() {
		t.Errorf("round trip lost statistics: %d/%d/%d, want %d/%d/%d",
			st2.Observations(), st2.Pairs(), st2.KillPairs(),
			st.Observations(), st.Pairs(), st.KillPairs())
	}
}

// TestSelfReinforcementExcluded: prior-skipped and unknown verdicts must
// not be folded back into the store.
func TestSelfReinforcementExcluded(t *testing.T) {
	prog := buildProg(t, 0)
	st := NewStore(Config{})
	d := &core.Diagnosis{Tested: []core.TestedRace{
		{Race: raceOf(t, prog, "W", "R"), Verdict: core.VerdictBenign, PriorSkipped: true},
		{Race: raceOf(t, prog, "W2", "R2"), Verdict: core.VerdictUnknown},
	}}
	st.ObserveDiagnosis(prog, d)
	if st.Observations() != 0 || st.Pairs() != 0 {
		t.Errorf("skipped/unknown verdicts were recorded: %d observations, %d pairs",
			st.Observations(), st.Pairs())
	}
}

// TestRankFlipsSettlement: benign settlement needs MinSupport unanimous
// benign verdicts; root-cause settlement additionally needs a complete
// unanimous kill row; a single disagreeing observation disables both.
func TestRankFlipsSettlement(t *testing.T) {
	prog := buildProg(t, 0)
	races := []sched.Race{raceOf(t, prog, "W", "R"), raceOf(t, prog, "W2", "R2")}
	sig0, sig1 := Signature(prog, races[0]), Signature(prog, races[1])

	// Empty store: no hits, neutral scores, nothing settled.
	empty := NewStore(Config{})
	for i, p := range empty.RankFlips(prog, races) {
		if p.Hit || p.SettledBenign || p.SettledRootCause || p.Score != 0.5 {
			t.Errorf("empty store prior %d = %+v, want neutral", i, p)
		}
	}

	// Unanimous benign at MinSupport settles; one root-cause breaks it.
	st := NewStore(Config{MinSupport: 2})
	st.Observe(sig1, core.VerdictBenign)
	if p := st.RankFlips(prog, races)[1]; p.SettledBenign {
		t.Error("settled benign below MinSupport")
	}
	st.Observe(sig1, core.VerdictBenign)
	if p := st.RankFlips(prog, races)[1]; !p.SettledBenign {
		t.Error("unanimous benign at MinSupport not settled")
	}
	st.Observe(sig1, core.VerdictRootCause)
	if p := st.RankFlips(prog, races)[1]; p.SettledBenign {
		t.Error("conflicting verdict did not disable the benign skip")
	}

	// Root-cause settlement: unanimous verdicts alone are not enough —
	// the kill row against every unsettled candidate must be complete.
	st2 := NewStore(Config{})
	st2.Observe(sig0, core.VerdictRootCause)
	if p := st2.RankFlips(prog, races)[0]; p.SettledRootCause {
		t.Error("settled root-cause without a kill row")
	}
	d := &core.Diagnosis{Tested: []core.TestedRace{
		{Race: races[0], Verdict: core.VerdictRootCause, FlipRun: &sched.RunResult{}},
		{Race: races[1], Verdict: core.VerdictRootCause, FlipRun: &sched.RunResult{}},
	}}
	st2.ObserveDiagnosis(prog, d)
	got := st2.RankFlips(prog, races)
	for i, p := range got {
		if !p.SettledRootCause {
			t.Fatalf("prior %d not settled root-cause with a complete kill row: %+v", i, p)
		}
		for j, k := range p.Kills {
			if j != i && !k {
				t.Errorf("prior %d kill row: candidate %d not killed", i, j)
			}
		}
	}
}

// TestLoadDegradesToFixedOrder: an absent or corrupt persisted prior
// must degrade to an empty store — exact fixed-order analysis — with a
// machine-readable reason.
func TestLoadDegradesToFixedOrder(t *testing.T) {
	dir := t.TempDir()
	cs, err := durable.OpenCheckpointStore(dir, false)
	if err != nil {
		t.Fatalf("open checkpoint store: %v", err)
	}

	st, reason := LoadFrom(cs, Config{})
	if reason != ReasonAbsent || st.Pairs() != 0 {
		t.Errorf("absent prior: reason %q, %d pairs; want %q, 0", reason, st.Pairs(), ReasonAbsent)
	}
	if st.LoadReason() != ReasonAbsent {
		t.Errorf("LoadReason = %q, want %q", st.LoadReason(), ReasonAbsent)
	}

	corruptions := map[string][]byte{
		"garbage":      []byte("not json at all"),
		"wrong magic":  []byte(`{"magic":"evil","version":1,"pairs":{}}`),
		"wrong count":  []byte(`{"magic":"aitia-prior","version":1,"observations":9,"pairs":{"x":{"benign":1}}}`),
		"empty sig":    []byte(`{"magic":"aitia-prior","version":1,"observations":1,"pairs":{"":{"benign":1}}}`),
		"empty kills":  []byte(`{"magic":"aitia-prior","version":1,"observations":1,"pairs":{"x":{"benign":1}},"kills":{"x->y":{}}}`),
		"bad version":  []byte(`{"magic":"aitia-prior","version":99,"pairs":{}}`),
		"null killrow": []byte(`{"magic":"aitia-prior","version":1,"observations":1,"pairs":{"x":{"benign":1}},"kills":{"x->y":null}}`),
	}
	for name, payload := range corruptions {
		if err := cs.Save(CheckpointKey, checkpointVersion, payload); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		st, reason := LoadFrom(cs, Config{})
		if !strings.HasPrefix(reason, ReasonInvalid) {
			t.Errorf("%s: reason %q, want %q prefix", name, reason, ReasonInvalid)
		}
		if st.Pairs() != 0 || st.Observations() != 0 {
			t.Errorf("%s: corrupt prior did not degrade to empty: %d pairs", name, st.Pairs())
		}
		prog := buildProg(t, 0)
		races := []sched.Race{raceOf(t, prog, "W", "R")}
		for _, p := range st.RankFlips(prog, races) {
			if p.SettledBenign || p.SettledRootCause || p.Hit {
				t.Errorf("%s: degraded store still settles flips: %+v", name, p)
			}
		}
	}

	// And a valid snapshot loads.
	good := NewStore(Config{})
	good.Observe("sig", core.VerdictBenign)
	if err := good.SaveTo(cs); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	st, reason = LoadFrom(cs, Config{})
	if reason != ReasonLoaded || st.Pairs() != 1 || st.Observations() != 1 {
		t.Errorf("valid prior: reason %q, %d pairs, %d observations; want loaded/1/1",
			reason, st.Pairs(), st.Observations())
	}
}

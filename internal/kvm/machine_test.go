package kvm

import (
	"testing"
	"testing/quick"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// run steps one thread to completion (or failure, or a lock it cannot
// acquire).
func run(t *testing.T, m *Machine, tid ThreadID) {
	t.Helper()
	for i := 0; i < 10000; i++ {
		th := m.Thread(tid)
		if th == nil || th.State == Done || th.State == Crashed {
			return
		}
		ev, err := m.Step(tid)
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if !ev.Executed || m.Failure() != nil {
			return
		}
	}
	t.Fatal("thread did not finish")
}

func simpleProg(t *testing.T, body func(*kir.FuncBuilder)) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	b.Var("g", 0)
	b.Var("mu", 0)
	f := b.Func("main")
	body(f)
	b.Thread("T", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func TestArithmeticAndControlFlow(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Mov(kir.R1, kir.Imm(10))
		f.Add(kir.R1, kir.Imm(5))
		f.Sub(kir.R1, kir.Imm(3)) // 12
		f.Mov(kir.R2, kir.R(kir.R1))
		f.And(kir.R2, kir.Imm(8)) // 8
		f.Or(kir.R2, kir.Imm(1))  // 9
		f.Xor(kir.R2, kir.Imm(1)) // 8
		f.Blt(kir.R(kir.R2), kir.Imm(9), "small")
		f.Store(kir.G("g"), kir.Imm(-1))
		f.Ret()
		f.At("small")
		f.Store(kir.G("g"), kir.R(kir.R2))
		f.Ret()
	})
	m, _ := New(prog)
	run(t, m, 0)
	if !m.AllDone() {
		t.Fatal("not done")
	}
	addr, _ := m.Space().GlobalAddr("g")
	if v, _ := m.Space().Load(addr); v != 8 {
		t.Errorf("g = %d, want 8", v)
	}
}

func TestCallRetAndImplicitReturn(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.Call("leaf")
	f.Store(kir.G("g"), kir.Imm(2))
	// no explicit ret: falling off the end is an implicit return
	l := b.Func("leaf")
	l.Store(kir.G("g"), kir.Imm(1))
	l.Ret()
	b.Thread("T", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(prog)
	run(t, m, 0)
	if !m.AllDone() {
		t.Fatal("not done")
	}
	addr, _ := m.Space().GlobalAddr("g")
	if v, _ := m.Space().Load(addr); v != 2 {
		t.Errorf("g = %d, want 2", v)
	}
}

func TestLockBlockingAndHandoff(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("mu", 0)
	b.Var("g", 0)
	f := b.Func("worker")
	f.Lock(kir.G("mu"))
	f.Load(kir.R1, kir.G("g"))
	f.Add(kir.R1, kir.Imm(1))
	f.Store(kir.G("g"), kir.R(kir.R1))
	f.Unlock(kir.G("mu"))
	f.Ret()
	b.Thread("A", "worker")
	b.Thread("B", "worker")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(prog)

	// A acquires the lock.
	if _, err := m.Step(0); err != nil {
		t.Fatal(err)
	}
	if owner, held := m.LockOwner(mustAddr(t, m, "mu")); !held || owner != 0 {
		t.Fatalf("owner = %v, %v", owner, held)
	}
	// B blocks on it.
	ev, err := m.Step(1)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Executed {
		t.Fatal("B should have blocked")
	}
	if m.Thread(1).State != Blocked {
		t.Fatalf("B state = %v", m.Thread(1).State)
	}
	// Runnable excludes B while the lock is held.
	for _, tid := range m.Runnable() {
		if tid == 1 {
			t.Error("blocked thread is runnable")
		}
	}
	// A finishes and releases; B becomes runnable and completes.
	run(t, m, 0)
	found := false
	for _, tid := range m.Runnable() {
		if tid == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("B should be runnable after unlock")
	}
	run(t, m, 1)
	if !m.AllDone() {
		t.Fatal("not all done")
	}
	if v, _ := m.Space().Load(mustAddr(t, m, "g")); v != 2 {
		t.Errorf("g = %d, want 2", v)
	}
}

func TestRecursiveLockIsDeadlock(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Lock(kir.G("mu"))
		f.Lock(kir.G("mu"))
		f.Ret()
	})
	m, _ := New(prog)
	run(t, m, 0)
	if f := m.Failure(); f == nil || f.Kind != sanitizer.KindDeadlock {
		t.Errorf("failure = %v", f)
	}
}

func TestBadUnlock(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Unlock(kir.G("mu"))
		f.Ret()
	})
	m, _ := New(prog)
	run(t, m, 0)
	if f := m.Failure(); f == nil || f.Kind != sanitizer.KindBadUnlock {
		t.Errorf("failure = %v", f)
	}
}

func TestSpawnNamesAreStable(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.QueueWork("work", kir.Imm(1)).L("S1")
	f.QueueWork("work", kir.Imm(2)).L("S2")
	f.QueueWork("work", kir.Imm(3)).L("S1again") // same op, different site
	f.Ret()
	w := b.Func("work")
	w.Store(kir.G("g"), kir.R(kir.R0))
	w.Ret()
	b.Thread("T", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(prog)
	run(t, m, 0)
	if m.NumThreads() != 4 {
		t.Fatalf("threads = %d", m.NumThreads())
	}
	names := []string{m.Thread(1).Name, m.Thread(2).Name, m.Thread(3).Name}
	want := []string{"kworker:S1", "kworker:S2", "kworker:S1again"}
	for i := range names {
		if names[i] != want[i] {
			t.Errorf("thread %d = %q, want %q", i+1, names[i], want[i])
		}
	}
	// The spawned thread got its argument in r0.
	if m.Thread(1).Regs[0] != 1 || m.Thread(3).Regs[0] != 3 {
		t.Error("spawn arguments not delivered")
	}
}

func TestRefcountSemantics(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("cnt", 1)
	f := b.Func("main")
	f.RefGet(kir.R1, kir.G("cnt")) // 2
	f.RefPut(kir.R1, kir.G("cnt")) // 1
	f.RefPut(kir.R1, kir.G("cnt")) // 0 (ok)
	f.RefPut(kir.R1, kir.G("cnt")) // underflow
	f.Ret()
	b.Thread("T", "main")
	prog, _ := b.Build()
	m, _ := New(prog)
	run(t, m, 0)
	if f := m.Failure(); f == nil || f.Kind != sanitizer.KindRefcount {
		t.Errorf("failure = %v", f)
	}

	// Increment from zero is also a refcount bug.
	b2 := kir.NewBuilder()
	b2.Var("cnt", 0)
	f2 := b2.Func("main")
	f2.RefGet(kir.R1, kir.G("cnt"))
	f2.Ret()
	b2.Thread("T", "main")
	prog2, _ := b2.Build()
	m2, _ := New(prog2)
	run(t, m2, 0)
	if f := m2.Failure(); f == nil || f.Kind != sanitizer.KindRefcount {
		t.Errorf("inc-from-zero failure = %v", f)
	}
}

func TestListAddDuplicateIsCorruption(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.ListAdd(kir.G("g"), kir.Imm(7))
		f.ListAdd(kir.G("g"), kir.Imm(7))
		f.Ret()
	})
	m, _ := New(prog)
	run(t, m, 0)
	if f := m.Failure(); f == nil || f.Kind != sanitizer.KindBugOn {
		t.Errorf("failure = %v", f)
	}
}

func TestKfreeNullIsNoop(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Mov(kir.R1, kir.Imm(0))
		f.Free(kir.R(kir.R1))
		f.Ret()
	})
	m, _ := New(prog)
	run(t, m, 0)
	if f := m.Failure(); f != nil {
		t.Errorf("kfree(NULL) failed: %v", f)
	}
}

func TestPeekAccessesMatchesStep(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.Alloc(kir.R1, 2)
	f.Store(kir.Ind(kir.R1, 1), kir.Imm(5))
	f.Load(kir.R2, kir.G("g"))
	f.Free(kir.R(kir.R1))
	f.Ret()
	b.Thread("T", "main")
	prog, _ := b.Build()
	m, _ := New(prog)
	for i := 0; i < 100; i++ {
		th := m.Thread(0)
		if th.State != Runnable {
			break
		}
		peek := m.PeekAccesses(0)
		ev, err := m.Step(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(peek) != len(ev.Accesses) {
			t.Fatalf("peek %v != actual %v at %s", peek, ev.Accesses, ev.Instr)
		}
		for j := range peek {
			if peek[j] != ev.Accesses[j] {
				t.Errorf("peek[%d] = %v, actual %v", j, peek[j], ev.Accesses[j])
			}
		}
	}
}

func TestSnapshotRestoreDeterminism(t *testing.T) {
	sc := figureProgram(t)
	f := func(stepsBefore uint8) bool {
		m, err := New(sc)
		if err != nil {
			return false
		}
		// Interleave deterministically for a few steps.
		order := []ThreadID{0, 1, 0, 0, 1, 1, 0, 1}
		n := int(stepsBefore) % len(order)
		for _, tid := range order[:n] {
			if th := m.Thread(tid); th != nil && th.State == Runnable && m.Failure() == nil {
				m.Step(tid)
			}
		}
		snap := m.Snapshot()
		sig := m.StateSignature()
		// Perturb.
		for _, tid := range order {
			if th := m.Thread(tid); th != nil && th.State == Runnable && m.Failure() == nil {
				m.Step(tid)
			}
		}
		m.Restore(snap)
		return m.StateSignature() == sig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

// figureProgram builds a small two-thread racy program for property tests.
func figureProgram(t testing.TB) *kir.Program {
	b := kir.NewBuilder()
	b.Var("x", 0)
	b.Var("y", 0)
	fa := b.Func("fa")
	fa.Store(kir.G("x"), kir.Imm(1))
	fa.Load(kir.R1, kir.G("y"))
	fa.Ret()
	fb := b.Func("fb")
	fb.Store(kir.G("y"), kir.Imm(1))
	fb.Load(kir.R1, kir.G("x"))
	fb.Ret()
	b.Thread("A", "fa")
	b.Thread("B", "fb")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestStateSignatureDistinguishesStates(t *testing.T) {
	prog := figureProgram(t)
	m1, _ := New(prog)
	m2, _ := New(prog)
	if m1.StateSignature() != m2.StateSignature() {
		t.Fatal("fresh machines differ")
	}
	m1.Step(0)
	if m1.StateSignature() == m2.StateSignature() {
		t.Fatal("a step did not change the signature")
	}
	m2.Step(0)
	if m1.StateSignature() != m2.StateSignature() {
		t.Fatal("same steps, different signatures")
	}
}

func mustAddr(t *testing.T, m *Machine, sym string) uint64 {
	t.Helper()
	a, ok := m.Space().GlobalAddr(sym)
	if !ok {
		t.Fatalf("no global %q", sym)
	}
	return a
}

package kvm

import (
	"testing"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
)

func TestMachineTryRestoreFaulted(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Store(kir.G("g"), kir.Imm(1))
		f.Ret()
	})
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	sn := m.Snapshot()
	run(t, m, 0)

	m.SetFaultPlan(faultinject.NewPlan(7, 0).SetRate(faultinject.KindSnapshotRestore, 1))
	if err := m.TryRestore(sn, "test.restore", 3, 0); !faultinject.Is(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// Faulted: thread still Done, nothing rewound.
	if m.Thread(0).State != Done {
		t.Fatal("faulted restore mutated the machine")
	}

	m.SetFaultPlan(nil)
	if err := m.TryRestore(sn, "test.restore", 3, 1); err != nil {
		t.Fatal(err)
	}
	if m.Thread(0).State == Done {
		t.Fatal("restore did not rewind the thread")
	}
}

func TestResetKeepsFaultPlan(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) { f.Ret() })
	m, err := New(prog)
	if err != nil {
		t.Fatal(err)
	}
	plan := faultinject.NewPlan(1, 0.5)
	m.SetFaultPlan(plan)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.FaultPlan() != plan {
		t.Fatal("Reset dropped the fault plan")
	}
}

package kvm

import "aitia/internal/faultinject"

// SetFaultPlan arms deterministic fault injection on the machine and its
// memory space. A nil plan (the default) disables it; TryRestore then
// always restores.
func (m *Machine) SetFaultPlan(p *faultinject.Plan) {
	m.fault = p
	m.space.SetFaultPlan(p)
}

// FaultPlan returns the armed plan (nil when faults are off).
func (m *Machine) FaultPlan() *faultinject.Plan { return m.fault }

// TryRestore is Restore behind the machine's fault plan. The plan is
// consulted before any mutation, so a faulted restore leaves the machine
// and the snapshot untouched — a retry of the same operation (attempt+1)
// resumes from exactly the state the failed one saw.
func (m *Machine) TryRestore(sn *Snapshot, op string, key uint64, attempt int) error {
	if err := m.fault.Check(faultinject.KindSnapshotRestore, op, key, attempt); err != nil {
		return err
	}
	m.Restore(sn)
	return nil
}

// Package kvm implements the simulated kernel virtual machine: threads
// (system calls, kworkers, RCU softirq callbacks) executing kir programs
// over a mem.Space, one instruction per Step, under full control of the
// caller — the role the KVM/QEMU-based AITIA hypervisor plays for the real
// kernel.
//
// The machine is deterministic: given the same program and the same
// sequence of Step(thread) calls, it produces the same execution. It is
// sequentially consistent by construction, matching the paper's memory
// model assumption (§3.2). Snapshot/Restore provide the VM-revert
// operation used between search and diagnosis runs.
package kvm

import (
	"fmt"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/mem"
	"aitia/internal/sanitizer"
)

// ThreadID identifies a thread within one machine (its index in spawn
// order; statically declared threads come first).
type ThreadID int

// NoThread is the "no thread" sentinel.
const NoThread ThreadID = -1

// ThreadState is the scheduling state of a thread.
type ThreadState uint8

const (
	// Runnable threads can execute their next instruction.
	Runnable ThreadState = iota
	// Blocked threads are waiting on a mutex held by another thread.
	Blocked
	// Done threads have finished.
	Done
	// Crashed threads triggered the machine's failure.
	Crashed
)

// String returns the state name.
func (s ThreadState) String() string {
	switch s {
	case Runnable:
		return "runnable"
	case Blocked:
		return "blocked"
	case Done:
		return "done"
	case Crashed:
		return "crashed"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// frame is one call-stack entry.
type frame struct {
	fn *kir.Func
	pc int
}

// Thread is an execution context.
type Thread struct {
	ID        ThreadID
	Name      string
	Kind      kir.ThreadKind
	Regs      [kir.NumRegs]int64
	State     ThreadState
	WaitLock  uint64      // lock address while Blocked
	Locks     []uint64    // held locks in acquisition order
	SpawnedBy ThreadID    // NoThread for declared threads
	SpawnSite kir.InstrID // instruction that spawned it (queue_work/call_rcu)
	frames    []frame

	// savedEpoch is the snapshot epoch in which this thread was last
	// journaled; a thread is cloned into the undo journal at most once per
	// epoch (copy-on-write).
	savedEpoch uint64
}

// HoldsLock reports whether the thread currently holds the lock at addr.
func (t *Thread) HoldsLock(addr uint64) bool {
	for _, l := range t.Locks {
		if l == addr {
			return true
		}
	}
	return false
}

// clone deep-copies the thread.
func (t *Thread) clone() *Thread {
	cp := *t
	cp.Locks = append([]uint64(nil), t.Locks...)
	cp.frames = append([]frame(nil), t.frames...)
	return &cp
}

// Access is one shared-memory access performed by a step.
type Access struct {
	Addr  uint64
	Write bool
}

// StepEvent reports what one Step did.
type StepEvent struct {
	Thread   ThreadID
	Instr    kir.Instr
	Executed bool     // false when the step blocked on a lock
	Accesses []Access // shared-memory accesses performed
	Spawned  ThreadID // thread created by queue_work/call_rcu, else NoThread
	Failure  *sanitizer.Failure
	Done     bool // thread finished with this step
}

// Machine is a simulated kernel instance.
type Machine struct {
	prog      *kir.Program
	space     *mem.Space
	threads   []*Thread
	lockOwner map[uint64]ThreadID
	failure   *sanitizer.Failure
	steps     uint64
	spawnSeq  map[kir.InstrID]int
	fault     *faultinject.Plan // armed by SetFaultPlan; nil = no injection

	// Copy-on-write checkpointing state (see snapshot.go). Journaling is
	// off until the first Snapshot call.
	journal    []mundo
	mseq       uint64
	journaling bool
	epoch      uint64
	copied     uint64 // approximate bytes journaled, for metrics
	live       uint64 // approximate bytes currently held by the journal
	snapshots  uint64
	restores   uint64
	executed   uint64 // total instructions ever executed; never rewound
	gen        uint64 // bumped by Reset/RestoreDeep; stales every Snapshot
}

// New creates a machine with the program's declared threads ready to run.
func New(prog *kir.Program) (*Machine, error) {
	if !prog.Finalized() {
		return nil, fmt.Errorf("kvm: program not finalized")
	}
	space, err := mem.NewSpace(prog.Globals)
	if err != nil {
		return nil, err
	}
	m := &Machine{
		prog:      prog,
		space:     space,
		lockOwner: make(map[uint64]ThreadID),
		spawnSeq:  make(map[kir.InstrID]int),
	}
	for _, td := range prog.Threads {
		t := &Thread{
			ID:        ThreadID(len(m.threads)),
			Name:      td.Name,
			Kind:      td.Kind,
			State:     Runnable,
			SpawnedBy: NoThread,
			SpawnSite: kir.NoInstr,
			frames:    []frame{{fn: m.prog.Funcs[td.Entry]}},
		}
		t.Regs[0] = td.Arg
		m.threads = append(m.threads, t)
	}
	return m, nil
}

// Prog returns the program the machine executes.
func (m *Machine) Prog() *kir.Program { return m.prog }

// Space returns the machine's address space (for reports and tests).
func (m *Machine) Space() *mem.Space { return m.space }

// Steps returns the number of instructions executed so far.
func (m *Machine) Steps() uint64 { return m.steps }

// Executed returns the total number of instructions the machine has ever
// executed. Unlike Steps, it is monotonic: Restore rewinds the logical
// step counter but not this one, so it measures real execution work across
// an entire search, replays included.
func (m *Machine) Executed() uint64 { return m.executed }

// NumThreads returns the number of threads spawned so far.
func (m *Machine) NumThreads() int { return len(m.threads) }

// Thread returns the thread with the given id, or nil.
func (m *Machine) Thread(tid ThreadID) *Thread {
	if tid < 0 || int(tid) >= len(m.threads) {
		return nil
	}
	return m.threads[tid]
}

// ThreadByName returns the thread with the given name, or nil.
func (m *Machine) ThreadByName(name string) *Thread {
	for _, t := range m.threads {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Failure returns the machine's failure, or nil while it is healthy.
func (m *Machine) Failure() *sanitizer.Failure { return m.failure }

// Runnable lists the threads that could make progress right now: Runnable
// threads plus Blocked threads whose awaited lock has been released.
func (m *Machine) Runnable() []ThreadID {
	var out []ThreadID
	for _, t := range m.threads {
		switch t.State {
		case Runnable:
			out = append(out, t.ID)
		case Blocked:
			if _, held := m.lockOwner[t.WaitLock]; !held {
				out = append(out, t.ID)
			}
		}
	}
	return out
}

// AllDone reports whether every thread has finished.
func (m *Machine) AllDone() bool {
	for _, t := range m.threads {
		if t.State != Done {
			return false
		}
	}
	return len(m.threads) > 0
}

// Deadlocked reports whether the machine is healthy but cannot make
// progress: at least one unfinished thread and no runnable one.
func (m *Machine) Deadlocked() bool {
	if m.failure != nil || m.AllDone() {
		return false
	}
	return len(m.Runnable()) == 0
}

// LockOwner returns the thread currently holding the lock at addr.
func (m *Machine) LockOwner(addr uint64) (ThreadID, bool) {
	o, ok := m.lockOwner[addr]
	return o, ok
}

// Pos is one call-stack position exposed by Frames: a function name and
// the index of the next instruction to execute within it. For outer
// frames the index is the continuation after the active call.
type Pos struct {
	Fn string
	PC int
}

// Frames returns the thread's call stack, outermost first. Finished and
// crashed threads return nil. Report-guided search uses the positions to
// decide whether a thread can still reach a suspect instruction.
func (m *Machine) Frames(tid ThreadID) []Pos {
	t := m.Thread(tid)
	if t == nil || (t.State != Runnable && t.State != Blocked) {
		return nil
	}
	out := make([]Pos, len(t.frames))
	for i, fr := range t.frames {
		out[i] = Pos{Fn: fr.fn.Name, PC: fr.pc}
	}
	return out
}

// NextInstr returns the instruction the thread would execute next. ok is
// false for finished or crashed threads.
func (m *Machine) NextInstr(tid ThreadID) (kir.Instr, bool) {
	t := m.Thread(tid)
	if t == nil || (t.State != Runnable && t.State != Blocked) {
		return kir.Instr{}, false
	}
	fr := t.frames[len(t.frames)-1]
	return fr.fn.Instrs[fr.pc], true
}

// CheckLeaks runs the end-of-execution memory-leak check and records a
// failure if live heap objects remain. It should be called only when
// AllDone reports true and no failure occurred.
func (m *Machine) CheckLeaks() *sanitizer.Failure {
	if m.failure != nil {
		return m.failure
	}
	leaked := m.space.Leaked()
	if len(leaked) == 0 {
		return nil
	}
	o := leaked[0]
	m.failure = &sanitizer.Failure{
		Kind:  sanitizer.KindMemoryLeak,
		Instr: o.AllocSite,
		Addr:  o.Base,
		Msg:   fmt.Sprintf("%d object(s) never freed; first allocated at %s", len(leaked), m.prog.InstrName(o.AllocSite)),
	}
	return m.failure
}

// InjectFailure records an externally detected failure (deadlock and
// watchdog conditions are observed by the scheduler, not by any single
// instruction). It is a no-op if the machine has already failed.
func (m *Machine) InjectFailure(f *sanitizer.Failure) {
	if m.failure == nil {
		m.failure = f
	}
}

// fail records the machine failure and crashes the thread.
func (m *Machine) fail(t *Thread, in kir.Instr, kind sanitizer.Kind, addr uint64, msg string) *sanitizer.Failure {
	f := &sanitizer.Failure{Kind: kind, Thread: t.Name, Instr: in.ID, Addr: addr, Msg: msg}
	m.failure = f
	t.State = Crashed
	return f
}

// failFault records a memory-fault failure with object context.
func (m *Machine) failFault(t *Thread, in kir.Instr, fault *mem.Fault) *sanitizer.Failure {
	msg := ""
	if fault.Object != nil {
		msg = fmt.Sprintf("object %#x (size %d) allocated at %s",
			fault.Object.Base, fault.Object.Size, m.prog.InstrName(fault.Object.AllocSite))
		if fault.Object.FreeSite != kir.NoInstr {
			msg += fmt.Sprintf(", freed at %s", m.prog.InstrName(fault.Object.FreeSite))
		}
	}
	return m.fail(t, in, sanitizer.FromFault(fault), fault.Addr, msg)
}

// value evaluates a value operand against the thread's registers.
func value(t *Thread, o kir.Operand) int64 {
	switch o.Kind {
	case kir.KindImm:
		return o.Imm
	case kir.KindReg:
		return t.Regs[o.Reg]
	case kir.KindNone:
		return 0
	default:
		panic(fmt.Sprintf("kvm: operand %s is not a value", o))
	}
}

// addr resolves an address operand. Global symbols were validated at
// Finalize; indirect addresses may be anything (that is the point — wild
// and NULL pointers fault at access time).
func (m *Machine) addr(t *Thread, o kir.Operand) uint64 {
	switch o.Kind {
	case kir.KindGlobal:
		base, ok := m.space.GlobalAddr(o.Sym)
		if !ok {
			panic(fmt.Sprintf("kvm: undeclared global %q", o.Sym))
		}
		return base + uint64(o.Off)
	case kir.KindInd:
		return uint64(t.Regs[o.Reg] + o.Off)
	default:
		panic(fmt.Sprintf("kvm: operand %s is not an address", o))
	}
}

// normalize pops exhausted frames (implicit returns) and marks the thread
// Done when its stack empties.
func (t *Thread) normalize() {
	for len(t.frames) > 0 {
		fr := &t.frames[len(t.frames)-1]
		if fr.pc < len(fr.fn.Instrs) {
			return
		}
		t.frames = t.frames[:len(t.frames)-1]
	}
	t.State = Done
}

// Step executes (or re-attempts) one instruction of the given thread.
// Stepping a thread blocked on a held lock returns Executed=false without
// advancing. Stepping after a machine failure, or stepping a finished
// thread, is an error — callers drive scheduling and must consult
// Runnable/Failure first.
func (m *Machine) Step(tid ThreadID) (StepEvent, error) {
	if m.failure != nil {
		return StepEvent{}, fmt.Errorf("kvm: machine has failed: %v", m.failure)
	}
	t := m.Thread(tid)
	if t == nil {
		return StepEvent{}, fmt.Errorf("kvm: no thread %d", tid)
	}
	if t.State != Runnable && t.State != Blocked {
		return StepEvent{}, fmt.Errorf("kvm: thread %s is %s", t.Name, t.State)
	}
	// Every mutation below touches only the stepping thread (plus the
	// machine maps, journaled at their mutation sites), so one clone here
	// covers the whole step.
	m.saveThread(t)

	fr := &t.frames[len(t.frames)-1]
	in := fr.fn.Instrs[fr.pc]
	ev := StepEvent{Thread: tid, Instr: in, Executed: true, Spawned: NoThread}

	if t.State == Blocked {
		// Only a Lock instruction can block; re-attempt it.
		la := t.WaitLock
		if _, held := m.lockOwner[la]; held {
			ev.Executed = false
			return ev, nil
		}
		m.saveLock(la)
		m.lockOwner[la] = tid
		t.Locks = append(t.Locks, la)
		t.State = Runnable
		t.WaitLock = 0
		fr.pc++
		m.steps++
		m.executed++
		t.normalize()
		ev.Done = t.State == Done
		return ev, nil
	}

	advance := true
	switch in.Op {
	case kir.OpNop, kir.OpYield:
		// observable scheduling points only

	case kir.OpMov:
		t.Regs[in.Dst] = value(t, in.A)
	case kir.OpAdd:
		t.Regs[in.Dst] += value(t, in.A)
	case kir.OpSub:
		t.Regs[in.Dst] -= value(t, in.A)
	case kir.OpAnd:
		t.Regs[in.Dst] &= value(t, in.A)
	case kir.OpOr:
		t.Regs[in.Dst] |= value(t, in.A)
	case kir.OpXor:
		t.Regs[in.Dst] ^= value(t, in.A)

	case kir.OpLoad:
		a := m.addr(t, in.A)
		v, fault := m.space.Load(a)
		ev.Accesses = append(ev.Accesses, Access{Addr: a})
		if fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}
		t.Regs[in.Dst] = v

	case kir.OpStore:
		a := m.addr(t, in.A)
		ev.Accesses = append(ev.Accesses, Access{Addr: a, Write: true})
		if fault := m.space.Store(a, value(t, in.B)); fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}

	case kir.OpBeq, kir.OpBne, kir.OpBlt, kir.OpBge:
		a, bv := value(t, in.A), value(t, in.B)
		var taken bool
		switch in.Op {
		case kir.OpBeq:
			taken = a == bv
		case kir.OpBne:
			taken = a != bv
		case kir.OpBlt:
			taken = a < bv
		case kir.OpBge:
			taken = a >= bv
		}
		if taken {
			fr.pc = m.prog.BranchTarget(in)
			advance = false
		}

	case kir.OpJmp:
		fr.pc = m.prog.BranchTarget(in)
		advance = false

	case kir.OpCall:
		fr.pc++
		advance = false
		t.frames = append(t.frames, frame{fn: m.prog.Funcs[in.Target]})

	case kir.OpRet:
		t.frames = t.frames[:len(t.frames)-1]
		advance = false

	case kir.OpLock:
		la := m.addr(t, in.A)
		owner, held := m.lockOwner[la]
		switch {
		case !held:
			m.saveLock(la)
			m.lockOwner[la] = tid
			t.Locks = append(t.Locks, la)
		case owner == tid:
			ev.Failure = m.fail(t, in, sanitizer.KindDeadlock, la, "recursive lock acquisition")
			return ev, nil
		default:
			t.State = Blocked
			t.WaitLock = la
			ev.Executed = false
			return ev, nil
		}

	case kir.OpUnlock:
		la := m.addr(t, in.A)
		if m.lockOwner[la] != tid || !t.HoldsLock(la) {
			ev.Failure = m.fail(t, in, sanitizer.KindBadUnlock, la, "unlock of a lock not held by this thread")
			return ev, nil
		}
		m.saveLock(la)
		delete(m.lockOwner, la)
		for i, l := range t.Locks {
			if l == la {
				t.Locks = append(t.Locks[:i], t.Locks[i+1:]...)
				break
			}
		}

	case kir.OpAlloc:
		t.Regs[in.Dst] = int64(m.space.Alloc(in.Size, in.ID))

	case kir.OpFree:
		base := uint64(value(t, in.A))
		if base == 0 {
			break // kfree(NULL) is a no-op
		}
		// A free conflicts with every access to the object, so it emits a
		// write access per payload word (this is what makes use-after-free
		// *races* detectable, not just use-after-free *faults*).
		if obj := m.space.ObjectAt(base); obj != nil && obj.Base == base {
			for a := obj.Base; a < obj.Base+uint64(obj.Size); a++ {
				ev.Accesses = append(ev.Accesses, Access{Addr: a, Write: true})
			}
		} else {
			ev.Accesses = append(ev.Accesses, Access{Addr: base, Write: true})
		}
		if fault := m.space.Free(base, in.ID); fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}

	case kir.OpBugOn:
		if value(t, in.A) != 0 {
			ev.Failure = m.fail(t, in, sanitizer.KindBugOn, 0, fmt.Sprintf("BUG_ON(%s != 0)", in.A))
			return ev, nil
		}

	case kir.OpListAdd:
		a := m.addr(t, in.A)
		v := value(t, in.B)
		ev.Accesses = append(ev.Accesses, Access{Addr: a, Write: true})
		// CONFIG_DEBUG_LIST semantics: inserting an entry that is already
		// on the list corrupts its links; the kernel's list debugging
		// catches it at the insertion point.
		dup, fault := m.space.ListHas(a, v)
		if fault == nil && dup {
			ev.Failure = m.fail(t, in, sanitizer.KindBugOn, a,
				fmt.Sprintf("list_add corruption: entry %d is already on the list", v))
			return ev, nil
		}
		if fault == nil {
			fault = m.space.ListAdd(a, v)
		}
		if fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}

	case kir.OpListDel:
		a := m.addr(t, in.A)
		ev.Accesses = append(ev.Accesses, Access{Addr: a, Write: true})
		if fault := m.space.ListDel(a, value(t, in.B)); fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}

	case kir.OpListHas:
		a := m.addr(t, in.A)
		ev.Accesses = append(ev.Accesses, Access{Addr: a})
		has, fault := m.space.ListHas(a, value(t, in.B))
		if fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}
		if has {
			t.Regs[in.Dst] = 1
		} else {
			t.Regs[in.Dst] = 0
		}

	case kir.OpRefGet, kir.OpRefPut:
		a := m.addr(t, in.A)
		ev.Accesses = append(ev.Accesses, Access{Addr: a, Write: true})
		v, fault := m.space.Load(a)
		if fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}
		var nv int64
		if in.Op == kir.OpRefGet {
			if v == 0 {
				ev.Failure = m.fail(t, in, sanitizer.KindRefcount, a, "refcount increment from zero")
				return ev, nil
			}
			nv = v + 1
		} else {
			nv = v - 1
			if nv < 0 {
				ev.Failure = m.fail(t, in, sanitizer.KindRefcount, a, "refcount underflow")
				return ev, nil
			}
		}
		if fault := m.space.Store(a, nv); fault != nil {
			ev.Failure = m.failFault(t, in, fault)
			return ev, nil
		}
		t.Regs[in.Dst] = nv

	case kir.OpQueueWork, kir.OpCallRCU:
		// Spawned threads are named by their spawn site so that the same
		// logical thread has the same name in every run of the same
		// program, regardless of interleaving — schedules and races refer
		// to threads by name across runs.
		kind, prefix := kir.KindKWorker, "kworker"
		if in.Op == kir.OpCallRCU {
			kind, prefix = kir.KindSoftirq, "rcu"
		}
		name := fmt.Sprintf("%s:%s", prefix, m.prog.InstrName(in.ID))
		if n := m.spawnSeq[in.ID]; n > 0 {
			name = fmt.Sprintf("%s#%d", name, n)
		}
		m.saveSpawnSeq(in.ID)
		m.spawnSeq[in.ID]++
		nt := &Thread{
			ID:        ThreadID(len(m.threads)),
			Name:      name,
			Kind:      kind,
			State:     Runnable,
			SpawnedBy: tid,
			SpawnSite: in.ID,
			frames:    []frame{{fn: m.prog.Funcs[in.Target]}},
		}
		nt.Regs[0] = value(t, in.A)
		// The spawned thread is born in the current epoch: any restore
		// crossing its creation pops it whole, so it needs no clone until
		// the next snapshot.
		nt.savedEpoch = m.epoch
		m.threads = append(m.threads, nt)
		m.noteSpawn()
		ev.Spawned = nt.ID

	case kir.OpExit:
		t.frames = t.frames[:0]
		advance = false

	default:
		return StepEvent{}, fmt.Errorf("kvm: unknown opcode %v", in.Op)
	}

	if advance {
		fr.pc++
	}
	m.steps++
	m.executed++
	t.normalize()
	ev.Done = t.State == Done
	return ev, nil
}

package kvm

import (
	"testing"

	"aitia/internal/kir"
)

// storeProg builds a single-thread program performing n successive stores
// to g (g takes the values 1..n), so tests can step a known number of
// instructions between snapshots and read the progress back.
func storeProg(t *testing.T, n int) *kir.Program {
	t.Helper()
	return simpleProg(t, func(f *kir.FuncBuilder) {
		for i := 1; i <= n; i++ {
			f.Store(kir.G("g"), kir.Imm(int64(i)))
		}
		f.Ret()
	})
}

func stepN(t *testing.T, m *Machine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ev, err := m.Step(0)
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if !ev.Executed {
			t.Fatalf("step %d did not execute", i)
		}
	}
}

func wantStale(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("restore of a stale snapshot did not panic")
		}
	}()
	f()
}

// TestNestedSnapshotRestore exercises the snapshot stack the prefix cache
// leans on: restore to an interior snapshot, mutate divergently, restore
// to its ancestor — each restore lands on the exact captured state, stales
// everything deeper, and keeps shallower snapshots restorable repeatedly.
func TestNestedSnapshotRestore(t *testing.T) {
	m, err := New(storeProg(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	g, _ := m.Space().GlobalAddr("g")
	load := func() int64 {
		v, _ := m.Space().Load(g)
		return v
	}

	a := m.Snapshot() // g=0
	stepN(t, m, 2)    // g=2
	b := m.Snapshot()
	stepN(t, m, 2) // g=4
	c := m.Snapshot()
	stepN(t, m, 2) // g=6
	execPeak := m.Executed()
	if load() != 6 {
		t.Fatalf("g = %d, want 6", load())
	}

	// LIFO restores land on the exact captured states.
	m.Restore(c)
	if load() != 4 {
		t.Errorf("after Restore(c): g = %d, want 4", load())
	}
	m.Restore(b)
	if load() != 2 {
		t.Errorf("after Restore(b): g = %d, want 2", load())
	}

	// Restoring b staled c...
	if m.SnapshotLive(c) {
		t.Error("c reports live after its ancestor was restored")
	}
	if !m.SnapshotLive(a) || !m.SnapshotLive(b) {
		t.Error("a and b must stay live across the interior restore")
	}
	// ...and stays stale even after the journal regrows past c's position.
	stepN(t, m, 3) // g=5, diverged from the original run
	if m.SnapshotLive(c) {
		t.Error("c reports live after divergent re-execution past its position")
	}
	wantStale(t, func() { m.Restore(c) })

	// The ancestor restores across the divergent mutation, repeatedly.
	m.Restore(a)
	if load() != 0 {
		t.Errorf("after Restore(a): g = %d, want 0", load())
	}
	stepN(t, m, 5)
	m.Restore(a)
	if load() != 0 {
		t.Errorf("second Restore(a): g = %d, want 0", load())
	}

	// Executed is monotonic: restores rewind the logical clock (Steps),
	// never the work counter the prefix-cache stats are built from.
	if m.Executed() < execPeak {
		t.Errorf("Executed() = %d rewound below %d", m.Executed(), execPeak)
	}
	if m.Steps() != 0 {
		t.Errorf("Steps() = %d after restoring the initial snapshot, want 0", m.Steps())
	}
}

// TestSnapshotStaleAcrossResetAndDeepRestore pins the generation check:
// Reset and RestoreDeep bypass the undo journal, so every journal-based
// snapshot taken before them — including position-0 snapshots, which a
// purely positional check would wrongly accept — must die.
func TestSnapshotStaleAcrossResetAndDeepRestore(t *testing.T) {
	m, err := New(storeProg(t, 8))
	if err != nil {
		t.Fatal(err)
	}

	sn := m.Snapshot() // position 0: the positional staleness check alone passes
	stepN(t, m, 2)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.SnapshotLive(sn) {
		t.Error("pre-Reset snapshot reports live")
	}
	wantStale(t, func() { m.Restore(sn) })

	ds := m.DeepSnapshot()
	sn2 := m.Snapshot()
	stepN(t, m, 2)
	m.RestoreDeep(ds)
	if m.SnapshotLive(sn2) {
		t.Error("pre-RestoreDeep snapshot reports live")
	}
	wantStale(t, func() { m.Restore(sn2) })

	// A snapshot taken in the new generation works normally.
	g, _ := m.Space().GlobalAddr("g")
	sn3 := m.Snapshot()
	stepN(t, m, 2)
	m.Restore(sn3)
	if v, _ := m.Space().Load(g); v != 0 {
		t.Errorf("g = %d after post-deep-restore snapshot round trip, want 0", v)
	}
}

// TestSnapshotBytesAccounting checks the two byte meters the prefix cache
// budgets with: LiveBytes tracks the journal exactly (restores release the
// truncated entries), SnapshotBytes is the monotonic total CoW cost.
func TestSnapshotBytesAccounting(t *testing.T) {
	m, err := New(storeProg(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	if m.LiveBytes() != 0 {
		t.Fatalf("LiveBytes = %d before any snapshot, want 0", m.LiveBytes())
	}

	a := m.Snapshot()
	stepN(t, m, 3)
	lbAtB := m.LiveBytes()
	if lbAtB == 0 {
		t.Fatal("LiveBytes = 0 after journaled steps")
	}
	copied := m.SnapshotBytes()
	if copied == 0 {
		t.Fatal("SnapshotBytes = 0 after journaled steps")
	}

	b := m.Snapshot()
	stepN(t, m, 2)
	if m.LiveBytes() <= lbAtB {
		t.Errorf("LiveBytes = %d did not grow past %d", m.LiveBytes(), lbAtB)
	}
	m.Restore(b)
	if got := m.LiveBytes(); got != lbAtB {
		t.Errorf("LiveBytes = %d after Restore(b), want %d (journal above b released)", got, lbAtB)
	}
	m.Restore(a)
	if got := m.LiveBytes(); got != 0 {
		t.Errorf("LiveBytes = %d after restoring the oldest snapshot, want 0", got)
	}
	if m.SnapshotBytes() < copied {
		t.Errorf("SnapshotBytes = %d rewound below %d", m.SnapshotBytes(), copied)
	}
}

package kvm

import (
	"aitia/internal/kir"
	"aitia/internal/mem"
	"aitia/internal/sanitizer"
)

// mundoKind tags one machine journal entry.
type mundoKind uint8

const (
	muThread   mundoKind = iota // a thread about to be mutated (saved clone)
	muLock                      // a lockOwner entry mutated
	muSpawnSeq                  // a spawnSeq counter mutated
	muSpawn                     // a thread appended by queue_work/call_rcu
)

// mundo is one reverse-replayable machine mutation record.
type mundo struct {
	kind  mundoKind
	seq   uint64
	tid   ThreadID // muThread
	thr   *Thread  // saved clone (muThread)
	addr  uint64   // lock address (muLock)
	owner ThreadID // previous owner (muLock)
	had   bool     // the lockOwner/spawnSeq key was present before
	instr kir.InstrID
	n     int // previous spawnSeq value
}

// mappend adds one machine journal entry with the next sequence id.
func (m *Machine) mappend(r mundo) {
	m.mseq++
	r.seq = m.mseq
	m.journal = append(m.journal, r)
}

// saveThread journals a clone of t before its first mutation in the
// current snapshot epoch. Only the stepping thread is ever mutated (fail
// crashes the stepping thread; the blocked-retry path mutates it too), so
// one call at the top of Step covers every thread mutation.
func (m *Machine) saveThread(t *Thread) {
	if !m.journaling || t.savedEpoch == m.epoch {
		return
	}
	t.savedEpoch = m.epoch
	cp := t.clone()
	m.mappend(mundo{kind: muThread, tid: t.ID, thr: cp})
	m.copied += uint64(threadBytes + 8*len(cp.Locks) + 16*len(cp.frames))
	m.live += uint64(threadBytes + 8*len(cp.Locks) + 16*len(cp.frames))
}

// threadBytes approximates the fixed size of one Thread clone, for the
// snapshot-bytes metric.
const threadBytes = 64 + 8*kir.NumRegs

// saveLock journals the lockOwner entry at addr before a mutation.
func (m *Machine) saveLock(addr uint64) {
	if !m.journaling {
		return
	}
	o, had := m.lockOwner[addr]
	m.mappend(mundo{kind: muLock, addr: addr, owner: o, had: had})
	m.copied += 24
	m.live += 24
}

// saveSpawnSeq journals the spawnSeq counter for instr before a mutation.
func (m *Machine) saveSpawnSeq(instr kir.InstrID) {
	if !m.journaling {
		return
	}
	n, had := m.spawnSeq[instr]
	m.mappend(mundo{kind: muSpawnSeq, instr: instr, n: n, had: had})
	m.copied += 24
	m.live += 24
}

// noteSpawn journals the append of a freshly spawned thread; undo pops it.
func (m *Machine) noteSpawn() {
	if !m.journaling {
		return
	}
	m.mappend(mundo{kind: muSpawn})
	m.copied += 8
	m.live += 8
}

// Snapshot is a copy-on-write machine checkpoint: a position in the
// machine's undo journal plus the space's journal mark and the scalar
// counters. Taking one is O(1); restoring costs O(mutations since it was
// taken) — the VM-revert the LIFS searcher performs at every scheduling
// decision point.
//
// Snapshots form a stack: restores must be LIFO-ordered. An outer snapshot
// stays valid across any number of inner snapshot/restore cycles and can
// itself be restored repeatedly; restoring a stale snapshot panics.
type Snapshot struct {
	space   *mem.Snapshot
	pos     int
	seq     uint64
	gen     uint64
	failure *sanitizer.Failure
	steps   uint64
}

// Snapshot captures the machine state and enables mutation journaling (the
// first call flips the machine into CoW mode; machines that are never
// snapshotted pay nothing per Step).
func (m *Machine) Snapshot() *Snapshot {
	m.journaling = true
	m.epoch++
	m.snapshots++
	// Match against the last live entry's id, not the monotonic counter
	// (which outruns the journal after a restore).
	var last uint64
	if len(m.journal) > 0 {
		last = m.journal[len(m.journal)-1].seq
	}
	return &Snapshot{
		space:   m.space.Snapshot(),
		pos:     len(m.journal),
		seq:     last,
		gen:     m.gen,
		failure: m.failure,
		steps:   m.steps,
	}
}

// SnapshotLive reports whether sn is still restorable on this machine:
// taken in the machine's current generation (no Reset or RestoreDeep
// since) and not truncated away by a restore to an older snapshot. The
// prefix cache uses it to validate warm pins handed from a reproduction
// to the analysis.
func (m *Machine) SnapshotLive(sn *Snapshot) bool {
	return sn.gen == m.gen && sn.pos <= len(m.journal) &&
		(sn.pos == 0 || m.journal[sn.pos-1].seq == sn.seq)
}

// Restore rewinds the machine to a snapshot by reverse-replaying the undo
// journal. The snapshot remains usable for further LIFO restores.
func (m *Machine) Restore(sn *Snapshot) {
	if !m.SnapshotLive(sn) {
		panic("kvm: restore of a stale snapshot (restores must be LIFO-ordered)")
	}
	for i := len(m.journal) - 1; i >= sn.pos; i-- {
		r := &m.journal[i]
		switch r.kind {
		case muThread:
			m.threads[r.tid] = r.thr
			m.live -= uint64(threadBytes + 8*len(r.thr.Locks) + 16*len(r.thr.frames))
		case muLock:
			if r.had {
				m.lockOwner[r.addr] = r.owner
			} else {
				delete(m.lockOwner, r.addr)
			}
			m.live -= 24
		case muSpawnSeq:
			if r.had {
				m.spawnSeq[r.instr] = r.n
			} else {
				delete(m.spawnSeq, r.instr)
			}
			m.live -= 24
		case muSpawn:
			m.threads = m.threads[:len(m.threads)-1]
			m.live -= 8
		}
		*r = mundo{} // drop references so truncated entries can be collected
	}
	m.journal = m.journal[:sn.pos]
	m.space.Restore(sn.space)
	m.failure = sn.failure
	m.steps = sn.steps
	m.restores++
	m.epoch++
}

// SnapshotBytes returns the approximate number of bytes copied by the
// machine's copy-on-write journaling (thread clones, lock/spawn records
// and memory undo entries) since the machine was created, for metrics.
func (m *Machine) SnapshotBytes() uint64 { return m.copied + m.space.CopiedBytes() }

// LiveBytes returns the approximate number of bytes currently held by the
// machine's undo journals (thread clones, lock/spawn records and memory
// undo entries) — the memory a snapshot of the present state pins relative
// to the oldest live snapshot. The prefix cache uses it to enforce its
// pinned-bytes budget.
func (m *Machine) LiveBytes() uint64 { return m.live + m.space.LiveBytes() }

// DeepSnapshot is a full deep copy of the machine state: memory, threads,
// lock ownership and counters. It is kept alongside the journal-based
// Snapshot as the benchmark baseline.
type DeepSnapshot struct {
	space     *mem.DeepSnapshot
	threads   []*Thread
	lockOwner map[uint64]ThreadID
	failure   *sanitizer.Failure
	steps     uint64
	spawnSeq  map[kir.InstrID]int
}

// DeepSnapshot captures a full copy of the machine state for RestoreDeep.
func (m *Machine) DeepSnapshot() *DeepSnapshot {
	sn := &DeepSnapshot{
		space:     m.space.DeepSnapshot(),
		threads:   make([]*Thread, len(m.threads)),
		lockOwner: make(map[uint64]ThreadID, len(m.lockOwner)),
		failure:   m.failure,
		steps:     m.steps,
		spawnSeq:  make(map[kir.InstrID]int, len(m.spawnSeq)),
	}
	for i, t := range m.threads {
		sn.threads[i] = t.clone()
	}
	for k, v := range m.lockOwner {
		sn.lockOwner[k] = v
	}
	for k, v := range m.spawnSeq {
		sn.spawnSeq[k] = v
	}
	return sn
}

// RestoreDeep rewinds the machine to a deep snapshot. Because it replaces
// state wholesale and bypasses the journal, it invalidates every live
// journal-based Snapshot.
func (m *Machine) RestoreDeep(sn *DeepSnapshot) {
	m.space.RestoreDeep(sn.space)
	m.threads = make([]*Thread, len(sn.threads))
	for i, t := range sn.threads {
		m.threads[i] = t.clone()
	}
	m.lockOwner = make(map[uint64]ThreadID, len(sn.lockOwner))
	for k, v := range sn.lockOwner {
		m.lockOwner[k] = v
	}
	m.failure = sn.failure
	m.steps = sn.steps
	m.spawnSeq = make(map[kir.InstrID]int, len(sn.spawnSeq))
	for k, v := range sn.spawnSeq {
		m.spawnSeq[k] = v
	}
	m.journal = nil
	m.live = 0
	m.epoch++
	m.gen++ // every journal-based Snapshot is now stale
}

// Reset rewinds the machine to its initial state (equivalent to New).
// The armed fault plan, if any, survives the reset.
func (m *Machine) Reset() error {
	fresh, err := New(m.prog)
	if err != nil {
		return err
	}
	if m.fault != nil {
		fresh.SetFaultPlan(m.fault)
	}
	fresh.gen = m.gen + 1 // stale out snapshots of the pre-reset machine
	*m = *fresh
	return nil
}

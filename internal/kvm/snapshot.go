package kvm

import (
	"aitia/internal/kir"
	"aitia/internal/mem"
	"aitia/internal/sanitizer"
)

// Snapshot is a full machine checkpoint: memory, threads, lock ownership
// and counters. It backs both the VM-revert between diagnosis runs and the
// depth-first search of LIFS (which checkpoints at every scheduling
// decision point).
type Snapshot struct {
	space     *mem.Snapshot
	threads   []*Thread
	lockOwner map[uint64]ThreadID
	failure   *sanitizer.Failure
	steps     uint64
	spawnSeq  map[kir.InstrID]int
}

// Snapshot captures the machine state. The snapshot is immutable and can
// be restored any number of times.
func (m *Machine) Snapshot() *Snapshot {
	sn := &Snapshot{
		space:     m.space.Snapshot(),
		threads:   make([]*Thread, len(m.threads)),
		lockOwner: make(map[uint64]ThreadID, len(m.lockOwner)),
		failure:   m.failure,
		steps:     m.steps,
		spawnSeq:  make(map[kir.InstrID]int, len(m.spawnSeq)),
	}
	for i, t := range m.threads {
		sn.threads[i] = t.clone()
	}
	for k, v := range m.lockOwner {
		sn.lockOwner[k] = v
	}
	for k, v := range m.spawnSeq {
		sn.spawnSeq[k] = v
	}
	return sn
}

// Restore rewinds the machine to a snapshot.
func (m *Machine) Restore(sn *Snapshot) {
	m.space.Restore(sn.space)
	m.threads = make([]*Thread, len(sn.threads))
	for i, t := range sn.threads {
		m.threads[i] = t.clone()
	}
	m.lockOwner = make(map[uint64]ThreadID, len(sn.lockOwner))
	for k, v := range sn.lockOwner {
		m.lockOwner[k] = v
	}
	m.failure = sn.failure
	m.steps = sn.steps
	m.spawnSeq = make(map[kir.InstrID]int, len(sn.spawnSeq))
	for k, v := range sn.spawnSeq {
		m.spawnSeq[k] = v
	}
}

// Reset rewinds the machine to its initial state (equivalent to New).
func (m *Machine) Reset() error {
	fresh, err := New(m.prog)
	if err != nil {
		return err
	}
	*m = *fresh
	return nil
}

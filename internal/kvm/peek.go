package kvm

import (
	"hash/fnv"

	"aitia/internal/kir"
)

// PeekAccesses returns the shared-memory accesses the thread's next
// instruction would perform, resolved against the thread's current register
// values, without executing anything. LIFS uses this to decide whether the
// next instruction is a scheduling decision point (a potentially
// conflicting access).
func (m *Machine) PeekAccesses(tid ThreadID) []Access {
	in, ok := m.NextInstr(tid)
	if !ok || !in.Op.AccessesMemory() {
		return nil
	}
	t := m.Thread(tid)
	switch in.Op {
	case kir.OpLoad, kir.OpListHas:
		return []Access{{Addr: m.addr(t, in.A)}}
	case kir.OpStore, kir.OpListAdd, kir.OpListDel, kir.OpRefGet, kir.OpRefPut:
		return []Access{{Addr: m.addr(t, in.A), Write: true}}
	case kir.OpFree:
		base := uint64(value(t, in.A))
		if base == 0 {
			return nil
		}
		if obj := m.space.ObjectAt(base); obj != nil && obj.Base == base {
			out := make([]Access, 0, obj.Size)
			for a := obj.Base; a < obj.Base+uint64(obj.Size); a++ {
				out = append(out, Access{Addr: a, Write: true})
			}
			return out
		}
		return []Access{{Addr: base, Write: true}}
	default:
		return nil
	}
}

// StateSignature returns a hash of the complete machine state: thread
// positions, registers, lock ownership, memory words, lists and heap
// object states. Two machines with equal signatures are (modulo hash
// collisions) in identical states and have identical futures under
// identical scheduling — the equivalence LIFS uses to prune redundant
// interleavings (the paper's DPOR-style "skip equivalent instruction
// sequences").
func (m *Machine) StateSignature() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		buf[4] = byte(v >> 32)
		buf[5] = byte(v >> 40)
		buf[6] = byte(v >> 48)
		buf[7] = byte(v >> 56)
		h.Write(buf[:])
	}

	for _, t := range m.threads {
		h.Write([]byte(t.Name))
		word(uint64(t.State))
		word(t.WaitLock)
		for _, r := range t.Regs {
			word(uint64(r))
		}
		for _, l := range t.Locks {
			word(l)
		}
		for _, fr := range t.frames {
			h.Write([]byte(fr.fn.Name))
			word(uint64(fr.pc))
		}
		word(0xfeed) // frame separator
	}

	// Maps are folded order-independently: each entry is hashed on its own
	// and the entry hashes are summed.
	var acc uint64
	entry := func(parts ...uint64) {
		eh := fnv.New64a()
		for _, p := range parts {
			var b [8]byte
			b[0] = byte(p)
			b[1] = byte(p >> 8)
			b[2] = byte(p >> 16)
			b[3] = byte(p >> 24)
			b[4] = byte(p >> 32)
			b[5] = byte(p >> 40)
			b[6] = byte(p >> 48)
			b[7] = byte(p >> 56)
			eh.Write(b[:])
		}
		acc += eh.Sum64()
	}
	m.space.FoldState(func(parts ...uint64) { entry(parts...) })
	for addr, owner := range m.lockOwner {
		entry(0x10c4, addr, uint64(owner))
	}
	word(acc)
	return h.Sum64()
}

package kvm

import (
	"strings"
	"testing"

	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

func TestCallRCUSpawnsSoftirq(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.CallRCU("cb", kir.Imm(5)).L("R1")
	f.Ret()
	cb := b.Func("cb")
	cb.Store(kir.G("g"), kir.R(kir.R0))
	cb.Ret()
	b.Thread("T", "main")
	prog, _ := b.Build()
	m, _ := New(prog)
	run(t, m, 0)
	if m.NumThreads() != 2 {
		t.Fatalf("threads = %d", m.NumThreads())
	}
	th := m.Thread(1)
	if th.Kind != kir.KindSoftirq || !strings.HasPrefix(th.Name, "rcu:") {
		t.Errorf("spawned = %s (%v)", th.Name, th.Kind)
	}
	if th.SpawnedBy != 0 || th.SpawnSite == kir.NoInstr {
		t.Errorf("spawn provenance: by=%d site=%d", th.SpawnedBy, th.SpawnSite)
	}
	run(t, m, 1)
	addr, _ := m.Space().GlobalAddr("g")
	if v, _ := m.Space().Load(addr); v != 5 {
		t.Errorf("g = %d", v)
	}
}

func TestExitEndsThreadImmediately(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Exit()
		f.Store(kir.G("g"), kir.Imm(99)) // unreachable
	})
	m, _ := New(prog)
	run(t, m, 0)
	if !m.AllDone() {
		t.Fatal("not done")
	}
	addr, _ := m.Space().GlobalAddr("g")
	if v, _ := m.Space().Load(addr); v != 0 {
		t.Error("instruction after exit executed")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) {
		f.Store(kir.G("g"), kir.Imm(7))
		f.Ret()
	})
	m, _ := New(prog)
	sig := m.StateSignature()
	run(t, m, 0)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	if m.StateSignature() != sig {
		t.Error("Reset did not restore the initial state")
	}
	if m.Thread(0).State != Runnable {
		t.Errorf("thread state after reset: %v", m.Thread(0).State)
	}
}

func TestCheckLeaks(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.Alloc(kir.R1, 1) // never stored anywhere: unreachable at exit
	f.Ret()
	b.Thread("T", "main")
	prog, _ := b.Build()
	m, _ := New(prog)
	run(t, m, 0)
	if f := m.CheckLeaks(); f == nil || f.Kind != sanitizer.KindMemoryLeak {
		t.Errorf("leak check = %v", f)
	}

	// Storing the pointer into a global keeps the object reachable.
	b2 := kir.NewBuilder()
	b2.Var("slot", 0)
	f2 := b2.Func("main")
	f2.Alloc(kir.R1, 1)
	f2.Store(kir.G("slot"), kir.R(kir.R1))
	f2.Ret()
	b2.Thread("T", "main")
	prog2, _ := b2.Build()
	m2, _ := New(prog2)
	run(t, m2, 0)
	if f := m2.CheckLeaks(); f != nil {
		t.Errorf("reachable object reported leaked: %v", f)
	}
}

func TestDeadlockedPredicate(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("mu", 0)
	fa := b.Func("holder")
	fa.Lock(kir.G("mu"))
	fa.Yield().L("Y1")
	fa.Yield().L("Y2")
	fa.Unlock(kir.G("mu"))
	fa.Ret()
	fb := b.Func("waiter")
	fb.Lock(kir.G("mu"))
	fb.Unlock(kir.G("mu"))
	fb.Ret()
	b.Thread("A", "holder")
	b.Thread("B", "waiter")
	prog, _ := b.Build()
	m, _ := New(prog)
	// A acquires; B blocks. Not a deadlock: A can still run.
	m.Step(0)
	m.Step(1)
	if m.Deadlocked() {
		t.Error("deadlocked with a runnable owner")
	}
	if _, ok := m.NextInstr(1); !ok {
		t.Error("blocked thread should expose its pending instruction")
	}
	if m.Thread(0).HoldsLock(mustAddr(t, m, "mu")) != true {
		t.Error("holder lockset wrong")
	}
	if m.ThreadByName("B") == nil || m.ThreadByName("ghost") != nil {
		t.Error("ThreadByName lookup wrong")
	}
}

func TestStepErrors(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) { f.Ret() })
	m, _ := New(prog)
	if _, err := m.Step(99); err == nil {
		t.Error("stepping a nonexistent thread should fail")
	}
	run(t, m, 0)
	if _, err := m.Step(0); err == nil {
		t.Error("stepping a finished thread should fail")
	}
	// After a failure, stepping anything fails.
	prog2 := simpleProg(t, func(f *kir.FuncBuilder) {
		f.BugOn(kir.Imm(1))
		f.Ret()
	})
	m2, _ := New(prog2)
	m2.Step(0)
	if _, err := m2.Step(0); err == nil {
		t.Error("stepping a failed machine should error")
	}
}

func TestInjectFailureIsFirstWins(t *testing.T) {
	prog := simpleProg(t, func(f *kir.FuncBuilder) { f.Ret() })
	m, _ := New(prog)
	f1 := &sanitizer.Failure{Kind: sanitizer.KindDeadlock}
	f2 := &sanitizer.Failure{Kind: sanitizer.KindWatchdog}
	m.InjectFailure(f1)
	m.InjectFailure(f2)
	if m.Failure() != f1 {
		t.Error("second injection overwrote the first")
	}
}

func TestFaultReportCarriesObjectProvenance(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.Alloc(kir.R1, 1).L("ALLOC")
	f.Free(kir.R(kir.R1)).L("FREE")
	f.Load(kir.R2, kir.Ind(kir.R1, 0)).L("USE")
	f.Ret()
	b.Thread("T", "main")
	prog, _ := b.Build()
	m, _ := New(prog)
	run(t, m, 0)
	fail := m.Failure()
	if fail == nil || fail.Kind != sanitizer.KindUseAfterFree {
		t.Fatalf("failure = %v", fail)
	}
	for _, want := range []string{"ALLOC", "FREE"} {
		if !strings.Contains(fail.Msg, want) {
			t.Errorf("failure context misses %q: %s", want, fail.Msg)
		}
	}
}

func TestIRQThreadIsSchedulable(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("main")
	f.Store(kir.G("g"), kir.Imm(1))
	f.Ret()
	h := b.Func("handler")
	h.Load(kir.R1, kir.G("g"))
	h.Ret()
	b.Thread("T", "main")
	b.ThreadIRQ("irq$x", "handler")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(prog)
	th := m.ThreadByName("irq$x")
	if th == nil || th.Kind != kir.KindHardIRQ {
		t.Fatalf("irq thread = %+v", th)
	}
	if th.State != Runnable {
		t.Error("irq handler should be schedulable from the start")
	}
	if kir.KindHardIRQ.String() != "hardirq" {
		t.Errorf("kind name = %q", kir.KindHardIRQ.String())
	}
}

package manager

import (
	"context"
	"errors"
	"testing"
	"time"

	"aitia/internal/faultinject"
	"aitia/internal/scenarios"
)

var quickRetry = faultinject.RetryPolicy{
	MaxAttempts: 5,
	BaseBackoff: time.Microsecond,
	MaxBackoff:  10 * time.Microsecond,
}

// TestFaultedDiagnoseMatchesQuiet: a moderate fault rate costs retries
// but never correctness — the diagnosed chain matches the quiet run.
func TestFaultedDiagnoseMatchesQuiet(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()

	quiet, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	quiet.opts.LIFS.WantKind = sc.WantKind
	quiet.opts.LIFS.WantInstr = sc.WantInstr()
	qres, err := quiet.Diagnose(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	plan := faultinject.NewPlan(9, 0.2)
	mgr, err := New(prog, Options{Workers: 2, Fault: plan, Retry: quickRetry})
	if err != nil {
		t.Fatal(err)
	}
	mgr.opts.LIFS.WantKind = sc.WantKind
	mgr.opts.LIFS.WantInstr = sc.WantInstr()
	res, err := mgr.Diagnose(context.Background())
	if err != nil {
		// A 0.2-rate plan can exhaust a load-bearing retry budget; that
		// must surface as a classified error, never a wrong chain.
		if errors.Is(err, faultinject.ErrExhausted) {
			return
		}
		t.Fatal(err)
	}
	if got, want := res.Diagnosis.Chain.Format(prog), qres.Diagnosis.Chain.Format(prog); got != want {
		t.Errorf("faulted chain = %q, want %q", got, want)
	}
	var checks uint64
	for _, c := range plan.Stats().Checks {
		checks += c
	}
	if checks == 0 {
		t.Error("plan was never consulted")
	}
}

// TestVMDeathExhausts: when every VM launch dies, the pipeline fails
// with a classified retry-exhaustion error the service can requeue on —
// instead of silently returning a partial result.
func TestVMDeathExhausts(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	plan := faultinject.NewPlan(3, 0).SetRate(faultinject.KindWorkerDeath, 1)
	mgr, err := New(sc.MustProgram(), Options{Workers: 1, Fault: plan, Retry: quickRetry})
	if err != nil {
		t.Fatal(err)
	}
	mgr.opts.LIFS.WantKind = sc.WantKind
	mgr.opts.LIFS.WantInstr = sc.WantInstr()
	_, err = mgr.Diagnose(context.Background())
	if !errors.Is(err, faultinject.ErrExhausted) || !faultinject.Is(err) {
		t.Fatalf("err = %v, want classified worker-death exhaustion", err)
	}
}

// Package manager orchestrates the AITIA pipeline end to end (paper §4.1):
// it models the execution history into slices, launches reproducers (one
// per slice, in parallel, each on its own kernel-VM instance) to run LIFS,
// forwards the first failure-causing instruction sequence to the
// diagnosing stage, and runs Causality Analysis with a fleet of parallel
// diagnosers. The result is the causality chain plus all evidence.
package manager

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aitia/internal/core"
	"aitia/internal/faultinject"
	"aitia/internal/history"
	"aitia/internal/ingest"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/obs"
	"aitia/internal/prior"
	"aitia/internal/sanitizer"
)

// Options configure a diagnosis pipeline.
type Options struct {
	// Workers is the number of parallel reproducer/diagnoser instances
	// (the paper launches 32 VMs). Zero means GOMAXPROCS.
	Workers int
	// LIFSWorkers parallelizes each reproducer's search internally
	// (core.LIFSOptions.Workers). Zero keeps the searches serial — the
	// default, because the reproducers already run in parallel across
	// slices and N×N oversubscription helps nobody. Set it when traces
	// yield few slices but each search is deep.
	LIFSWorkers int
	// LIFS configures the reproducing stage. WantKind/WantInstr are
	// overridden from the trace's crash information when present, and
	// Workers from Options.LIFSWorkers when set.
	LIFS core.LIFSOptions
	// Analysis configures the diagnosing stage (Workers is overridden
	// from Options.Workers).
	Analysis core.AnalysisOptions
	// Tracer collects execution spans for the whole pipeline: the
	// reproducing fleet (volatile per-slice spans), the winning slice's
	// LIFS search (adopted from its private child tracer, so the merged
	// trace stays independent of slice completion order) and the
	// diagnosing stage. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Fault is the deterministic fault plan threaded through every stage:
	// the manager's own VM launches (worker-death), the LIFS searches and
	// the flip tests. Nil disables injection at zero cost.
	Fault *faultinject.Plan
	// Retry bounds retries of faulted operations (zero-value fields fall
	// back to faultinject.DefaultRetry).
	Retry faultinject.RetryPolicy
	// Checkpoint arms durable crash recovery for both stages: each
	// slice's LIFS search checkpoints its frontier (keyed by the slice
	// program's content hash, so slices never collide) and the analysis
	// checkpoints every settled flip. A pipeline restarted after a crash
	// resumes from the latest snapshots and produces the same diagnosis.
	// Nil disables checkpointing at zero cost.
	Checkpoint *core.CheckpointConfig
	// Dispatch routes each reproduction's parallel branch units to a
	// fleet of remote executors (see core.BranchDispatcher). Nil keeps
	// every search local.
	Dispatch core.BranchDispatcher
	// Prior, when set, closes the learning loop around the analysis: it
	// serves as the flip-test ranker (core.AnalysisOptions.Ranker) and
	// every completed diagnosis's executed verdicts are folded back into
	// it. The chain is byte-identical with or without it. Nil disables
	// the prior at zero cost.
	Prior *prior.Store
}

// Result is a completed diagnosis.
type Result struct {
	// Slice is the thread group that reproduced the failure.
	Slice history.Slice
	// SlicesTried counts reproducer launches until the failure reproduced.
	SlicesTried int
	// Reproduction is the LIFS output.
	Reproduction *core.Reproduction
	// Diagnosis is the Causality Analysis output (chain, verdicts).
	Diagnosis *core.Diagnosis
	// Resolution records how the crash report resolved against the
	// program — suspects, ambiguity fan-out, degradation reasons. Only
	// set by DiagnoseReport.
	Resolution *ingest.PartialSlice
	// Stage wall-clock times.
	ReproduceTime time.Duration
	DiagnoseTime  time.Duration
}

// Manager runs diagnoses for one program.
type Manager struct {
	prog *kir.Program
	opts Options
}

// New creates a manager.
func New(prog *kir.Program, opts Options) (*Manager, error) {
	if !prog.Finalized() {
		return nil, fmt.Errorf("manager: program not finalized")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Manager{prog: prog, opts: opts}, nil
}

// DiagnoseTrace runs the full pipeline on a bug-finder trace: modeling,
// slicing, parallel reproduction, diagnosis. The context bounds the
// whole pipeline: cancellation or deadline expiry stops the reproducer
// search and the diagnoser flip tests at their next iteration boundary,
// and the error is ctx.Err().
func (m *Manager) DiagnoseTrace(ctx context.Context, tr *history.Trace) (*Result, error) {
	lifs := m.opts.LIFS
	if m.opts.LIFSWorkers > 0 {
		lifs.Workers = m.opts.LIFSWorkers
	}
	if tr.Crash != nil {
		lifs.WantKind = tr.Crash.Kind
		lifs.WantInstr = tr.Crash.Instr
		if tr.Crash.Kind == sanitizer.KindMemoryLeak {
			lifs.LeakCheck = true
		}
	}
	slices := history.Model(tr)
	if len(slices) == 0 {
		return nil, fmt.Errorf("manager: trace yields no slices")
	}
	return m.diagnoseSlices(ctx, slices, lifs)
}

// Diagnose runs the pipeline on the program's full declared thread set
// (a single slice), for callers that already know the concurrency group.
// The context bounds the pipeline as in DiagnoseTrace.
func (m *Manager) Diagnose(ctx context.Context) (*Result, error) {
	var names []string
	for _, t := range m.prog.Threads {
		names = append(names, t.Name)
	}
	sl := history.Slice{Threads: names}
	lifs := m.opts.LIFS
	if m.opts.LIFSWorkers > 0 {
		lifs.Workers = m.opts.LIFSWorkers
	}
	return m.diagnoseSlices(ctx, []history.Slice{sl}, lifs)
}

// reportCandidates caps the ambiguity fan-out of a report-driven
// diagnosis: at most this many concrete suspect resolutions run as
// guided searches (plus the unguided fallback).
const reportCandidates = 8

// DiagnoseReport runs the pipeline from a crash report alone — no
// execution trace. The report is resolved against the program into a
// PartialSlice (failure kind and site, suspect instruction pairs); each
// concrete resolution of an ambiguous report becomes one guided LIFS
// search over the full declared thread set, seeded with the suspect
// pair as a phase-0 conflict and pruned to interleavings that can still
// reach the reported accesses and failure site. An unguided search runs
// at the last ordinal as the fallback for mis-resolved or degraded
// reports, so an underspecified report widens the search instead of
// failing it. The first (in candidate order) reproducing search wins,
// exactly like slice ordering in DiagnoseTrace.
func (m *Manager) DiagnoseReport(ctx context.Context, rpt *ingest.Report) (*Result, error) {
	ps := ingest.Resolve(m.prog, rpt)
	var names []string
	for _, t := range m.prog.Threads {
		names = append(names, t.Name)
	}
	// The guide subsumes thread restriction: candidates search the full
	// declared set (ps.Threads is informational) so the winning chain is
	// the one the full program yields, and spawner threads the report
	// could not name stay available.
	sl := history.Slice{Threads: names}

	base := m.opts.LIFS
	if m.opts.LIFSWorkers > 0 {
		base.Workers = m.opts.LIFSWorkers
	}
	if ps.Kind != sanitizer.KindNone {
		base.WantKind = ps.Kind
	}
	if ps.Site != kir.NoInstr {
		base.WantInstr = ps.Site
	}
	if ps.Kind == sanitizer.KindMemoryLeak {
		base.LeakCheck = true
	}

	var runs []sliceRun
	for _, cand := range ps.Candidates(reportCandidates) {
		if len(cand.Suspects) == 0 && base.WantInstr == kir.NoInstr {
			continue // nothing to guide with; only the fallback remains
		}
		lifs := base
		g := &core.Guide{}
		for _, s := range cand.Suspects {
			g.Suspects = append(g.Suspects, core.SuspectAccess{
				Instr: s.Instr, Thread: s.Thread, Addr: s.Addr, Write: s.Write,
			})
		}
		lifs.Guide = g
		runs = append(runs, sliceRun{slice: sl, lifs: lifs})
	}
	// Unguided fallback at the last ordinal: it only wins when no guided
	// candidate reproduces, so a wrong resolution costs candidates, not
	// the diagnosis.
	runs = append(runs, sliceRun{slice: sl, lifs: base})

	res, err := m.diagnoseRuns(ctx, runs)
	if err != nil {
		return nil, err
	}
	res.Resolution = ps
	return res, nil
}

// sliceRun is one reproducer launch: a thread slice plus the search
// options to run it under.
type sliceRun struct {
	slice history.Slice
	lifs  core.LIFSOptions
}

// diagnoseSlices launches reproducers over the candidate slices, in
// parallel, and diagnoses the first (in slice order) that reproduces.
func (m *Manager) diagnoseSlices(ctx context.Context, slices []history.Slice, lifs core.LIFSOptions) (*Result, error) {
	runs := make([]sliceRun, len(slices))
	for i, sl := range slices {
		runs[i] = sliceRun{slice: sl, lifs: lifs}
	}
	return m.diagnoseRuns(ctx, runs)
}

// diagnoseRuns launches the reproducer fleet over the candidate runs, in
// parallel, and diagnoses the first (in run order) that reproduces.
func (m *Manager) diagnoseRuns(ctx context.Context, runs []sliceRun) (*Result, error) {
	type repOut struct {
		idx int
		rep *core.Reproduction
		err error
		// Tracing: the slice's private child tracer plus the attempt's
		// wall interval and worker slot on the parent's clock.
		tr        *obs.Tracer
		tStart    time.Duration
		tDur      time.Duration
		worker    int
		attempted bool
	}
	start := time.Now()

	ptr := m.opts.Tracer
	root := ptr.Begin("manager", "diagnose", 0)
	best := -1
	defer func() {
		root.Arg("slices", int64(len(runs)))
		if best >= 0 {
			root.Arg("slice", int64(best))
		}
		root.End()
	}()

	workers := m.opts.Workers
	if workers > len(runs) {
		workers = len(runs)
	}
	jobs := make(chan int)
	outs := make(chan repOut, len(runs))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := ctx.Err(); err != nil {
					outs <- repOut{idx: idx, err: err}
					continue
				}
				// Each reproducer traces into its own child so slices
				// do not interleave their spans; only the winner's are
				// merged back.
				slifs := runs[idx].lifs
				slifs.Fault = m.opts.Fault
				slifs.Retry = m.opts.Retry
				slifs.Checkpoint = m.opts.Checkpoint
				slifs.Dispatch = m.opts.Dispatch
				if ptr.Enabled() {
					slifs.Tracer = obs.New()
				}
				t0 := ptr.Now()
				rep, err := m.reproduce(ctx, runs[idx].slice, slifs)
				outs <- repOut{
					idx: idx, rep: rep, err: err,
					tr: slifs.Tracer, tStart: t0, tDur: ptr.Now() - t0,
					worker: w, attempted: true,
				}
			}
		}()
	}
	go func() {
		for i := range runs {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(outs)
	}()

	var bestRep *core.Reproduction
	var bestTr *obs.Tracer
	tried := 0
	var lastErr error
	attempts := make([]repOut, len(runs))
	for out := range outs {
		tried++
		attempts[out.idx] = out
		if out.err != nil {
			lastErr = out.err
			continue
		}
		if out.rep != nil && (best < 0 || out.idx < best) {
			best, bestRep, bestTr = out.idx, out.rep, out.tr
		}
	}
	if ptr.Enabled() {
		// Which worker ran which slice (and how long) depends on runtime
		// scheduling: record the fleet timeline as volatile spans, in
		// slice order.
		for idx, out := range attempts {
			if !out.attempted {
				continue
			}
			ptr.Emit(obs.Event{
				Cat: "manager", Name: "reproduce", Track: int64(out.worker) + 1,
				Start: out.tStart, Dur: out.tDur,
				Info: []obs.Arg{
					{Key: "slice", Val: int64(idx)},
					{Key: "worker", Val: int64(out.worker)},
					{Key: "reproduced", Val: b2i(out.rep != nil)},
				},
				Volatile: true,
			})
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if best < 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("manager: no slice reproduced the failure (last error: %w)", lastErr)
		}
		return nil, fmt.Errorf("manager: no slice reproduced the failure")
	}
	// Merge the winning slice's search spans; the losers' children are
	// dropped, so the canonical sequence only depends on which slice won
	// (deterministic), not on completion order.
	ptr.Adopt(bestTr)
	reproTime := time.Since(start)

	// Diagnosing stage on the winning slice.
	sliceProg, err := m.prog.Restrict(runs[best].slice.Threads)
	if err != nil {
		return nil, err
	}
	dm, err := m.newVM(ctx, sliceProg, "manager.diag-vm")
	if err != nil {
		return nil, err
	}
	aopts := m.opts.Analysis
	aopts.Workers = m.opts.Workers
	aopts.LeakCheck = aopts.LeakCheck || runs[best].lifs.LeakCheck
	aopts.Tracer = ptr
	aopts.Fault = m.opts.Fault
	aopts.Retry = m.opts.Retry
	aopts.Checkpoint = m.opts.Checkpoint
	if m.opts.Prior != nil {
		aopts.Ranker = m.opts.Prior
	}
	diagStart := time.Now()
	diag, err := core.AnalyzeContext(ctx, dm, bestRep, aopts)
	if err != nil {
		return nil, err
	}
	if m.opts.Prior != nil {
		// Feed the executed verdicts back: the next diagnosis ranks its
		// flips by what this one settled.
		m.opts.Prior.ObserveDiagnosis(sliceProg, diag)
	}

	return &Result{
		Slice:         runs[best].slice,
		SlicesTried:   tried,
		Reproduction:  bestRep,
		Diagnosis:     diag,
		ReproduceTime: reproTime,
		DiagnoseTime:  time.Since(diagStart),
	}, nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// newVM launches a kernel VM for the given program, riding out injected
// worker-death faults: each attempt draws a fresh fleet slot, so under
// partial fault rates a replacement VM usually comes up. Exhaustion is a
// real (classified) error — the caller's stage cannot run without a VM.
func (m *Manager) newVM(ctx context.Context, prog *kir.Program, op string) (*kvm.Machine, error) {
	var vm *kvm.Machine
	err := faultinject.Do(ctx, m.opts.Fault, m.opts.Retry, func(ctx context.Context, attempt int) error {
		if err := m.opts.Fault.Check(faultinject.KindWorkerDeath, op, m.opts.Fault.Seq(), 0); err != nil {
			return err
		}
		v, err := kvm.New(prog)
		if err != nil {
			return err
		}
		vm = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	vm.SetFaultPlan(m.opts.Fault)
	return vm, nil
}

// reproduce runs LIFS on one slice; a nil Reproduction with nil error
// means the slice did not reproduce the failure (try the next one).
func (m *Manager) reproduce(ctx context.Context, sl history.Slice, lifs core.LIFSOptions) (*core.Reproduction, error) {
	sliceProg, err := m.prog.Restrict(sl.Threads)
	if err != nil {
		return nil, err
	}
	vm, err := m.newVM(ctx, sliceProg, "manager.slice-vm")
	if err != nil {
		return nil, err
	}
	rep, err := core.ReproduceContext(ctx, vm, lifs)
	if err != nil {
		if core.IsNotReproduced(err) {
			return nil, nil
		}
		return nil, err
	}
	return rep, nil
}

// Package manager orchestrates the AITIA pipeline end to end (paper §4.1):
// it models the execution history into slices, launches reproducers (one
// per slice, in parallel, each on its own kernel-VM instance) to run LIFS,
// forwards the first failure-causing instruction sequence to the
// diagnosing stage, and runs Causality Analysis with a fleet of parallel
// diagnosers. The result is the causality chain plus all evidence.
package manager

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aitia/internal/core"
	"aitia/internal/history"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
)

// Options configure a diagnosis pipeline.
type Options struct {
	// Workers is the number of parallel reproducer/diagnoser instances
	// (the paper launches 32 VMs). Zero means GOMAXPROCS.
	Workers int
	// LIFSWorkers parallelizes each reproducer's search internally
	// (core.LIFSOptions.Workers). Zero keeps the searches serial — the
	// default, because the reproducers already run in parallel across
	// slices and N×N oversubscription helps nobody. Set it when traces
	// yield few slices but each search is deep.
	LIFSWorkers int
	// LIFS configures the reproducing stage. WantKind/WantInstr are
	// overridden from the trace's crash information when present, and
	// Workers from Options.LIFSWorkers when set.
	LIFS core.LIFSOptions
	// Analysis configures the diagnosing stage (Workers is overridden
	// from Options.Workers).
	Analysis core.AnalysisOptions
}

// Result is a completed diagnosis.
type Result struct {
	// Slice is the thread group that reproduced the failure.
	Slice history.Slice
	// SlicesTried counts reproducer launches until the failure reproduced.
	SlicesTried int
	// Reproduction is the LIFS output.
	Reproduction *core.Reproduction
	// Diagnosis is the Causality Analysis output (chain, verdicts).
	Diagnosis *core.Diagnosis
	// Stage wall-clock times.
	ReproduceTime time.Duration
	DiagnoseTime  time.Duration
}

// Manager runs diagnoses for one program.
type Manager struct {
	prog *kir.Program
	opts Options
}

// New creates a manager.
func New(prog *kir.Program, opts Options) (*Manager, error) {
	if !prog.Finalized() {
		return nil, fmt.Errorf("manager: program not finalized")
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	return &Manager{prog: prog, opts: opts}, nil
}

// DiagnoseTrace runs the full pipeline on a bug-finder trace: modeling,
// slicing, parallel reproduction, diagnosis. The context bounds the
// whole pipeline: cancellation or deadline expiry stops the reproducer
// search and the diagnoser flip tests at their next iteration boundary,
// and the error is ctx.Err().
func (m *Manager) DiagnoseTrace(ctx context.Context, tr *history.Trace) (*Result, error) {
	lifs := m.opts.LIFS
	if m.opts.LIFSWorkers > 0 {
		lifs.Workers = m.opts.LIFSWorkers
	}
	if tr.Crash != nil {
		lifs.WantKind = tr.Crash.Kind
		lifs.WantInstr = tr.Crash.Instr
		if tr.Crash.Kind == sanitizer.KindMemoryLeak {
			lifs.LeakCheck = true
		}
	}
	slices := history.Model(tr)
	if len(slices) == 0 {
		return nil, fmt.Errorf("manager: trace yields no slices")
	}
	return m.diagnoseSlices(ctx, slices, lifs)
}

// Diagnose runs the pipeline on the program's full declared thread set
// (a single slice), for callers that already know the concurrency group.
// The context bounds the pipeline as in DiagnoseTrace.
func (m *Manager) Diagnose(ctx context.Context) (*Result, error) {
	var names []string
	for _, t := range m.prog.Threads {
		names = append(names, t.Name)
	}
	sl := history.Slice{Threads: names}
	lifs := m.opts.LIFS
	if m.opts.LIFSWorkers > 0 {
		lifs.Workers = m.opts.LIFSWorkers
	}
	return m.diagnoseSlices(ctx, []history.Slice{sl}, lifs)
}

// diagnoseSlices launches reproducers over the candidate slices, in
// parallel, and diagnoses the first (in slice order) that reproduces.
func (m *Manager) diagnoseSlices(ctx context.Context, slices []history.Slice, lifs core.LIFSOptions) (*Result, error) {
	type repOut struct {
		idx int
		rep *core.Reproduction
		err error
	}
	start := time.Now()

	workers := m.opts.Workers
	if workers > len(slices) {
		workers = len(slices)
	}
	jobs := make(chan int)
	outs := make(chan repOut, len(slices))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if err := ctx.Err(); err != nil {
					outs <- repOut{idx: idx, err: err}
					continue
				}
				rep, err := m.reproduce(ctx, slices[idx], lifs)
				outs <- repOut{idx: idx, rep: rep, err: err}
			}
		}()
	}
	go func() {
		for i := range slices {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		close(outs)
	}()

	best := -1
	var bestRep *core.Reproduction
	tried := 0
	var lastErr error
	for out := range outs {
		tried++
		if out.err != nil {
			lastErr = out.err
			continue
		}
		if out.rep != nil && (best < 0 || out.idx < best) {
			best, bestRep = out.idx, out.rep
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if best < 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("manager: no slice reproduced the failure (last error: %w)", lastErr)
		}
		return nil, fmt.Errorf("manager: no slice reproduced the failure")
	}
	reproTime := time.Since(start)

	// Diagnosing stage on the winning slice.
	sliceProg, err := m.prog.Restrict(slices[best].Threads)
	if err != nil {
		return nil, err
	}
	dm, err := kvm.New(sliceProg)
	if err != nil {
		return nil, err
	}
	aopts := m.opts.Analysis
	aopts.Workers = m.opts.Workers
	aopts.LeakCheck = aopts.LeakCheck || lifs.LeakCheck
	diagStart := time.Now()
	diag, err := core.AnalyzeContext(ctx, dm, bestRep, aopts)
	if err != nil {
		return nil, err
	}

	return &Result{
		Slice:         slices[best],
		SlicesTried:   tried,
		Reproduction:  bestRep,
		Diagnosis:     diag,
		ReproduceTime: reproTime,
		DiagnoseTime:  time.Since(diagStart),
	}, nil
}

// reproduce runs LIFS on one slice; a nil Reproduction with nil error
// means the slice did not reproduce the failure (try the next one).
func (m *Manager) reproduce(ctx context.Context, sl history.Slice, lifs core.LIFSOptions) (*core.Reproduction, error) {
	sliceProg, err := m.prog.Restrict(sl.Threads)
	if err != nil {
		return nil, err
	}
	vm, err := kvm.New(sliceProg)
	if err != nil {
		return nil, err
	}
	rep, err := core.ReproduceContext(ctx, vm, lifs)
	if err != nil {
		if core.IsNotReproduced(err) {
			return nil, nil
		}
		return nil, err
	}
	return rep, nil
}

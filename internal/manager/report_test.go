package manager

import (
	"context"
	"testing"

	"aitia/internal/core"
	"aitia/internal/ingest"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// synthesizeReport reproduces the scenario blind and renders the failing
// run as a crash report, returning the report and the blind search's
// schedule count (the unseeded baseline).
func synthesizeReport(t *testing.T, name string) (*ingest.Report, int) {
	t.Helper()
	sc, ok := scenarios.ByName(name)
	if !ok {
		t.Fatalf("unknown scenario %s", name)
	}
	m, err := kvm.New(sc.MustProgram())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{
		WantKind:  sc.WantKind,
		WantInstr: sc.WantInstr(),
		LeakCheck: sc.NeedsLeakCheck(),
	})
	if err != nil {
		t.Fatal(err)
	}
	text, err := ingest.Synthesize(sc.MustProgram(), rep.Run, rep.Races)
	if err != nil {
		t.Fatal(err)
	}
	rpt, err := ingest.Parse(text)
	if err != nil {
		t.Fatalf("synthesized report does not parse: %v\n%s", err, text)
	}
	return rpt, rep.Stats.Schedules
}

// TestDiagnoseReport: the full report-driven pipeline on scenarios whose
// synthesized reports resolve cleanly. The diagnosis from the report
// alone must recover the golden chain, and the winning guided search
// must run strictly fewer schedules than the blind baseline.
func TestDiagnoseReport(t *testing.T) {
	for _, name := range []string{"fig1", "cve-2017-15649", "syz09-seccomp-leak"} {
		t.Run(name, func(t *testing.T) {
			sc, _ := scenarios.ByName(name)
			prog := sc.MustProgram()
			rpt, blind := synthesizeReport(t, name)

			mgr, err := New(prog, Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := mgr.DiagnoseReport(context.Background(), rpt)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resolution == nil {
				t.Fatal("Resolution not set")
			}
			if res.Resolution.Degraded() {
				t.Errorf("synthesized report degraded: %v", res.Resolution.Partial)
			}
			if got, want := res.Diagnosis.Chain.Format(prog), scenarios.GoldenChains[name]; got != want {
				t.Errorf("chain = %q, want %q", got, want)
			}
			if got := res.Reproduction.Stats.Schedules; got >= blind {
				t.Errorf("guided search ran %d schedules, blind baseline %d — want strictly fewer", got, blind)
			}
		})
	}
}

// TestDiagnoseReportDegraded: a title-only report (no access blocks)
// falls through to the unguided fallback and still diagnoses, with the
// holes recorded as machine-readable reasons.
func TestDiagnoseReportDegraded(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	rpt, err := ingest.Parse("BUG: unable to handle kernel NULL pointer dereference in report_bug+0x0\n")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.DiagnoseReport(context.Background(), rpt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resolution.Degraded() {
		t.Error("title-only report should resolve degraded")
	}
	found := false
	for _, r := range res.Resolution.Partial {
		if r == ingest.ReasonNoAccesses {
			found = true
		}
	}
	if !found {
		t.Errorf("Partial = %v, want %s", res.Resolution.Partial, ingest.ReasonNoAccesses)
	}
	if got, want := res.Diagnosis.Chain.Format(prog), scenarios.GoldenChains["fig1"]; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
}

// TestDiagnoseReportUnresolvable: a report about a different kernel
// (unknown symbols, unknown tasks) degrades to the unguided fallback —
// which still reproduces whatever failure the program actually has.
func TestDiagnoseReportUnresolvable(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	rpt, err := ingest.Parse("BUG: unable to handle kernel NULL pointer dereference in ext4_panic+0x5\n" +
		"==================================================================\n" +
		"BUG: KCSAN: data-race in ext4_writepages / ext4_evict_inode\n\n" +
		"write to 0xffff888107bc1000 of 8 bytes by task kworker/u4:1 on cpu 0:\n" +
		" ext4_writepages+0x1b/0x2c\n")
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(prog, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.DiagnoseReport(context.Background(), rpt)
	if err != nil {
		t.Fatal(err)
	}
	ps := res.Resolution
	if !ps.Degraded() || len(ps.Suspects) != 0 || ps.Threads != nil {
		t.Errorf("resolution = %+v, want fully degraded", ps)
	}
	// Nothing from the report resolved except the failure kind, so the
	// unguided fallback carries the whole diagnosis.
	if got, want := res.Diagnosis.Chain.Format(prog), scenarios.GoldenChains["fig1"]; got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
}

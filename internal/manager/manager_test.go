package manager

import (
	"context"
	"errors"
	"testing"
	"time"

	"aitia/internal/fuzz"
	"aitia/internal/history"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

func TestDiagnoseDirect(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	mgr, err := New(prog, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	mgr.opts.LIFS.WantKind = sc.WantKind
	mgr.opts.LIFS.WantInstr = sc.WantInstr()
	res, err := mgr.Diagnose(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Diagnosis.Chain.Len() != 4 {
		t.Errorf("chain = %s", res.Diagnosis.Chain.Format(prog))
	}
	if res.SlicesTried != 1 {
		t.Errorf("slices tried = %d", res.SlicesTried)
	}
}

// TestFullPipelineFromFuzzerTrace: fuzz -> trace -> slices -> parallel
// reproducers -> parallel diagnosers, on the Figure 9 bug.
func TestFullPipelineFromFuzzerTrace(t *testing.T) {
	sc, _ := scenarios.ByName("syz04-kvm-irqfd")
	prog := sc.MustProgram()
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	finding, err := fz.Campaign()
	if err != nil || finding == nil {
		t.Fatalf("fuzzing: %v, %v", finding, err)
	}
	if finding.Failure.Kind != sanitizer.KindUseAfterFree {
		t.Fatalf("found %v", finding.Failure.Kind)
	}

	mgr, err := New(prog, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.DiagnoseTrace(context.Background(), finding.Trace)
	if err != nil {
		t.Fatal(err)
	}
	want := "A1 => B1 → K1 => A2 → KASAN: use-after-free"
	if got := res.Diagnosis.Chain.Format(prog); got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if len(res.Slice.Threads) == 0 {
		t.Error("empty winning slice")
	}
	if res.ReproduceTime <= 0 || res.DiagnoseTime <= 0 {
		t.Error("missing stage timings")
	}
}

// TestSlicePruning: with a third, irrelevant thread in the program, the
// pipeline still reproduces from a slice and diagnoses the same chain.
func TestDiagnoseTraceWithIrrelevantThread(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	ext, err := prog.ExtendReaders(map[string][]string{"bystander": {"ptr_valid"}})
	if err != nil {
		t.Fatal(err)
	}
	fz, err := fuzz.New(ext, fuzz.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	finding, err := fz.Campaign()
	if err != nil || finding == nil {
		t.Fatalf("fuzzing: %v, %v", finding, err)
	}
	mgr, err := New(ext, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.DiagnoseTrace(context.Background(), finding.Trace)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Diagnosis.Chain.Format(ext); got != sc.WantChain {
		t.Errorf("chain = %q, want %q", got, sc.WantChain)
	}
}

func TestDiagnoseTraceNoSlices(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	mgr, err := New(sc.MustProgram(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.DiagnoseTrace(context.Background(), &history.Trace{}); err == nil {
		t.Error("empty trace should fail")
	}
}

// TestDiagnoseCanceledContext: a context canceled before the pipeline
// starts aborts it with ctx.Err().
func TestDiagnoseCanceledContext(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	mgr, err := New(sc.MustProgram(), Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = mgr.Diagnose(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("canceled diagnosis took %v", elapsed)
	}
}

package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestNilTracerZeroAlloc pins the disabled fast path: beginning,
// annotating and ending spans on a nil tracer must not allocate. This is
// the contract that lets the tracer sit on the search hot path.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("lifs", "phase", 0)
		sp.Arg("budget", 2)
		sp.Info("schedules", 41)
		sp.End()
		tr.Emit(Event{Cat: "lifs", Name: "unit"})
		_ = tr.Now()
		_ = tr.Events()
	})
	if allocs != 0 {
		t.Fatalf("nil tracer allocated %v times per op, want 0", allocs)
	}
}

func TestSpanCollectsArgs(t *testing.T) {
	tr := New()
	sp := tr.Begin("ca", "flip", 3)
	sp.Arg("idx", 2)
	sp.Arg("verdict", 1)
	sp.Info("worker", 7)
	sp.End()

	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.Cat != "ca" || ev.Name != "flip" || ev.Track != 3 {
		t.Errorf("event identity = %s/%s tid=%d", ev.Cat, ev.Name, ev.Track)
	}
	if len(ev.Args) != 2 || ev.Args[0] != (Arg{"idx", 2}) || ev.Args[1] != (Arg{"verdict", 1}) {
		t.Errorf("args = %v", ev.Args)
	}
	if len(ev.Info) != 1 || ev.Info[0] != (Arg{"worker", 7}) {
		t.Errorf("info = %v", ev.Info)
	}
	if ev.Dur < 0 {
		t.Errorf("negative duration %v", ev.Dur)
	}
}

func TestCanonicalDropsTimingAndVolatile(t *testing.T) {
	events := []Event{
		{Cat: "lifs", Name: "phase", Track: 0, Start: 5, Dur: 100, Args: []Arg{{"budget", 1}}, Info: []Arg{{"schedules", 9}}},
		{Cat: "pool", Name: "task", Track: 1, Start: 6, Dur: 10, Volatile: true},
		{Cat: "lifs", Name: "task", Track: 2, Args: []Arg{{"group", 0}, {"choice", 1}}},
	}
	got := Canonical(events)
	want := []string{
		"lifs/phase tid=0 budget=1",
		"lifs/task tid=2 group=0 choice=1",
	}
	if len(got) != len(want) {
		t.Fatalf("canonical = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("canonical[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	events := []Event{
		{Cat: "lifs", Name: "phase", Dur: 10 * time.Microsecond},
		{Cat: "lifs", Name: "phase", Dur: 30 * time.Microsecond},
		{Cat: "ca", Name: "flip", Dur: 5 * time.Microsecond},
	}
	got := Summarize(events)
	if len(got) != 2 {
		t.Fatalf("got %d stats, want 2", len(got))
	}
	if got[0].Cat != "ca" || got[0].Count != 1 || got[0].Total != 5000 {
		t.Errorf("stat[0] = %+v", got[0])
	}
	if got[1].Cat != "lifs" || got[1].Name != "phase" || got[1].Count != 2 || got[1].Total != 40000 {
		t.Errorf("stat[1] = %+v", got[1])
	}
}

func TestAdoptShiftsChildOffsets(t *testing.T) {
	parent := New()
	time.Sleep(2 * time.Millisecond)
	child := New()
	sp := child.Begin("lifs", "search", 0)
	sp.End()
	parent.Adopt(child)

	evs := parent.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1", len(evs))
	}
	if evs[0].Start < 2*time.Millisecond {
		t.Errorf("adopted event start %v not shifted past the epoch gap", evs[0].Start)
	}
}

func TestWriteChromeValidates(t *testing.T) {
	tr := New()
	root := tr.Begin("lifs", "search", 0)
	for k := 0; k < 2; k++ {
		ph := tr.Begin("lifs", "phase", 0)
		ph.Arg("budget", int64(k))
		u := tr.Begin("lifs", "task", int64(k+1))
		u.Info("worker", 0)
		u.End()
		ph.End()
	}
	root.End()
	tr.Emit(Event{Cat: "pool", Name: "task", Track: 9, Volatile: true, Start: tr.Now(), Dur: time.Microsecond})

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace does not validate: %v\n%s", err, buf.String())
	}
	for _, want := range []string{`"ph":"B"`, `"ph":"E"`, `"budget"`, `"process_name"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("trace JSON missing %s", want)
		}
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("empty trace does not validate: %v", err)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":      `{"traceEvents": [`,
		"no array":      `{"foo": 1}`,
		"unmatched E":   `{"traceEvents":[{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
		"unclosed B":    `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]}`,
		"name mismatch": `{"traceEvents":[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1},{"name":"y","ph":"E","ts":2,"pid":1,"tid":1}]}`,
		"backwards ts":  `{"traceEvents":[{"name":"x","ph":"B","ts":5,"pid":1,"tid":1},{"name":"x","ph":"E","ts":1,"pid":1,"tid":1}]}`,
	}
	for name, data := range cases {
		if err := ValidateChrome([]byte(data)); err == nil {
			t.Errorf("%s: ValidateChrome accepted invalid input", name)
		}
	}
}

// BenchmarkSpanDisabled measures the nil fast path (the cost added to an
// untraced search) against BenchmarkSpanEnabled.
func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("lifs", "phase", 0)
		sp.Arg("budget", 1)
		sp.End()
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("lifs", "phase", 0)
		sp.Arg("budget", 1)
		sp.End()
	}
	_ = tr.Events()
}

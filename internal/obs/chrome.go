package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event JSON export (the "JSON Array Format" consumed
// by chrome://tracing and Perfetto). Each span becomes a B/E event pair
// on (pid, tid), where pid identifies the producing subsystem (category)
// and tid the span's deterministic track. Timestamps are microseconds
// from the trace epoch.

// chromeEvent is one trace-event object on the wire.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// chromeMeta is a metadata (ph "M") event naming a process row.
type chromeMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int64             `json:"pid"`
	TID  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []json.RawMessage `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
}

// Well-known categories keep stable process ids so traces of different
// runs line up row-for-row in the viewer.
var catPIDs = map[string]int64{
	"lifs":    1,
	"ca":      2,
	"manager": 3,
	"job":     4,
	"pool":    5,
}

// pidFor assigns process ids: well-known categories get their fixed id,
// unknown ones are numbered deterministically from 10 in sorted order.
func pidFor(events []Event) func(cat string) int64 {
	var unknown []string
	seen := map[string]bool{}
	for _, ev := range events {
		if _, ok := catPIDs[ev.Cat]; !ok && !seen[ev.Cat] {
			seen[ev.Cat] = true
			unknown = append(unknown, ev.Cat)
		}
	}
	sort.Strings(unknown)
	extra := make(map[string]int64, len(unknown))
	for i, cat := range unknown {
		extra[cat] = int64(10 + i)
	}
	return func(cat string) int64 {
		if pid, ok := catPIDs[cat]; ok {
			return pid
		}
		return extra[cat]
	}
}

// WriteChrome renders the tracer's events as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChrome(w, t.Events())
}

// WriteChrome renders events as Chrome trace-event JSON. Events are
// grouped per (pid, tid) lane and each lane is emitted as properly
// nested B/E pairs in non-decreasing timestamp order; children measured
// with wall-clock jitter are clamped into their parent's interval so
// the pairing stays consistent.
func WriteChrome(w io.Writer, events []Event) error {
	pid := pidFor(events)

	type lane struct {
		pid, tid int64
		evs      []Event
	}
	lanes := map[[2]int64]*lane{}
	for _, ev := range events {
		k := [2]int64{pid(ev.Cat), ev.Track}
		l, ok := lanes[k]
		if !ok {
			l = &lane{pid: k[0], tid: k[1]}
			lanes[k] = l
		}
		l.evs = append(l.evs, ev)
	}
	keys := make([][2]int64, 0, len(lanes))
	for k := range lanes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})

	out := []json.RawMessage{}
	add := func(v any) error {
		raw, err := json.Marshal(v)
		if err != nil {
			return err
		}
		out = append(out, raw)
		return nil
	}

	// Name the process rows after their categories.
	named := map[int64]bool{}
	for _, ev := range events {
		p := pid(ev.Cat)
		if named[p] {
			continue
		}
		named[p] = true
		if err := add(chromeMeta{
			Name: "process_name", Ph: "M", PID: p,
			Args: map[string]string{"name": ev.Cat},
		}); err != nil {
			return err
		}
	}

	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, k := range keys {
		l := lanes[k]
		// Nesting order: by start ascending, longer span first on ties,
		// so a parent always precedes the children it encloses.
		sort.SliceStable(l.evs, func(i, j int) bool {
			if l.evs[i].Start != l.evs[j].Start {
				return l.evs[i].Start < l.evs[j].Start
			}
			return l.evs[i].Dur > l.evs[j].Dur
		})
		type open struct {
			ev  Event
			end int64 // ns, possibly clamped
		}
		var stack []open
		pop := func() error {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return add(chromeEvent{
				Name: top.ev.Name, Cat: top.ev.Cat, Ph: "E",
				TS: us(top.end), PID: l.pid, TID: l.tid,
			})
		}
		for _, ev := range l.evs {
			start := ev.Start.Nanoseconds()
			end := start + ev.Dur.Nanoseconds()
			for len(stack) > 0 && stack[len(stack)-1].end <= start {
				if err := pop(); err != nil {
					return err
				}
			}
			// Clamp wall-clock jitter: a child may not outlive the
			// enclosing span it logically nests in.
			if len(stack) > 0 {
				if pe := stack[len(stack)-1].end; end > pe {
					end = pe
				}
			}
			if end < start {
				end = start
			}
			args := make(map[string]int64, len(ev.Args)+len(ev.Info))
			for _, a := range ev.Args {
				args[a.Key] = a.Val
			}
			for _, a := range ev.Info {
				args[a.Key] = a.Val
			}
			if len(args) == 0 {
				args = nil
			}
			if err := add(chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "B",
				TS: us(start), PID: l.pid, TID: l.tid, Args: args,
			}); err != nil {
				return err
			}
			stack = append(stack, open{ev: ev, end: end})
		}
		for len(stack) > 0 {
			if err := pop(); err != nil {
				return err
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: out, DisplayTimeUnit: "ms"})
}

// ValidateChrome checks that data is a well-formed Chrome trace-event
// JSON file as this package emits it: valid JSON with a traceEvents
// array, and per (pid, tid) lane the B/E events pair up in array order
// with non-decreasing, properly nested timestamps. The tracer tests and
// the CI artifact check both go through this.
func ValidateChrome(data []byte) error {
	var tr struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			PID  int64    `json:"pid"`
			TID  int64    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("obs: trace is not valid JSON: %w", err)
	}
	if tr.TraceEvents == nil {
		return fmt.Errorf("obs: trace has no traceEvents array")
	}
	type frame struct {
		name string
		ts   float64
	}
	stacks := map[[2]int64][]frame{}
	lastTS := map[[2]int64]float64{}
	for i, ev := range tr.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "B", "E":
		default:
			return fmt.Errorf("obs: event %d: unexpected phase %q", i, ev.Ph)
		}
		if ev.TS == nil {
			return fmt.Errorf("obs: event %d (%s %q): missing ts", i, ev.Ph, ev.Name)
		}
		k := [2]int64{ev.PID, ev.TID}
		if last, ok := lastTS[k]; ok && *ev.TS < last {
			return fmt.Errorf("obs: event %d (%s %q): timestamp %v goes backwards on pid=%d tid=%d (last %v)",
				i, ev.Ph, ev.Name, *ev.TS, ev.PID, ev.TID, last)
		}
		lastTS[k] = *ev.TS
		switch ev.Ph {
		case "B":
			stacks[k] = append(stacks[k], frame{name: ev.Name, ts: *ev.TS})
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return fmt.Errorf("obs: event %d: E %q without matching B on pid=%d tid=%d", i, ev.Name, ev.PID, ev.TID)
			}
			top := st[len(st)-1]
			if top.name != ev.Name {
				return fmt.Errorf("obs: event %d: E %q does not match open B %q on pid=%d tid=%d", i, ev.Name, top.name, ev.PID, ev.TID)
			}
			if *ev.TS < top.ts {
				return fmt.Errorf("obs: event %d: E %q at %v ends before its B at %v", i, ev.Name, *ev.TS, top.ts)
			}
			stacks[k] = st[:len(st)-1]
		}
	}
	for k, st := range stacks {
		if len(st) > 0 {
			return fmt.Errorf("obs: %d unclosed B event(s) on pid=%d tid=%d (first %q)", len(st), k[0], k[1], st[0].name)
		}
	}
	return nil
}

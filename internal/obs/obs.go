// Package obs is the execution-tracing layer of the pipeline: a
// lightweight span tracer threaded through the LIFS search phases, the
// worker pools, the causality flip tests and the service job lifecycle.
//
// The design has two hard requirements:
//
//   - Zero cost when disabled. Every entry point is a method on a
//     possibly-nil *Tracer (or on the Span value it returned); the nil
//     fast path performs no allocation and no atomic operation, so an
//     untraced search runs the exact PR-2 hot path.
//
//   - Deterministic event ordering under parallel search. Spans carry
//     two kinds of payload: Args are deterministic counters (unit
//     ordinal, preemption budget, verdict, ...) that are identical for
//     Workers=1 and Workers=N, while Info carries timing and placement
//     facts (wall durations, worker slot) that are not. Producers commit
//     spans in canonical order (unit ordinal, flip index, slice index) —
//     never in completion order — and mark spans whose very existence
//     depends on scheduling (pool dispatch) as Volatile. The Canonical
//     projection drops Info, timing and Volatile spans, and is what the
//     determinism tests and diffable artifacts compare.
//
// Traces export as Chrome trace-event JSON (chrome://tracing, Perfetto);
// see chrome.go. Summarize aggregates spans per category/name for
// ResultSummary and /metrics.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Arg is one key/value pair attached to a span.
type Arg struct {
	Key string
	Val int64
}

// Event is one completed span. Start and Dur are wall-clock offsets
// relative to the tracer's creation (the trace epoch).
type Event struct {
	// Cat groups spans by subsystem ("lifs", "ca", "pool", "manager",
	// "job"). The Chrome export maps each category to its own process
	// row.
	Cat string
	// Name is the span type within the category ("phase", "probe",
	// "task", "flip", ...).
	Name string
	// Track is the deterministic lane (Chrome tid) the span renders on:
	// unit ordinal, flip index, slice index — never a goroutine or
	// worker identity.
	Track int64
	// Start and Dur are wall-clock measurements relative to the trace
	// epoch. They vary run to run and are excluded from Canonical.
	Start, Dur time.Duration
	// Args are deterministic counters: identical across worker counts.
	Args []Arg
	// Info are informational values (worker slot, schedule counts under
	// parallel pruning, byte costs) excluded from Canonical.
	Info []Arg
	// Volatile marks spans whose existence depends on runtime
	// scheduling (e.g. pool dispatch of units that a lower-ordinal
	// winner would have cut off). Volatile spans are excluded from
	// Canonical entirely.
	Volatile bool
}

// Tracer collects spans. The zero value is not usable; a nil *Tracer is:
// every method no-ops, so callers thread an optional tracer without
// branching. All methods are safe for concurrent use.
type Tracer struct {
	epoch time.Time

	mu     sync.Mutex
	events []Event
}

// New returns an enabled tracer whose epoch is now.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether spans are being collected.
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the wall offset since the trace epoch (0 when disabled).
func (t *Tracer) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Emit appends a completed event. Producers that must commit in
// canonical order measure spans locally (Tracer.Now) and Emit them from
// their single-threaded merge step.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a snapshot copy of the collected events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Adopt appends a child tracer's events, shifting their Start offsets by
// the difference of the two epochs so wall times stay aligned. The
// manager uses per-slice child tracers and adopts only the winning
// slice's, keeping the merged trace independent of slice completion
// order.
func (t *Tracer) Adopt(child *Tracer) {
	if t == nil || child == nil {
		return
	}
	shift := child.epoch.Sub(t.epoch)
	child.mu.Lock()
	evs := append([]Event(nil), child.events...)
	child.mu.Unlock()
	t.mu.Lock()
	for _, ev := range evs {
		ev.Start += shift
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Span is an in-flight span. It is a value: beginning a span on a nil
// tracer costs nothing and End on it is a no-op.
type Span struct {
	t     *Tracer
	start time.Duration
	ev    Event
}

// Begin opens a span; close it with End. The nil fast path returns a
// dead Span without touching the clock.
func (t *Tracer) Begin(cat, name string, track int64) Span {
	if t == nil {
		return Span{}
	}
	return Span{
		t:     t,
		start: time.Since(t.epoch),
		ev:    Event{Cat: cat, Name: name, Track: track},
	}
}

// Arg attaches a deterministic counter to the span.
func (sp *Span) Arg(key string, val int64) {
	if sp.t == nil {
		return
	}
	sp.ev.Args = append(sp.ev.Args, Arg{Key: key, Val: val})
}

// Info attaches an informational (non-canonical) value to the span.
func (sp *Span) Info(key string, val int64) {
	if sp.t == nil {
		return
	}
	sp.ev.Info = append(sp.ev.Info, Arg{Key: key, Val: val})
}

// Volatile marks the span as scheduling-dependent: it is dropped from
// the Canonical projection entirely. Fleet spans (lease grants,
// handoffs, remote branch executions) are Volatile — which node ran a
// branch, and how many times a lost lease forced a re-execution, are
// placement facts, not search facts.
func (sp *Span) Volatile() {
	if sp.t == nil {
		return
	}
	sp.ev.Volatile = true
}

// End closes the span and commits it.
func (sp *Span) End() {
	if sp.t == nil {
		return
	}
	sp.ev.Start = sp.start
	sp.ev.Dur = time.Since(sp.t.epoch) - sp.start
	sp.t.Emit(sp.ev)
}

// Canonical projects events onto their deterministic content: one line
// per non-volatile event, in commit order, with category, name, track
// and Args — no timing, no Info. Two runs of the same search are
// byte-identical under Canonical regardless of worker count; the
// determinism tests and golden artifacts compare exactly this.
func Canonical(events []Event) []string {
	var out []string
	for _, ev := range events {
		if ev.Volatile {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%s/%s tid=%d", ev.Cat, ev.Name, ev.Track)
		for _, a := range ev.Args {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Val)
		}
		out = append(out, b.String())
	}
	return out
}

// SpanStat aggregates the spans of one (category, name) pair.
type SpanStat struct {
	Cat   string `json:"cat"`
	Name  string `json:"name"`
	Count int    `json:"count"`
	Total int64  `json:"total_ns"`
}

// Summarize aggregates events per (category, name), sorted by category
// then name — the per-phase summary surfaced in ResultSummary and
// /metrics.
func Summarize(events []Event) []SpanStat {
	type key struct{ cat, name string }
	agg := make(map[key]*SpanStat)
	for _, ev := range events {
		k := key{ev.Cat, ev.Name}
		st, ok := agg[k]
		if !ok {
			st = &SpanStat{Cat: ev.Cat, Name: ev.Name}
			agg[k] = st
		}
		st.Count++
		st.Total += ev.Dur.Nanoseconds()
	}
	out := make([]SpanStat, 0, len(agg))
	for _, st := range agg {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

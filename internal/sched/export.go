package sched

import (
	"sort"

	"aitia/internal/kir"
)

// AccessExport is the serializable form of one AccessMap entry: a site's
// observed access to an address, split into read/write flags. It exists
// for durable checkpoints — the in-memory AccessMap holds unexported
// nested maps that neither encoding/json nor a future format could reach.
type AccessExport struct {
	Thread string      `json:"t"`
	Instr  kir.InstrID `json:"i"`
	Addr   uint64      `json:"a"`
	Read   bool        `json:"r,omitempty"`
	Write  bool        `json:"w,omitempty"`
}

// Export flattens the map into a deterministic record list: sites in
// Sites() order, addresses ascending within a site. Import(Export()) is
// an identity (the map is a pure union of such records).
func (am *AccessMap) Export() []AccessExport {
	var out []AccessExport
	for _, s := range am.Sites() {
		byAddr := am.m[s]
		addrs := make([]uint64, 0, len(byAddr))
		for a := range byAddr {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			mode := byAddr[a]
			out = append(out, AccessExport{
				Thread: s.Thread,
				Instr:  s.Instr,
				Addr:   a,
				Read:   mode&modeRead != 0,
				Write:  mode&modeWrite != 0,
			})
		}
	}
	return out
}

// ImportAccessMap rebuilds an AccessMap from exported records.
func ImportAccessMap(recs []AccessExport) *AccessMap {
	am := NewAccessMap()
	for _, r := range recs {
		s := Site{Thread: r.Thread, Instr: r.Instr}
		if r.Read {
			am.Record(s, r.Addr, false)
		}
		if r.Write {
			am.Record(s, r.Addr, true)
		}
	}
	return am
}

package sched

import (
	"context"
	"fmt"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
)

// Options configure one enforced run.
type Options struct {
	// StepBudget bounds the number of executed instructions; exceeding it
	// ends the run with a watchdog (soft lockup) failure. Zero means
	// DefaultStepBudget.
	StepBudget int
	// LeakCheck runs the memory-leak check when all threads finish.
	LeakCheck bool

	// BaseSteps is the number of schedule steps already executed before
	// this run started — non-zero when the caller restored a prefix-cache
	// snapshot and enforces only a suffix schedule. Executed steps are
	// numbered, and the watchdog/stall budgets accounted, from BaseSteps,
	// so a suffix run behaves byte-identically to the tail of a full run.
	BaseSteps int

	// OnStep, when non-nil, is called after every executed step with the
	// cumulative schedule position (BaseSteps + steps executed so far).
	// The prefix cache uses it to pin snapshots along a replayed run
	// without re-stepping it.
	OnStep func(pos int)

	// Fault arms deterministic fault injection for this run: an
	// enforce-stall decision is drawn once at entry from (FaultOp,
	// FaultKey, FaultAttempt), and when it fires the run aborts with the
	// injected fault error after the drawn number of executed steps — as
	// if the VM had stopped making progress and the watchdog killed the
	// attempt. Nil (the default) disables injection entirely.
	Fault *faultinject.Plan
	// FaultOp labels the injection point (default "sched.enforce").
	FaultOp string
	// FaultKey is the operation's stable identity under the plan (e.g.
	// the flip-test index); FaultAttempt its retry ordinal.
	FaultKey     uint64
	FaultAttempt int

	// Ctx, when non-nil, is polled periodically during enforcement; once
	// it ends the run aborts with its error. This is how per-attempt
	// timeouts bound a stuck enforcement.
	Ctx context.Context
}

// ctxPollMask throttles Ctx polling to every 1024 loop iterations, off
// the per-step hot path.
const ctxPollMask = 1023

// DefaultStepBudget is the watchdog limit used when Options.StepBudget is
// zero. Scenario programs execute tens to hundreds of instructions; a run
// that needs more than this is stuck.
const DefaultStepBudget = 100000

// Enforcer drives one machine under schedules. It owns the machine between
// runs: Run resets nothing by itself — callers restore snapshots or Reset
// the machine. A typical loop is:
//
//	snap := m.Snapshot()
//	for _, sch := range schedules {
//	    res, err := enf.Run(sch)
//	    ...
//	    m.Restore(snap)
//	}
type Enforcer struct {
	m *kvm.Machine
}

// NewEnforcer wraps a machine.
func NewEnforcer(m *kvm.Machine) *Enforcer { return &Enforcer{m: m} }

// Machine returns the wrapped machine.
func (e *Enforcer) Machine() *kvm.Machine { return e.m }

// viable reports whether the thread can make progress right now.
func (e *Enforcer) viable(t *kvm.Thread) bool {
	if t == nil {
		return false
	}
	switch t.State {
	case kvm.Runnable:
		return true
	case kvm.Blocked:
		_, held := e.m.LockOwner(t.WaitLock)
		return !held
	default:
		return false
	}
}

// pick chooses the next thread when the schedule does not dictate one:
// first matching name in prefs, else the lowest-ID viable thread.
func (e *Enforcer) pick(prefs []string) kvm.ThreadID {
	for _, name := range prefs {
		if t := e.m.ThreadByName(name); e.viable(t) {
			return t.ID
		}
	}
	for _, tid := range e.m.Runnable() {
		return tid
	}
	return kvm.NoThread
}

// Run executes the machine under the schedule until failure, completion,
// deadlock or watchdog. It returns the totally ordered executed sequence.
func (e *Enforcer) Run(sch Schedule, opts Options) (*RunResult, error) {
	budget := opts.StepBudget
	if budget <= 0 {
		budget = DefaultStepBudget
	}
	faultOp := opts.FaultOp
	if faultOp == "" {
		faultOp = "sched.enforce"
	}
	// Drawn once at entry: the whole run's stall fate is fixed by the
	// operation identity, never by execution order.
	stallAt := opts.Fault.StallStep(faultOp, opts.FaultKey, opts.FaultAttempt)
	var ticks uint
	res := &RunResult{Threads: make(map[string]kvm.ThreadState)}
	pending := append([]Point(nil), sch.Points...) // Skip counters are consumed
	var returnStack []kvm.ThreadID

	cur := kvm.NoThread
	if t := e.m.ThreadByName(sch.Initial); t != nil {
		cur = t.ID
	} else {
		cur = e.pick(sch.Fallback)
	}

	finish := func() *RunResult {
		res.Failure = e.m.Failure()
		res.Missed += len(pending)
		for i := 0; i < e.m.NumThreads(); i++ {
			t := e.m.Thread(kvm.ThreadID(i))
			res.Threads[t.Name] = t.State
		}
		return res
	}

	for {
		if ticks++; ticks&ctxPollMask == 0 && opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, err
			}
		}
		if e.m.Failure() != nil {
			return finish(), nil
		}
		if e.m.AllDone() {
			if opts.LeakCheck {
				e.m.CheckLeaks()
			}
			return finish(), nil
		}
		if e.m.Deadlocked() {
			e.failDeadlock()
			return finish(), nil
		}

		// Drop points whose Run thread can never hit them anymore; a
		// missed breakpoint still performs its switch (the paper's
		// race-steered control flow makes breakpoints unreachable — the
		// schedule continues with the next thread regardless).
		progressed := true
		for progressed && len(pending) > 0 {
			progressed = false
			rt := e.m.ThreadByName(pending[0].Run)
			if rt != nil && (rt.State == kvm.Done || rt.State == kvm.Crashed) {
				to := e.m.ThreadByName(pending[0].To)
				pending = pending[1:]
				res.Missed++
				if e.viable(to) {
					cur = to.ID
				}
				progressed = true
			}
		}

		// Return from a lock diversion as soon as the original thread can
		// run again, so the intended schedule resumes.
		if n := len(returnStack); n > 0 {
			if t := e.m.Thread(returnStack[n-1]); e.viable(t) {
				cur = t.ID
				returnStack = returnStack[:n-1]
			} else if t == nil || t.State == kvm.Done || t.State == kvm.Crashed {
				returnStack = returnStack[:n-1]
				continue
			}
		}

		curT := e.m.Thread(cur)
		if !e.viable(curT) {
			if curT != nil && curT.State == kvm.Blocked {
				// Liveness (paper §3.4): the suspended thread holds the
				// lock; run the owner until it releases.
				if owner, held := e.m.LockOwner(curT.WaitLock); held {
					returnStack = append(returnStack, cur)
					cur = owner
					res.Switches++
					continue
				}
			}
			next := e.pick(sch.Fallback)
			if next == kvm.NoThread {
				e.failDeadlock()
				return finish(), nil
			}
			if next != cur {
				res.Switches++
			}
			cur = next
			continue
		}

		// Pre-execution breakpoint.
		if len(pending) > 0 && !pending[0].After && pending[0].Run == curT.Name {
			if next, ok := e.m.NextInstr(cur); ok && next.ID == pending[0].At {
				if pending[0].Skip > 0 {
					pending[0].Skip--
				} else {
					to := e.m.ThreadByName(pending[0].To)
					pending = pending[1:]
					if to != nil && to.ID != cur && (e.viable(to) || to.State == kvm.Blocked) {
						cur = to.ID
						res.Switches++
						continue
					}
					res.Missed++
					continue
				}
			}
		}

		ev, err := e.m.Step(cur)
		if err != nil {
			return nil, fmt.Errorf("sched: step thread %d: %w", cur, err)
		}
		if !ev.Executed {
			// Blocked on a held lock: divert to the owner (liveness).
			owner, held := e.m.LockOwner(curT.WaitLock)
			if !held {
				continue // released in the meantime; retry
			}
			returnStack = append(returnStack, cur)
			cur = owner
			res.Switches++
			continue
		}

		exec := Exec{
			Step:   opts.BaseSteps + len(res.Seq),
			Thread: cur,
			Name:   curT.Name,
			Instr:  ev.Instr,
		}
		if len(ev.Accesses) > 0 {
			exec.Accesses = make([]AccessRec, len(ev.Accesses))
			for i, a := range ev.Accesses {
				exec.Accesses[i] = AccessRec{Addr: a.Addr, Write: a.Write}
			}
		}
		if len(curT.Locks) > 0 {
			exec.Lockset = append([]uint64(nil), curT.Locks...)
		}
		if ev.Spawned != kvm.NoThread {
			exec.Spawned = e.m.Thread(ev.Spawned).Name
		}
		res.Seq = append(res.Seq, exec)
		if opts.OnStep != nil {
			opts.OnStep(opts.BaseSteps + len(res.Seq))
		}

		if stallAt >= 0 && opts.BaseSteps+len(res.Seq) > stallAt {
			return nil, &faultinject.Fault{
				Kind:    faultinject.KindEnforceStall,
				Op:      faultOp,
				Key:     opts.FaultKey,
				Attempt: opts.FaultAttempt,
			}
		}
		if opts.BaseSteps+len(res.Seq) > budget {
			e.failWatchdog(curT, ev.Instr.ID)
			return finish(), nil
		}

		// Post-execution breakpoint (used to run a thread *through* an
		// instruction, e.g. "run B until it has executed Y, then resume").
		if len(pending) > 0 && pending[0].After && pending[0].Run == curT.Name && ev.Instr.ID == pending[0].At {
			if pending[0].Skip > 0 {
				pending[0].Skip--
			} else {
				to := e.m.ThreadByName(pending[0].To)
				pending = pending[1:]
				if to != nil && to.ID != cur && (e.viable(to) || to.State == kvm.Blocked) {
					cur = to.ID
					res.Switches++
				}
			}
		}
	}
}

// failDeadlock records a synthetic deadlock failure on a blocked thread.
func (e *Enforcer) failDeadlock() {
	for i := 0; i < e.m.NumThreads(); i++ {
		t := e.m.Thread(kvm.ThreadID(i))
		if t.State == kvm.Blocked {
			in, _ := e.m.NextInstr(t.ID)
			e.m.InjectFailure(&sanitizer.Failure{
				Kind:   sanitizer.KindDeadlock,
				Thread: t.Name,
				Instr:  in.ID,
				Addr:   t.WaitLock,
				Msg:    "all unfinished threads are blocked",
			})
			return
		}
	}
	e.m.InjectFailure(&sanitizer.Failure{Kind: sanitizer.KindDeadlock, Instr: kir.NoInstr, Msg: "no runnable thread"})
}

// failWatchdog records a soft-lockup failure.
func (e *Enforcer) failWatchdog(t *kvm.Thread, at kir.InstrID) {
	e.m.InjectFailure(&sanitizer.Failure{
		Kind:   sanitizer.KindWatchdog,
		Thread: t.Name,
		Instr:  at,
		Msg:    "step budget exceeded",
	})
}

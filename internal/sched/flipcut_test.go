package sched

import (
	"reflect"
	"testing"

	"aitia/internal/kvm"
)

// failingPhantomRun reproduces the canonical failing run of phantomProg
// (A executes A1, B fails at B3 before A2 runs) and returns the machine,
// its initial snapshot, the run and its full race set (concrete plus
// phantom).
func failingPhantomRun(t *testing.T) (*kvm.Machine, *kvm.Snapshot, *RunResult, []Race) {
	t.Helper()
	prog := phantomProg(t)
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	am := NewAccessMap()
	init := m.Snapshot()
	res0, err := NewEnforcer(m).Run(Serial("A", "B"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	am.RecordRun(res0)

	m.Restore(init)
	a2, _ := prog.ByLabel("A2")
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: a2.ID, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("run did not fail: %s", res.FormatSeq(prog, false))
	}
	am.RecordRun(res)
	races := append(ExtractRaces(res), PhantomRaces(res, am)...)
	if len(races) == 0 {
		t.Fatal("no races in the failing run")
	}
	return m, init, res, races
}

// TestPlanFlipFromMatchesFullPlan is the contract the prefix cache is
// built on: for any race, enforcing the suffix plan from the flip cut —
// after bringing the machine to that position by replaying the recorded
// sequence — produces exactly the steps and failure that enforcing the
// full flip plan from the initial state produces, and the full plan's
// prefix is the recorded sequence verbatim.
func TestPlanFlipFromMatchesFullPlan(t *testing.T) {
	m, init, res, races := failingPhantomRun(t)
	fallback := []string{"A", "B"}
	fo := FlipOptions{}
	for i, r := range races {
		cut := FlipCut(res.Seq, r, fo)
		if cut < 0 || cut > len(res.Seq) {
			t.Fatalf("race %d: cut = %d out of range [0, %d]", i, cut, len(res.Seq))
		}
		full := PlanFlipOpt(res.Seq, r, fallback, fo)
		suffix := PlanFlipFrom(res.Seq, r, fallback, fo, cut)

		m.Restore(init)
		fres, err := NewEnforcer(m).Run(full, Options{})
		if err != nil {
			t.Fatalf("race %d: full plan: %v", i, err)
		}
		// The full plan replays the recorded sequence verbatim up to the
		// cut — the shared prefix the cache gets to skip.
		if !reflect.DeepEqual(fres.Seq[:cut], res.Seq[:cut]) {
			t.Errorf("race %d: full plan diverged from the recorded prefix before the cut", i)
		}

		m.Restore(init)
		for j := 0; j < cut; j++ {
			ev, err := m.Step(res.Seq[j].Thread)
			if err != nil || !ev.Executed {
				t.Fatalf("race %d: prefix replay step %d: executed=%v err=%v", i, j, ev.Executed, err)
			}
		}
		sres, err := NewEnforcer(m).Run(suffix, Options{BaseSteps: cut})
		if err != nil {
			t.Fatalf("race %d: suffix plan: %v", i, err)
		}

		if !reflect.DeepEqual(fres.Seq[cut:], sres.Seq) {
			t.Errorf("race %d: suffix steps differ from the full plan's tail\nfull tail: %v\nsuffix:    %v",
				i, fres.Seq[cut:], sres.Seq)
		}
		if !reflect.DeepEqual(fres.Failure, sres.Failure) {
			t.Errorf("race %d: failures differ: %v vs %v", i, fres.Failure, sres.Failure)
		}
	}
}

// TestEnforcerOnStepPositions: the OnStep hook fires once per executed
// step with the cumulative schedule position (BaseSteps + steps so far) —
// the positions the prefix cache pins at.
func TestEnforcerOnStepPositions(t *testing.T) {
	m, init, _, _ := failingPhantomRun(t)
	m.Restore(init)
	const base = 3
	var got []int
	rr, err := NewEnforcer(m).Run(Serial("A", "B"), Options{
		BaseSteps: base,
		OnStep:    func(pos int) { got = append(got, pos) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rr.Seq) {
		t.Fatalf("OnStep fired %d times for %d executed steps", len(got), len(rr.Seq))
	}
	for i, pos := range got {
		if pos != base+i+1 {
			t.Fatalf("OnStep[%d] = %d, want %d", i, pos, base+i+1)
		}
	}
}

// Package sched provides fine-grained control over kernel-VM execution:
// schedules made of breakpoint-style switch points, an enforcement engine
// that runs a machine under a schedule (with missed-breakpoint and
// lock-liveness handling), and extraction of data races from run results.
//
// It corresponds to the AITIA hypervisor's control plane (paper §4.3–§4.4):
// "run thread T until it is about to execute instruction I, then suspend it
// and resume thread U" — with a never-hit breakpoint simply being skipped,
// exactly as a hardware breakpoint that is never reached.
package sched

import (
	"fmt"

	"aitia/internal/kir"
)

// Point is one scheduling point: while thread Run is executing, when it is
// about to execute (or, with After set, has just executed) instruction At,
// suspend it and resume thread To. Threads are identified by name, which is
// stable across runs of the same program (see kvm spawned-thread naming).
type Point struct {
	Run   string
	At    kir.InstrID
	After bool
	To    string
	// Skip is the number of times the (Run, At) condition matches while
	// this point is pending before it fires — needed when the breakpoint
	// instruction executes several times (loops, repeated calls) before
	// the intended switch position.
	Skip int
}

// String renders the point for logs and test failures.
func (p Point) String() string {
	when := "before"
	if p.After {
		when = "after"
	}
	s := fmt.Sprintf("%s@%d(%s)->%s", p.Run, p.At, when, p.To)
	if p.Skip > 0 {
		s += fmt.Sprintf("+%d", p.Skip)
	}
	return s
}

// Schedule specifies one controlled execution: the initially running
// thread, the ordered switch points to enforce, and a fallback preference
// order used whenever the current thread cannot continue (finished,
// crashed, or a point was missed) and the schedule does not say what to run
// next.
type Schedule struct {
	Initial  string
	Points   []Point
	Fallback []string
}

// Serial returns a schedule with no interleaving: run the given threads to
// completion in order. It is the interleaving-count-0 schedule of LIFS.
func Serial(order ...string) Schedule {
	if len(order) == 0 {
		return Schedule{}
	}
	return Schedule{Initial: order[0], Fallback: order}
}

// String renders the schedule compactly.
func (s Schedule) String() string {
	out := "start=" + s.Initial
	for _, p := range s.Points {
		out += " " + p.String()
	}
	return out
}

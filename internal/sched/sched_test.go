package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
)

// racyProg: two threads, two variables, one race-steered control flow.
func racyProg(t testing.TB) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	b.Var("x", 0)
	b.Var("y", 0)
	fa := b.Func("fa")
	fa.Store(kir.G("x"), kir.Imm(1)).L("A1")
	fa.Load(kir.R1, kir.G("y")).L("A2")
	fa.Ret()
	fb := b.Func("fb")
	fb.Load(kir.R1, kir.G("x")).L("B1")
	fb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	fb.Store(kir.G("y"), kir.Imm(1)).L("B2")
	fb.At("out").Ret()
	b.Thread("A", "fa")
	b.Thread("B", "fb")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func machine(t testing.TB, prog *kir.Program) *kvm.Machine {
	t.Helper()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSerialSchedule(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	res, err := NewEnforcer(m).Run(Serial("B", "A"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("unexpected failure: %v", res.Failure)
	}
	// B first: B1 reads 0, B returns early, then A runs.
	if got := res.FormatSeq(prog, false); got != "B1 => A1 => A2" {
		t.Errorf("seq = %q", got)
	}
	if res.Threads["A"] != kvm.Done || res.Threads["B"] != kvm.Done {
		t.Errorf("final states: %v", res.Threads)
	}
}

func TestPreExecBreakpoint(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	a2, _ := prog.ByLabel("A2")
	// Run A until it is about to execute A2, then switch to B.
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: a2.ID, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := "A1 => B1 => B2 => A2"
	if got := res.FormatSeq(prog, false); got != want {
		t.Errorf("seq = %q, want %q", got, want)
	}
	if res.Switches == 0 {
		t.Error("no switches recorded")
	}
}

func TestAfterExecBreakpointAndSkip(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("n", 0)
	f := b.Func("loop")
	f.Mov(kir.R1, kir.Imm(0))
	f.At("top")
	f.Store(kir.G("n"), kir.R(kir.R1)).L("L1")
	f.Add(kir.R1, kir.Imm(1))
	f.Blt(kir.R(kir.R1), kir.Imm(3), "top")
	f.Ret()
	g := b.Func("other")
	g.Load(kir.R2, kir.G("n")).L("O1")
	g.Ret()
	b.Thread("A", "loop")
	b.Thread("B", "other")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l1, _ := prog.ByLabel("L1")

	// Switch after the SECOND execution of L1 (Skip=1).
	m := machine(t, prog)
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: l1.ID, After: true, Skip: 1, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// B's O1 must read n == 1 (after the second store, which wrote 1).
	for _, e := range res.Seq {
		if e.Instr.Label == "O1" {
			// find B's position: the two L1 executions precede it
			count := 0
			for _, e2 := range res.Seq[:e.Step] {
				if e2.Instr.Label == "L1" {
					count++
				}
			}
			if count != 2 {
				t.Errorf("O1 ran after %d L1 executions, want 2", count)
			}
		}
	}
}

func TestMissedBreakpointIsSkipped(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	b2, _ := prog.ByLabel("B2")
	// Start B: B1 reads x == 0, so B2 never executes — the breakpoint on
	// B2 is missed and the schedule continues.
	sch := Schedule{
		Initial:  "B",
		Points:   []Point{{Run: "B", At: b2.ID, To: "A"}},
		Fallback: []string{"B", "A"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed == 0 {
		t.Error("missed breakpoint not recorded")
	}
	if res.Failed() {
		t.Errorf("failure: %v", res.Failure)
	}
	if got := res.FormatSeq(prog, false); got != "B1 => A1 => A2" {
		t.Errorf("seq = %q", got)
	}
}

func TestLockDiversionKeepsLiveness(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("mu", 0)
	b.Var("g", 0)
	f := b.Func("crit")
	f.Lock(kir.G("mu")).L("C0")
	f.Load(kir.R1, kir.G("g")).L("C1")
	f.Add(kir.R1, kir.Imm(1))
	f.Store(kir.G("g"), kir.R(kir.R1)).L("C2")
	f.Unlock(kir.G("mu")).L("C3")
	f.Ret()
	b.Thread("A", "crit")
	b.Thread("B", "crit")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t, prog)
	c1, _ := prog.ByLabel("C1")
	// Suspend A inside its critical section and switch to B; B blocks on
	// the lock, and the enforcer must divert back to A (the owner) and
	// then return to B.
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: c1.ID, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		t.Fatalf("failure: %v", res.Failure)
	}
	addr, _ := m.Space().GlobalAddr("g")
	if v, _ := m.Space().Load(addr); v != 2 {
		t.Errorf("g = %d, want 2 (both critical sections ran)", v)
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("mu1", 0)
	b.Var("mu2", 0)
	fa := b.Func("fa")
	fa.Lock(kir.G("mu1"))
	fa.Lock(kir.G("mu2"))
	fa.Unlock(kir.G("mu2"))
	fa.Unlock(kir.G("mu1"))
	fa.Ret()
	fb := b.Func("fb")
	fb.Lock(kir.G("mu2"))
	fb.Lock(kir.G("mu1"))
	fb.Unlock(kir.G("mu1"))
	fb.Unlock(kir.G("mu2"))
	fb.Ret()
	b.Thread("A", "fa")
	b.Thread("B", "fb")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t, prog)
	// A takes mu1, switch to B (takes mu2, blocks on mu1), diversion back
	// to A which blocks on mu2: a real ABBA deadlock.
	in2, _ := m.NextInstr(0)
	_ = in2
	fa2 := prog.Funcs["fa"].Instrs[1] // A's second lock
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: fa2.ID, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.Failure.Kind != sanitizer.KindDeadlock {
		t.Errorf("failure = %v, want deadlock", res.Failure)
	}
}

func TestWatchdog(t *testing.T) {
	b := kir.NewBuilder()
	b.Var("g", 0)
	f := b.Func("spin")
	f.At("top")
	f.Jmp("top")
	b.Thread("A", "spin")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m := machine(t, prog)
	res, err := NewEnforcer(m).Run(Serial("A"), Options{StepBudget: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() || res.Failure.Kind != sanitizer.KindWatchdog {
		t.Errorf("failure = %v, want watchdog", res.Failure)
	}
}

func TestExtractRacesOrderAndDedup(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	a2, _ := prog.ByLabel("A2")
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: a2.ID, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	races := ExtractRaces(res)
	if len(races) != 2 {
		t.Fatalf("races = %d, want 2", len(races))
	}
	// Sorted by position of the later access.
	if prog.InstrName(races[0].First.Instr) != "A1" || prog.InstrName(races[0].Second.Instr) != "B1" {
		t.Errorf("race[0] = %s", races[0].Format(prog))
	}
	if prog.InstrName(races[1].First.Instr) != "B2" || prog.InstrName(races[1].Second.Instr) != "A2" {
		t.Errorf("race[1] = %s", races[1].Format(prog))
	}
	if races[0].LastStep() > races[1].LastStep() {
		t.Error("races not ordered by LastStep")
	}
}

func TestRaceOrderAndOccurrence(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	a2, _ := prog.ByLabel("A2")
	sch := Schedule{Initial: "A", Points: []Point{{Run: "A", At: a2.ID, To: "B"}}, Fallback: []string{"A", "B"}}
	res, _ := NewEnforcer(m).Run(sch, Options{})
	races := ExtractRaces(res)
	for _, r := range races {
		if !RaceOccurred(res, r) {
			t.Errorf("race %s did not occur in its own run", r.Format(prog))
		}
		if RaceOrder(res, r) != 1 {
			t.Errorf("race %s order = %d, want +1", r.Format(prog), RaceOrder(res, r))
		}
	}
	// In the all-serial B-first run, the x race does not occur (B1 reads
	// before A1 writes — wait, that IS a conflicting pair; but B2 never
	// runs, so the y race vanishes).
	m2 := machine(t, prog)
	res2, _ := NewEnforcer(m2).Run(Serial("B", "A"), Options{})
	for _, r := range races {
		if prog.InstrName(r.Second.Instr) == "A2" && RaceOccurred(res2, r) {
			t.Error("y race should not occur when B returns early")
		}
	}
}

// TestFromSeqReplayProperty: replaying FromSeq(seq) under the enforcer
// reproduces exactly the same sequence, for arbitrary random schedules —
// the determinism Causality Analysis depends on.
func TestFromSeqReplayProperty(t *testing.T) {
	prog := racyProg(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine(t, prog)
		// Produce a random interleaving directly.
		var seq []Exec
		for !m.AllDone() && m.Failure() == nil {
			run := m.Runnable()
			if len(run) == 0 {
				break
			}
			tid := run[rng.Intn(len(run))]
			ev, err := m.Step(tid)
			if err != nil {
				return false
			}
			if !ev.Executed {
				continue
			}
			th := m.Thread(tid)
			e := Exec{Step: len(seq), Thread: tid, Name: th.Name, Instr: ev.Instr}
			for _, a := range ev.Accesses {
				e.Accesses = append(e.Accesses, AccessRec{Addr: a.Addr, Write: a.Write})
			}
			seq = append(seq, e)
		}
		sch := FromSeq(seq, []string{"A", "B"})
		m2 := machine(t, prog)
		res, err := NewEnforcer(m2).Run(sch, Options{})
		if err != nil {
			return false
		}
		if len(res.Seq) != len(seq) {
			return false
		}
		for i := range seq {
			if res.Seq[i].Name != seq[i].Name || res.Seq[i].Instr.ID != seq[i].Instr.ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFlipSeqProperties: for every race in a run, FlipSeq preserves
// per-thread program order, keeps the same multiset of entries, and
// reverses the race pair.
func TestFlipSeqProperties(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	a2, _ := prog.ByLabel("A2")
	sch := Schedule{Initial: "A", Points: []Point{{Run: "A", At: a2.ID, To: "B"}}, Fallback: []string{"A", "B"}}
	res, _ := NewEnforcer(m).Run(sch, Options{})
	for _, r := range ExtractRaces(res) {
		flipped := FlipSeq(res.Seq, r)
		if len(flipped) != len(res.Seq) {
			t.Fatalf("flip changed length: %d vs %d", len(flipped), len(res.Seq))
		}
		// Per-thread subsequences unchanged.
		perThread := func(seq []Exec) map[string][]kir.InstrID {
			out := make(map[string][]kir.InstrID)
			for _, e := range seq {
				out[e.Name] = append(out[e.Name], e.Instr.ID)
			}
			return out
		}
		want, got := perThread(res.Seq), perThread(flipped)
		for name := range want {
			if len(want[name]) != len(got[name]) {
				t.Fatalf("thread %s length changed", name)
			}
			for i := range want[name] {
				if want[name][i] != got[name][i] {
					t.Fatalf("thread %s program order changed", name)
				}
			}
		}
		// The pair is reversed: Second's position precedes First's.
		posFirst, posSecond := -1, -1
		for i, e := range flipped {
			if e.Site() == r.First && posFirst < 0 {
				posFirst = i
			}
			if e.Site() == r.Second && posSecond < 0 {
				posSecond = i
			}
		}
		if posFirst < 0 || posSecond < 0 || posSecond > posFirst {
			t.Errorf("flip of %s: First at %d, Second at %d", r.Format(prog), posFirst, posSecond)
		}
	}
}

func TestRepairSpawnOrder(t *testing.T) {
	// A spawns K at step 1; a reordering put K's step before the spawn.
	in := func(name string, id kir.InstrID, spawned string) Exec {
		return Exec{Name: name, Instr: kir.Instr{ID: id}, Spawned: spawned}
	}
	seq := []Exec{
		in("kworker:S", 10, ""), // violates: spawned at step 2
		in("A", 1, ""),
		in("A", 2, "kworker:S"),
		in("A", 3, ""),
	}
	fixed := repairSpawnOrder(seq)
	order := []string{}
	for _, e := range fixed {
		order = append(order, e.Name)
	}
	want := []string{"A", "A", "kworker:S", "A"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAccessMapConflicts(t *testing.T) {
	am := NewAccessMap()
	a := Site{Thread: "A", Instr: 1}
	b := Site{Thread: "B", Instr: 2}
	c := Site{Thread: "B", Instr: 3}
	am.Record(a, 100, false)
	am.Record(b, 100, true)
	am.Record(c, 200, false)

	if got := am.ConflictAddrs(a, b); len(got) != 1 || got[0] != 100 {
		t.Errorf("ConflictAddrs = %v", got)
	}
	if got := am.ConflictAddrs(a, c); len(got) != 0 {
		t.Errorf("read-read conflict: %v", got)
	}
	if !am.ConflictsAt("A", 100, false) {
		t.Error("A's read of 100 conflicts with B's write")
	}
	if !am.ConflictsAt("B", 100, true) {
		t.Error("B's write of 100 conflicts with A's read")
	}
	if am.ConflictsAt("B", 200, false) {
		t.Error("B's own accesses never self-conflict")
	}
	if am.ConflictsAt("A", 200, false) {
		t.Error("read-read is not a conflict")
	}
	if !am.ConflictsAt("A", 200, true) {
		t.Error("a write against a read is a conflict")
	}
	if len(am.Sites()) != 3 {
		t.Errorf("sites = %v", am.Sites())
	}
}

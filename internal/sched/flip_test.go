package sched

import (
	"strings"
	"testing"

	"aitia/internal/kir"
	"aitia/internal/kvm"
)

// phantomProg: thread B fails before thread A's conflicting access ever
// runs, so the A-side access is only known from other runs.
func phantomProg(t testing.TB) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	b.Var("list", 0)
	b.Var("flag", 0)
	fa := b.Func("fa")
	fa.Store(kir.G("flag"), kir.Imm(1)).L("A1")
	fa.ListAdd(kir.G("list"), kir.Imm(7)).L("A2")
	fa.Ret()
	fb := b.Func("fb")
	fb.Load(kir.R1, kir.G("flag")).L("B1")
	fb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
	fb.ListHas(kir.R2, kir.G("list"), kir.Imm(7)).L("B2")
	fb.Xor(kir.R2, kir.Imm(1))
	fb.BugOn(kir.R(kir.R2)).L("B3")
	fb.At("out").Ret()
	b.Thread("A", "fa")
	b.Thread("B", "fb")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestPhantomRacesAndFlip(t *testing.T) {
	prog := phantomProg(t)
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	am := NewAccessMap()

	// Teach the access map from a full serial run of A.
	init := m.Snapshot()
	res0, err := NewEnforcer(m).Run(Serial("A", "B"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	am.RecordRun(res0)

	// Failing run: A executes A1, B then fails at B3 before A2 ever runs.
	m.Restore(init)
	a2, _ := prog.ByLabel("A2")
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: a2.ID, To: "B"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed() {
		t.Fatalf("run did not fail: %s", res.FormatSeq(prog, false))
	}
	am.RecordRun(res)

	phantoms := PhantomRaces(res, am)
	if len(phantoms) != 1 {
		var got []string
		for _, r := range phantoms {
			got = append(got, r.FormatLong(prog))
		}
		t.Fatalf("phantoms = %v", got)
	}
	r := phantoms[0]
	if prog.InstrName(r.First.Instr) != "B2" || prog.InstrName(r.Second.Instr) != "A2" {
		t.Fatalf("phantom = %s", r.Format(prog))
	}
	if !r.Phantom || r.SecondStep != -1 {
		t.Errorf("phantom fields: %+v", r)
	}

	// Flipping the phantom lets A2 run before B2: no failure.
	m.Restore(init)
	plan := PlanFlip(res.Seq, r, []string{"A", "B"})
	res2, err := NewEnforcer(m).Run(plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed() {
		t.Errorf("phantom flip still failed: %v\nseq: %s", res2.Failure, res2.FormatSeq(prog, false))
	}
	if RaceOrder(res2, r) != -1 {
		t.Errorf("phantom flip order = %d, want -1 (A2 before B2)", RaceOrder(res2, r))
	}
}

func TestPlanPhantomFlipAtStepZero(t *testing.T) {
	prog := phantomProg(t)
	m0, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	flagAddr, _ := m0.Space().GlobalAddr("flag")
	// A synthetic phantom whose First access is the very first step.
	r := Race{
		First:      Site{Thread: "B", Instr: prog.MustByLabel("B1").ID},
		Second:     Site{Thread: "A", Instr: prog.MustByLabel("A1").ID},
		Addr:       flagAddr,
		FirstStep:  0,
		SecondStep: -1,
		Phantom:    true,
	}
	seq := []Exec{{Step: 0, Name: "B", Instr: prog.MustByLabel("B1")}}
	sch := PlanPhantomFlip(seq, r, []string{"A", "B"})
	if sch.Initial != "A" {
		t.Errorf("Initial = %q, want the Second thread", sch.Initial)
	}
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The flip must be realized: A1 (the phantom's Second) executes
	// before B1 (its First). The downstream BUG is the program's
	// legitimate behaviour under that order and is irrelevant here.
	if got := RaceOrder(res, r); got != -1 {
		t.Errorf("flip order = %d, want -1 (A1 before B1); seq: %s",
			got, res.FormatSeq(prog, false))
	}
}

func TestScheduleStrings(t *testing.T) {
	p := Point{Run: "A", At: 5, To: "B"}
	if !strings.Contains(p.String(), "before") {
		t.Errorf("pre point = %q", p.String())
	}
	p.After, p.Skip = true, 2
	if !strings.Contains(p.String(), "after") || !strings.Contains(p.String(), "+2") {
		t.Errorf("after point = %q", p.String())
	}
	sch := Schedule{Initial: "A", Points: []Point{p}}
	if !strings.Contains(sch.String(), "start=A") {
		t.Errorf("schedule = %q", sch.String())
	}
	if Serial().Initial != "" {
		t.Error("empty Serial should have no initial thread")
	}
}

func TestRaceFormatting(t *testing.T) {
	prog := phantomProg(t)
	r := Race{
		First:   Site{Thread: "A", Instr: prog.MustByLabel("A1").ID},
		Second:  Site{Thread: "B", Instr: prog.MustByLabel("B1").ID},
		Addr:    0x101,
		Phantom: true,
		CSLock:  0x200,
	}
	long := r.FormatLong(prog)
	for _, want := range []string{"A1", "B1", "phantom", "critical section"} {
		if !strings.Contains(long, want) {
			t.Errorf("FormatLong misses %q: %s", want, long)
		}
	}
	if r.Key() == r.FlippedKey() {
		t.Error("flipped key should differ")
	}
	if SiteName(prog, r.First) != "A/A1" {
		t.Errorf("SiteName = %q", SiteName(prog, r.First))
	}
}

func TestFromSeqEmpty(t *testing.T) {
	sch := FromSeq(nil, []string{"A"})
	if sch.Initial != "" || len(sch.Points) != 0 {
		t.Errorf("FromSeq(nil) = %+v", sch)
	}
}

func TestEnforcerFallbackInitial(t *testing.T) {
	prog := phantomProg(t)
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown initial thread: the enforcer falls back to the preference
	// order.
	res, err := NewEnforcer(m).Run(Schedule{Initial: "ghost", Fallback: []string{"B", "A"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seq) == 0 || res.Seq[0].Name != "B" {
		t.Errorf("first exec = %+v", res.Seq[0])
	}
}

func TestEnforcerSwitchToMissingThread(t *testing.T) {
	prog := phantomProg(t)
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := prog.ByLabel("A2")
	sch := Schedule{
		Initial:  "A",
		Points:   []Point{{Run: "A", At: a2.ID, To: "kworker:nonexistent"}},
		Fallback: []string{"A", "B"},
	}
	res, err := NewEnforcer(m).Run(sch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missed == 0 {
		t.Error("switch to a missing thread should count as missed")
	}
	// The run still completes.
	if res.Threads["A"] != kvm.Done {
		t.Errorf("A = %v", res.Threads["A"])
	}
}

package sched

import (
	"fmt"
	"sort"
	"strings"

	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/sanitizer"
)

// Site is the static identity of an instruction occurrence within a
// program's thread structure: which thread (by stable name) executes which
// static instruction. Shared functions give the same InstrID different
// Sites in different threads (e.g. fanout_link's list_add as A12 vs B7's
// call of it).
type Site struct {
	Thread string
	Instr  kir.InstrID
}

// AccessRec is one shared-memory access of an executed instruction.
type AccessRec struct {
	Addr  uint64
	Write bool
}

// Exec records one executed instruction in a run.
type Exec struct {
	Step     int // index in RunResult.Seq
	Thread   kvm.ThreadID
	Name     string // thread name
	Instr    kir.Instr
	Accesses []AccessRec
	Lockset  []uint64 // locks held by the thread just after this step
	Spawned  string   // name of the thread this step spawned (queue_work/call_rcu)
}

// Site returns the static site of the executed instruction.
func (e Exec) Site() Site { return Site{Thread: e.Name, Instr: e.Instr.ID} }

// RunResult is the outcome of one enforced run: the totally ordered
// instruction sequence that executed (a failure-causing instruction
// sequence when the run failed), the failure, and enforcement metadata.
type RunResult struct {
	Seq      []Exec
	Failure  *sanitizer.Failure
	Switches int                        // context switches performed by the enforcer
	Missed   int                        // schedule points that never fired
	Threads  map[string]kvm.ThreadState // final state by thread name

	executed map[Site]bool
}

// Failed reports whether the run ended in a kernel failure.
func (r *RunResult) Failed() bool { return r.Failure != nil }

// Executed reports whether the given site ran at least once.
func (r *RunResult) Executed(s Site) bool {
	if r.executed == nil {
		r.executed = make(map[Site]bool, len(r.Seq))
		for _, e := range r.Seq {
			r.executed[e.Site()] = true
		}
	}
	return r.executed[s]
}

// SiteName renders a site using the program's instruction labels.
func SiteName(prog *kir.Program, s Site) string {
	return fmt.Sprintf("%s/%s", s.Thread, prog.InstrName(s.Instr))
}

// FormatSeq renders the executed sequence using paper-style labels, e.g.
// "A2 => A5 => B2 => B11 => A6 => B12 => B17". Instructions without labels
// are skipped unless all is true.
func (r *RunResult) FormatSeq(prog *kir.Program, all bool) string {
	var parts []string
	for _, e := range r.Seq {
		in := e.Instr
		if in.Label == "" && !all {
			continue
		}
		parts = append(parts, in.Name())
	}
	return strings.Join(parts, " => ")
}

// accessMode records how a site has been observed to access an address.
type accessMode uint8

const (
	modeRead accessMode = 1 << iota
	modeWrite
)

// AccessMap accumulates, across many runs, which addresses each site
// accesses and how. LIFS uses it to identify conflicting instructions
// (the scheduling decision points), and Causality Analysis uses it to find
// races whose second access never executed in the failing run (e.g. the
// paper's B17 => A12, where A12 is only known from other explorations).
type AccessMap struct {
	m      map[Site]map[uint64]accessMode
	byAddr map[uint64]map[string]accessMode // addr -> thread -> mode
}

// NewAccessMap returns an empty access map.
func NewAccessMap() *AccessMap {
	return &AccessMap{
		m:      make(map[Site]map[uint64]accessMode),
		byAddr: make(map[uint64]map[string]accessMode),
	}
}

// RecordRun folds a run's accesses into the map.
func (am *AccessMap) RecordRun(res *RunResult) {
	for _, e := range res.Seq {
		for _, a := range e.Accesses {
			am.Record(e.Site(), a.Addr, a.Write)
		}
	}
}

// Record adds one observed access.
func (am *AccessMap) Record(s Site, addr uint64, write bool) {
	byAddr := am.m[s]
	if byAddr == nil {
		byAddr = make(map[uint64]accessMode)
		am.m[s] = byAddr
	}
	mode := modeRead
	if write {
		mode = modeWrite
	}
	byAddr[addr] |= mode
	byThread := am.byAddr[addr]
	if byThread == nil {
		byThread = make(map[string]accessMode)
		am.byAddr[addr] = byThread
	}
	byThread[s.Thread] |= mode
}

// Clone returns an independent copy of the map.
func (am *AccessMap) Clone() *AccessMap {
	cp := &AccessMap{
		m:      make(map[Site]map[uint64]accessMode, len(am.m)),
		byAddr: make(map[uint64]map[string]accessMode, len(am.byAddr)),
	}
	for s, byAddr := range am.m {
		inner := make(map[uint64]accessMode, len(byAddr))
		for a, mode := range byAddr {
			inner[a] = mode
		}
		cp.m[s] = inner
	}
	for a, byThread := range am.byAddr {
		inner := make(map[string]accessMode, len(byThread))
		for t, mode := range byThread {
			inner[t] = mode
		}
		cp.byAddr[a] = inner
	}
	return cp
}

// Merge folds every access recorded in other into am. Access modes are
// bitmask-unioned, so merging any number of per-worker maps in any order
// yields the same map — the property the parallel LIFS search relies on
// when combining worker results between rounds.
func (am *AccessMap) Merge(other *AccessMap) {
	for s, byAddr := range other.m {
		dst := am.m[s]
		if dst == nil {
			dst = make(map[uint64]accessMode, len(byAddr))
			am.m[s] = dst
		}
		for a, mode := range byAddr {
			dst[a] |= mode
		}
	}
	for a, byThread := range other.byAddr {
		dst := am.byAddr[a]
		if dst == nil {
			dst = make(map[string]accessMode, len(byThread))
			am.byAddr[a] = dst
		}
		for t, mode := range byThread {
			dst[t] |= mode
		}
	}
}

// ConflictsAt reports whether an access (thread, addr, write) conflicts
// with any access of a different thread recorded so far: the addresses
// match and at least one side writes.
func (am *AccessMap) ConflictsAt(thread string, addr uint64, write bool) bool {
	for other, mode := range am.byAddr[addr] {
		if other == thread {
			continue
		}
		if write || mode&modeWrite != 0 {
			return true
		}
	}
	return false
}

// Sites returns all known sites in deterministic order.
func (am *AccessMap) Sites() []Site {
	out := make([]Site, 0, len(am.m))
	for s := range am.m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Thread != out[j].Thread {
			return out[i].Thread < out[j].Thread
		}
		return out[i].Instr < out[j].Instr
	})
	return out
}

// Addrs returns the addresses a site has been observed to access.
func (am *AccessMap) Addrs(s Site) map[uint64]bool {
	out := make(map[uint64]bool, len(am.m[s]))
	for a := range am.m[s] {
		out[a] = true
	}
	return out
}

// Writes reports whether the site has been observed to write addr.
func (am *AccessMap) Writes(s Site, addr uint64) bool {
	return am.m[s][addr]&modeWrite != 0
}

// ConflictAddrs returns the addresses where sites a and b conflict: both
// access the address and at least one writes it. Sites on the same thread
// never conflict (conflicts require different threads by definition).
func (am *AccessMap) ConflictAddrs(a, b Site) []uint64 {
	if a.Thread == b.Thread {
		return nil
	}
	var out []uint64
	for addr, ma := range am.m[a] {
		mb, ok := am.m[b][addr]
		if !ok {
			continue
		}
		if ma&modeWrite != 0 || mb&modeWrite != 0 {
			out = append(out, addr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConflictsWithAny reports whether site s conflicts with any known site of
// a different thread — the test LIFS uses to decide whether an instruction
// is a scheduling decision point.
func (am *AccessMap) ConflictsWithAny(s Site) bool {
	for other := range am.m {
		if other.Thread == s.Thread {
			continue
		}
		if len(am.ConflictAddrs(s, other)) > 0 {
			return true
		}
	}
	return false
}

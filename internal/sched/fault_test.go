package sched

import (
	"context"
	"errors"
	"testing"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
)

func TestEnforceStallFault(t *testing.T) {
	// The stall step is drawn in [0, 48); use a program long enough that
	// any draw manifests.
	prog := loopProg(t, 100)
	m := machine(t, prog)
	plan := faultinject.NewPlan(1, 0).SetRate(faultinject.KindEnforceStall, 1)

	res, err := NewEnforcer(m).Run(Serial("L"), Options{
		Fault:   plan,
		FaultOp: "test.enforce",
	})
	if res != nil || !faultinject.Is(err) {
		t.Fatalf("got res=%v err=%v, want injected fault", res, err)
	}
	var f *faultinject.Fault
	if !errors.As(err, &f) || f.Kind != faultinject.KindEnforceStall || f.Op != "test.enforce" {
		t.Fatalf("fault identity: %+v", f)
	}

	// Same identity → same stall; a retry attempt draws a fresh decision
	// and at rate limited to attempt 0 the run now completes.
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	plan2 := faultinject.NewPlan(1, 0) // stall disabled
	res, err = NewEnforcer(m).Run(Serial("L"), Options{
		Fault:        plan2,
		FaultOp:      "test.enforce",
		FaultAttempt: 1,
	})
	if err != nil || res == nil || res.Failed() {
		t.Fatalf("retry under quiet plan: res=%v err=%v", res, err)
	}
}

func TestEnforceNilPlanUnchanged(t *testing.T) {
	prog := racyProg(t)
	m := machine(t, prog)
	res, err := NewEnforcer(m).Run(Serial("B", "A"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FormatSeq(prog, false); got != "B1 => A1 => A2" {
		t.Errorf("seq = %q", got)
	}
}

func TestEnforceCtxCancel(t *testing.T) {
	// A canceled context aborts the run at the next poll. The racy
	// program finishes in a handful of steps — far below the poll mask —
	// so loop it under a schedule-free run with a huge budget by
	// restarting until the poll triggers: instead, rely on a pre-canceled
	// context and a program long enough to hit the first poll window.
	b := loopProg(t, 5000)
	m := machine(t, b)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewEnforcer(m).Run(Serial("L"), Options{Ctx: ctx, StepBudget: 1 << 20})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("got res=%v err=%v, want context.Canceled", res, err)
	}
}

// loopProg: one thread spinning n iterations, to exercise the periodic
// context poll (which only fires every ctxPollMask+1 loop ticks).
func loopProg(t testing.TB, n int64) *kir.Program {
	t.Helper()
	b := kir.NewBuilder()
	f := b.Func("spin")
	f.Mov(kir.R1, kir.Imm(n))
	f.At("top").Sub(kir.R1, kir.Imm(1))
	f.Bne(kir.R(kir.R1), kir.Imm(0), "top")
	f.Ret()
	b.Thread("L", "spin")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

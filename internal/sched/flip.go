package sched

import (
	"aitia/internal/kir"
)

// seqEntry is the minimal projection of an executed step used for schedule
// reconstruction.
type seqEntry struct {
	name  string
	instr kir.InstrID
}

func project(seq []Exec) []seqEntry {
	out := make([]seqEntry, len(seq))
	for i, e := range seq {
		out[i] = seqEntry{name: e.Name, instr: e.Instr.ID}
	}
	return out
}

// fromEntries builds the schedule that deterministically replays a desired
// total order of executed instructions: one post-execution switch point per
// thread-segment boundary. Occurrence counting (Point.Skip) handles
// instructions that repeat within a segment.
func fromEntries(entries []seqEntry, fallback []string) Schedule {
	sch := Schedule{Fallback: fallback}
	if len(entries) == 0 {
		return sch
	}
	sch.Initial = entries[0].name
	segStart := 0
	for i := 1; i <= len(entries); i++ {
		if i < len(entries) && entries[i].name == entries[segStart].name {
			continue
		}
		// Segment [segStart, i) of one thread ends at i-1.
		if i < len(entries) {
			last := entries[i-1]
			skip := 0
			for j := segStart; j < i-1; j++ {
				if entries[j].instr == last.instr {
					skip++
				}
			}
			sch.Points = append(sch.Points, Point{
				Run:   last.name,
				At:    last.instr,
				After: true,
				Skip:  skip,
				To:    entries[i].name,
			})
		}
		segStart = i
	}
	return sch
}

// FromSeq builds the schedule that replays the given executed sequence.
// The fallback order takes over after the last switch point (and whenever
// control flow diverges from the recorded sequence).
func FromSeq(seq []Exec, fallback []string) Schedule {
	return fromEntries(project(seq), fallback)
}

// FlipOptions tune flip-plan construction (ablation switches).
type FlipOptions struct {
	// NoCriticalSections disables the §3.4 liveness rule of flipping
	// whole critical sections as units. With it set, a flip may suspend a
	// thread inside a critical section; the enforcement engine then has
	// to divert through the lock owner and the intended reversal is often
	// not realized — the misclassification the rule exists to prevent.
	NoCriticalSections bool
}

// FlipSeq returns the desired total order for testing race r with its
// interleaving order flipped, per Causality Analysis (§3.4): the entries of
// First's thread from the First access onward are delayed until just after
// the Second access, preserving per-thread program order and every other
// cross-thread ordering. When either access runs under locks, the
// displaced region is widened to whole critical sections, flipping them as
// units.
//
// FlipSeq panics if the race is phantom (its Second access has no position
// in seq); phantom races are planned by PlanPhantomFlip.
func FlipSeq(seq []Exec, r Race) []Exec { return FlipSeqOpt(seq, r, FlipOptions{}) }

// FlipSeqOpt is FlipSeq with ablation switches.
func FlipSeqOpt(seq []Exec, r Race, fo FlipOptions) []Exec {
	if r.Phantom {
		panic("sched: FlipSeq on a phantom race")
	}
	i, j := r.FirstStep, r.SecondStep
	if !fo.NoCriticalSections {
		i, j = widenCriticalSections(seq, r)
	}
	tX := r.First.Thread
	out := make([]Exec, 0, len(seq))
	out = append(out, seq[:i]...)
	var moved []Exec
	for _, e := range seq[i : j+1] {
		if e.Name == tX {
			moved = append(moved, e)
		} else {
			out = append(out, e)
		}
	}
	out = append(out, moved...)
	out = append(out, seq[j+1:]...)
	return repairSpawnOrder(out)
}

// repairSpawnOrder restores spawn causality in a reordered sequence: a
// dynamically spawned thread (kworker, RCU callback) cannot execute before
// the step that spawned it, so any of its entries that drifted ahead of
// the spawn point are pushed back to just after it. Flips that would
// require breaking spawn causality (e.g. keeping a worker's step in place
// while delaying the syscall that queues the work) are thereby resolved
// the same way the hypervisor would resolve them: the worker simply runs
// later. Repair iterates because spawn chains nest (syscall -> kworker ->
// RCU callback).
func repairSpawnOrder(seq []Exec) []Exec {
	for pass := 0; pass < 8; pass++ {
		spawnAt := make(map[string]int) // thread name -> spawn step position
		for pos, e := range seq {
			if e.Spawned != "" {
				if _, dup := spawnAt[e.Spawned]; !dup {
					spawnAt[e.Spawned] = pos
				}
			}
		}
		violated := false
		out := make([]Exec, 0, len(seq))
		var held []Exec // entries waiting for their spawner
		heldOf := func(name string) bool {
			for _, h := range held {
				if h.Name == name {
					return true
				}
			}
			return false
		}
		for pos, e := range seq {
			sp, spawned := spawnAt[e.Name]
			if (spawned && sp > pos) || heldOf(e.Name) {
				// Runs before its spawner (or behind an earlier held entry
				// of the same thread): hold it back.
				violated = true
				held = append(held, e)
				continue
			}
			out = append(out, e)
			if e.Spawned != "" {
				// Release held entries of the thread just spawned.
				var rest []Exec
				for _, h := range held {
					if h.Name == e.Spawned {
						out = append(out, h)
					} else {
						rest = append(rest, h)
					}
				}
				held = rest
			}
		}
		out = append(out, held...)
		seq = out
		if !violated {
			break
		}
	}
	return seq
}

// widenCriticalSections expands [FirstStep, SecondStep] to respect the
// paper's liveness rule (§3.4): a flip must not suspend a thread inside a
// critical section (the resumed thread could block on the held lock and
// the enforcement would have to run the suspended thread anyway), so
// critical sections are flipped as units. If the First access happens
// while its thread holds locks, the displaced region starts at the
// acquisition of the outermost held lock; if the Second access happens
// under locks, the region runs through the release of all of them.
func widenCriticalSections(seq []Exec, r Race) (int, int) {
	i, j := r.FirstStep, r.SecondStep
	if len(seq[i].Lockset) > 0 {
		outer := seq[i].Lockset[0]
		for k := r.FirstStep; k >= 0; k-- {
			e := seq[k]
			if e.Name != r.First.Thread {
				continue
			}
			i = k
			if e.Instr.Op == kir.OpLock && len(e.Lockset) > 0 && e.Lockset[len(e.Lockset)-1] == outer {
				break
			}
		}
	}
	if len(seq[r.SecondStep].Lockset) > 0 {
		for k := r.SecondStep; k < len(seq); k++ {
			e := seq[k]
			if e.Name != r.Second.Thread {
				continue
			}
			j = k
			if len(e.Lockset) == 0 {
				break
			}
		}
	}
	return i, j
}

func holdsLock(lockset []uint64, l uint64) bool {
	for _, x := range lockset {
		if x == l {
			return true
		}
	}
	return false
}

// PlanFlip builds the schedule that re-executes the failing run with race
// r flipped and everything else preserved.
func PlanFlip(seq []Exec, r Race, fallback []string) Schedule {
	return PlanFlipOpt(seq, r, fallback, FlipOptions{})
}

// PlanFlipOpt is PlanFlip with ablation switches.
func PlanFlipOpt(seq []Exec, r Race, fallback []string, fo FlipOptions) Schedule {
	if r.Phantom {
		return PlanPhantomFlip(seq, r, fallback)
	}
	return FromSeq(FlipSeqOpt(seq, r, fo), fallback)
}

// PlanPhantomFlip builds the flip schedule for a race whose Second access
// never executed in the failing run (the failure truncated its thread
// first). The plan replays the original sequence up to just before the
// First access, then suspends First's thread, runs Second's thread until it
// has executed the Second instruction (a post-execution breakpoint — it may
// never fire if the access is unreachable, in which case the thread simply
// finishes), and then resumes the original order.
func PlanPhantomFlip(seq []Exec, r Race, fallback []string) Schedule {
	entries := project(seq)
	i := r.FirstStep

	prefix := fromEntries(entries[:i], fallback)
	suffix := fromEntries(entries[i:], fallback)

	sch := Schedule{Fallback: fallback}
	if i == 0 {
		// The First access is the very first step: start directly in
		// Second's thread instead of arming an unreachable breakpoint.
		sch.Initial = r.Second.Thread
	} else {
		sch.Initial = prefix.Initial
		sch.Points = append(sch.Points, prefix.Points...)
		// Suspend First's thread right before the First access, on the
		// correct occurrence (only occurrences in the thread's final
		// prefix segment can match while this point is the pending head;
		// earlier ones execute while the prefix's own points are pending).
		sch.Points = append(sch.Points, Point{
			Run:  r.First.Thread,
			At:   r.First.Instr,
			Skip: skipWithinFinalSegment(entries[:i], r.First.Thread, r.First.Instr),
			To:   r.Second.Thread,
		})
	}
	// Run Second's thread through the Second access, then hand control
	// back to First's thread.
	sch.Points = append(sch.Points, Point{
		Run:   r.Second.Thread,
		At:    r.Second.Instr,
		After: true,
		To:    r.First.Thread,
	})
	sch.Points = append(sch.Points, suffix.Points...)
	return sch
}

// FlipCut returns the length of the verbatim prefix the flip plan for race
// r shares with the original failing sequence: the number of leading steps
// whose enforced execution is identical to the recorded run. A prefix
// cache can restore machine state at that position and enforce only the
// suffix plan built by PlanFlipFrom.
//
// For a displacement flip the cut is the first position whose entry moved
// (entries keep their original Step stamps through FlipSeqOpt and
// repairSpawnOrder, so the cut is the first Step mismatch). For a phantom
// race the plan replays the recorded order verbatim up to the First
// access, so the cut is FirstStep.
func FlipCut(seq []Exec, r Race, fo FlipOptions) int {
	// The cut detection relies on position stamps; a synthetic sequence
	// without them shares no provable prefix.
	for k := range seq {
		if seq[k].Step != k {
			return 0
		}
	}
	if r.Phantom {
		return r.FirstStep
	}
	flipped := FlipSeqOpt(seq, r, fo)
	for k := range flipped {
		if flipped[k].Step != k {
			return k
		}
	}
	return len(flipped)
}

// PlanFlipFrom builds the suffix of the flip plan for race r that starts
// at position n of the enforced order, where n must be at most
// FlipCut(seq, r, fo). Enforcing it with Options.BaseSteps = n on a
// machine restored to the state just before step n behaves byte-
// identically to the tail of a full PlanFlipOpt enforcement: the suffix's
// first segment re-derives exactly the Skip count the full plan's pending
// head would have left unconsumed at n, and Initial names the thread the
// full run would be executing there.
func PlanFlipFrom(seq []Exec, r Race, fallback []string, fo FlipOptions, n int) Schedule {
	if r.Phantom {
		return planPhantomFlipFrom(seq, r, fallback, n)
	}
	flipped := FlipSeqOpt(seq, r, fo)
	return fromEntries(project(flipped)[n:], fallback)
}

// planPhantomFlipFrom is PlanPhantomFlip minus its first n steps, with
// n <= r.FirstStep. At n == FirstStep the recorded prefix is fully
// consumed: every matching occurrence the suspend point would have
// skipped lies inside the replayed prefix, so the remaining Skip is zero,
// and control sits with the thread that executed step n-1.
func planPhantomFlipFrom(seq []Exec, r Race, fallback []string, n int) Schedule {
	if n == 0 {
		return PlanPhantomFlip(seq, r, fallback)
	}
	entries := project(seq)
	i := r.FirstStep

	sch := Schedule{Fallback: fallback}
	if n < i {
		prefix := fromEntries(entries[n:i], fallback)
		sch.Initial = prefix.Initial
		sch.Points = append(sch.Points, prefix.Points...)
		sch.Points = append(sch.Points, Point{
			Run:  r.First.Thread,
			At:   r.First.Instr,
			Skip: skipWithinFinalSegment(entries[n:i], r.First.Thread, r.First.Instr),
			To:   r.Second.Thread,
		})
	} else {
		sch.Initial = entries[n-1].name
		sch.Points = append(sch.Points, Point{
			Run: r.First.Thread,
			At:  r.First.Instr,
			To:  r.Second.Thread,
		})
	}
	sch.Points = append(sch.Points, Point{
		Run:   r.Second.Thread,
		At:    r.Second.Instr,
		After: true,
		To:    r.First.Thread,
	})
	sch.Points = append(sch.Points, fromEntries(entries[i:], fallback).Points...)
	return sch
}

// skipWithinFinalSegment computes how many matching occurrences the
// pre-exec flip point will see before its intended firing position: the
// occurrences of (thread, instr) inside the thread's final segment of the
// prefix (earlier occurrences execute while earlier points are pending and
// therefore never match this point).
func skipWithinFinalSegment(entries []seqEntry, thread string, instr kir.InstrID) int {
	// Find the final contiguous segment of the thread at the end of the
	// prefix; if the prefix ends with another thread's segment, the flip
	// point becomes head only when control returns to the thread, which is
	// exactly at the boundary — no occurrences are consumed before it.
	n := len(entries)
	if n == 0 {
		return 0
	}
	skip := 0
	if entries[n-1].name == thread {
		for k := n - 1; k >= 0 && entries[k].name == thread; k-- {
			if entries[k].instr == instr {
				skip++
			}
		}
	}
	return skip
}

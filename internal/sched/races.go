package sched

import (
	"fmt"
	"sort"

	"aitia/internal/kir"
	"aitia/internal/kvm"
)

// Race is an ordered data race: two conflicting accesses (same address, at
// least one store) by different threads, with First observed before Second.
// Following the paper's notation, a Race with First=X and Second=Y denotes
// the interleaving order X(addr) => Y(addr).
//
// A Phantom race is one whose Second access never executed in the observed
// run: the failure truncated the thread before it got there, but the access
// is known from other explorations (the paper's B17 => A12, where A12 is
// pre-empted away by the failure at B17). Flipping a phantom race means
// letting Second execute before First.
type Race struct {
	First  Site
	Second Site
	Addr   uint64

	FirstStep  int // index of First in the run's Seq
	SecondStep int // index of Second in the run's Seq; -1 for phantom races
	Phantom    bool

	// CSLock is nonzero when both accesses were performed inside critical
	// sections of the same lock; such races are flipped as whole critical
	// sections (paper §3.4, liveness).
	CSLock uint64
}

// Key identifies a race by its static site pair, the identity used for
// deduplication and for membership in the test/root-cause sets.
type RaceKey struct {
	First  Site
	Second Site
}

// Key returns the race's static identity.
func (r Race) Key() RaceKey { return RaceKey{First: r.First, Second: r.Second} }

// Flipped returns the static identity of the reversed order.
func (r Race) FlippedKey() RaceKey { return RaceKey{First: r.Second, Second: r.First} }

// LastStep returns the run position that orders this race for backward
// processing: the step of its latest involved access.
func (r Race) LastStep() int {
	if r.Phantom || r.SecondStep < 0 {
		return r.FirstStep
	}
	return r.SecondStep
}

// Format renders the race in paper notation, e.g. "A6 => B12".
func (r Race) Format(prog *kir.Program) string {
	return fmt.Sprintf("%s => %s", prog.InstrName(r.First.Instr), prog.InstrName(r.Second.Instr))
}

// FormatLong renders the race with thread and address detail.
func (r Race) FormatLong(prog *kir.Program) string {
	s := fmt.Sprintf("%s => %s (addr %#x)", SiteName(prog, r.First), SiteName(prog, r.Second), r.Addr)
	if r.Phantom {
		s += " [phantom]"
	}
	if r.CSLock != 0 {
		s += fmt.Sprintf(" [critical section %#x]", r.CSLock)
	}
	return s
}

// commonLock returns a lock present in both locksets (0 if none).
func commonLock(a, b []uint64) uint64 {
	for _, la := range a {
		for _, lb := range b {
			if la == lb {
				return la
			}
		}
	}
	return 0
}

// accessPoint is an internal flattened view of one access in a run.
type accessPoint struct {
	step    int
	site    Site
	write   bool
	lockset []uint64
}

// accessesByAddr flattens a run into per-address ordered access lists.
func accessesByAddr(res *RunResult) map[uint64][]accessPoint {
	byAddr := make(map[uint64][]accessPoint)
	for _, e := range res.Seq {
		for _, a := range e.Accesses {
			byAddr[a.Addr] = append(byAddr[a.Addr], accessPoint{
				step:    e.Step,
				site:    e.Site(),
				write:   a.Write,
				lockset: e.Lockset,
			})
		}
	}
	return byAddr
}

// ExtractRaces returns the data races observed in a run: for every address
// and every access, the pair formed with the *next conflicting access by a
// different thread* (at least one of the two is a store), in observed
// order, deduplicated by static site pair (the first occurrence wins).
//
// Pairing with the next conflicting access — rather than only the
// immediately adjacent one — matters for patterns like double frees, where
// both threads read the same pointer before either clears it
// (read_A, read_B, write_B, write_A): the race read_A => write_B is the
// one whose flip prevents the failure, and it is not an adjacent pair.
// The result is sorted by LastStep so that Causality Analysis can pop
// races from the back of the failure-causing sequence.
func ExtractRaces(res *RunResult) []Race {
	byAddr := accessesByAddr(res)
	seen := make(map[RaceKey]bool)
	var races []Race
	for addr, list := range byAddr {
		for i := 0; i < len(list); i++ {
			first := list[i]
			for j := i + 1; j < len(list); j++ {
				second := list[j]
				if second.site.Thread == first.site.Thread {
					continue
				}
				if !first.write && !second.write {
					continue
				}
				r := Race{
					First:      first.site,
					Second:     second.site,
					Addr:       addr,
					FirstStep:  first.step,
					SecondStep: second.step,
					CSLock:     commonLock(first.lockset, second.lockset),
				}
				if !seen[r.Key()] {
					seen[r.Key()] = true
					races = append(races, r)
				}
				break // only the first conflicting successor
			}
		}
	}
	sortRaces(races)
	return races
}

// PhantomRaces returns races whose Second access did not execute in the
// run: an executed access conflicts (per the cross-run AccessMap) with a
// known access of a thread that the failure left unfinished. For each
// (executed-address, unexecuted-site) pair, the *last* executed access is
// used as First, matching the paper's construction where B17 => A12 enters
// the test set although A12 never ran.
func PhantomRaces(res *RunResult, am *AccessMap) []Race {
	// Threads that were cut short: unfinished or crashed.
	unfinished := make(map[string]bool)
	for name, st := range res.Threads {
		if st != kvm.Done {
			unfinished[name] = true
		}
	}
	if len(unfinished) == 0 {
		return nil
	}
	byAddr := accessesByAddr(res)
	seen := make(map[RaceKey]bool)
	var races []Race
	for _, s := range am.Sites() {
		if !unfinished[s.Thread] || res.Executed(s) {
			continue
		}
		for addr := range am.Addrs(s) {
			list := byAddr[addr]
			// Last executed *conflicting* access to addr by a different
			// thread (read-read pairs are skipped, not terminal).
			for i := len(list) - 1; i >= 0; i-- {
				p := list[i]
				if p.site.Thread == s.Thread {
					continue
				}
				if !p.write && !am.Writes(s, addr) {
					continue
				}
				r := Race{
					First:      p.site,
					Second:     s,
					Addr:       addr,
					FirstStep:  p.step,
					SecondStep: -1,
					Phantom:    true,
				}
				if !seen[r.Key()] {
					seen[r.Key()] = true
					races = append(races, r)
				}
				break
			}
		}
	}
	sortRaces(races)
	return races
}

// sortRaces orders races by their position in the failure-causing
// sequence (ties broken deterministically by site identity).
func sortRaces(races []Race) {
	sort.Slice(races, func(i, j int) bool {
		a, b := races[i], races[j]
		if a.LastStep() != b.LastStep() {
			return a.LastStep() < b.LastStep()
		}
		if a.FirstStep != b.FirstStep {
			return a.FirstStep < b.FirstStep
		}
		if a.Second.Thread != b.Second.Thread {
			return a.Second.Thread < b.Second.Thread
		}
		return a.Second.Instr < b.Second.Instr
	})
}

// RaceOccurred reports whether the race's conflicting pair happened in the
// run, in either order: both sites executed and touched the race address.
// Causality Analysis uses the *negation* — "R2 does not occur" — to detect
// race-steered control flow when another race is flipped.
func RaceOccurred(res *RunResult, r Race) bool {
	var firstTouched, secondTouched bool
	for _, e := range res.Seq {
		s := e.Site()
		if s != r.First && s != r.Second {
			continue
		}
		for _, a := range e.Accesses {
			if a.Addr != r.Addr {
				continue
			}
			if s == r.First {
				firstTouched = true
			} else {
				secondTouched = true
			}
		}
	}
	return firstTouched && secondTouched
}

// RaceOrder reports the observed order of the race's pair in a run:
// +1 if First's access to the address precedes Second's, -1 if reversed,
// 0 if the pair did not occur.
func RaceOrder(res *RunResult, r Race) int {
	firstAt, secondAt := -1, -1
	for _, e := range res.Seq {
		s := e.Site()
		if s != r.First && s != r.Second {
			continue
		}
		for _, a := range e.Accesses {
			if a.Addr != r.Addr {
				continue
			}
			if s == r.First && firstAt < 0 {
				firstAt = e.Step
			}
			if s == r.Second && secondAt < 0 {
				secondAt = e.Step
			}
		}
	}
	switch {
	case firstAt < 0 || secondAt < 0:
		return 0
	case firstAt < secondAt:
		return +1
	default:
		return -1
	}
}

// Package report renders diagnosis results and evaluation tables as text:
// the human-facing output of the pipeline (crash report, failure-causing
// sequence, test-set verdicts, causality chain, statistics) in the style
// of the paper's figures, plus aligned-column tables for the evaluation
// harness.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"aitia/internal/core"
	"aitia/internal/kir"
	"aitia/internal/sched"
)

// WriteDiagnosis renders a complete diagnosis report.
func WriteDiagnosis(w io.Writer, prog *kir.Program, rep *core.Reproduction, d *core.Diagnosis) {
	fmt.Fprintf(w, "=== Crash report ===\n%s\n", d.Failure.Report(prog))

	fmt.Fprintf(w, "=== Failure-causing instruction sequence (LIFS) ===\n")
	fmt.Fprintf(w, "%s\n\n", rep.Run.FormatSeq(prog, false))
	WriteSwimlanes(w, prog, rep.Run.Seq)
	fmt.Fprintf(w, "schedules: %d   interleavings: %d   pruned: %d   elapsed: %v\n\n",
		rep.Stats.Schedules, rep.Stats.Interleavings, rep.Stats.Pruned, rep.Stats.Elapsed)

	fmt.Fprintf(w, "=== Causality Analysis ===\n")
	fmt.Fprintf(w, "test set: %d data race(s); %d memory-accessing instruction(s) in the failing run\n",
		d.Stats.TestSet, d.Stats.MemAccesses)
	for _, tr := range d.Tested {
		mark := " "
		switch tr.Verdict {
		case core.VerdictRootCause:
			mark = "*"
		case core.VerdictAmbiguous:
			mark = "?"
		}
		fmt.Fprintf(w, "  %s %-40s %s", mark, tr.Race.FormatLong(prog), tr.Verdict)
		if gone := Disappeared(rep.Run, tr.FlipRun); len(gone) > 0 && tr.Verdict != core.VerdictBenign {
			fmt.Fprintf(w, "   [disappeared: %s]", strings.Join(gone, " "))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "schedules: %d   elapsed: %v\n\n", d.Stats.Schedules, d.Stats.Elapsed)

	fmt.Fprintf(w, "=== Causality chain (root cause) ===\n")
	fmt.Fprintf(w, "%s\n", d.Chain.Format(prog))
	if d.Chain.HasAmbiguity() {
		fmt.Fprintf(w, "note: the chain contains an ambiguous surrounding race (see §3.4 of the paper)\n")
	}
	fmt.Fprintf(w, "\nHow to fix: a patch that makes any one of the chain's interleaving\norders impossible prevents the failure.\n")
}

// WriteSwimlanes renders an executed sequence as per-thread swimlanes,
// one column per execution context, like the paper's Figure 2: reading
// top to bottom gives the total order, and the column shows which context
// executed each (labelled) instruction.
func WriteSwimlanes(w io.Writer, prog *kir.Program, seq []sched.Exec) {
	var threads []string
	seen := make(map[string]int)
	for _, e := range seq {
		if _, ok := seen[e.Name]; !ok {
			seen[e.Name] = len(threads)
			threads = append(threads, e.Name)
		}
	}
	if len(threads) == 0 {
		return
	}
	width := 0
	for _, th := range threads {
		if len(th) > width {
			width = len(th)
		}
	}
	for _, e := range seq {
		if len(e.Instr.Name()) > width {
			width = len(e.Instr.Name())
		}
	}
	width += 2

	cell := func(col int, s string) string {
		var b strings.Builder
		for i := 0; i < len(threads); i++ {
			if i == col {
				b.WriteString(pad(s, width))
			} else {
				b.WriteString(pad("", width))
			}
		}
		return strings.TrimRight(b.String(), " ")
	}
	for i, th := range threads {
		fmt.Fprintf(w, "  %s\n", cell(i, th))
	}
	var header strings.Builder
	for range threads {
		header.WriteString(pad(strings.Repeat("-", width-2), width))
	}
	fmt.Fprintf(w, "  %s\n", strings.TrimRight(header.String(), " "))
	for _, e := range seq {
		if e.Instr.Label == "" {
			continue
		}
		fmt.Fprintf(w, "  %s\n", cell(seen[e.Name], e.Instr.Name()))
	}
	fmt.Fprintln(w)
}

// Disappeared lists the labelled instructions of the original failing run
// that no longer execute in a perturbed run — the paper's Figure 6(a)
// "Disappeared" column, the visible footprint of a race-steered control
// flow. A nil perturbed run (a flip settled by the learned prior without
// executing) has no footprint.
func Disappeared(original, perturbed *sched.RunResult) []string {
	if perturbed == nil {
		return nil
	}
	var out []string
	seenOut := make(map[string]bool)
	for _, e := range original.Seq {
		if e.Instr.Label == "" || seenOut[e.Instr.Label] {
			continue
		}
		if !perturbed.Executed(e.Site()) {
			seenOut[e.Instr.Label] = true
			out = append(out, e.Instr.Label)
		}
	}
	sort.Strings(out)
	return out
}

// Table renders rows with aligned columns; the first row is the header.
type Table struct {
	Title string
	Rows  [][]string
}

// Add appends a row.
func (t *Table) Add(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table.
func (t *Table) Write(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	if len(t.Rows) == 0 {
		return
	}
	widths := make([]int, 0, 8)
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(row []string) {
		parts := make([]string, len(row))
		for i, c := range row {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Rows[0])
	sep := make([]string, len(t.Rows[0]))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows[1:] {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

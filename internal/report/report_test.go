package report

import (
	"strings"
	"testing"

	"aitia/internal/core"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

func TestWriteDiagnosis(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	prog := sc.MustProgram()
	m, err := kvm.New(prog)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: sc.WantInstr()})
	if err != nil {
		t.Fatal(err)
	}
	d, err := core.Analyze(m, rep, core.AnalysisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteDiagnosis(&b, prog, rep, d)
	out := b.String()
	for _, want := range []string{
		"Crash report",
		"kernel BUG",
		"Failure-causing instruction sequence",
		"Causality Analysis",
		"benign",
		"root-cause",
		"Causality chain",
		"(A2 => B11 ∧ B2 => A6)",
		"How to fix",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	tb := Table{Title: "T"}
	tb.Add("a", "bb", "c")
	tb.Add("long-cell", "x", "y")
	var b strings.Builder
	tb.Write(&b)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 { // title, header, separator, row
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	if !strings.Contains(lines[2], "---------") {
		t.Errorf("separator = %q", lines[2])
	}
	// Columns align: "x" starts where "bb" starts.
	if strings.Index(lines[1], "bb") != strings.Index(lines[3], "x") {
		t.Errorf("misaligned:\n%s", b.String())
	}
}

func TestEmptyTable(t *testing.T) {
	var b strings.Builder
	(&Table{Title: "empty"}).Write(&b)
	if !strings.Contains(b.String(), "empty") {
		t.Error("title missing")
	}
}

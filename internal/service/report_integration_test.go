package service_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"aitia"
	"aitia/internal/scenarios"
	"aitia/internal/service"
	"aitia/internal/service/httpapi"
)

// TestServiceReportJob is the report-driven acceptance path: synthesize
// fig1's crash report, POST it to /v1/diagnose-report, poll until the
// diagnosis completes with the golden chain, then resubmit the same
// crash with formatting noise and observe a cache hit keyed on the
// report fingerprint — plus the per-kind job metrics.
func TestServiceReportJob(t *testing.T) {
	report, err := aitia.ScenarioReport("fig1", aitia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	client := srv.Client()

	submit := func(rep string) service.JobStatus {
		t.Helper()
		body, _ := json.Marshal(service.Request{Scenario: "fig1", Report: rep})
		code, resp := postJSON(t, client, srv.URL+"/v1/diagnose-report", string(body))
		if code != http.StatusAccepted {
			t.Fatalf("POST /v1/diagnose-report: status %d: %s", code, resp)
		}
		var st service.JobStatus
		if err := json.Unmarshal(resp, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	st := submit(report)
	final := pollDone(t, client, srv.URL, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job state = %q (error %q), want done", final.State, final.Error)
	}
	if want := scenarios.GoldenChains["fig1"]; final.Result.Chain != want {
		t.Errorf("report-driven chain = %q, want %q", final.Result.Chain, want)
	}
	if len(final.Result.ReportPartial) != 0 {
		t.Errorf("synthesized report resolved degraded: %v", final.Result.ReportPartial)
	}

	// The same crash, reframed: extra blank lines and separators do not
	// change the report fingerprint, so this answers from the cache.
	st2 := submit("\n\n" + report + "\n====\n")
	if !st2.CacheHit || st2.State != service.StateDone {
		t.Fatalf("reformatted resubmission not a cache hit: %+v", st2)
	}
	if st2.Result.Chain != final.Result.Chain {
		t.Errorf("cached chain %q != original %q", st2.Result.Chain, final.Result.Chain)
	}

	code, metrics := getBody(t, client, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if got := metricValue(t, metrics, `aitia_jobs_total{kind="report"}`); got != 2 {
		t.Errorf(`aitia_jobs_total{kind="report"} = %g, want 2`, got)
	}
	if got := metricValue(t, metrics, `aitia_jobs_total{kind="trace"}`); got != 0 {
		t.Errorf(`aitia_jobs_total{kind="trace"} = %g, want 0`, got)
	}
	if got := metricValue(t, metrics, `aitia_cache_hits_total{kind="report"}`); got != 1 {
		t.Errorf(`aitia_cache_hits_total{kind="report"} = %g, want 1`, got)
	}
}

// TestServiceReportJobValidation: the endpoint rejects empty and
// unparsable reports with 400 before anything is queued.
func TestServiceReportJobValidation(t *testing.T) {
	svc := service.New(service.Config{Workers: 1, QueueDepth: 2})
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	client := srv.Client()

	code, _ := postJSON(t, client, srv.URL+"/v1/diagnose-report", `{"scenario": "fig1"}`)
	if code != http.StatusBadRequest {
		t.Errorf("missing report: status %d, want 400", code)
	}
	// Separator lines only: no title, Parse fails, surfaced as 400.
	code, _ = postJSON(t, client, srv.URL+"/v1/diagnose-report",
		`{"scenario": "fig1", "report": "====\n\n====\n"}`)
	if code != http.StatusBadRequest {
		t.Errorf("unparsable report: status %d, want 400", code)
	}
	if n := svc.Metrics().JobsSubmitted.Value(); n != 0 {
		t.Errorf("invalid submissions reached the queue: JobsSubmitted = %d", n)
	}
}

package service

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"aitia/internal/durable"
	"aitia/internal/prior"
)

// runCorpusJob submits one real diagnosis (default pipeline Diagnoser)
// and waits for it to complete.
func runCorpusJob(t *testing.T, s *Service) {
	t.Helper()
	st, err := s.Submit(Request{Scenario: "cve-2017-15649"})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != StateDone {
		t.Fatalf("job state = %q (error %q), want done", final.State, final.Error)
	}
}

// TestPriorLearnsAndPersists: a completed diagnosis feeds the learned
// flip prior, the prior is checkpointed durably, and the next service
// incarnation on the same data dir warm-loads it.
func TestPriorLearnsAndPersists(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Config{Workers: 1})
	runCorpusJob(t, s1)
	if obs := s1.Prior().Observations(); obs == 0 {
		t.Error("completed diagnosis fed no observations into the prior")
	}
	if kp := s1.Prior().KillPairs(); kp == 0 {
		t.Error("completed diagnosis recorded no kill relations")
	}
	wantPairs := s1.Prior().Pairs()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("x")})
	defer s2.Shutdown(context.Background())
	if got := s2.Prior().Pairs(); got != wantPairs {
		t.Errorf("warm-loaded prior has %d pairs, want %d", got, wantPairs)
	}
	if got := s2.Prior().LoadReason(); got != prior.ReasonLoaded {
		t.Errorf("LoadReason = %q, want %q", got, prior.ReasonLoaded)
	}
	h := s2.Health()
	if h.PriorPairs != wantPairs || h.PriorReason != prior.ReasonLoaded {
		t.Errorf("Health prior = %d pairs, reason %q; want %d, %q",
			h.PriorPairs, h.PriorReason, wantPairs, prior.ReasonLoaded)
	}
	if kp := s2.Prior().KillPairs(); kp == 0 {
		t.Error("warm-loaded prior lost its kill relations")
	}
}

// TestPriorCorruptCheckpointRebuildsFromJournal: a corrupt prior
// checkpoint degrades with a machine-readable reason, and the journaled
// result summaries rebuild the verdict statistics (kill relations are
// not journaled, so only benign skips remain armed until fresh
// diagnoses).
func TestPriorCorruptCheckpointRebuildsFromJournal(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Config{Workers: 1})
	runCorpusJob(t, s1)
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	ck, err := durable.OpenCheckpointStore(filepath.Join(dir, "checkpoints"), false)
	if err != nil {
		t.Fatalf("open checkpoint store: %v", err)
	}
	if err := ck.Save(prior.CheckpointKey, 1, []byte("corrupt")); err != nil {
		t.Fatalf("corrupt checkpoint: %v", err)
	}

	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("x")})
	defer s2.Shutdown(context.Background())
	if reason := s2.Prior().LoadReason(); !strings.HasPrefix(reason, prior.ReasonInvalid) {
		t.Errorf("LoadReason = %q, want %q prefix", reason, prior.ReasonInvalid)
	}
	if got := s2.Prior().Pairs(); got == 0 {
		t.Error("journal rebuild restored no verdict statistics")
	}
	if kp := s2.Prior().KillPairs(); kp != 0 {
		t.Errorf("journal rebuild restored %d kill pairs; summaries carry none", kp)
	}
	if !strings.HasPrefix(s2.Health().PriorReason, prior.ReasonInvalid) {
		t.Errorf("Health().PriorReason = %q, want %q prefix", s2.Health().PriorReason, prior.ReasonInvalid)
	}
}

// TestPriorDisabled: a negative PriorMinSupport disables the prior
// entirely — no store, no health fields.
func TestPriorDisabled(t *testing.T) {
	s := openDurable(t, t.TempDir(), Config{Workers: 1, Diagnoser: instantDiagnoser("x"), PriorMinSupport: -1})
	defer s.Shutdown(context.Background())
	if s.Prior() != nil {
		t.Error("Prior() != nil with PriorMinSupport < 0")
	}
	h := s.Health()
	if h.PriorPairs != 0 || h.PriorReason != "" {
		t.Errorf("health advertises a disabled prior: %+v", h)
	}
}

// Package httpapi exposes the diagnosis service over HTTP/JSON. The
// service core stays transport-agnostic; this package only translates
// requests and sentinel errors to HTTP semantics:
//
//	POST   /v1/diagnose   submit a job (202; 429 on queue-full backpressure).
//	                      The request's options.workers field parallelizes
//	                      the job's LIFS search (clamped to the server's
//	                      -max-job-workers cap).
//	POST   /v1/diagnose-report  submit a report-driven job: the request's
//	                      report field carries a KCSAN/KASAN-style crash
//	                      report, diagnosed against the program named by
//	                      scenario or source (400 without a report)
//	GET    /v1/jobs       list all jobs
//	GET    /v1/jobs/{id}  poll one job (includes the result when done)
//	GET    /v1/jobs/{id}/trace  the job's execution trace as Chrome
//	                      trace-event JSON (load in chrome://tracing or
//	                      https://ui.perfetto.dev)
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /v1/scenarios  list the built-in crash-scenario corpus
//	GET    /metrics       Prometheus text-format metrics
//	GET    /healthz       occupancy and drain state
package httpapi

import (
	"encoding/json"
	"errors"
	"net/http"

	"aitia/internal/service"
)

// New returns the HTTP handler for a running service.
func New(svc *service.Service) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/diagnose", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		st, err := svc.Submit(req)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("POST /v1/diagnose-report", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Report == "" {
			writeError(w, http.StatusBadRequest, "diagnose-report needs a non-empty report field")
			return
		}
		st, err := svc.Submit(req)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		trace, err := svc.JobTrace(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(trace); err != nil {
			return // client went away; nothing to salvage
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Cancel(r.PathValue("id")); err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Scenarios())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		svc.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := svc.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	return mux
}

// statusFor maps the service's sentinel errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, service.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire: an encode failure here is a
	// client disconnect, with nothing left to report to anyone.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// Package httpapi exposes the diagnosis service over HTTP/JSON. The
// service core stays transport-agnostic; this package only translates
// requests and sentinel errors to HTTP semantics:
//
//	POST   /v1/diagnose   submit a job (202; 429 on queue-full backpressure).
//	                      The request's options.workers field parallelizes
//	                      the job's LIFS search (clamped to the server's
//	                      -max-job-workers cap).
//	POST   /v1/diagnose-report  submit a report-driven job: the request's
//	                      report field carries a KCSAN/KASAN-style crash
//	                      report, diagnosed against the program named by
//	                      scenario or source (400 without a report)
//	GET    /v1/jobs       list all jobs
//	GET    /v1/jobs/{id}  poll one job (includes the result when done)
//	GET    /v1/jobs/{id}/trace  the job's execution trace as Chrome
//	                      trace-event JSON (load in chrome://tracing or
//	                      https://ui.perfetto.dev)
//	DELETE /v1/jobs/{id}  cancel a job
//	GET    /v1/scenarios  list the built-in crash-scenario corpus
//	GET    /metrics       Prometheus text-format metrics
//	GET    /healthz       occupancy and drain state
//	GET    /readyz        routability: 503 while draining or while journal
//	                      recovery is still re-enqueueing, so a fleet load
//	                      balancer stops routing before the drain
//	GET    /v1/fleet      fleet membership, leases and handoff counters
//	                      (404 single-node)
//	POST   /v1/fleet/branch  execute one leased LIFS branch (fleet peers
//	                      only; the distributed-search executor side)
//	GET    /v1/fleet/ping    liveness probe for fleet peers
//
// In fleet mode, POST /v1/diagnose(-report) consistently hashes the
// request's program to its owning replica and proxies the submission
// there (one hop at most, marked by an X-Aitia-Fleet-Forwarded header);
// a dead owner's jobs are accepted locally — the handoff.
package httpapi

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"aitia/internal/fleet"
	"aitia/internal/service"
)

// forwardedHeader breaks proxy loops: a submission that already hopped
// once is handled where it lands.
const forwardedHeader = "X-Aitia-Fleet-Forwarded"

// FleetConfig wires a handler's fleet mode: the peer URL map for
// submission proxying ("" or nil entries disable proxying to that
// peer).
type FleetConfig struct {
	// PeerURLs maps fleet node IDs to base URLs.
	PeerURLs map[string]string
	// Client is the proxy HTTP client (default: 30s timeout).
	Client *http.Client
}

// New returns the HTTP handler for a running service (single-node: no
// submission proxying; the fleet endpoints still serve when the service
// carries a fleet node).
func New(svc *service.Service) http.Handler { return NewWithFleet(svc, FleetConfig{}) }

// NewWithFleet returns the HTTP handler with fleet submission routing.
func NewWithFleet(svc *service.Service, fc FleetConfig) http.Handler {
	mux := http.NewServeMux()
	submit := func(w http.ResponseWriter, r *http.Request, req service.Request) {
		if st, ok := routeSubmit(w, r, svc, fc, req); ok {
			writeJSON(w, http.StatusAccepted, st)
		}
	}
	mux.HandleFunc("POST /v1/diagnose", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		submit(w, r, req)
	})
	mux.HandleFunc("POST /v1/diagnose-report", func(w http.ResponseWriter, r *http.Request) {
		var req service.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
			return
		}
		if req.Report == "" {
			writeError(w, http.StatusBadRequest, "diagnose-report needs a non-empty report field")
			return
		}
		submit(w, r, req)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Jobs())
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, err := svc.Job(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/trace", func(w http.ResponseWriter, r *http.Request) {
		trace, err := svc.JobTrace(r.PathValue("id"))
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(trace); err != nil {
			return // client went away; nothing to salvage
		}
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		if err := svc.Cancel(r.PathValue("id")); err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/scenarios", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Scenarios())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		svc.Metrics().WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := svc.Health()
		code := http.StatusOK
		if h.Status != "ok" {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, h)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ok, reason := svc.Ready()
		if ok {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not_ready", "reason": reason})
	})
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		n := svc.Fleet()
		if n == nil {
			writeError(w, http.StatusNotFound, "not a fleet member")
			return
		}
		writeJSON(w, http.StatusOK, n.Status())
	})
	mux.HandleFunc("POST /v1/fleet/branch", func(w http.ResponseWriter, r *http.Request) {
		fleet.BranchHandler()(w, r)
	})
	mux.HandleFunc("GET /v1/fleet/ping", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "node": svc.NodeID()})
	})
	return mux
}

// routeSubmit decides where a submission runs. Single-node (or already
// forwarded, or no peer URLs): locally. Fleet mode: the program hash's
// ring owner; a submission landing on the wrong replica is proxied to
// the owner with the forwarded marker set — unless the owner is dead or
// unreachable, in which case the local node takes the job over (the
// handoff) rather than failing the client. Returns (status, true) when
// the job was accepted locally; otherwise the response (proxied or
// error) has already been written.
func routeSubmit(w http.ResponseWriter, r *http.Request, svc *service.Service, fc FleetConfig, req service.Request) (service.JobStatus, bool) {
	n := svc.Fleet()
	if n == nil || len(fc.PeerURLs) == 0 || r.Header.Get(forwardedHeader) != "" {
		return submitLocal(w, svc, req)
	}
	hash, err := service.HashRequest(req)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return service.JobStatus{}, false
	}
	owner := n.OwnerOf(hash)
	if owner == "" || owner == n.ID() || !n.Alive(owner) || fc.PeerURLs[owner] == "" {
		if owner != "" && owner != n.ID() {
			n.NoteJobHandoff()
		}
		return submitLocal(w, svc, req)
	}
	if proxySubmit(w, r, fc, owner, req) {
		return service.JobStatus{}, false
	}
	// The owner did not answer: mark it down and take the job — a
	// replica-to-replica handoff, never a client-visible failure.
	n.MarkDown(owner)
	n.NoteJobHandoff()
	return submitLocal(w, svc, req)
}

func submitLocal(w http.ResponseWriter, svc *service.Service, req service.Request) (service.JobStatus, bool) {
	st, err := svc.Submit(req)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return service.JobStatus{}, false
	}
	return st, true
}

// proxySubmit forwards the submission to the owner and relays its
// response verbatim. Reports success of the proxying itself, not of the
// submission.
func proxySubmit(w http.ResponseWriter, r *http.Request, fc FleetConfig, owner string, req service.Request) bool {
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	client := fc.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, fc.PeerURLs[owner]+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	preq.Header.Set("Content-Type", "application/json")
	preq.Header.Set(forwardedHeader, "1")
	resp, err := client.Do(preq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
	return true
}

// statusFor maps the service's sentinel errors to HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, service.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, service.ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, service.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, service.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already on the wire: an encode failure here is a
	// client disconnect, with nothing left to report to anyone.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

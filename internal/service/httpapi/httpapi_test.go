package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aitia"
	"aitia/internal/fleet"
	"aitia/internal/kir"
	"aitia/internal/obs"
	"aitia/internal/service"
)

func testService(t *testing.T, cfg service.Config) *service.Service {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	if cfg.Diagnoser == nil {
		cfg.Diagnoser = func(ctx context.Context, prog *kir.Program, req service.Request, tr *obs.Tracer, _ service.FaultContext) (*aitia.ResultSummary, error) {
			return &aitia.ResultSummary{Failure: "fake", Chain: "A1 => B1"}, nil
		}
	}
	s := service.New(cfg)
	t.Cleanup(func() { _ = s.Shutdown(context.Background()) })
	return s
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// TestReadyzDistinctFromHealthz: /readyz flips to 503 the moment the
// drain starts, while the process is still alive — the load-balancer
// signal, not the liveness signal.
func TestReadyzDistinctFromHealthz(t *testing.T) {
	svc := testService(t, service.Config{})
	h := New(svc)
	if w := get(t, h, "/readyz"); w.Code != http.StatusOK {
		t.Fatalf("/readyz before drain = %d, want 200", w.Code)
	}
	if err := svc.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	w := get(t, h, "/readyz")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after drain = %d, want 503", w.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "not_ready" || body["reason"] != "draining" {
		t.Errorf("body = %v, want not_ready/draining", body)
	}
}

// TestFleetEndpointSingleNode: a non-fleet service 404s /v1/fleet.
func TestFleetEndpointSingleNode(t *testing.T) {
	h := New(testService(t, service.Config{}))
	if w := get(t, h, "/v1/fleet"); w.Code != http.StatusNotFound {
		t.Errorf("/v1/fleet single-node = %d, want 404", w.Code)
	}
}

// TestFleetEndpointStatus: a fleet member serves its membership,
// liveness view and lease counters.
func TestFleetEndpointStatus(t *testing.T) {
	n := fleet.New(fleet.Config{ID: "n1", Peers: []string{"n1", "n2", "n3"}, Epoch: 4})
	n.MarkDown("n3")
	h := New(testService(t, service.Config{NodeID: "n1", Fleet: n}))

	w := get(t, h, "/v1/fleet")
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/fleet = %d, want 200", w.Code)
	}
	var st fleet.Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Node != "n1" || st.Epoch != 4 || len(st.Peers) != 3 {
		t.Errorf("status = %+v, want n1 epoch 4 with 3 peers", st)
	}
	for _, p := range st.Peers {
		if p.ID == "n3" && p.Alive {
			t.Error("n3 reported alive after MarkDown")
		}
	}

	if w := get(t, h, "/v1/fleet/ping"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"n1"`) {
		t.Errorf("/v1/fleet/ping = %d %q, want 200 naming n1", w.Code, w.Body.String())
	}
}

// fleetPair builds two fleet services behind real HTTP listeners with
// each other's URLs wired for submission proxying, and returns them
// with their nodes.
func fleetPair(t *testing.T) (map[string]*service.Service, map[string]*fleet.Node, map[string]string) {
	t.Helper()
	ids := []string{"n1", "n2"}
	svcs := make(map[string]*service.Service, 2)
	nodes := make(map[string]*fleet.Node, 2)
	urls := make(map[string]string, 2)
	servers := make(map[string]*httptest.Server, 2)
	for _, id := range ids {
		n := fleet.New(fleet.Config{ID: id, Peers: ids, Epoch: 1})
		nodes[id] = n
		svcs[id] = testService(t, service.Config{NodeID: id, Fleet: n})
	}
	// Two passes: every handler needs the full URL map, which only
	// exists after both listeners are up.
	for _, id := range ids {
		srv := httptest.NewServer(nil)
		servers[id] = srv
		urls[id] = srv.URL
		t.Cleanup(srv.Close)
	}
	for _, id := range ids {
		servers[id].Config.Handler = NewWithFleet(svcs[id], FleetConfig{PeerURLs: urls})
	}
	return svcs, nodes, urls
}

func submitBody(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(service.Request{Scenario: "cve-2017-15649"})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestSubmitProxiedToOwner: a submission landing on the non-owner
// replica is proxied to the ring owner, which runs the job; the client
// sees one 202 either way.
func TestSubmitProxiedToOwner(t *testing.T) {
	svcs, nodes, urls := fleetPair(t)
	hash, err := service.HashRequest(service.Request{Scenario: "cve-2017-15649"})
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes["n1"].OwnerOf(hash)
	nonOwner := "n1"
	if owner == "n1" {
		nonOwner = "n2"
	}

	resp, err := http.Post(urls[nonOwner]+"/v1/diagnose", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit via non-owner = %d, want 202", resp.StatusCode)
	}
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != owner {
		t.Errorf("job accepted on %q, want ring owner %q", st.Node, owner)
	}
	if _, err := svcs[owner].Wait(context.Background(), st.ID); err != nil {
		t.Errorf("job not found on the owner: %v", err)
	}
	if _, err := svcs[nonOwner].Job(st.ID); err == nil {
		t.Error("proxied job also exists on the non-owner")
	}
}

// TestSubmitForwardedHeaderBreaksLoop: a request already carrying the
// forwarded marker is handled where it lands, even on the wrong
// replica — one hop, never a proxy cycle.
func TestSubmitForwardedHeaderBreaksLoop(t *testing.T) {
	svcs, nodes, urls := fleetPair(t)
	hash, err := service.HashRequest(service.Request{Scenario: "cve-2017-15649"})
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes["n1"].OwnerOf(hash)
	nonOwner := "n1"
	if owner == "n1" {
		nonOwner = "n2"
	}

	req, _ := http.NewRequest(http.MethodPost, urls[nonOwner]+"/v1/diagnose", bytes.NewReader(submitBody(t)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != nonOwner {
		t.Errorf("forwarded submission ran on %q, want local %q", st.Node, nonOwner)
	}
	if _, err := svcs[nonOwner].Wait(context.Background(), st.ID); err != nil {
		t.Errorf("job missing on the landing node: %v", err)
	}
}

// TestSubmitHandoffWhenOwnerDead: with the ring owner marked down, the
// replica the client reached takes the job itself instead of failing
// the submission.
func TestSubmitHandoffWhenOwnerDead(t *testing.T) {
	svcs, nodes, urls := fleetPair(t)
	hash, err := service.HashRequest(service.Request{Scenario: "cve-2017-15649"})
	if err != nil {
		t.Fatal(err)
	}
	owner := nodes["n1"].OwnerOf(hash)
	nonOwner := "n1"
	if owner == "n1" {
		nonOwner = "n2"
	}
	nodes[nonOwner].MarkDown(owner)

	resp, err := http.Post(urls[nonOwner]+"/v1/diagnose", "application/json", bytes.NewReader(submitBody(t)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st service.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Node != nonOwner {
		t.Errorf("dead-owner job ran on %q, want the handling replica %q", st.Node, nonOwner)
	}
	if _, err := svcs[nonOwner].Wait(context.Background(), st.ID); err != nil {
		t.Errorf("handed-off job missing: %v", err)
	}
	if got := nodes[nonOwner].Status().JobHandoffs; got != 1 {
		t.Errorf("job_handoffs = %d, want 1", got)
	}
}

// TestBranchEndpointRoundTrip: the branch-execution endpoint rejects
// malformed and alien payloads; the executable round-trip itself is
// covered end-to-end by TestHTTPTransportExecutesBranch in the fleet
// package and the core dispatch equivalence tests.
func TestBranchEndpointRoundTrip(t *testing.T) {
	h := New(testService(t, service.Config{}))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/fleet/branch", strings.NewReader("not json")))
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed branch request = %d, want 400", w.Code)
	}
}

package service

import (
	"container/list"
	"sync"

	"aitia"
)

// resultCache is a fixed-capacity LRU cache of completed diagnoses,
// keyed by the content hash of the compiled program plus the normalized
// request options. A crash report resubmitted in any serialization of
// the same program is answered from here without re-running LIFS.
type resultCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	sum *aitia.ResultSummary
}

func newResultCache(max int) *resultCache {
	return &resultCache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element, max),
	}
}

// get returns the cached summary for key and marks it recently used.
func (c *resultCache) get(key string) (*aitia.ResultSummary, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).sum, true
}

// add inserts (or refreshes) a completed diagnosis, evicting the least
// recently used entry when over capacity.
func (c *resultCache) add(key string, sum *aitia.ResultSummary) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).sum = sum
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, sum: sum})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// len returns the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

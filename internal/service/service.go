// Package service turns the one-shot AITIA pipeline into a long-running
// diagnosis service — the paper's §4.1 deployment, where a fleet of 32
// reproducer/diagnoser VMs consumes a stream of Syzkaller crash reports.
//
// The subsystem is transport-agnostic (HTTP lives in the httpapi
// subpackage) and composes four parts:
//
//   - a bounded job queue with backpressure: submissions beyond the
//     queue depth are rejected with ErrQueueFull instead of piling up;
//   - a worker pool (the VM fleet) with graceful drain on shutdown:
//     queued and in-flight jobs finish, new submissions are refused;
//   - an LRU result cache keyed by the content hash of the compiled
//     kir.Program plus the normalized options, so resubmissions of the
//     same crash are answered without re-running LIFS;
//   - a metrics registry exported in Prometheus text format.
//
// Per-job deadlines and cancellation are plumbed into the pipeline via
// context.Context (manager.Diagnose → core.ReproduceContext /
// core.AnalyzeContext), so a deadline actually stops the search.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"aitia"
	"aitia/internal/core"
	"aitia/internal/durable"
	"aitia/internal/faultinject"
	"aitia/internal/fleet"
	"aitia/internal/ingest"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/manager"
	"aitia/internal/obs"
	"aitia/internal/prior"
	"aitia/internal/sanitizer"
	"aitia/internal/scenarios"
)

// Sentinel errors surfaced to transports.
var (
	// ErrQueueFull is backpressure: the job queue is at capacity and the
	// submission was rejected (HTTP 429).
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed means the service is draining and accepts no new jobs.
	ErrClosed = errors.New("service: shutting down")
	// ErrBadRequest wraps request-validation failures (HTTP 400).
	ErrBadRequest = errors.New("service: bad request")
	// ErrNotFound means no job has the requested id (HTTP 404).
	ErrNotFound = errors.New("service: no such job")
)

// Config sizes the service.
type Config struct {
	// Workers is the worker-pool size: how many diagnoses run
	// concurrently (the paper's VM fleet). Default 4.
	Workers int
	// QueueDepth bounds the job queue; submissions beyond it are
	// rejected with ErrQueueFull. Default 64.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries. Default 128.
	CacheSize int
	// JobTimeout is the per-job deadline (overridable per request with
	// a shorter one). Default 2 minutes.
	JobTimeout time.Duration
	// JobWorkers is the per-job parallelism handed to manager.Options
	// (parallel flip tests). Default 1: the pool, not the job, is the
	// unit of parallelism here.
	JobWorkers int
	// MaxJobWorkers caps the per-request "workers" option (parallel LIFS
	// search): requests asking for more are clamped, not rejected, so one
	// client cannot oversubscribe the fleet. Default 8.
	MaxJobWorkers int
	// Diagnoser overrides the pipeline backend (tests inject blocking or
	// failing backends to exercise the queue deterministically). Nil
	// means the real manager-based pipeline.
	Diagnoser Diagnoser
	// Fault is the service-wide deterministic fault plan (chaos testing):
	// it is threaded into every job's pipeline and into queue admission.
	// Nil disables injection at zero cost.
	Fault *faultinject.Plan
	// Retry bounds retries of faulted operations inside jobs (zero-value
	// fields fall back to faultinject.DefaultRetry). The service wires
	// its drain signal into the policy so backoff sleeps end immediately
	// on Shutdown.
	Retry faultinject.RetryPolicy
	// MaxRequeues bounds how many times a job that failed on classified
	// infrastructure faults (injected faults, retry exhaustion) is put
	// back on the queue before it fails for good. Each requeue runs under
	// a re-seeded fork of the fault plan, so a deterministically doomed
	// job gets genuinely fresh draws. Zero means the default (2);
	// negative disables requeueing.
	MaxRequeues int
	// DataDir enables crash-safe operation. The job journal (a
	// checksummed write-ahead log of every job transition) lives in
	// DataDir/journal and the pipeline checkpoint store (LIFS frontiers,
	// settled flip verdicts) in DataDir/checkpoints. Open replays the
	// journal: terminal jobs come back queryable, their results warm the
	// cache, and jobs that were queued or running when the process died
	// are re-enqueued under a forked fault epoch — their searches resume
	// from the latest checkpoints. Empty keeps everything in memory.
	DataDir string
	// SyncWrites fsyncs every journal append and checkpoint save. Off,
	// durability is bounded by the OS page-cache flush interval.
	SyncWrites bool
	// CheckpointEvery additionally checkpoints serial LIFS searches
	// mid-phase after this many schedules (core.CheckpointConfig.Every).
	// Zero checkpoints at phase boundaries only.
	CheckpointEvery int
	// PriorMinSupport tunes the learned flip prior that completed jobs
	// feed and later jobs rank their flip tests by
	// (prior.Config.MinSupport): how many unanimous benign verdicts a
	// race signature needs before its flips are settled without a run.
	// Zero means the default (1); negative disables the prior entirely
	// (every analysis runs in fixed backward order). With DataDir the
	// prior persists in the checkpoint store and is warm-loaded on
	// recovery; an absent or corrupt snapshot is rebuilt from the
	// journal's completed diagnoses.
	PriorMinSupport int
	// NodeID names this replica in a fleet; it is stamped on job
	// statuses so clients can see which node ran their diagnosis.
	// Empty for single-node deployments.
	NodeID string
	// Fleet, when set, puts the service in multi-node mode: each job's
	// LIFS branch search is distributed to fleet peers under leases,
	// and a partitioned dispatch annotates the diagnosis with a
	// machine-readable PartialReason. With DataDir the node's lease
	// table journals into (and recovers from) the service WAL.
	Fleet *fleet.Node
}

// Diagnoser runs one resolved job. prog is the compiled program and req
// the normalized request (scenario defaults already applied). tr is the
// job's execution tracer: the backend threads it into the pipeline so
// the job's trace covers the search and analysis, not just the service
// lifecycle. fi carries the job's fault plan and retry policy (see
// FaultContext). Backends may ignore both.
type Diagnoser func(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, fi FaultContext) (*aitia.ResultSummary, error)

// FaultContext is the per-job slice of the service's fault configuration
// handed to the Diagnoser: the plan (forked per requeue epoch, so a
// requeued job does not re-draw the exact faults that killed it) and the
// retry policy with SkipBackoff pre-wired to the service's drain signal.
type FaultContext struct {
	Plan  *faultinject.Plan
	Retry faultinject.RetryPolicy
}

func (c *Config) applyDefaults() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 1
	}
	if c.MaxJobWorkers <= 0 {
		c.MaxJobWorkers = 8
	}
	if c.MaxRequeues == 0 {
		c.MaxRequeues = 2
	} else if c.MaxRequeues < 0 {
		c.MaxRequeues = 0
	}
}

// Request is one diagnosis submission: either a built-in scenario name
// or a kasm program, plus options.
type Request struct {
	// Scenario names a built-in corpus scenario.
	Scenario string `json:"scenario,omitempty"`
	// Source is kasm program text (exclusive with Scenario).
	Source string `json:"source,omitempty"`
	// Report is a KCSAN/KASAN-style textual crash report. When set, the
	// job diagnoses from the report alone (report-driven reproduction:
	// the report's suspects seed guided searches against the program
	// named by Scenario or Source) instead of searching blind. Jobs are
	// cached by program hash plus report fingerprint, so reformatted
	// resubmissions of the same crash hit the cache.
	Report string `json:"report,omitempty"`
	// Options tune the pipeline.
	Options RequestOptions `json:"options,omitempty"`
}

// RequestOptions are the per-request pipeline knobs. They mirror
// aitia.Options; fields at their zero value use the pipeline defaults.
type RequestOptions struct {
	MaxInterleavings int    `json:"max_interleavings,omitempty"`
	StepBudget       int    `json:"step_budget,omitempty"`
	LeakCheck        bool   `json:"leak_check,omitempty"`
	FailureKind      string `json:"failure_kind,omitempty"`
	FailureLabel     string `json:"failure_label,omitempty"`
	// Workers parallelizes this job's LIFS search across that many
	// goroutines (aitia.Options.LIFSWorkers). Clamped to the service's
	// Config.MaxJobWorkers; zero or one searches serially.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps this job's run time; it can only shorten the
	// service-wide Config.JobTimeout.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// State is a job's lifecycle phase.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// JobStatus is the externally visible snapshot of a job.
type JobStatus struct {
	ID       string `json:"id"`
	State    State  `json:"state"`
	Scenario string `json:"scenario,omitempty"`
	// CacheHit marks jobs answered from the result cache.
	CacheHit  bool      `json:"cache_hit,omitempty"`
	Submitted time.Time `json:"submitted"`
	// QueueWaitMS and RunMS are filled as the job progresses.
	QueueWaitMS int64 `json:"queue_wait_ms"`
	RunMS       int64 `json:"run_ms"`
	// Error is set for failed/canceled jobs; FailReason is the
	// machine-readable failure class when one applies (currently
	// ReasonRequeueExhausted: the job burned its whole requeue budget
	// on classified infrastructure faults).
	Error      string `json:"error,omitempty"`
	FailReason string `json:"fail_reason,omitempty"`
	// Node is the fleet replica that accepted the job ("" single-node).
	Node string `json:"node,omitempty"`
	// Result is the diagnosis, set when State is "done".
	Result *aitia.ResultSummary `json:"result,omitempty"`
}

// ReasonRequeueExhausted marks a job that failed because it hit the
// MaxRequeues budget — infrastructure kept flaking, the diagnosis never
// got a clean run.
const ReasonRequeueExhausted = "requeue_exhausted"

// job is the internal job record; mutable fields are guarded by
// Service.mu.
type job struct {
	status JobStatus
	req    Request
	prog   *kir.Program
	key    string             // cache key
	cancel context.CancelFunc // set while running
	picked time.Time          // when a worker picked the job up
	done   chan struct{}      // closed on completion
	// tr collects the job's execution spans from submission on: the
	// queue wait, the pipeline run (with the full search/analysis trace
	// threaded through manager.Options.Tracer) or the cache hit. Epoch
	// is the submission instant.
	tr *obs.Tracer
	// requeues counts how often the job went back on the queue after a
	// classified infrastructure failure; it doubles as the fault-plan
	// fork epoch. Mutated only between runs, so runJob may read it
	// without the lock.
	requeues int
	// recovered marks a job re-enqueued by journal recovery; cleared
	// (with the service's recovering gauge) when a worker picks it up.
	recovered bool
}

// Service is the diagnosis service: queue, worker fleet, result cache
// and metrics.
type Service struct {
	cfg     Config
	metrics *Metrics
	cache   *resultCache
	queue   chan *job
	wg      sync.WaitGroup
	nextID  atomic.Uint64
	// drain is closed by Shutdown: retry backoff sleeps inside running
	// jobs select on it (RetryPolicy.SkipBackoff), so draining never
	// waits out an exponential backoff.
	drain chan struct{}

	// Durability (nil without Config.DataDir): the job WAL and the
	// pipeline checkpoint store.
	journal *durable.Journal
	ckStore *durable.CheckpointStore
	// prior is the learned flip-ordering store shared by all jobs (nil
	// when Config.PriorMinSupport < 0).
	prior *prior.Store

	// recovering counts journal-recovered jobs not yet picked back up:
	// while it is nonzero the node reports not-ready, so a fleet load
	// balancer does not route fresh work at a replica still chewing
	// through its recovery backlog.
	recovering atomic.Int64

	mu     sync.Mutex
	jobs   map[string]*job
	closed bool
}

// New starts an in-memory service: the worker pool begins consuming the
// queue immediately. Call Shutdown to drain it. It panics when Open
// fails, which only durable configurations (Config.DataDir) can — those
// callers should use Open directly.
func New(cfg Config) *Service {
	s, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Open starts a service. With Config.DataDir set it opens the job
// journal and checkpoint store, replays the journal (tolerating a torn
// tail from a crashed predecessor), restores terminal jobs and the
// result cache, re-enqueues jobs the crash interrupted, and compacts
// the journal — all before the worker pool starts, so recovered work
// and fresh submissions share one consistent queue.
func Open(cfg Config) (*Service, error) {
	cfg.applyDefaults()
	s := &Service{
		cfg:     cfg,
		metrics: &Metrics{FaultPlan: cfg.Fault},
		cache:   newResultCache(cfg.CacheSize),
		drain:   make(chan struct{}),
		jobs:    make(map[string]*job),
	}
	pcfg := prior.Config{MinSupport: cfg.PriorMinSupport}
	if cfg.PriorMinSupport >= 0 {
		s.prior = prior.NewStore(pcfg)
	}
	queueDepth := cfg.QueueDepth
	var pending []*job
	if cfg.DataDir != "" {
		tr := obs.New()
		span := tr.Begin("service", "recover", 0)
		ck, err := durable.OpenCheckpointStore(filepath.Join(cfg.DataDir, "checkpoints"), cfg.SyncWrites)
		if err != nil {
			return nil, err
		}
		jnl, err := durable.OpenJournal(filepath.Join(cfg.DataDir, "journal"), durable.JournalOptions{Sync: cfg.SyncWrites})
		if err != nil {
			return nil, err
		}
		s.ckStore, s.journal = ck, jnl
		s.metrics.Journal, s.metrics.Checkpoints = jnl, ck
		// Warm-load the prior from its checkpoint. When the snapshot is
		// absent or corrupt the store comes back empty (with a
		// machine-readable reason) and restoreJobs rebuilds it from the
		// journal's completed diagnoses instead.
		rebuildPrior := false
		if s.prior != nil {
			var reason string
			s.prior, reason = prior.LoadFrom(ck, pcfg)
			rebuildPrior = reason != prior.ReasonLoaded
		}
		// Fleet lease recovery runs first, over the raw WAL: lease
		// records must be folded before compaction rewrites the journal
		// (compaction keeps only job state). Records from a prior fleet
		// epoch bump fencing high-water marks but grant nothing — a dead
		// incarnation's holders are gone, and their late results must be
		// fenced off, not honored.
		if cfg.Fleet != nil {
			cfg.Fleet.Leases().SetJournal(jnl)
			_ = jnl.Replay(func(payload []byte) error {
				cfg.Fleet.RestoreLease(payload)
				return nil
			})
		}
		st, err := foldJournal(jnl)
		if err != nil {
			_ = jnl.Close()
			return nil, err
		}
		// Compact before restoreJobs: its requeue records must land in
		// the fresh post-compaction segment, not be erased by it.
		if err := compactJournal(jnl, st); err != nil {
			_ = jnl.Close()
			return nil, err
		}
		pending = s.restoreJobs(st, rebuildPrior)
		if len(pending) > queueDepth {
			// Every interrupted job must fit back on the queue.
			queueDepth = len(pending)
		}
		span.Arg("jobs", int64(len(st.jobs)))
		span.Arg("requeued", int64(len(pending)))
		if s.prior != nil {
			span.Arg("prior_pairs", int64(s.prior.Pairs()))
		}
		span.End()
		s.metrics.observeSpans(obs.Summarize(tr.Events()))
	}
	s.metrics.Prior = s.prior
	s.queue = make(chan *job, queueDepth)
	s.recovering.Store(int64(len(pending)))
	for _, j := range pending {
		j.recovered = true
		s.queue <- j
		s.metrics.QueueDepth.Inc()
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// restoreJobs rebuilds the job table from the folded journal. Terminal
// jobs come back queryable with their results; completed diagnoses warm
// the cache in their original completion order, so the LRU bound evicts
// the oldest journaled results first. Jobs that were queued or running
// when the process died are returned for re-enqueueing, journaled as
// requeued under a forked fault epoch (the crash was this epoch's
// failure — the next run must not re-draw its exact faults). With
// feedPrior set, the warmed summaries also rebuild the flip prior (the
// persisted snapshot was absent or corrupt).
func (s *Service) restoreJobs(st *replayState, feedPrior bool) []*job {
	s.nextID.Store(st.maxSeq)
	var pending []*job
	for _, id := range st.order {
		rj := st.jobs[id]
		if rj.submit.Req == nil {
			continue
		}
		j := &job{
			req:  *rj.submit.Req,
			key:  rj.submit.Key,
			done: make(chan struct{}),
			tr:   obs.New(),
			status: JobStatus{
				ID:          id,
				Scenario:    rj.submit.Req.Scenario,
				CacheHit:    rj.submit.CacheHit,
				Submitted:   rj.submit.At,
				QueueWaitMS: rj.wait,
				RunMS:       rj.run,
				Node:        s.cfg.NodeID,
			},
		}
		switch rj.state {
		case StateDone:
			j.status.State = StateDone
			j.status.Result = rj.sum
			close(j.done)
		case StateFailed, StateCanceled:
			j.status.State = rj.state
			j.status.Error = rj.err
			j.status.FailReason = rj.reason
			close(j.done)
		default: // queued or running at crash time: run it again
			prog, req, err := resolve(j.req)
			if err != nil {
				j.status.State = StateFailed
				j.status.Error = err.Error()
				s.journalAppend(jobRecord{Op: opFailed, ID: id, Error: j.status.Error})
				close(j.done)
				break
			}
			j.req, j.prog = req, prog
			j.requeues = rj.epoch + 1
			j.status.State = StateQueued
			j.tr.Emit(obs.Event{Cat: "job", Name: "recovered", Start: j.tr.Now()})
			s.journalAppend(jobRecord{Op: opRequeue, ID: id, Epoch: j.requeues})
			s.metrics.JobsRecovered.Inc()
			pending = append(pending, j)
		}
		s.jobs[id] = j
	}
	for _, rec := range st.warm {
		rj, ok := st.jobs[rec.ID]
		if !ok || rj.state != StateDone || rec.Summary == nil || rj.submit.Key == "" {
			continue
		}
		s.cache.add(rj.submit.Key, rec.Summary)
		if feedPrior {
			s.feedPriorSummary(rec.Summary)
		}
	}
	return pending
}

// feedPriorSummary rebuilds prior statistics from a journaled result
// summary — the fallback feed when the persisted prior snapshot is
// absent or corrupt but the journal still holds completed diagnoses.
// Verdicts the prior itself settled carry no new evidence and are
// skipped; so are unknown verdicts.
func (s *Service) feedPriorSummary(sum *aitia.ResultSummary) {
	if s.prior == nil || sum == nil {
		return
	}
	for _, v := range sum.Verdicts {
		if v.Race.Sig == "" || v.Race.Prior {
			continue
		}
		s.prior.ObserveVerdict(v.Race.Sig, v.Verdict)
	}
}

// persistPrior checkpoints the flip prior (atomic tmp+rename in the
// durable store), so a restarted service warm-loads everything earlier
// jobs taught it. Concurrent saves serialize on the snapshot encoding's
// read lock and the store's atomic write.
func (s *Service) persistPrior() {
	if s.prior == nil || s.ckStore == nil {
		return
	}
	_ = s.prior.SaveTo(s.ckStore)
}

// Metrics returns the service's metric registry.
func (s *Service) Metrics() *Metrics { return s.metrics }

// Scenarios lists the built-in corpus.
func (s *Service) Scenarios() []aitia.ScenarioInfo { return aitia.Scenarios() }

// Health is a point-in-time health snapshot.
type Health struct {
	Status       string `json:"status"` // "ok" or "draining"
	Workers      int    `json:"workers"`
	BusyWorkers  int64  `json:"busy_workers"`
	QueueDepth   int64  `json:"queue_depth"`
	Jobs         int    `json:"jobs"`
	CachedChains int    `json:"cached_chains"`
	// Durable reports that the service runs with a job journal and
	// checkpoint store (Config.DataDir).
	Durable bool `json:"durable,omitempty"`
	// PriorPairs is the number of race-pair signatures in the learned
	// flip prior; PriorReason is how the store came up ("prior_loaded",
	// "prior_absent", or a "prior_invalid: ..." detail; empty for an
	// in-memory prior).
	PriorPairs  int    `json:"prior_pairs,omitempty"`
	PriorReason string `json:"prior_reason,omitempty"`
	// RequeueExhausted counts jobs that failed after burning the whole
	// MaxRequeues budget on classified infrastructure faults — a
	// distinct, machine-readable failure class (the job statuses carry
	// FailReason "requeue_exhausted").
	RequeueExhausted uint64 `json:"requeue_exhausted,omitempty"`
	// Node is this replica's fleet identity ("" single-node).
	Node string `json:"node,omitempty"`
}

// Health reports the service's occupancy and drain state.
func (s *Service) Health() Health {
	s.mu.Lock()
	closed, jobs := s.closed, len(s.jobs)
	s.mu.Unlock()
	status := "ok"
	if closed {
		status = "draining"
	}
	h := Health{
		Status:       status,
		Workers:      s.cfg.Workers,
		BusyWorkers:  s.metrics.BusyWorkers.Value(),
		QueueDepth:   s.metrics.QueueDepth.Value(),
		Jobs:         jobs,
		CachedChains: s.cache.len(),
		Durable:      s.journal != nil,
	}
	h.RequeueExhausted = uint64(s.metrics.JobsRequeueExhausted.Value())
	h.Node = s.cfg.NodeID
	if s.prior != nil {
		h.PriorPairs = s.prior.Pairs()
		h.PriorReason = s.prior.LoadReason()
	}
	return h
}

// Ready reports whether the node should receive traffic, with a
// machine-readable reason when it should not: "draining" once Shutdown
// started, "recovering" while journal recovery's re-enqueued jobs are
// still waiting to be picked back up. Distinct from Health (which
// answers "is the process alive"): a fleet load balancer polls /readyz
// and stops routing to a node before its drain, not after.
func (s *Service) Ready() (bool, string) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return false, "draining"
	}
	if s.recovering.Load() > 0 {
		return false, "recovering"
	}
	return true, ""
}

// Fleet exposes the node's fleet membership (nil single-node).
func (s *Service) Fleet() *fleet.Node { return s.cfg.Fleet }

// NodeID returns this replica's fleet identity ("" single-node).
func (s *Service) NodeID() string { return s.cfg.NodeID }

// HashRequest resolves a request far enough to return its program's
// content hash — the fleet job-routing key. Transports use it to decide
// which replica owns a submission before accepting it locally.
func HashRequest(req Request) (string, error) {
	prog, _, err := resolve(req)
	if err != nil {
		return "", err
	}
	return prog.Hash(), nil
}

// Prior exposes the service's learned flip prior (nil when disabled),
// for introspection and tests.
func (s *Service) Prior() *prior.Store { return s.prior }

// resolve compiles the request into a program and normalizes the options
// (scenario defaults applied), so equivalent submissions share one cache
// key.
func resolve(req Request) (*kir.Program, Request, error) {
	switch {
	case req.Scenario != "" && req.Source != "":
		return nil, req, fmt.Errorf("%w: scenario and source are exclusive", ErrBadRequest)
	case req.Scenario != "":
		sc, ok := scenarios.ByName(req.Scenario)
		if !ok {
			return nil, req, fmt.Errorf("%w: unknown scenario %q", ErrBadRequest, req.Scenario)
		}
		prog, err := sc.Program()
		if err != nil {
			return nil, req, err
		}
		if req.Options.FailureKind == "" {
			req.Options.FailureKind = sc.WantKind.String()
		}
		if req.Options.FailureLabel == "" {
			req.Options.FailureLabel = sc.WantLabel
		}
		req.Options.LeakCheck = req.Options.LeakCheck || sc.NeedsLeakCheck()
		return prog, req, nil
	case req.Source != "":
		prog, err := kasm.Parse(req.Source)
		if err != nil {
			return nil, req, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		return prog, req, nil
	default:
		return nil, req, fmt.Errorf("%w: need scenario or source", ErrBadRequest)
	}
}

// cacheKey derives the result-cache key: the program's content hash plus
// every option that can change the diagnosis outcome. TimeoutMS is
// excluded (failed jobs are never cached). Workers is included even
// though serial and parallel searches return the same reproduction: the
// result carries search statistics (schedule counts, snapshot bytes)
// that do depend on it. Report jobs additionally key on the report's
// content fingerprint (kind, site, access pair — not formatting noise),
// so the same crash resubmitted with different framing still hits.
func cacheKey(prog *kir.Program, o RequestOptions, rpt *ingest.Report) string {
	key := fmt.Sprintf("%s|mi=%d|sb=%d|leak=%t|kind=%s|label=%s|w=%d",
		prog.Hash(), o.MaxInterleavings, o.StepBudget, o.LeakCheck, o.FailureKind, o.FailureLabel, o.Workers)
	if rpt != nil {
		key += "|rep=" + ingest.Fingerprint(rpt)
	}
	return key
}

// Job-kind indices for the per-kind metrics: trace jobs search blind
// from the program, report jobs are driven by a crash report.
const (
	kindTrace = iota
	kindReport
	numJobKinds
)

var jobKindNames = [numJobKinds]string{"trace", "report"}

func kindOf(req Request) int {
	if req.Report != "" {
		return kindReport
	}
	return kindTrace
}

// Submit accepts a diagnosis job. Cache hits complete synchronously;
// misses are enqueued for the worker pool, or rejected with ErrQueueFull
// when the queue is at capacity.
func (s *Service) Submit(req Request) (JobStatus, error) {
	prog, req, err := resolve(req)
	if err != nil {
		return JobStatus{}, err
	}
	if req.Options.Workers < 0 {
		req.Options.Workers = 0
	}
	if req.Options.Workers > s.cfg.MaxJobWorkers {
		req.Options.Workers = s.cfg.MaxJobWorkers
	}
	var rpt *ingest.Report
	if req.Report != "" {
		rpt, err = ingest.Parse(req.Report)
		if err != nil {
			return JobStatus{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	key := cacheKey(prog, req.Options, rpt)

	seq := s.nextID.Add(1)
	j := &job{
		req:  req,
		prog: prog,
		key:  key,
		done: make(chan struct{}),
		tr:   obs.New(),
		status: JobStatus{
			ID:        fmt.Sprintf("job-%06d", seq),
			Scenario:  req.Scenario,
			Submitted: time.Now(),
			Node:      s.cfg.NodeID,
		},
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobStatus{}, ErrClosed
	}

	if sum, ok := s.cache.get(key); ok {
		j.tr.Emit(obs.Event{Cat: "job", Name: "cache-hit", Start: j.tr.Now()})
		j.status.State = StateDone
		j.status.CacheHit = true
		j.status.Result = sum
		close(j.done)
		s.jobs[j.status.ID] = j
		s.journalAppend(jobRecord{Op: opSubmit, ID: j.status.ID, Seq: seq, Req: &j.req, Key: key, CacheHit: true})
		s.journalAppend(jobRecord{Op: opDone, ID: j.status.ID, Summary: sum})
		s.metrics.JobsSubmitted.Inc()
		s.metrics.JobsByKind[kindOf(req)].Inc()
		s.metrics.CacheHits.Inc()
		s.metrics.CacheHitsByKind[kindOf(req)].Inc()
		s.metrics.JobsCompleted.Inc()
		return j.status, nil
	}

	// Injected queue-admission hiccup: deterministic per submission
	// sequence number, surfaced as ordinary backpressure so clients
	// retry exactly as they would a genuinely full queue.
	if err := s.cfg.Fault.Check(faultinject.KindQueueAdmit, "service.admit", seq, 0); err != nil {
		s.metrics.JobsRejected.Inc()
		return JobStatus{}, fmt.Errorf("%w: %w", ErrQueueFull, err)
	}

	j.status.State = StateQueued
	select {
	case s.queue <- j:
	default:
		s.metrics.JobsRejected.Inc()
		return JobStatus{}, ErrQueueFull
	}
	s.jobs[j.status.ID] = j
	s.journalAppend(jobRecord{Op: opSubmit, ID: j.status.ID, Seq: seq, Req: &j.req, Key: key})
	s.metrics.JobsSubmitted.Inc()
	s.metrics.JobsByKind[kindOf(req)].Inc()
	s.metrics.CacheMisses.Inc()
	s.metrics.QueueDepth.Inc()
	return j.status, nil
}

// Job returns the status snapshot of a job.
func (s *Service) Job(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return j.status, nil
}

// JobTrace renders a job's execution trace as Chrome trace-event JSON
// (chrome://tracing / Perfetto): the service lifecycle spans (queue wait,
// run, cache hit) plus, for jobs that ran the real pipeline, the full
// search and analysis trace. Valid at any point of the job's life — a
// running job yields the spans committed so far.
func (s *Service) JobTrace(id string) ([]byte, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	var buf bytes.Buffer
	if err := j.tr.WriteChrome(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Jobs returns status snapshots of every known job (unspecified order).
func (s *Service) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status)
	}
	return out
}

// Cancel cancels a job: queued jobs are marked canceled and skipped by
// the pool; running jobs have their context canceled, which stops the
// search at its next iteration boundary.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch j.status.State {
	case StateQueued:
		if j.recovered {
			j.recovered = false
			s.recovering.Add(-1)
		}
		j.status.State = StateCanceled
		j.status.Error = context.Canceled.Error()
		s.journalAppend(jobRecord{Op: opCanceled, ID: id, Error: j.status.Error})
		s.metrics.JobsCanceled.Inc()
		close(j.done)
	case StateRunning:
		j.cancel() // runJob records the terminal state
	}
	return nil
}

// Wait blocks until the job completes (or ctx expires) and returns its
// final status.
func (s *Service) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	select {
	case <-j.done:
		return s.Job(id)
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
}

// Shutdown drains the service: no new submissions are accepted, queued
// and in-flight jobs run to completion, and the worker pool exits. It
// returns ctx.Err() if the drain outlives the context.
func (s *Service) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	close(s.drain) // cut in-flight retry backoff sleeps immediately
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		// Drain-time final sync: everything the pool journaled is on
		// disk before the process reports a clean shutdown.
		if s.journal != nil {
			_ = s.journal.Sync()
			_ = s.journal.Close()
		}
		return nil
	case <-ctx.Done():
		// The journal stays open: workers may still be appending. A
		// process exit from here is exactly the crash the journal is
		// for.
		return ctx.Err()
	}
}

// worker consumes the queue until Shutdown closes it.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.QueueDepth.Dec()
		ctx, ok := s.pickUp(j)
		if !ok {
			continue // canceled while queued
		}
		s.runJob(ctx, j)
	}
}

// pickUp transitions a dequeued job to running and arms its deadline.
func (s *Service) pickUp(j *job) (context.Context, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.status.State != StateQueued {
		return nil, false
	}
	if s.closed && s.journal != nil {
		// Draining with a journal: leave queued-but-unstarted jobs on
		// disk instead of racing the drain — the next incarnation
		// re-enqueues them from the journal, losing no transitions.
		return nil, false
	}
	timeout := s.cfg.JobTimeout
	if ms := j.req.Options.TimeoutMS; ms > 0 && time.Duration(ms)*time.Millisecond < timeout {
		timeout = time.Duration(ms) * time.Millisecond
	}
	if j.recovered {
		j.recovered = false
		s.recovering.Add(-1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	j.cancel = cancel
	j.picked = time.Now()
	j.tr.Emit(obs.Event{Cat: "job", Name: "queued", Dur: j.tr.Now()})
	j.status.State = StateRunning
	j.status.QueueWaitMS = j.picked.Sub(j.status.Submitted).Milliseconds()
	s.journalAppend(jobRecord{Op: opStart, ID: j.status.ID, QueueWaitMS: j.status.QueueWaitMS})
	s.metrics.QueueWait.Observe(j.picked.Sub(j.status.Submitted).Seconds())
	return ctx, true
}

// runJob executes one diagnosis and records the terminal state.
func (s *Service) runJob(ctx context.Context, j *job) {
	s.metrics.BusyWorkers.Inc()
	defer s.metrics.BusyWorkers.Dec()

	diagnose := s.cfg.Diagnoser
	if diagnose == nil {
		diagnose = s.runManager
	}
	// The fault plan is forked per requeue epoch: a job that died to
	// deterministic faults must not re-draw exactly those faults on its
	// second life.
	fi := FaultContext{Plan: s.cfg.Fault.Fork(uint64(j.requeues)), Retry: s.retryPolicy()}
	run := j.tr.Begin("job", "run", 0)
	sum, err := diagnose(ctx, j.prog, j.req, j.tr, fi)
	run.End()
	j.cancel()

	if err == nil {
		// Persist what the job taught the prior before publishing the
		// result: a crash after this point recovers a prior at least as
		// informed as the journaled outcome implies.
		s.persistPrior()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	j.status.RunMS = time.Since(j.picked).Milliseconds()
	switch {
	case err == nil:
		// The cached summary carries the span aggregates, so cache hits
		// answer with the original run's stage breakdown.
		sum.Spans = obs.Summarize(j.tr.Events())
		j.status.State = StateDone
		j.status.Result = sum
		s.cache.add(j.key, sum)
		s.journalAppend(jobRecord{Op: opDone, ID: j.status.ID, Summary: sum, RunMS: j.status.RunMS})
		s.metrics.JobsCompleted.Inc()
		if sum.Partial {
			s.metrics.JobsPartial.Inc()
		}
		s.metrics.ReproduceTime.Observe(sum.ReproduceTime.Seconds())
		s.metrics.DiagnoseTime.Observe(sum.DiagnoseTime.Seconds())
		s.metrics.observeSearch(sum)
		s.metrics.observeSpans(sum.Spans)
	case errors.Is(err, context.Canceled):
		j.status.State = StateCanceled
		j.status.Error = err.Error()
		s.journalAppend(jobRecord{Op: opCanceled, ID: j.status.ID, Error: j.status.Error})
		s.metrics.JobsCanceled.Inc()
	default:
		// Classified infrastructure failures (injected faults, retry
		// exhaustion) are requeued under a fresh fault epoch — up to
		// MaxRequeues times, and never once the service is draining.
		classified := faultinject.Is(err) || errors.Is(err, faultinject.ErrExhausted)
		if classified && j.requeues < s.cfg.MaxRequeues && !s.closed {
			select {
			case s.queue <- j:
				j.requeues++
				j.status.State = StateQueued
				j.status.Error = ""
				j.tr.Emit(obs.Event{Cat: "job", Name: "requeue", Start: j.tr.Now()})
				s.journalAppend(jobRecord{Op: opRequeue, ID: j.status.ID, Epoch: j.requeues})
				s.metrics.JobsRequeued.Inc()
				s.metrics.QueueDepth.Inc()
				return // the job lives on; done stays open
			default:
				// Queue full: fall through to a terminal failure.
			}
		}
		j.status.State = StateFailed
		j.status.Error = err.Error()
		if classified && j.requeues >= s.cfg.MaxRequeues {
			// The whole requeue budget went to infrastructure flakes:
			// surface that as its own machine-readable failure class,
			// not just a fault string buried in Error.
			j.status.FailReason = ReasonRequeueExhausted
			s.metrics.JobsRequeueExhausted.Inc()
		}
		s.journalAppend(jobRecord{Op: opFailed, ID: j.status.ID, Error: j.status.Error, Reason: j.status.FailReason, RunMS: j.status.RunMS})
		s.metrics.JobsFailed.Inc()
	}
	close(j.done)
}

// retryPolicy is the service-wide retry policy with the drain signal
// wired in, so in-flight backoff sleeps end the moment Shutdown starts.
func (s *Service) retryPolicy() faultinject.RetryPolicy {
	rp := s.cfg.Retry
	rp.SkipBackoff = s.drain
	return rp
}

// runManager is the default Diagnoser: the full manager pipeline on the
// program's declared threads, under the job's context.
func (s *Service) runManager(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, fi FaultContext) (*aitia.ResultSummary, error) {
	lifs := core.LIFSOptions{
		MaxInterleavings: req.Options.MaxInterleavings,
		StepBudget:       req.Options.StepBudget,
		LeakCheck:        req.Options.LeakCheck,
		WantInstr:        kir.NoInstr,
	}
	if req.Options.FailureKind != "" {
		if k, ok := sanitizer.KindByName(req.Options.FailureKind); ok {
			lifs.WantKind = k
		}
	}
	if req.Options.FailureLabel != "" {
		if in, ok := prog.ByLabel(req.Options.FailureLabel); ok {
			lifs.WantInstr = in.ID
		}
	}
	var ck *core.CheckpointConfig
	if s.ckStore != nil {
		ck = &core.CheckpointConfig{Store: s.ckStore, Every: s.cfg.CheckpointEvery}
	}
	// Fleet mode: the job's branch search is distributed under leases.
	// One dispatcher per job, so its degradation reason annotates this
	// diagnosis and no other.
	var disp *fleet.Dispatcher
	var dispatch core.BranchDispatcher
	if s.cfg.Fleet != nil && req.Options.Workers > 1 {
		disp = s.cfg.Fleet.Dispatcher()
		dispatch = disp
	}
	mgr, err := manager.New(prog, manager.Options{
		Workers:     s.cfg.JobWorkers,
		LIFSWorkers: req.Options.Workers,
		LIFS:        lifs,
		Analysis: core.AnalysisOptions{
			StepBudget: req.Options.StepBudget,
			LeakCheck:  lifs.LeakCheck,
		},
		Tracer:     tr,
		Fault:      fi.Plan,
		Retry:      fi.Retry,
		Checkpoint: ck,
		Dispatch:   dispatch,
		Prior:      s.prior,
	})
	if err != nil {
		return nil, err
	}
	var mres *manager.Result
	if req.Report != "" {
		// Report-driven job: the crash report's resolved suspects seed
		// guided searches; kind/site constraints come from the report
		// itself (overriding the blind defaults set above).
		rpt, perr := ingest.Parse(req.Report)
		if perr != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, perr)
		}
		mres, err = mgr.DiagnoseReport(ctx, rpt)
	} else {
		mres, err = mgr.Diagnose(ctx)
	}
	if err != nil {
		return nil, err
	}
	res := aitia.FromManagerResult(prog, mres)
	res.Scenario = req.Scenario
	sum := res.Summary()
	if disp != nil {
		if reason := disp.Degraded(); reason != "" && !sum.Partial {
			// The chain itself is intact (local sweep re-ran every
			// abandoned branch), but the fleet did not hold: surface it.
			sum.Partial = true
			sum.PartialReason = reason
		}
	}
	return sum, nil
}

package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aitia"
	"aitia/internal/kir"
	"aitia/internal/obs"
	"aitia/internal/service"
	"aitia/internal/service/httpapi"
)

func postJSON(t *testing.T, client *http.Client, url string, body string) (int, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

func getBody(t *testing.T, client *http.Client, url string) (int, []byte) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// pollDone polls GET /v1/jobs/{id} until the job leaves the queue/run
// states, returning the terminal status.
func pollDone(t *testing.T, client *http.Client, base, id string) service.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getBody(t, client, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job: status %d: %s", code, body)
		}
		var st service.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if st.State != service.StateQueued && st.State != service.StateRunning {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never completed", id)
	return service.JobStatus{}
}

// metricValue extracts one sample value from Prometheus text output.
func metricValue(t *testing.T, metrics []byte, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, metrics)
	return 0
}

// TestServiceHTTPEndToEnd is the acceptance path: POST the
// cve-2017-15649 scenario, poll until the diagnosis completes with a
// non-empty chain, POST the identical request again and observe the
// cache hit in /metrics, then shut down and verify the drain.
func TestServiceHTTPEndToEnd(t *testing.T) {
	svc := service.New(service.Config{Workers: 2, QueueDepth: 8})
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	client := srv.Client()
	body := `{"scenario": "cve-2017-15649"}`

	// Submit: 202 with a job id.
	code, resp := postJSON(t, client, srv.URL+"/v1/diagnose", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/diagnose: status %d: %s", code, resp)
	}
	var st service.JobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.State != service.StateQueued {
		t.Fatalf("submit status = %+v", st)
	}

	// Poll to completion: a non-empty causality chain.
	final := pollDone(t, client, srv.URL, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job state = %q (error %q), want done", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Chain == "" {
		t.Fatalf("done job has no chain: %+v", final.Result)
	}
	if final.CacheHit {
		t.Error("first submission must not be a cache hit")
	}
	t.Logf("chain: %s", final.Result.Chain)

	// Identical resubmission: synchronous cache hit with the same chain.
	code, resp = postJSON(t, client, srv.URL+"/v1/diagnose", body)
	if code != http.StatusAccepted {
		t.Fatalf("second POST: status %d: %s", code, resp)
	}
	var st2 service.JobStatus
	if err := json.Unmarshal(resp, &st2); err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != service.StateDone {
		t.Fatalf("second submission not a cache hit: %+v", st2)
	}
	if st2.Result.Chain != final.Result.Chain {
		t.Errorf("cached chain %q != original %q", st2.Result.Chain, final.Result.Chain)
	}

	// The hit is visible in /metrics.
	code, metrics := getBody(t, client, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if got := metricValue(t, metrics, "aitia_cache_hits_total"); got != 1 {
		t.Errorf("aitia_cache_hits_total = %g, want 1", got)
	}
	if got := metricValue(t, metrics, "aitia_jobs_submitted_total"); got != 2 {
		t.Errorf("aitia_jobs_submitted_total = %g, want 2", got)
	}
	if got := metricValue(t, metrics, "aitia_jobs_completed_total"); got != 2 {
		t.Errorf("aitia_jobs_completed_total = %g, want 2", got)
	}
	if got := metricValue(t, metrics, "aitia_reproduce_seconds_count"); got != 1 {
		t.Errorf("aitia_reproduce_seconds_count = %g, want 1", got)
	}

	// Scenario listing includes the one we just diagnosed.
	code, scen := getBody(t, client, srv.URL+"/v1/scenarios")
	if code != http.StatusOK || !bytes.Contains(scen, []byte("cve-2017-15649")) {
		t.Errorf("GET /v1/scenarios: status %d, body %.200s", code, scen)
	}

	// Healthy before shutdown.
	code, health := getBody(t, client, srv.URL+"/healthz")
	if code != http.StatusOK || !bytes.Contains(health, []byte(`"status": "ok"`)) {
		t.Errorf("GET /healthz: status %d, body %s", code, health)
	}

	// Submit one more job, then shut down: the drain must let it finish.
	code, resp = postJSON(t, client, srv.URL+"/v1/diagnose",
		`{"scenario": "cve-2017-15649", "options": {"step_budget": 200000}}`)
	if code != http.StatusAccepted {
		t.Fatalf("third POST: status %d: %s", code, resp)
	}
	var st3 service.JobStatus
	if err := json.Unmarshal(resp, &st3); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	got, err := svc.Job(st3.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != service.StateDone {
		t.Errorf("in-flight job after drain: state = %q (error %q), want done", got.State, got.Error)
	}

	// Draining service refuses new jobs with 503.
	code, _ = postJSON(t, client, srv.URL+"/v1/diagnose", body)
	if code != http.StatusServiceUnavailable {
		t.Errorf("POST after shutdown: status %d, want 503", code)
	}
	code, health = getBody(t, client, srv.URL+"/healthz")
	if code != http.StatusServiceUnavailable || !bytes.Contains(health, []byte("draining")) {
		t.Errorf("healthz after shutdown: status %d, body %s", code, health)
	}
}

// TestHTTPErrorMapping: sentinel errors surface as the right status
// codes through the HTTP layer.
func TestHTTPErrorMapping(t *testing.T) {
	release := make(chan struct{})
	blocking := func(ctx context.Context, prog *kir.Program, req service.Request, tr *obs.Tracer, _ service.FaultContext) (*aitia.ResultSummary, error) {
		select {
		case <-release:
			return &aitia.ResultSummary{Chain: "A1 => B1"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	svc := service.New(service.Config{Workers: 1, QueueDepth: 1, Diagnoser: blocking})
	defer svc.Shutdown(context.Background())
	defer close(release) // unblock workers before the drain above runs
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	client := srv.Client()

	if code, body := postJSON(t, client, srv.URL+"/v1/diagnose", `{"scenario": "nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown scenario: status %d: %s", code, body)
	}
	if code, body := postJSON(t, client, srv.URL+"/v1/diagnose", `{not json`); code != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d: %s", code, body)
	}
	if code, body := getBody(t, client, srv.URL+"/v1/jobs/job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d: %s", code, body)
	}

	// Occupy the single worker, wait until it is running, fill the
	// depth-1 queue, then expect 429 on the next submission.
	code, resp := postJSON(t, client, srv.URL+"/v1/diagnose",
		`{"scenario": "cve-2017-15649", "options": {"step_budget": 50001}}`)
	if code != http.StatusAccepted {
		t.Fatalf("fill worker: status %d: %s", code, resp)
	}
	var running service.JobStatus
	if err := json.Unmarshal(resp, &running); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := svc.Job(running.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == service.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never picked up job, state %q", st.State)
		}
		time.Sleep(time.Millisecond)
	}
	if code, resp := postJSON(t, client, srv.URL+"/v1/diagnose",
		`{"scenario": "cve-2017-15649", "options": {"step_budget": 50002}}`); code != http.StatusAccepted {
		t.Fatalf("fill queue: status %d: %s", code, resp)
	}
	if code, _ := postJSON(t, client, srv.URL+"/v1/diagnose",
		`{"scenario": "cve-2017-15649", "options": {"step_budget": 60000}}`); code != http.StatusTooManyRequests {
		t.Errorf("full queue: status %d, want 429", code)
	}
}

package service

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aitia/internal/fleet"
)

// TestRequeueExhaustedReason: a job that burns its whole requeue budget
// fails with the distinct machine-readable reason, visible on the job
// status, in Health and as its own metric — not just a generic error.
func TestRequeueExhaustedReason(t *testing.T) {
	var runs atomic.Int32
	s := New(Config{
		Workers:     1,
		MaxRequeues: 2,
		Diagnoser:   faultingDiagnoser(1<<30, &runs, nil),
	})
	defer s.Shutdown(context.Background())

	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if final.FailReason != ReasonRequeueExhausted {
		t.Errorf("fail_reason = %q, want %q", final.FailReason, ReasonRequeueExhausted)
	}
	if got := s.Metrics().JobsRequeueExhausted.Value(); got != 1 {
		t.Errorf("jobs_requeue_exhausted = %d, want 1", got)
	}
	if h := s.Health(); h.RequeueExhausted != 1 {
		t.Errorf("health requeue_exhausted = %d, want 1", h.RequeueExhausted)
	}
}

// TestRequeueExhaustedReasonSurvivesRestart: the terminal reason is
// journaled and replays with the job.
func TestRequeueExhaustedReasonSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int32
	s1 := openDurable(t, dir, Config{Workers: 1, MaxRequeues: 1, Diagnoser: faultingDiagnoser(1<<30, &runs, nil)})
	st, err := submitN(t, s1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if final, _ := s1.Wait(context.Background(), st.ID); final.FailReason != ReasonRequeueExhausted {
		t.Fatalf("fail_reason before restart = %q, want %q", final.FailReason, ReasonRequeueExhausted)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("unused")})
	defer s2.Shutdown(context.Background())
	got, err := s2.Job(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed || got.FailReason != ReasonRequeueExhausted {
		t.Errorf("recovered job = state %q reason %q, want failed/%q", got.State, got.FailReason, ReasonRequeueExhausted)
	}
}

// TestReadyTracksRecovery: a restarted service is not ready while
// journal-recovered jobs are still waiting to be picked back up, and
// becomes ready once the queue has drained into the workers. Readiness
// is routability, distinct from /healthz liveness: a recovering node is
// alive but a fleet balancer must not route new work at it yet.
func TestReadyTracksRecovery(t *testing.T) {
	dir := t.TempDir()
	never := make(chan struct{})
	s1 := openDurable(t, dir, Config{Workers: 1, Diagnoser: blockingDiagnoser(never)})
	var ids []string
	for i := 1; i <= 3; i++ {
		st, err := submitN(t, s1, i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitState(t, s1, ids[0], StateRunning)
	// Crash: the journal holds one running and two queued jobs.

	release := make(chan struct{})
	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: blockingDiagnoser(release)})
	defer s2.Shutdown(context.Background())
	if ok, reason := s2.Ready(); ok || reason != "recovering" {
		t.Errorf("Ready during recovery = %v/%q, want false/recovering", ok, reason)
	}
	if h := s2.Health(); h.Status != "ok" {
		t.Errorf("healthz during recovery = %q — recovery must not look dead, only unroutable", h.Status)
	}
	close(release)
	for _, id := range ids {
		if _, err := s2.Wait(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	if ok, reason := s2.Ready(); !ok {
		t.Errorf("Ready after recovery = false (%s), want true", reason)
	}
}

// TestReadyFalseWhileDraining: Shutdown flips readiness before the
// drain finishes, so the balancer stops routing while in-flight work
// completes.
func TestReadyFalseWhileDraining(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, Diagnoser: blockingDiagnoser(release)})
	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)
	if ok, _ := s.Ready(); !ok {
		t.Fatal("Ready = false before shutdown")
	}

	done := make(chan error, 1)
	go func() { done <- s.Shutdown(context.Background()) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if ok, reason := s.Ready(); !ok {
			if reason != "draining" {
				t.Errorf("reason = %q, want draining", reason)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Ready never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentHealthReadsRaceTransitions: Health and Ready are read
// concurrently with the recovery-pickup and drain transitions; run
// under -race this pins the synchronization of the recovering gauge and
// the drain flag.
func TestConcurrentHealthReadsRaceTransitions(t *testing.T) {
	dir := t.TempDir()
	never := make(chan struct{})
	s1 := openDurable(t, dir, Config{Workers: 1, Diagnoser: blockingDiagnoser(never)})
	for i := 1; i <= 4; i++ {
		if _, err := submitN(t, s1, i); err != nil {
			t.Fatal(err)
		}
	}

	s2 := openDurable(t, dir, Config{Workers: 2, Diagnoser: instantDiagnoser("A1 => B1")})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = s2.Health()
					_, _ = s2.Ready()
				}
			}
		}()
	}
	// Recovery pickup and the drain both race the readers.
	time.Sleep(10 * time.Millisecond)
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if ok, reason := s2.Ready(); ok || reason != "draining" {
		t.Errorf("Ready after shutdown = %v/%q, want false/draining", ok, reason)
	}
}

// TestRecoveryWithPriorEpochLeaseRecords: the job WAL and the fleet
// lease table share one journal. A restart into a new fleet epoch must
// replay the job records normally while discarding the dead
// incarnation's lease grants — counted, fence-preserving, and without
// tripping job recovery.
func TestRecoveryWithPriorEpochLeaseRecords(t *testing.T) {
	dir := t.TempDir()
	f1 := fleet.New(fleet.Config{ID: "n1", Peers: []string{"n1", "n2"}, Epoch: 1})
	never := make(chan struct{})
	s1 := openDurable(t, dir, Config{Workers: 1, NodeID: "n1", Fleet: f1, Diagnoser: blockingDiagnoser(never)})
	var ids []string
	for i := 1; i <= 2; i++ {
		st, err := submitN(t, s1, i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitState(t, s1, ids[0], StateRunning)
	// Epoch-1 lease activity lands in the same WAL as the job records.
	l, ok := f1.Leases().Acquire("branch|deadbeef|k=2|ord=1", "n2", time.Minute, time.Now())
	if !ok {
		t.Fatal("lease acquire failed")
	}
	if _, ok := f1.Leases().Renew(l, time.Minute, time.Now()); !ok {
		t.Fatal("lease renew failed")
	}
	// Crash with the lease still out.

	f2 := fleet.New(fleet.Config{ID: "n1", Peers: []string{"n1", "n2"}, Epoch: 2})
	s2 := openDurable(t, dir, Config{Workers: 1, NodeID: "n1", Fleet: f2, Diagnoser: instantDiagnoser("A1 => B1")})
	defer s2.Shutdown(context.Background())
	if got := s2.Metrics().JobsRecovered.Value(); got != 2 {
		t.Errorf("jobs_recovered = %d, want 2 (lease records must not derail job replay)", got)
	}
	for _, id := range ids {
		if st, err := s2.Wait(context.Background(), id); err != nil || st.State != StateDone {
			t.Errorf("job %s: %v / %+v, want done", id, err, st)
		}
	}
	lt := f2.Leases()
	if lt.Active() != 0 {
		t.Errorf("%d leases live after an epoch bump, want 0", lt.Active())
	}
	if st := lt.Stats(); st.StaleEpoch == 0 {
		t.Error("no prior-epoch lease record was counted")
	}
	// The dead incarnation's fence is honored: a fresh grant on the same
	// branch must carry a strictly larger token.
	nl, ok := lt.Acquire("branch|deadbeef|k=2|ord=1", "n2", time.Minute, time.Now())
	if !ok || nl.Fence <= l.Fence {
		t.Errorf("post-restart fence = %d/%v, want > %d", nl.Fence, ok, l.Fence)
	}
}

// TestJobStatusCarriesNode: in fleet mode every status names the
// replica that accepted the job — the operator-facing trace of routing
// and handoff decisions.
func TestJobStatusCarriesNode(t *testing.T) {
	s := New(Config{Workers: 1, NodeID: "n2", Diagnoser: instantDiagnoser("A1 => B1")})
	defer s.Shutdown(context.Background())
	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Node != "n2" {
		t.Errorf("status node = %q, want n2", st.Node)
	}
	if h := s.Health(); h.Node != "n2" {
		t.Errorf("health node = %q, want n2", h.Node)
	}
}

package service_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"aitia/internal/obs"
	"aitia/internal/service"
	"aitia/internal/service/httpapi"
)

// TestJobTraceEndpoint: a completed job serves its execution trace as
// valid Chrome trace-event JSON covering both the service lifecycle
// (queued/run spans) and the pipeline it ran (search and flip spans),
// and the span aggregates surface in the result and in /metrics.
func TestJobTraceEndpoint(t *testing.T) {
	svc := service.New(service.Config{Workers: 1})
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	client := srv.Client()

	code, resp := postJSON(t, client, srv.URL+"/v1/diagnose", `{"scenario": "fig1"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/diagnose: status %d: %s", code, resp)
	}
	var st service.JobStatus
	mustUnmarshal(t, resp, &st)
	final := pollDone(t, client, srv.URL, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("job state = %q (error %q), want done", final.State, final.Error)
	}
	if len(final.Result.Spans) == 0 {
		t.Error("done job's result has no span aggregates")
	}

	code, trace := getBody(t, client, srv.URL+"/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d: %s", code, trace)
	}
	if err := obs.ValidateChrome(trace); err != nil {
		t.Fatalf("job trace does not validate: %v\n%s", err, trace)
	}
	for _, want := range []string{`"queued"`, `"run"`, `"search"`, `"flip"`, `"diagnose"`} {
		if !bytes.Contains(trace, []byte(want)) {
			t.Errorf("job trace missing %s span", want)
		}
	}

	code, metrics := getBody(t, client, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	for _, want := range []string{
		`aitia_span_count_total{cat="lifs",name="search"} 1`,
		`aitia_span_seconds_total{cat="job",name="run"}`,
	} {
		if !bytes.Contains(metrics, []byte(want)) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	if _, err := svc.JobTrace("job-999999"); err == nil {
		t.Error("JobTrace on unknown id did not fail")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func mustUnmarshal(t *testing.T, data []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatal(err)
	}
}

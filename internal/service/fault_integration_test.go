package service_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aitia"
	"aitia/internal/kir"
	"aitia/internal/obs"
	"aitia/internal/service"
	"aitia/internal/service/httpapi"
)

// TestPartialResultOverHTTP: a degraded (Partial) diagnosis serializes
// losslessly through GET /v1/jobs/{id} — the partial flag, the
// machine-readable reason, the untested races and their "unknown"
// verdicts all reach the client.
func TestPartialResultOverHTTP(t *testing.T) {
	partial := func(ctx context.Context, prog *kir.Program, req service.Request, tr *obs.Tracer, _ service.FaultContext) (*aitia.ResultSummary, error) {
		return &aitia.ResultSummary{
			Failure:       "KASAN: use-after-free",
			Chain:         "A1 => B1 → KASAN: use-after-free",
			Partial:       true,
			PartialReason: "flip_retries_exhausted=1",
			UnknownRaces:  []aitia.Race{{First: "A2", Second: "B2", FirstThread: "A", SecondThread: "B", Variable: "g"}},
			Verdicts: []aitia.RaceVerdict{
				{Race: aitia.Race{First: "A1", Second: "B1"}, Verdict: "root-cause"},
				{Race: aitia.Race{First: "A2", Second: "B2"}, Verdict: "unknown"},
			},
		}, nil
	}
	svc := service.New(service.Config{Workers: 1, Diagnoser: partial})
	defer svc.Shutdown(context.Background())
	srv := httptest.NewServer(httpapi.New(svc))
	defer srv.Close()
	client := srv.Client()

	code, resp := postJSON(t, client, srv.URL+"/v1/diagnose", `{"scenario": "cve-2017-15649"}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d: %s", code, resp)
	}
	var st service.JobStatus
	if err := json.Unmarshal(resp, &st); err != nil {
		t.Fatal(err)
	}
	final := pollDone(t, client, srv.URL, st.ID)
	if final.State != service.StateDone {
		t.Fatalf("state = %q (error %q), want done", final.State, final.Error)
	}
	if !final.Result.Partial || final.Result.PartialReason != "flip_retries_exhausted=1" {
		t.Errorf("partial lost in transit: %+v", final.Result)
	}
	if len(final.Result.UnknownRaces) != 1 || final.Result.UnknownRaces[0].First != "A2" {
		t.Errorf("unknown races lost in transit: %+v", final.Result.UnknownRaces)
	}
	unknowns := 0
	for _, v := range final.Result.Verdicts {
		if v.Verdict == "unknown" {
			unknowns++
		}
	}
	if unknowns != 1 {
		t.Errorf("unknown verdicts = %d, want 1", unknowns)
	}

	// The raw wire body must carry the JSON field names the API documents.
	code, body := getBody(t, client, srv.URL+"/v1/jobs/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("GET job: status %d", code)
	}
	for _, want := range []string{`"partial"`, `"partial_reason"`, `"unknown_races"`} {
		if !strings.Contains(string(body), want) {
			t.Errorf("wire body missing %s:\n%.400s", want, body)
		}
	}

	// Partial completions are counted.
	code, metrics := getBody(t, client, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", code)
	}
	if got := metricValue(t, metrics, "aitia_jobs_partial_total"); got != 1 {
		t.Errorf("aitia_jobs_partial_total = %g, want 1", got)
	}
}

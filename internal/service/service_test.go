package service

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aitia"
	"aitia/internal/kir"
	"aitia/internal/obs"
)

// blockingDiagnoser returns a Diagnoser that parks until release is
// closed (or the job's context expires), so tests can hold workers busy
// and exercise the queue deterministically.
func blockingDiagnoser(release <-chan struct{}) Diagnoser {
	return func(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, _ FaultContext) (*aitia.ResultSummary, error) {
		select {
		case <-release:
			return &aitia.ResultSummary{Failure: "fake", Chain: "A1 => B1"}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// submitN submits a request distinguished by index i (distinct cache
// keys) and returns its status.
func submitN(t *testing.T, s *Service, i int) (JobStatus, error) {
	t.Helper()
	return s.Submit(Request{
		Scenario: "cve-2017-15649",
		Options:  RequestOptions{StepBudget: 10000 + i},
	})
}

// waitState polls until the job reaches the wanted state.
func waitState(t *testing.T, s *Service, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := s.Job(id)
	t.Fatalf("job %s stuck in %q, want %q", id, st.State, want)
}

// TestQueueBackpressure: with one busy worker and a depth-1 queue, the
// third submission is rejected with ErrQueueFull; after the worker
// frees up, submissions are accepted again.
func TestQueueBackpressure(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, Diagnoser: blockingDiagnoser(release)})
	defer s.Shutdown(context.Background())

	st1, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st1.ID, StateRunning) // worker holds job 1

	st2, err := submitN(t, s, 2) // fills the queue
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submitN(t, s, 3); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if got := s.Metrics().JobsRejected.Value(); got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}
	if got := s.Metrics().QueueDepth.Value(); got != 1 {
		t.Errorf("queue_depth = %d, want 1", got)
	}

	close(release)
	waitState(t, s, st1.ID, StateDone)
	waitState(t, s, st2.ID, StateDone)
	if _, err := submitN(t, s, 4); err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
}

// TestCancelQueuedAndRunning: canceling a queued job marks it canceled
// without a worker ever picking it up; canceling a running job stops
// its diagnoser via context.
func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Workers: 1, QueueDepth: 4, Diagnoser: blockingDiagnoser(release)})
	defer s.Shutdown(context.Background())

	running, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, running.ID, StateRunning)

	queued, err := submitN(t, s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	st, err := s.Wait(context.Background(), queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("queued job state = %q, want canceled", st.State)
	}

	if err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	st, err = s.Wait(context.Background(), running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Errorf("running job state = %q, want canceled", st.State)
	}
	if got := s.Metrics().JobsCanceled.Value(); got != 2 {
		t.Errorf("jobs_canceled = %d, want 2", got)
	}

	if err := s.Cancel("job-999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("cancel unknown: err = %v, want ErrNotFound", err)
	}
}

// TestGracefulDrain: Shutdown refuses new work but waits for queued and
// in-flight jobs to complete.
func TestGracefulDrain(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 4, Diagnoser: blockingDiagnoser(release)})

	inflight, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, inflight.ID, StateRunning)
	queued, err := submitN(t, s, 2)
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Shutdown(context.Background()) }()

	// Draining: new submissions refused, but the drain must not finish
	// while a job is still blocked in the diagnoser.
	time.Sleep(20 * time.Millisecond)
	if _, err := submitN(t, s, 3); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit while draining: err = %v, want ErrClosed", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Shutdown returned %v with a job still in flight", err)
	default:
	}
	if h := s.Health(); h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, id := range []string{inflight.ID, queued.ID} {
		st, err := s.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Errorf("job %s after drain: state = %q, want done", id, st.State)
		}
	}
	// Second Shutdown is a no-op.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("repeat Shutdown: %v", err)
	}
}

// TestShutdownDeadline: Shutdown gives up with ctx.Err() when a job
// outlives the drain context.
func TestShutdownDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := New(Config{Workers: 1, Diagnoser: blockingDiagnoser(release)})
	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s, st.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown: err = %v, want DeadlineExceeded", err)
	}
}

// TestSubmitValidation: malformed requests fail with ErrBadRequest
// before touching the queue.
func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())
	for _, req := range []Request{
		{}, // neither scenario nor source
		{Scenario: "no-such-scenario"},
		{Scenario: "cve-2017-15649", Source: "func f\nret\nend\n"}, // both
		{Source: "this is not kasm"},
	} {
		if _, err := s.Submit(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Submit(%+v): err = %v, want ErrBadRequest", req, err)
		}
	}
	if _, err := s.Job("job-000042"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Job unknown: err = %v, want ErrNotFound", err)
	}
}

// TestJobTimeout: a per-request timeout shorter than the service-wide
// deadline cancels the job, surfacing as failed with a deadline error.
func TestJobTimeout(t *testing.T) {
	never := make(chan struct{}) // diagnoser only returns via ctx
	defer close(never)
	s := New(Config{Workers: 1, Diagnoser: blockingDiagnoser(never)})
	defer s.Shutdown(context.Background())

	st, err := s.Submit(Request{
		Scenario: "cve-2017-15649",
		Options:  RequestOptions{TimeoutMS: 25},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateFailed {
		t.Errorf("state = %q, want failed", got.State)
	}
	if got.Error == "" {
		t.Error("timed-out job has no error")
	}
}

// TestCacheLRUEviction: the LRU evicts the least recently used entry at
// capacity and refreshes entries on hit.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	for i := 0; i < 3; i++ {
		c.add(fmt.Sprintf("k%d", i), &aitia.ResultSummary{Chain: fmt.Sprintf("c%d", i)})
	}
	if _, ok := c.get("k0"); ok {
		t.Error("k0 should have been evicted")
	}
	if _, ok := c.get("k1"); !ok { // refresh k1
		t.Fatal("k1 missing")
	}
	c.add("k3", &aitia.ResultSummary{Chain: "c3"})
	if _, ok := c.get("k2"); ok {
		t.Error("k2 should have been evicted (k1 was refreshed)")
	}
	if _, ok := c.get("k1"); !ok {
		t.Error("k1 should have survived")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

package service

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"aitia"
	"aitia/internal/faultinject"
	"aitia/internal/kir"
	"aitia/internal/obs"
)

// TestAdmissionHiccupRejects: an injected queue-admission fault surfaces
// as ordinary ErrQueueFull backpressure (HTTP 429), still carrying the
// fault for chaos-test assertions.
func TestAdmissionHiccupRejects(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	plan := faultinject.NewPlan(1, 0).SetRate(faultinject.KindQueueAdmit, 1)
	s := New(Config{Workers: 1, Fault: plan, Diagnoser: blockingDiagnoser(release)})
	defer s.Shutdown(context.Background())

	_, err := submitN(t, s, 1)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if !faultinject.Is(err) {
		t.Fatalf("err = %v, should carry the injected fault", err)
	}
	if got := s.Metrics().JobsRejected.Value(); got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}
	if st := plan.Stats(); st.Fired[faultinject.KindQueueAdmit] != 1 {
		t.Errorf("admit faults fired = %d, want 1", st.Fired[faultinject.KindQueueAdmit])
	}
}

// faultingDiagnoser fails with a classified worker-death fault for the
// first `failures` calls, then succeeds. It records each run's fault-plan
// seed so tests can assert the requeue forked a fresh epoch.
func faultingDiagnoser(failures int, runs *atomic.Int32, seeds *[]int64) Diagnoser {
	return func(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, fi FaultContext) (*aitia.ResultSummary, error) {
		n := runs.Add(1)
		if seeds != nil {
			*seeds = append(*seeds, fi.Plan.Seed())
		}
		if int(n) <= failures {
			return nil, &faultinject.Fault{Kind: faultinject.KindWorkerDeath, Op: "test.worker-vm", Key: uint64(n)}
		}
		return &aitia.ResultSummary{Failure: "fake", Chain: "A1 => B1"}, nil
	}
}

// TestRequeueAfterWorkerDeath: a job whose run dies to injected faults
// goes back on the queue — each time under a freshly forked fault plan —
// and completes once a run survives. The intermediate failures never
// surface to the client.
func TestRequeueAfterWorkerDeath(t *testing.T) {
	var runs atomic.Int32
	var seeds []int64
	s := New(Config{
		Workers:     1,
		MaxRequeues: 2,
		Fault:       faultinject.NewPlan(77, 0), // rate 0: plan only seeds the per-epoch forks
		Diagnoser:   faultingDiagnoser(2, &runs, &seeds),
	})
	defer s.Shutdown(context.Background())

	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %q (error %q), want done", final.State, final.Error)
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("diagnoser ran %d times, want 3", got)
	}
	if got := s.Metrics().JobsRequeued.Value(); got != 2 {
		t.Errorf("jobs_requeued = %d, want 2", got)
	}
	if got := s.Metrics().JobsFailed.Value(); got != 0 {
		t.Errorf("jobs_failed = %d, want 0 (requeues are not failures)", got)
	}
	if len(seeds) != 3 || seeds[0] == seeds[1] || seeds[1] == seeds[2] || seeds[0] == seeds[2] {
		t.Errorf("requeue epochs did not fork the plan: seeds %v", seeds)
	}
}

// TestRequeueBudgetExhausted: when every run dies, the job fails for
// good after MaxRequeues requeues, with the classified error visible.
func TestRequeueBudgetExhausted(t *testing.T) {
	var runs atomic.Int32
	s := New(Config{
		Workers:     1,
		MaxRequeues: 2,
		Diagnoser:   faultingDiagnoser(1<<30, &runs, nil),
	})
	defer s.Shutdown(context.Background())

	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if final.Error == "" {
		t.Error("failed job has no error")
	}
	if got := runs.Load(); got != 3 {
		t.Errorf("diagnoser ran %d times, want 3 (1 + MaxRequeues)", got)
	}
	if got := s.Metrics().JobsRequeued.Value(); got != 2 {
		t.Errorf("jobs_requeued = %d, want 2", got)
	}
}

// TestRequeuesDisabled: MaxRequeues < 0 turns requeueing off — the first
// classified failure is terminal.
func TestRequeuesDisabled(t *testing.T) {
	var runs atomic.Int32
	s := New(Config{Workers: 1, MaxRequeues: -1, Diagnoser: faultingDiagnoser(1<<30, &runs, nil)})
	defer s.Shutdown(context.Background())

	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if final, _ := s.Wait(context.Background(), st.ID); final.State != StateFailed {
		t.Fatalf("state = %q, want failed", final.State)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("diagnoser ran %d times, want 1", got)
	}
}

// TestDrainCancelsBackoff: a worker parked in an exponential-backoff
// sleep (far longer than the test budget) must wake the moment Shutdown
// starts — the drain signal is wired into RetryPolicy.SkipBackoff.
func TestDrainCancelsBackoff(t *testing.T) {
	inBackoff := make(chan struct{})
	diag := func(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, fi FaultContext) (*aitia.ResultSummary, error) {
		// Every attempt faults, so Do spends its time in backoff sleeps.
		plan := faultinject.NewPlan(1, 0).SetRate(faultinject.KindSnapshotRestore, 1)
		rp := fi.Retry // SkipBackoff pre-wired to the service drain
		rp.MaxAttempts = 3
		rp.BaseBackoff = time.Hour
		rp.MaxBackoff = time.Hour
		first := true
		return nil, faultinject.Do(ctx, plan, rp, func(ctx context.Context, attempt int) error {
			if first {
				first = false
				close(inBackoff)
			}
			return plan.Check(faultinject.KindSnapshotRestore, "test.restore", 0, attempt)
		})
	}
	s := New(Config{Workers: 1, MaxRequeues: -1, Diagnoser: diag})

	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	<-inBackoff

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v (drain did not cut the backoff)", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v, want immediate backoff skip", elapsed)
	}
	if final, _ := s.Job(st.ID); final.State != StateFailed {
		t.Errorf("state = %q, want failed (retries exhausted during drain)", final.State)
	}
}

package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"aitia"
	"aitia/internal/durable"
)

// Journal ops: every job state transition the service commits is first
// appended to the write-ahead journal as one of these records. Replay
// at startup folds them, last-wins per job, back into the job table.
const (
	opSubmit   = "submit"
	opStart    = "start"
	opRequeue  = "requeue"
	opDone     = "done"
	opFailed   = "failed"
	opCanceled = "canceled"
)

// jobRecord is one journal entry. Submit records carry the full request
// (enough to re-resolve and re-run the job after a crash); terminal
// records carry the outcome. All other fields are progress metadata.
type jobRecord struct {
	Op  string    `json:"op"`
	ID  string    `json:"id"`
	Seq uint64    `json:"seq,omitempty"` // submission sequence, for nextID recovery
	At  time.Time `json:"at"`

	// Submit fields.
	Req      *Request `json:"req,omitempty"`
	Key      string   `json:"key,omitempty"` // result-cache key
	CacheHit bool     `json:"cache_hit,omitempty"`

	// Progress/terminal fields.
	Epoch       int                  `json:"epoch,omitempty"` // requeue count = fault-plan fork epoch
	Error       string               `json:"error,omitempty"`
	Reason      string               `json:"reason,omitempty"` // machine-readable failure class
	Summary     *aitia.ResultSummary `json:"summary,omitempty"`
	QueueWaitMS int64                `json:"queue_wait_ms,omitempty"`
	RunMS       int64                `json:"run_ms,omitempty"`
}

// journalAppend commits one record to the WAL. Callers hold s.mu, so
// journal order equals state-transition order. A nil journal (no
// DataDir) makes this a no-op; append errors are swallowed — durability
// is best-effort and must never fail a live job transition.
func (s *Service) journalAppend(rec jobRecord) {
	if s.journal == nil {
		return
	}
	rec.At = time.Now()
	payload, err := json.Marshal(rec)
	if err != nil {
		return
	}
	_ = s.journal.Append(payload)
}

// replayedJob is the folded journal state of one job.
type replayedJob struct {
	submit jobRecord // the (latest) submit record
	state  State
	epoch  int
	err    string
	reason string
	sum    *aitia.ResultSummary
	wait   int64
	run    int64
}

// replayState is the outcome of folding the whole journal.
type replayState struct {
	jobs   map[string]*replayedJob
	order  []string    // submit order (first submit wins the slot)
	warm   []jobRecord // terminal done records in journal order, for cache warming
	maxSeq uint64
}

// foldJournal replays the WAL into a job table. Unknown ops and records
// for unknown jobs are skipped (forward compatibility); a re-submit of
// a known id resets the job (the submit barrier in the live path makes
// that impossible today, but the journal format allows it).
func foldJournal(j *durable.Journal) (*replayState, error) {
	st := &replayState{jobs: make(map[string]*replayedJob)}
	err := j.Replay(func(payload []byte) error {
		var rec jobRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil // tolerate alien records
		}
		if rec.ID == "" {
			return nil
		}
		if rec.Op == opSubmit {
			if _, known := st.jobs[rec.ID]; !known {
				st.order = append(st.order, rec.ID)
			}
			st.jobs[rec.ID] = &replayedJob{submit: rec, state: StateQueued}
			if rec.Seq > st.maxSeq {
				st.maxSeq = rec.Seq
			}
			return nil
		}
		rj, known := st.jobs[rec.ID]
		if !known {
			return nil
		}
		switch rec.Op {
		case opStart:
			rj.state = StateRunning
			rj.wait = rec.QueueWaitMS
		case opRequeue:
			rj.state = StateQueued
			rj.epoch = rec.Epoch
			rj.err = ""
		case opDone:
			rj.state = StateDone
			rj.sum = rec.Summary
			rj.run = rec.RunMS
			st.warm = append(st.warm, rec)
		case opFailed:
			rj.state = StateFailed
			rj.err = rec.Error
			rj.reason = rec.Reason
			rj.run = rec.RunMS
		case opCanceled:
			rj.state = StateCanceled
			rj.err = rec.Error
		}
		return nil
	})
	if errors.Is(err, durable.ErrCorrupt) {
		// Mid-segment corruption: the salvaged prefix is all the
		// history there is. Start from it rather than refusing to start
		// at all; the corruption is counted in the journal stats.
		return st, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: journal replay: %w", err)
	}
	return st, nil
}

// snapshotRecord renders a replayed job back into the minimal record
// pair compaction keeps: its submit record, then (when it progressed)
// its latest state record. Emitting in submit order keeps the compacted
// journal's cache-warming order equal to the original's for terminal
// results, because warmCache re-sorts nothing — and the final ordering
// among done jobs is preserved by warm order, handled separately.
func (rj *replayedJob) records() []jobRecord {
	recs := []jobRecord{rj.submit}
	switch rj.state {
	case StateQueued:
		if rj.epoch > 0 {
			recs = append(recs, jobRecord{Op: opRequeue, ID: rj.submit.ID, Epoch: rj.epoch, At: rj.submit.At})
		}
	case StateRunning:
		recs = append(recs, jobRecord{Op: opStart, ID: rj.submit.ID, QueueWaitMS: rj.wait, At: rj.submit.At})
	case StateDone:
		recs = append(recs, jobRecord{Op: opDone, ID: rj.submit.ID, Summary: rj.sum, RunMS: rj.run, At: rj.submit.At})
	case StateFailed:
		recs = append(recs, jobRecord{Op: opFailed, ID: rj.submit.ID, Error: rj.err, Reason: rj.reason, RunMS: rj.run, At: rj.submit.At})
	case StateCanceled:
		recs = append(recs, jobRecord{Op: opCanceled, ID: rj.submit.ID, Error: rj.err, At: rj.submit.At})
	}
	return recs
}

// compactJournal rewrites the WAL to the minimal record set that
// reproduces the current job table: per job, a submit record plus its
// latest state. Done jobs are emitted last, in their original terminal
// order, so a replay of the compacted journal warms the LRU cache in
// the same order as a replay of the full one.
func compactJournal(j *durable.Journal, st *replayState) error {
	return j.Compact(func(emit func([]byte) error) error {
		emitRec := func(rec jobRecord) error {
			payload, err := json.Marshal(rec)
			if err != nil {
				return err
			}
			return emit(payload)
		}
		doneOrder := make(map[string]int, len(st.warm))
		for i, rec := range st.warm {
			doneOrder[rec.ID] = i // last terminal done wins
		}
		for _, id := range st.order {
			rj := st.jobs[id]
			if rj.state == StateDone {
				if err := emitRec(rj.submit); err != nil {
					return err
				}
				continue // terminal record emitted below, in warm order
			}
			for _, rec := range rj.records() {
				if err := emitRec(rec); err != nil {
					return err
				}
			}
		}
		for i, rec := range st.warm {
			if doneOrder[rec.ID] != i {
				continue // superseded terminal record
			}
			if rj, ok := st.jobs[rec.ID]; !ok || rj.state != StateDone {
				continue
			}
			if err := emitRec(rec); err != nil {
				return err
			}
		}
		return nil
	})
}

package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"aitia"
	"aitia/internal/durable"
	"aitia/internal/faultinject"
	"aitia/internal/prior"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FGauge is a float-valued gauge (ratios, rates).
type FGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBounds are the upper bounds (seconds) of the duration histograms:
// exponential from 1ms to 60s, covering sub-millisecond cache hits up to
// multi-second diagnoser runs.
const numHistBounds = 15

var histBounds = [numHistBounds]float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram is a cumulative histogram of seconds with fixed buckets.
type Histogram struct {
	buckets [numHistBounds + 1]atomic.Uint64 // +1 for +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// Observe records one measurement in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := 0
	for i < len(histBounds) && seconds > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + seconds)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Metrics is the service's metric registry: job-lifecycle counters, the
// cache hit/miss counters, stage-duration histograms and occupancy
// gauges, exported in Prometheus text exposition format at /metrics.
type Metrics struct {
	JobsSubmitted Counter // accepted into the queue (or served from cache)
	JobsCompleted Counter // finished with a diagnosis
	JobsFailed    Counter // finished with an error
	JobsCanceled  Counter // canceled before completing
	JobsRejected  Counter // rejected with queue-full backpressure
	JobsRequeued  Counter // put back on the queue after classified infrastructure faults
	// JobsRequeueExhausted counts jobs that failed because they hit the
	// MaxRequeues budget — distinct from JobsFailed so operators can
	// tell "infrastructure kept flaking" from "the diagnosis broke".
	JobsRequeueExhausted Counter
	JobsPartial   Counter // completed with a Partial (degraded) diagnosis
	JobsRecovered Counter // re-enqueued from the journal after a restart
	CacheHits     Counter // submissions answered from the result cache
	CacheMisses   Counter // submissions that had to run the pipeline

	// Per-kind splits (aitia_jobs_total{kind=...}): trace jobs diagnose
	// a program blind, report jobs from a crash report.
	JobsByKind      [numJobKinds]Counter // accepted submissions by input kind
	CacheHitsByKind [numJobKinds]Counter // cache hits by input kind

	QueueWait     Histogram // seconds from submit to worker pickup
	ReproduceTime Histogram // seconds in the LIFS reproducing stage
	DiagnoseTime  Histogram // seconds in the Causality Analysis stage

	QueueDepth  Gauge // jobs waiting in the queue
	BusyWorkers Gauge // workers currently diagnosing

	// LIFS search telemetry, aggregated over completed jobs.
	LIFSSchedules Counter // schedules executed by the reproducing searches
	LIFSPruned    Counter // branches pruned as equivalent states
	SnapshotBytes Counter // bytes copied by copy-on-write checkpointing
	PruneRatio    FGauge  // pruned/(pruned+schedules) of the last completed job

	// Incremental-replay prefix-cache telemetry, aggregated over
	// completed jobs (search + analysis per job).
	ExecutedInstrs Counter // total instructions executed by the pipelines
	ReplayedInstrs Counter // instructions spent re-executing known prefixes
	SavedInstrs    Counter // prefix instructions skipped via pinned snapshots
	PrefixHits     Counter // runs started from a pinned prefix snapshot
	PinnedBytes    Gauge   // last completed job's peak pinned prefix bytes

	// Learned flip-ordering telemetry, aggregated over completed jobs.
	FlipsExecuted Counter // causality flip tests actually run
	FlipsSkipped  Counter // flip tests settled benign by the prior without a run
	PriorHits     Counter // tested races whose signature had prior observations
	// PhaseRate is the last completed job's per-phase schedule throughput
	// (schedules per second), indexed by the phase's preemption budget.
	PhaseRate [maxPhaseRate]FGauge

	// Execution-span aggregates from the tracer, labelled by span
	// category and name, accumulated over completed jobs. Guarded by
	// spanMu because the label set is dynamic.
	spanMu      sync.Mutex
	spanCount   map[string]uint64
	spanSeconds map[string]float64

	// FaultPlan, when set, exports the plan's injection statistics
	// (aitia_fault_* / aitia_retry_*) alongside the service metrics. The
	// plan keeps its own atomic counters; this is just the export hook.
	FaultPlan *faultinject.Plan
	// Journal and Checkpoints, when set, export the durability layer's
	// statistics (aitia_journal_* / aitia_checkpoint_*). Both keep their
	// own atomic counters; these are just the export hooks.
	Journal     *durable.Journal
	Checkpoints *durable.CheckpointStore
	// Prior, when set, exports the learned flip prior's size
	// (aitia_prior_pairs / aitia_prior_observations_total).
	Prior *prior.Store
}

// maxPhaseRate bounds the exported per-phase gauges; deeper phases (which
// the corpus never reaches) fold into the last slot.
const maxPhaseRate = 8

// observeSearch folds one completed diagnosis' search statistics into the
// registry.
func (m *Metrics) observeSearch(sum *aitia.ResultSummary) {
	m.LIFSSchedules.Add(uint64(sum.LIFSSchedules))
	m.LIFSPruned.Add(uint64(sum.LIFSPruned))
	m.SnapshotBytes.Add(sum.SnapshotBytes)
	if total := sum.LIFSSchedules + sum.LIFSPruned; total > 0 {
		m.PruneRatio.Set(float64(sum.LIFSPruned) / float64(total))
	}
	m.ExecutedInstrs.Add(sum.ExecutedInstrs)
	m.ReplayedInstrs.Add(sum.ReplayedInstrs)
	m.SavedInstrs.Add(sum.SavedInstrs)
	m.PrefixHits.Add(uint64(sum.PrefixHits))
	m.PinnedBytes.Set(int64(sum.PinnedBytes))
	m.FlipsExecuted.Add(uint64(sum.FlipsExecuted))
	m.FlipsSkipped.Add(uint64(sum.FlipsSkipped))
	m.PriorHits.Add(uint64(sum.PriorHits))
	for _, p := range sum.Phases {
		i := p.Budget
		if i >= maxPhaseRate {
			i = maxPhaseRate - 1
		}
		if secs := p.Elapsed.Seconds(); secs > 0 {
			m.PhaseRate[i].Set(float64(p.Schedules) / secs)
		}
	}
}

// observeSpans folds one completed job's execution-span aggregates into
// the per-(category, name) totals.
func (m *Metrics) observeSpans(spans []aitia.SpanStat) {
	if len(spans) == 0 {
		return
	}
	m.spanMu.Lock()
	defer m.spanMu.Unlock()
	if m.spanCount == nil {
		m.spanCount = make(map[string]uint64)
		m.spanSeconds = make(map[string]float64)
	}
	for _, sp := range spans {
		key := fmt.Sprintf("cat=%q,name=%q", sp.Cat, sp.Name)
		m.spanCount[key] += uint64(sp.Count)
		m.spanSeconds[key] += float64(sp.Total) / 1e9
	}
}

// WritePrometheus renders every metric in Prometheus text format.
func (m *Metrics) WritePrometheus(w io.Writer) {
	counter := func(name, help string, c *Counter) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, c.Value())
	}
	gauge := func(name, help string, g *Gauge) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, g.Value())
	}
	hist := func(name, help string, h *Histogram) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		cum := uint64(0)
		for i, bound := range histBounds {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", bound), cum)
		}
		cum += h.buckets[len(histBounds)].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", name, math.Float64frombits(h.sumBits.Load()))
		fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
	}

	counter("aitia_jobs_submitted_total", "Diagnosis jobs accepted.", &m.JobsSubmitted)
	fmt.Fprintf(w, "# HELP aitia_jobs_total Diagnosis jobs accepted, by input kind (trace = blind program search, report = crash-report driven).\n# TYPE aitia_jobs_total counter\n")
	for i, kind := range jobKindNames {
		fmt.Fprintf(w, "aitia_jobs_total{kind=%q} %d\n", kind, m.JobsByKind[i].Value())
	}
	counter("aitia_jobs_completed_total", "Diagnosis jobs completed successfully.", &m.JobsCompleted)
	counter("aitia_jobs_failed_total", "Diagnosis jobs that failed.", &m.JobsFailed)
	counter("aitia_jobs_canceled_total", "Diagnosis jobs canceled.", &m.JobsCanceled)
	counter("aitia_jobs_rejected_total", "Submissions rejected because the queue was full.", &m.JobsRejected)
	counter("aitia_jobs_requeued_total", "Jobs requeued after classified infrastructure faults.", &m.JobsRequeued)
	counter("aitia_jobs_requeue_exhausted_total", "Jobs failed after exhausting the requeue budget.", &m.JobsRequeueExhausted)
	counter("aitia_jobs_partial_total", "Jobs completed with a Partial (degraded) diagnosis.", &m.JobsPartial)
	counter("aitia_jobs_recovered_total", "Jobs re-enqueued from the journal after a restart.", &m.JobsRecovered)
	counter("aitia_cache_hits_total", "Submissions served from the result cache.", &m.CacheHits)
	// Same family, split by job kind; the unlabelled sample above stays
	// the total.
	for i, kind := range jobKindNames {
		fmt.Fprintf(w, "aitia_cache_hits_total{kind=%q} %d\n", kind, m.CacheHitsByKind[i].Value())
	}
	counter("aitia_cache_misses_total", "Submissions that ran the diagnosis pipeline.", &m.CacheMisses)
	hist("aitia_queue_wait_seconds", "Seconds jobs spent queued before a worker picked them up.", &m.QueueWait)
	hist("aitia_reproduce_seconds", "Seconds spent in the LIFS reproducing stage.", &m.ReproduceTime)
	hist("aitia_diagnose_seconds", "Seconds spent in the Causality Analysis stage.", &m.DiagnoseTime)
	gauge("aitia_queue_depth", "Jobs currently waiting in the queue.", &m.QueueDepth)
	gauge("aitia_busy_workers", "Workers currently running a diagnosis.", &m.BusyWorkers)
	counter("aitia_lifs_schedules_total", "Schedules executed by the LIFS searches of completed jobs.", &m.LIFSSchedules)
	counter("aitia_lifs_pruned_total", "LIFS branches pruned as equivalent states.", &m.LIFSPruned)
	counter("aitia_snapshot_bytes_total", "Bytes copied by copy-on-write checkpointing during the searches.", &m.SnapshotBytes)
	counter("aitia_executed_instrs_total", "Instructions executed by the diagnosis pipelines of completed jobs.", &m.ExecutedInstrs)
	counter("aitia_replayed_instrs_total", "Instructions spent re-executing known schedule prefixes.", &m.ReplayedInstrs)
	counter("aitia_saved_instrs_total", "Prefix instructions skipped by restoring pinned snapshots.", &m.SavedInstrs)
	counter("aitia_prefix_hits_total", "Runs started from a pinned prefix snapshot.", &m.PrefixHits)
	gauge("aitia_prefix_pinned_bytes", "Last completed job's peak bytes pinned by live prefix snapshots.", &m.PinnedBytes)
	counter("aitia_flips_executed_total", "Causality flip tests executed by completed jobs.", &m.FlipsExecuted)
	counter("aitia_flips_skipped_total", "Flip tests settled benign by the learned prior without a run.", &m.FlipsSkipped)
	counter("aitia_prior_hits_total", "Tested races whose pair signature had prior observations.", &m.PriorHits)
	fmt.Fprintf(w, "# HELP aitia_lifs_prune_ratio Pruned fraction of the last completed job's search.\n# TYPE aitia_lifs_prune_ratio gauge\naitia_lifs_prune_ratio %g\n", m.PruneRatio.Value())
	fmt.Fprintf(w, "# HELP aitia_lifs_phase_schedules_per_second Last completed job's schedule throughput by preemption budget.\n# TYPE aitia_lifs_phase_schedules_per_second gauge\n")
	for i := range m.PhaseRate {
		fmt.Fprintf(w, "aitia_lifs_phase_schedules_per_second{budget=\"%d\"} %g\n", i, m.PhaseRate[i].Value())
	}

	raw := func(name, help, typ string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, typ, name, v)
	}
	if j := m.Journal; j != nil {
		st := j.Stats()
		raw("aitia_journal_appends_total", "Records appended to the job journal.", "counter", st.Appends)
		raw("aitia_journal_appended_bytes_total", "Payload bytes appended to the job journal.", "counter", st.AppendedBytes)
		raw("aitia_journal_segments_total", "Journal segments created.", "counter", st.Segments)
		raw("aitia_journal_compactions_total", "Journal compactions performed.", "counter", st.Compactions)
		raw("aitia_journal_replayed_total", "Records replayed from the journal at startup.", "counter", st.Replayed)
		raw("aitia_journal_torn_tails_total", "Torn journal tails dropped during replay or repair.", "counter", st.TornTails)
		raw("aitia_journal_corrupt_records_total", "Mid-segment corrupt journal records encountered.", "counter", st.CorruptRecords)
		raw("aitia_journal_syncs_total", "Journal fsyncs issued.", "counter", st.Syncs)
	}
	if c := m.Checkpoints; c != nil {
		st := c.Stats()
		raw("aitia_checkpoint_saves_total", "Pipeline checkpoints saved.", "counter", st.Saves)
		raw("aitia_checkpoint_loads_total", "Pipeline checkpoints loaded.", "counter", st.Loads)
		raw("aitia_checkpoint_invalid_total", "Checkpoint loads rejected as invalid.", "counter", st.Invalid)
		raw("aitia_checkpoint_misses_total", "Checkpoint loads with no snapshot present.", "counter", st.Misses)
		raw("aitia_checkpoint_deletes_total", "Checkpoints deleted (e.g. stale terminal snapshots).", "counter", st.Deletes)
	}
	if p := m.Prior; p != nil {
		raw("aitia_prior_pairs", "Distinct race-pair signatures in the learned flip prior.", "gauge", uint64(p.Pairs()))
		raw("aitia_prior_observations_total", "Flip verdicts folded into the learned prior.", "counter", p.Observations())
	}

	if p := m.FaultPlan; p != nil {
		st := p.Stats()
		fmt.Fprintf(w, "# HELP aitia_fault_checks_total Fault-injection decision points consulted, by kind.\n# TYPE aitia_fault_checks_total counter\n")
		for _, k := range faultinject.Kinds() {
			fmt.Fprintf(w, "aitia_fault_checks_total{kind=%q} %d\n", k.String(), st.Checks[k])
		}
		fmt.Fprintf(w, "# HELP aitia_fault_injected_total Faults injected, by kind.\n# TYPE aitia_fault_injected_total counter\n")
		for _, k := range faultinject.Kinds() {
			fmt.Fprintf(w, "aitia_fault_injected_total{kind=%q} %d\n", k.String(), st.Fired[k])
		}
		fmt.Fprintf(w, "# HELP aitia_retry_attempts_total Retry attempts after injected faults.\n# TYPE aitia_retry_attempts_total counter\naitia_retry_attempts_total %d\n", st.Retries)
		fmt.Fprintf(w, "# HELP aitia_retry_exhausted_total Operations that exhausted their retry budget.\n# TYPE aitia_retry_exhausted_total counter\naitia_retry_exhausted_total %d\n", st.Exhausted)
	}

	m.spanMu.Lock()
	defer m.spanMu.Unlock()
	keys := make([]string, 0, len(m.spanCount))
	for k := range m.spanCount {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP aitia_span_count_total Execution spans per tracer category and name, over completed jobs.\n# TYPE aitia_span_count_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "aitia_span_count_total{%s} %d\n", k, m.spanCount[k])
	}
	fmt.Fprintf(w, "# HELP aitia_span_seconds_total Total execution-span duration per tracer category and name, over completed jobs.\n# TYPE aitia_span_seconds_total counter\n")
	for _, k := range keys {
		fmt.Fprintf(w, "aitia_span_seconds_total{%s} %g\n", k, m.spanSeconds[k])
	}
}

package service

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"aitia"
	"aitia/internal/kir"
	"aitia/internal/obs"
)

// instantDiagnoser completes immediately with a distinctive summary.
func instantDiagnoser(chain string) Diagnoser {
	return func(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, _ FaultContext) (*aitia.ResultSummary, error) {
		return &aitia.ResultSummary{Failure: "fake", Chain: chain}, nil
	}
}

// openDurable opens a durable service on dir, failing the test on error.
func openDurable(t *testing.T, dir string, cfg Config) *Service {
	t.Helper()
	cfg.DataDir = dir
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestRestartRecoversAllJobs is the satellite-1 regression: a service
// dies with one job running and two queued-but-unstarted; the next
// incarnation must re-enqueue all three from the journal and run every
// one to a terminal state — no transitions lost.
func TestRestartRecoversAllJobs(t *testing.T) {
	dir := t.TempDir()
	never := make(chan struct{}) // the first incarnation's jobs never finish
	s1 := openDurable(t, dir, Config{Workers: 1, Diagnoser: blockingDiagnoser(never)})

	var ids []string
	for i := 1; i <= 3; i++ {
		st, err := submitN(t, s1, i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	waitState(t, s1, ids[0], StateRunning)
	// Simulated SIGKILL: abandon s1 without Shutdown. Its blocked worker
	// goroutine leaks for the test's lifetime; the journal on disk is
	// all the next incarnation sees.

	s2 := openDurable(t, dir, Config{Workers: 2, Diagnoser: instantDiagnoser("A1 => B1")})
	defer s2.Shutdown(context.Background())
	if got := s2.Metrics().JobsRecovered.Value(); got != 3 {
		t.Errorf("jobs_recovered = %d, want 3", got)
	}
	for _, id := range ids {
		st, err := s2.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
		if st.State != StateDone {
			t.Errorf("job %s: state = %q (error %q), want done", id, st.State, st.Error)
		}
		if st.Result == nil || st.Result.Chain != "A1 => B1" {
			t.Errorf("job %s: result = %+v, want recovered diagnosis", id, st.Result)
		}
	}
	// The recovered jobs ran under a forked fault epoch (the crash was
	// epoch 0's failure).
	s2.mu.Lock()
	for _, id := range ids {
		if ep := s2.jobs[id].requeues; ep != 1 {
			t.Errorf("job %s: fault epoch = %d, want 1", id, ep)
		}
	}
	s2.mu.Unlock()
}

// TestDrainLeavesQueuedJobsForRestart: with a journal, Shutdown finishes
// the in-flight job but leaves queued-but-unstarted jobs on disk instead
// of racing the drain; the next incarnation picks them up.
func TestDrainLeavesQueuedJobsForRestart(t *testing.T) {
	dir := t.TempDir()
	release := make(chan struct{})
	s1 := openDurable(t, dir, Config{Workers: 1, Diagnoser: blockingDiagnoser(release)})

	st1, err := submitN(t, s1, 1)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, s1, st1.ID, StateRunning)
	st2, err := submitN(t, s1, 2)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- s1.Shutdown(context.Background()) }()
	for s1.Health().Status != "draining" {
		time.Sleep(time.Millisecond)
	}
	close(release) // the running job completes; the queued one must not start
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st, _ := s1.Job(st1.ID); st.State != StateDone {
		t.Errorf("in-flight job drained to %q, want done", st.State)
	}
	if st, _ := s1.Job(st2.ID); st.State != StateQueued {
		t.Errorf("queued job drained to %q, want still queued (it survives in the journal)", st.State)
	}

	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("A1 => B1")})
	defer s2.Shutdown(context.Background())
	st, err := s2.Wait(context.Background(), st2.ID)
	if err != nil {
		t.Fatalf("Wait(%s): %v", st2.ID, err)
	}
	if st.State != StateDone {
		t.Errorf("recovered queued job: state = %q, want done", st.State)
	}
	// The drained job's terminal state also survived.
	if st, err := s2.Job(st1.ID); err != nil || st.State != StateDone {
		t.Errorf("drained job after restart: state = %q err = %v, want done", st.State, err)
	}
}

// TestIdempotentResubmission is tentpole part 3: re-POSTing a request
// whose program hash has a journaled terminal result is answered from
// the warmed cache without re-running the pipeline.
func TestIdempotentResubmission(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("A1 => B1")})
	st, err := submitN(t, s1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	forbidden := func(ctx context.Context, prog *kir.Program, req Request, tr *obs.Tracer, _ FaultContext) (*aitia.ResultSummary, error) {
		t.Error("pipeline re-ran for a journaled terminal result")
		return &aitia.ResultSummary{Failure: "rerun"}, nil
	}
	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: forbidden})
	defer s2.Shutdown(context.Background())
	st2, err := submitN(t, s2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("resubmission: cache_hit=%t state=%q, want synchronous cache hit", st2.CacheHit, st2.State)
	}
	if st2.Result == nil || st2.Result.Chain != "A1 => B1" {
		t.Errorf("resubmission result = %+v, want the journaled diagnosis", st2.Result)
	}
}

// TestWarmCacheRespectsLRUBound is satellite 2: replaying more journaled
// results than the cache holds must keep only the newest CacheSize of
// them, evicting the oldest.
func TestWarmCacheRespectsLRUBound(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Config{Workers: 1, CacheSize: 2, Diagnoser: instantDiagnoser("A1 => B1")})
	var ids []string
	for i := 1; i <= 3; i++ {
		st, err := submitN(t, s1, i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
		if _, err := s1.Wait(context.Background(), st.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	s2 := openDurable(t, dir, Config{Workers: 1, CacheSize: 2, Diagnoser: instantDiagnoser("rerun")})
	defer s2.Shutdown(context.Background())
	if got := s2.cache.len(); got != 2 {
		t.Errorf("warmed cache holds %d results, want the LRU bound 2", got)
	}
	// The newest two journaled results hit; the oldest was evicted and
	// re-runs the pipeline.
	for i, wantHit := range map[int]bool{1: false, 2: true, 3: true} {
		st, err := submitN(t, s2, i)
		if err != nil {
			t.Fatal(err)
		}
		if st.CacheHit != wantHit {
			t.Errorf("resubmission %d: cache_hit = %t, want %t", i, st.CacheHit, wantHit)
		}
	}
}

// TestRestartToleratesTornJournalTail: a crash can leave a half-written
// record at the journal tail; the next Open must drop it and recover the
// complete prefix without error.
func TestRestartToleratesTornJournalTail(t *testing.T) {
	dir := t.TempDir()
	s1 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("A1 => B1")})
	st, err := submitN(t, s1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a frame header promising more bytes than exist.
	segs, err := filepath.Glob(filepath.Join(dir, "journal", "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no journal segments: %v", err)
	}
	sort.Sort(sort.Reverse(sort.StringSlice(segs)))
	var last string
	for _, seg := range segs {
		if fi, err := os.Stat(seg); err == nil && fi.Size() > 0 {
			last = seg
			break
		}
	}
	if last == "" {
		last = segs[0]
	}
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xFF, 0x00, 0x00, 0x00, 0xAB, 0xCD}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("rerun")})
	defer s2.Shutdown(context.Background())
	if got, err := s2.Job(st.ID); err != nil || got.State != StateDone {
		t.Errorf("job after torn-tail recovery: state = %q err = %v, want done", got.State, err)
	}
	if torn := s2.journal.Stats().TornTails; torn == 0 {
		t.Error("journal stats report no torn tail dropped")
	}
}

// TestDurableMetricsExported: the Prometheus exposition includes the
// journal and checkpoint families when durability is on.
func TestDurableMetricsExported(t *testing.T) {
	dir := t.TempDir()
	s := openDurable(t, dir, Config{Workers: 1, Diagnoser: instantDiagnoser("A1 => B1")})
	defer s.Shutdown(context.Background())
	st, err := submitN(t, s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	s.Metrics().WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		"aitia_journal_appends_total",
		"aitia_journal_segments_total",
		"aitia_checkpoint_saves_total",
		"aitia_jobs_recovered_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	if !s.Health().Durable {
		t.Error("health does not report durable")
	}
}

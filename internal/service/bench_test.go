package service

import (
	"context"
	"testing"
)

// BenchmarkServiceCacheHitVsCold contrasts a full pipeline run (LIFS +
// Causality Analysis) against answering the same submission from the
// LRU result cache — the speedup the cache buys a fleet that sees the
// same Syzkaller crash resubmitted many times.
func BenchmarkServiceCacheHitVsCold(b *testing.B) {
	req := Request{Scenario: "cve-2017-15649"}

	b.Run("Cold", func(b *testing.B) {
		s := New(Config{Workers: 1})
		defer s.Shutdown(context.Background())
		for i := 0; i < b.N; i++ {
			// A unique step budget per iteration defeats the cache, so
			// every submission runs the pipeline.
			r := req
			r.Options.StepBudget = 1 << 20
			r.Options.MaxInterleavings = 100000 + i
			st, err := s.Submit(r)
			if err != nil {
				b.Fatal(err)
			}
			fin, err := s.Wait(context.Background(), st.ID)
			if err != nil {
				b.Fatal(err)
			}
			if fin.State != StateDone {
				b.Fatalf("state = %q (error %q)", fin.State, fin.Error)
			}
		}
	})

	b.Run("CacheHit", func(b *testing.B) {
		s := New(Config{Workers: 1})
		defer s.Shutdown(context.Background())
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), st.ID); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			st, err := s.Submit(req)
			if err != nil {
				b.Fatal(err)
			}
			if !st.CacheHit {
				b.Fatal("expected a cache hit")
			}
		}
	})
}

package mem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"aitia/internal/kir"
)

func newSpace(t *testing.T) *Space {
	t.Helper()
	s, err := NewSpace([]kir.GlobalDef{
		{Name: "a", Size: 1, Init: []int64{7}},
		{Name: "b", Size: 4, Init: []int64{1, 2}},
		{Name: "p", Size: 1, AddrOf: map[int64]string{0: "b"}},
		{Name: "h", Size: 1, HeapSize: 2, Init: []int64{9}},
	})
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	return s
}

func TestGlobalLayoutAndInit(t *testing.T) {
	s := newSpace(t)
	a, ok := s.GlobalAddr("a")
	if !ok || a != GlobalBase {
		t.Fatalf("a at %#x", a)
	}
	if v, f := s.Load(a); f != nil || v != 7 {
		t.Errorf("a = %d, %v", v, f)
	}
	bAddr, _ := s.GlobalAddr("b")
	if v, _ := s.Load(bAddr + 1); v != 2 {
		t.Errorf("b[1] = %d", v)
	}
	if v, _ := s.Load(bAddr + 3); v != 0 {
		t.Errorf("b[3] = %d, want 0", v)
	}
	// AddrOf: p holds b's address.
	pAddr, _ := s.GlobalAddr("p")
	if v, _ := s.Load(pAddr); uint64(v) != bAddr {
		t.Errorf("p = %#x, want %#x", v, bAddr)
	}
	// Heap global: h holds a pointer to an initialized static object.
	hAddr, _ := s.GlobalAddr("h")
	hv, _ := s.Load(hAddr)
	if uint64(hv) < HeapBase {
		t.Fatalf("h does not point into the heap: %#x", hv)
	}
	if v, f := s.Load(uint64(hv)); f != nil || v != 9 {
		t.Errorf("*h = %d, %v", v, f)
	}
	obj := s.ObjectAt(uint64(hv))
	if obj == nil || !obj.Static {
		t.Errorf("heap-global object not static: %+v", obj)
	}
}

func TestSymbolAt(t *testing.T) {
	s := newSpace(t)
	bAddr, _ := s.GlobalAddr("b")
	sym, off, ok := s.SymbolAt(bAddr + 2)
	if !ok || sym != "b" || off != 2 {
		t.Errorf("SymbolAt = %q+%d, %v", sym, off, ok)
	}
	if _, _, ok := s.SymbolAt(HeapBase); ok {
		t.Error("heap address should not symbolize")
	}
}

func TestFaultClassification(t *testing.T) {
	s := newSpace(t)
	if _, f := s.Load(0); f == nil || f.Kind != FaultNullDeref {
		t.Errorf("null load fault = %v", f)
	}
	if f := s.Store(NullTop-1, 1); f == nil || f.Kind != FaultNullDeref {
		t.Errorf("null store fault = %v", f)
	}
	if _, f := s.Load(0xdead0000); f == nil || f.Kind != FaultWild {
		t.Errorf("wild fault = %v", f)
	}

	base := s.Alloc(2, kir.NoInstr)
	if f := s.Store(base+1, 5); f != nil {
		t.Errorf("in-bounds store fault: %v", f)
	}
	if _, f := s.Load(base + 2); f == nil || f.Kind != FaultOutOfBounds {
		t.Errorf("redzone fault = %v", f)
	}
	if _, f := s.Load(base - 1); f == nil || f.Kind != FaultOutOfBounds {
		t.Errorf("left redzone fault = %v", f)
	}

	if f := s.Free(base, kir.NoInstr); f != nil {
		t.Fatalf("free fault: %v", f)
	}
	if _, f := s.Load(base); f == nil || f.Kind != FaultUseAfterFree {
		t.Errorf("UAF fault = %v", f)
	}
	if f := s.Free(base, kir.NoInstr); f == nil || f.Kind != FaultDoubleFree {
		t.Errorf("double-free fault = %v", f)
	}
	if f := s.Free(base+1, kir.NoInstr); f == nil || f.Kind != FaultBadFree {
		t.Errorf("bad-free fault = %v", f)
	}
}

func TestListOps(t *testing.T) {
	s := newSpace(t)
	a, _ := s.GlobalAddr("a")
	if f := s.ListAdd(a, 5); f != nil {
		t.Fatalf("ListAdd: %v", f)
	}
	s.ListAdd(a, 6)
	if has, _ := s.ListHas(a, 5); !has {
		t.Error("5 should be in the list")
	}
	if s.ListLen(a) != 2 {
		t.Errorf("len = %d", s.ListLen(a))
	}
	s.ListDel(a, 5)
	if has, _ := s.ListHas(a, 5); has {
		t.Error("5 should be gone")
	}
	s.ListDel(a, 999) // absent: no-op
	if s.ListLen(a) != 1 {
		t.Errorf("len = %d", s.ListLen(a))
	}
}

func TestLeakedReachability(t *testing.T) {
	s := newSpace(t)
	aAddr, _ := s.GlobalAddr("a")

	leaked := s.Alloc(1, kir.NoInstr)
	kept := s.Alloc(2, kir.NoInstr)
	inner := s.Alloc(1, kir.NoInstr)

	// kept is referenced from a global; inner from inside kept.
	s.Store(aAddr, int64(kept))
	s.Store(kept, int64(inner))

	objs := s.Leaked()
	if len(objs) != 1 || objs[0].Base != leaked {
		bases := []uint64{}
		for _, o := range objs {
			bases = append(bases, o.Base)
		}
		t.Errorf("leaked = %#v, want [%#x]", bases, leaked)
	}

	// A list reference also keeps an object alive.
	s2 := newSpace(t)
	a2, _ := s2.GlobalAddr("a")
	o := s2.Alloc(1, kir.NoInstr)
	s2.ListAdd(a2, int64(o))
	if got := s2.Leaked(); len(got) != 0 {
		t.Errorf("list-referenced object reported leaked: %v", got)
	}
}

// TestSnapshotRoundTrip is a property test: any sequence of operations,
// snapshot, more operations, restore — the observable state equals the
// snapshot point's.
func TestSnapshotRoundTrip(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s, err := NewSpace([]kir.GlobalDef{{Name: "g", Size: 8}})
		if err != nil {
			return false
		}
		gAddr, _ := s.GlobalAddr("g")
		var bases []uint64
		apply := func(op uint8) {
			switch op % 5 {
			case 0:
				s.Store(gAddr+uint64(rng.Intn(8)), rng.Int63n(100))
			case 1:
				bases = append(bases, s.Alloc(int64(1+rng.Intn(3)), kir.NoInstr))
			case 2:
				if len(bases) > 0 {
					s.Free(bases[rng.Intn(len(bases))], kir.NoInstr)
				}
			case 3:
				s.ListAdd(gAddr, rng.Int63n(10))
			case 4:
				s.ListDel(gAddr, rng.Int63n(10))
			}
		}
		half := len(ops) / 2
		for _, op := range ops[:half] {
			apply(op)
		}
		snap := s.Snapshot()
		want := fingerprint(s)
		for _, op := range ops[half:] {
			apply(op)
		}
		s.Restore(snap)
		return fingerprint(s) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// fingerprint folds the observable space state into a comparable value.
func fingerprint(s *Space) uint64 {
	var acc uint64
	s.FoldState(func(parts ...uint64) {
		h := uint64(1469598103934665603)
		for _, p := range parts {
			h = (h ^ p) * 1099511628211
		}
		acc += h
	})
	return acc
}

// TestAllocNeverReusesAddresses is the quarantine property: freed objects
// keep their addresses, so any dangling pointer stays diagnosable.
func TestAllocNeverReusesAddresses(t *testing.T) {
	f := func(sizes []uint8) bool {
		s, err := NewSpace(nil)
		if err != nil {
			return false
		}
		seen := make(map[uint64]bool)
		for _, raw := range sizes {
			size := int64(raw%7) + 1
			base := s.Alloc(size, kir.NoInstr)
			for a := base; a < base+uint64(size); a++ {
				if seen[a] {
					return false
				}
				seen[a] = true
			}
			if raw%2 == 0 {
				s.Free(base, kir.NoInstr)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

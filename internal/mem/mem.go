// Package mem implements the simulated kernel address space used by the
// kernel VM: a word-addressed memory with named globals, a heap allocator
// with KASAN-style object tracking (redzones, quarantined freed objects,
// use-after-free / out-of-bounds / double-free detection), and linked-list
// storage for the IR's list intrinsics.
//
// Addresses are word indices, not bytes. The layout is:
//
//	[0, NullTop)          the NULL page: any access is a NULL dereference
//	[GlobalBase, ...)     globals, assigned in declaration order
//	[HeapBase, ...)       heap objects, each surrounded by redzones
//
// Freed objects are never reused (an unbounded quarantine), so a dangling
// pointer always identifies its original object — mirroring how KASAN's
// quarantine keeps use-after-free detectable.
package mem

import (
	"fmt"
	"sort"

	"aitia/internal/faultinject"
	"aitia/internal/kir"
)

// Address-space layout constants (word addresses).
const (
	// NullTop bounds the NULL page; accesses below it fault as NULL
	// dereferences.
	NullTop = 0x40
	// GlobalBase is the address of the first global.
	GlobalBase = 0x100
	// HeapBase is the address of the first heap word.
	HeapBase = 0x10000
	// Redzone is the number of guard words on each side of a heap object.
	Redzone = 2
	// heapGap separates consecutive heap objects beyond their redzones.
	heapGap = 4
)

// FaultKind classifies invalid memory operations.
type FaultKind uint8

const (
	// FaultNone means no fault.
	FaultNone FaultKind = iota
	// FaultNullDeref is an access inside the NULL page.
	FaultNullDeref
	// FaultUseAfterFree is an access to a freed heap object.
	FaultUseAfterFree
	// FaultOutOfBounds is an access to a heap redzone.
	FaultOutOfBounds
	// FaultWild is an access to unmapped memory (a general protection
	// fault in the crash report).
	FaultWild
	// FaultDoubleFree is a free of an already-freed object.
	FaultDoubleFree
	// FaultBadFree is a free of a non-object address.
	FaultBadFree
)

// String returns the KASAN-flavoured name of the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultNullDeref:
		return "null-ptr-deref"
	case FaultUseAfterFree:
		return "use-after-free"
	case FaultOutOfBounds:
		return "slab-out-of-bounds"
	case FaultWild:
		return "general protection fault"
	case FaultDoubleFree:
		return "double-free"
	case FaultBadFree:
		return "invalid-free"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// Fault describes an invalid memory operation.
type Fault struct {
	Kind  FaultKind
	Addr  uint64
	Write bool
	// Object is the heap object involved, when the fault concerns one.
	Object *Object
}

// Error implements the error interface.
func (f *Fault) Error() string {
	rw := "read"
	if f.Write {
		rw = "write"
	}
	return fmt.Sprintf("%s: %s at %#x", f.Kind, rw, f.Addr)
}

// ObjState is the lifecycle state of a heap object.
type ObjState uint8

const (
	// Allocated objects are live.
	Allocated ObjState = iota
	// Freed objects are in quarantine; any access is a use-after-free.
	Freed
)

// Object is a heap allocation. AllocSite and FreeSite record the static
// instructions that allocated and freed it, for crash reports.
type Object struct {
	Base      uint64
	Size      int64
	State     ObjState
	AllocSite kir.InstrID
	FreeSite  kir.InstrID
	// Static objects were pre-allocated at space creation (kir heap
	// globals) and are exempt from leak checking.
	Static bool
}

// Contains reports whether addr is inside the object's payload.
func (o *Object) Contains(addr uint64) bool {
	return addr >= o.Base && addr < o.Base+uint64(o.Size)
}

// inRedzone reports whether addr falls in the object's guard words.
func (o *Object) inRedzone(addr uint64) bool {
	return (addr >= o.Base-Redzone && addr < o.Base) ||
		(addr >= o.Base+uint64(o.Size) && addr < o.Base+uint64(o.Size)+Redzone)
}

// Space is a simulated kernel address space.
type Space struct {
	words   map[uint64]int64
	lists   map[uint64][]int64
	globals map[string]uint64
	gnames  []string // declaration order, for deterministic iteration
	gend    uint64
	objects []*Object // sorted by Base
	next    uint64
	fault   *faultinject.Plan // armed by SetFaultPlan; nil = no injection

	// Copy-on-write checkpointing state: an undo journal of mutations since
	// the oldest live snapshot. Snapshot marks a journal position (O(1));
	// Restore reverse-replays the entries above the mark (O(mutations since
	// the snapshot)). Journaling is off until the first Snapshot call, so
	// enforcement-only spaces pay nothing on the Store/Alloc hot path.
	journal    []undoRec
	seq        uint64 // id of the most recently appended entry
	journaling bool
	epoch      uint64            // bumped on Snapshot and Restore
	listSaved  map[uint64]uint64 // list addr -> epoch of its last saved copy
	copied     uint64            // approximate bytes journaled (CoW metric)
	live       uint64            // approximate bytes currently held by the journal
}

// undoKind tags one journal entry.
type undoKind uint8

const (
	undoWord  undoKind = iota // a word overwritten or deleted by Store
	undoList                  // a list mutated by ListAdd/ListDel
	undoFree                  // an object freed by Free
	undoAlloc                 // an object appended by Alloc
)

// undoRec is one reverse-replayable mutation record.
type undoRec struct {
	kind    undoKind
	seq     uint64
	addr    uint64  // word or list address
	val     int64   // old word value (undoWord)
	existed bool    // the word/list key was present before the mutation
	list    []int64 // old list contents (undoList)
	obj     *Object // the freed object (undoFree); identities are stable
	state   ObjState
	site    kir.InstrID // the freed object's previous FreeSite
}

// append adds one journal entry, stamping it with the next sequence id.
func (s *Space) append(r undoRec) {
	s.seq++
	r.seq = s.seq
	s.journal = append(s.journal, r)
}

// saveWord journals the word at addr before a Store mutates it.
func (s *Space) saveWord(addr uint64) {
	if !s.journaling {
		return
	}
	v, ok := s.words[addr]
	s.append(undoRec{kind: undoWord, addr: addr, val: v, existed: ok})
	s.copied += 16
	s.live += 16
}

// saveList journals the list at addr, at most once per snapshot epoch,
// before ListAdd/ListDel mutates it. The copy must preserve exact map
// presence: FoldState distinguishes an absent list from an empty one.
func (s *Space) saveList(addr uint64) {
	if !s.journaling || s.listSaved[addr] == s.epoch {
		return
	}
	s.listSaved[addr] = s.epoch
	l, ok := s.lists[addr]
	s.append(undoRec{kind: undoList, addr: addr, list: append([]int64(nil), l...), existed: ok})
	s.copied += 16 + 8*uint64(len(l))
	s.live += 16 + 8*uint64(len(l))
}

// NewSpace builds an address space with the given globals laid out from
// GlobalBase in declaration order and initialized per their Init values.
func NewSpace(globals []kir.GlobalDef) (*Space, error) {
	s := &Space{
		words:   make(map[uint64]int64),
		lists:   make(map[uint64][]int64),
		globals: make(map[string]uint64, len(globals)),
		next:    HeapBase,
	}
	addr := uint64(GlobalBase)
	for _, g := range globals {
		if _, dup := s.globals[g.Name]; dup {
			return nil, fmt.Errorf("mem: duplicate global %q", g.Name)
		}
		s.globals[g.Name] = addr
		s.gnames = append(s.gnames, g.Name)
		if g.HeapSize <= 0 { // heap globals' Init fills the object instead
			for i, v := range g.Init {
				if v != 0 {
					s.words[addr+uint64(i)] = v
				}
			}
		}
		addr += uint64(g.Size)
	}
	s.gend = addr
	// Second pass: address-of initializers (every global now has a base)
	// and pre-allocated heap objects.
	for _, g := range globals {
		base := s.globals[g.Name]
		for off, sym := range g.AddrOf {
			target, ok := s.globals[sym]
			if !ok {
				return nil, fmt.Errorf("mem: global %q AddrOf unknown symbol %q", g.Name, sym)
			}
			s.words[base+uint64(off)] = int64(target)
		}
		if g.HeapSize > 0 {
			objBase := s.Alloc(g.HeapSize, kir.NoInstr)
			s.objects[len(s.objects)-1].Static = true
			for i, v := range g.Init {
				if v != 0 {
					s.words[objBase+uint64(i)] = v
				}
			}
			s.words[base] = int64(objBase)
		}
	}
	return s, nil
}

// GlobalAddr resolves a global symbol to its base address.
func (s *Space) GlobalAddr(sym string) (uint64, bool) {
	a, ok := s.globals[sym]
	return a, ok
}

// SymbolAt returns the name of the global containing addr, with its word
// offset, for human-readable reports. ok is false for non-global addresses.
func (s *Space) SymbolAt(addr uint64) (sym string, off uint64, ok bool) {
	if addr < GlobalBase || addr >= s.gend {
		return "", 0, false
	}
	// Globals are laid out in declaration order; find the last one at or
	// below addr.
	best := ""
	var base uint64
	for _, name := range s.gnames {
		a := s.globals[name]
		if a <= addr && a >= base {
			best, base = name, a
		}
	}
	return best, addr - base, best != ""
}

// check classifies an access to addr without performing it.
func (s *Space) check(addr uint64, write bool) *Fault {
	switch {
	case addr < NullTop:
		return &Fault{Kind: FaultNullDeref, Addr: addr, Write: write}
	case addr >= GlobalBase && addr < s.gend:
		return nil
	case addr >= HeapBase && addr < s.next:
		obj := s.objectCovering(addr)
		if obj == nil {
			return &Fault{Kind: FaultWild, Addr: addr, Write: write}
		}
		if obj.inRedzone(addr) {
			return &Fault{Kind: FaultOutOfBounds, Addr: addr, Write: write, Object: obj}
		}
		if obj.State == Freed {
			return &Fault{Kind: FaultUseAfterFree, Addr: addr, Write: write, Object: obj}
		}
		return nil
	default:
		return &Fault{Kind: FaultWild, Addr: addr, Write: write}
	}
}

// objectCovering finds the heap object whose payload-plus-redzone region
// covers addr.
func (s *Space) objectCovering(addr uint64) *Object {
	i := sort.Search(len(s.objects), func(i int) bool {
		o := s.objects[i]
		return o.Base+uint64(o.Size)+Redzone > addr
	})
	if i >= len(s.objects) {
		return nil
	}
	o := s.objects[i]
	if addr >= o.Base-Redzone {
		return o
	}
	return nil
}

// Load reads the word at addr.
func (s *Space) Load(addr uint64) (int64, *Fault) {
	if f := s.check(addr, false); f != nil {
		return 0, f
	}
	return s.words[addr], nil
}

// Store writes the word at addr.
func (s *Space) Store(addr uint64, v int64) *Fault {
	if f := s.check(addr, true); f != nil {
		return f
	}
	s.saveWord(addr)
	if v == 0 {
		delete(s.words, addr)
	} else {
		s.words[addr] = v
	}
	return nil
}

// Alloc creates a heap object of size words and returns its base address.
// The payload is zeroed (fresh allocations read as zero).
func (s *Space) Alloc(size int64, site kir.InstrID) uint64 {
	base := s.next + Redzone
	s.next = base + uint64(size) + Redzone + heapGap
	obj := &Object{Base: base, Size: size, State: Allocated, AllocSite: site, FreeSite: kir.NoInstr}
	s.objects = append(s.objects, obj) // bases are monotone, stays sorted
	if s.journaling {
		// Undo pops the object; next is restored from the snapshot scalar.
		// The word deletes below are no-ops (regions are never reused), so
		// they need no journal entries.
		s.append(undoRec{kind: undoAlloc})
		s.copied += 8
		s.live += 8
	}
	for a := base; a < base+uint64(size); a++ {
		delete(s.words, a)
	}
	return base
}

// Free releases the object with the given base address.
func (s *Space) Free(base uint64, site kir.InstrID) *Fault {
	obj := s.objectCovering(base)
	if obj == nil || obj.Base != base {
		return &Fault{Kind: FaultBadFree, Addr: base, Write: true, Object: obj}
	}
	if obj.State == Freed {
		return &Fault{Kind: FaultDoubleFree, Addr: base, Write: true, Object: obj}
	}
	if s.journaling {
		s.append(undoRec{kind: undoFree, obj: obj, state: obj.State, site: obj.FreeSite})
		s.copied += 24
		s.live += 24
	}
	obj.State = Freed
	obj.FreeSite = site
	return nil
}

// ObjectAt returns the heap object covering addr, if any.
func (s *Space) ObjectAt(addr uint64) *Object { return s.objectCovering(addr) }

// LiveAllocSite reports whether any currently allocated, leak-checkable
// (non-static) heap object was allocated at the given site. Report-guided
// search uses it to decide whether a memory leak attributed to that site
// is still possible.
func (s *Space) LiveAllocSite(site kir.InstrID) bool {
	for _, o := range s.objects {
		if o.State == Allocated && !o.Static && o.AllocSite == site {
			return true
		}
	}
	return false
}

// ListAdd appends v to the list at addr (one shared-memory write).
func (s *Space) ListAdd(addr uint64, v int64) *Fault {
	if f := s.check(addr, true); f != nil {
		return f
	}
	s.saveList(addr)
	s.lists[addr] = append(s.lists[addr], v)
	return nil
}

// ListDel removes the first occurrence of v from the list at addr (one
// shared-memory write). Removing an absent value is a no-op, matching
// list_del-style helpers guarded by emptiness checks.
func (s *Space) ListDel(addr uint64, v int64) *Fault {
	if f := s.check(addr, true); f != nil {
		return f
	}
	l := s.lists[addr]
	for i, x := range l {
		if x == v {
			s.saveList(addr)
			s.lists[addr] = append(append([]int64(nil), l[:i]...), l[i+1:]...)
			return nil
		}
	}
	return nil
}

// ListHas reports whether v is in the list at addr (one shared-memory
// read).
func (s *Space) ListHas(addr uint64, v int64) (bool, *Fault) {
	if f := s.check(addr, false); f != nil {
		return false, f
	}
	for _, x := range s.lists[addr] {
		if x == v {
			return true, nil
		}
	}
	return false, nil
}

// ListLen returns the length of the list at addr (no access check; used by
// tests and reports).
func (s *Space) ListLen(addr uint64) int { return len(s.lists[addr]) }

// Leaked returns the heap objects that are still allocated but no longer
// reachable — the kmemleak model. Reachability roots are the global words
// and list contents; any word inside a reachable allocated object that
// holds another object's base address keeps that object alive
// transitively. Pre-allocated (static) objects are never reported.
func (s *Space) Leaked() []*Object {
	reachable := make(map[uint64]bool)
	var mark func(v int64)
	mark = func(v int64) {
		if v <= 0 {
			return
		}
		obj := s.objectCovering(uint64(v))
		if obj == nil || obj.Base != uint64(v) || reachable[obj.Base] {
			return
		}
		reachable[obj.Base] = true
		if obj.State != Allocated {
			return
		}
		for a := obj.Base; a < obj.Base+uint64(obj.Size); a++ {
			if w, ok := s.words[a]; ok {
				mark(w)
			}
		}
	}
	for a := uint64(GlobalBase); a < s.gend; a++ {
		if w, ok := s.words[a]; ok {
			mark(w)
		}
	}
	for _, l := range s.lists {
		for _, v := range l {
			mark(v)
		}
	}
	var out []*Object
	for _, o := range s.objects {
		if o.State == Allocated && !o.Static && !reachable[o.Base] {
			out = append(out, o)
		}
	}
	return out
}

// FoldState feeds the space's mutable state to fold as numeric tuples, one
// call per logical entry, in unspecified order. Callers combine the tuples
// order-independently to build state signatures.
func (s *Space) FoldState(fold func(parts ...uint64)) {
	for addr, v := range s.words {
		fold(0x77, addr, uint64(v))
	}
	for addr, l := range s.lists {
		for i, v := range l {
			fold(0x11, addr, uint64(i), uint64(v))
		}
		fold(0x12, addr, uint64(len(l)))
	}
	for _, o := range s.objects {
		fold(0x0b, o.Base, uint64(o.Size), uint64(o.State))
	}
	fold(0xa1, s.next)
}

// Snapshot is a copy-on-write checkpoint: a position in the space's undo
// journal plus the allocator cursor. Taking one is O(1); restoring one
// costs O(mutations performed since it was taken).
//
// Snapshots form a stack. Restores must be LIFO-ordered: restoring a
// snapshot invalidates every snapshot taken after it, and an outer
// snapshot stays valid across any number of inner snapshot/restore
// cycles — exactly the DFS discipline of the LIFS searcher. Restoring to
// a stale snapshot panics.
type Snapshot struct {
	pos  int    // journal length when taken
	seq  uint64 // sequence id of the last journal entry when taken
	next uint64
}

// Snapshot captures the current state for later Restore and enables
// mutation journaling (the first call flips the space into CoW mode).
func (s *Space) Snapshot() *Snapshot {
	s.journaling = true
	if s.listSaved == nil {
		s.listSaved = make(map[uint64]uint64)
	}
	s.epoch++
	// The staleness check matches against the last live entry's id, not the
	// monotonic counter (which outruns the journal after a restore).
	var last uint64
	if len(s.journal) > 0 {
		last = s.journal[len(s.journal)-1].seq
	}
	return &Snapshot{pos: len(s.journal), seq: last, next: s.next}
}

// Restore rewinds the space to a snapshot (the VM-revert operation the
// AITIA hypervisor performs between runs) by reverse-replaying the undo
// journal. The snapshot remains usable for further LIFO restores.
func (s *Space) Restore(sn *Snapshot) {
	if sn.pos > len(s.journal) || (sn.pos > 0 && s.journal[sn.pos-1].seq != sn.seq) {
		panic("mem: restore of a stale snapshot (restores must be LIFO-ordered)")
	}
	for i := len(s.journal) - 1; i >= sn.pos; i-- {
		r := &s.journal[i]
		switch r.kind {
		case undoWord:
			if r.existed {
				s.words[r.addr] = r.val
			} else {
				delete(s.words, r.addr)
			}
			s.live -= 16
		case undoList:
			if r.existed {
				s.lists[r.addr] = r.list
			} else {
				delete(s.lists, r.addr)
			}
			s.live -= 16 + 8*uint64(len(r.list))
		case undoFree:
			r.obj.State = r.state
			r.obj.FreeSite = r.site
			s.live -= 24
		case undoAlloc:
			s.objects = s.objects[:len(s.objects)-1]
			s.live -= 8
		}
		*r = undoRec{} // drop references so truncated entries can be collected
	}
	s.journal = s.journal[:sn.pos]
	s.next = sn.next
	s.epoch++
}

// CopiedBytes returns the approximate number of bytes the undo journal has
// copied since the space was created — the total CoW cost, for metrics.
func (s *Space) CopiedBytes() uint64 { return s.copied }

// LiveBytes returns the approximate number of bytes currently held by the
// undo journal — the memory a snapshot of the present state would pin
// relative to the oldest live snapshot. Restores shrink it; RestoreDeep
// zeroes it.
func (s *Space) LiveBytes() uint64 { return s.live }

// DeepSnapshot is a full deep copy of a Space's mutable state. It is kept
// alongside the journal-based Snapshot as the benchmark baseline and as an
// order-independent checkpoint (deep restores need not be LIFO).
type DeepSnapshot struct {
	words   map[uint64]int64
	lists   map[uint64][]int64
	objects []*Object
	next    uint64
}

// DeepSnapshot captures a full copy of the current state for RestoreDeep.
func (s *Space) DeepSnapshot() *DeepSnapshot {
	sn := &DeepSnapshot{
		words:   make(map[uint64]int64, len(s.words)),
		lists:   make(map[uint64][]int64, len(s.lists)),
		objects: make([]*Object, len(s.objects)),
		next:    s.next,
	}
	for k, v := range s.words {
		sn.words[k] = v
	}
	for k, v := range s.lists {
		sn.lists[k] = append([]int64(nil), v...)
	}
	for i, o := range s.objects {
		cp := *o
		sn.objects[i] = &cp
	}
	return sn
}

// RestoreDeep rewinds the space to a deep snapshot. Because it replaces
// object identities and bypasses the journal, it invalidates every live
// journal-based Snapshot (subsequent Restore calls on them panic).
func (s *Space) RestoreDeep(sn *DeepSnapshot) {
	s.words = make(map[uint64]int64, len(sn.words))
	for k, v := range sn.words {
		s.words[k] = v
	}
	s.lists = make(map[uint64][]int64, len(sn.lists))
	for k, v := range sn.lists {
		s.lists[k] = append([]int64(nil), v...)
	}
	s.objects = make([]*Object, len(sn.objects))
	for i, o := range sn.objects {
		cp := *o
		s.objects[i] = &cp
	}
	s.next = sn.next
	s.journal = nil
	s.live = 0
	s.epoch++
}

package mem

import "aitia/internal/faultinject"

// SetFaultPlan arms deterministic fault injection on the space. A nil
// plan (the default) disables it; TryRestore then always restores.
func (s *Space) SetFaultPlan(p *faultinject.Plan) { s.fault = p }

// TryRestore is Restore behind the space's fault plan. The plan is
// consulted before any mutation, so a faulted restore leaves the space
// and the snapshot untouched — a retry of the same operation (attempt+1)
// starts from exactly the state the failed one saw.
func (s *Space) TryRestore(sn *Snapshot, op string, key uint64, attempt int) error {
	if err := s.fault.Check(faultinject.KindSnapshotRestore, op, key, attempt); err != nil {
		return err
	}
	s.Restore(sn)
	return nil
}

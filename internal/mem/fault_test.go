package mem

import (
	"testing"

	"aitia/internal/faultinject"
)

func TestTryRestoreFaulted(t *testing.T) {
	s := newSpace(t)
	a, _ := s.GlobalAddr("a")
	sn := s.Snapshot()
	if f := s.Store(a, 99); f != nil {
		t.Fatal(f)
	}

	s.SetFaultPlan(faultinject.NewPlan(1, 0).SetRate(faultinject.KindSnapshotRestore, 1))
	if err := s.TryRestore(sn, "test.restore", 0, 0); !faultinject.Is(err) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// The faulted restore must not have touched the space or the snapshot.
	if v, _ := s.Load(a); v != 99 {
		t.Fatalf("a = %d after faulted restore, want 99 (untouched)", v)
	}

	// A quiet plan restores normally from the same state.
	s.SetFaultPlan(nil)
	if err := s.TryRestore(sn, "test.restore", 0, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Load(a); v != 7 {
		t.Fatalf("a = %d after restore, want 7", v)
	}
}

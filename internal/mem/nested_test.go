package mem

import (
	"testing"

	"aitia/internal/kir"
)

// TestNestedSnapshotRestore exercises the stacked restores the kvm layer
// (and through it the prefix cache) performs: restore to an interior
// snapshot, mutate divergently, restore to its ancestor. Each restore must
// land on the exact captured state — words, allocations and free states —
// stale everything deeper, and settle the byte accounting.
func TestNestedSnapshotRestore(t *testing.T) {
	s, err := NewSpace([]kir.GlobalDef{{Name: "g", Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := s.GlobalAddr("g")
	load := func() int64 {
		v, f := s.Load(g)
		if f != nil {
			t.Fatalf("load g: %v", f)
		}
		return v
	}

	s.Store(g, 1) // pre-snapshot state, never journaled
	a := s.Snapshot()
	s.Store(g, 2)
	base := s.Alloc(2, kir.NoInstr)
	s.Store(base, 40)
	b := s.Snapshot()
	s.Store(g, 3)
	if f := s.Free(base, kir.NoInstr); f != nil {
		t.Fatalf("free: %v", f)
	}
	c := s.Snapshot()
	s.Store(g, 4)
	copied := s.CopiedBytes()

	// LIFO restores land on the exact captured states.
	s.Restore(c)
	if load() != 3 {
		t.Errorf("after Restore(c): g = %d, want 3", load())
	}
	if obj := s.ObjectAt(base); obj == nil || obj.State != Freed {
		t.Errorf("after Restore(c): object = %+v, want freed", obj)
	}
	s.Restore(b)
	if load() != 2 {
		t.Errorf("after Restore(b): g = %d, want 2", load())
	}
	if obj := s.ObjectAt(base); obj == nil || obj.State != Allocated {
		t.Errorf("after Restore(b): object = %+v, want allocated (free undone)", obj)
	}
	if v, f := s.Load(base); f != nil || v != 40 {
		t.Errorf("after Restore(b): heap word = %d (%v), want 40", v, f)
	}

	// Diverge from the interior state: c is now stale and must refuse.
	s.Store(g, 9)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("restore of a stale snapshot did not panic")
			}
		}()
		s.Restore(c)
	}()

	// The ancestor restores across the divergence; the allocation itself
	// is undone and the journal fully released.
	s.Restore(a)
	if load() != 1 {
		t.Errorf("after Restore(a): g = %d, want 1", load())
	}
	if obj := s.ObjectAt(base); obj != nil {
		t.Errorf("after Restore(a): allocation survived: %+v", obj)
	}
	if s.LiveBytes() != 0 {
		t.Errorf("LiveBytes = %d after restoring the oldest snapshot, want 0", s.LiveBytes())
	}
	if s.CopiedBytes() < copied {
		t.Errorf("CopiedBytes = %d rewound below %d", s.CopiedBytes(), copied)
	}

	// a remains restorable repeatedly.
	s.Store(g, 7)
	s.Restore(a)
	if load() != 1 {
		t.Errorf("second Restore(a): g = %d, want 1", load())
	}
}

// Package finding serializes a bug finder's output — the program under
// test, the timestamped execution trace and the crash information — into
// a self-contained JSON file, and loads it back for diagnosis. This
// decouples the fuzzing and diagnosis stages the way the real AITIA is
// decoupled from Syzkaller: the finder runs somewhere, drops findings,
// and diagnosers pick them up (§4.1).
package finding

import (
	"encoding/json"
	"fmt"
	"os"

	"aitia/internal/fuzz"
	"aitia/internal/history"
	"aitia/internal/kasm"
	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// Version is the current finding schema version. Version 2 added the
// Report field (report-only findings) and the version marker itself;
// files without one (version 0/1) are the legacy trace-only layout and
// still load. Files from a NEWER schema than this package knows are
// rejected rather than misread.
const Version = 2

// File is the serialized form of one finding.
type File struct {
	// SchemaVersion is the schema the file was written with; zero means
	// a legacy (pre-versioning) trace finding.
	SchemaVersion int `json:"version,omitempty"`
	// Program is the kasm source of the program under test; instruction
	// identities in Crash refer to it.
	Program string `json:"program"`
	// Report is a KCSAN/KASAN-style crash report. When set, the finding
	// is report-only: Crash and Events are absent and diagnosis runs
	// report-driven (ingest + guided search) instead of trace-driven.
	Report string `json:"report,omitempty"`
	// Seed and Runs document the fuzzing campaign.
	Seed int64 `json:"seed"`
	Runs int   `json:"runs"`
	// Crash is the failure information. Unused by report-only findings.
	Crash Crash `json:"crash"`
	// Events is the execution history (the ftrace analogue).
	Events []Event `json:"events"`
	// FDs maps syscall threads to file descriptors (for slicing closure).
	FDs map[string]int `json:"fds,omitempty"`
}

// ReportOnly reports whether the finding carries a crash report instead
// of a trace, and must be diagnosed report-driven.
func (f *File) ReportOnly() bool { return f.Report != "" }

// Crash is the serialized failure information.
type Crash struct {
	Kind   string `json:"kind"`
	Thread string `json:"thread"`
	Instr  int32  `json:"instr"`
	Addr   uint64 `json:"addr,omitempty"`
	Msg    string `json:"msg,omitempty"`
}

// Event is one serialized trace entry.
type Event struct {
	TS     uint64 `json:"ts"`
	Kind   string `json:"kind"`
	Thread string `json:"thread"`
	Source string `json:"source,omitempty"`
	FD     int    `json:"fd,omitempty"`
}

var eventKinds = map[string]history.EventKind{
	history.SyscallEnter.String(): history.SyscallEnter,
	history.SyscallExit.String():  history.SyscallExit,
	history.ThreadInvoke.String(): history.ThreadInvoke,
	history.CrashEvent.String():   history.CrashEvent,
}

// FromFinding builds the serializable form from a fuzzer finding.
func FromFinding(prog *kir.Program, f *fuzz.Finding) *File {
	out := &File{
		SchemaVersion: Version,
		Program:       kasm.Disassemble(prog),
		Seed:          f.Seed,
		Runs:          f.Runs,
		Crash: Crash{
			Kind:   f.Failure.Kind.String(),
			Thread: f.Failure.Thread,
			Instr:  int32(f.Failure.Instr),
			Addr:   f.Failure.Addr,
			Msg:    f.Failure.Msg,
		},
		FDs: f.Trace.FDs,
	}
	for _, e := range f.Trace.Events {
		out.Events = append(out.Events, Event{
			TS: e.TS, Kind: e.Kind.String(), Thread: e.Thread, Source: e.Source, FD: e.FD,
		})
	}
	return out
}

// FromReport builds a report-only finding: the program under test plus
// a crash report, with no trace. Such a finding is diagnosed through
// the report-driven pipeline.
func FromReport(prog *kir.Program, report string) *File {
	return &File{
		SchemaVersion: Version,
		Program:       kasm.Disassemble(prog),
		Report:        report,
	}
}

// Save writes the finding to path.
func Save(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("finding: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a finding file and reconstructs the program and trace.
// For a report-only finding the trace is nil; check File.ReportOnly
// and diagnose from File.Report instead.
func Load(path string) (*kir.Program, *history.Trace, *File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, nil, fmt.Errorf("finding: parse %s: %w", path, err)
	}
	prog, tr, err := f.Restore()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("finding: %s: %w", path, err)
	}
	return prog, tr, &f, nil
}

// Restore reconstructs the program and trace from the serialized form.
// Report-only findings restore with a nil trace: their crash report is
// the diagnostic input, not an execution history.
func (f *File) Restore() (*kir.Program, *history.Trace, error) {
	if f.SchemaVersion > Version {
		return nil, nil, fmt.Errorf("schema version %d is newer than supported %d", f.SchemaVersion, Version)
	}
	prog, err := kasm.Parse(f.Program)
	if err != nil {
		return nil, nil, fmt.Errorf("embedded program: %w", err)
	}
	if f.ReportOnly() {
		return prog, nil, nil
	}
	kind, ok := sanitizer.KindByName(f.Crash.Kind)
	if !ok {
		return nil, nil, fmt.Errorf("unknown failure kind %q", f.Crash.Kind)
	}
	if f.Crash.Instr >= 0 {
		if _, ok := prog.Instr(kir.InstrID(f.Crash.Instr)); !ok {
			return nil, nil, fmt.Errorf("crash instruction %d not in program", f.Crash.Instr)
		}
	}
	tr := &history.Trace{
		Crash: &sanitizer.Failure{
			Kind:   kind,
			Thread: f.Crash.Thread,
			Instr:  kir.InstrID(f.Crash.Instr),
			Addr:   f.Crash.Addr,
			Msg:    f.Crash.Msg,
		},
		FDs: f.FDs,
	}
	for i, e := range f.Events {
		k, ok := eventKinds[e.Kind]
		if !ok {
			return nil, nil, fmt.Errorf("event %d: unknown kind %q", i, e.Kind)
		}
		tr.Events = append(tr.Events, history.Event{
			TS: e.TS, Kind: k, Thread: e.Thread, Source: e.Source, FD: e.FD,
		})
	}
	return prog, tr, nil
}

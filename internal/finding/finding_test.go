package finding

import (
	"context"
	"path/filepath"
	"testing"

	"aitia/internal/fuzz"
	"aitia/internal/manager"
	"aitia/internal/scenarios"
)

// TestSaveLoadDiagnoseRoundTrip: fuzz a scenario, save the finding to
// disk, load it back, and diagnose from the loaded artifact alone —
// the decoupled bug-finder/diagnoser workflow.
func TestSaveLoadDiagnoseRoundTrip(t *testing.T) {
	sc, _ := scenarios.ByName("syz04-kvm-irqfd")
	prog := sc.MustProgram()
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fnd, err := fz.Campaign()
	if err != nil || fnd == nil {
		t.Fatalf("fuzzing: %v, %v", fnd, err)
	}

	path := filepath.Join(t.TempDir(), "finding.json")
	if err := Save(path, FromFinding(prog, fnd)); err != nil {
		t.Fatal(err)
	}

	loadedProg, tr, file, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if file.Crash.Kind != fnd.Failure.Kind.String() {
		t.Errorf("crash kind = %q", file.Crash.Kind)
	}
	if tr.Crash == nil || tr.Crash.Kind != fnd.Failure.Kind {
		t.Errorf("trace crash = %v", tr.Crash)
	}
	if len(tr.Events) != len(fnd.Trace.Events) {
		t.Errorf("events = %d, want %d", len(tr.Events), len(fnd.Trace.Events))
	}

	// Diagnose purely from the loaded artifact.
	mgr, err := manager.New(loadedProg, manager.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.DiagnoseTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	want := "A1 => B1 → K1 => A2 → KASAN: use-after-free"
	if got := res.Diagnosis.Chain.Format(loadedProg); got != want {
		t.Errorf("chain from loaded finding = %q, want %q", got, want)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	bad := File{Program: "not a program", Crash: Crash{Kind: "kernel BUG (BUG_ON)"}}
	if _, _, err := bad.Restore(); err == nil {
		t.Error("bad embedded program should fail")
	}
	bad2 := File{Program: "global g = 1\nthread T f\nfunc f\nret\nend\n", Crash: Crash{Kind: "nonsense"}}
	if _, _, err := bad2.Restore(); err == nil {
		t.Error("unknown failure kind should fail")
	}
	bad3 := File{
		Program: "global g = 1\nthread T f\nfunc f\nret\nend\n",
		Crash:   Crash{Kind: "kernel BUG (BUG_ON)", Instr: 999},
	}
	if _, _, err := bad3.Restore(); err == nil {
		t.Error("out-of-range crash instruction should fail")
	}
}

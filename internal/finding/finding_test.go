package finding

import (
	"context"
	"path/filepath"
	"testing"

	"aitia/internal/fuzz"
	"aitia/internal/manager"
	"aitia/internal/scenarios"
)

// TestSaveLoadDiagnoseRoundTrip: fuzz a scenario, save the finding to
// disk, load it back, and diagnose from the loaded artifact alone —
// the decoupled bug-finder/diagnoser workflow.
func TestSaveLoadDiagnoseRoundTrip(t *testing.T) {
	sc, _ := scenarios.ByName("syz04-kvm-irqfd")
	prog := sc.MustProgram()
	fz, err := fuzz.New(prog, fuzz.Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	fnd, err := fz.Campaign()
	if err != nil || fnd == nil {
		t.Fatalf("fuzzing: %v, %v", fnd, err)
	}

	path := filepath.Join(t.TempDir(), "finding.json")
	if err := Save(path, FromFinding(prog, fnd)); err != nil {
		t.Fatal(err)
	}

	loadedProg, tr, file, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if file.Crash.Kind != fnd.Failure.Kind.String() {
		t.Errorf("crash kind = %q", file.Crash.Kind)
	}
	if tr.Crash == nil || tr.Crash.Kind != fnd.Failure.Kind {
		t.Errorf("trace crash = %v", tr.Crash)
	}
	if len(tr.Events) != len(fnd.Trace.Events) {
		t.Errorf("events = %d, want %d", len(tr.Events), len(fnd.Trace.Events))
	}

	// Diagnose purely from the loaded artifact.
	mgr, err := manager.New(loadedProg, manager.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := mgr.DiagnoseTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	want := "A1 => B1 → K1 => A2 → KASAN: use-after-free"
	if got := res.Diagnosis.Chain.Format(loadedProg); got != want {
		t.Errorf("chain from loaded finding = %q, want %q", got, want)
	}
}

// TestReportOnlyRoundTrip: a report-only finding (schema v2) saves,
// loads with a nil trace, and hands back the program and report intact
// for report-driven diagnosis.
func TestReportOnlyRoundTrip(t *testing.T) {
	sc, _ := scenarios.ByName("fig1")
	prog := sc.MustProgram()
	report := "BUG: KASAN: use-after-free in some_fn+0x1\n"

	path := filepath.Join(t.TempDir(), "report-finding.json")
	f := FromReport(prog, report)
	if !f.ReportOnly() || f.SchemaVersion != Version {
		t.Fatalf("finding = %+v", f)
	}
	if err := Save(path, f); err != nil {
		t.Fatal(err)
	}

	loadedProg, tr, file, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if tr != nil {
		t.Errorf("report-only finding restored a trace: %+v", tr)
	}
	if !file.ReportOnly() || file.Report != report {
		t.Errorf("report = %q, want %q", file.Report, report)
	}
	if file.SchemaVersion != Version {
		t.Errorf("version = %d, want %d", file.SchemaVersion, Version)
	}
	if loadedProg == nil || len(loadedProg.Threads) != len(prog.Threads) {
		t.Errorf("program did not survive the round trip")
	}

	// A legacy trace finding (no version marker) must still load.
	legacy := File{
		Program: "global g = 1\nthread T f\nfunc f\nret\nend\n",
		Crash:   Crash{Kind: "kernel BUG (BUG_ON)", Instr: -1},
	}
	if _, _, err := legacy.Restore(); err != nil {
		t.Errorf("legacy finding rejected: %v", err)
	}

	// A finding from a future schema must be rejected, not misread.
	future := File{SchemaVersion: Version + 1, Program: legacy.Program}
	if _, _, err := future.Restore(); err == nil {
		t.Error("future schema version accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, _, _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should fail")
	}
	bad := File{Program: "not a program", Crash: Crash{Kind: "kernel BUG (BUG_ON)"}}
	if _, _, err := bad.Restore(); err == nil {
		t.Error("bad embedded program should fail")
	}
	bad2 := File{Program: "global g = 1\nthread T f\nfunc f\nret\nend\n", Crash: Crash{Kind: "nonsense"}}
	if _, _, err := bad2.Restore(); err == nil {
		t.Error("unknown failure kind should fail")
	}
	bad3 := File{
		Program: "global g = 1\nthread T f\nfunc f\nret\nend\n",
		Crash:   Crash{Kind: "kernel BUG (BUG_ON)", Instr: 999},
	}
	if _, _, err := bad3.Restore(); err == nil {
		t.Error("out-of-range crash instruction should fail")
	}
}

package scenarios_test

import (
	"testing"

	"aitia/internal/core"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
)

// TestAllScenarioGroundTruth runs the full LIFS + Causality Analysis
// pipeline on every scenario in the corpus and checks it against the
// scenario's recorded ground truth: failure kind, causality-chain size and
// (when specified) exact chain rendering, interleaving count, ambiguity,
// and benign-race exclusion.
func TestAllScenarioGroundTruth(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := sc.Program()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			m, err := kvm.New(prog)
			if err != nil {
				t.Fatalf("machine: %v", err)
			}

			rep, err := core.Reproduce(m, core.LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: sc.WantInstr(),
				LeakCheck: sc.NeedsLeakCheck(),
			})
			if err != nil {
				t.Fatalf("LIFS: %v", err)
			}
			if rep.Run.Failure.Kind != sc.WantKind {
				t.Fatalf("failure kind = %v, want %v", rep.Run.Failure.Kind, sc.WantKind)
			}
			if sc.WantInterleavings > 0 && rep.Stats.Interleavings != sc.WantInterleavings {
				t.Errorf("interleavings = %d, want %d (seq: %s)",
					rep.Stats.Interleavings, sc.WantInterleavings, rep.Run.FormatSeq(prog, false))
			}

			d, err := core.Analyze(m, rep, core.AnalysisOptions{LeakCheck: sc.NeedsLeakCheck()})
			if err != nil {
				t.Fatalf("Causality Analysis: %v", err)
			}
			if got := d.Chain.Len(); got != sc.WantChainLen {
				t.Errorf("chain has %d races, want %d\nchain: %s",
					got, sc.WantChainLen, d.Chain.Format(prog))
			}
			if sc.WantChain != "" {
				if got := d.Chain.Format(prog); got != sc.WantChain {
					t.Errorf("chain = %q\nwant    %q", got, sc.WantChain)
				}
			}
			if sc.WantAmbiguous != d.Chain.HasAmbiguity() {
				t.Errorf("ambiguity = %v, want %v (chain: %s)",
					d.Chain.HasAmbiguity(), sc.WantAmbiguous, d.Chain.Format(prog))
			}
			if sc.BenignRaces > 0 && len(d.Benign) < sc.BenignRaces {
				t.Errorf("benign races classified = %d, want >= %d", len(d.Benign), sc.BenignRaces)
			}
			// Conciseness: every chain race must be a tested root cause or
			// ambiguous; no benign race may appear in the chain.
			benign := make(map[string]bool)
			for _, r := range d.Benign {
				benign[r.Format(prog)] = true
			}
			for _, r := range d.Chain.Races() {
				if benign[r.Format(prog)] {
					t.Errorf("benign race %s appears in the chain", r.Format(prog))
				}
			}
		})
	}
}

package scenarios

import (
	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// cve201715649 models CVE-2017-15649 (packet socket fanout), the paper's
// running example (Figure 2): a multi-variable atomicity violation on
// po->running and po->fanout between setsockopt(PACKET_FANOUT) and bind().
// The race-steered control flow A6 => B12 lets unregister_hook() call
// fanout_unlink() for a socket that was never linked, tripping BUG_ON.
//
// Expected causality chain (Figure 3):
//
//	(A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → BUG_ON()
//
// A benign statistics-counter race (SA/SB) is planted; it must not appear
// in the chain.
var cve201715649 = register(&Scenario{
	Name:      "cve-2017-15649",
	Title:     "CVE-2017-15649",
	Group:     GroupCVE,
	Subsystem: "Packet socket",
	BugType:   "assertion violation",

	MultiVariable: true,
	Threads:       2,
	WantKind:      sanitizer.KindBugOn,
	WantLabel:     "B17bug",
	WantChainLen:  4,
	WantChain: "(A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → " +
		"kernel BUG (BUG_ON)",
	WantInterleavings: 2,
	BenignRaces:       1,

	Notes: "setsockopt=fanout_add, bind=packet_do_bind. sk is modelled as " +
		"the constant 7 inserted into global_list. The pkt_stats counter is " +
		"the planted benign race.",

	build: func() (*kir.Program, error) {
		const sk = 7
		b := kir.NewBuilder()
		b.Var("po_running", 1)
		b.Var("po_fanout", 0)
		b.Var("global_list", 0)
		b.Var("pkt_stats", 1)

		// Thread A: setsockopt -> fanout_add().
		a := b.Func("fanout_add")
		a.RefGet(kir.R9, kir.G("pkt_stats")).L("SA") // benign stats bump
		a.Load(kir.R1, kir.G("po_running")).L("A2")
		a.Bne(kir.R(kir.R1), kir.Imm(0), "run")
		a.Ret() // -EINVAL
		a.At("run")
		a.Alloc(kir.R2, 1).L("A5") // match = kmalloc()
		// Invariant (violated by the race): po->running != 0 here.
		a.Store(kir.G("po_fanout"), kir.R(kir.R2)).L("A6")
		a.Call("fanout_link").L("A8")
		a.Ret()

		link := b.Func("fanout_link")
		link.ListAdd(kir.G("global_list"), kir.Imm(sk)).L("A12")
		link.Ret()

		// Thread B: bind -> packet_do_bind().
		pb := b.Func("packet_do_bind")
		pb.RefGet(kir.R9, kir.G("pkt_stats")).L("SB") // benign stats bump
		pb.Load(kir.R1, kir.G("po_fanout")).L("B2")
		pb.Bne(kir.R(kir.R1), kir.Imm(0), "out")
		// Invariant (violated by the race): po->fanout == 0 here.
		pb.Call("unregister_hook").L("B5")
		pb.Call("fanout_link").L("B7")
		pb.At("out").Ret()

		hook := b.Func("unregister_hook")
		hook.Store(kir.G("po_running"), kir.Imm(0)).L("B11")
		hook.Load(kir.R2, kir.G("po_fanout")).L("B12")
		hook.Beq(kir.R(kir.R2), kir.Imm(0), "done")
		hook.Call("fanout_unlink").L("B13")
		hook.At("done").Ret()

		unlink := b.Func("fanout_unlink")
		unlink.ListHas(kir.R3, kir.G("global_list"), kir.Imm(sk)).L("B17")
		unlink.Xor(kir.R3, kir.Imm(1))
		// BUG_ON(!list_contains(sk, global_list))
		unlink.BugOn(kir.R(kir.R3)).L("B17bug")
		unlink.ListDel(kir.G("global_list"), kir.Imm(sk))
		unlink.Ret()

		b.Thread("setsockopt", "fanout_add")
		b.Thread("bind", "packet_do_bind")
		return b.Build()
	},
})

// cve201911486 models CVE-2019-11486 (Siemens R3964 TTY line discipline):
// a classic pointer/lifetime race — one path snapshots the ldisc pointer
// and keeps using the object while a concurrent hangup retracts the
// pointer and frees the object.
var cve201911486 = register(&Scenario{
	Name:      "cve-2019-11486",
	Title:     "CVE-2019-11486",
	Group:     GroupCVE,
	Subsystem: "TTY",
	BugType:   "use-after-free access",

	Threads:           2,
	WantKind:          sanitizer.KindUseAfterFree,
	WantChainLen:      3,
	WantChain:         "(A1 => B2 ∧ B1 => A1) → B3 => A2 → KASAN: use-after-free",
	WantInterleavings: 2,
	BenignRaces:       1,
	Notes: "ioctl(TIOCSETD) vs. vhangup(): the ldisc object outlives its " +
		"pointer snapshot. The ioctl must catch the pointer inside the " +
		"install/retract window (the conjunction), after which the free " +
		"races with the snapshot's use.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("tty_ldisc", 0)
		b.Var("tty_stats", 1)

		// Setup thread-free initialization: the ldisc object is created by
		// the hangup path itself before the race window, modelled by B
		// allocating and publishing before the racy region.
		a := b.Func("r3964_ioctl")
		a.RefGet(kir.R9, kir.G("tty_stats")).L("SA")
		a.Load(kir.R1, kir.G("tty_ldisc")).L("A1")
		a.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		a.Store(kir.Ind(kir.R1, 0), kir.Imm(3)).L("A2") // use the snapshot
		a.At("out").Ret()

		h := b.Func("tty_hangup")
		h.RefGet(kir.R9, kir.G("tty_stats")).L("SB")
		h.Alloc(kir.R1, 1)
		h.Store(kir.G("tty_ldisc"), kir.R(kir.R1)).L("B1") // install ldisc
		h.Load(kir.R2, kir.G("tty_ldisc"))
		h.Store(kir.G("tty_ldisc"), kir.Imm(0)).L("B2") // retract
		h.Free(kir.R(kir.R2)).L("B3")                   // destroy
		h.Ret()

		b.Thread("ioctl$TIOCSETD", "r3964_ioctl")
		b.Thread("vhangup", "tty_hangup")
		return b.Build()
	},
})

// cve20196974 models CVE-2019-6974 (KVM kvm_ioctl_create_device): the
// device is published through the fd table before its initialization
// finishes; a concurrent close() frees it under the creator's feet. The
// fd-table slot (VFS) and the device object (KVM) are the paper's
// loosely-correlated object pair (§2.2).
var cve20196974 = register(&Scenario{
	Name:      "cve-2019-6974",
	Title:     "CVE-2019-6974",
	Group:     GroupCVE,
	Subsystem: "KVM",
	BugType:   "use-after-free access",

	MultiVariable:     true,
	LooselyCorrelated: true,
	Threads:           2,
	WantKind:          sanitizer.KindUseAfterFree,
	WantChainLen:      2,
	WantChain:         "A1 => B1 → B3 => A2 → KASAN: use-after-free",
	WantInterleavings: 1,
	Notes:             "fd_install before kvm_get_kvm; close() wins the race and kfree()s the half-initialized device.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("fdtable", 0)

		a := b.Func("kvm_ioctl_create_device")
		a.Alloc(kir.R1, 2)
		a.Store(kir.G("fdtable"), kir.R(kir.R1)).L("A1") // fd_install (too early)
		a.Store(kir.Ind(kir.R1, 1), kir.Imm(1)).L("A2")  // kvm_get_kvm: finish init
		a.Ret()

		c := b.Func("sys_close")
		c.Load(kir.R2, kir.G("fdtable")).L("B1")
		c.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		c.Store(kir.G("fdtable"), kir.Imm(0)).L("B2")
		c.Free(kir.R(kir.R2)).L("B3") // kvm_device release
		c.At("out").Ret()

		b.Thread("ioctl$KVM_CREATE_DEVICE", "kvm_ioctl_create_device")
		b.Thread("close", "sys_close")
		return b.Build()
	},
})

// cve201812232 models CVE-2018-12232 (SockFS): fchownat() checks
// sock->sk, a concurrent close() nulls it, and the attribute write
// dereferences NULL — a time-of-check-to-time-of-use on one pointer.
var cve201812232 = register(&Scenario{
	Name:      "cve-2018-12232",
	Title:     "CVE-2018-12232",
	Group:     GroupCVE,
	Subsystem: "SockFS",
	BugType:   "null-pointer dereference",

	Threads:           2,
	WantKind:          sanitizer.KindNullDeref,
	WantChainLen:      2,
	WantInterleavings: 1,
	BenignRaces:       1,
	Notes:             "sock->sk TOCTOU between sock_setattr and sock_close.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.VarAddrOf("sock_sk", "sk_obj")
		b.Global("sk_obj", 2, 0, 0)
		b.Var("sock_stats", 1)

		a := b.Func("sock_setattr")
		a.RefGet(kir.R9, kir.G("sock_stats")).L("SA")
		a.Load(kir.R1, kir.G("sock_sk")).L("A1") // check
		a.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		a.Load(kir.R2, kir.G("sock_sk")).L("A2") // use (re-read)
		a.Store(kir.Ind(kir.R2, 0), kir.Imm(1000)).L("A2d")
		a.At("out").Ret()

		c := b.Func("sock_close")
		c.RefGet(kir.R9, kir.G("sock_stats")).L("SB")
		c.Store(kir.G("sock_sk"), kir.Imm(0)).L("B1")
		c.Ret()

		b.Thread("fchownat", "sock_setattr")
		b.Thread("close", "sock_close")
		return b.Build()
	},
})

// cve201710661 models CVE-2017-10661 (timerfd): two concurrent
// timerfd_settime() calls race on the might_cancel flag; both conclude the
// timer is not yet on the cancel list and both insert it, tripping the
// list-corruption assertion. The flag and the list are a correlated
// multi-variable pair; the flag's write-write race is benign on its own.
var cve201710661 = register(&Scenario{
	Name:      "cve-2017-10661",
	Title:     "CVE-2017-10661",
	Group:     GroupCVE,
	Subsystem: "Timer fd",
	BugType:   "assertion violation",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindBugOn,
	WantChainLen:      2,
	WantInterleavings: 1,
	BenignRaces:       1,
	Notes:             "timerfd_setup_cancel's might_cancel check/set is not atomic; double list_add corrupts cancel_list.",

	build: func() (*kir.Program, error) {
		const timer = 9
		b := kir.NewBuilder()
		b.Var("might_cancel", 0)
		b.Var("cancel_list", 0)

		f := b.Func("timerfd_setup_cancel")
		f.Load(kir.R1, kir.G("might_cancel")).L("C1")
		f.Bne(kir.R(kir.R1), kir.Imm(0), "out")
		f.Store(kir.G("might_cancel"), kir.Imm(1)).L("C2")
		f.ListAdd(kir.G("cancel_list"), kir.Imm(timer)).L("C4") // CONFIG_DEBUG_LIST trips on the double add
		f.At("out").Ret()

		b.Thread("timerfd_settime$1", "timerfd_setup_cancel")
		b.Thread("timerfd_settime$2", "timerfd_setup_cancel")
		return b.Build()
	},
})

// cve20177533 models CVE-2017-7533 (inotify vs. rename): rename updates
// the dentry name length before swapping in the enlarged name buffer;
// fsnotify reads the new length against the old, smaller buffer —
// a slab-out-of-bounds read on the correlated (buffer, length) pair.
var cve20177533 = register(&Scenario{
	Name:      "cve-2017-7533",
	Title:     "CVE-2017-7533",
	Group:     GroupCVE,
	Subsystem: "Inotify",
	BugType:   "slab-out-of-bound access",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindOutOfBounds,
	WantChainLen:      2,
	WantInterleavings: 1,
	Notes:             "d_name.len and d_name.name must change atomically; fsnotify sees len=4 with the 2-word buffer.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("name_len", 2)
		b.HeapObj("name_ptr", 2, 100, 101) // the old, 2-word name buffer

		fs := b.Func("fsnotify_event")
		fs.Load(kir.R1, kir.G("name_len")).L("A1")
		fs.Load(kir.R2, kir.G("name_ptr")).L("A2")
		fs.Add(kir.R2, kir.R(kir.R1))
		fs.Sub(kir.R2, kir.Imm(1))
		fs.Load(kir.R3, kir.Ind(kir.R2, 0)).L("A3") // read name[len-1]
		fs.Ret()

		rn := b.Func("vfs_rename")
		rn.Store(kir.G("name_len"), kir.Imm(4)).L("B1") // len first (the bug)
		rn.Alloc(kir.R1, 4)
		rn.Store(kir.G("name_ptr"), kir.R(kir.R1)).L("B2") // buffer second
		rn.Ret()

		b.Thread("read$inotify", "fsnotify_event")
		b.Thread("rename", "vfs_rename")
		return b.Build()
	},
})

// cve20172671 models CVE-2017-2671 (IPv4 ping sockets): ping_unhash()
// clears the socket's hash slot while a concurrent connect() path looks
// the socket up and dereferences the cleared slot.
var cve20172671 = register(&Scenario{
	Name:      "cve-2017-2671",
	Title:     "CVE-2017-2671",
	Group:     GroupCVE,
	Subsystem: "IPV4",
	BugType:   "null-pointer dereference",

	Threads:           2,
	WantKind:          sanitizer.KindNullDeref,
	WantChainLen:      2,
	WantInterleavings: 1,
	BenignRaces:       1,
	Notes:             "ping_lookup vs. ping_unhash on the hash-table slot.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.VarAddrOf("ping_slot", "ping_sk")
		b.Global("ping_sk", 2, 0, 0)
		b.Var("ping_stats", 1)

		lk := b.Func("ping_lookup")
		lk.RefGet(kir.R9, kir.G("ping_stats")).L("SA")
		lk.Load(kir.R1, kir.G("ping_slot")).L("A1") // check
		lk.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		lk.Load(kir.R2, kir.G("ping_slot")).L("A2") // use (re-read)
		lk.Load(kir.R3, kir.Ind(kir.R2, 0)).L("A2d")
		lk.At("out").Ret()

		uh := b.Func("ping_unhash")
		uh.RefGet(kir.R9, kir.G("ping_stats")).L("SB")
		uh.Store(kir.G("ping_slot"), kir.Imm(0)).L("B1")
		uh.Ret()

		b.Thread("connect", "ping_lookup")
		b.Thread("disconnect", "ping_unhash")
		return b.Build()
	},
})

// cve20172636 models CVE-2017-2636 (n_hdlc TTY line discipline): two
// flush paths both observe the same tx buffer on the list and both free
// it — the double free that made this CVE exploitable. Both threads run
// the identical function, as in the kernel.
var cve20172636 = register(&Scenario{
	Name:      "cve-2017-2636",
	Title:     "CVE-2017-2636",
	Group:     GroupCVE,
	Subsystem: "TTY",
	BugType:   "double free",

	Threads:           2,
	WantKind:          sanitizer.KindDoubleFree,
	WantChainLen:      2,
	WantInterleavings: 1,
	BenignRaces:       2,
	Notes: "n_hdlc.tbuf harvested twice: the load/clear of first_buf is " +
		"not atomic, so both flushers free the same buffer. The symmetric " +
		"read->clear races form one conjunction; the clear/clear and " +
		"free/free races are benign (the failure manifests either way).",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.HeapObj("first_buf", 1, 42) // tbuf pre-queued before the race

		fl := b.Func("flush_tx_queue")
		fl.Load(kir.R1, kir.G("first_buf")).L("C1")
		fl.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		fl.Store(kir.G("first_buf"), kir.Imm(0)).L("C2")
		fl.Free(kir.R(kir.R1)).L("C3")
		fl.At("out").Ret()

		b.Thread("ioctl$TCFLSH", "flush_tx_queue")
		b.Thread("ioctl$TCFLSH2", "flush_tx_queue")
		return b.Build()
	},
})

// cve201610200 models CVE-2016-10200 (L2TP): the bind/lookup race whose
// diagnosis hits the paper's single ambiguity case (§5.1): the surrounding
// race l2tp bind-publish => lookup-use cannot be flipped while preserving
// the nested race, and the nested race is itself a root cause.
var cve201610200 = register(&Scenario{
	Name:      "cve-2016-10200",
	Title:     "CVE-2016-10200",
	Group:     GroupCVE,
	Subsystem: "L2TP",
	BugType:   "assertion violation",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindBugOn,
	WantChainLen:      3,
	WantAmbiguous:     true,
	WantInterleavings: 1,
	Notes: "l2tp_ip_bind transiently marks the socket busy around the hash " +
		"publication; the checker's two loads surround the marked window, " +
		"and flipping the surrounding race necessarily flips the nested " +
		"one — the paper's single ambiguity case.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("sk_busy", 0)
		b.Var("hash_entry", 0)

		bind := b.Func("l2tp_ip_bind")
		bind.Store(kir.G("sk_busy"), kir.Imm(1)).L("A1") // enter the bind window
		bind.Store(kir.G("hash_entry"), kir.Imm(1)).L("A2")
		bind.Store(kir.G("sk_busy"), kir.Imm(0)).L("A3") // leave the window
		bind.Ret()

		lk := b.Func("l2tp_ip_lookup")
		lk.Load(kir.R1, kir.G("hash_entry")).L("B1")
		lk.Load(kir.R2, kir.G("sk_busy")).L("B2")
		lk.And(kir.R1, kir.R(kir.R2))
		lk.BugOn(kir.R(kir.R1)) // hashed socket observed mid-bind
		lk.Ret()

		b.Thread("bind", "l2tp_ip_bind")
		b.Thread("connect", "l2tp_ip_lookup")
		return b.Build()
	},
})

// cve20168655 models CVE-2016-8655 (AF_PACKET): setsockopt(PACKET_VERSION)
// may only change the ring format while no ring exists, but the check and
// the ring creation interleave; packet_set_ring then indexes the ring with
// a version it was not sized for — an out-of-bounds access standing in for
// the original use-after-free of the version-dependent closure.
var cve20168655 = register(&Scenario{
	Name:      "cve-2016-8655",
	Title:     "CVE-2016-8655",
	Group:     GroupCVE,
	Subsystem: "Packet socket",
	BugType:   "slab-out-of-bound access",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindOutOfBounds,
	WantInterleavings: 1,
	WantChainLen:      3,
	Notes:             "po->tp_version vs. po->rx_ring: the ring is sized under the old version and indexed under the new one.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("po_version", 1)
		b.Var("po_ring", 0)

		sr := b.Func("packet_set_ring")
		sr.Load(kir.R1, kir.G("po_version")).L("A1") // size ring for this version
		sr.Alloc(kir.R2, 2)
		sr.Store(kir.G("po_ring"), kir.R(kir.R2)).L("A3")
		sr.Load(kir.R3, kir.G("po_version")).L("A4") // index ring per current version
		sr.Mov(kir.R4, kir.R(kir.R2))
		sr.Add(kir.R4, kir.R(kir.R3))
		sr.Sub(kir.R4, kir.R(kir.R1))
		sr.Add(kir.R4, kir.Imm(1))
		sr.Store(kir.Ind(kir.R4, 0), kir.Imm(5)).L("A5") // ring[1 + (v'-v)]
		sr.Ret()

		sv := b.Func("packet_setsockopt_version")
		sv.Load(kir.R1, kir.G("po_ring")).L("B1") // forbidden while ring exists
		sv.Bne(kir.R(kir.R1), kir.Imm(0), "out")
		sv.Store(kir.G("po_version"), kir.Imm(2)).L("B2")
		sv.At("out").Ret()

		b.Thread("setsockopt$PACKET_RX_RING", "packet_set_ring")
		b.Thread("setsockopt$PACKET_VERSION", "packet_setsockopt_version")
		return b.Build()
	},
})

package scenarios

import (
	"testing"

	"aitia/internal/kasm"
)

// TestHashReparseInvariant verifies the cache-key property of
// kir.Program.Hash across the whole corpus: disassembling a scenario
// program and re-parsing the text yields the same hash, so a crash
// report resubmitted as serialized source maps to the same cache entry.
func TestHashReparseInvariant(t *testing.T) {
	for _, sc := range All() {
		prog, err := sc.Program()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		src := kasm.Disassemble(prog)
		reparsed, err := kasm.Parse(src)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", sc.Name, err)
		}
		if got, want := reparsed.Hash(), prog.Hash(); got != want {
			t.Errorf("%s: hash changed across disassemble/parse round trip:\n got %s\nwant %s",
				sc.Name, got, want)
		}
	}
}

// TestHashDistinctAcrossCorpus verifies that no two corpus scenarios
// collide: every program must have its own cache identity.
func TestHashDistinctAcrossCorpus(t *testing.T) {
	seen := map[string]string{} // hash -> scenario name
	for _, sc := range All() {
		prog, err := sc.Program()
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		h := prog.Hash()
		if prev, dup := seen[h]; dup {
			t.Errorf("scenarios %s and %s hash identically (%s)", prev, sc.Name, h)
		}
		seen[h] = sc.Name
	}
	if len(seen) < 20 {
		t.Errorf("corpus yielded only %d distinct hashes", len(seen))
	}
}

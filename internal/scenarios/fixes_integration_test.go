package scenarios_test

import (
	"testing"

	"aitia/internal/core"
	"aitia/internal/kir"
	"aitia/internal/kvm"
	"aitia/internal/scenarios"
	"aitia/internal/sched"
)

// TestIncompleteFixIsRejected: a patch that serializes only ONE of the
// racing paths (the classic incomplete-fix mistake, cf. the paper's
// discussion of incorrect kernel fixes [76, 109]) does not prevent the
// failure — the verification methodology catches it.
func TestIncompleteFixIsRejected(t *testing.T) {
	sc, _ := scenarios.ByName("cve-2017-15649")
	raw, err := sc.RawProgram()
	if err != nil {
		t.Fatal(err)
	}
	// Lock only fanout_add; packet_do_bind still races against it freely.
	broken, err := raw.FixSerialize("fanout_add")
	if err != nil {
		t.Fatal(err)
	}
	m, err := kvm.New(broken)
	if err != nil {
		t.Fatal(err)
	}
	wantInstr := kir.NoInstr
	if in, ok := broken.ByLabel(sc.WantLabel); ok {
		wantInstr = in.ID
	}
	_, err = core.Reproduce(m, core.LIFSOptions{WantKind: sc.WantKind, WantInstr: wantInstr})
	if err != nil {
		t.Fatalf("the incomplete fix should still reproduce, got %v", err)
	}
}

// TestFixesPreventEveryFailure reproduces the paper's §5.1/§5.2
// verification methodology: for every bug, applying the (modelled)
// developer fix removes an interleaving order from the causality chain,
// and the failure no longer reproduces — LIFS exhausts its search on the
// patched program. The patched program must also still be functional
// (it runs to completion without failures under a plain serial schedule).
func TestFixesPreventEveryFailure(t *testing.T) {
	for _, sc := range scenarios.All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			if !sc.HasFix() {
				t.Fatalf("scenario %s models no fix", sc.Name)
			}
			fixed, err := sc.Fixed()
			if err != nil {
				t.Fatalf("Fixed: %v", err)
			}

			// The patched kernel still works: serial runs complete.
			m, err := kvm.New(fixed)
			if err != nil {
				t.Fatal(err)
			}
			var order []string
			for _, td := range fixed.Threads {
				order = append(order, td.Name)
			}
			res, err := sched.NewEnforcer(m).Run(sched.Serial(order...), sched.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Failed() {
				t.Fatalf("patched program fails serially: %v", res.Failure)
			}

			// The failure no longer reproduces: the fix cut the chain.
			if err := m.Reset(); err != nil {
				t.Fatal(err)
			}
			wantInstr := kir.NoInstr
			if sc.WantLabel != "" {
				if in, ok := fixed.ByLabel(sc.WantLabel); ok {
					wantInstr = in.ID
				}
			}
			_, err = core.Reproduce(m, core.LIFSOptions{
				WantKind:  sc.WantKind,
				WantInstr: wantInstr,
				LeakCheck: sc.NeedsLeakCheck(),
			})
			if !core.IsNotReproduced(err) {
				t.Errorf("patched program still reproduces (%v)", err)
			}
		})
	}
}

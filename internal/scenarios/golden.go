package scenarios

// GoldenChains pins the exact causality chain of every corpus scenario.
// The pipeline is fully deterministic, so any change here is a behaviour
// change in LIFS, Causality Analysis, chain construction or a scenario —
// and must be reviewed against the paper before updating the golden
// value (regenerate with `go run ./cmd/aitia-bench -chains`).
//
// The map is consumed from two independent directions so a regression
// cannot hide: the golden test (TestGoldenChains) and the CI corpus gate
// (`aitia-bench -check-chains`), which re-diagnoses the corpus without
// going through `go test` at all.
var GoldenChains = map[string]string{
	"cve-2016-10200": "(A1 => B2 (ambiguous) ∧ A2 => B1 ∧ B2 => A3) → kernel BUG (BUG_ON)",
	"cve-2016-8655":  "B1 => A3 → (A1 => B2 ∧ B2 => A4) → KASAN: slab-out-of-bounds",
	"cve-2017-10661": "(C1 => C2 ∧ C1 => C2) → kernel BUG (BUG_ON)",
	"cve-2017-15649": "(A2 => B11 ∧ B2 => A6) → A6 => B12 → B17 => A12 → kernel BUG (BUG_ON)",
	"cve-2017-2636":  "(C1 => C2 ∧ C1 => C2) → KASAN: double-free",
	"cve-2017-2671":  "A1 => B1 → B1 => A2 → NULL pointer dereference",
	"cve-2017-7533":  "(A2 => B2 ∧ B1 => A1) → KASAN: slab-out-of-bounds",
	"cve-2018-12232": "A1 => B1 → B1 => A2 → NULL pointer dereference",
	"cve-2019-11486": "(A1 => B2 ∧ B1 => A1) → B3 => A2 → KASAN: use-after-free",
	"cve-2019-6974":  "A1 => B1 → B3 => A2 → KASAN: use-after-free",

	"fig1":  "A1 => B1 → B2 => A2 → NULL pointer dereference",
	"fig4a": "(A1 => K1 ∧ B1 => A1) → K1 => A2 → NULL pointer dereference",
	"fig4b": "R2 => A3 → KASAN: use-after-free",
	"fig4c": "A1 => B1 → B2 => A2 → B3 => A3 → NULL pointer dereference",
	"fig5":  "A1 => B1 → K1 => A3 → NULL pointer dereference",
	"fig7":  "(A1 => B2 (ambiguous) ∧ A2 => B1 ∧ B2 => A3) → kernel BUG (BUG_ON)",

	"syz01-l2tp-oob":         "(B1 => A1 ∧ A2 => B2) → KASAN: slab-out-of-bounds",
	"syz02-packet-frame":     "(B1 => A2 ∧ B2 => A2 ∧ A1 => B2) → A2 => B3 → kernel BUG (BUG_ON)",
	"syz03-l2tp-uaf":         "A1 => B1 → B2 => A2 → KASAN: use-after-free",
	"syz04-kvm-irqfd":        "A1 => B1 → K1 => A2 → KASAN: use-after-free",
	"syz05-rxrpc-local":      "K1 => A2 → KASAN: use-after-free",
	"syz06-bpf-devmap":       "A1 => B1 → A2 => B2 → (B0 => A5 ∧ B3 => A3) → general protection fault",
	"syz07-delete-partition": "(A1 => B2 ∧ B1 => A3) → (B1 => A5 ∧ B3 => A4) → KASAN: use-after-free",
	"syz08-j1939-refcount":   "B1 => A1 → A2 => B2 → A3 => B3 → (B5 => A5 ∧ K1 => A4) → KASAN: use-after-free",
	"syz09-seccomp-leak":     "(C1 => C2 ∧ C1 => C2) → memory leak",
	"syz10-md-ioctl":         "C1 => C4 → (C4 => C2 ∧ C4 => C4) → kernel BUG (BUG_ON)",
	"syz11-floppy-bh":        "(C1 => C2 ∧ C1 => C2) → kernel BUG (BUG_ON)",
	"syz12-sco-timeout":      "(A1 => B1 ∧ A2 => B1) → B2 => A3 → B3 => K1 → KASAN: use-after-free",

	"ext-irq-timer": "I1 => B1 → I2 => B2 → B3 => I3 → KASAN: use-after-free",
	"ext-cs-order":  "A1 => B2 → B3 => A2 → KASAN: use-after-free",
}

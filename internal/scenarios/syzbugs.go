package scenarios

import (
	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// syz04 models Table 3's bug #4 — "KASAN: use-after-free Write in
// irq_bypass_register_consumer" (KVM irqfd), the paper's Figure 9 case
// study. Syscall A initializes an irqfd object in two non-atomic steps
// (publish to the list at A1, finish initialization at A2); syscall B
// finds the published object (B1) and queues a kworker (B2) that frees it
// (K1) before A's initialization finishes — a use-after-free whose
// causality crosses the thread boundary through the race-steered
// invocation of the worker.
//
// Expected chain (Figure 9(b)): A1 => B1 → K1 => A2 → use-after-free.
var syz04 = register(&Scenario{
	Name:      "syz04-kvm-irqfd",
	Title:     "#4 KASAN: use-after-free Write in irq_bypass_register_consumer",
	Group:     GroupSyzkaller,
	Subsystem: "KVM",
	BugType:   "use-after-free access",

	MultiVariable:       true,
	LooselyCorrelated:   true,
	Threads:             2,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindUseAfterFree,
	WantChainLen:        2,
	WantChain:           "A1 => B1 → K1 => A2 → KASAN: use-after-free",
	WantInterleavings:   1,

	Notes: "The irqfd list lives in the VFS/irqbypass layer while the " +
		"object payload belongs to KVM — the loosely correlated pair of " +
		"§2.2: many syscalls change the virtual device's attributes " +
		"through its file descriptor without touching the kvm object.",
	Noise: map[string][]string{
		"fcntl$irqfd":   {"irqfd_list"},
		"fstat$irqfd":   {"irqfd_list"},
		"ioctl$KVM_RUN": {"!heap"},
	},

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("irqfd_list", 0)

		a := b.Func("kvm_irqfd_assign")
		a.Alloc(kir.R1, 2)
		a.Store(kir.G("irqfd_list"), kir.R(kir.R1)).L("A1") // list_add(irqfd, list)
		a.Store(kir.Ind(kir.R1, 1), kir.Imm(11)).L("A2")    // irqfd->data = data
		a.Ret()

		sb := b.Func("kvm_irqfd_deassign")
		sb.Load(kir.R2, kir.G("irqfd_list")).L("B1") // irqfd = list_find(list)
		sb.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		sb.Store(kir.G("irqfd_list"), kir.Imm(0))
		sb.QueueWork("irqfd_shutdown", kir.R(kir.R2)).L("B2")
		sb.At("out").Ret()

		w := b.Func("irqfd_shutdown")
		w.Free(kir.R(kir.R0)).L("K1") // kfree(irqfd)
		w.Ret()

		b.Thread("ioctl$IRQFD", "kvm_irqfd_assign")
		b.Thread("ioctl$IRQFD_DEASSIGN", "kvm_irqfd_deassign")
		return b.Build()
	},
})

// syz01 models Table 3's bug #1 — "KASAN: slab-out-of-bounds Read in
// pppol2tp_connect" (L2TP). The session's header length and its buffer
// live in different layers (PPP vs. L2TP core) and are updated
// non-atomically: connect() reads the enlarged length against the old,
// smaller buffer.
var syz01 = register(&Scenario{
	Name:      "syz01-l2tp-oob",
	Title:     "#1 KASAN: slab-out-of-bounds Read in pppol2tp_connect",
	Group:     GroupSyzkaller,
	Subsystem: "L2TP",
	BugType:   "slab-out-of-bound access",

	MultiVariable:     true,
	LooselyCorrelated: true,
	Threads:           2,
	WantKind:          sanitizer.KindOutOfBounds,
	WantChainLen:      2,
	WantInterleavings: 1,
	BenignRaces:       1,

	Notes: "hdr_len (PPP layer) and the header buffer (L2TP core) form the " +
		"loosely correlated pair; most syscalls touch only one of the two.",
	Noise: map[string][]string{
		"getsockopt$PPP":     {"hdr_len"},
		"ioctl$PPPIOCGMRU":   {"hdr_len"},
		"ioctl$PPPIOCGFLAGS": {"hdr_len"},
		"write$ppp":          {"!heap"},
	},

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("hdr_len", 2)
		b.HeapObj("hdr_buf", 2, 100, 101)
		b.Var("l2tp_stats", 1)

		cn := b.Func("pppol2tp_connect")
		cn.RefGet(kir.R9, kir.G("l2tp_stats")).L("SA")
		cn.Load(kir.R1, kir.G("hdr_len")).L("A1")
		cn.Load(kir.R2, kir.G("hdr_buf")).L("A2")
		cn.Add(kir.R2, kir.R(kir.R1))
		cn.Sub(kir.R2, kir.Imm(1))
		cn.Load(kir.R3, kir.Ind(kir.R2, 0)).L("A3") // read buf[len-1]
		cn.Ret()

		st := b.Func("l2tp_session_set_header")
		st.RefGet(kir.R9, kir.G("l2tp_stats")).L("SB")
		st.Store(kir.G("hdr_len"), kir.Imm(4)).L("B1") // length first (the bug)
		st.Alloc(kir.R1, 4)
		st.Store(kir.G("hdr_buf"), kir.R(kir.R1)).L("B2") // buffer second
		st.Ret()

		b.Thread("connect", "pppol2tp_connect")
		b.Thread("setsockopt$L2TP", "l2tp_session_set_header")
		return b.Build()
	},
})

// syz02 models Table 3's bug #2 — "general protection fault in
// packet_lookup_frame" (packet socket), classified as an assertion
// violation with four races in its chain: both ioctl paths pass the same
// single-variable state check before either commits its state transition,
// and the loser's sanity assertion fires.
var syz02 = register(&Scenario{
	Name:      "syz02-packet-frame",
	Title:     "#2 assertion violation in packet_lookup_frame",
	Group:     GroupSyzkaller,
	Subsystem: "Packet socket",
	BugType:   "assertion violation",

	Threads:           2,
	WantKind:          sanitizer.KindBugOn,
	WantLabel:         "B4",
	WantChainLen:      4,
	WantInterleavings: 2,

	Notes: "tp_status is the single racing variable: both the send and the " +
		"receive path check it for 0, claim it with their own tag, re-read " +
		"and assert ownership. The claims overlap and the assertion fires.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("tp_status", 0)

		snd := b.Func("packet_snd_frame")
		snd.Load(kir.R1, kir.G("tp_status")).L("A1")
		snd.Bne(kir.R(kir.R1), kir.Imm(0), "out") // frame busy: give up
		snd.Store(kir.G("tp_status"), kir.Imm(1)).L("A2")
		snd.Load(kir.R2, kir.G("tp_status")).L("A3")
		snd.Xor(kir.R2, kir.Imm(1))
		snd.BugOn(kir.R(kir.R2)).L("A4") // BUG_ON(tp_status != TP_STATUS_SEND)
		snd.At("out").Ret()

		rcv := b.Func("packet_lookup_frame")
		rcv.Load(kir.R1, kir.G("tp_status")).L("B1")
		rcv.Bne(kir.R(kir.R1), kir.Imm(0), "out")
		rcv.Store(kir.G("tp_status"), kir.Imm(2)).L("B2")
		rcv.Load(kir.R2, kir.G("tp_status")).L("B3")
		rcv.Xor(kir.R2, kir.Imm(2))
		rcv.BugOn(kir.R(kir.R2)).L("B4") // BUG_ON(tp_status != TP_STATUS_USER)
		rcv.At("out").Ret()

		b.Thread("sendmsg$packet", "packet_snd_frame")
		b.Thread("recvmsg$packet", "packet_lookup_frame")
		return b.Build()
	},
})

// syz03 models Table 3's bug #3 — "KASAN: use-after-free Read in
// pppol2tp_connect" (L2TP): connect() snapshots the session pointer, a
// concurrent release clears it and frees the session, and the snapshot is
// dereferenced afterwards.
var syz03 = register(&Scenario{
	Name:      "syz03-l2tp-uaf",
	Title:     "#3 KASAN: use-after-free Read in pppol2tp_connect",
	Group:     GroupSyzkaller,
	Subsystem: "L2TP",
	BugType:   "use-after-free access",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindUseAfterFree,
	WantChainLen:      2,
	WantChain:         "A1 => B1 → B2 => A2 → KASAN: use-after-free",
	WantInterleavings: 1,
	BenignRaces:       1,

	Notes: "session pointer and session object: the paper counts the pair " +
		"as a (tightly correlated) multi-variable race — every session " +
		"operation touches both, which MUVI's mining picks up.",
	Noise: map[string][]string{
		"ioctl$PPPIOCGL2TPSTATS": {"session", "!heap"},
		"sendmsg$l2tp":           {"session", "!heap"},
		"recvmsg$l2tp":           {"session", "!heap"},
		"getsockname$l2tp":       {"session", "!heap"},
	},

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.HeapObj("session", 2, 0, 0)
		b.Var("tunnel_stats", 1)

		cn := b.Func("pppol2tp_connect")
		cn.RefGet(kir.R9, kir.G("tunnel_stats")).L("SA")
		cn.Load(kir.R1, kir.G("session")).L("A1") // snapshot
		cn.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		cn.Load(kir.R2, kir.Ind(kir.R1, 1)).L("A2") // use snapshot
		cn.At("out").Ret()

		rl := b.Func("l2tp_session_delete")
		rl.RefGet(kir.R9, kir.G("tunnel_stats")).L("SB")
		rl.Load(kir.R1, kir.G("session"))
		rl.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		rl.Store(kir.G("session"), kir.Imm(0)).L("B1")
		rl.Free(kir.R(kir.R1)).L("B2")
		rl.At("out").Ret()

		b.Thread("connect", "pppol2tp_connect")
		b.Thread("close", "l2tp_session_delete")
		return b.Build()
	},
})

// syz05 models Table 3's bug #5 — "KASAN: use-after-free Read in
// rxrpc_queue_local": the shortest chain in the study (a single race).
// The endpoint destructor runs as deferred work and frees the local
// endpoint while a syscall unconditionally queues onto it.
var syz05 = register(&Scenario{
	Name:      "syz05-rxrpc-local",
	Title:     "#5 KASAN: use-after-free Read in rxrpc_queue_local",
	Group:     GroupSyzkaller,
	Subsystem: "RxRPC",
	BugType:   "use-after-free access",

	Threads:             1,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindUseAfterFree,
	WantChainLen:        1,
	WantInterleavings:   1,

	Notes: "No race-steered control flow: the chain is the single race " +
		"K1 => A2 between the deferred destructor and the endpoint's own " +
		"release path, which still queues onto the local after handing it " +
		"to the destroyer (the Figure 4(b) single-syscall pattern).",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.HeapObj("rxrpc_local", 2, 1, 0)

		cl := b.Func("rxrpc_release")
		cl.Load(kir.R1, kir.G("rxrpc_local"))
		cl.QueueWork("rxrpc_local_destroyer", kir.R(kir.R1)).L("A1")
		cl.Store(kir.Ind(kir.R1, 1), kir.Imm(1)).L("A2") // rxrpc_queue_local
		cl.Ret()

		ds := b.Func("rxrpc_local_destroyer")
		ds.Free(kir.R(kir.R0)).L("K1")
		ds.Ret()

		b.Thread("close", "rxrpc_release")
		return b.Build()
	},
})

// syz06 models Table 3's bug #6 — "general protection fault in
// dev_map_hash_update_elem" (BPF): two race-steered control flows chained
// across the map's state flags plus a wild pointer write, with a fourth
// race visible only as the truncated thread's unexecuted access (the
// phantom pattern of Figure 6's step 1).
var syz06 = register(&Scenario{
	Name:      "syz06-bpf-devmap",
	Title:     "#6 general protection fault in dev_map_hash_update_elem",
	Group:     GroupSyzkaller,
	Subsystem: "BPF",
	BugType:   "general protection fault",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindGPF,
	WantInterleavings: 1,
	WantChainLen:      4,

	Notes: "map_busy steers the teardown path and map_freeing steers the " +
		"updater; the bucket pointer is poisoned under the updater's feet. " +
		"The fourth chain race is the phantom B0 => A5 — the updater's " +
		"user-count bump never executes in the failing run (cf. Fig. 6 " +
		"step 1). The map's state words live together and are accessed " +
		"together (tight correlation).",
	Noise: map[string][]string{
		"bpf$MAP_LOOKUP":  {"map_busy", "map_freeing", "bucket", "map_users"},
		"bpf$MAP_GET_FD":  {"map_busy", "map_freeing", "bucket", "map_users"},
		"bpf$MAP_GETINFO": {"map_busy", "map_freeing", "bucket", "map_users"},
		"bpf$MAP_WALK":    {"map_busy", "map_freeing", "bucket", "map_users"},
	},

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("map_busy", 0)
		b.Var("map_freeing", 0)
		b.HeapObj("bucket", 2, 0, 0)
		b.Var("map_users", 1)

		up := b.Func("dev_map_hash_update_elem")
		up.Store(kir.G("map_busy"), kir.Imm(1)).L("A1")
		up.Load(kir.R1, kir.G("map_freeing")).L("A2")
		up.Bne(kir.R(kir.R1), kir.Imm(0), "out") // map being torn down: bail
		up.Load(kir.R2, kir.G("bucket")).L("A3")
		up.Store(kir.Ind(kir.R2, 0), kir.Imm(5)).L("A4")
		up.RefGet(kir.R9, kir.G("map_users")).L("A5") // never reached in the failing run
		up.At("out").Ret()

		fr := b.Func("dev_map_free")
		fr.Load(kir.R9, kir.G("map_users")).L("B0")
		fr.Load(kir.R1, kir.G("map_busy")).L("B1")
		fr.Beq(kir.R(kir.R1), kir.Imm(0), "out") // nobody racing: plain teardown
		fr.Store(kir.G("map_freeing"), kir.Imm(1)).L("B2")
		fr.Store(kir.G("bucket"), kir.Imm(0x7fff0000)).L("B3") // poison
		fr.At("out").Ret()

		b.Thread("bpf$MAP_UPDATE", "dev_map_hash_update_elem")
		b.Thread("bpf$MAP_FREE", "dev_map_free")
		return b.Build()
	},
})

// syz07 models Table 3's bug #7 — "KASAN: use-after-free Read in
// delete_partition" (block device): an openers-count atomicity violation
// lets delete_partition() destroy the partition while open() is still
// using it.
var syz07 = register(&Scenario{
	Name:      "syz07-delete-partition",
	Title:     "#7 KASAN: use-after-free Read in delete_partition",
	Group:     GroupSyzkaller,
	Subsystem: "Block device",
	BugType:   "use-after-free access",

	Threads:           2,
	WantKind:          sanitizer.KindUseAfterFree,
	WantInterleavings: 1,
	WantChainLen:      4,

	Notes: "open() snapshots the partition before raising bd_openers; " +
		"delete_partition() only proceeds when it reads openers == 0, so " +
		"the window between the snapshot and the increment lets the " +
		"deletion slip in and free the snapshot. The fourth chain race is " +
		"the phantom B1 => A5 (the reset that never runs).",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("bd_openers", 0)
		b.HeapObj("part", 2, 0, 0)

		op := b.Func("blkdev_open")
		op.Load(kir.R1, kir.G("part")).L("A1") // snapshot the partition
		op.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		op.Load(kir.R2, kir.G("bd_openers")).L("A2")
		op.Bne(kir.R(kir.R2), kir.Imm(0), "out")
		op.Store(kir.G("bd_openers"), kir.Imm(1)).L("A3")
		op.Store(kir.Ind(kir.R1, 1), kir.Imm(1)).L("A4") // use the snapshot
		op.Store(kir.G("bd_openers"), kir.Imm(0)).L("A5")
		op.At("out").Ret()

		dp := b.Func("delete_partition")
		dp.Load(kir.R1, kir.G("bd_openers")).L("B1")
		dp.Bne(kir.R(kir.R1), kir.Imm(0), "out") // busy: refuse
		dp.Load(kir.R2, kir.G("part"))
		dp.Store(kir.G("part"), kir.Imm(0)).L("B2")
		dp.Free(kir.R(kir.R2)).L("B3")
		dp.At("out").Ret()

		b.Thread("open", "blkdev_open")
		b.Thread("ioctl$BLKPG_DEL", "delete_partition")
		return b.Build()
	},
})

// syz08 models Table 3's bug #8 — "WARNING: refcount bug in
// j1939_netdev_start" (CAN): the longest chain in the study (five races,
// two interleavings). The priv pointer is published between the release
// path's check and its re-check; the release then queues deferred
// destruction which frees the object under the still-initializing bind.
var syz08 = register(&Scenario{
	Name:      "syz08-j1939-refcount",
	Title:     "#8 WARNING: refcount bug in j1939_netdev_start",
	Group:     GroupSyzkaller,
	Subsystem: "CAN",
	BugType:   "use-after-free access",

	MultiVariable:       true,
	Threads:             2,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindUseAfterFree,
	WantInterleavings:   2,
	WantChainLen:        5,

	Notes: "bind_pending/ndev_active are the multi-variable pair: the stop " +
		"path must not tear down while a bind is in flight, and the bind " +
		"must not proceed on an inactive device — but neither check is " +
		"atomic with its partner's update. The kworker models the deferred " +
		"j1939_priv_put destruction; the fifth race is the phantom " +
		"B5 => A5 on the rx list. Every j1939 path touches the whole " +
		"priv state together (tight correlation).",
	Noise: map[string][]string{
		"sendmsg$j1939":      {"bind_pending", "ndev_active", "j1939_priv", "rx_list", "!heap"},
		"recvmsg$j1939":      {"bind_pending", "ndev_active", "j1939_priv", "rx_list", "!heap"},
		"getsockopt$j1939":   {"bind_pending", "ndev_active", "j1939_priv", "rx_list", "!heap"},
		"ioctl$SIOCGIFINDEX": {"bind_pending", "ndev_active", "j1939_priv", "rx_list", "!heap"},
		"sendto$j1939":       {"bind_pending", "ndev_active", "j1939_priv", "rx_list", "!heap"},
		"recvfrom$j1939":     {"bind_pending", "ndev_active", "j1939_priv", "rx_list", "!heap"},
	},

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("bind_pending", 0)
		b.Var("ndev_active", 1)
		b.Var("j1939_priv", 0)
		b.Var("rx_list", 0)

		bind := b.Func("j1939_netdev_start")
		bind.Store(kir.G("bind_pending"), kir.Imm(1)).L("A1")
		bind.Load(kir.R1, kir.G("ndev_active")).L("A2")
		bind.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		bind.Alloc(kir.R2, 2)
		bind.Store(kir.G("j1939_priv"), kir.R(kir.R2)).L("A3")
		bind.Store(kir.Ind(kir.R2, 1), kir.Imm(1)).L("A4") // finish init (rx_kref)
		bind.ListAdd(kir.G("rx_list"), kir.Imm(7)).L("A5")
		bind.At("out").Ret()

		rel := b.Func("j1939_netdev_stop")
		rel.Load(kir.R1, kir.G("bind_pending")).L("B1")
		rel.Bne(kir.R(kir.R1), kir.Imm(0), "out") // a bind is in flight: bail
		rel.Store(kir.G("ndev_active"), kir.Imm(0)).L("B2")
		rel.Load(kir.R2, kir.G("j1939_priv")).L("B3")
		rel.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		rel.Store(kir.G("j1939_priv"), kir.Imm(0))
		rel.QueueWork("j1939_priv_destroy", kir.R(kir.R2)).L("B4")
		rel.ListDel(kir.G("rx_list"), kir.Imm(7)).L("B5")
		rel.At("out").Ret()

		w := b.Func("j1939_priv_destroy")
		w.Free(kir.R(kir.R0)).L("K1")
		w.Ret()

		b.Thread("bind$can_j1939", "j1939_netdev_start")
		b.Thread("close", "j1939_netdev_stop")
		return b.Build()
	},
})

// syz09 models Table 3's bug #9 — "memory leak in do_seccomp": two
// concurrent filter installers both observe the empty slot; the loser's
// filter is overwritten and becomes unreachable. The task's filter slot
// and the filter objects live in different subsystems (task struct vs.
// seccomp), the loosely correlated pair.
var syz09 = register(&Scenario{
	Name:      "syz09-seccomp-leak",
	Title:     "#9 memory leak in do_seccomp",
	Group:     GroupSyzkaller,
	Subsystem: "Seccomp",
	BugType:   "memory leak",

	MultiVariable:     true,
	LooselyCorrelated: true,
	Threads:           2,
	WantKind:          sanitizer.KindMemoryLeak,
	WantInterleavings: 1,
	WantChainLen:      2,

	Notes: "Both installers run the identical function; the leak oracle is " +
		"kmemleak-style reachability from globals at run completion.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("installed", 0)
		b.Var("task_filter", 0)

		f := b.Func("do_seccomp_install")
		f.Alloc(kir.R1, 1) // prepare the new filter
		f.Load(kir.R2, kir.G("installed")).L("C1")
		f.Bne(kir.R(kir.R2), kir.Imm(0), "lose")
		f.Store(kir.G("installed"), kir.Imm(1)).L("C2")
		f.Store(kir.G("task_filter"), kir.R(kir.R1)).L("C3")
		f.Ret()
		f.At("lose")
		f.Free(kir.R(kir.R1)) // somebody else won: discard ours
		f.Ret()

		b.Thread("seccomp$1", "do_seccomp_install")
		b.Thread("seccomp$2", "do_seccomp_install")
		return b.Build()
	},
})

// syz10 models Table 3's bug #10 — "md: WARNING caused by a race between
// concurrent md_ioctl()s" (software RAID): the ioctl's state check runs
// under the reconfig mutex but the matching state update happens after
// the mutex is dropped — the critical sections themselves race with the
// unlocked update, exercising the §3.4 critical-section flip rule.
var syz10 = register(&Scenario{
	Name:      "syz10-md-ioctl",
	Title:     "#10 WARNING: race between concurrent md_ioctl()s",
	Group:     GroupSyzkaller,
	Subsystem: "Software RAID",
	BugType:   "assertion violation",

	Threads:           2,
	WantKind:          sanitizer.KindBugOn,
	WantInterleavings: 1,
	WantChainLen:      3,

	Notes: "Both ioctls pass the mutex-protected 'not suspended' check " +
		"before either sets mddev_suspended outside the lock; flipping " +
		"the check/set race moves the whole critical section (§3.4).",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("reconfig_mutex", 0)
		b.Var("suspended", 0)

		f := b.Func("md_ioctl")
		f.Lock(kir.G("reconfig_mutex"))
		f.Load(kir.R1, kir.G("suspended")).L("C1")
		f.Unlock(kir.G("reconfig_mutex"))
		f.Bne(kir.R(kir.R1), kir.Imm(0), "out")
		// The update happens after the mutex is dropped (the bug).
		f.Load(kir.R2, kir.G("suspended")).L("C2")
		f.BugOn(kir.R(kir.R2)).L("C3") // WARN_ON(mddev->suspended)
		f.Store(kir.G("suspended"), kir.Imm(1)).L("C4")
		f.At("out").Ret()

		b.Thread("ioctl$MD1", "md_ioctl")
		b.Thread("ioctl$MD2", "md_ioctl")
		return b.Build()
	},
})

// syz11 models Table 3's bug #11 — "WARNING in schedule_bh" (floppy):
// the pending-work flag and the bottom-half queue are updated
// non-atomically, so two ioctls both schedule the same bottom half; the
// list-debug check catches the double insertion.
var syz11 = register(&Scenario{
	Name:      "syz11-floppy-bh",
	Title:     "#11 WARNING in schedule_bh",
	Group:     GroupSyzkaller,
	Subsystem: "Floppy",
	BugType:   "assertion violation",

	Threads:             2,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindBugOn,
	WantInterleavings:   1,
	WantChainLen:        2,

	Notes: "pending check/set vs. bh_list insertion; the worker itself is " +
		"harmless — the corruption is at queueing time.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("bh_pending", 0)
		b.Var("bh_list", 0)
		b.Var("fdc_busy", 0)

		f := b.Func("schedule_bh")
		f.Load(kir.R1, kir.G("bh_pending")).L("C1")
		f.Bne(kir.R(kir.R1), kir.Imm(0), "out")
		f.Store(kir.G("bh_pending"), kir.Imm(1)).L("C2")
		f.ListAdd(kir.G("bh_list"), kir.Imm(1)).L("C3")
		f.QueueWork("floppy_work", kir.Imm(0)).L("C4")
		f.At("out").Ret()

		w := b.Func("floppy_work")
		// The bottom half itself is harmless: the benign fdc_busy
		// write-write race between the two workers stays out of the chain.
		w.Store(kir.G("fdc_busy"), kir.Imm(1)).L("K1")
		w.Store(kir.G("fdc_busy"), kir.Imm(0)).L("K2")
		w.Ret()

		b.Thread("ioctl$FDRAWCMD1", "schedule_bh")
		b.Thread("ioctl$FDRAWCMD2", "schedule_bh")
		return b.Build()
	},
})

// syz12 models Table 3's bug #12 — "Bluetooth: use-after-free in
// sco_sock_timeout": sco_conn_del() frees the connection while the
// timeout worker queued by a concurrent sender still holds it.
var syz12 = register(&Scenario{
	Name:      "syz12-sco-timeout",
	Title:     "#12 use-after-free in sco_sock_timeout",
	Group:     GroupSyzkaller,
	Subsystem: "Bluetooth",
	BugType:   "use-after-free access",

	Threads:             2,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindUseAfterFree,
	WantInterleavings:   1,
	WantChainLen:        4,

	Notes: "send path snapshots sco_conn and arms the timeout worker; " +
		"sco_conn_del disarms the timer and frees the object — but the " +
		"already-running worker passed its armed check before the disarm " +
		"and touches the freed connection.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.HeapObj("sco_conn", 2, 0, 0)
		b.Var("timer_armed", 0)

		snd := b.Func("sco_send_frame")
		snd.Load(kir.R1, kir.G("sco_conn")).L("A1") // snapshot
		snd.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		snd.Load(kir.R2, kir.G("sco_conn")).L("A2") // re-check before arming
		snd.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		snd.Store(kir.G("timer_armed"), kir.Imm(1)).L("A3")
		snd.QueueWork("sco_sock_timeout", kir.R(kir.R1)).L("A4")
		snd.At("out").Ret()

		del := b.Func("sco_conn_del")
		del.Load(kir.R1, kir.G("sco_conn"))
		del.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		del.Store(kir.G("sco_conn"), kir.Imm(0)).L("B1")
		del.Store(kir.G("timer_armed"), kir.Imm(0)).L("B2") // sco_sock_clear_timer
		del.Free(kir.R(kir.R1)).L("B3")
		del.At("out").Ret()

		w := b.Func("sco_sock_timeout")
		w.Load(kir.R1, kir.G("timer_armed")).L("K0")
		w.Beq(kir.R(kir.R1), kir.Imm(0), "out")         // timer was cancelled
		w.Store(kir.Ind(kir.R0, 1), kir.Imm(1)).L("K1") // touch the conn
		w.At("out").Ret()

		b.Thread("sendmsg$sco", "sco_send_frame")
		b.Thread("close", "sco_conn_del")
		return b.Build()
	},
})

package scenarios_test

import (
	"testing"

	"aitia/internal/eval"
	"aitia/internal/scenarios"
)

// TestGoldenChains re-diagnoses every scenario and compares against the
// pinned chain in scenarios.GoldenChains. The same goldens gate CI via
// `aitia-bench -check-chains`, independently of the test runner.
func TestGoldenChains(t *testing.T) {
	all := scenarios.All()
	if len(scenarios.GoldenChains) != len(all) {
		t.Errorf("golden map has %d entries for %d scenarios", len(scenarios.GoldenChains), len(all))
	}
	for _, sc := range all {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			want, ok := scenarios.GoldenChains[sc.Name]
			if !ok {
				t.Fatalf("no golden chain for %s", sc.Name)
			}
			prog, err := sc.Program()
			if err != nil {
				t.Fatal(err)
			}
			_, d, err := eval.Diagnose(sc)
			if err != nil {
				t.Fatal(err)
			}
			if got := d.Chain.Format(prog); got != want {
				t.Errorf("chain = %q\nwant    %q", got, want)
			}
		})
	}
}

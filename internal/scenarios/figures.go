package scenarios

import (
	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// fig1 is the abstract example of Figure 1: two semantically correlated
// variables (ptr_valid, ptr) and a race-steered control flow. The NULL
// dereference at A2d needs A1 => B1 (so B2 executes at all) and B2 => A2.
var fig1 = register(&Scenario{
	Name:      "fig1",
	Title:     "Figure 1 (abstract multi-variable race)",
	Group:     GroupFigure,
	Subsystem: "example",
	BugType:   "null-pointer dereference",

	MultiVariable: true,
	Threads:       2,
	WantKind:      sanitizer.KindNullDeref,
	WantChainLen:  2,
	WantChain:     "A1 => B1 → B2 => A2 → NULL pointer dereference",

	WantInterleavings: 1,
	Notes: "ptr initially points at a valid object; ptr_valid=0. " +
		"A1 publishes validity before B1 checks it; B2 then nulls the pointer " +
		"under A's feet before A dereferences it at A2/A2d.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("ptr_valid", 0)
		b.VarAddrOf("ptr", "obj")
		b.Global("obj", 1, 42)

		a := b.Func("thread_a")
		a.Store(kir.G("ptr_valid"), kir.Imm(1)).L("A1")
		a.Load(kir.R1, kir.G("ptr")).L("A2")
		a.Load(kir.R2, kir.Ind(kir.R1, 0)).L("A2d")
		a.Ret()

		tb := b.Func("thread_b")
		tb.Load(kir.R1, kir.G("ptr_valid")).L("B1")
		tb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		tb.Store(kir.G("ptr"), kir.Imm(0)).L("B2")
		tb.At("out").Ret()

		b.Thread("A", "thread_a")
		b.Thread("B", "thread_b")
		return b.Build()
	},
})

// fig4a is the first complex pattern of Figure 4: two system calls and a
// kworker daemon. Syscall B publishes a flag (M2) and queues the worker;
// syscall A only dereferences the shared pointer (M1) when it sees the
// flag, but the worker nulls the pointer first.
var fig4a = register(&Scenario{
	Name:      "fig4a",
	Title:     "Figure 4(a) (two syscalls + kworker)",
	Group:     GroupFigure,
	Subsystem: "example",
	BugType:   "null-pointer dereference",

	MultiVariable:       true,
	Threads:             2,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindNullDeref,
	WantChainLen:        3,
	WantInterleavings:   1,
	Notes: "dotted invocation arrow: queue_work from syscall B; syscall A " +
		"checks the published slot (M1) and re-reads it for the dereference " +
		"after the worker already cleared it (M2 = the slot's second access).",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("slot", 0)

		a := b.Func("syscall_a")
		a.Load(kir.R1, kir.G("slot")).L("A1") // check
		a.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		a.Load(kir.R2, kir.G("slot")).L("A2") // re-read (TOCTOU)
		a.Load(kir.R3, kir.Ind(kir.R2, 0)).L("A2d")
		a.At("out").Ret()

		sb := b.Func("syscall_b")
		sb.Alloc(kir.R1, 1)
		sb.Store(kir.Ind(kir.R1, 0), kir.Imm(7))
		sb.Store(kir.G("slot"), kir.R(kir.R1)).L("B1") // publish
		sb.QueueWork("worker", kir.Imm(0)).L("B2")
		sb.Ret()

		w := b.Func("worker")
		w.Store(kir.G("slot"), kir.Imm(0)).L("K1") // retract
		w.Ret()

		b.Thread("A", "syscall_a")
		b.Thread("B", "syscall_b")
		return b.Build()
	},
})

// fig4b is the second pattern of Figure 4: a single system call racing
// with the asynchronous chain it started itself — queue_work hands an
// object to a worker, the worker registers an RCU callback that frees it,
// and the syscall's own late access hits the freed object.
var fig4b = register(&Scenario{
	Name:      "fig4b",
	Title:     "Figure 4(b) (one syscall + kworker + RCU callback)",
	Group:     GroupFigure,
	Subsystem: "example",
	BugType:   "use-after-free",

	Threads:             1,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindUseAfterFree,
	WantChainLen:        1,
	WantInterleavings:   1,
	Notes:               "call_rcu chain: syscall -> kworker -> softirq; the RCU callback frees M1 while the syscall still uses it.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("m1_slot", 0)

		a := b.Func("syscall_a")
		a.Alloc(kir.R1, 2)
		a.Store(kir.G("m1_slot"), kir.R(kir.R1)).L("A1")
		a.QueueWork("worker", kir.R(kir.R1)).L("A2")
		a.Store(kir.Ind(kir.R1, 1), kir.Imm(9)).L("A3") // late init of M1
		a.Ret()

		w := b.Func("worker")
		w.CallRCU("rcu_free", kir.R(kir.R0)).L("K1")
		w.Ret()

		rf := b.Func("rcu_free")
		rf.Store(kir.G("m1_slot"), kir.Imm(0)).L("R1")
		rf.Free(kir.R(kir.R0)).L("R2")
		rf.Ret()

		b.Thread("A", "syscall_a")
		return b.Build()
	},
})

// fig4c is the third pattern of Figure 4: two system calls racing over
// three memory objects (M1, M2, M3) with two race-steered control flows
// chained back to back.
var fig4c = register(&Scenario{
	Name:      "fig4c",
	Title:     "Figure 4(c) (two syscalls, three objects)",
	Group:     GroupFigure,
	Subsystem: "example",
	BugType:   "null-pointer dereference",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindNullDeref,
	WantChainLen:      3,
	WantInterleavings: 1,
	Notes:             "A1 => B1 steers B into writing M2; B2 => A2 steers A into the M3 dereference; B3 => A3 nulls M3 first.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("m1", 0)
		b.Var("m2", 0)
		b.VarAddrOf("m3", "obj")
		b.Global("obj", 1, 3)

		a := b.Func("syscall_a")
		a.Store(kir.G("m1"), kir.Imm(1)).L("A1")
		a.Load(kir.R1, kir.G("m2")).L("A2")
		a.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		a.Load(kir.R2, kir.G("m3")).L("A3")
		a.Load(kir.R3, kir.Ind(kir.R2, 0)).L("A3d")
		a.At("out").Ret()

		sb := b.Func("syscall_b")
		sb.Load(kir.R1, kir.G("m1")).L("B1")
		sb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		sb.Store(kir.G("m2"), kir.Imm(1)).L("B2")
		sb.Store(kir.G("m3"), kir.Imm(0)).L("B3")
		sb.At("out").Ret()

		b.Thread("A", "syscall_a")
		b.Thread("B", "syscall_b")
		return b.Build()
	},
})

// fig5 is the LIFS search-tree example of Figure 5: threads A and B plus a
// kernel thread K that only exists when the race-steered control flow
// A1 => B1 occurs; the failure needs K1 => A3. The scenario also carries
// an implicit benign race on M2 (B2 vs A2), which the paper's tree
// explores but which never contributes to the failure.
var fig5 = register(&Scenario{
	Name:      "fig5",
	Title:     "Figure 5 (LIFS search example)",
	Group:     GroupFigure,
	Subsystem: "example",
	BugType:   "null-pointer dereference",

	MultiVariable:       true,
	Threads:             2,
	HasBackgroundThread: true,
	WantKind:            sanitizer.KindNullDeref,
	WantChainLen:        2,
	WantInterleavings:   1,
	BenignRaces:         1,
	Notes:               "If A1 => B1 then B3 (queue_work) executes; if K1 => A3 then A3 fails.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("m1", 0)
		b.Var("m2", 0)
		b.VarAddrOf("m3", "obj")
		b.Global("obj", 1, 5)

		a := b.Func("thread_a")
		a.Store(kir.G("m1"), kir.Imm(1)).L("A1")
		a.Load(kir.R1, kir.G("m2")).L("A2")
		a.Load(kir.R2, kir.G("m3")).L("A3")
		a.Load(kir.R3, kir.Ind(kir.R2, 0)).L("A3d")
		a.Ret()

		tb := b.Func("thread_b")
		tb.Load(kir.R1, kir.G("m1")).L("B1")
		tb.Store(kir.G("m2"), kir.Imm(1)).L("B2")
		tb.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		tb.QueueWork("thread_k", kir.Imm(0)).L("B3")
		tb.At("out").Ret()

		k := b.Func("thread_k")
		k.Store(kir.G("m3"), kir.Imm(0)).L("K1")
		k.Ret()

		b.Thread("A", "thread_a")
		b.Thread("B", "thread_b")
		return b.Build()
	},
})

// fig7 is the nested-race ambiguity example of Figure 7: A1 => B2
// surrounds A2 => B1, both flips avoid the failure, and the nested race is
// itself a root cause — so the surrounding race must be reported
// ambiguous (§3.4). Thread A opens an inconsistency window — it raises
// m1, publishes m2, then lowers m1 again — and thread B's assertion only
// fires when both of its reads land inside the window, which requires B
// to interleave into A.
var fig7 = register(&Scenario{
	Name:      "fig7",
	Title:     "Figure 7 (nested race ambiguity)",
	Group:     GroupFigure,
	Subsystem: "example",
	BugType:   "assertion violation",

	MultiVariable:     true,
	Threads:           2,
	WantKind:          sanitizer.KindBugOn,
	WantChainLen:      3, // nested root cause, ambiguous surrounding race, window close
	WantAmbiguous:     true,
	WantInterleavings: 1,

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("m1", 0)
		b.Var("m2", 0)

		a := b.Func("thread_a")
		a.Store(kir.G("m1"), kir.Imm(1)).L("A1") // open the window
		a.Store(kir.G("m2"), kir.Imm(1)).L("A2") // publish
		a.Store(kir.G("m1"), kir.Imm(0)).L("A3") // close the window
		a.Ret()

		tb := b.Func("thread_b")
		tb.Load(kir.R1, kir.G("m2")).L("B1")
		tb.Load(kir.R2, kir.G("m1")).L("B2")
		tb.And(kir.R1, kir.R(kir.R2))
		tb.BugOn(kir.R(kir.R1)) // fails iff B observes the open window
		tb.Ret()

		b.Thread("A", "thread_a")
		b.Thread("B", "thread_b")
		return b.Build()
	},
})

package scenarios

import (
	"aitia/internal/kir"
	"aitia/internal/sanitizer"
)

// extIRQTimer implements the paper's §4.6 future work: diagnosing a
// concurrency bug between a system call and a *hardware interrupt
// handler*. The paper excludes this class from its evaluation ("we
// believe AITIA is able to diagnose such bugs if the hypervisor injects
// an IRQ through the VT-x mechanism as is done for system calls"); this
// reproduction implements exactly that — the IRQ handler is a schedulable
// context the search injects at conflicting instructions.
//
// The bug is the classic del_timer race: the teardown path disarms the
// timer and frees its context, but an interrupt that already passed the
// armed check still runs the handler against the freed context.
var extIRQTimer = register(&Scenario{
	Name:      "ext-irq-timer",
	Title:     "extension: del_timer vs. timer IRQ (paper §4.6 future work)",
	Group:     GroupExtension,
	Subsystem: "Timer",
	BugType:   "use-after-free access",

	Threads:           2,
	WantKind:          sanitizer.KindUseAfterFree,
	WantChainLen:      3,
	WantChain:         "I1 => B1 → I2 => B2 → B3 => I3 → KASAN: use-after-free",
	WantInterleavings: 1,
	BenignRaces:       1,

	Notes: "The IRQ context is declared with ThreadIRQ; LIFS injects it " +
		"at conflicting instructions, the scheduling analogue of the " +
		"paper's proposed VT-x interrupt injection.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("timer_armed", 1)
		b.HeapObj("timer_ctx", 2, 0, 0)
		b.Var("irq_stats", 1)

		del := b.Func("del_timer")
		del.RefGet(kir.R9, kir.G("irq_stats")).L("SB")
		del.Store(kir.G("timer_armed"), kir.Imm(0)).L("B1") // disarm
		del.Load(kir.R1, kir.G("timer_ctx"))
		del.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		del.Store(kir.G("timer_ctx"), kir.Imm(0)).L("B2")
		del.Free(kir.R(kir.R1)).L("B3")
		del.At("out").Ret()

		irq := b.Func("timer_interrupt")
		irq.RefGet(kir.R9, kir.G("irq_stats")).L("SI")
		irq.Load(kir.R1, kir.G("timer_armed")).L("I1") // armed check
		irq.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		irq.Load(kir.R2, kir.G("timer_ctx")).L("I2")
		irq.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		irq.Store(kir.Ind(kir.R2, 1), kir.Imm(1)).L("I3") // handler touches ctx
		irq.At("out").Ret()

		b.Thread("ioctl$DEL_TIMER", "del_timer")
		b.ThreadIRQ("irq$timer", "timer_interrupt")
		return b.Build()
	},
})

// extCSOrder models the Dirty-COW class of bugs the paper's related work
// highlights ([18]: "the unintended execution order of critical sections
// may cause a concurrency failure"): each thread's accesses are
// individually lock-protected — there is no unsynchronized data race
// inside the critical sections — yet the *order* of the two critical
// sections relative to the unprotected page write breaks the kernel.
// Causality Analysis must treat the critical sections as flip units
// (§3.4) to diagnose it.
var extCSOrder = register(&Scenario{
	Name:      "ext-cs-order",
	Title:     "extension: critical-section order (Dirty-COW class)",
	Group:     GroupExtension,
	Subsystem: "MM",
	BugType:   "use-after-free access",

	Threads:           2,
	WantKind:          sanitizer.KindUseAfterFree,
	WantChainLen:      2,
	WantInterleavings: 1,

	Notes: "The write-fault path snapshots the page under mmap_lock and " +
		"performs the user write after dropping it; madvise(DONTNEED) drops " +
		"the page under the same lock. The snapshot race is a " +
		"critical-section-level race (both sides hold mmap_lock) and is " +
		"flipped as a unit.",

	build: func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("mmap_lock", 0)
		b.HeapObj("page", 2, 0, 0)

		wf := b.Func("handle_write_fault")
		wf.Lock(kir.G("mmap_lock"))
		wf.Load(kir.R1, kir.G("page")).L("A1") // snapshot under the lock
		wf.Unlock(kir.G("mmap_lock"))
		wf.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		wf.Store(kir.Ind(kir.R1, 0), kir.Imm(0x57)).L("A2") // the user write
		wf.At("out").Ret()

		mv := b.Func("madvise_dontneed")
		mv.Lock(kir.G("mmap_lock"))
		mv.Load(kir.R1, kir.G("page")).L("B1")
		mv.Store(kir.G("page"), kir.Imm(0)).L("B2")
		mv.Unlock(kir.G("mmap_lock"))
		mv.Beq(kir.R(kir.R1), kir.Imm(0), "out")
		mv.Free(kir.R(kir.R1)).L("B3")
		mv.At("out").Ret()

		b.Thread("write", "handle_write_fault")
		b.Thread("madvise$DONTNEED", "madvise_dontneed")
		return b.Build()
	},
})

package scenarios

import (
	"fmt"

	"aitia/internal/kir"
)

// Fixed programs model the developers' patches, letting the evaluation
// verify the paper's correctness criterion (§5.1, §5.2): every fix makes
// the causality chain "cut" — at least one interleaving order in the
// chain becomes impossible — and the failure no longer reproduces.
//
// Most kernel fixes for these bugs serialize the racing regions (a lock
// around the multi-variable accesses); those are modelled with
// kir.FixSerialize over the racing entry functions. Reordering fixes
// (publish-after-init) get custom patched programs below.

// fixEntries lists, per scenario, the entry functions the modelled patch
// makes mutually exclusive.
var fixEntries = map[string][]string{
	"fig1":  {"thread_a", "thread_b"},
	"fig4a": {"syscall_a", "syscall_b", "worker"},
	"fig4b": {"syscall_a", "rcu_free"},
	"fig4c": {"syscall_a", "syscall_b"},
	"fig5":  {"thread_a", "thread_b", "thread_k"},
	"fig7":  {"thread_a", "thread_b"},

	"cve-2019-11486": {"r3964_ioctl", "tty_hangup"},
	"cve-2018-12232": {"sock_setattr", "sock_close"},
	"cve-2017-15649": {"fanout_add", "packet_do_bind"},
	"cve-2017-10661": {"timerfd_setup_cancel"},
	"cve-2017-7533":  {"fsnotify_event", "vfs_rename"},
	"cve-2017-2671":  {"ping_lookup", "ping_unhash"},
	"cve-2017-2636":  {"flush_tx_queue"},
	"cve-2016-10200": {"l2tp_ip_bind", "l2tp_ip_lookup"},
	"cve-2016-8655":  {"packet_set_ring", "packet_setsockopt_version"},

	"syz01-l2tp-oob":         {"pppol2tp_connect", "l2tp_session_set_header"},
	"syz02-packet-frame":     {"packet_snd_frame", "packet_lookup_frame"},
	"syz03-l2tp-uaf":         {"pppol2tp_connect", "l2tp_session_delete"},
	"syz06-bpf-devmap":       {"dev_map_hash_update_elem", "dev_map_free"},
	"syz07-delete-partition": {"blkdev_open", "delete_partition"},
	"syz08-j1939-refcount":   {"j1939_netdev_start", "j1939_netdev_stop", "j1939_priv_destroy"},
	"syz09-seccomp-leak":     {"do_seccomp_install"},
	"syz10-md-ioctl":         {"md_ioctl"},
	"syz11-floppy-bh":        {"schedule_bh"},
	"syz12-sco-timeout":      {"sco_send_frame", "sco_conn_del", "sco_sock_timeout"},

	"ext-irq-timer": {"del_timer", "timer_interrupt"},
	"ext-cs-order":  {"handle_write_fault", "madvise_dontneed"},
}

// fixBuilders holds custom patched programs for bugs whose real fix is a
// reordering rather than a lock.
var fixBuilders = map[string]func() (*kir.Program, error){
	// CVE-2019-6974's fix: grab the kvm reference *before* installing the
	// fd ("fd_install after the device is fully initialized").
	"cve-2019-6974": func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("fdtable", 0)

		a := b.Func("kvm_ioctl_create_device")
		a.Alloc(kir.R1, 2)
		a.Store(kir.Ind(kir.R1, 1), kir.Imm(1)).L("A2")  // kvm_get_kvm first
		a.Store(kir.G("fdtable"), kir.R(kir.R1)).L("A1") // fd_install last
		a.Ret()

		c := b.Func("sys_close")
		c.Load(kir.R2, kir.G("fdtable")).L("B1")
		c.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		c.Store(kir.G("fdtable"), kir.Imm(0)).L("B2")
		c.Free(kir.R(kir.R2)).L("B3")
		c.At("out").Ret()

		b.Thread("ioctl$KVM_CREATE_DEVICE", "kvm_ioctl_create_device")
		b.Thread("close", "sys_close")
		return b.Build()
	},

	// Bug #4's fix mirrors CVE-2019-6974: finish the irqfd initialization
	// before publishing it to the list.
	"syz04-kvm-irqfd": func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.Var("irqfd_list", 0)

		a := b.Func("kvm_irqfd_assign")
		a.Alloc(kir.R1, 2)
		a.Store(kir.Ind(kir.R1, 1), kir.Imm(11)).L("A2")    // init first
		a.Store(kir.G("irqfd_list"), kir.R(kir.R1)).L("A1") // publish last
		a.Ret()

		sb := b.Func("kvm_irqfd_deassign")
		sb.Load(kir.R2, kir.G("irqfd_list")).L("B1")
		sb.Beq(kir.R(kir.R2), kir.Imm(0), "out")
		sb.Store(kir.G("irqfd_list"), kir.Imm(0))
		sb.QueueWork("irqfd_shutdown", kir.R(kir.R2)).L("B2")
		sb.At("out").Ret()

		w := b.Func("irqfd_shutdown")
		w.Free(kir.R(kir.R0)).L("K1")
		w.Ret()

		b.Thread("ioctl$IRQFD", "kvm_irqfd_assign")
		b.Thread("ioctl$IRQFD_DEASSIGN", "kvm_irqfd_deassign")
		return b.Build()
	},

	// Bug #5's fix: stop queueing onto the endpoint after it has been
	// handed to the destroyer — the last use moves before the hand-off.
	"syz05-rxrpc-local": func() (*kir.Program, error) {
		b := kir.NewBuilder()
		b.HeapObj("rxrpc_local", 2, 1, 0)

		cl := b.Func("rxrpc_release")
		cl.Load(kir.R1, kir.G("rxrpc_local"))
		cl.Store(kir.Ind(kir.R1, 1), kir.Imm(1)).L("A2") // final queue first
		cl.QueueWork("rxrpc_local_destroyer", kir.R(kir.R1)).L("A1")
		cl.Ret()

		ds := b.Func("rxrpc_local_destroyer")
		ds.Free(kir.R(kir.R0)).L("K1")
		ds.Ret()

		b.Thread("close", "rxrpc_release")
		return b.Build()
	},
}

// FixEntries returns the entry functions a serializing fix wraps, or nil
// when the scenario has no fix or uses a custom patched build. The
// scenario factory seeds corpus-derived mutators from these.
func (s *Scenario) FixEntries() []string {
	entries, ok := fixEntries[s.Name]
	if !ok {
		return nil
	}
	return append([]string(nil), entries...)
}

// HasFix reports whether the scenario models its developer fix.
func (s *Scenario) HasFix() bool {
	_, a := fixEntries[s.Name]
	_, b := fixBuilders[s.Name]
	return a || b
}

// Fixed returns the patched program: the original with its documented fix
// applied (and the same prologue padding as Program). Diagnosing the
// fixed program must fail to reproduce the failure — the paper's
// verification that the chain explains the fix.
func (s *Scenario) Fixed() (*kir.Program, error) {
	var (
		prog *kir.Program
		err  error
	)
	if build, ok := fixBuilders[s.Name]; ok {
		prog, err = build()
	} else {
		entries, ok := fixEntries[s.Name]
		if !ok {
			return nil, fmt.Errorf("scenarios: %s has no modelled fix", s.Name)
		}
		prog, err = s.RawProgram()
		if err != nil {
			return nil, err
		}
		prog, err = prog.FixSerialize(entries...)
	}
	if err != nil {
		return nil, err
	}
	return prog.WithPrologues(s.PadAccesses())
}
